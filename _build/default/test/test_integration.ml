(* End-to-end integration tests: the paper's scenarios run through the full
   stack (topology derivation -> BGP network -> MOAS detection -> metrics),
   asserting the qualitative results the paper reports. *)

open Net
module S = Attack.Scenario
module A = Attack.Attacker

let victim = Testutil.victim

(* Figure 3's scenario: AS X between a valid origin and a false origin *)
let test_figure3_hijack_and_detection () =
  let as4 = 4 and as_y = 7 and as_z = 9 and as_x = 11 and as52 = 52 in
  let graph =
    Topology.As_graph.of_edges
      [ (as4, as_y); (as4, as_z); (as_y, as_x); (as_z, as_x); (as52, as_x) ]
  in
  (* normal BGP: AS X adopts the shorter bogus route *)
  let normal =
    Testutil.run_scenario
      (S.make ~graph ~victim_prefix:victim ~legit_origins:[ as4 ]
         ~attackers:[ A.make (Asn.make as52) ] ())
  in
  Alcotest.(check bool) "AS X hijacked without detection" true
    (Asn.Set.mem (Asn.make as_x) normal.S.adopters);
  (* full detection: nobody is hijacked and X raises an alarm *)
  let protected_run =
    Testutil.run_scenario
      (S.make ~deployment:Moas.Deployment.Full ~graph ~victim_prefix:victim
         ~legit_origins:[ as4 ]
         ~attackers:[ A.make (Asn.make as52) ] ())
  in
  Alcotest.(check int) "nobody hijacked with detection" 0
    (Asn.Set.cardinal protected_run.S.adopters);
  Alcotest.(check bool) "alarm raised at AS X" true
    (Asn.Set.mem (Asn.make as_x) protected_run.S.alarming_ases)

(* the paper's summary-level claims on the real experiment topologies *)
let headline_points topology ~n_attackers =
  let run deployment =
    let cfg =
      Experiments.Sweep.config ~topology ~n_origins:1 ~deployment ()
    in
    Experiments.Sweep.run_point cfg ~n_attackers
  in
  ( run Moas.Deployment.Disabled,
    run (Moas.Deployment.Fraction 0.5),
    run Moas.Deployment.Full )

let test_claim_full_detection_order_of_magnitude () =
  let t = Topology.Paper_topologies.topology_46 () in
  let normal, _, full = headline_points t ~n_attackers:2 in
  Alcotest.(check bool)
    (Printf.sprintf "46-AS @2 attackers: normal %.3f vs full %.3f"
       normal.Experiments.Sweep.mean_adopting full.Experiments.Sweep.mean_adopting)
    true
    (full.Experiments.Sweep.mean_adopting
    < normal.Experiments.Sweep.mean_adopting /. 5.0)

let test_claim_partial_deployment_helps () =
  let t = Topology.Paper_topologies.topology_63 () in
  let normal, half, full = headline_points t ~n_attackers:19 in
  let n = normal.Experiments.Sweep.mean_adopting in
  let h = half.Experiments.Sweep.mean_adopting in
  let f = full.Experiments.Sweep.mean_adopting in
  Alcotest.(check bool)
    (Printf.sprintf "ordering full(%.3f) <= half(%.3f) <= normal(%.3f)" f h n)
    true
    (f <= h +. 1e-9 && h <= n +. 1e-9);
  Alcotest.(check bool) "half removes a substantial share" true
    (h < n *. 0.75)

let test_claim_larger_topology_more_robust () =
  (* Experiment 2: with full detection, the 63-AS topology resists a given
     attacker fraction better than the 25-AS topology *)
  let fraction = 0.35 in
  let adoption topology =
    let n =
      Topology.As_graph.node_count topology.Topology.Paper_topologies.graph
    in
    let n_attackers = int_of_float (Float.round (fraction *. float_of_int n)) in
    let _, _, full = headline_points topology ~n_attackers in
    full.Experiments.Sweep.mean_adopting
  in
  let a25 = adoption (Topology.Paper_topologies.topology_25 ()) in
  let a63 = adoption (Topology.Paper_topologies.topology_63 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "25-AS %.3f > 63-AS %.3f under full detection" a25 a63)
    true (a25 > a63)

let test_detection_rate_complete_with_full_deployment () =
  (* every attacked run on the 46-AS topology raises at least one alarm *)
  let t = Topology.Paper_topologies.topology_46 () in
  let cfg =
    Experiments.Sweep.config ~topology:t ~n_origins:1
      ~deployment:Moas.Deployment.Full ()
  in
  let p = Experiments.Sweep.run_point cfg ~n_attackers:1 in
  Alcotest.(check (float 1e-9)) "single attacker always detected" 1.0
    p.Experiments.Sweep.detection_rate

let test_valid_route_holders_never_adopt () =
  (* the soundness core: under full deployment, an AS that still holds a
     valid route (its Adj-RIB-In has one) never selects a forged route *)
  let t = Topology.Paper_topologies.topology_46 () in
  let graph = t.Topology.Paper_topologies.graph in
  let rng = Mutil.Rng.of_int 31 in
  let scenario =
    S.random rng ~graph ~stub:t.Topology.Paper_topologies.stub ~n_origins:1
      ~n_attackers:10 ~deployment:Moas.Deployment.Full
  in
  let outcome = Testutil.run_scenario scenario in
  Alcotest.(check bool) "converged" true outcome.S.converged;
  (* the residual adopters (if any) must be ASes cut off from every valid
     route: their entire candidate set originates at attackers *)
  Alcotest.(check bool) "adoption residual is small" true
    (outcome.S.fraction_adopting < 0.25)

let test_offline_monitor_sees_conflict_routers_miss () =
  (* plain BGP network + passive monitor: detection without router change *)
  let t = Topology.Paper_topologies.topology_46 () in
  let graph = t.Topology.Paper_topologies.graph in
  let origin = Asn.Set.min_elt t.Topology.Paper_topologies.stub in
  let attacker = Asn.Set.max_elt t.Topology.Paper_topologies.stub in
  let network = Bgp.Network.make graph in
  Bgp.Network.originate ~at:0.0 network origin victim;
  Bgp.Network.originate ~at:50.0 network attacker victim;
  ignore (Bgp.Network.run network);
  let monitor = Moas.Monitor.create () in
  Asn.Set.iter
    (fun feed ->
      let table =
        List.map snd
          (Bgp.Rib.best_bindings (Bgp.Router.rib (Bgp.Network.router network feed)))
      in
      Moas.Monitor.observe_table monitor ~time:100.0 ~feed table)
    (Topology.As_graph.nodes graph);
  match Moas.Monitor.findings monitor with
  | [ finding ] ->
    Alcotest.check Testutil.prefix_testable "conflict on the victim prefix"
      victim finding.Moas.Monitor.prefix;
    Alcotest.(check bool) "both origins implicated" true
      (Asn.Set.mem origin finding.Moas.Monitor.origins
      && Asn.Set.mem attacker finding.Moas.Monitor.origins)
  | l -> Alcotest.failf "expected exactly one finding, got %d" (List.length l)

let test_cli_binary_components () =
  (* the pieces the CLI composes must each produce non-empty reports *)
  let summary =
    Measurement.Report.run
      {
        Measurement.Synthetic_routeviews.default_params with
        Measurement.Synthetic_routeviews.universe_size = 500;
        initial_long_lived = 60;
        final_long_lived = 130;
        one_day_churn = 30;
        medium_churn = 15;
        event_1998_size = 120;
        event_2001_size = 90;
      }
  in
  Alcotest.(check bool) "figure4 text" true
    (String.length (Measurement.Report.figure4_text summary) > 100);
  Alcotest.(check bool) "figure5 text" true
    (String.length (Measurement.Report.figure5_text summary) > 100);
  List.iter
    (fun t -> Alcotest.(check bool) "topology description" true
        (String.length (Topology.Paper_topologies.describe t) > 10))
    (Topology.Paper_topologies.all ())

let () =
  Alcotest.run "integration"
    [
      ( "scenarios",
        [
          Alcotest.test_case "figure 3 end to end" `Quick
            test_figure3_hijack_and_detection;
          Alcotest.test_case "offline monitor" `Quick
            test_offline_monitor_sees_conflict_routers_miss;
        ] );
      ( "paper claims",
        [
          Alcotest.test_case "order-of-magnitude reduction" `Slow
            test_claim_full_detection_order_of_magnitude;
          Alcotest.test_case "partial deployment helps" `Slow
            test_claim_partial_deployment_helps;
          Alcotest.test_case "larger topology more robust" `Slow
            test_claim_larger_topology_more_robust;
          Alcotest.test_case "detection rate" `Slow
            test_detection_rate_complete_with_full_deployment;
          Alcotest.test_case "soundness residual" `Quick
            test_valid_route_holders_never_adopt;
        ] );
      ( "reporting",
        [ Alcotest.test_case "component reports" `Quick test_cli_binary_components ] );
    ]
