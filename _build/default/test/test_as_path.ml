(* Tests for Bgp.As_path and Bgp.Community. *)

open Net
module P = Bgp.As_path
module C = Bgp.Community

let test_empty () =
  Alcotest.(check int) "empty length" 0 (P.length P.empty);
  Alcotest.(check bool) "no origin" true (P.origin_as P.empty = None);
  Alcotest.(check bool) "empty candidates" true
    (Asn.Set.is_empty (P.origin_candidates P.empty))

let test_of_list () =
  let p = P.of_list [ 3; 2; 1 ] in
  Alcotest.(check int) "length" 3 (P.length p);
  Alcotest.(check (option int)) "origin is the last AS" (Some 1) (P.origin_as p);
  Alcotest.(check string) "printing" "3 2 1" (P.to_string p)

let test_prepend () =
  let p = P.prepend 4 (P.of_list [ 3; 2; 1 ]) in
  Alcotest.(check int) "length grows" 4 (P.length p);
  Alcotest.(check string) "prepended at head" "4 3 2 1" (P.to_string p);
  Alcotest.(check (option int)) "origin unchanged" (Some 1) (P.origin_as p);
  let q = P.prepend 9 P.empty in
  Alcotest.(check (option int)) "origination: prepend on empty" (Some 9)
    (P.origin_as q)

let test_contains () =
  let p = P.of_list [ 3; 2; 1 ] in
  Alcotest.(check bool) "member" true (P.contains p 2);
  Alcotest.(check bool) "non-member" false (P.contains p 7);
  let with_set = [ P.Seq [ 5 ]; P.Set (Asn.Set.of_list [ 8; 9 ]) ] in
  Alcotest.(check bool) "member of AS_SET" true (P.contains with_set 9)

let test_as_set_length () =
  (* an AS_SET counts as one hop (RFC 4271) *)
  let p = [ P.Seq [ 5; 6 ]; P.Set (Asn.Set.of_list [ 8; 9; 10 ]) ] in
  Alcotest.(check int) "set counts one" 3 (P.length p)

let test_origin_of_set_tail () =
  let p = [ P.Seq [ 5 ]; P.Set (Asn.Set.of_list [ 8; 9 ]) ] in
  Alcotest.(check bool) "aggregated origin is ambiguous" true (P.origin_as p = None);
  Alcotest.check Testutil.asn_set_testable "candidates from the set"
    (Asn.Set.of_list [ 8; 9 ])
    (P.origin_candidates p)

let test_aggregate () =
  let a = P.of_list [ 7; 3; 1 ] and b = P.of_list [ 7; 4; 2 ] in
  let agg = P.aggregate a b in
  Alcotest.(check string) "common head + AS_SET" "7 {1,2,3,4}" (P.to_string agg);
  Alcotest.(check bool) "covers both origins" true
    (Asn.Set.subset (Asn.Set.of_list [ 1; 2 ]) (P.origin_candidates agg));
  let disjoint = P.aggregate (P.of_list [ 1 ]) (P.of_list [ 2 ]) in
  Alcotest.(check string) "no common head" "{1,2}" (P.to_string disjoint)

let test_ases () =
  let p = [ P.Seq [ 5; 6 ]; P.Set (Asn.Set.of_list [ 8 ]) ] in
  Alcotest.check Testutil.asn_set_testable "all mentioned ASes"
    (Asn.Set.of_list [ 5; 6; 8 ])
    (P.ases p)

let test_community () =
  let c = C.make (Asn.make 8584) 0xff02 in
  Alcotest.(check string) "notation" "8584:65282" (C.to_string c);
  Alcotest.(check bool) "equality" true (C.equal c (C.make (Asn.make 8584) 0xff02));
  Alcotest.(check bool) "ordering by asn" true
    (C.compare (C.make (Asn.make 1) 5) (C.make (Asn.make 2) 0) < 0);
  Alcotest.(check bool) "ordering by value" true
    (C.compare (C.make (Asn.make 1) 0) (C.make (Asn.make 1) 1) < 0);
  Alcotest.check_raises "17-bit value rejected"
    (Invalid_argument "Community.make: value out of 16-bit range") (fun () ->
      ignore (C.make (Asn.make 1) 65536))

let path_gen =
  QCheck2.Gen.(list_size (int_range 1 8) Testutil.asn_gen)

let prop_prepend_contains =
  Testutil.qtest "prepended AS is contained"
    QCheck2.Gen.(pair Testutil.asn_gen path_gen)
    (fun (asn, ases) -> P.contains (P.prepend asn (P.of_list ases)) asn)

let prop_prepend_length =
  Testutil.qtest "prepend adds exactly one hop"
    QCheck2.Gen.(pair Testutil.asn_gen path_gen)
    (fun (asn, ases) ->
      P.length (P.prepend asn (P.of_list ases)) = P.length (P.of_list ases) + 1)

let prop_origin_invariant_under_prepend =
  Testutil.qtest "origin survives any number of prepends"
    QCheck2.Gen.(pair (list_size (int_range 0 5) Testutil.asn_gen) path_gen)
    (fun (prepends, ases) ->
      let base = P.of_list ases in
      let final = List.fold_left (fun p a -> P.prepend a p) base prepends in
      P.origin_as final = P.origin_as base)

let prop_aggregate_covers =
  Testutil.qtest "aggregate mentions every AS of both paths"
    QCheck2.Gen.(pair path_gen path_gen)
    (fun (a, b) ->
      let pa = P.of_list a and pb = P.of_list b in
      Asn.Set.subset
        (Asn.Set.union (P.ases pa) (P.ases pb))
        (P.ases (P.aggregate pa pb)))

let () =
  Alcotest.run "as_path"
    [
      ( "as_path",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "of_list" `Quick test_of_list;
          Alcotest.test_case "prepend" `Quick test_prepend;
          Alcotest.test_case "contains" `Quick test_contains;
          Alcotest.test_case "AS_SET length" `Quick test_as_set_length;
          Alcotest.test_case "AS_SET origin" `Quick test_origin_of_set_tail;
          Alcotest.test_case "aggregate" `Quick test_aggregate;
          Alcotest.test_case "ases" `Quick test_ases;
        ] );
      ("community", [ Alcotest.test_case "community values" `Quick test_community ]);
      ( "properties",
        [
          prop_prepend_contains;
          prop_prepend_length;
          prop_origin_invariant_under_prepend;
          prop_aggregate_covers;
        ] );
    ]
