(* Tests for Net.Ipv4 and Net.Prefix. *)

open Net

let test_ipv4_parse_print () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Ipv4.to_string (Ipv4.of_string s)))
    [ "0.0.0.0"; "255.255.255.255"; "10.2.0.1"; "192.0.2.255" ]

let test_ipv4_octets () =
  let a = Ipv4.of_octets 10 2 3 4 in
  Alcotest.(check (list int)) "octets roundtrip" [ 10; 2; 3; 4 ]
    (let x, y, z, w = Ipv4.to_octets a in
     [ x; y; z; w ]);
  Alcotest.(check int) "numeric value" 0x0a020304 (Ipv4.to_int a)

let test_ipv4_invalid () =
  List.iter
    (fun s ->
      match Ipv4.of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted malformed address %S" s)
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.1.1.1"; "-1.0.0.0"; "a.b.c.d"; "1.2.3.04x" ]

let test_ipv4_bits () =
  let a = Ipv4.of_octets 128 0 0 1 in
  Alcotest.(check bool) "msb set" true (Ipv4.bit a 0);
  Alcotest.(check bool) "bit 1 clear" false (Ipv4.bit a 1);
  Alcotest.(check bool) "lsb set" true (Ipv4.bit a 31)

let test_prefix_parse_print () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Prefix.to_string (Prefix.of_string s)))
    [ "0.0.0.0/0"; "10.0.0.0/8"; "192.0.2.0/24"; "192.0.2.1/32" ]

let test_prefix_masks_host_bits () =
  let p = Prefix.make (Ipv4.of_string "10.2.3.4") 8 in
  Alcotest.(check string) "host bits zeroed" "10.0.0.0/8" (Prefix.to_string p)

let test_prefix_invalid () =
  List.iter
    (fun s ->
      match Prefix.of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted malformed prefix %S" s)
    [ "10.0.0.0"; "10.0.0.0/33"; "10.0.0.0/-1"; "10.0.0.0/x"; "/8" ]

let test_contains () =
  let p = Prefix.of_string "10.0.0.0/8" in
  Alcotest.(check bool) "inside" true (Prefix.contains_addr p (Ipv4.of_string "10.255.1.2"));
  Alcotest.(check bool) "outside" false (Prefix.contains_addr p (Ipv4.of_string "11.0.0.0"));
  let all = Prefix.of_string "0.0.0.0/0" in
  Alcotest.(check bool) "default route contains everything" true
    (Prefix.contains_addr all (Ipv4.of_string "203.0.113.7"))

let test_subsumes () =
  let p8 = Prefix.of_string "10.0.0.0/8" in
  let p16 = Prefix.of_string "10.2.0.0/16" in
  Alcotest.(check bool) "/8 subsumes /16" true (Prefix.subsumes p8 p16);
  Alcotest.(check bool) "/16 not subsumes /8" false (Prefix.subsumes p16 p8);
  Alcotest.(check bool) "reflexive" true (Prefix.subsumes p8 p8);
  Alcotest.(check bool) "disjoint" false
    (Prefix.subsumes p16 (Prefix.of_string "10.3.0.0/24"))

let test_strict_subprefix () =
  let p = Prefix.of_string "192.0.2.0/24" in
  let sub, _ = Prefix.split p in
  Alcotest.(check bool) "split half is strict subprefix" true
    (Prefix.is_strict_subprefix ~sub ~of_:p);
  Alcotest.(check bool) "not of itself" false
    (Prefix.is_strict_subprefix ~sub:p ~of_:p)

let test_split_supernet () =
  let p = Prefix.of_string "192.0.2.0/24" in
  let lo, hi = Prefix.split p in
  Alcotest.(check string) "low half" "192.0.2.0/25" (Prefix.to_string lo);
  Alcotest.(check string) "high half" "192.0.2.128/25" (Prefix.to_string hi);
  Alcotest.check Testutil.prefix_testable "supernet of half" p (Prefix.supernet lo);
  Alcotest.check_raises "cannot split /32"
    (Invalid_argument "Prefix.split: cannot split a /32") (fun () ->
      ignore (Prefix.split (Prefix.of_string "1.2.3.4/32")));
  Alcotest.check_raises "no parent of /0"
    (Invalid_argument "Prefix.supernet: /0 has no parent") (fun () ->
      ignore (Prefix.supernet (Prefix.of_string "0.0.0.0/0")))

let test_compare_total_order () =
  let l =
    List.map Prefix.of_string
      [ "10.0.0.0/8"; "10.0.0.0/16"; "9.0.0.0/8"; "11.0.0.0/8" ]
  in
  let sorted = List.sort Prefix.compare l |> List.map Prefix.to_string in
  Alcotest.(check (list string)) "sorted by network then length"
    [ "9.0.0.0/8"; "10.0.0.0/8"; "10.0.0.0/16"; "11.0.0.0/8" ]
    sorted

let test_asn () =
  Alcotest.(check bool) "private range" true (Asn.is_private (Asn.make 64512));
  Alcotest.(check bool) "public asn" false (Asn.is_private (Asn.make 8584));
  Alcotest.(check string) "printing" "AS8584" (Asn.to_string (Asn.make 8584));
  Alcotest.check_raises "17-bit rejected"
    (Invalid_argument "Asn.make: out of 16-bit range") (fun () ->
      ignore (Asn.make 65536))

let prop_prefix_roundtrip =
  Testutil.qtest "prefix of_string . to_string" Testutil.prefix_gen (fun p ->
      Prefix.equal p (Prefix.of_string (Prefix.to_string p)))

let prop_split_partition =
  Testutil.qtest "split halves partition the parent"
    QCheck2.Gen.(pair Testutil.ipv4_gen (int_range 0 31))
    (fun (addr, len) ->
      let p = Prefix.make addr len in
      let lo, hi = Prefix.split p in
      Prefix.subsumes p lo && Prefix.subsumes p hi
      && (not (Prefix.subsumes lo hi))
      && not (Prefix.subsumes hi lo))

let prop_contains_network =
  Testutil.qtest "a prefix contains its own network address" Testutil.prefix_gen
    (fun p -> Prefix.contains_addr p (Prefix.network p))

let prop_subsumes_transitive =
  Testutil.qtest "subsumes is transitive along the supernet chain"
    QCheck2.Gen.(pair Testutil.ipv4_gen (int_range 2 32))
    (fun (addr, len) ->
      let p = Prefix.make addr len in
      let q = Prefix.supernet p in
      let r = Prefix.supernet q in
      Prefix.subsumes r p)

let () =
  Alcotest.run "prefix"
    [
      ( "ipv4",
        [
          Alcotest.test_case "parse/print" `Quick test_ipv4_parse_print;
          Alcotest.test_case "octets" `Quick test_ipv4_octets;
          Alcotest.test_case "invalid input" `Quick test_ipv4_invalid;
          Alcotest.test_case "bit access" `Quick test_ipv4_bits;
        ] );
      ( "prefix",
        [
          Alcotest.test_case "parse/print" `Quick test_prefix_parse_print;
          Alcotest.test_case "host bits masked" `Quick test_prefix_masks_host_bits;
          Alcotest.test_case "invalid input" `Quick test_prefix_invalid;
          Alcotest.test_case "contains" `Quick test_contains;
          Alcotest.test_case "subsumes" `Quick test_subsumes;
          Alcotest.test_case "strict subprefix" `Quick test_strict_subprefix;
          Alcotest.test_case "split/supernet" `Quick test_split_supernet;
          Alcotest.test_case "total order" `Quick test_compare_total_order;
        ] );
      ("asn", [ Alcotest.test_case "asn basics" `Quick test_asn ]);
      ( "properties",
        [
          prop_prefix_roundtrip;
          prop_split_partition;
          prop_contains_network;
          prop_subsumes_transitive;
        ] );
    ]
