(* Tests for the anomaly detector and the vantage-point study. *)

module Day = Mutil.Day
module Anomaly = Measurement.Anomaly
module Vs = Experiments.Vantage_study

let flat ?(level = 100) n = List.init n (fun i -> (i, level))

let test_flat_series_quiet () =
  Alcotest.(check int) "no spikes on a flat series" 0
    (List.length (Anomaly.detect (flat 200)))

let test_single_spike_found () =
  let series =
    List.mapi (fun i (d, c) -> if i = 100 then (d, 500) else (d, c)) (flat 200)
  in
  match Anomaly.detect series with
  | [ spike ] ->
    Alcotest.(check int) "spike day" 100 spike.Anomaly.day;
    Alcotest.(check int) "spike count" 500 spike.Anomaly.count;
    Alcotest.(check bool) "magnitude 5x" true
      (abs_float (spike.Anomaly.magnitude -. 5.0) < 0.01)
  | l -> Alcotest.failf "expected one spike, got %d" (List.length l)

let test_slow_growth_quiet () =
  (* the multi-homing ramp: +1 per day must never alarm *)
  let series = List.init 500 (fun i -> (i, 100 + i)) in
  Alcotest.(check int) "growth is not an anomaly" 0
    (List.length (Anomaly.detect series))

let test_warmup_days_never_flagged () =
  (* a spike inside the warm-up window has no baseline *)
  let series =
    List.mapi (fun i (d, c) -> if i = 10 then (d, 10_000) else (d, c)) (flat 50)
  in
  Alcotest.(check int) "warm-up spike ignored" 0
    (List.length (Anomaly.detect ~window:30 series))

let test_two_spikes_independent () =
  let series =
    List.mapi
      (fun i (d, c) -> if i = 60 || i = 150 then (d, 400) else (d, c))
      (flat 200)
  in
  Alcotest.(check (list int)) "both events flagged" [ 60; 150 ]
    (List.map (fun s -> s.Anomaly.day) (Anomaly.detect series))

let test_validation () =
  Alcotest.check_raises "bad window"
    (Invalid_argument "Anomaly.detect: window must be positive") (fun () ->
      ignore (Anomaly.detect ~window:0 []));
  Alcotest.check_raises "bad threshold"
    (Invalid_argument "Anomaly.detect: threshold must exceed 1") (fun () ->
      ignore (Anomaly.detect ~threshold:0.5 []))

let test_paper_events_detected () =
  let summary =
    Measurement.Report.run
      {
        Measurement.Synthetic_routeviews.default_params with
        Measurement.Synthetic_routeviews.universe_size = 600;
        initial_long_lived = 80;
        final_long_lived = 170;
        one_day_churn = 30;
        medium_churn = 12;
        event_1998_size = 160;
        event_2001_size = 130;
      }
  in
  let spikes = Anomaly.spikes_of_summary summary in
  let days = List.map (fun s -> s.Anomaly.day) spikes in
  Alcotest.(check bool) "1998-04-07 flagged" true
    (List.mem Measurement.Synthetic_routeviews.event_1998 days);
  Alcotest.(check bool) "2001-04-06 flagged" true
    (List.mem Measurement.Synthetic_routeviews.event_2001 days);
  (* nothing outside the two documented events (+1 day for the two-day
     2001 event) *)
  List.iter
    (fun day ->
      let ok =
        day = Measurement.Synthetic_routeviews.event_1998
        || day = Measurement.Synthetic_routeviews.event_2001
        || day = Day.add Measurement.Synthetic_routeviews.event_2001 1
      in
      Alcotest.(check bool)
        (Printf.sprintf "no false positive on %s" (Day.to_string day))
        true ok)
    days

let test_vantage_monotone () =
  let t = Topology.Paper_topologies.topology_46 () in
  let points = Vs.study ~runs:6 ~feed_counts:[ 1; 4; 46 ] ~topology:t () in
  (match points with
  | [ one; four; all ] ->
    Alcotest.(check bool) "more feeds, no worse detection" true
      (one.Vs.detection_rate <= four.Vs.detection_rate +. 1e-9
      && four.Vs.detection_rate <= all.Vs.detection_rate +. 1e-9);
    (* polling every AS always sees the conflict: both the valid and the
       forged route are someone's best *)
    Alcotest.(check (float 1e-9)) "full coverage catches everything" 1.0
      all.Vs.detection_rate
  | _ -> Alcotest.fail "expected three points");
  Testutil.check_contains ~what:"render" (Vs.render points) "monitor feeds"

let () =
  Alcotest.run "studies"
    [
      ( "anomaly",
        [
          Alcotest.test_case "flat quiet" `Quick test_flat_series_quiet;
          Alcotest.test_case "single spike" `Quick test_single_spike_found;
          Alcotest.test_case "slow growth quiet" `Quick test_slow_growth_quiet;
          Alcotest.test_case "warm-up ignored" `Quick test_warmup_days_never_flagged;
          Alcotest.test_case "two events" `Quick test_two_spikes_independent;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "paper events" `Quick test_paper_events_detected;
        ] );
      ( "vantage",
        [ Alcotest.test_case "monotone in feeds" `Quick test_vantage_monotone ] );
    ]
