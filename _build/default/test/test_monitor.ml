(* Tests for the off-line monitor (Section 4.2 deployment path). *)

open Net
module M = Moas.Monitor

let victim = Testutil.victim
let legit = Testutil.moas_communities [ 10; 20 ]

let valid ~from ~origin = Testutil.route ~communities:legit ~from [ from; origin ]
let forged ~from ~attacker =
  Testutil.route
    ~communities:(Testutil.moas_communities [ 10; 20; attacker ])
    ~from [ attacker ]

let test_no_conflict_single_feed () =
  let m = M.create () in
  M.observe_route m ~time:1.0 ~feed:(Asn.make 1) (valid ~from:1 ~origin:10);
  Alcotest.(check int) "tracked" 1 (M.prefixes_tracked m);
  Alcotest.(check int) "no conflict" 0 (List.length (M.findings m))

let test_consistent_feeds () =
  let m = M.create () in
  M.observe_route m ~time:1.0 ~feed:(Asn.make 1) (valid ~from:1 ~origin:10);
  M.observe_route m ~time:1.0 ~feed:(Asn.make 2) (valid ~from:2 ~origin:20);
  Alcotest.(check int) "valid MOAS is consistent" 0 (List.length (M.findings m))

let test_conflict_across_feeds () =
  let m = M.create () in
  M.observe_route m ~time:1.0 ~feed:(Asn.make 1) (valid ~from:1 ~origin:10);
  M.observe_route m ~time:2.0 ~feed:(Asn.make 2) (forged ~from:2 ~attacker:666);
  match M.findings m with
  | [ f ] ->
    Alcotest.check Testutil.prefix_testable "prefix" victim f.M.prefix;
    Alcotest.(check int) "two lists" 2 (List.length f.M.distinct_lists);
    Alcotest.(check bool) "attacker among origins" true
      (Asn.Set.mem (Asn.make 666) f.M.origins);
    Alcotest.check Testutil.asn_set_testable "both feeds implicated"
      (Asn.Set.of_list [ 1; 2 ])
      f.M.feeds
  | l -> Alcotest.failf "expected one finding, got %d" (List.length l)

let test_conflict_resolves_on_withdraw () =
  let m = M.create () in
  M.observe_route m ~time:1.0 ~feed:(Asn.make 1) (valid ~from:1 ~origin:10);
  M.observe_route m ~time:2.0 ~feed:(Asn.make 2) (forged ~from:2 ~attacker:666);
  Alcotest.(check int) "live conflict" 1 (List.length (M.findings m));
  M.observe_withdraw m ~time:3.0 ~feed:(Asn.make 2) victim;
  Alcotest.(check int) "resolved after withdrawal" 0 (List.length (M.findings m));
  (* but history remembers *)
  Alcotest.(check int) "history keeps it" 1 (List.length (M.all_findings_ever m))

let test_observe_update_dispatch () =
  let m = M.create () in
  M.observe_update m ~time:1.0 ~feed:(Asn.make 1)
    (Bgp.Update.announce ~sender:(Asn.make 1) (valid ~from:1 ~origin:10));
  Alcotest.(check int) "announce ingested" 1 (M.prefixes_tracked m);
  M.observe_update m ~time:2.0 ~feed:(Asn.make 1)
    (Bgp.Update.withdraw ~sender:(Asn.make 1) victim);
  Alcotest.(check int) "withdraw ingested" 0 (M.prefixes_tracked m)

let test_table_snapshot_replaces () =
  let m = M.create () in
  let p2 = Prefix.of_string "10.0.0.0/8" in
  M.observe_table m ~time:1.0 ~feed:(Asn.make 1)
    [ valid ~from:1 ~origin:10; Testutil.route ~prefix:p2 ~from:1 [ 1; 30 ] ];
  Alcotest.(check int) "two prefixes tracked" 2 (M.prefixes_tracked m);
  (* a fresh snapshot no longer carries the second prefix *)
  M.observe_table m ~time:2.0 ~feed:(Asn.make 1) [ valid ~from:1 ~origin:10 ];
  Alcotest.(check int) "stale entries dropped" 1 (M.prefixes_tracked m)

let test_same_feed_conflicting_over_time () =
  (* a single feed that flips origin between snapshots is NOT a live
     conflict (the monitor sees tables, not history) *)
  let m = M.create () in
  M.observe_route m ~time:1.0 ~feed:(Asn.make 1) (valid ~from:1 ~origin:10);
  M.observe_route m ~time:2.0 ~feed:(Asn.make 1) (forged ~from:1 ~attacker:666);
  Alcotest.(check int) "latest route replaces, one list only" 0
    (List.length (M.findings m))

let test_history_dedup () =
  let m = M.create () in
  M.observe_route m ~time:1.0 ~feed:(Asn.make 1) (valid ~from:1 ~origin:10);
  M.observe_route m ~time:2.0 ~feed:(Asn.make 2) (forged ~from:2 ~attacker:666);
  (* the same conflict re-observed in a later poll *)
  M.observe_route m ~time:3.0 ~feed:(Asn.make 2) (forged ~from:2 ~attacker:666);
  Alcotest.(check int) "history not duplicated" 1
    (List.length (M.all_findings_ever m))

let () =
  Alcotest.run "monitor"
    [
      ( "monitor",
        [
          Alcotest.test_case "single feed" `Quick test_no_conflict_single_feed;
          Alcotest.test_case "consistent feeds" `Quick test_consistent_feeds;
          Alcotest.test_case "conflict across feeds" `Quick test_conflict_across_feeds;
          Alcotest.test_case "conflict resolves" `Quick test_conflict_resolves_on_withdraw;
          Alcotest.test_case "update dispatch" `Quick test_observe_update_dispatch;
          Alcotest.test_case "snapshot replaces" `Quick test_table_snapshot_replaces;
          Alcotest.test_case "per-feed replacement" `Quick
            test_same_feed_conflicting_over_time;
          Alcotest.test_case "history dedup" `Quick test_history_dedup;
        ] );
    ]
