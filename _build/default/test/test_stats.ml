(* Tests for Mutil.Stats. *)

module Stats = Mutil.Stats

let feq ?(eps = 1e-9) name expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %f, got %f" name expected actual

let test_mean () =
  feq "empty" 0.0 (Stats.mean []);
  feq "single" 5.0 (Stats.mean [ 5.0 ]);
  feq "several" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  feq "array" 2.0 (Stats.mean_array [| 1.0; 2.0; 3.0 |])

let test_variance_stddev () =
  feq "variance of constant" 0.0 (Stats.variance [ 4.0; 4.0; 4.0 ]);
  (* sample variance of 1..5 is 2.5 *)
  feq "variance 1..5" 2.5 (Stats.variance [ 1.0; 2.0; 3.0; 4.0; 5.0 ]);
  feq "stddev 1..5" (sqrt 2.5) (Stats.stddev [ 1.0; 2.0; 3.0; 4.0; 5.0 ]);
  feq "variance short list" 0.0 (Stats.variance [ 1.0 ])

let test_stderr () =
  let xs = [ 1.0; 2.0; 3.0; 4.0 ] in
  feq "stderr of n=4" (Stats.stddev xs /. 2.0) (Stats.stderr_of_mean xs);
  feq "stderr single" 0.0 (Stats.stderr_of_mean [ 3.0 ])

let test_median () =
  feq "odd length" 3.0 (Stats.median [ 5.0; 1.0; 3.0 ]);
  feq "even length" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  feq "empty" 0.0 (Stats.median [])

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  feq "p0" 1.0 (Stats.percentile 0.0 xs);
  feq "p50" 3.0 (Stats.percentile 50.0 xs);
  feq "p100" 5.0 (Stats.percentile 100.0 xs);
  feq "p25 interpolates" 2.0 (Stats.percentile 25.0 xs);
  feq "p10 interpolates" 1.4 (Stats.percentile 10.0 xs)

let test_min_max () =
  let lo, hi = Stats.min_max [ 3.0; -1.0; 7.0 ] in
  feq "min" (-1.0) lo;
  feq "max" 7.0 hi;
  Alcotest.check_raises "empty raises"
    (Invalid_argument "Stats.min_max: empty list") (fun () ->
      ignore (Stats.min_max []))

let test_histogram () =
  let h = Stats.histogram ~edges:[| 0.0; 1.0; 2.0; 3.0 |] [ 0.5; 1.5; 1.9; 2.5; 3.0 ] in
  Alcotest.(check (array int)) "bucket counts" [| 1; 2; 2 |] h.Stats.counts

let test_histogram_clamps () =
  let h = Stats.histogram ~edges:[| 0.0; 1.0; 2.0 |] [ -5.0; 10.0 ] in
  Alcotest.(check (array int)) "out-of-range clamps" [| 1; 1 |] h.Stats.counts

let test_histogram_bad_edges () =
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Stats.histogram: edges must be strictly increasing")
    (fun () -> ignore (Stats.histogram ~edges:[| 1.0; 1.0 |] []))

let test_int_histogram () =
  let h = Stats.int_histogram ~max_value:3 [ 0; 1; 1; 2; 7; -1 ] in
  Alcotest.(check (array int)) "counts with clamping" [| 2; 2; 1; 1 |] h

let prop_mean_bounds =
  Testutil.qtest "mean lies within min..max"
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let m = Stats.mean xs in
      let lo, hi = Stats.min_max xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let prop_median_bounds =
  Testutil.qtest "median lies within min..max"
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let m = Stats.median xs in
      let lo, hi = Stats.min_max xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let prop_histogram_total =
  Testutil.qtest "histogram counts partition the sample"
    QCheck2.Gen.(list_size (int_range 0 100) (float_range (-10.) 10.))
    (fun xs ->
      let h = Stats.histogram ~edges:[| -5.0; 0.0; 5.0 |] xs in
      Array.fold_left ( + ) 0 h.Stats.counts = List.length xs)

let () =
  Alcotest.run "stats"
    [
      ( "descriptive",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "variance/stddev" `Quick test_variance_stddev;
          Alcotest.test_case "stderr" `Quick test_stderr;
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "min_max" `Quick test_min_max;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "basic buckets" `Quick test_histogram;
          Alcotest.test_case "clamping" `Quick test_histogram_clamps;
          Alcotest.test_case "bad edges" `Quick test_histogram_bad_edges;
          Alcotest.test_case "int histogram" `Quick test_int_histogram;
        ] );
      ( "properties",
        [ prop_mean_bounds; prop_median_bounds; prop_histogram_total ] );
    ]
