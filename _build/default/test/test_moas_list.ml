(* Tests for Moas.Moas_list, Moas.Alarm and Moas.Origin_verification. *)

open Net
module Ml = Moas.Moas_list
module Ov = Moas.Origin_verification

let test_encode_decode () =
  let ases = Asn.Set.of_list [ 1; 2; 226 ] in
  Alcotest.check Testutil.asn_set_testable "roundtrip" ases
    (Option.get (Ml.decode (Ml.encode ases)));
  Alcotest.(check bool) "empty set encodes to nothing" true
    (Ml.decode (Ml.encode Asn.Set.empty) = None)

let test_decode_ignores_other_communities () =
  let communities =
    Bgp.Community.Set.of_list
      [
        Bgp.Community.make (Asn.make 1) Ml.ml_val;
        Bgp.Community.make (Asn.make 7) 42;  (* unrelated community *)
      ]
  in
  Alcotest.check Testutil.asn_set_testable "only MLVal counts"
    (Asn.Set.singleton 1)
    (Option.get (Ml.decode communities))

let test_strip_preserves_other_communities () =
  let other = Bgp.Community.make (Asn.make 7) 42 in
  let communities =
    Bgp.Community.Set.add other (Ml.encode (Asn.Set.of_list [ 1; 2 ]))
  in
  let stripped = Ml.strip communities in
  Alcotest.(check bool) "list gone" true (Ml.decode stripped = None);
  Alcotest.(check bool) "other community kept" true
    (Bgp.Community.Set.mem other stripped)

let test_attach_replaces () =
  let c1 = Ml.encode (Asn.Set.of_list [ 1; 2 ]) in
  let c2 = Ml.attach (Asn.Set.of_list [ 3 ]) c1 in
  Alcotest.check Testutil.asn_set_testable "previous list replaced"
    (Asn.Set.singleton 3)
    (Option.get (Ml.decode c2))

let test_effective () =
  let self = Asn.make 1 in
  let with_list =
    Testutil.route ~communities:(Testutil.moas_communities [ 4; 226 ]) ~from:2
      [ 2; 4 ]
  in
  Alcotest.check Testutil.asn_set_testable "carried list used"
    (Asn.Set.of_list [ 4; 226 ])
    (Ml.effective ~self with_list);
  (* footnote 3: a bare route implies the singleton of its origin *)
  let bare = Testutil.route ~from:2 [ 2; 4 ] in
  Alcotest.check Testutil.asn_set_testable "implicit {origin}"
    (Asn.Set.singleton 4)
    (Ml.effective ~self bare);
  let originated = Bgp.Route.originate ~self Testutil.victim in
  Alcotest.check Testutil.asn_set_testable "originated implies {self}"
    (Asn.Set.singleton 1)
    (Ml.effective ~self originated)

let test_consistency () =
  let a = Asn.Set.of_list [ 1; 2 ] in
  let b = Asn.Set.of_list [ 2; 1 ] in
  let c = Asn.Set.of_list [ 1; 2; 3 ] in
  Alcotest.(check bool) "order irrelevant" true (Ml.consistent a b);
  Alcotest.(check bool) "superset differs" false (Ml.consistent a c);
  Alcotest.(check bool) "all consistent (dup)" true (Ml.all_consistent [ a; b ]);
  Alcotest.(check bool) "conflict found" false (Ml.all_consistent [ a; b; c ]);
  Alcotest.(check bool) "vacuous" true (Ml.all_consistent []);
  Alcotest.(check bool) "single" true (Ml.all_consistent [ c ])

let test_self_consistent () =
  let self = Asn.make 9 in
  let good =
    Testutil.route ~communities:(Testutil.moas_communities [ 4; 226 ]) ~from:2
      [ 2; 4 ]
  in
  Alcotest.(check bool) "origin in list" true (Ml.self_consistent ~self good);
  (* an attacker whose forged list omits its own origin is caught locally *)
  let bad =
    Testutil.route ~communities:(Testutil.moas_communities [ 4; 226 ]) ~from:2
      [ 2; 666 ]
  in
  Alcotest.(check bool) "origin missing from list" false
    (Ml.self_consistent ~self bad);
  let bare = Testutil.route ~from:2 [ 2; 666 ] in
  Alcotest.(check bool) "no list is vacuously self-consistent" true
    (Ml.self_consistent ~self bare)

let test_alarm_signature_dedup () =
  let mk lists =
    Moas.Alarm.make ~observer:(Asn.make 1) ~prefix:Testutil.victim ~time:1.0
      ~conflicting_lists:lists ~origins_seen:Asn.Set.empty
  in
  let a = mk [ Asn.Set.of_list [ 1; 2 ]; Asn.Set.singleton 3 ] in
  let b = mk [ Asn.Set.singleton 3; Asn.Set.of_list [ 1; 2 ] ] in
  Alcotest.(check string) "signature is order independent"
    (Moas.Alarm.signature a) (Moas.Alarm.signature b);
  let c = mk [ Asn.Set.singleton 4; Asn.Set.of_list [ 1; 2 ] ] in
  Alcotest.(check bool) "different conflict differs" true
    (Moas.Alarm.signature a <> Moas.Alarm.signature c)

let test_oracle () =
  let oracle = Ov.create () in
  Alcotest.(check (option Testutil.asn_set_testable)) "unknown prefix" None
    (Ov.query oracle Testutil.victim);
  Alcotest.(check int) "query counted" 1 (Ov.query_count oracle);
  Ov.register oracle Testutil.victim (Asn.Set.of_list [ 1; 2 ]);
  Alcotest.(check bool) "entitled" true (Ov.entitled oracle Testutil.victim (Asn.make 1));
  Alcotest.(check bool) "not entitled" false
    (Ov.entitled oracle Testutil.victim (Asn.make 3));
  Alcotest.(check int) "three queries now" 3 (Ov.query_count oracle);
  (* peek does not count *)
  ignore (Ov.peek oracle Testutil.victim);
  Alcotest.(check int) "peek free" 3 (Ov.query_count oracle);
  Ov.reset_query_count oracle;
  Alcotest.(check int) "reset" 0 (Ov.query_count oracle);
  Ov.unregister oracle Testutil.victim;
  Alcotest.(check bool) "unregistered" true (Ov.peek oracle Testutil.victim = None)

let test_deployment () =
  let all = Asn.Set.of_list (List.init 40 (fun i -> i + 1)) in
  let rng = Mutil.Rng.of_int 5 in
  Alcotest.(check int) "disabled = nobody" 0
    (Asn.Set.cardinal (Moas.Deployment.capable_set rng all Moas.Deployment.Disabled));
  Alcotest.(check int) "full = everybody" 40
    (Asn.Set.cardinal (Moas.Deployment.capable_set rng all Moas.Deployment.Full));
  let half = Moas.Deployment.capable_set rng all (Moas.Deployment.Fraction 0.5) in
  Alcotest.(check int) "half = 20 ASes" 20 (Asn.Set.cardinal half);
  Alcotest.(check bool) "subset of universe" true (Asn.Set.subset half all);
  let explicit =
    Moas.Deployment.capable_set rng all
      (Moas.Deployment.Exactly (Asn.Set.of_list [ 1; 2; 999 ]))
  in
  Alcotest.check Testutil.asn_set_testable "explicit intersected"
    (Asn.Set.of_list [ 1; 2 ])
    explicit

let prop_roundtrip =
  Testutil.qtest "encode/decode roundtrip for non-empty sets"
    Testutil.asn_set_gen
    (fun ases ->
      QCheck2.assume (not (Asn.Set.is_empty ases));
      match Ml.decode (Ml.encode ases) with
      | Some got -> Asn.Set.equal got ases
      | None -> false)

let prop_consistency_is_equality =
  Testutil.qtest "consistency = set equality"
    QCheck2.Gen.(pair Testutil.asn_set_gen Testutil.asn_set_gen)
    (fun (a, b) -> Ml.consistent a b = Asn.Set.equal a b)

let () =
  Alcotest.run "moas_list"
    [
      ( "codec",
        [
          Alcotest.test_case "encode/decode" `Quick test_encode_decode;
          Alcotest.test_case "other communities ignored" `Quick
            test_decode_ignores_other_communities;
          Alcotest.test_case "strip" `Quick test_strip_preserves_other_communities;
          Alcotest.test_case "attach replaces" `Quick test_attach_replaces;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "effective list" `Quick test_effective;
          Alcotest.test_case "consistency" `Quick test_consistency;
          Alcotest.test_case "self-consistency" `Quick test_self_consistent;
        ] );
      ("alarm", [ Alcotest.test_case "signatures" `Quick test_alarm_signature_dedup ]);
      ("oracle", [ Alcotest.test_case "registry + accounting" `Quick test_oracle ]);
      ("deployment", [ Alcotest.test_case "capable sets" `Quick test_deployment ]);
      ("properties", [ prop_roundtrip; prop_consistency_is_equality ]);
    ]
