(* Tests for Net.Prefix_trie, including a model-based comparison against
   Prefix.Map over random operation sequences. *)

open Net

let p = Prefix.of_string

let test_empty () =
  Alcotest.(check bool) "empty" true (Prefix_trie.is_empty Prefix_trie.empty);
  Alcotest.(check int) "cardinal 0" 0 (Prefix_trie.cardinal Prefix_trie.empty);
  Alcotest.(check bool) "no match" true
    (Prefix_trie.longest_match (Ipv4.of_string "1.2.3.4") Prefix_trie.empty = None)

let test_add_find () =
  let t = Prefix_trie.add (p "10.0.0.0/8") "a" Prefix_trie.empty in
  Alcotest.(check (option string)) "exact" (Some "a")
    (Prefix_trie.find_opt (p "10.0.0.0/8") t);
  Alcotest.(check (option string)) "different length misses" None
    (Prefix_trie.find_opt (p "10.0.0.0/16") t);
  Alcotest.(check bool) "mem" true (Prefix_trie.mem (p "10.0.0.0/8") t)

let test_replace () =
  let t =
    Prefix_trie.empty
    |> Prefix_trie.add (p "10.0.0.0/8") 1
    |> Prefix_trie.add (p "10.0.0.0/8") 2
  in
  Alcotest.(check (option int)) "replaced" (Some 2)
    (Prefix_trie.find_opt (p "10.0.0.0/8") t);
  Alcotest.(check int) "still one binding" 1 (Prefix_trie.cardinal t)

let test_remove_prunes () =
  let t =
    Prefix_trie.empty
    |> Prefix_trie.add (p "10.2.3.0/24") ()
    |> Prefix_trie.remove (p "10.2.3.0/24")
  in
  Alcotest.(check bool) "empty again after remove" true (Prefix_trie.is_empty t)

let test_longest_match () =
  let t =
    Prefix_trie.of_list
      [ (p "0.0.0.0/0", "default"); (p "10.0.0.0/8", "eight");
        (p "10.2.0.0/16", "sixteen"); (p "10.2.3.0/24", "twentyfour") ]
  in
  let lookup addr =
    match Prefix_trie.longest_match (Ipv4.of_string addr) t with
    | Some (_, v) -> v
    | None -> "none"
  in
  Alcotest.(check string) "most specific" "twentyfour" (lookup "10.2.3.99");
  Alcotest.(check string) "sixteen" "sixteen" (lookup "10.2.4.1");
  Alcotest.(check string) "eight" "eight" (lookup "10.3.0.1");
  Alcotest.(check string) "default" "default" (lookup "192.0.2.1")

let test_matches_order () =
  let t =
    Prefix_trie.of_list
      [ (p "0.0.0.0/0", 0); (p "10.0.0.0/8", 8); (p "10.2.0.0/16", 16) ]
  in
  let ms = Prefix_trie.matches (Ipv4.of_string "10.2.0.1") t in
  Alcotest.(check (list int)) "most specific first" [ 16; 8; 0 ]
    (List.map snd ms)

let test_covered () =
  let t =
    Prefix_trie.of_list
      [
        (p "10.0.0.0/8", "top");
        (p "10.2.0.0/16", "sub");
        (p "10.2.3.0/24", "subsub");
        (p "11.0.0.0/8", "other");
      ]
  in
  let covered = Prefix_trie.covered (p "10.2.0.0/16") t |> List.map snd in
  Alcotest.(check (list string)) "covered finds the subtree" [ "sub"; "subsub" ]
    (List.sort compare covered);
  (* detecting the paper's sub-prefix hijack: a /25 inside a /24 *)
  let victim = p "192.0.2.0/24" in
  let sub, _ = Prefix.split victim in
  let t = Prefix_trie.of_list [ (victim, "valid"); (sub, "hijack") ] in
  Alcotest.(check int) "sub-prefix visible under the victim" 2
    (List.length (Prefix_trie.covered victim t))

let test_update () =
  let t = Prefix_trie.of_list [ (p "10.0.0.0/8", 1) ] in
  let t = Prefix_trie.update (p "10.0.0.0/8") (Option.map succ) t in
  Alcotest.(check (option int)) "updated" (Some 2)
    (Prefix_trie.find_opt (p "10.0.0.0/8") t);
  let t = Prefix_trie.update (p "10.0.0.0/8") (fun _ -> None) t in
  Alcotest.(check bool) "deleted via update" true (Prefix_trie.is_empty t)

let test_bindings_sorted_and_complete () =
  let prefixes =
    [ p "10.0.0.0/8"; p "10.128.0.0/9"; p "0.0.0.0/0"; p "192.0.2.0/24" ]
  in
  let t = Prefix_trie.of_list (List.map (fun q -> (q, Prefix.to_string q)) prefixes) in
  Alcotest.(check int) "cardinal" 4 (Prefix_trie.cardinal t);
  let keys = List.map fst (Prefix_trie.bindings t) in
  Alcotest.(check (list string)) "all present"
    (List.sort compare (List.map Prefix.to_string prefixes))
    (List.sort compare (List.map Prefix.to_string keys))

let test_persistence () =
  let t0 = Prefix_trie.of_list [ (p "10.0.0.0/8", 1) ] in
  let t1 = Prefix_trie.add (p "11.0.0.0/8") 2 t0 in
  Alcotest.(check int) "old version untouched" 1 (Prefix_trie.cardinal t0);
  Alcotest.(check int) "new version extended" 2 (Prefix_trie.cardinal t1)

(* model-based property: a random sequence of add/remove agrees with
   Prefix.Map, and longest_match agrees with a naive scan *)
let op_gen =
  QCheck2.Gen.(
    list_size (int_range 0 60)
      (pair bool
         (map2
            (fun i len -> Prefix.make (Ipv4.of_int (i * 7919 mod 65536 * 65536)) len)
            (int_range 0 200) (int_range 0 24))))

let apply_ops ops =
  List.fold_left
    (fun (trie, map) (add, prefix) ->
      if add then (Prefix_trie.add prefix 0 trie, Prefix.Map.add prefix 0 map)
      else (Prefix_trie.remove prefix trie, Prefix.Map.remove prefix map))
    (Prefix_trie.empty, Prefix.Map.empty)
    ops

let prop_model_bindings =
  Testutil.qtest ~count:300 "trie agrees with Map over random op sequences"
    op_gen
    (fun ops ->
      let trie, map = apply_ops ops in
      let trie_bindings =
        List.map (fun (q, _) -> Prefix.to_string q) (Prefix_trie.bindings trie)
        |> List.sort compare
      in
      let map_bindings =
        List.map (fun (q, _) -> Prefix.to_string q) (Prefix.Map.bindings map)
        |> List.sort compare
      in
      trie_bindings = map_bindings)

let prop_longest_match_model =
  Testutil.qtest ~count:300 "longest_match agrees with naive scan"
    QCheck2.Gen.(pair op_gen Testutil.ipv4_gen)
    (fun (ops, addr) ->
      let trie, map = apply_ops ops in
      let naive =
        Prefix.Map.fold
          (fun q _ best ->
            if Prefix.contains_addr q addr then
              match best with
              | Some b when Prefix.length b >= Prefix.length q -> best
              | _ -> Some q
            else best)
          map None
      in
      let got = Option.map fst (Prefix_trie.longest_match addr trie) in
      (match (naive, got) with
      | None, None -> true
      | Some a, Some b -> Prefix.equal a b
      | _ -> false))

let prop_cardinal =
  Testutil.qtest ~count:300 "cardinal equals model size" op_gen (fun ops ->
      let trie, map = apply_ops ops in
      Prefix_trie.cardinal trie = Prefix.Map.cardinal map)

let () =
  Alcotest.run "prefix_trie"
    [
      ( "operations",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/find" `Quick test_add_find;
          Alcotest.test_case "replace" `Quick test_replace;
          Alcotest.test_case "remove prunes" `Quick test_remove_prunes;
          Alcotest.test_case "longest match" `Quick test_longest_match;
          Alcotest.test_case "matches order" `Quick test_matches_order;
          Alcotest.test_case "covered subtree" `Quick test_covered;
          Alcotest.test_case "update" `Quick test_update;
          Alcotest.test_case "bindings" `Quick test_bindings_sorted_and_complete;
          Alcotest.test_case "persistence" `Quick test_persistence;
        ] );
      ( "model-based",
        [ prop_model_bindings; prop_longest_match_model; prop_cardinal ] );
    ]
