(* Golden regression tests: the headline numbers of EXPERIMENTS.md, pinned
   with tolerances.  Every value here is a mean over the paper's 15-run
   protocol with the default seeds; a change means the reproduction's
   behaviour changed and EXPERIMENTS.md must be re-derived. *)

module Sweep = Experiments.Sweep
module Topo = Topology.Paper_topologies
module Srv = Measurement.Synthetic_routeviews
module Mc = Measurement.Moas_cases

let adoption ~topology ~deployment ~n_attackers =
  let cfg = Sweep.config ~topology ~n_origins:1 ~deployment () in
  (Sweep.run_point cfg ~n_attackers).Sweep.mean_adopting

let check_close name ~expected ~tolerance actual =
  if abs_float (actual -. expected) > tolerance then
    Alcotest.failf "%s drifted: expected %.4f +- %.4f, got %.4f" name expected
      tolerance actual

let test_topology_fingerprints () =
  List.iter2
    (fun t (nodes, edges) ->
      Alcotest.(check int) (t.Topo.name ^ " nodes") nodes
        (Topology.As_graph.node_count t.Topo.graph);
      Alcotest.(check int) (t.Topo.name ^ " edges") edges
        (Topology.As_graph.edge_count t.Topo.graph))
    (Topo.all ())
    [ (25, 28); (46, 90); (63, 174) ]

let test_figure9_headline () =
  let t46 = Topo.topology_46 () in
  check_close "46-AS @2 attackers, Normal BGP" ~expected:0.3911 ~tolerance:0.0005
    (adoption ~topology:t46 ~deployment:Moas.Deployment.Disabled ~n_attackers:1);
  check_close "46-AS @30% attackers, Normal BGP" ~expected:0.9042 ~tolerance:0.0005
    (adoption ~topology:t46 ~deployment:Moas.Deployment.Disabled ~n_attackers:14);
  check_close "46-AS @30% attackers, Full MOAS" ~expected:0.1125 ~tolerance:0.0005
    (adoption ~topology:t46 ~deployment:Moas.Deployment.Full ~n_attackers:14)

let test_figure10_ordering () =
  let at_35pct topology =
    let n = Topology.As_graph.node_count topology.Topo.graph in
    adoption ~topology ~deployment:Moas.Deployment.Full
      ~n_attackers:(int_of_float (Float.round (0.35 *. float_of_int n)))
  in
  let a25 = at_35pct (Topo.topology_25 ()) in
  let a46 = at_35pct (Topo.topology_46 ()) in
  let a63 = at_35pct (Topo.topology_63 ()) in
  check_close "25-AS @35%, Full MOAS" ~expected:0.2542 ~tolerance:0.0005 a25;
  check_close "46-AS @35%, Full MOAS" ~expected:0.1356 ~tolerance:0.0005 a46;
  check_close "63-AS @35%, Full MOAS" ~expected:0.0878 ~tolerance:0.0005 a63;
  Alcotest.(check bool) "Experiment 2 ordering" true (a25 > a46 && a46 > a63)

let test_figure11_headline () =
  let t63 = Topo.topology_63 () in
  check_close "63-AS @30%, Half MOAS" ~expected:0.4985 ~tolerance:0.0005
    (adoption ~topology:t63 ~deployment:(Moas.Deployment.Fraction 0.5)
       ~n_attackers:19)

let measurement_summary =
  lazy (Measurement.Report.run Srv.default_params)

let test_measurement_aggregates () =
  let summary = Lazy.force measurement_summary in
  Alcotest.(check int) "total MOAS cases" 3824 summary.Mc.total_cases;
  Alcotest.(check int) "one-day cases" 1375 summary.Mc.one_day_cases;
  Alcotest.(check int) "observed days" 1279 summary.Mc.observed_day_count;
  check_close "median daily 1998" ~expected:676.0 ~tolerance:1.0
    (Mc.median_daily_in_year summary 1998);
  check_close "median daily 2001" ~expected:1288.0 ~tolerance:1.0
    (Mc.median_daily_in_year summary 2001);
  Alcotest.(check int) "2001 event day" 2253
    (Mc.cases_on summary Srv.event_2001)

let test_measurement_is_deterministic () =
  let a = Lazy.force measurement_summary in
  let b = Measurement.Report.run Srv.default_params in
  Alcotest.(check bool) "same daily series on re-run" true
    (a.Mc.daily_counts = b.Mc.daily_counts)

let () =
  Alcotest.run "golden"
    [
      ( "golden",
        [
          Alcotest.test_case "topology fingerprints" `Quick test_topology_fingerprints;
          Alcotest.test_case "figure 9 headline" `Slow test_figure9_headline;
          Alcotest.test_case "figure 10 ordering" `Slow test_figure10_ordering;
          Alcotest.test_case "figure 11 headline" `Slow test_figure11_headline;
          Alcotest.test_case "measurement aggregates" `Quick test_measurement_aggregates;
          Alcotest.test_case "measurement determinism" `Quick
            test_measurement_is_deterministic;
        ] );
    ]
