(* Tests for Topology.Relationships and the Gao-Rexford policy layer. *)

open Net
module Rel = Topology.Relationships
module GR = Bgp.Gao_rexford
module Rng = Mutil.Rng

(* a small ground-truth internet for relationship checks *)
let internet =
  lazy
    (Topology.Generate.generate (Rng.of_int 7)
       {
         Topology.Generate.tier1_count = 3;
         tier2_count = 6;
         tier2_uplinks = 2;
         tier2_peering_prob = 0.5;
         stub_count = 20;
         stub_multihome_prob = 0.5;
       })

let test_ground_truth_views () =
  let net = Lazy.force internet in
  let rels = Rel.of_ground_truth net in
  let t1 = Asn.Set.elements net.Topology.Generate.tier1 in
  (* tier-1s peer with each other *)
  (match t1 with
  | a :: b :: _ ->
    Alcotest.(check (option string)) "tier1-tier1 is peering" (Some "peer")
      (Option.map Rel.relationship_to_string (Rel.view rels ~self:a ~neighbor:b))
  | _ -> Alcotest.fail "expected tier-1 ASes");
  (* a stub's transit neighbours are its providers *)
  let stub = Asn.Set.min_elt net.Topology.Generate.stub in
  Asn.Set.iter
    (fun provider ->
      Alcotest.(check (option string)) "stub buys transit" (Some "provider")
        (Option.map Rel.relationship_to_string
           (Rel.view rels ~self:stub ~neighbor:provider));
      (* and symmetrically the provider sees a customer *)
      Alcotest.(check (option string)) "provider sells transit" (Some "customer")
        (Option.map Rel.relationship_to_string
           (Rel.view rels ~self:provider ~neighbor:stub)))
    (Topology.As_graph.neighbors net.Topology.Generate.graph stub)

let test_view_unknown_edge () =
  let rels = Rel.infer_by_degree (Testutil.small_graph ()) in
  Alcotest.(check bool) "non-edge unknown" true
    (Rel.view rels ~self:(Asn.make 1) ~neighbor:(Asn.make 99) = None)

let test_degree_inference () =
  (* star: the hub has degree 4, leaves 1 -> hub is everyone's provider *)
  let g = Topology.As_graph.of_edges [ (1, 10); (2, 10); (3, 10); (4, 10) ] in
  let rels = Rel.infer_by_degree g in
  List.iter
    (fun leaf ->
      Alcotest.(check (option string))
        (Printf.sprintf "hub provides %d" leaf)
        (Some "provider")
        (Option.map Rel.relationship_to_string
           (Rel.view rels ~self:leaf ~neighbor:10)))
    [ 1; 2; 3; 4 ];
  (* equal-degree edge becomes a peering *)
  let g2 = Topology.As_graph.of_edges [ (1, 2) ] in
  let rels2 = Rel.infer_by_degree g2 in
  Alcotest.(check (option string)) "balanced edge is peering" (Some "peer")
    (Option.map Rel.relationship_to_string (Rel.view rels2 ~self:1 ~neighbor:2))

let test_degree_inference_no_provider_cycle () =
  (* provider chains follow strictly increasing degree, so no cycles *)
  let t = Topology.Paper_topologies.topology_46 () in
  let g = t.Topology.Paper_topologies.graph in
  let rels = Rel.infer_by_degree g in
  (* walk provider links from every node; a cycle would exceed n steps *)
  let n = Topology.As_graph.node_count g in
  Topology.As_graph.fold_nodes
    (fun start () ->
      let rec climb asn steps =
        if steps > n then Alcotest.fail "provider cycle detected"
        else
          match Asn.Set.min_elt_opt (Rel.providers rels g asn) with
          | Some p -> climb p (steps + 1)
          | None -> ()
      in
      climb start 0)
    g ()

let test_selectors_partition_neighbors () =
  let net = Lazy.force internet in
  let g = net.Topology.Generate.graph in
  let rels = Rel.of_ground_truth net in
  Topology.As_graph.fold_nodes
    (fun asn () ->
      let p = Rel.providers rels g asn in
      let c = Rel.customers rels g asn in
      let e = Rel.peers rels g asn in
      let all = Asn.Set.union p (Asn.Set.union c e) in
      Alcotest.check Testutil.asn_set_testable
        (Printf.sprintf "roles partition neighbors of %d" asn)
        (Topology.As_graph.neighbors g asn)
        all;
      Alcotest.(check int) "roles disjoint"
        (Asn.Set.cardinal all)
        (Asn.Set.cardinal p + Asn.Set.cardinal c + Asn.Set.cardinal e))
    g ()

let test_valley_free () =
  (* two tier-1 peers (101, 102); 1001 buys from both; 1002 buys from 102;
     stub 10001 buys from 1001 *)
  let internet =
    {
      Topology.Generate.graph =
        Topology.As_graph.of_edges
          [ (101, 102); (1001, 101); (1001, 102); (1002, 102); (10001, 1001) ];
      tier1 = Asn.Set.of_list [ 101; 102 ];
      tier2 = Asn.Set.of_list [ 1001; 1002 ];
      stub = Asn.Set.singleton 10001;
    }
  in
  let rels = Rel.of_ground_truth internet in
  (* up, up, peer, down: the shape real routes have *)
  Alcotest.(check bool) "up-up-peer-down is valley free" true
    (Rel.is_valley_free rels [ 1002; 102; 101; 1001; 10001 ]);
  (* pure uphill *)
  Alcotest.(check bool) "pure uphill ok" true
    (Rel.is_valley_free rels [ 101; 1001; 10001 ]);
  (* 1002 -> 102 (up), 102 -> 1001 (down to customer), 1001 -> 101 (up):
     the path [101; 1001; 102; 1002] climbs again after descending *)
  Alcotest.(check bool) "down then up is a valley" false
    (Rel.is_valley_free rels [ 101; 1001; 102; 1002 ]);
  (* a path over an unknown edge cannot be certified *)
  Alcotest.(check bool) "unknown edge rejected" false
    (Rel.is_valley_free rels [ 101; 9999 ])

let test_gao_rexford_import_prefs () =
  let net = Lazy.force internet in
  let rels = Rel.of_ground_truth net in
  let stub = Asn.Set.min_elt net.Topology.Generate.stub in
  let provider =
    Asn.Set.min_elt (Topology.As_graph.neighbors net.Topology.Generate.graph stub)
  in
  let policy = GR.policy rels ~self:provider in
  let from_customer =
    Option.get
      (policy.Bgp.Policy.import ~peer:stub (Testutil.route ~from:(Asn.to_int stub) [ Asn.to_int stub ]))
  in
  Alcotest.(check int) "customer route preferred" GR.local_pref_customer
    from_customer.Bgp.Route.local_pref

let test_gao_rexford_export_valley_free () =
  let net = Lazy.force internet in
  let g = net.Topology.Generate.graph in
  let rels = Rel.of_ground_truth net in
  (* pick a tier-2 AS with both a provider and a peer or second provider *)
  let t2 = Asn.Set.min_elt net.Topology.Generate.tier2 in
  let policy = GR.policy rels ~self:t2 in
  let providers = Rel.providers rels g t2 in
  let customers = Rel.customers rels g t2 in
  match (Asn.Set.min_elt_opt providers, Asn.Set.min_elt_opt customers) with
  | Some provider, Some customer ->
    (* a provider-learned route must not flow to another provider/peer *)
    let provider_route =
      Testutil.route ~from:(Asn.to_int provider)
        [ Asn.to_int provider; 9999 mod 65536 ]
    in
    Alcotest.(check bool) "provider route goes to customers" true
      (policy.Bgp.Policy.export ~peer:customer provider_route <> None);
    Asn.Set.iter
      (fun other_provider ->
        if not (Asn.equal other_provider provider) then
          Alcotest.(check bool) "provider route never climbs again" true
            (policy.Bgp.Policy.export ~peer:other_provider provider_route = None))
      providers;
    (* a customer-learned route is exported everywhere *)
    let customer_route =
      Testutil.route ~from:(Asn.to_int customer) [ Asn.to_int customer ]
    in
    Alcotest.(check bool) "customer route goes up" true
      (policy.Bgp.Policy.export ~peer:provider customer_route <> None)
  | _ -> Alcotest.fail "tier-2 AS lacks provider or customer"

let test_scenario_with_policy_converges () =
  let t = Topology.Paper_topologies.topology_46 () in
  let rng = Rng.of_int 12 in
  let base =
    Attack.Scenario.random rng ~graph:t.Topology.Paper_topologies.graph
      ~stub:t.Topology.Paper_topologies.stub ~n_origins:1 ~n_attackers:3
      ~deployment:Moas.Deployment.Full
  in
  let scenario =
    { base with Attack.Scenario.policy_mode = Attack.Scenario.Gao_rexford_inferred }
  in
  let outcome = Testutil.run_scenario scenario in
  Alcotest.(check bool) "policy routing converges" true
    outcome.Attack.Scenario.converged;
  Alcotest.(check bool) "detection still effective" true
    (outcome.Attack.Scenario.fraction_adopting < 0.3)

let () =
  Alcotest.run "relationships"
    [
      ( "relationships",
        [
          Alcotest.test_case "ground truth views" `Quick test_ground_truth_views;
          Alcotest.test_case "unknown edge" `Quick test_view_unknown_edge;
          Alcotest.test_case "degree inference" `Quick test_degree_inference;
          Alcotest.test_case "no provider cycles" `Quick
            test_degree_inference_no_provider_cycle;
          Alcotest.test_case "selectors partition" `Quick
            test_selectors_partition_neighbors;
          Alcotest.test_case "valley-free" `Quick test_valley_free;
        ] );
      ( "gao_rexford",
        [
          Alcotest.test_case "import preferences" `Quick test_gao_rexford_import_prefs;
          Alcotest.test_case "valley-free export" `Quick
            test_gao_rexford_export_valley_free;
          Alcotest.test_case "scenario convergence" `Quick
            test_scenario_with_policy_converges;
        ] );
    ]
