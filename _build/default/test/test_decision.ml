(* Tests for the BGP decision process, including the oldest-route rule. *)

open Net
module D = Bgp.Decision

let self = Asn.make 999

let r = Testutil.route

let test_local_pref_wins () =
  let low = r ~local_pref:50 ~from:1 [ 1; 10 ] in
  let high = r ~local_pref:200 ~from:2 [ 2; 3; 4; 5; 10 ] in
  (* higher local-pref wins despite the longer path *)
  Alcotest.check Testutil.route_testable "local pref dominates" high
    (Option.get (D.best ~self [ low; high ]))

let test_shorter_path_wins () =
  let short = r ~from:5 [ 5; 10 ] in
  let long = r ~from:2 [ 2; 3; 10 ] in
  Alcotest.check Testutil.route_testable "shorter AS path" short
    (Option.get (D.best ~self [ long; short ]))

let test_origin_attr_breaks_tie () =
  let igp = r ~origin:Bgp.Route.Igp ~from:5 [ 5; 10 ] in
  let egp = r ~origin:Bgp.Route.Egp ~from:2 [ 2; 10 ] in
  let incomplete = r ~origin:Bgp.Route.Incomplete ~from:1 [ 1; 10 ] in
  Alcotest.check Testutil.route_testable "IGP < EGP < INCOMPLETE" igp
    (Option.get (D.best ~self [ incomplete; egp; igp ]))

let test_peer_tiebreak () =
  let a = r ~from:7 [ 7; 10 ] in
  let b = r ~from:3 [ 3; 10 ] in
  Alcotest.check Testutil.route_testable "lowest peer AS wins full ties" b
    (Option.get (D.best ~self [ a; b ]))

let test_originated_beats_learned () =
  let originated = Bgp.Route.originate ~self (Testutil.victim) in
  let learned = r ~from:3 [ 3; 10 ] in
  Alcotest.check Testutil.route_testable "empty path wins" originated
    (Option.get (D.best ~self [ learned; originated ]))

let test_best_empty () =
  Alcotest.(check bool) "no candidate" true (D.best ~self [] = None)

let test_rank_consistent_with_best () =
  let candidates =
    [ r ~from:1 [ 1; 2; 10 ]; r ~from:2 [ 2; 10 ]; r ~from:3 [ 3; 4; 5; 10 ] ]
  in
  match D.rank ~self candidates with
  | best :: _ ->
    Alcotest.check Testutil.route_testable "rank head = best" best
      (Option.get (D.best ~self candidates))
  | [] -> Alcotest.fail "rank dropped candidates"

let test_incumbent_keeps_equal () =
  let incumbent = r ~from:7 [ 7; 10 ] in
  let challenger = r ~from:3 [ 3; 10 ] in
  (* same attributes; without history the lower peer would win, but the
     installed route is kept (oldest-route rule) *)
  let kept =
    D.best_with_incumbent ~self ~incumbent:(Some incumbent)
      [ challenger; incumbent ]
  in
  Alcotest.check Testutil.route_testable "incumbent retained on tie" incumbent
    (Option.get kept)

let test_incumbent_loses_to_strictly_better () =
  let incumbent = r ~from:7 [ 7; 6; 10 ] in
  let challenger = r ~from:3 [ 3; 10 ] in
  let chosen =
    D.best_with_incumbent ~self ~incumbent:(Some incumbent)
      [ challenger; incumbent ]
  in
  Alcotest.check Testutil.route_testable "strictly shorter path replaces"
    challenger (Option.get chosen)

let test_incumbent_gone () =
  let incumbent = r ~from:7 [ 7; 10 ] in
  let challenger = r ~from:3 [ 3; 9; 10 ] in
  (* the incumbent is no longer a candidate: plain selection applies *)
  let chosen =
    D.best_with_incumbent ~self ~incumbent:(Some incumbent) [ challenger ]
  in
  Alcotest.check Testutil.route_testable "falls back to best" challenger
    (Option.get chosen)

let test_incumbent_none () =
  let challenger = r ~from:3 [ 3; 10 ] in
  Alcotest.check Testutil.route_testable "no incumbent = plain best" challenger
    (Option.get (D.best_with_incumbent ~self ~incumbent:None [ challenger ]))

let route_gen =
  QCheck2.Gen.(
    map2
      (fun (lp, from) path -> Testutil.route ~local_pref:lp ~from path)
      (pair (int_range 50 200) (int_range 1 100))
      (list_size (int_range 1 6) Testutil.asn_gen))

let prop_prefer_antisymmetric =
  Testutil.qtest "prefer is antisymmetric"
    QCheck2.Gen.(pair route_gen route_gen)
    (fun (a, b) ->
      let ab = D.prefer ~self a b and ba = D.prefer ~self b a in
      (ab > 0 && ba < 0) || (ab < 0 && ba > 0) || (ab = 0 && ba = 0))

let prop_prefer_transitive =
  Testutil.qtest "prefer is transitive"
    QCheck2.Gen.(triple route_gen route_gen route_gen)
    (fun (a, b, c) ->
      let le x y = D.prefer ~self x y <= 0 in
      (not (le a b && le b c)) || le a c)

let prop_best_is_minimum =
  Testutil.qtest "best is preferred over every candidate"
    QCheck2.Gen.(list_size (int_range 1 10) route_gen)
    (fun candidates ->
      match D.best ~self candidates with
      | None -> false
      | Some b -> List.for_all (fun c -> D.prefer ~self b c <= 0) candidates)

let prop_incumbent_never_worse =
  Testutil.qtest "incumbent rule never selects a strictly worse route"
    QCheck2.Gen.(pair route_gen (list_size (int_range 1 8) route_gen))
    (fun (incumbent, others) ->
      let candidates = incumbent :: others in
      match
        D.best_with_incumbent ~self ~incumbent:(Some incumbent) candidates
      with
      | None -> false
      | Some chosen ->
        List.for_all (fun c -> D.prefer_attrs chosen c <= 0) candidates)

let () =
  Alcotest.run "decision"
    [
      ( "ordering",
        [
          Alcotest.test_case "local pref" `Quick test_local_pref_wins;
          Alcotest.test_case "path length" `Quick test_shorter_path_wins;
          Alcotest.test_case "origin attribute" `Quick test_origin_attr_breaks_tie;
          Alcotest.test_case "peer tie-break" `Quick test_peer_tiebreak;
          Alcotest.test_case "originated wins" `Quick test_originated_beats_learned;
          Alcotest.test_case "empty" `Quick test_best_empty;
          Alcotest.test_case "rank vs best" `Quick test_rank_consistent_with_best;
        ] );
      ( "oldest-route rule",
        [
          Alcotest.test_case "tie keeps incumbent" `Quick test_incumbent_keeps_equal;
          Alcotest.test_case "strictly better replaces" `Quick
            test_incumbent_loses_to_strictly_better;
          Alcotest.test_case "incumbent withdrawn" `Quick test_incumbent_gone;
          Alcotest.test_case "no incumbent" `Quick test_incumbent_none;
        ] );
      ( "properties",
        [
          prop_prefer_antisymmetric;
          prop_prefer_transitive;
          prop_best_is_minimum;
          prop_incumbent_never_worse;
        ] );
    ]
