(* Tests for the experiment harness: Sweep averaging discipline, figure
   generation, ablations, and the qualitative claims of the paper. *)

module Sweep = Experiments.Sweep
module Figures = Experiments.Figures
module Ablation = Experiments.Ablation
module Topo = Topology.Paper_topologies

let t46 = lazy (Topo.topology_46 ())

let cfg ?(deployment = Moas.Deployment.Disabled) ?(n_origins = 1) () =
  Sweep.config ~topology:(Lazy.force t46) ~n_origins ~deployment ()

let test_origins_stable_across_selections () =
  let c = cfg () in
  (* same selection index gives the same origins no matter when queried *)
  Alcotest.(check (list int)) "selection 0 stable"
    (Sweep.origins_for c ~selection:0)
    (Sweep.origins_for c ~selection:0);
  Alcotest.(check bool) "distinct selections differ" true
    (Sweep.origins_for c ~selection:0 <> Sweep.origins_for c ~selection:1)

let test_origins_are_stubs () =
  let c = cfg ~n_origins:2 () in
  let stubs = (Lazy.force t46).Topo.stub in
  List.iter
    (fun o ->
      Alcotest.(check bool) "origin from stub pool" true (Net.Asn.Set.mem o stubs))
    (Sweep.origins_for c ~selection:2)

let test_point_shape () =
  let c = cfg () in
  let p = Sweep.run_point c ~n_attackers:3 in
  Alcotest.(check int) "attacker count recorded" 3 p.Sweep.n_attackers;
  Alcotest.(check bool) "fraction in range" true
    (p.Sweep.mean_adopting >= 0.0 && p.Sweep.mean_adopting <= 1.0);
  Alcotest.(check (float 1e-9)) "attacker fraction" (3.0 /. 46.0)
    p.Sweep.attacker_fraction;
  Alcotest.(check bool) "all runs converged" true p.Sweep.all_converged

let test_point_deterministic () =
  let c = cfg ~deployment:(Moas.Deployment.Fraction 0.5) () in
  let a = Sweep.run_point c ~n_attackers:5 in
  let b = Sweep.run_point c ~n_attackers:5 in
  Alcotest.(check (float 0.0)) "same mean" a.Sweep.mean_adopting b.Sweep.mean_adopting;
  Alcotest.(check (float 0.0)) "same stderr" a.Sweep.stderr_adopting
    b.Sweep.stderr_adopting

let test_no_attackers_point () =
  let c = cfg ~deployment:Moas.Deployment.Full () in
  let p = Sweep.run_point c ~n_attackers:0 in
  Alcotest.(check (float 0.0)) "nothing to adopt" 0.0 p.Sweep.mean_adopting;
  Alcotest.(check (float 0.0)) "no alarms in benign runs" 0.0
    p.Sweep.mean_alarm_count

let test_default_attacker_counts () =
  let counts = Sweep.default_attacker_counts (Lazy.force t46) in
  Alcotest.(check bool) "non-empty ascending" true
    (counts = List.sort_uniq compare counts);
  List.iter
    (fun n -> Alcotest.(check bool) "within range" true (n >= 1 && n <= 21))
    counts

let test_full_detection_dominates_normal () =
  (* the paper's headline: at every sweep point full detection adopts no
     more than normal BGP *)
  let normal = Sweep.run (cfg ()) ~n_attackers_list:[ 2; 8; 14 ] in
  let full =
    Sweep.run (cfg ~deployment:Moas.Deployment.Full ()) ~n_attackers_list:[ 2; 8; 14 ]
  in
  List.iter2
    (fun (n : Sweep.point) (f : Sweep.point) ->
      Alcotest.(check bool)
        (Printf.sprintf "full <= normal at %d attackers" n.Sweep.n_attackers)
        true
        (f.Sweep.mean_adopting <= n.Sweep.mean_adopting +. 1e-9);
      Alcotest.(check bool) "full detection detects" true
        (f.Sweep.detection_rate > 0.99))
    normal full

let test_figure9_shape () =
  let figures = Figures.figure9 () in
  Alcotest.(check int) "two sub-figures" 2 (List.length figures);
  List.iter
    (fun f ->
      Alcotest.(check int) "two series" 2 (List.length f.Figures.series);
      List.iter
        (fun s ->
          Alcotest.(check bool) "series non-empty" true
            (List.length s.Mutil.Ascii_plot.points > 5))
        f.Figures.series)
    figures

let test_figure_render_and_csv () =
  match Figures.figure9 () with
  | fig :: _ ->
    let text = Figures.render fig in
    Testutil.check_contains ~what:"figure render" text "Figure 9(a)";
    Testutil.check_contains ~what:"figure render" text "Normal BGP";
    Testutil.check_contains ~what:"figure render" text "% attackers";
    let header, rows = Figures.to_csv fig in
    Alcotest.(check int) "csv columns" 3 (List.length header);
    List.iter
      (fun row -> Alcotest.(check int) "row arity" 3 (List.length row))
      rows
  | [] -> Alcotest.fail "no figure"

let test_summary_table () =
  let table = Figures.summary_table () in
  Testutil.check_contains ~what:"summary" table "paper";
  Testutil.check_contains ~what:"summary" table "46-AS, 30% attackers, Full MOAS";
  Testutil.check_contains ~what:"summary" table "half deployment"

let test_ablation_subprefix () =
  let r = Ablation.subprefix_hijack ~topology:(Lazy.force t46) () in
  Alcotest.(check int) "no MOAS alarm on sub-prefix hijack" 0 r.Ablation.moas_alarms;
  Alcotest.(check bool) "traffic is nonetheless captured" true
    (r.Ablation.hijacked_fraction > 0.5)

let test_ablation_overhead () =
  let points = Ablation.list_overhead ~max_size:4 in
  (* each additional MOAS-list entry costs exactly one 4-octet community *)
  let sizes = List.map (fun p -> p.Ablation.bytes_per_update) points in
  (match sizes with
  | a :: rest ->
    ignore
      (List.fold_left
         (fun prev cur ->
           Alcotest.(check int) "4 octets per extra origin" 4 (cur - prev);
           cur)
         a rest)
  | [] -> Alcotest.fail "no overhead points");
  Alcotest.(check (list int)) "one community per origin" [ 1; 2; 3; 4 ]
    (List.map (fun p -> p.Ablation.communities_per_update) points)

let test_ablation_droppers_never_hide () =
  let points =
    Ablation.community_droppers ~fractions:[ 0.0; 0.3 ]
      ~topology:(Lazy.force t46) ()
  in
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "no missed detection at dropper fraction %.1f"
           p.Ablation.dropper_fraction)
        0.0 p.Ablation.missed_detection_rate)
    points;
  (match points with
  | [ clean; dirty ] ->
    Alcotest.(check (float 0.0)) "no false alarms without droppers" 0.0
      clean.Ablation.false_alarm_rate;
    Alcotest.(check bool) "droppers cause false alarms" true
      (dirty.Ablation.false_alarm_rate > 0.0)
  | _ -> Alcotest.fail "expected two points")

let test_ablation_oracle_accounting () =
  let acct =
    Ablation.oracle_query_accounting ~topology:(Lazy.force t46) ~n_attackers:3 ()
  in
  Alcotest.(check bool) "queries are rare" true (acct.Ablation.queries_per_update < 0.5);
  Alcotest.(check bool) "but some happen" true (acct.Ablation.oracle_queries > 0)

let test_ablation_mrai () =
  let points = Ablation.mrai_sensitivity ~mrais:[ 0.0; 30.0 ] ~topology:(Lazy.force t46) () in
  match points with
  | [ (_, a0, _); (_, a30, _) ] ->
    Alcotest.(check (float 1e-9)) "MRAI does not change adoption" a0 a30
  | _ -> Alcotest.fail "expected two points"

let () =
  Alcotest.run "experiments"
    [
      ( "sweep",
        [
          Alcotest.test_case "origin selections" `Quick test_origins_stable_across_selections;
          Alcotest.test_case "origins are stubs" `Quick test_origins_are_stubs;
          Alcotest.test_case "point shape" `Quick test_point_shape;
          Alcotest.test_case "deterministic" `Quick test_point_deterministic;
          Alcotest.test_case "benign point" `Quick test_no_attackers_point;
          Alcotest.test_case "attacker counts" `Quick test_default_attacker_counts;
          Alcotest.test_case "full beats normal" `Slow test_full_detection_dominates_normal;
        ] );
      ( "figures",
        [
          Alcotest.test_case "figure 9 shape" `Slow test_figure9_shape;
          Alcotest.test_case "render + csv" `Slow test_figure_render_and_csv;
          Alcotest.test_case "summary table" `Slow test_summary_table;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "subprefix limitation" `Quick test_ablation_subprefix;
          Alcotest.test_case "list overhead" `Quick test_ablation_overhead;
          Alcotest.test_case "droppers never hide" `Slow test_ablation_droppers_never_hide;
          Alcotest.test_case "oracle accounting" `Quick test_ablation_oracle_accounting;
          Alcotest.test_case "MRAI sensitivity" `Quick test_ablation_mrai;
        ] );
    ]
