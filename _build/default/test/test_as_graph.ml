(* Tests for Topology.As_graph and Topology.Algorithms. *)

open Net
module G = Topology.As_graph
module Alg = Topology.Algorithms

let test_empty () =
  Alcotest.(check int) "no nodes" 0 (G.node_count G.empty);
  Alcotest.(check int) "no edges" 0 (G.edge_count G.empty);
  Alcotest.(check bool) "empty is connected (trivially)" true (Alg.is_connected G.empty)

let test_add_edge_symmetric () =
  let g = G.add_edge G.empty 1 2 in
  Alcotest.(check bool) "edge a->b" true (G.mem_edge g 1 2);
  Alcotest.(check bool) "edge b->a" true (G.mem_edge g 2 1);
  Alcotest.(check int) "one edge" 1 (G.edge_count g);
  Alcotest.(check int) "two nodes" 2 (G.node_count g)

let test_add_edge_idempotent () =
  let g = G.add_edge (G.add_edge G.empty 1 2) 1 2 in
  Alcotest.(check int) "edge not duplicated" 1 (G.edge_count g)

let test_self_loop_rejected () =
  Alcotest.check_raises "self loop" (Invalid_argument "As_graph.add_edge: self-loop")
    (fun () -> ignore (G.add_edge G.empty 3 3))

let test_remove_node () =
  let g = Testutil.small_graph () in
  let g' = G.remove_node g 3 in
  Alcotest.(check bool) "node gone" false (G.mem_node g' 3);
  Alcotest.(check bool) "edges to it gone" false (G.mem_edge g' 2 3);
  Alcotest.(check int) "degree of former peer drops" 1 (G.degree g' 5);
  (* original untouched: the structure is persistent *)
  Alcotest.(check bool) "original intact" true (G.mem_edge g 2 3)

let test_neighbors_degree () =
  let g = Testutil.small_graph () in
  Alcotest.(check (list int)) "neighbors of 3" [ 2; 5; 6 ]
    (Asn.Set.elements (G.neighbors g 3));
  Alcotest.(check int) "degree" 3 (G.degree g 3);
  Alcotest.(check int) "degree of unknown node" 0 (G.degree g 99)

let test_induced () =
  let g = Testutil.small_graph () in
  let sub = G.induced g (Asn.Set.of_list [ 1; 2; 3; 6 ]) in
  Alcotest.(check int) "nodes kept" 4 (G.node_count sub);
  Alcotest.(check bool) "internal edge kept" true (G.mem_edge sub 2 3);
  Alcotest.(check bool) "edge to removed endpoint dropped" false (G.mem_edge sub 1 4);
  Alcotest.(check bool) "edge 3-6 kept" true (G.mem_edge sub 3 6)

let test_edges_listing () =
  let g = G.of_edges [ (2, 1); (3, 2) ] in
  Alcotest.(check (list (pair int int))) "sorted, small endpoint first"
    [ (1, 2); (2, 3) ] (G.edges g)

let test_bfs () =
  let g = Testutil.small_graph () in
  let dist = Alg.bfs_distances g 1 in
  let d n = Asn.Map.find n dist in
  Alcotest.(check int) "self" 0 (d 1);
  Alcotest.(check int) "direct" 1 (d 2);
  Alcotest.(check int) "two hops" 2 (d 3);
  Alcotest.(check int) "via 4-5" 2 (d 5);
  Alcotest.(check int) "stub behind 3" 3 (d 6)

let test_shortest_path () =
  let g = Testutil.small_graph () in
  (match Alg.shortest_path g 1 6 with
  | Some path ->
    Alcotest.(check int) "path length" 4 (List.length path);
    Alcotest.(check int) "starts at source" 1 (List.hd path);
    Alcotest.(check int) "ends at destination" 6 (List.nth path 3)
  | None -> Alcotest.fail "expected a path");
  Alcotest.(check bool) "unreachable" true
    (Alg.shortest_path g 1 99 = None)

let test_shortest_path_is_valid_walk () =
  let g = Testutil.small_graph () in
  match Alg.shortest_path g 6 4 with
  | None -> Alcotest.fail "expected path"
  | Some path ->
    let rec check = function
      | a :: (b :: _ as rest) ->
        Alcotest.(check bool)
          (Printf.sprintf "edge %d-%d exists" a b)
          true (G.mem_edge g a b);
        check rest
      | _ -> ()
    in
    check path

let test_components () =
  let g = G.of_edges [ (1, 2); (3, 4); (4, 5) ] in
  let comps = Alg.connected_components g in
  Alcotest.(check int) "two components" 2 (List.length comps);
  Alcotest.(check int) "largest first" 3
    (Asn.Set.cardinal (List.hd comps));
  Alcotest.(check bool) "not connected" false (Alg.is_connected g);
  Alcotest.(check (list int)) "largest component members" [ 3; 4; 5 ]
    (Asn.Set.elements (Alg.largest_component g))

let test_diameter () =
  let line = G.of_edges [ (1, 2); (2, 3); (3, 4) ] in
  Alcotest.(check int) "line diameter" 3 (Alg.diameter line);
  let star = G.of_edges [ (1, 2); (1, 3); (1, 4) ] in
  Alcotest.(check int) "star diameter" 2 (Alg.diameter star)

let test_degree_stats () =
  let star = G.of_edges [ (1, 2); (1, 3); (1, 4) ] in
  Alcotest.(check (float 1e-9)) "avg degree" 1.5 (Alg.average_degree star);
  Alcotest.(check (list (pair int int))) "histogram" [ (1, 3); (3, 1) ]
    (Alg.degree_histogram star)

let graph_gen =
  QCheck2.Gen.(
    map
      (fun pairs ->
        List.filter_map
          (fun (a, b) ->
            let a = (a mod 20) + 1 and b = (b mod 20) + 1 in
            if a = b then None else Some (a, b))
          pairs)
      (list_size (int_range 0 60) (pair (int_range 0 40) (int_range 0 40))))

let prop_handshake =
  Testutil.qtest "sum of degrees = 2 * edges" graph_gen (fun edges ->
      let g = G.of_edges edges in
      let degree_sum = G.fold_nodes (fun n acc -> acc + G.degree g n) g 0 in
      degree_sum = 2 * G.edge_count g)

let prop_components_partition =
  Testutil.qtest "components partition the node set" graph_gen (fun edges ->
      let g = G.of_edges edges in
      let comps = Alg.connected_components g in
      let union =
        List.fold_left Asn.Set.union Asn.Set.empty comps
      in
      let total = List.fold_left (fun n c -> n + Asn.Set.cardinal c) 0 comps in
      Asn.Set.equal union (G.nodes g) && total = G.node_count g)

let prop_induced_subset =
  Testutil.qtest "induced graph keeps only selected nodes" graph_gen
    (fun edges ->
      let g = G.of_edges edges in
      let keep =
        G.fold_nodes
          (fun n acc -> if n mod 2 = 0 then Asn.Set.add n acc else acc)
          g Asn.Set.empty
      in
      let sub = G.induced g keep in
      Asn.Set.subset (G.nodes sub) keep
      && List.for_all (fun (a, b) -> G.mem_edge g a b) (G.edges sub))

let () =
  Alcotest.run "as_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "symmetric edges" `Quick test_add_edge_symmetric;
          Alcotest.test_case "idempotent edges" `Quick test_add_edge_idempotent;
          Alcotest.test_case "self loops rejected" `Quick test_self_loop_rejected;
          Alcotest.test_case "remove node" `Quick test_remove_node;
          Alcotest.test_case "neighbors/degree" `Quick test_neighbors_degree;
          Alcotest.test_case "induced subgraph" `Quick test_induced;
          Alcotest.test_case "edge listing" `Quick test_edges_listing;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "bfs distances" `Quick test_bfs;
          Alcotest.test_case "shortest path" `Quick test_shortest_path;
          Alcotest.test_case "path validity" `Quick test_shortest_path_is_valid_walk;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "diameter" `Quick test_diameter;
          Alcotest.test_case "degree stats" `Quick test_degree_stats;
        ] );
      ( "properties",
        [ prop_handshake; prop_components_partition; prop_induced_subset ] );
    ]
