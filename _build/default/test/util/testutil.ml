(** Shared helpers for the test suites: route constructors, Alcotest
    testables, and qcheck generators for the domain types. *)

open Net

let prefix_testable = Alcotest.testable Prefix.pp Prefix.equal
let route_testable = Alcotest.testable Bgp.Route.pp Bgp.Route.equal

let asn_set_testable =
  Alcotest.testable
    (fun fmt s ->
      Format.pp_print_string fmt
        ("{"
        ^ String.concat "," (List.map string_of_int (Asn.Set.elements s))
        ^ "}"))
    Asn.Set.equal

let victim = Prefix.of_string "192.0.2.0/24"

(* A route as received from [peer], with the path [path] (first element =
   sending AS, last = origin). *)
let route ?(prefix = victim) ?(local_pref = 100) ?(origin = Bgp.Route.Igp)
    ?(communities = Bgp.Community.Set.empty) ~from path =
  {
    Bgp.Route.prefix;
    as_path = Bgp.As_path.of_list path;
    origin;
    learned_from = Asn.make from;
    local_pref;
    communities;
  }

let moas_communities ases = Moas.Moas_list.encode (Asn.Set.of_list ases)

(* qcheck generators *)

let asn_gen = QCheck2.Gen.int_range 1 65535

let ipv4_gen = QCheck2.Gen.map Ipv4.of_int (QCheck2.Gen.int_range 0 0xffffffff)

let prefix_gen =
  QCheck2.Gen.map2
    (fun addr len -> Prefix.make addr len)
    ipv4_gen
    (QCheck2.Gen.int_range 0 32)

let asn_set_gen =
  QCheck2.Gen.map Asn.Set.of_list (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 6) asn_gen)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* a tiny deterministic graph used by several suites:

      1 --- 2 --- 3
       \         /
        4 ----- 5          plus stub 6 hanging off 3          *)
let small_graph () =
  Topology.As_graph.of_edges
    [ (1, 2); (2, 3); (1, 4); (4, 5); (5, 3); (3, 6) ]

(* run a scenario and return the outcome, with fixed randomness *)
let run_scenario ?(seed = 42) scenario =
  Attack.Scenario.run (Mutil.Rng.of_int seed) scenario

(* substring search, for asserting on rendered reports *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else begin
    let rec scan i =
      if i + nn > nh then false
      else if String.sub haystack i nn = needle then true
      else scan (i + 1)
    in
    scan 0
  end

let check_contains ?(what = "output") haystack needle =
  if not (contains haystack needle) then
    Alcotest.failf "%s does not contain %S:\n%s" what needle haystack
