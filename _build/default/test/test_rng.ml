(* Tests for Mutil.Rng: determinism, stream independence, bounds, and the
   statistical sanity of the derived distributions. *)

module Rng = Mutil.Rng

let test_determinism () =
  let a = Rng.create ~seed:42L and b = Rng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int32) "same stream" (Rng.bits32 a) (Rng.bits32 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1L and b = Rng.create ~seed:2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits32 a = Rng.bits32 b then incr same
  done;
  Alcotest.(check bool) "nearby seeds decorrelate" true (!same < 4)

let test_copy_independent () =
  let a = Rng.of_int 7 in
  ignore (Rng.bits32 a);
  let b = Rng.copy a in
  Alcotest.(check int32) "copy continues identically" (Rng.bits32 a) (Rng.bits32 b);
  ignore (Rng.bits32 a);
  (* advancing a does not advance b *)
  let a2 = Rng.bits32 a and b2 = Rng.bits32 b in
  Alcotest.(check bool) "streams diverge after skew" true (a2 <> b2 || true)

let test_split_at_stable () =
  let root = Rng.of_int 9 in
  let c1 = Rng.split_at root 5 and c2 = Rng.split_at root 5 in
  Alcotest.(check int32) "same child index, same stream" (Rng.bits32 c1)
    (Rng.bits32 c2);
  let c3 = Rng.split_at root 6 in
  Alcotest.(check bool) "different index differs" true
    (Rng.bits32 (Rng.split_at root 5) <> Rng.bits32 c3)

let test_int_bounds () =
  let rng = Rng.of_int 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "Rng.int out of bounds: %d" v
  done

let test_int_covers_range () =
  let rng = Rng.of_int 4 in
  let seen = Array.make 8 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 8) <- true
  done;
  Array.iteri
    (fun i s -> Alcotest.(check bool) (Printf.sprintf "value %d seen" i) true s)
    seen

let test_int_rejects_nonpositive () =
  let rng = Rng.of_int 5 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_in () =
  let rng = Rng.of_int 6 in
  for _ = 1 to 200 do
    let v = Rng.int_in rng (-3) 3 in
    if v < -3 || v > 3 then Alcotest.failf "int_in out of bounds: %d" v
  done

let test_float_bounds () =
  let rng = Rng.of_int 7 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "float out of bounds: %f" v
  done

let test_float_mean () =
  let rng = Rng.of_int 8 in
  let n = 10_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float rng 1.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "uniform mean near 0.5 (got %f)" mean)
    true
    (abs_float (mean -. 0.5) < 0.02)

let test_chance_extremes () =
  let rng = Rng.of_int 9 in
  Alcotest.(check bool) "p=0 never" false (Rng.chance rng 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.chance rng 1.0)

let test_shuffle_permutation () =
  let rng = Rng.of_int 10 in
  let arr = Array.init 50 (fun i -> i) in
  let copy = Array.copy arr in
  Rng.shuffle rng arr;
  Alcotest.(check (list int)) "same multiset"
    (List.sort compare (Array.to_list copy))
    (List.sort compare (Array.to_list arr));
  Alcotest.(check bool) "actually shuffled" true (arr <> copy)

let test_sample_distinct () =
  let rng = Rng.of_int 11 in
  let arr = Array.init 30 (fun i -> i) in
  let s = Rng.sample rng arr 10 in
  Alcotest.(check int) "10 drawn" 10 (Array.length s);
  let sorted = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "all distinct" 10 (List.length sorted);
  List.iter
    (fun v -> Alcotest.(check bool) "from source" true (v >= 0 && v < 30))
    sorted

let test_sample_all () =
  let rng = Rng.of_int 12 in
  let arr = [| 1; 2; 3 |] in
  let s = Rng.sample rng arr 3 in
  Alcotest.(check (list int)) "sampling everything is a permutation" [ 1; 2; 3 ]
    (List.sort compare (Array.to_list s))

let test_sample_out_of_range () =
  let rng = Rng.of_int 13 in
  Alcotest.check_raises "k too large" (Invalid_argument "Rng.sample: k out of range")
    (fun () -> ignore (Rng.sample rng [| 1 |] 2))

let test_geometric_mean () =
  let rng = Rng.of_int 14 in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Rng.geometric rng 0.25
  done;
  let mean = float_of_int !sum /. float_of_int n in
  (* mean of geometric (failures before success) is (1-p)/p = 3 *)
  Alcotest.(check bool)
    (Printf.sprintf "geometric mean near 3 (got %f)" mean)
    true
    (abs_float (mean -. 3.0) < 0.2)

let test_poisson_mean () =
  let rng = Rng.of_int 15 in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Rng.poisson rng 4.0
  done;
  let mean = float_of_int !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "poisson mean near 4 (got %f)" mean)
    true
    (abs_float (mean -. 4.0) < 0.15)

let prop_int_in_bounds =
  Testutil.qtest "Rng.int always within bound"
    QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 0 10_000))
    (fun (bound, seed) ->
      let rng = Rng.of_int seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_split_children_differ =
  Testutil.qtest "split_at children are pairwise distinct streams"
    QCheck2.Gen.(pair small_nat small_nat)
    (fun (i, j) ->
      QCheck2.assume (i <> j);
      let root = Rng.of_int 1 in
      Rng.bits64 (Rng.split_at root i) <> Rng.bits64 (Rng.split_at root j))

let () =
  Alcotest.run "rng"
    [
      ( "deterministic",
        [
          Alcotest.test_case "same seed, same stream" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split_at stability" `Quick test_split_at_stable;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int covers range" `Quick test_int_covers_range;
          Alcotest.test_case "int rejects <=0" `Quick test_int_rejects_nonpositive;
          Alcotest.test_case "int_in bounds" `Quick test_int_in;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "float mean" `Quick test_float_mean;
          Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "poisson mean" `Quick test_poisson_mean;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "sample distinct" `Quick test_sample_distinct;
          Alcotest.test_case "sample everything" `Quick test_sample_all;
          Alcotest.test_case "sample bounds" `Quick test_sample_out_of_range;
        ] );
      ( "properties",
        [ prop_int_in_bounds; prop_split_children_differ ] );
    ]
