(* Tests for Mutil.Day: calendar arithmetic over the measurement window. *)

module Day = Mutil.Day

let test_epoch () =
  Alcotest.(check int) "1997-01-01 is day 0" 0 (Day.of_ymd 1997 1 1);
  Alcotest.(check int) "1997-01-02 is day 1" 1 (Day.of_ymd 1997 1 2);
  Alcotest.(check int) "1997-02-01" 31 (Day.of_ymd 1997 2 1)

let test_leap_years () =
  Alcotest.(check bool) "2000 is leap" true (Day.is_leap_year 2000);
  Alcotest.(check bool) "1900 is not leap" false (Day.is_leap_year 1900);
  Alcotest.(check bool) "1996 is leap" true (Day.is_leap_year 1996);
  Alcotest.(check bool) "1999 is not leap" false (Day.is_leap_year 1999);
  (* Feb 29, 2000 exists *)
  let d = Day.of_ymd 2000 2 29 in
  Alcotest.(check (triple int int int)) "2000-02-29 roundtrip" (2000, 2, 29)
    (Day.to_ymd d)

let test_roundtrip_known () =
  List.iter
    (fun (y, m, d) ->
      let day = Day.of_ymd y m d in
      Alcotest.(check (triple int int int))
        (Printf.sprintf "%04d-%02d-%02d" y m d)
        (y, m, d) (Day.to_ymd day))
    [
      (1997, 11, 8); (1998, 4, 7); (2001, 4, 6); (2001, 7, 18); (1999, 12, 31);
      (2000, 1, 1); (2000, 12, 31);
    ]

let test_window () =
  Alcotest.(check string) "start" "1997-11-08" (Day.to_string Day.measurement_start);
  Alcotest.(check string) "end" "2001-07-18" (Day.to_string Day.measurement_end);
  Alcotest.(check int) "window length" 1349 Day.measurement_days

let test_ordering () =
  Alcotest.(check bool) "events ordered" true
    (Day.of_ymd 1998 4 7 < Day.of_ymd 2001 4 6)

let test_add_diff () =
  let d = Day.of_ymd 1998 4 7 in
  Alcotest.(check string) "add 1" "1998-04-08" (Day.to_string (Day.add d 1));
  Alcotest.(check int) "diff" 365 (Day.diff (Day.of_ymd 1999 4 7) d)

let test_mm_yy () =
  Alcotest.(check string) "mm/yy label" "04/98" (Day.to_mm_yy (Day.of_ymd 1998 4 7));
  Alcotest.(check string) "mm/yy for 2001" "07/01" (Day.to_mm_yy (Day.of_ymd 2001 7 18))

let test_validation () =
  Alcotest.check_raises "pre-1997" (Invalid_argument "Day.of_ymd: year before 1997")
    (fun () -> ignore (Day.of_ymd 1996 12 31));
  Alcotest.check_raises "bad month" (Invalid_argument "Day.of_ymd: month out of range")
    (fun () -> ignore (Day.of_ymd 1998 13 1));
  Alcotest.check_raises "bad day" (Invalid_argument "Day.of_ymd: day out of range")
    (fun () -> ignore (Day.of_ymd 1999 2 29))

let prop_roundtrip =
  Testutil.qtest "to_ymd . of_ymd over a decade"
    QCheck2.Gen.(int_range 0 3650)
    (fun d ->
      let y, m, dd = Day.to_ymd d in
      Day.of_ymd y m dd = d)

let prop_add_assoc =
  Testutil.qtest "add distributes"
    QCheck2.Gen.(triple (int_range 0 2000) (int_range 0 500) (int_range 0 500))
    (fun (d, a, b) -> Day.add (Day.add d a) b = Day.add d (a + b))

let () =
  Alcotest.run "day"
    [
      ( "calendar",
        [
          Alcotest.test_case "epoch" `Quick test_epoch;
          Alcotest.test_case "leap years" `Quick test_leap_years;
          Alcotest.test_case "known roundtrips" `Quick test_roundtrip_known;
          Alcotest.test_case "measurement window" `Quick test_window;
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "add/diff" `Quick test_add_diff;
          Alcotest.test_case "mm/yy" `Quick test_mm_yy;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ("properties", [ prop_roundtrip; prop_add_assoc ]);
    ]
