(* Tests for the incident-management layer (Alert_service) and the
   convergence study. *)

open Net
module Svc = Moas.Alert_service

let victim = Testutil.victim

let alarm ?(observer = 11) ?(time = 1.0) ?(prefix = victim) () =
  Moas.Alarm.make ~observer:(Asn.make observer) ~prefix ~time
    ~conflicting_lists:[ Asn.Set.of_list [ 1; 2 ]; Asn.Set.singleton 666 ]
    ~origins_seen:(Asn.Set.of_list [ 1; 2; 666 ])

let test_open_incident () =
  let svc = Svc.create () in
  Svc.ingest svc (alarm ());
  match Svc.live_incidents svc with
  | [ incident ] ->
    Alcotest.check Testutil.prefix_testable "prefix" victim incident.Svc.prefix;
    Alcotest.(check int) "one alarm" 1 incident.Svc.alarm_count;
    Alcotest.(check bool) "warning severity" true
      (incident.Svc.severity = Svc.Warning);
    Alcotest.(check bool) "origins recorded" true
      (Asn.Set.mem (Asn.make 666) incident.Svc.origins_implicated)
  | l -> Alcotest.failf "expected one incident, got %d" (List.length l)

let test_aggregation_no_duplicate_notifications () =
  let svc = Svc.create () in
  Svc.ingest svc (alarm ~observer:11 ~time:1.0 ());
  Svc.ingest svc (alarm ~observer:11 ~time:2.0 ());
  Svc.ingest svc (alarm ~observer:12 ~time:3.0 ());
  Alcotest.(check int) "one incident" 1 (List.length (Svc.live_incidents svc));
  (* only the open notification so far (escalation needs 3 observers) *)
  Alcotest.(check int) "one notification" 1 (List.length (Svc.notifications svc));
  match Svc.incident_for svc victim with
  | Some i ->
    Alcotest.(check int) "alarms folded" 3 i.Svc.alarm_count;
    Alcotest.(check int) "observers tracked" 2 (Asn.Set.cardinal i.Svc.observers)
  | None -> Alcotest.fail "incident missing"

let test_escalation () =
  let svc = Svc.create ~escalation_observers:3 () in
  Svc.ingest svc (alarm ~observer:11 ~time:1.0 ());
  Svc.ingest svc (alarm ~observer:12 ~time:2.0 ());
  Alcotest.(check bool) "still warning" true
    ((Option.get (Svc.incident_for svc victim)).Svc.severity = Svc.Warning);
  Svc.ingest svc (alarm ~observer:13 ~time:3.0 ());
  Alcotest.(check bool) "critical at 3 observers" true
    ((Option.get (Svc.incident_for svc victim)).Svc.severity = Svc.Critical);
  let escalations =
    List.filter
      (fun n ->
        match n.Svc.event with
        | `Escalated _ -> true
        | `Opened | `Resolved -> false)
      (Svc.notifications svc)
  in
  Alcotest.(check int) "exactly one escalation notice" 1 (List.length escalations);
  (* further alarms do not re-escalate *)
  Svc.ingest svc (alarm ~observer:14 ~time:4.0 ());
  Alcotest.(check int) "no repeat escalation" 1
    (List.length
       (List.filter
          (fun n ->
            match n.Svc.event with
            | `Escalated _ -> true
            | `Opened | `Resolved -> false)
          (Svc.notifications svc)))

let test_distinct_prefixes_distinct_incidents () =
  let svc = Svc.create () in
  Svc.ingest svc (alarm ());
  Svc.ingest svc (alarm ~prefix:(Prefix.of_string "10.0.0.0/8") ());
  Alcotest.(check int) "two incidents" 2 (List.length (Svc.live_incidents svc));
  let ids = List.map (fun i -> i.Svc.id) (Svc.live_incidents svc) in
  Alcotest.(check (list int)) "ids increase" [ 1; 2 ] ids

let test_resolution () =
  let svc = Svc.create () in
  Svc.ingest svc (alarm ~time:1.0 ());
  Alcotest.(check int) "nothing to resolve while fresh" 0
    (Svc.resolve_quiet svc ~now:2.0 ~idle_for:100.0);
  Alcotest.(check int) "resolves after quiet period" 1
    (Svc.resolve_quiet svc ~now:200.0 ~idle_for:100.0);
  Alcotest.(check int) "no live incidents left" 0
    (List.length (Svc.live_incidents svc));
  Alcotest.(check int) "history keeps it" 1 (List.length (Svc.all_incidents svc));
  (match Svc.all_incidents svc with
  | [ i ] -> Alcotest.(check bool) "resolved stamp" true (i.Svc.resolved_at = Some 200.0)
  | _ -> Alcotest.fail "history mismatch");
  (* a new alarm for the same prefix opens a NEW incident *)
  Svc.ingest svc (alarm ~time:300.0 ());
  Alcotest.(check int) "fresh incident id" 2
    (Option.get (Svc.incident_for svc victim)).Svc.id

let test_summary_text () =
  let svc = Svc.create () in
  Svc.ingest svc (alarm ());
  Testutil.check_contains ~what:"summary" (Svc.summary svc) "1 live incident"

let test_end_to_end_with_scenario () =
  (* wire the service to real detectors through a scenario-style run *)
  let t = Topology.Paper_topologies.topology_46 () in
  let graph = t.Topology.Paper_topologies.graph in
  (* detection squelches the bogus route at the first capable hop, so only
     the attacker's direct neighbours ever alarm: escalate at two *)
  let svc = Svc.create ~escalation_observers:2 () in
  let oracle = Moas.Origin_verification.create () in
  let origin = Asn.Set.min_elt t.Topology.Paper_topologies.stub in
  let attacker = Asn.Set.max_elt t.Topology.Paper_topologies.stub in
  Moas.Origin_verification.register oracle victim (Asn.Set.singleton origin);
  let validator_of asn =
    if Asn.equal asn attacker then None
    else
      Some
        (Moas.Detector.validator
           (Moas.Detector.create ~backend:(Moas.Detector.Oracle oracle) ~on_alarm:(Svc.ingest svc) ~self:asn ()))
  in
  let net = Bgp.Network.make ~config:Bgp.Network.Config.(default |> with_validator_of validator_of) graph in
  Bgp.Network.originate ~at:0.0 net origin victim;
  Bgp.Network.originate ~at:50.0 net attacker victim;
  ignore (Bgp.Network.run net);
  (match Svc.live_incidents svc with
  | [ incident ] ->
    Alcotest.(check bool) "several observers folded into one incident" true
      (Asn.Set.cardinal incident.Svc.observers > 1);
    Alcotest.(check bool) "escalated to critical" true
      (incident.Svc.severity = Svc.Critical);
    Alcotest.(check bool) "attacker implicated" true
      (Asn.Set.mem attacker incident.Svc.origins_implicated)
  | l -> Alcotest.failf "expected one incident, got %d" (List.length l));
  Alcotest.(check int) "resolves once quiet" 1
    (Svc.resolve_quiet svc ~now:10_000.0 ~idle_for:1_000.0)

let test_convergence_study () =
  let t = Topology.Paper_topologies.topology_46 () in
  let points =
    Experiments.Convergence.study ~runs:4 ~n_attackers_list:[ 1; 5 ] ~topology:t ()
  in
  Alcotest.(check int) "two points" 2 (List.length points);
  List.iter
    (fun p ->
      Alcotest.(check bool) "always detected" true
        (p.Experiments.Convergence.detection_rate > 0.99);
      Alcotest.(check bool) "latency within settle time" true
        (p.Experiments.Convergence.mean_detection_latency
        <= p.Experiments.Convergence.mean_settle_time +. 1e-9);
      Alcotest.(check bool) "positive octet accounting" true
        (p.Experiments.Convergence.mean_wire_octets > 0.0))
    points;
  let rendered = Experiments.Convergence.render points in
  Testutil.check_contains ~what:"render" rendered "detection rate"

let () =
  Alcotest.run "alert_service"
    [
      ( "incidents",
        [
          Alcotest.test_case "open" `Quick test_open_incident;
          Alcotest.test_case "aggregation" `Quick
            test_aggregation_no_duplicate_notifications;
          Alcotest.test_case "escalation" `Quick test_escalation;
          Alcotest.test_case "distinct prefixes" `Quick
            test_distinct_prefixes_distinct_incidents;
          Alcotest.test_case "resolution" `Quick test_resolution;
          Alcotest.test_case "summary" `Quick test_summary_text;
          Alcotest.test_case "end to end" `Quick test_end_to_end_with_scenario;
        ] );
      ( "convergence",
        [ Alcotest.test_case "study" `Quick test_convergence_study ] );
    ]
