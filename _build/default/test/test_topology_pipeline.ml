(* Tests for the Section 5.1 pipeline: Generate, Route_table, Inference,
   Sampling and Paper_topologies. *)

open Net
module G = Topology.As_graph
module Gen = Topology.Generate
module Rt = Topology.Route_table
module Inf = Topology.Inference
module Samp = Topology.Sampling
module Topo = Topology.Paper_topologies
module Rng = Mutil.Rng

let small_params =
  {
    Gen.tier1_count = 4;
    tier2_count = 10;
    tier2_uplinks = 2;
    tier2_peering_prob = 0.2;
    stub_count = 60;
    stub_multihome_prob = 0.4;
  }

let gen_internet ?(seed = 5) () = Gen.generate (Rng.of_int seed) small_params

let test_generate_connected () =
  let net = gen_internet () in
  Alcotest.(check bool) "connected" true (Topology.Algorithms.is_connected net.Gen.graph);
  Alcotest.(check int) "node count" (4 + 10 + 60) (G.node_count net.Gen.graph)

let test_generate_roles_disjoint () =
  let net = gen_internet () in
  Alcotest.(check bool) "tier1/tier2 disjoint" true
    (Asn.Set.is_empty (Asn.Set.inter net.Gen.tier1 net.Gen.tier2));
  Alcotest.(check bool) "stub disjoint from transit" true
    (Asn.Set.is_empty (Asn.Set.inter net.Gen.stub (Gen.transit_ases net)));
  Alcotest.(check int) "roles cover all nodes"
    (G.node_count net.Gen.graph)
    (Asn.Set.cardinal net.Gen.tier1
    + Asn.Set.cardinal net.Gen.tier2
    + Asn.Set.cardinal net.Gen.stub)

let test_generate_tier1_clique () =
  let net = gen_internet () in
  let t1 = Asn.Set.elements net.Gen.tier1 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a < b then
            Alcotest.(check bool)
              (Printf.sprintf "tier1 %d-%d peered" a b)
              true
              (G.mem_edge net.Gen.graph a b))
        t1)
    t1

let test_generate_stub_is_stub () =
  let net = gen_internet () in
  (* every stub connects only to transit ASes *)
  Asn.Set.iter
    (fun s ->
      let peers = G.neighbors net.Gen.graph s in
      Alcotest.(check bool) "stub peers with transit only" true
        (Asn.Set.subset peers (Gen.transit_ases net));
      Alcotest.(check bool) "stub has a provider" true (not (Asn.Set.is_empty peers)))
    net.Gen.stub

let test_generate_deterministic () =
  let a = gen_internet ~seed:9 () and b = gen_internet ~seed:9 () in
  Alcotest.(check (list (pair int int))) "same edges for same seed"
    (G.edges a.Gen.graph) (G.edges b.Gen.graph)

let test_route_table_paths_valid () =
  let net = gen_internet () in
  let vantage = Asn.Set.min_elt net.Gen.tier1 in
  let paths = Rt.paths_from net.Gen.graph ~vantage in
  Alcotest.(check int) "one path per other AS"
    (G.node_count net.Gen.graph - 1)
    (List.length paths);
  List.iter
    (fun path ->
      (match path with
      | [] -> Alcotest.fail "empty path"
      | first :: _ ->
        Alcotest.(check bool) "first hop peers with vantage" true
          (G.mem_edge net.Gen.graph vantage first));
      let rec walk = function
        | a :: (b :: _ as rest) ->
          Alcotest.(check bool) "consecutive ASes peer" true (G.mem_edge net.Gen.graph a b);
          walk rest
        | _ -> ()
      in
      walk path)
    paths

let test_route_table_shortest () =
  let net = gen_internet () in
  let vantage = Asn.Set.min_elt net.Gen.tier1 in
  let dist = Topology.Algorithms.bfs_distances net.Gen.graph vantage in
  List.iter
    (fun path ->
      match List.rev path with
      | origin :: _ ->
        Alcotest.(check int)
          (Printf.sprintf "path to %d is shortest" origin)
          (Asn.Map.find origin dist) (List.length path)
      | [] -> ())
    (Rt.paths_from net.Gen.graph ~vantage)

let test_inference_paper_example () =
  (* the example of Section 5.1: path 1239 6453 4621 *)
  let classified = Inf.infer [ [ 1239; 6453; 4621 ] ] in
  Alcotest.(check bool) "edge 1239-6453" true (G.mem_edge classified.Inf.graph 1239 6453);
  Alcotest.(check bool) "edge 6453-4621" true (G.mem_edge classified.Inf.graph 6453 4621);
  Alcotest.(check bool) "no edge 1239-4621" false (G.mem_edge classified.Inf.graph 1239 4621);
  Alcotest.check Testutil.asn_set_testable "1239 and 6453 are transit"
    (Asn.Set.of_list [ 1239; 6453 ])
    classified.Inf.transit;
  Alcotest.check Testutil.asn_set_testable "4621 is a stub"
    (Asn.Set.singleton 4621) classified.Inf.stub

let test_inference_merges_paths () =
  let classified = Inf.infer [ [ 1; 2; 3 ]; [ 1; 2; 4 ]; [ 5; 3 ] ] in
  Alcotest.(check int) "five ASes" 5 (G.node_count classified.Inf.graph);
  (* 3 is an origin in one path but transit in none; 5 carries 3 *)
  Alcotest.(check bool) "3 stays stub" true (Asn.Set.mem 3 classified.Inf.stub);
  Alcotest.(check bool) "5 is transit" true (Asn.Set.mem 5 classified.Inf.transit)

let test_inference_recovers_generator_roles () =
  let net = gen_internet () in
  let vantages = Asn.Set.elements net.Gen.tier1 @ Asn.Set.elements net.Gen.tier2 in
  let paths = Rt.paths_from_vantages net.Gen.graph ~vantages in
  let classified = Inf.infer paths in
  (* inferred stubs are never ground-truth transit carriers of the
     generator... the reverse can happen (an unused transit looks stub),
     but generator stubs must never be classified transit *)
  Alcotest.(check bool) "no generator stub classified transit" true
    (Asn.Set.is_empty (Asn.Set.inter classified.Inf.transit net.Gen.stub))

let test_prune_weak_transit () =
  (* chain 1-2-3 with stub 4 on 3: pruning degree-1 transit ASes cascades
     down the whole chain (1, then 2, then 3); stubs are never pruned *)
  let g = G.of_edges [ (1, 2); (2, 3); (3, 4) ] in
  let transit = Asn.Set.of_list [ 1; 2; 3 ] in
  let pruned = Samp.prune_weak_transit g ~transit in
  Alcotest.(check bool) "1 pruned" false (G.mem_node pruned 1);
  Alcotest.(check bool) "2 pruned (cascade)" false (G.mem_node pruned 2);
  Alcotest.(check bool) "3 pruned (one peer left)" false (G.mem_node pruned 3);
  Alcotest.(check bool) "stub never pruned" true (G.mem_node pruned 4);
  (* a transit AS protected by two stubs stays *)
  let g = G.of_edges [ (10, 11); (10, 12) ] in
  let pruned = Samp.prune_weak_transit g ~transit:(Asn.Set.singleton 10) in
  Alcotest.(check bool) "transit with two stubs kept" true (G.mem_node pruned 10)

let test_sampling_invariants () =
  let net = gen_internet () in
  let vantages = Asn.Set.elements net.Gen.tier1 in
  let classified = Inf.infer (Rt.paths_from_vantages net.Gen.graph ~vantages) in
  let rng = Rng.of_int 3 in
  let checked = ref 0 in
  for attempt = 0 to 30 do
    match Samp.sample (Rng.split_at rng attempt) classified ~stub_count:8 with
    | None -> ()
    | Some s ->
      incr checked;
      Alcotest.(check bool) "connected" true
        (Topology.Algorithms.is_connected s.Samp.graph);
      (* no weak transit left *)
      Asn.Set.iter
        (fun t ->
          Alcotest.(check bool) "transit degree >= 2" true
            (G.degree s.Samp.graph t >= 2))
        s.Samp.transit;
      (* all edges existed in the inferred graph *)
      List.iter
        (fun (a, b) ->
          Alcotest.(check bool) "edge preserved from parent" true
            (G.mem_edge classified.Inf.graph a b))
        (G.edges s.Samp.graph)
  done;
  Alcotest.(check bool) "at least one sample succeeded" true (!checked > 0)

let test_paper_topologies_sizes () =
  List.iter2
    (fun t expected ->
      Alcotest.(check int) (t.Topo.name ^ " size") expected
        (G.node_count t.Topo.graph);
      Alcotest.(check bool) (t.Topo.name ^ " connected") true
        (Topology.Algorithms.is_connected t.Topo.graph))
    (Topo.all ()) [ 25; 46; 63 ]

let test_paper_topologies_density_schedule () =
  match Topo.all () with
  | [ t25; t46; t63 ] ->
    let d t = Topology.Algorithms.average_degree t.Topo.graph in
    Alcotest.(check bool) "larger topologies are more richly connected" true
      (d t25 < d t46 && d t46 < d t63)
  | _ -> Alcotest.fail "expected three topologies"

let test_paper_topologies_deterministic () =
  let a = Topo.build ~seed:77L ~target_size:25 () in
  let b = Topo.build ~seed:77L ~target_size:25 () in
  Alcotest.(check (list (pair int int))) "same seed, same topology"
    (G.edges a.Topo.graph) (G.edges b.Topo.graph)

let test_paper_topologies_roles () =
  List.iter
    (fun t ->
      Alcotest.(check int) (t.Topo.name ^ " roles partition nodes")
        (G.node_count t.Topo.graph)
        (Asn.Set.cardinal t.Topo.transit + Asn.Set.cardinal t.Topo.stub))
    (Topo.all ())

let () =
  Alcotest.run "topology_pipeline"
    [
      ( "generate",
        [
          Alcotest.test_case "connected" `Quick test_generate_connected;
          Alcotest.test_case "roles disjoint" `Quick test_generate_roles_disjoint;
          Alcotest.test_case "tier-1 clique" `Quick test_generate_tier1_clique;
          Alcotest.test_case "stubs only buy transit" `Quick test_generate_stub_is_stub;
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
        ] );
      ( "route_table",
        [
          Alcotest.test_case "paths are valid walks" `Quick test_route_table_paths_valid;
          Alcotest.test_case "paths are shortest" `Quick test_route_table_shortest;
        ] );
      ( "inference",
        [
          Alcotest.test_case "paper example" `Quick test_inference_paper_example;
          Alcotest.test_case "merges paths" `Quick test_inference_merges_paths;
          Alcotest.test_case "consistent with generator" `Quick
            test_inference_recovers_generator_roles;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "pruning cascade" `Quick test_prune_weak_transit;
          Alcotest.test_case "sample invariants" `Quick test_sampling_invariants;
        ] );
      ( "paper_topologies",
        [
          Alcotest.test_case "exact sizes" `Quick test_paper_topologies_sizes;
          Alcotest.test_case "density schedule" `Quick test_paper_topologies_density_schedule;
          Alcotest.test_case "deterministic" `Quick test_paper_topologies_deterministic;
          Alcotest.test_case "role partition" `Quick test_paper_topologies_roles;
        ] );
    ]
