(* Tests for the text-rendering utilities: Text_table, Csv, Ascii_plot. *)

module Table = Mutil.Text_table
module Csv = Mutil.Csv
module Plot = Mutil.Ascii_plot

let test_table_contains_cells () =
  let s =
    Table.render ~header:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "beta"; "22" ] ]
  in
  List.iter
    (fun needle -> Testutil.check_contains ~what:"table" s needle)
    [ "name"; "value"; "alpha"; "beta"; "22" ]

let test_table_rectangular () =
  Alcotest.check_raises "ragged row rejected"
    (Invalid_argument "Text_table.render: row 0 has 1 cells, expected 2")
    (fun () -> ignore (Table.render ~header:[ "a"; "b" ] [ [ "only" ] ]))

let test_table_alignment () =
  let s =
    Table.render
      ~align:[ Table.Right; Table.Left ]
      ~header:[ "n"; "label" ]
      [ [ "1"; "x" ]; [ "100"; "y" ] ]
  in
  (* the right-aligned numeric column pads on the left *)
  Testutil.check_contains ~what:"aligned table" s "|   1 |"

let test_table_lines_equal_width () =
  let s =
    Table.render ~header:[ "a"; "bb" ] [ [ "ccc"; "d" ]; [ "e"; "ffff" ] ]
  in
  let widths =
    String.split_on_char '\n' s
    |> List.filter (fun l -> l <> "")
    |> List.map String.length
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "all lines same width" 1 (List.length widths)

let test_cells () =
  Alcotest.(check string) "float cell" "3.14" (Table.float_cell 3.14159);
  Alcotest.(check string) "float cell decimals" "3.1416"
    (Table.float_cell ~decimals:4 3.14159);
  Alcotest.(check string) "percent" "12.30%" (Table.percent_cell 0.123);
  Alcotest.(check string) "percent decimals" "12.3%"
    (Table.percent_cell ~decimals:1 0.123)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Csv.escape "a\nb")

let test_csv_document () =
  let doc = Csv.to_string ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "4,5" ] ] in
  Alcotest.(check string) "document" "x,y\n1,2\n3,\"4,5\"\n" doc

let test_csv_roundtrip_file () =
  let path = Filename.temp_file "moas_test" ".csv" in
  Csv.write_file ~path ~header:[ "a" ] [ [ "b" ] ];
  let ic = open_in path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "file contents" "a\nb\n" contents

let test_plot_renders () =
  let s =
    Plot.plot ~title:"t"
      [
        { Plot.label = "up"; points = [ (0.0, 0.0); (10.0, 10.0) ] };
        { Plot.label = "down"; points = [ (0.0, 10.0); (10.0, 0.0) ] };
      ]
  in
  Testutil.check_contains ~what:"plot" s "t";
  Testutil.check_contains ~what:"plot legend" s "up";
  Testutil.check_contains ~what:"plot legend" s "down";
  Testutil.check_contains ~what:"plot glyph" s "*";
  Testutil.check_contains ~what:"plot glyph" s "o"

let test_plot_single_point () =
  (* degenerate input must not divide by zero *)
  let s = Plot.plot ~title:"p" [ { Plot.label = "dot"; points = [ (1.0, 1.0) ] } ] in
  Testutil.check_contains ~what:"single point plot" s "dot"

let test_plot_empty_series () =
  let s = Plot.plot ~title:"e" [ { Plot.label = "none"; points = [] } ] in
  Testutil.check_contains ~what:"empty plot" s "none"

let test_bar_chart () =
  let s = Plot.bar_chart ~title:"bars" [ ("a", 2.0); ("b", 4.0) ] in
  Testutil.check_contains ~what:"bar chart" s "bars";
  Testutil.check_contains ~what:"bar chart" s "####";
  (* the larger bar is twice as long *)
  let count_hashes line =
    String.fold_left (fun n c -> if c = '#' then n + 1 else n) 0 line
  in
  let lines = String.split_on_char '\n' s in
  let a_line = List.find (fun l -> Testutil.contains l "a ") lines in
  let b_line = List.find (fun l -> Testutil.contains l "b ") lines in
  Alcotest.(check int) "proportional bars" (2 * count_hashes a_line)
    (count_hashes b_line)

let prop_csv_row_arity =
  Testutil.qtest "csv row joins with commas outside quotes"
    QCheck2.Gen.(list_size (int_range 1 5) (string_size ~gen:printable (int_range 0 8)))
    (fun cells ->
      let line = Csv.row_to_string cells in
      (* unquoted commas in the output = cells - 1 *)
      let commas_outside =
        let in_quotes = ref false and n = ref 0 in
        String.iter
          (fun c ->
            if c = '"' then in_quotes := not !in_quotes
            else if c = ',' && not !in_quotes then incr n)
          line;
        !n
      in
      commas_outside = List.length cells - 1)

let () =
  Alcotest.run "text_output"
    [
      ( "text_table",
        [
          Alcotest.test_case "cells present" `Quick test_table_contains_cells;
          Alcotest.test_case "rectangularity" `Quick test_table_rectangular;
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "uniform width" `Quick test_table_lines_equal_width;
          Alcotest.test_case "formatting helpers" `Quick test_cells;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escaping" `Quick test_csv_escape;
          Alcotest.test_case "document" `Quick test_csv_document;
          Alcotest.test_case "file write" `Quick test_csv_roundtrip_file;
        ] );
      ( "ascii_plot",
        [
          Alcotest.test_case "renders series" `Quick test_plot_renders;
          Alcotest.test_case "single point" `Quick test_plot_single_point;
          Alcotest.test_case "empty series" `Quick test_plot_empty_series;
          Alcotest.test_case "bar chart" `Quick test_bar_chart;
        ] );
      ("properties", [ prop_csv_row_arity ]);
    ]
