(* Tests for the attack library: attacker models and scenario execution,
   including the core soundness properties of the paper's mechanism. *)

open Net
module A = Attack.Attacker
module S = Attack.Scenario

let victim = Testutil.victim

let test_attacker_forgeries () =
  let legit = Asn.Set.of_list [ 1; 2 ] in
  let full = A.make ~forgery:A.Forge_full_list (Asn.make 666) in
  Alcotest.check Testutil.asn_set_testable "full forgery = legit + self"
    (Asn.Set.of_list [ 1; 2; 666 ])
    (Option.get (Moas.Moas_list.decode (A.communities full ~legit_list:legit)));
  let self_only = A.make ~forgery:A.Claim_self_only (Asn.make 666) in
  Alcotest.check Testutil.asn_set_testable "self-only list"
    (Asn.Set.singleton 666)
    (Option.get (Moas.Moas_list.decode (A.communities self_only ~legit_list:legit)));
  let bare = A.make ~forgery:A.No_list (Asn.make 666) in
  Alcotest.(check bool) "no list at all" true
    (Bgp.Community.Set.is_empty (A.communities bare ~legit_list:legit))

let test_attacker_target_override () =
  let sub, _ = Prefix.split victim in
  let a = A.make ~target_override:sub (Asn.make 666) in
  Alcotest.check Testutil.prefix_testable "sub-prefix announced" sub
    (A.announced_prefix a ~victim);
  let plain = A.make (Asn.make 666) in
  Alcotest.check Testutil.prefix_testable "default = victim prefix" victim
    (A.announced_prefix plain ~victim)

(* scenario construction validation *)

let line_graph = Topology.As_graph.of_edges [ (1, 2); (2, 3); (3, 4); (4, 5) ]

let test_scenario_validation () =
  let attacker = A.make (Asn.make 3) in
  Alcotest.check_raises "origin = attacker rejected"
    (Invalid_argument "Scenario.make: an attacker is also a legitimate origin")
    (fun () ->
      ignore
        (S.make ~graph:line_graph ~victim_prefix:victim ~legit_origins:[ 3 ]
           ~attackers:[ attacker ] ()));
  Alcotest.check_raises "unknown AS rejected"
    (Invalid_argument "Scenario.make: AS99 is not in the topology") (fun () ->
      ignore
        (S.make ~graph:line_graph ~victim_prefix:victim ~legit_origins:[ 99 ]
           ~attackers:[] ()));
  Alcotest.check_raises "no origin rejected"
    (Invalid_argument "Scenario.make: no legitimate origin") (fun () ->
      ignore
        (S.make ~graph:line_graph ~victim_prefix:victim ~legit_origins:[]
           ~attackers:[] ()))

let run ?(deployment = Moas.Deployment.Disabled) ?(attackers = []) ?(origins = [ 1 ])
    ?(dropper = 0.0) () =
  let scenario =
    S.make ~deployment ~community_dropper_fraction:dropper ~graph:line_graph
      ~victim_prefix:victim ~legit_origins:origins
      ~attackers:(List.map (fun a -> A.make (Asn.make a)) attackers)
      ()
  in
  Testutil.run_scenario scenario

let test_benign_scenario () =
  let o = run () in
  Alcotest.(check (float 0.0)) "nobody adopts anything" 0.0 o.S.fraction_adopting;
  Alcotest.(check bool) "converged" true o.S.converged;
  Alcotest.(check int) "no alarm" 0 o.S.alarm_count

let test_attack_without_detection () =
  (* attacker at 5, origin at 1 on a line: ASes 4 and 5's side adopt *)
  let o = run ~attackers:[ 5 ] () in
  Alcotest.(check int) "eligible excludes the attacker" 4 o.S.eligible;
  Alcotest.(check bool) "someone adopts" true (o.S.fraction_adopting > 0.0);
  Alcotest.(check bool) "AS4 adopted (adjacent to attacker)" true
    (Asn.Set.mem (Asn.make 4) o.S.adopters);
  Alcotest.(check bool) "AS2 kept the valid route" false
    (Asn.Set.mem (Asn.make 2) o.S.adopters)

let test_attack_with_full_detection () =
  let o = run ~deployment:Moas.Deployment.Full ~attackers:[ 5 ] () in
  (* on a line every non-attacker still holds its valid route when the
     attack starts, so detection is complete *)
  Alcotest.(check (float 0.0)) "nobody adopts" 0.0 o.S.fraction_adopting;
  Alcotest.(check bool) "alarms fired" true (o.S.alarm_count > 0);
  Alcotest.(check bool) "detected" true o.S.detected;
  Alcotest.(check bool) "oracle consulted" true (o.S.oracle_queries > 0)

let test_two_origins_valid_moas_no_alarm () =
  let o = run ~deployment:Moas.Deployment.Full ~origins:[ 1; 5 ] () in
  Alcotest.(check int) "valid MOAS raises no alarm" 0 o.S.alarm_count;
  Alcotest.(check (float 0.0)) "nothing adopted" 0.0 o.S.fraction_adopting

let test_two_origins_attacked () =
  let o =
    run ~deployment:Moas.Deployment.Full ~origins:[ 1; 5 ] ~attackers:[ 3 ] ()
  in
  Alcotest.(check bool) "conflict detected" true o.S.detected;
  Alcotest.(check (float 0.0)) "protected" 0.0 o.S.fraction_adopting

let test_dropper_fraction_recorded () =
  let o = run ~attackers:[ 5 ] ~dropper:0.5 () in
  Alcotest.(check bool) "droppers selected" true
    (Asn.Set.cardinal o.S.droppers > 0);
  Alcotest.(check bool) "attacker never a dropper" true
    (not (Asn.Set.mem (Asn.make 5) o.S.droppers))

let test_deterministic_outcomes () =
  let a = run ~deployment:(Moas.Deployment.Fraction 0.5) ~attackers:[ 5 ] () in
  let b = run ~deployment:(Moas.Deployment.Fraction 0.5) ~attackers:[ 5 ] () in
  Alcotest.check Testutil.asn_set_testable "same seed, same adopters"
    a.S.adopters b.S.adopters;
  Alcotest.check Testutil.asn_set_testable "same capable set" a.S.capable
    b.S.capable

let test_random_scenario_wellformed () =
  let t = Topology.Paper_topologies.topology_46 () in
  let rng = Mutil.Rng.of_int 8 in
  let s =
    S.random rng ~graph:t.Topology.Paper_topologies.graph
      ~stub:t.Topology.Paper_topologies.stub ~n_origins:2 ~n_attackers:5
      ~deployment:Moas.Deployment.Full
  in
  Alcotest.(check int) "two origins" 2 (List.length s.S.legit_origins);
  Alcotest.(check int) "five attackers" 5 (List.length s.S.attackers);
  (* origins drawn from stubs *)
  List.iter
    (fun o ->
      Alcotest.(check bool) "origin is a stub" true
        (Asn.Set.mem o t.Topology.Paper_topologies.stub))
    s.S.legit_origins

(* the paper's central soundness property, as a randomized test over the
   46-AS topology: with full deployment, any AS that still holds a valid
   route never adopts a forged one *)
let prop_full_deployment_soundness =
  Testutil.qtest ~count:25 "full MOAS beats normal BGP on random scenarios"
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 1 12))
    (fun (seed, n_attackers) ->
      let t = Topology.Paper_topologies.topology_46 () in
      let make deployment =
        let rng = Mutil.Rng.of_int seed in
        S.random rng ~graph:t.Topology.Paper_topologies.graph
          ~stub:t.Topology.Paper_topologies.stub ~n_origins:1 ~n_attackers
          ~deployment
      in
      let normal = Testutil.run_scenario ~seed (make Moas.Deployment.Disabled) in
      let full = Testutil.run_scenario ~seed (make Moas.Deployment.Full) in
      normal.S.converged && full.S.converged
      && full.S.fraction_adopting <= normal.S.fraction_adopting +. 1e-9)

let prop_partial_between =
  Testutil.qtest ~count:10 "half deployment sits between normal and full"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let t = Topology.Paper_topologies.topology_46 () in
      let run deployment =
        let rng = Mutil.Rng.of_int seed in
        (Testutil.run_scenario ~seed
           (S.random rng ~graph:t.Topology.Paper_topologies.graph
              ~stub:t.Topology.Paper_topologies.stub ~n_origins:1
              ~n_attackers:8 ~deployment))
          .S.fraction_adopting
      in
      let normal = run Moas.Deployment.Disabled in
      let half = run (Moas.Deployment.Fraction 0.5) in
      let full = run Moas.Deployment.Full in
      full <= half +. 1e-9 && half <= normal +. 1e-9)

let () =
  Alcotest.run "attack"
    [
      ( "attacker",
        [
          Alcotest.test_case "forgeries" `Quick test_attacker_forgeries;
          Alcotest.test_case "target override" `Quick test_attacker_target_override;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "validation" `Quick test_scenario_validation;
          Alcotest.test_case "benign" `Quick test_benign_scenario;
          Alcotest.test_case "attack, normal BGP" `Quick test_attack_without_detection;
          Alcotest.test_case "attack, full detection" `Quick
            test_attack_with_full_detection;
          Alcotest.test_case "valid MOAS quiet" `Quick
            test_two_origins_valid_moas_no_alarm;
          Alcotest.test_case "two origins attacked" `Quick test_two_origins_attacked;
          Alcotest.test_case "droppers recorded" `Quick test_dropper_fraction_recorded;
          Alcotest.test_case "deterministic" `Quick test_deterministic_outcomes;
          Alcotest.test_case "random scenario" `Quick test_random_scenario_wellformed;
        ] );
      ( "properties",
        [ prop_full_deployment_soundness; prop_partial_between ] );
    ]
