(* Tests for the measurement pipeline: Synthetic_routeviews generation,
   Moas_cases extraction semantics, and the Figure 4/5 reports. *)

open Net
module Srv = Measurement.Synthetic_routeviews
module Mc = Measurement.Moas_cases
module Day = Mutil.Day

(* a small but structurally complete archive for fast tests *)
let small_params =
  {
    Srv.default_params with
    Srv.universe_size = 500;
    initial_long_lived = 60;
    final_long_lived = 130;
    one_day_churn = 30;
    medium_churn = 15;
    event_1998_size = 120;
    event_2001_size = 90;
  }

let small_summary = lazy (Measurement.Report.run small_params)

let test_params_validated () =
  Alcotest.check_raises "universe too small"
    (Invalid_argument "Synthetic_routeviews: universe too small for the episodes")
    (fun () ->
      ignore
        (Srv.fold_dumps
           { small_params with Srv.universe_size = 10 }
           ~init:() ~f:(fun () _ -> ())));
  Alcotest.check_raises "shrinking pool"
    (Invalid_argument "Synthetic_routeviews: long-lived pool cannot shrink")
    (fun () ->
      ignore
        (Srv.observed_days { small_params with Srv.final_long_lived = 10 }))

let test_observed_day_count () =
  let observed = Srv.observed_days small_params in
  Alcotest.(check int) "window length" Day.measurement_days (Array.length observed);
  let count = Array.fold_left (fun n o -> if o then n + 1 else n) 0 observed in
  Alcotest.(check int) "1279 observed days"
    (Day.measurement_days - small_params.Srv.missing_day_count)
    count

let test_event_days_observed () =
  let observed = Srv.observed_days small_params in
  let off day = Day.diff day Day.measurement_start in
  Alcotest.(check bool) "1998 event day observed" true
    observed.(off Srv.event_1998);
  Alcotest.(check bool) "2001 event day observed" true
    observed.(off Srv.event_2001)

let test_dump_stream_shape () =
  let days, first_table_size =
    Srv.fold_dumps small_params ~init:(0, None) ~f:(fun (n, size) dump ->
        let size =
          match size with
          | None -> Some (List.length dump.Srv.table)
          | s -> s
        in
        (n + 1, size))
  in
  Alcotest.(check int) "one dump per observed day"
    (Day.measurement_days - small_params.Srv.missing_day_count)
    days;
  Alcotest.(check (option int)) "full universe in each dump"
    (Some small_params.Srv.universe_size)
    first_table_size

let test_dumps_deterministic () =
  let collect () =
    Srv.fold_dumps small_params ~init:[] ~f:(fun acc dump ->
        (dump.Srv.day, List.length (List.filter (fun (_, o) -> Asn.Set.cardinal o > 1) dump.Srv.table))
        :: acc)
  in
  Alcotest.(check bool) "same stream twice" true (collect () = collect ())

let test_case_counts () =
  let summary = Lazy.force small_summary in
  let expected_total =
    small_params.Srv.final_long_lived + small_params.Srv.one_day_churn
    + small_params.Srv.medium_churn + small_params.Srv.event_1998_size
    + small_params.Srv.event_2001_size
  in
  (* a few medium/long episodes may fall entirely into collector gaps *)
  Alcotest.(check bool)
    (Printf.sprintf "total cases close to %d (got %d)" expected_total
       summary.Mc.total_cases)
    true
    (summary.Mc.total_cases >= expected_total - 10
    && summary.Mc.total_cases <= expected_total)

let test_event_spikes () =
  let summary = Lazy.force small_summary in
  let base_before =
    Mc.cases_on summary (Day.add Srv.event_1998 (-1))
  in
  let spike = Mc.cases_on summary Srv.event_1998 in
  Alcotest.(check bool)
    (Printf.sprintf "1998 spike (%d) >> base (%d)" spike base_before)
    true
    (spike >= base_before + small_params.Srv.event_1998_size);
  (* the 2001 event lasts two days *)
  let spike01 = Mc.cases_on summary Srv.event_2001 in
  let spike01_next = Mc.cases_on summary (Day.add Srv.event_2001 1) in
  Alcotest.(check bool) "2001 spike on both days" true
    (spike01 >= small_params.Srv.event_2001_size
    && spike01_next >= small_params.Srv.event_2001_size)

let test_one_day_attribution () =
  let summary = Lazy.force small_summary in
  let attributed = Mc.one_day_cases_attributed_to summary Srv.fault_as_1998 in
  Alcotest.(check int) "every 1998-event case is one-day and attributed"
    small_params.Srv.event_1998_size attributed

let test_duration_semantics_non_continuous () =
  (* the paper counts total MOAS days regardless of continuity: a prefix
     seen in MOAS on days 1 and 3 (not 2) has duration 2 *)
  let p = Prefix.of_string "10.0.0.0/8" in
  let origins n = Asn.Set.of_list (List.init n (fun i -> i + 1)) in
  let acc = Mc.empty in
  let acc = Mc.ingest acc ~day:0 [ (p, origins 2) ] in
  let acc = Mc.ingest acc ~day:1 [ (p, origins 1) ] in
  let acc = Mc.ingest acc ~day:2 [ (p, origins 3) ] in
  let summary = Mc.finalize acc in
  match summary.Mc.cases with
  | [ case ] ->
    Alcotest.(check int) "duration counts MOAS days only" 2 case.Mc.moas_days;
    Alcotest.(check int) "max origins tracked" 3 case.Mc.max_origins;
    Alcotest.(check int) "first day" 0 case.Mc.first_day;
    Alcotest.(check int) "last day" 2 case.Mc.last_day
  | l -> Alcotest.failf "expected one case, got %d" (List.length l)

let test_origin_set_changes_same_case () =
  (* per the paper, duration accrues regardless of which origins are
     involved: different conflicting pairs on different days are one case *)
  let p = Prefix.of_string "10.0.0.0/8" in
  let acc = Mc.empty in
  let acc = Mc.ingest acc ~day:0 [ (p, Asn.Set.of_list [ 1; 2 ]) ] in
  let acc = Mc.ingest acc ~day:1 [ (p, Asn.Set.of_list [ 1; 3 ]) ] in
  let summary = Mc.finalize acc in
  match summary.Mc.cases with
  | [ case ] ->
    Alcotest.(check int) "one case" 2 case.Mc.moas_days;
    Alcotest.check Testutil.asn_set_testable "origins accumulate"
      (Asn.Set.of_list [ 1; 2; 3 ])
      case.Mc.origins_ever
  | l -> Alcotest.failf "expected one case, got %d" (List.length l)

let test_single_origin_never_a_case () =
  let p = Prefix.of_string "10.0.0.0/8" in
  let acc = Mc.ingest Mc.empty ~day:0 [ (p, Asn.Set.singleton 1) ] in
  let summary = Mc.finalize acc in
  Alcotest.(check int) "no case from single origin" 0 summary.Mc.total_cases

let test_duration_buckets_partition () =
  let summary = Lazy.force small_summary in
  let buckets = Mc.duration_buckets summary in
  let total = List.fold_left (fun n (_, c) -> n + c) 0 buckets in
  Alcotest.(check int) "buckets partition the cases" summary.Mc.total_cases total

let test_duration_histogram_consistent () =
  let summary = Lazy.force small_summary in
  let hist = Mc.duration_histogram summary in
  let total = List.fold_left (fun n (_, c) -> n + c) 0 hist in
  Alcotest.(check int) "histogram total" summary.Mc.total_cases total;
  let one_day = Option.value ~default:0 (List.assoc_opt 1 hist) in
  Alcotest.(check int) "1-day bin matches summary" summary.Mc.one_day_cases one_day

let test_multiplicity_fractions () =
  let summary = Lazy.force small_summary in
  let fractions = Mc.origin_multiplicity summary in
  let total = List.fold_left (fun s (_, f) -> s +. f) 0.0 fractions in
  Alcotest.(check bool) "fractions sum to 1" true (abs_float (total -. 1.0) < 1e-9);
  let two = Option.value ~default:0.0 (List.assoc_opt 2 fractions) in
  Alcotest.(check bool) "two-origin cases dominate" true (two > 0.8)

let test_median_ramp () =
  let summary = Lazy.force small_summary in
  let m98 = Mc.median_daily_in_year summary 1998 in
  let m01 = Mc.median_daily_in_year summary 2001 in
  Alcotest.(check bool)
    (Printf.sprintf "daily count grows (98: %.0f, 01: %.0f)" m98 m01)
    true (m01 > m98)

let test_report_texts () =
  let summary = Lazy.force small_summary in
  let fig4 = Measurement.Report.figure4_text summary in
  Testutil.check_contains ~what:"figure 4" fig4 "Figure 4";
  Testutil.check_contains ~what:"figure 4" fig4 "peak:";
  let fig5 = Measurement.Report.figure5_text summary in
  Testutil.check_contains ~what:"figure 5" fig5 "1 day";
  let table = Measurement.Report.summary_table summary in
  Testutil.check_contains ~what:"summary table" table "total MOAS cases";
  Testutil.check_contains ~what:"summary table" table "96.14%"

let () =
  Alcotest.run "measurement"
    [
      ( "synthetic_routeviews",
        [
          Alcotest.test_case "validation" `Quick test_params_validated;
          Alcotest.test_case "observed days" `Quick test_observed_day_count;
          Alcotest.test_case "event days observed" `Quick test_event_days_observed;
          Alcotest.test_case "stream shape" `Quick test_dump_stream_shape;
          Alcotest.test_case "deterministic" `Quick test_dumps_deterministic;
        ] );
      ( "moas_cases",
        [
          Alcotest.test_case "case counts" `Quick test_case_counts;
          Alcotest.test_case "event spikes" `Quick test_event_spikes;
          Alcotest.test_case "one-day attribution" `Quick test_one_day_attribution;
          Alcotest.test_case "non-continuous duration" `Quick
            test_duration_semantics_non_continuous;
          Alcotest.test_case "origin churn is one case" `Quick
            test_origin_set_changes_same_case;
          Alcotest.test_case "single origin ignored" `Quick
            test_single_origin_never_a_case;
          Alcotest.test_case "buckets partition" `Quick test_duration_buckets_partition;
          Alcotest.test_case "histogram consistent" `Quick
            test_duration_histogram_consistent;
          Alcotest.test_case "multiplicity" `Quick test_multiplicity_fractions;
          Alcotest.test_case "median ramp" `Quick test_median_ramp;
        ] );
      ("report", [ Alcotest.test_case "rendered text" `Quick test_report_texts ]);
    ]
