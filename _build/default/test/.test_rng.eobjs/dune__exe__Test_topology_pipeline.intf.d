test/test_topology_pipeline.mli:
