test/test_network_properties.mli:
