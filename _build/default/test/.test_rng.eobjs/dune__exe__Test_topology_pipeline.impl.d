test/test_topology_pipeline.ml: Alcotest Asn List Mutil Net Printf Testutil Topology
