test/test_alert_service.ml: Alcotest Asn Bgp Experiments List Moas Net Option Prefix Testutil Topology
