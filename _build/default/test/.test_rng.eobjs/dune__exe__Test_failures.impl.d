test/test_failures.ml: Alcotest Asn Bgp Hashtbl List Moas Net Option Printf Sim Testutil Topology
