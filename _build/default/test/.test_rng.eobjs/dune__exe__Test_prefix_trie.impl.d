test/test_prefix_trie.ml: Alcotest Ipv4 List Net Option Prefix Prefix_trie QCheck2 Testutil
