test/test_damping.ml: Alcotest Asn Bgp List Net Sim Testutil Topology
