test/test_day.ml: Alcotest List Mutil Printf QCheck2 Testutil
