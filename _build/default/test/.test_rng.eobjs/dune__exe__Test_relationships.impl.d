test/test_relationships.ml: Alcotest Asn Attack Bgp Lazy List Moas Mutil Net Option Printf Testutil Topology
