test/test_experiments.ml: Alcotest Experiments Lazy List Moas Mutil Net Printf Testutil Topology
