test/test_stats.ml: Alcotest Array List Mutil QCheck2 Testutil
