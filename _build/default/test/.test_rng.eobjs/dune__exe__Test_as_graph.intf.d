test/test_as_graph.mli:
