test/test_alert_service.mli:
