test/test_day.mli:
