test/test_as_path.ml: Alcotest Asn Bgp List Net QCheck2 Testutil
