test/test_rib_policy.ml: Alcotest Asn Bgp Ipv4 List Net Option Prefix Testutil
