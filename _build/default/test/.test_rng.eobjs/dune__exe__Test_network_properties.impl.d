test/test_network_properties.ml: Alcotest Array Asn Attack Bgp Hashtbl Ipv4 List Moas Mutil Net Prefix Printf QCheck2 Sim Testutil Topology
