test/test_golden.ml: Alcotest Experiments Float Lazy List Measurement Moas Topology
