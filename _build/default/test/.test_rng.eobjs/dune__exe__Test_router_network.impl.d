test/test_router_network.ml: Alcotest Asn Bgp List Net Option Printf Sim Testutil Topology
