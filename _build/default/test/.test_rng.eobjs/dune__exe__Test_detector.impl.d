test/test_detector.ml: Alcotest Asn Bgp List Moas Net QCheck2 Testutil
