test/test_measurement.mli:
