test/test_integration.ml: Alcotest Asn Attack Bgp Experiments Float List Measurement Moas Mutil Net Printf String Testutil Topology
