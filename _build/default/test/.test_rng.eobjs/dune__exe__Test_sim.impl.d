test/test_sim.ml: Alcotest Float List QCheck2 Sim Testutil
