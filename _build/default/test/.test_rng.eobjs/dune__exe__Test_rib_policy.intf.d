test/test_rib_policy.mli:
