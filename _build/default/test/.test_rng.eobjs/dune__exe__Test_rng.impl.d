test/test_rng.ml: Alcotest Array List Mutil Printf QCheck2 Testutil
