test/test_dns.ml: Alcotest Asn Bgp Dnssim Experiments Ipv4 List Net Option Prefix Testutil Topology
