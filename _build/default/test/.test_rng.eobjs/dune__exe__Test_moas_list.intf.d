test/test_moas_list.mli:
