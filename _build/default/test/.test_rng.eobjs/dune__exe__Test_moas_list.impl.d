test/test_moas_list.ml: Alcotest Asn Bgp List Moas Mutil Net Option QCheck2 Testutil
