test/test_attack.ml: Alcotest Asn Attack Bgp List Moas Mutil Net Option Prefix QCheck2 Testutil Topology
