test/test_decision.ml: Alcotest Asn Bgp List Net Option QCheck2 Testutil
