test/test_obs.ml: Alcotest Bgp List Net Obs Sim Topology
