test/test_aggregation.ml: Alcotest Asn Bgp List Moas Net Option Prefix Sim Testutil Topology
