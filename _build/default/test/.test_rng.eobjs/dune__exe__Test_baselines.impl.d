test/test_baselines.ml: Alcotest Asn Attack Baselines Bgp List Moas Mutil Net Printf Testutil Topology
