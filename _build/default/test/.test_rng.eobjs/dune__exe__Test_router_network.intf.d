test/test_router_network.mli:
