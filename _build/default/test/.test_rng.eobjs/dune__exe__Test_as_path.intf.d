test/test_as_path.mli:
