test/test_prefix.ml: Alcotest Asn Ipv4 List Net Prefix QCheck2 Testutil
