test/test_monitor.ml: Alcotest Asn Bgp List Moas Net Prefix Testutil
