test/test_wire.ml: Alcotest Asn Bgp Bytes Char Ipv4 List Measurement Moas Net Prefix QCheck2 Testutil
