test/test_text_output.ml: Alcotest Filename List Mutil QCheck2 String Sys Testutil
