test/test_relationships.mli:
