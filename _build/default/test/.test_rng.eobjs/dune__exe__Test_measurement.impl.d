test/test_measurement.ml: Alcotest Array Asn Lazy List Measurement Mutil Net Option Prefix Printf Testutil
