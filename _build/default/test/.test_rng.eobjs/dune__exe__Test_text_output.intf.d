test/test_text_output.mli:
