test/test_studies.ml: Alcotest Experiments List Measurement Mutil Printf Testutil Topology
