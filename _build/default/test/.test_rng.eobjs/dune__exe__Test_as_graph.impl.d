test/test_as_graph.ml: Alcotest Asn List Net Printf QCheck2 Testutil Topology
