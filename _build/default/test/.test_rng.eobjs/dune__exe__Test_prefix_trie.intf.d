test/test_prefix_trie.mli:
