(* Tests for the DNS substrate (Domain, Zone, Resolver) and the
   circular-dependency study. *)

open Net
module Domain = Dnssim.Domain
module Zone = Dnssim.Zone
module Resolver = Dnssim.Resolver

let d = Domain.of_string

let test_domain_parse_print () =
  Alcotest.(check string) "simple" "www.example.com"
    (Domain.to_string (d "www.example.com"));
  Alcotest.(check string) "trailing dot" "example.com"
    (Domain.to_string (d "example.com."));
  Alcotest.(check string) "case folded" "example.com"
    (Domain.to_string (d "ExAmPlE.CoM"));
  Alcotest.(check string) "root" "." (Domain.to_string Domain.root);
  Alcotest.(check bool) "root parses" true (Domain.equal (d ".") Domain.root)

let test_domain_structure () =
  let name = d "www.example.com" in
  Alcotest.(check (list string)) "labels" [ "www"; "example"; "com" ]
    (Domain.labels name);
  Alcotest.(check (option string)) "parent" (Some "example.com")
    (Option.map Domain.to_string (Domain.parent name));
  Alcotest.(check bool) "suffix" true (Domain.is_suffix ~suffix:(d "com") name);
  Alcotest.(check bool) "not suffix" false
    (Domain.is_suffix ~suffix:(d "org") name);
  Alcotest.(check bool) "everything under root" true
    (Domain.is_suffix ~suffix:Domain.root name);
  Alcotest.(check string) "prepend" "mail.example.com"
    (Domain.to_string (Domain.prepend "mail" (d "example.com")))

let test_domain_validation () =
  Alcotest.check_raises "empty label" (Invalid_argument "Domain: empty label")
    (fun () -> ignore (d "a..b"))

let test_reverse_of_prefix () =
  Alcotest.(check string) "/24" "2.0.192.in-addr.arpa"
    (Domain.to_string (Domain.reverse_of_prefix (Prefix.of_string "192.0.2.0/24")));
  Alcotest.(check string) "/16" "2.10.in-addr.arpa"
    (Domain.to_string (Domain.reverse_of_prefix (Prefix.of_string "10.2.0.0/16")));
  Alcotest.(check string) "/8" "10.in-addr.arpa"
    (Domain.to_string (Domain.reverse_of_prefix (Prefix.of_string "10.0.0.0/8")))

let moasrr origins = Zone.Moasrr (Asn.Set.of_list origins)

let example_zone () =
  Zone.create ~apex:(d "example.com")
  |> (fun z ->
       Zone.add z
         { Zone.name = d "www.example.com"; ttl = 60; rdata = Zone.A (Ipv4.of_string "10.0.0.1") })
  |> (fun z ->
       Zone.add z
         { Zone.name = d "sub.example.com"; ttl = 60; rdata = Zone.Ns (d "ns.sub.example.com") })
  |> fun z ->
  Zone.add z
    { Zone.name = d "ns.sub.example.com"; ttl = 60; rdata = Zone.A (Ipv4.of_string "10.0.0.53") }

let test_zone_lookup () =
  let zone = example_zone () in
  (match Zone.lookup zone (d "www.example.com") ~qtype:`A with
  | Zone.Answer [ rr ] ->
    Alcotest.(check string) "answer" "A 10.0.0.1" (Zone.rdata_to_string rr.Zone.rdata)
  | _ -> Alcotest.fail "expected an answer");
  (match Zone.lookup zone (d "nope.example.com") ~qtype:`A with
  | Zone.Name_error -> ()
  | _ -> Alcotest.fail "expected NXDOMAIN");
  (* a name below a delegation produces a referral with glue *)
  match Zone.lookup zone (d "deep.sub.example.com") ~qtype:`A with
  | Zone.Delegation (cut, rrs) ->
    Alcotest.(check string) "cut point" "sub.example.com" (Domain.to_string cut);
    Alcotest.(check bool) "glue included" true
      (List.exists
         (fun rr -> match rr.Zone.rdata with Zone.A _ -> true | _ -> false)
         rrs)
  | _ -> Alcotest.fail "expected a delegation"

let test_zone_rejects_foreign_names () =
  Alcotest.check_raises "out of zone"
    (Invalid_argument "Zone.add: other.org outside zone example.com") (fun () ->
      ignore
        (Zone.add (Zone.create ~apex:(d "example.com"))
           { Zone.name = d "other.org"; ttl = 60; rdata = moasrr [ 1 ] }))

(* a two-level MOASRR tree as used by the study *)
let victim = Testutil.victim
let arpa_addr = Ipv4.of_string "199.7.0.42"
let root_addr = Ipv4.of_string "198.41.0.4"

let setup ?reach () =
  let arpa_apex = d "in-addr.arpa" in
  let arpa_ns = d "ns.registry.net" in
  let root_zone =
    Zone.create ~apex:Domain.root
    |> (fun z -> Zone.add z { Zone.name = arpa_apex; ttl = 300; rdata = Zone.Ns arpa_ns })
    |> fun z -> Zone.add z { Zone.name = arpa_ns; ttl = 300; rdata = Zone.A arpa_addr }
  in
  let arpa_zone =
    Zone.create ~apex:arpa_apex
    |> fun z ->
    Zone.add z
      {
        Zone.name = Domain.reverse_of_prefix victim;
        ttl = 300;
        rdata = moasrr [ 4; 226 ];
      }
  in
  let roots = [ { Resolver.name = d "a.root"; address = root_addr; zone = root_zone } ] in
  let servers = [ { Resolver.name = arpa_ns; address = arpa_addr; zone = arpa_zone } ] in
  Resolver.create (Resolver.config ?reach ~roots ~servers ())

let test_resolver_moasrr () =
  let r = setup () in
  (match Resolver.lookup_moasrr r ~now:0.0 victim with
  | Ok (Some origins) ->
    Alcotest.check Testutil.asn_set_testable "origins" (Asn.Set.of_list [ 4; 226 ]) origins
  | _ -> Alcotest.fail "expected a MOASRR answer");
  Alcotest.(check int) "two server contacts (root + arpa)" 2
    (Resolver.queries_sent r)

let test_resolver_cache () =
  let r = setup () in
  ignore (Resolver.lookup_moasrr r ~now:0.0 victim);
  ignore (Resolver.lookup_moasrr r ~now:10.0 victim);
  Alcotest.(check int) "second lookup from cache" 2 (Resolver.queries_sent r);
  Alcotest.(check int) "cache hit recorded" 1 (Resolver.cache_hits r);
  (* after the TTL the resolver re-queries *)
  ignore (Resolver.lookup_moasrr r ~now:1000.0 victim);
  Alcotest.(check int) "expired entry re-queried" 4 (Resolver.queries_sent r);
  Resolver.flush_cache r;
  ignore (Resolver.lookup_moasrr r ~now:1000.0 victim);
  Alcotest.(check int) "flush forces re-query" 6 (Resolver.queries_sent r)

let test_resolver_no_data_fails_open () =
  let r = setup () in
  match Resolver.lookup_moasrr r ~now:0.0 (Prefix.of_string "203.0.113.0/24") with
  | Ok None | Error Resolver.Nxdomain -> ()
  | Ok (Some _) -> Alcotest.fail "unexpected record"
  | Error e -> Alcotest.failf "unexpected error: %s" (Resolver.error_to_string e)

let test_resolver_unreachable () =
  (* the arpa server is unreachable: resolution must fail, not hang *)
  let r = setup ~reach:(fun addr -> not (Ipv4.equal addr arpa_addr)) () in
  (match Resolver.lookup_moasrr r ~now:0.0 victim with
  | Error (Resolver.Unreachable _) -> ()
  | Ok _ -> Alcotest.fail "resolved through an unreachable server"
  | Error e -> Alcotest.failf "unexpected error: %s" (Resolver.error_to_string e));
  (* the root unreachable: same *)
  let r = setup ~reach:(fun _ -> false) () in
  match Resolver.lookup_moasrr r ~now:0.0 victim with
  | Error (Resolver.Unreachable _) -> ()
  | _ -> Alcotest.fail "expected unreachable"

let test_forward_path () =
  let g = Topology.As_graph.of_edges [ (1, 2); (2, 3); (3, 4) ] in
  let net = Bgp.Network.make g in
  let p = Prefix.of_string "10.0.0.0/8" in
  Bgp.Network.originate net 1 p;
  ignore (Bgp.Network.run net);
  let host = Ipv4.of_string "10.1.2.3" in
  Alcotest.(check (option (list int))) "hop-by-hop path"
    (Some [ 4; 3; 2; 1 ])
    (Bgp.Network.forward_path net ~from:4 host);
  Alcotest.(check (option int)) "delivered at the origin" (Some 1)
    (Bgp.Network.delivered_to net ~from:4 host);
  Alcotest.(check (option int)) "no route, no delivery" None
    (Bgp.Network.delivered_to net ~from:4 (Ipv4.of_string "203.0.113.9"))

let test_forward_path_follows_hijack () =
  (* with a hijack in place, forwarding lands at the attacker: the exact
     mechanism behind both Section 3.3 and the DNS study *)
  let g = Topology.As_graph.of_edges [ (1, 2); (2, 3); (3, 4) ] in
  let net = Bgp.Network.make g in
  let p = Prefix.of_string "10.0.0.0/8" in
  Bgp.Network.originate ~at:0.0 net 1 p;
  Bgp.Network.originate ~at:50.0 net 4 p;
  ignore (Bgp.Network.run net);
  Alcotest.(check (option int)) "AS3 captured" (Some 4)
    (Bgp.Network.delivered_to net ~from:3 (Ipv4.of_string "10.0.0.1"))

let test_dns_study_shape () =
  let t = Topology.Paper_topologies.topology_46 () in
  let points = Experiments.Dns_study.study ~runs:4 ~topology:t () in
  match points with
  | [ oracle; dns; hijack ] ->
    Alcotest.(check bool) "oracle condition is the reference" true
      (oracle.Experiments.Dns_study.condition = Experiments.Dns_study.Oracle);
    (* intact DNS matches the oracle's protection *)
    Alcotest.(check (float 1e-9)) "intact DNS = oracle protection"
      oracle.Experiments.Dns_study.mean_adopting
      dns.Experiments.Dns_study.mean_adopting;
    Alcotest.(check bool) "DNS actually queried" true
      (dns.Experiments.Dns_study.mean_dns_queries > 0.0);
    (* the circular dependency hurts *)
    Alcotest.(check bool) "DNS hijack weakens detection" true
      (hijack.Experiments.Dns_study.mean_adopting
      > dns.Experiments.Dns_study.mean_adopting);
    Alcotest.(check bool) "failed lookups observed" true
      (hijack.Experiments.Dns_study.mean_failed_lookups > 0.0)
  | _ -> Alcotest.fail "expected three conditions"

let () =
  Alcotest.run "dns"
    [
      ( "domain",
        [
          Alcotest.test_case "parse/print" `Quick test_domain_parse_print;
          Alcotest.test_case "structure" `Quick test_domain_structure;
          Alcotest.test_case "validation" `Quick test_domain_validation;
          Alcotest.test_case "in-addr.arpa" `Quick test_reverse_of_prefix;
        ] );
      ( "zone",
        [
          Alcotest.test_case "lookup" `Quick test_zone_lookup;
          Alcotest.test_case "foreign names" `Quick test_zone_rejects_foreign_names;
        ] );
      ( "resolver",
        [
          Alcotest.test_case "MOASRR resolution" `Quick test_resolver_moasrr;
          Alcotest.test_case "cache + TTL" `Quick test_resolver_cache;
          Alcotest.test_case "no data" `Quick test_resolver_no_data_fails_open;
          Alcotest.test_case "unreachable servers" `Quick test_resolver_unreachable;
        ] );
      ( "forwarding",
        [
          Alcotest.test_case "forward path" `Quick test_forward_path;
          Alcotest.test_case "hijacked forwarding" `Quick test_forward_path_follows_hijack;
        ] );
      ( "study",
        [ Alcotest.test_case "circular dependency" `Quick test_dns_study_shape ] );
    ]
