(* Tests for session failure and recovery (Router.peer_down/peer_up and
   Network.fail_link/restore_link), plus failure injection during an
   attack. *)

open Net
module Network = Bgp.Network
module Router = Bgp.Router

let victim = Testutil.victim

let test_peer_down_flushes () =
  let router = Router.create (Asn.make 1) in
  Router.add_peer router (Asn.make 2);
  Router.add_peer router (Asn.make 3);
  Router.set_transport router
    ~send:(fun ~peer:_ _ -> ())
    ~schedule:(fun ~delay:_ _ -> ());
  Router.handle_update router ~now:1.0
    (Bgp.Update.announce ~sender:(Asn.make 2) (Testutil.route ~from:2 [ 2; 10 ]));
  Alcotest.(check bool) "route installed" true (Router.best router victim <> None);
  Router.peer_down router ~now:2.0 (Asn.make 2);
  Alcotest.(check bool) "flushed with session" true (Router.best router victim = None);
  Alcotest.(check (list int)) "peer removed" [ 3 ]
    (List.map Asn.to_int (Router.peers router))

let test_peer_up_readvertises () =
  let router = Router.create (Asn.make 1) in
  Router.add_peer router (Asn.make 2);
  let sent = ref [] in
  Router.set_transport router
    ~send:(fun ~peer update -> sent := (peer, update) :: !sent)
    ~schedule:(fun ~delay:_ _ -> ());
  Router.originate router ~now:0.0 (Bgp.Route.originate ~self:(Asn.make 1) victim);
  sent := [];
  Router.peer_up router ~now:1.0 (Asn.make 3);
  (match !sent with
  | [ (peer, { Bgp.Update.payload = Bgp.Update.Announce _; _ }) ] ->
    Alcotest.(check int) "table exchange to the new peer" 3 (Asn.to_int peer)
  | _ -> Alcotest.fail "expected one announcement to the new peer");
  (* idempotent: bringing the same session up again changes nothing *)
  sent := [];
  Router.peer_up router ~now:2.0 (Asn.make 3);
  Alcotest.(check int) "no duplicate exchange" 0 (List.length !sent)

let line () = Topology.As_graph.of_edges [ (1, 2); (2, 3); (3, 4) ]

let test_fail_link_loses_reachability () =
  let net = Network.make (line ()) in
  Network.originate ~at:0.0 net 1 victim;
  Network.fail_link ~at:50.0 net 2 3;
  Alcotest.(check bool) "converged" true (Network.run net = Sim.Engine.Quiescent);
  Alcotest.(check bool) "near side keeps the route" true
    (Network.best_route net 2 victim <> None);
  Alcotest.(check bool) "far side loses it" true
    (Network.best_route net 3 victim = None);
  Alcotest.(check bool) "stub behind the cut loses it" true
    (Network.best_route net 4 victim = None);
  Alcotest.(check bool) "link reported down" false (Network.link_is_up net 2 3)

let test_restore_link_recovers () =
  let net = Network.make (line ()) in
  Network.originate ~at:0.0 net 1 victim;
  Network.fail_link ~at:50.0 net 2 3;
  Network.restore_link ~at:100.0 net 2 3;
  ignore (Network.run net);
  List.iter
    (fun asn ->
      Alcotest.(check bool)
        (Printf.sprintf "AS%d recovered" asn)
        true
        (Network.best_route net asn victim <> None))
    [ 2; 3; 4 ];
  Alcotest.(check bool) "link reported up" true (Network.link_is_up net 2 3)

let test_fail_link_reroutes () =
  (* a ring: losing one link just lengthens the path *)
  let g = Topology.As_graph.of_edges [ (1, 2); (2, 3); (3, 4); (4, 1) ] in
  let net = Network.make g in
  Network.originate ~at:0.0 net 1 victim;
  Network.fail_link ~at:50.0 net 1 2 ;
  ignore (Network.run net);
  (match Network.best_route net 2 victim with
  | Some route ->
    Alcotest.(check int) "AS2 reroutes the long way" 3
      (Bgp.As_path.length route.Bgp.Route.as_path)
  | None -> Alcotest.fail "AS2 should reroute");
  Alcotest.(check bool) "AS3 unaffected" true (Network.best_route net 3 victim <> None)

let test_fail_unknown_link_rejected () =
  let net = Network.make (line ()) in
  Alcotest.check_raises "non-peering rejected"
    (Invalid_argument "Network: AS1 and AS3 do not peer") (fun () ->
      Network.fail_link net 1 3)

let test_attack_during_partition () =
  (* the origin's only link fails while an attacker is active: the cut-off
     side has no valid route to conflict with, so even full deployment
     cannot protect it - the paper's single-path caveat (Section 4.1) *)
  let g = Topology.As_graph.of_edges [ (1, 2); (2, 3); (3, 4); (4, 5) ] in
  let oracle = Moas.Origin_verification.create () in
  Moas.Origin_verification.register oracle victim (Asn.Set.singleton (Asn.make 1));
  let validator_of asn =
    if Asn.equal asn (Asn.make 5) then None
    else
      Some (Moas.Detector.validator (Moas.Detector.create ~backend:(Moas.Detector.Oracle oracle) ~self:asn ()))
  in
  let net = Network.make ~config:Network.Config.(default |> with_validator_of validator_of) g in
  Network.originate ~at:0.0 net 1 victim;
  Network.fail_link ~at:50.0 net 1 2;
  (* attacker AS5 announces after the partition *)
  Network.originate ~at:100.0 net 5 victim;
  ignore (Network.run net);
  (* everyone beyond the cut now only hears the attacker *)
  List.iter
    (fun asn ->
      Alcotest.(check (option int))
        (Printf.sprintf "AS%d adopts the only available (bogus) route" asn)
        (Some 5)
        (Option.map Asn.to_int (Network.best_origin net asn victim)))
    [ 2; 3; 4 ]

let test_recovery_exposes_conflict () =
  (* continuing the scenario: when the origin's link is restored, capable
     ASes see the conflict and flip back to the valid route *)
  let g = Topology.As_graph.of_edges [ (1, 2); (2, 3); (3, 4); (4, 5) ] in
  let oracle = Moas.Origin_verification.create () in
  Moas.Origin_verification.register oracle victim (Asn.Set.singleton (Asn.make 1));
  let detectors = Hashtbl.create 8 in
  let validator_of asn =
    if Asn.equal asn (Asn.make 5) then None
    else begin
      let d = Moas.Detector.create ~backend:(Moas.Detector.Oracle oracle) ~self:asn () in
      Hashtbl.replace detectors asn d;
      Some (Moas.Detector.validator d)
    end
  in
  let net = Network.make ~config:Network.Config.(default |> with_validator_of validator_of) g in
  Network.originate ~at:0.0 net 1 victim;
  Network.fail_link ~at:50.0 net 1 2;
  Network.originate ~at:100.0 net 5 victim;
  Network.restore_link ~at:200.0 net 1 2;
  ignore (Network.run net);
  List.iter
    (fun asn ->
      Alcotest.(check (option int))
        (Printf.sprintf "AS%d back on the valid route" asn)
        (Some 1)
        (Option.map Asn.to_int (Network.best_origin net asn victim)))
    [ 2; 3; 4 ];
  let alarms =
    Hashtbl.fold (fun _ d acc -> acc + Moas.Detector.alarm_count d) detectors 0
  in
  Alcotest.(check bool) "conflicts were reported" true (alarms > 0)

let () =
  Alcotest.run "failures"
    [
      ( "router sessions",
        [
          Alcotest.test_case "peer_down flushes" `Quick test_peer_down_flushes;
          Alcotest.test_case "peer_up re-advertises" `Quick test_peer_up_readvertises;
        ] );
      ( "network links",
        [
          Alcotest.test_case "failure loses reachability" `Quick
            test_fail_link_loses_reachability;
          Alcotest.test_case "restore recovers" `Quick test_restore_link_recovers;
          Alcotest.test_case "failure reroutes" `Quick test_fail_link_reroutes;
          Alcotest.test_case "unknown link rejected" `Quick
            test_fail_unknown_link_rejected;
        ] );
      ( "failure + attack",
        [
          Alcotest.test_case "partition defeats detection" `Quick
            test_attack_during_partition;
          Alcotest.test_case "recovery exposes the conflict" `Quick
            test_recovery_exposes_conflict;
        ] );
    ]
