(* Tests for the related-work baselines (S-BGP-style origin/path
   authentication and IRR filtering) and the head-to-head comparison. *)

open Net
module OA = Baselines.Origin_auth
module Irr = Baselines.Irr_filter
module Cmp = Baselines.Comparison

let victim = Testutil.victim

let valid_route = Testutil.route ~from:2 [ 2; 10 ]
let forged_route = Testutil.route ~from:3 [ 666 ]

let impersonated_route =
  Testutil.route
    ~communities:(Bgp.Community.Set.singleton Attack.Attacker.impersonation_marker)
    ~from:3 [ 3; 10 ]

let test_origin_auth_blocks_false_origin () =
  let pki = OA.create () in
  OA.register pki victim (Asn.Set.singleton (Asn.make 10));
  let v = OA.validator pki ~self:(Asn.make 1) in
  let kept = v ~now:0.0 ~prefix:victim [ valid_route; forged_route ] in
  Alcotest.(check int) "forged origin rejected" 1 (List.length kept);
  Alcotest.(check int) "every route was verified" 2 (OA.verifications pki)

let test_origin_auth_blocks_impersonation () =
  let pki = OA.create () in
  OA.register pki victim (Asn.Set.singleton (Asn.make 10));
  let v = OA.validator pki ~self:(Asn.make 1) in
  (* the impersonated route claims the right origin but its signatures
     (marker) do not verify *)
  let kept = v ~now:0.0 ~prefix:victim [ valid_route; impersonated_route ] in
  Alcotest.(check int) "impersonation rejected with intact keys" 1
    (List.length kept)

let test_origin_auth_compromised_key () =
  let pki = OA.create ~compromised_keys:(Asn.Set.singleton (Asn.make 10)) () in
  OA.register pki victim (Asn.Set.singleton (Asn.make 10));
  let v = OA.validator pki ~self:(Asn.make 1) in
  let kept = v ~now:0.0 ~prefix:victim [ valid_route; impersonated_route ] in
  Alcotest.(check int) "forgery verifies with a stolen key" 2 (List.length kept)

let test_origin_auth_fails_open_without_attestation () =
  let pki = OA.create () in
  let v = OA.validator pki ~self:(Asn.make 1) in
  Alcotest.(check int) "unknown prefix passes" 2
    (List.length (v ~now:0.0 ~prefix:victim [ valid_route; forged_route ]))

let test_irr_records () =
  let r = Irr.create () in
  Irr.register r victim (Asn.make 10);
  Alcotest.(check bool) "record found" true (Irr.holds r victim (Asn.make 10));
  Alcotest.(check bool) "other origin absent" false (Irr.holds r victim (Asn.make 11));
  Irr.register_set r victim (Asn.Set.of_list [ 11; 12 ]);
  Alcotest.(check int) "three records" 3 (Irr.record_count r);
  Irr.drop_records (Mutil.Rng.of_int 1) r ~staleness:1.0;
  Alcotest.(check int) "all dropped at staleness 1" 0 (Irr.record_count r)

let test_irr_policy_filters_customers_only () =
  (* star: provider 10 with customers 1..4 (degree heuristic) *)
  let g = Topology.As_graph.of_edges [ (1, 10); (2, 10); (3, 10); (4, 10) ] in
  let rels = Topology.Relationships.infer_by_degree g in
  let registry = Irr.create () in
  Irr.register registry victim (Asn.make 1);
  let policy = Irr.policy registry ~relationships:rels ~self:(Asn.make 10) in
  (* a registered customer announcement passes *)
  Alcotest.(check bool) "registered customer passes" true
    (policy.Bgp.Policy.import ~peer:(Asn.make 1) (Testutil.route ~from:1 [ 1 ])
    <> None);
  (* an unregistered customer announcement is filtered *)
  Alcotest.(check bool) "unregistered customer filtered" true
    (policy.Bgp.Policy.import ~peer:(Asn.make 2) (Testutil.route ~from:2 [ 2 ])
    = None);
  (* the customer's view of the provider: routes FROM providers pass *)
  let customer_policy = Irr.policy registry ~relationships:rels ~self:(Asn.make 1) in
  Alcotest.(check bool) "provider routes pass unfiltered" true
    (customer_policy.Bgp.Policy.import ~peer:(Asn.make 10)
       (Testutil.route ~from:10 [ 10; 666 ])
    <> None)

let test_head_to_head_story () =
  let t = Topology.Paper_topologies.topology_46 () in
  let results = Cmp.head_to_head ~runs:4 ~topology:t () in
  let find defense attack =
    List.find
      (fun r ->
        Cmp.defense_to_string r.Cmp.defense = Cmp.defense_to_string defense
        && r.Cmp.attack = attack)
      results
  in
  let adoption d a = (find d a).Cmp.mean_adopting in
  (* the paper's mechanism crushes the false-origin attack *)
  Alcotest.(check bool) "MOAS << normal on false origin" true
    (adoption Cmp.Moas_full Cmp.False_origin
    < adoption Cmp.No_defense Cmp.False_origin /. 5.0);
  (* intact-key S-BGP blocks everything *)
  Alcotest.(check (float 0.0)) "S-BGP blocks false origin" 0.0
    (adoption (Cmp.Sbgp Asn.Set.empty) Cmp.False_origin);
  Alcotest.(check (float 0.0)) "S-BGP blocks impersonation" 0.0
    (adoption (Cmp.Sbgp Asn.Set.empty) Cmp.Impersonation);
  (* ... but one compromised key lets path forgery straight through *)
  Alcotest.(check bool) "compromised key defeats S-BGP" true
    (adoption (Cmp.Sbgp (Asn.Set.singleton (Asn.make 1))) Cmp.Impersonation
    > 0.1);
  (* MOAS admits it cannot catch path forgery (Section 4.3) *)
  Alcotest.(check (float 1e-9)) "path forgery invisible to MOAS"
    (adoption Cmp.No_defense Cmp.Impersonation)
    (adoption Cmp.Moas_full Cmp.Impersonation);
  (* IRR filtering helps but only partially *)
  Alcotest.(check bool) "IRR in between" true
    (adoption (Cmp.Irr 0.0) Cmp.False_origin
     < adoption Cmp.No_defense Cmp.False_origin
    && adoption (Cmp.Irr 0.0) Cmp.False_origin
       > adoption Cmp.Moas_full Cmp.False_origin)

let test_sbgp_fails_closed () =
  (* nodes cut off by attackers are routeless under S-BGP (fail closed) but
     adopt the bogus route under MOAS (fail open): same nodes, dual fate *)
  let t = Topology.Paper_topologies.topology_46 () in
  let results = Cmp.head_to_head ~runs:4 ~topology:t () in
  let sbgp =
    List.find
      (fun r ->
        r.Cmp.defense = Cmp.Sbgp Asn.Set.empty && r.Cmp.attack = Cmp.False_origin)
      results
  in
  let moas =
    List.find
      (fun r -> r.Cmp.defense = Cmp.Moas_full && r.Cmp.attack = Cmp.False_origin)
      results
  in
  Alcotest.(check bool) "S-BGP trades adoption for reachability loss" true
    (sbgp.Cmp.mean_valid_loss >= moas.Cmp.mean_adopting -. 1e-9)

let test_detection_latency_metric () =
  let t = Topology.Paper_topologies.topology_46 () in
  let rng = Mutil.Rng.of_int 77 in
  let scenario =
    Attack.Scenario.random rng ~graph:t.Topology.Paper_topologies.graph
      ~stub:t.Topology.Paper_topologies.stub ~n_origins:1 ~n_attackers:3
      ~deployment:Moas.Deployment.Full
  in
  let o = Testutil.run_scenario scenario in
  (match o.Attack.Scenario.detection_latency with
  | Some latency ->
    (* the first alarm fires within a couple of hops of the attack *)
    Alcotest.(check bool)
      (Printf.sprintf "latency positive and small (%.2f)" latency)
      true
      (latency > 0.0 && latency < 10.0)
  | None -> Alcotest.fail "expected a detection latency");
  Alcotest.(check bool) "convergence time after attack" true
    (o.Attack.Scenario.converged_at >= scenario.Attack.Scenario.attack_at)

let () =
  Alcotest.run "baselines"
    [
      ( "origin_auth",
        [
          Alcotest.test_case "blocks false origin" `Quick
            test_origin_auth_blocks_false_origin;
          Alcotest.test_case "blocks impersonation" `Quick
            test_origin_auth_blocks_impersonation;
          Alcotest.test_case "compromised key" `Quick test_origin_auth_compromised_key;
          Alcotest.test_case "fails open without record" `Quick
            test_origin_auth_fails_open_without_attestation;
        ] );
      ( "irr_filter",
        [
          Alcotest.test_case "records" `Quick test_irr_records;
          Alcotest.test_case "customer filtering" `Quick
            test_irr_policy_filters_customers_only;
        ] );
      ( "comparison",
        [
          Alcotest.test_case "head-to-head story" `Slow test_head_to_head_story;
          Alcotest.test_case "fail-closed vs fail-open" `Slow test_sbgp_fails_closed;
        ] );
      ( "latency",
        [ Alcotest.test_case "detection latency" `Quick test_detection_latency_metric ] );
    ]
