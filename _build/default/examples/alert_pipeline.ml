(* The full operational pipeline on one screen: detectors on every router
   feed a central alert service; a hijack opens an incident, corroborating
   routers escalate it, and the incident resolves when the operator fixes
   the fault (the attacker withdraws).

   Run with: dune exec examples/alert_pipeline.exe *)

open Net
module Svc = Moas.Alert_service

let prefix = Prefix.of_string "192.0.2.0/24"

let () =
  let topology = Topology.Paper_topologies.topology_63 () in
  let graph = topology.Topology.Paper_topologies.graph in
  Printf.printf "topology: %s\n\n" (Topology.Paper_topologies.describe topology);
  let service = Svc.create ~escalation_observers:2 () in
  let oracle = Moas.Origin_verification.create () in
  let origin = Asn.Set.min_elt topology.Topology.Paper_topologies.stub in
  let attacker = Asn.Set.max_elt topology.Topology.Paper_topologies.transit in
  Moas.Origin_verification.register oracle prefix (Asn.Set.singleton origin);
  let validator_of asn =
    if Asn.equal asn attacker then None
    else
      Some
        (Moas.Detector.validator
           (Moas.Detector.create ~backend:(Moas.Detector.Oracle oracle)
              ~on_alarm:(Svc.ingest service) ~self:asn ()))
  in
  let network =
    Bgp.Network.make
      ~config:Bgp.Network.Config.(default |> with_validator_of validator_of)
      graph
  in

  Printf.printf "t=0     %s announces %s\n" (Asn.to_string origin)
    (Prefix.to_string prefix);
  Bgp.Network.originate ~at:0.0 network origin prefix;

  Printf.printf "t=100   %s (a transit AS!) falsely originates the prefix\n"
    (Asn.to_string attacker);
  Bgp.Network.originate ~at:100.0 network attacker prefix;

  Printf.printf "t=400   the operator fixes the misconfiguration (withdrawal)\n\n";
  Bgp.Network.withdraw ~at:400.0 network attacker prefix;
  ignore (Bgp.Network.run network);

  print_endline "notification log:";
  List.iter
    (fun n ->
      let what =
        match n.Svc.event with
        | `Opened -> "incident OPENED"
        | `Escalated severity ->
          "escalated to " ^ String.uppercase_ascii (Svc.severity_to_string severity)
        | `Resolved -> "RESOLVED"
      in
      Printf.printf "  t=%-7.2f #%d %s\n" n.Svc.at n.Svc.incident_id what)
    (Svc.notifications service);

  (* the conflict went quiet after the withdrawal: close the incident *)
  ignore (Svc.resolve_quiet service ~now:1000.0 ~idle_for:300.0);
  print_endline "";
  (match Svc.all_incidents service with
  | [ incident ] ->
    Printf.printf
      "incident #%d summary: %d alarms from %d ASes, origins implicated %s\n"
      incident.Svc.id incident.Svc.alarm_count
      (Asn.Set.cardinal incident.Svc.observers)
      (Moas.Moas_list.to_string incident.Svc.origins_implicated)
  | _ -> print_endline "unexpected incident count");
  Printf.printf "service state: %s\n" (Svc.summary service);

  (* the routing system itself healed the moment detection kicked in *)
  let victims =
    Topology.As_graph.fold_nodes
      (fun asn n ->
        match Bgp.Network.best_origin network asn prefix with
        | Some o when Asn.equal o origin -> n
        | _ -> n + 1)
      graph 0
  in
  Printf.printf
    "after the withdrawal the network healed: %d AS(es) remain off the valid \
     route\n"
    victims
