(* Partial deployment (paper Experiment 3): only half of the ASes can
   process MOAS lists, yet they shield much of the rest of the network by
   refusing to propagate routes whose origin failed verification.

   Run with: dune exec examples/partial_deployment.exe *)

open Net
module Rng = Mutil.Rng

let prefix = Prefix.of_string "192.0.2.0/24"

let run ~deployment ~label topology attackers origins seed =
  let scenario =
    Attack.Scenario.make ~deployment
      ~graph:topology.Topology.Paper_topologies.graph ~victim_prefix:prefix
      ~legit_origins:origins ~attackers ()
  in
  let outcome = Attack.Scenario.run (Rng.of_int seed) scenario in
  Printf.printf "  %-22s adoption %6.2f%%  (capable ASes: %d)\n" label
    (100.0 *. outcome.Attack.Scenario.fraction_adopting)
    (Asn.Set.cardinal outcome.Attack.Scenario.capable);
  outcome

let () =
  let topology = Topology.Paper_topologies.topology_63 () in
  Printf.printf "topology: %s\n" (Topology.Paper_topologies.describe topology);
  let rng = Rng.of_int 2002 in
  let stubs =
    Array.of_list (Asn.Set.elements topology.Topology.Paper_topologies.stub)
  in
  let origins = [ Rng.pick rng stubs ] in
  let pool =
    Asn.Set.elements
      (Asn.Set.diff
         (Topology.As_graph.nodes topology.Topology.Paper_topologies.graph)
         (Asn.Set.of_list origins))
    |> Array.of_list
  in
  (* 30% of the network is compromised *)
  let attackers =
    Rng.sample rng pool 19 |> Array.to_list
    |> List.map (fun asn -> Attack.Attacker.make asn)
  in
  Printf.printf "origin: %s; attackers: %d ASes (30%%)\n\n"
    (Asn.to_string (List.hd origins))
    (List.length attackers);
  let normal =
    run ~deployment:Moas.Deployment.Disabled ~label:"Normal BGP" topology
      attackers origins 1
  in
  let half =
    run ~deployment:(Moas.Deployment.Fraction 0.5) ~label:"Half deployment"
      topology attackers origins 1
  in
  let full =
    run ~deployment:Moas.Deployment.Full ~label:"Full deployment" topology
      attackers origins 1
  in
  print_newline ();
  (* how many of the protected ASes are NOT themselves capable? those were
     shielded by their upstreams, the paper's incremental-benefit argument *)
  let saved =
    Asn.Set.diff normal.Attack.Scenario.adopters half.Attack.Scenario.adopters
  in
  let saved_noncapable =
    Asn.Set.diff saved half.Attack.Scenario.capable
  in
  Printf.printf
    "half deployment saved %d ASes from the false route; %d of them cannot\n\
     check MOAS lists themselves - they were protected by capable upstreams\n"
    (Asn.Set.cardinal saved)
    (Asn.Set.cardinal saved_noncapable);
  Printf.printf
    "reduction vs normal BGP: %.0f%% (half) / %.0f%% (full)\n"
    (100.
    *. (1.
       -. (half.Attack.Scenario.fraction_adopting
          /. max 1e-9 normal.Attack.Scenario.fraction_adopting)))
    (100.
    *. (1.
       -. (full.Attack.Scenario.fraction_adopting
          /. max 1e-9 normal.Attack.Scenario.fraction_adopting)))
