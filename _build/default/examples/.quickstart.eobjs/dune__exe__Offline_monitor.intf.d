examples/offline_monitor.mli:
