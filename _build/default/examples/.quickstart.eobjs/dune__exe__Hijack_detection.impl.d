examples/hijack_detection.ml: Asn Attack Experiments Moas Mutil Net Prefix Printf Topology
