examples/quickstart.ml: Asn Bgp List Moas Net Prefix Printf Topology
