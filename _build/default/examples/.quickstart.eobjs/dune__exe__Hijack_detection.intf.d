examples/hijack_detection.mli:
