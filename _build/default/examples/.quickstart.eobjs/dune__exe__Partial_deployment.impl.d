examples/partial_deployment.ml: Array Asn Attack List Moas Mutil Net Prefix Printf Topology
