examples/offline_monitor.ml: Array Asn Bgp List Moas Mutil Net Prefix Printf String Topology
