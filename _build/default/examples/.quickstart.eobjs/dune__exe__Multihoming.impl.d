examples/multihoming.ml: Asn Bgp Hashtbl List Moas Net Prefix Printf Topology
