examples/multihoming.mli:
