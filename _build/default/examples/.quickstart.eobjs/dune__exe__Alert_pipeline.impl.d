examples/alert_pipeline.ml: Asn Bgp List Moas Net Prefix Printf String Topology
