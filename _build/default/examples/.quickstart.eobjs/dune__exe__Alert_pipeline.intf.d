examples/alert_pipeline.mli:
