examples/quickstart.mli:
