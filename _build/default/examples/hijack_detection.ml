(* The paper's Figure 6/7 scenario plus the Section 4.3 limitations, end to
   end on the derived 46-AS topology.

   1. A prefix is legitimately originated by AS 1 and AS 2, both attaching
      the MOAS list {1, 2}.
   2. A compromised AS Z originates the same prefix with the forged list
      {1, 2, Z}.  Every checker that also holds a valid route sees the
      set inequality {1,2} != {1,2,Z} and raises an alarm; the MOASRR
      lookup then discards Z's route.
   3. Limitations: an attacker that announces a LONGER prefix is not
      detected (different NLRI, no MOAS conflict) - reproduced as a
      negative result.

   Run with: dune exec examples/hijack_detection.exe *)

open Net

let prefix = Prefix.of_string "192.0.2.0/24"

let () =
  let topology = Topology.Paper_topologies.topology_46 () in
  let graph = topology.Topology.Paper_topologies.graph in
  let stubs = Asn.Set.elements topology.Topology.Paper_topologies.stub in
  let origin1, origin2, attacker =
    match stubs with
    | a :: b :: _ ->
      (a, b, Asn.Set.max_elt topology.Topology.Paper_topologies.transit)
    | _ -> failwith "unexpected: too few stubs"
  in
  Printf.printf "topology: %s\n" (Topology.Paper_topologies.describe topology);
  Printf.printf "legitimate origins: %s, %s; attacker: %s\n\n"
    (Asn.to_string origin1) (Asn.to_string origin2) (Asn.to_string attacker);

  let scenario =
    Attack.Scenario.make ~deployment:Moas.Deployment.Full ~graph
      ~victim_prefix:prefix ~legit_origins:[ origin1; origin2 ]
      ~attackers:[ Attack.Attacker.make attacker ]
      ()
  in
  let outcome = Attack.Scenario.run (Mutil.Rng.of_int 7) scenario in
  Printf.printf "with full MOAS detection:\n";
  Printf.printf "  ASes adopting the forged route: %d of %d (%.2f%%)\n"
    (Asn.Set.cardinal outcome.Attack.Scenario.adopters)
    outcome.Attack.Scenario.eligible
    (100.0 *. outcome.Attack.Scenario.fraction_adopting);
  Printf.printf "  alarms raised at %d ASes; %d MOASRR lookups\n"
    (Asn.Set.cardinal outcome.Attack.Scenario.alarming_ases)
    outcome.Attack.Scenario.oracle_queries;

  let baseline =
    Attack.Scenario.run (Mutil.Rng.of_int 7)
      (Attack.Scenario.make ~deployment:Moas.Deployment.Disabled ~graph
         ~victim_prefix:prefix ~legit_origins:[ origin1; origin2 ]
         ~attackers:[ Attack.Attacker.make attacker ]
         ())
  in
  Printf.printf "without detection (normal BGP): %.2f%% adopt the forged route\n\n"
    (100.0 *. baseline.Attack.Scenario.fraction_adopting);

  print_endline "--- limitation 1: attacker hides the list entirely ---";
  let no_list =
    Attack.Scenario.run (Mutil.Rng.of_int 7)
      (Attack.Scenario.make ~deployment:Moas.Deployment.Full ~graph
         ~victim_prefix:prefix ~legit_origins:[ origin1; origin2 ]
         ~attackers:[ Attack.Attacker.make ~forgery:Attack.Attacker.No_list attacker ]
         ())
  in
  Printf.printf
    "  bare announcement counts as {origin} (footnote 3): adoption %.2f%%, \
     detected=%b\n"
    (100.0 *. no_list.Attack.Scenario.fraction_adopting)
    no_list.Attack.Scenario.detected;

  print_endline "--- limitation 2: sub-prefix hijack is NOT caught (Section 4.3) ---";
  let sub =
    Experiments.Ablation.subprefix_hijack ~topology ()
  in
  Printf.printf
    "  attacker announces a /25 inside the victim /24: MOAS alarms = %d, yet \
     %.1f%% of ASes forward the victim host to the attacker\n"
    sub.Experiments.Ablation.moas_alarms
    (100.0 *. sub.Experiments.Ablation.hijacked_fraction);
  print_endline
    "  -> longest-prefix-match wins without any MOAS conflict; the paper\n\
    \     explicitly leaves this attack to future work"
