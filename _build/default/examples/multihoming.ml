(* Valid MOAS through multi-homing (paper Section 3.2, Figure 2).

   An organisation's prefix is announced by AS 4 (its own BGP session) and
   by AS 226 (static-route configuration at the second ISP, so the ISP
   announces the prefix as its own).  Both attach the same MOAS list
   {4, 226}: every checker in the network sees consistent lists and no
   alarm fires, even though two different origin ASes announce the prefix.

   The second half shows AS-number substitution on egress (ASE): an
   organisation using private AS 64600 peers with two ISPs that strip the
   private AS number, making both ISPs appear as origins.

   Run with: dune exec examples/multihoming.exe *)

open Net

let prefix = Prefix.of_string "10.2.0.0/16"

let as4 = Asn.make 4
let as226 = Asn.make 226
let as_y = Asn.make 7
let as_z = Asn.make 9
let as_x = Asn.make 11

let graph =
  Topology.As_graph.of_edges
    [ (as4, as_y); (as226, as_z); (as_y, as_x); (as_z, as_x); (as_y, as_z) ]

(* helper to print the MOAS list carried by a route *)
module Moas_list_string = struct
  let of_route ~self route =
    Moas.Moas_list.to_string (Moas.Moas_list.effective ~self route)
end

let detectors = Hashtbl.create 8

let network_with_full_detection ?oracle graph =
  Hashtbl.reset detectors;
  let backend =
    match oracle with
    | Some oracle -> Moas.Detector.Oracle oracle
    | None -> Moas.Detector.Detect_only
  in
  let validator_of asn =
    let detector = Moas.Detector.create ~backend ~self:asn () in
    Hashtbl.replace detectors asn detector;
    Some (Moas.Detector.validator detector)
  in
  Bgp.Network.make
    ~config:Bgp.Network.Config.(default |> with_validator_of validator_of)
    graph

let total_alarms () =
  Hashtbl.fold (fun _ d acc -> acc + Moas.Detector.alarm_count d) detectors 0

let () =
  print_endline "=== Valid MOAS: multi-homing via static configuration ===";
  let moas_list = Asn.Set.of_list [ as4; as226 ] in
  let communities = Moas.Moas_list.encode moas_list in
  let net = network_with_full_detection graph in
  (* both entitled origins attach the identical MOAS list *)
  Bgp.Network.originate ~communities net as4 prefix;
  Bgp.Network.originate ~communities net as226 prefix;
  ignore (Bgp.Network.run net);
  List.iter
    (fun asn ->
      match Bgp.Network.best_route net asn prefix with
      | Some route ->
        Printf.printf "  %-6s -> origin %s, MOAS list %s\n" (Asn.to_string asn)
          (Asn.to_string (Bgp.Route.origin_as ~self:asn route))
          (Moas_list_string.of_route ~self:asn route)
      | None -> Printf.printf "  %-6s has no route\n" (Asn.to_string asn))
    [ as_x; as_y; as_z ];
  Printf.printf "  alarms raised: %d (a valid MOAS is not a fault)\n\n"
    (total_alarms ());

  print_endline "=== Valid MOAS: private-AS substitution on egress (ASE) ===";
  (* The organisation's private AS 64600 is invisible to BGP: both ISPs
     (AS 4 and AS 226) originate the prefix themselves.  The MOAS list
     names the two ISPs. *)
  let org_prefix = Prefix.of_string "10.9.0.0/16" in
  Printf.printf "  private AS 64600 is private? %b\n" (Asn.is_private (Asn.make 64600));
  let net = network_with_full_detection graph in
  let ase_list = Asn.Set.of_list [ as4; as226 ] in
  let communities = Moas.Moas_list.encode ase_list in
  Bgp.Network.originate ~communities net as4 org_prefix;
  Bgp.Network.originate ~communities net as226 org_prefix;
  ignore (Bgp.Network.run net);
  Printf.printf "  AS X sees origin %s; alarms: %d\n"
    (match Bgp.Network.best_origin net as_x org_prefix with
    | Some o -> Asn.to_string o
    | None -> "none")
    (total_alarms ());

  print_endline "";
  print_endline "=== Contrast: the same two origins WITHOUT a MOAS list ===";
  let net = network_with_full_detection graph in
  Bgp.Network.originate net as4 prefix;
  Bgp.Network.originate net as226 prefix;
  ignore (Bgp.Network.run net);
  Printf.printf
    "  alarms raised: %d (bare multi-origin announcements are indistinguishable\n\
    \  from a fault - exactly why the MOAS list is needed)\n"
    (total_alarms ())
