(** Priority queue of timestamped events, the heart of the discrete-event
    engine.  Ties on the timestamp are broken by insertion order, which
    makes every simulation fully deterministic. *)

type 'a t
(** A mutable queue of events carrying payloads of type ['a]. *)

val create : unit -> 'a t
(** A fresh empty queue. *)

val is_empty : 'a t -> bool
(** Whether no event is pending. *)

val length : 'a t -> int
(** Number of pending events. *)

val push : 'a t -> time:float -> 'a -> unit
(** Schedule a payload at an absolute time.
    @raise Invalid_argument on a NaN time. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event; [None] when empty.  Among equal
    times, the event pushed first is returned first (FIFO). *)

val peek_time : 'a t -> float option
(** Timestamp of the earliest event without removing it. *)

val clear : 'a t -> unit
(** Drop all pending events. *)
