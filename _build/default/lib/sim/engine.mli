(** Discrete-event simulation engine in the style of SSFnet's scheduler:
    handlers schedule further events; the engine runs events in timestamp
    order until the queue drains (quiescence) or a limit is hit. *)

type t
(** An engine instance with its own clock and event queue. *)

type handler = t -> unit
(** An event is an arbitrary callback; it may schedule more events. *)

val create : unit -> t
(** A fresh engine with the clock at 0. *)

val now : t -> float
(** Current simulation time. *)

val schedule : t -> delay:float -> handler -> unit
(** [schedule t ~delay h] runs [h] at [now t +. delay].
    @raise Invalid_argument on a negative delay. *)

val schedule_at : t -> time:float -> handler -> unit
(** Schedule at an absolute time, which must not be in the past. *)

val pending : t -> int
(** Number of scheduled events not yet executed. *)

val events_executed : t -> int
(** Total number of events executed so far. *)

type outcome =
  | Quiescent  (** The queue drained: the system converged. *)
  | Event_limit_reached  (** Stopped after executing the event budget. *)
  | Time_limit_reached  (** Stopped upon passing the time horizon. *)

val run : ?max_events:int -> ?until:float -> t -> outcome
(** Execute events in order.  [max_events] bounds the number of events
    (default unlimited); [until] is a time horizon: events strictly later
    than it remain queued.  Returns why the run stopped. *)

val reset : t -> unit
(** Clear the queue and rewind the clock to 0. *)
