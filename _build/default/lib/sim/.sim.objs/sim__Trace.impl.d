lib/sim/trace.ml: List
