lib/sim/trace.mli:
