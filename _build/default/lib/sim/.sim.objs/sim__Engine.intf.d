lib/sim/engine.mli:
