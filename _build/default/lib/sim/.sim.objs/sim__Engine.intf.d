lib/sim/engine.mli: Obs
