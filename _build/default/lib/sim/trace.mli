(** Lightweight event tracing.  A trace collects timestamped records that
    tests, the offline monitor, and the examples can replay or assert on. *)

type 'a record = { time : float; event : 'a }
(** A timestamped record. *)

type 'a t
(** A mutable append-only trace. *)

val create : unit -> 'a t
(** A fresh empty trace. *)

val record : 'a t -> time:float -> 'a -> unit
(** Append one record. *)

val to_list : 'a t -> 'a record list
(** Records in the order they were appended. *)

val length : 'a t -> int
(** Number of records. *)

val filter : ('a -> bool) -> 'a t -> 'a record list
(** Records whose event satisfies the predicate, in order. *)

val clear : 'a t -> unit
(** Drop all records. *)
