type t = {
  mutable clock : float;
  mutable executed : int;
  queue : handler Event_queue.t;
}

and handler = t -> unit

let create () = { clock = 0.0; executed = 0; queue = Event_queue.create () }

let now t = t.clock

let schedule t ~delay h =
  if delay < 0.0 || Float.is_nan delay then
    invalid_arg "Engine.schedule: negative delay";
  Event_queue.push t.queue ~time:(t.clock +. delay) h

let schedule_at t ~time h =
  if time < t.clock || Float.is_nan time then
    invalid_arg "Engine.schedule_at: time in the past";
  Event_queue.push t.queue ~time h

let pending t = Event_queue.length t.queue
let events_executed t = t.executed

type outcome = Quiescent | Event_limit_reached | Time_limit_reached

let run ?(max_events = max_int) ?(until = infinity) t =
  let rec loop budget =
    if budget <= 0 then Event_limit_reached
    else
      match Event_queue.peek_time t.queue with
      | None -> Quiescent
      | Some time when time > until -> Time_limit_reached
      | Some _ ->
        (match Event_queue.pop t.queue with
        | None -> Quiescent
        | Some (time, h) ->
          t.clock <- time;
          t.executed <- t.executed + 1;
          h t;
          loop (budget - 1))
  in
  loop max_events

let reset t =
  Event_queue.clear t.queue;
  t.clock <- 0.0;
  t.executed <- 0
