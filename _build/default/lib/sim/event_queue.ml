type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array; (* min-heap on (time, seq); slot 0 unused *)
  mutable size : int;
  mutable next_seq : int;
}

let dummy payload = { time = 0.0; seq = 0; payload }

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty t = t.size = 0
let length t = t.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t entry =
  let cap = Array.length t.heap in
  if t.size + 1 >= cap then begin
    let ncap = max 16 (2 * cap) in
    let nh = Array.make ncap (dummy entry.payload) in
    Array.blit t.heap 0 nh 0 cap;
    t.heap <- nh
  end

let push t ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.size <- t.size + 1;
  let heap = t.heap in
  (* sift up from the new last slot *)
  let rec sift i =
    if i > 1 then begin
      let parent = i / 2 in
      if before entry heap.(parent) then begin
        heap.(i) <- heap.(parent);
        sift parent
      end
      else heap.(i) <- entry
    end
    else heap.(i) <- entry
  in
  sift t.size

let pop t =
  if t.size = 0 then None
  else begin
    let heap = t.heap in
    let top = heap.(1) in
    let last = heap.(t.size) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      (* sift the old last element down from the root *)
      let n = t.size in
      let rec sift i =
        let l = 2 * i and r = (2 * i) + 1 in
        let smallest = ref i in
        let best = ref last in
        if l <= n && before heap.(l) !best then begin
          smallest := l;
          best := heap.(l)
        end;
        if r <= n && before heap.(r) !best then smallest := r;
        if !smallest <> i then begin
          heap.(i) <- heap.(!smallest);
          sift !smallest
        end
        else heap.(i) <- last
      in
      sift 1
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(1).time

let clear t =
  t.size <- 0;
  t.heap <- [||]
