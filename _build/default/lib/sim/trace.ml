type 'a record = { time : float; event : 'a }

type 'a t = { mutable rev_records : 'a record list; mutable count : int }

let create () = { rev_records = []; count = 0 }

let record t ~time event =
  t.rev_records <- { time; event } :: t.rev_records;
  t.count <- t.count + 1

let to_list t = List.rev t.rev_records

let length t = t.count

let filter pred t =
  List.filter (fun r -> pred r.event) (to_list t)

let clear t =
  t.rev_records <- [];
  t.count <- 0
