open Net

type t = {
  import : peer:Asn.t -> Route.t -> Route.t option;
  export : peer:Asn.t -> Route.t -> Route.t option;
}

let default =
  {
    import = (fun ~peer:_ route -> Some route);
    export = (fun ~peer:_ route -> Some route);
  }

let drop_communities_on_export t =
  {
    t with
    export =
      (fun ~peer route ->
        Option.map Route.strip_communities (t.export ~peer route));
  }

let reject_import_when pred t =
  {
    t with
    import =
      (fun ~peer route ->
        if pred ~peer route then None else t.import ~peer route);
  }

let compose_export f t =
  {
    t with
    export =
      (fun ~peer route ->
        match t.export ~peer route with
        | Some route -> f ~peer route
        | None -> None);
  }
