(** BGP AS_PATH attribute: an ordered list of segments, where a segment is
    either an AS_SEQUENCE (ordered traversal) or an AS_SET (unordered, the
    result of route aggregation — the paper's footnote 1). *)

open Net

type segment =
  | Seq of Asn.t list  (** AS_SEQUENCE; most recent AS first *)
  | Set of Asn.Set.t   (** AS_SET from aggregation *)

type t = segment list
(** The path; the head segment is nearest to the speaker, the origin AS is
    at the tail. *)

val empty : t
(** Path of a locally originated route. *)

val of_list : Asn.t list -> t
(** A single AS_SEQUENCE. *)

val prepend : Asn.t -> t -> t
(** [prepend asn p] is the path announced by [asn] after learning [p]:
    [asn] is pushed onto the head sequence (or a new one). *)

val length : t -> int
(** Path length for the decision process: each AS in a sequence counts 1,
    an entire AS_SET counts 1 (RFC 4271 semantics). *)

val contains : t -> Asn.t -> bool
(** Loop detection: whether the AS appears anywhere in the path. *)

val origin_as : t -> Asn.t option
(** The origin: last AS of the final sequence; [None] for an empty path or
    when the path ends in an AS_SET (ambiguous origin after aggregation). *)

val origin_candidates : t -> Asn.Set.t
(** Possible origins: the singleton origin, or the members of the trailing
    AS_SET, or empty for the empty path. *)

val ases : t -> Asn.Set.t
(** Every AS mentioned in the path. *)

val aggregate : t -> t -> t
(** Combine two paths as route aggregation would: the longest common head
    sequence followed by an AS_SET of the remaining ASes. *)

val equal : t -> t -> bool
(** Structural equality. *)

val compare : t -> t -> int
(** Total order (structural). *)

val to_string : t -> string
(** E.g. ["3 2 1"] or ["3 {1,2}"]. *)

val pp : Format.formatter -> t -> unit
(** Pretty printer. *)
