open Net

type payload = Announce of Route.t | Withdraw of Prefix.t

type t = { sender : Asn.t; payload : payload }

let announce ~sender route = { sender; payload = Announce route }

let withdraw ~sender prefix = { sender; payload = Withdraw prefix }

let prefix t =
  match t.payload with
  | Announce r -> r.Route.prefix
  | Withdraw p -> p

let pp fmt t =
  match t.payload with
  | Announce r -> Format.fprintf fmt "%a announces %a" Asn.pp t.sender Route.pp r
  | Withdraw p -> Format.fprintf fmt "%a withdraws %a" Asn.pp t.sender Prefix.pp p
