(** A BGP network: one {!Router} per AS of an {!Topology.As_graph.t},
    connected through the discrete-event engine with per-link message
    latency.  This corresponds to the paper's SSFnet set-up, where each
    simulation node is one AS and each link a BGP peering. *)

open Net

type t
(** A wired network. *)

type link_delay = Asn.t -> Asn.t -> float
(** Message latency of the session between two ASes (called with the
    sender first); must be positive. *)

(** Per-network construction knobs, gathered in one record so that a new
    knob (the obs registry being the first) widens this type rather than
    every construction site.  Build one with {!Config.default} and the
    [with_*] helpers:
    {[
      Network.make
        ~config:Network.Config.(default |> with_mrai_of (fun _ -> 30.0))
        graph
    ]} *)
module Config : sig
  type t = {
    policy_of : Asn.t -> Policy.t;  (** per-AS routing policy *)
    validator_of : Asn.t -> Router.validator option;
        (** per-AS route validator (the MOAS detector hook) *)
    mrai_of : Asn.t -> float;  (** per-AS MRAI, seconds (0 = none) *)
    damping_of : Asn.t -> Router.damping option;
        (** per-AS route-flap damping (None = off) *)
    link_delay : link_delay;  (** per-link message latency *)
    metrics : Obs.Registry.t;
        (** observability registry wired into the engine and every
            router; {!Obs.Registry.noop} collects nothing at zero cost *)
  }

  val default : t
  (** Default policy, no validators, MRAI 0, no damping, the default
      link delay (1.0 plus a small deterministic per-link offset that
      breaks timing symmetry the way heterogeneous links do in reality),
      and the no-op registry. *)

  val with_policy_of : (Asn.t -> Policy.t) -> t -> t
  val with_validator_of : (Asn.t -> Router.validator option) -> t -> t
  val with_mrai_of : (Asn.t -> float) -> t -> t
  val with_damping_of : (Asn.t -> Router.damping option) -> t -> t
  val with_link_delay : link_delay -> t -> t
  val with_metrics : Obs.Registry.t -> t -> t
end

val make : ?config:Config.t -> Topology.As_graph.t -> t
(** Build a router per AS and a session per edge, configured by
    [config] (default {!Config.default}). *)

val create :
  ?policy_of:(Asn.t -> Policy.t) ->
  ?validator_of:(Asn.t -> Router.validator option) ->
  ?mrai_of:(Asn.t -> float) ->
  ?damping_of:(Asn.t -> Router.damping option) ->
  ?link_delay:link_delay ->
  Topology.As_graph.t ->
  t
[@@alert deprecated
    "Network.create's parallel optional arguments are superseded by \
     Network.make with a Network.Config.t; this wrapper will be removed \
     next release."]
(** Deprecated equivalent of {!make}: each optional argument overrides
    the corresponding {!Config.default} field. *)

val engine : t -> Sim.Engine.t
(** The underlying event engine (for custom scheduling). *)

val graph : t -> Topology.As_graph.t
(** The topology the network was built over. *)

val router : t -> Asn.t -> Router.t
(** The router of an AS. @raise Not_found for an unknown AS. *)

val routers : t -> Router.t Asn.Map.t
(** All routers. *)

val originate :
  ?at:float ->
  ?origin:Route.origin_attr ->
  ?local_pref:int ->
  ?communities:Community.Set.t ->
  ?as_path:As_path.t ->
  t ->
  Asn.t ->
  Prefix.t ->
  unit
(** Schedule an origination of [prefix] by the AS at time [at] (default 0).
    [as_path] forges the announced path (see {!Route.originate}). *)

val withdraw : ?at:float -> t -> Asn.t -> Prefix.t -> unit
(** Schedule the AS to stop originating the prefix. *)

val fail_link : ?at:float -> t -> Asn.t -> Asn.t -> unit
(** Schedule a session failure on the peering between two ASes: both ends
    flush the routes learned over it and in-flight messages on the link are
    lost.  @raise Invalid_argument if the ASes do not peer. *)

val restore_link : ?at:float -> t -> Asn.t -> Asn.t -> unit
(** Schedule the re-establishment of a failed session; both ends perform
    the initial table exchange. *)

val link_is_up : t -> Asn.t -> Asn.t -> bool
(** Current state of a peering (true unless failed). *)

val run : ?max_events:int -> t -> Sim.Engine.outcome
(** Run the engine until quiescence (BGP convergence) or the event budget
    (default 10 million, a safety net against protocol oscillation). *)

val best_route : t -> Asn.t -> Prefix.t -> Route.t option
(** The AS's selected route after a run. *)

val best_origin : t -> Asn.t -> Prefix.t -> Asn.t option
(** Origin AS of the selected route. *)

val forward_path : t -> from:Asn.t -> Ipv4.t -> Asn.t list option
(** AS-level packet forwarding: starting at [from], repeatedly follow the
    longest-prefix-match best route's supplier until an AS that originates
    the covering prefix is reached.  Returns the traversed ASes (including
    both ends), or [None] when some hop has no route or forwarding loops —
    this is how hijacked traffic "arrives at the faulty AS and gets
    dropped" (Section 3.3). *)

val delivered_to : t -> from:Asn.t -> Ipv4.t -> Asn.t option
(** Final AS of {!forward_path}: where a packet for the address actually
    lands when sent from [from]. *)

val total_updates_sent : t -> int
(** Sum of UPDATE messages emitted by all routers (message overhead). *)

val total_updates_received : t -> int
(** Sum of UPDATE messages processed by all routers. *)
