open Net

let prefer ~self a b =
  ignore self;
  let by_local_pref = Int.compare b.Route.local_pref a.Route.local_pref in
  if by_local_pref <> 0 then by_local_pref
  else
    let by_length =
      Int.compare (As_path.length a.Route.as_path) (As_path.length b.Route.as_path)
    in
    if by_length <> 0 then by_length
    else
      let by_origin =
        Int.compare (Route.origin_rank a.Route.origin) (Route.origin_rank b.Route.origin)
      in
      if by_origin <> 0 then by_origin
      else Asn.compare a.Route.learned_from b.Route.learned_from

let best ~self = function
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun acc r -> if prefer ~self r acc < 0 then r else acc)
         first rest)

let rank ~self routes = List.sort (prefer ~self) routes

let prefer_attrs a b =
  let by_local_pref = Int.compare b.Route.local_pref a.Route.local_pref in
  if by_local_pref <> 0 then by_local_pref
  else
    let by_length =
      Int.compare (As_path.length a.Route.as_path) (As_path.length b.Route.as_path)
    in
    if by_length <> 0 then by_length
    else
      Int.compare (Route.origin_rank a.Route.origin) (Route.origin_rank b.Route.origin)

let best_with_incumbent ~self ~incumbent candidates =
  let challenger = best ~self candidates in
  match incumbent with
  | Some current when List.exists (Route.equal current) candidates ->
    (match challenger with
    | Some c when prefer_attrs c current < 0 -> Some c
    | Some _ | None -> Some current)
  | Some _ | None -> challenger
