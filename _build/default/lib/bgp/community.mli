(** BGP community attribute values (RFC 1997): four octets, by convention an
    AS number in the first two and an AS-defined value in the last two.
    The MOAS list of the paper is carried as a set of these. *)

open Net

type t = { asn : Asn.t; value : int }
(** One community value.  [value] is the final two octets. *)

val make : Asn.t -> int -> t
(** [make asn value] validates [value] against the 16-bit range.
    @raise Invalid_argument outside [0,65535]. *)

val compare : t -> t -> int
(** Order by AS, then value. *)

val equal : t -> t -> bool
(** Equality. *)

val pp : Format.formatter -> t -> unit
(** Prints ["AS:value"]. *)

val to_string : t -> string
(** ["<asn>:<value>"] in the conventional notation. *)

module Set : Set.S with type elt = t
