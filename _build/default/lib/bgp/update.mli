(** BGP UPDATE messages as exchanged between simulated speakers. *)

open Net

type payload =
  | Announce of Route.t  (** reachability with attributes *)
  | Withdraw of Prefix.t  (** loss of reachability *)

type t = { sender : Asn.t; payload : payload }
(** A message on the wire between two peers. *)

val announce : sender:Asn.t -> Route.t -> t
(** Build an announcement. *)

val withdraw : sender:Asn.t -> Prefix.t -> t
(** Build a withdrawal. *)

val prefix : t -> Prefix.t
(** The prefix the update is about. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering. *)
