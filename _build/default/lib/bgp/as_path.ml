open Net

type segment = Seq of Asn.t list | Set of Asn.Set.t

type t = segment list

let empty = []

let of_list ases = if ases = [] then [] else [ Seq ases ]

let prepend asn = function
  | Seq ases :: rest -> Seq (asn :: ases) :: rest
  | path -> Seq [ asn ] :: path

let segment_length = function
  | Seq ases -> List.length ases
  | Set _ -> 1

let length t = List.fold_left (fun acc s -> acc + segment_length s) 0 t

let contains t asn =
  List.exists
    (function
      | Seq ases -> List.exists (Asn.equal asn) ases
      | Set s -> Asn.Set.mem asn s)
    t

let rec last_segment = function
  | [] -> None
  | [ s ] -> Some s
  | _ :: rest -> last_segment rest

let origin_as t =
  match last_segment t with
  | Some (Seq ases) -> (
    match List.rev ases with
    | origin :: _ -> Some origin
    | [] -> None)
  | Some (Set _) | None -> None

let origin_candidates t =
  match last_segment t with
  | Some (Seq ases) -> (
    match List.rev ases with
    | origin :: _ -> Asn.Set.singleton origin
    | [] -> Asn.Set.empty)
  | Some (Set s) -> s
  | None -> Asn.Set.empty

let ases t =
  List.fold_left
    (fun acc -> function
      | Seq l -> List.fold_left (fun acc a -> Asn.Set.add a acc) acc l
      | Set s -> Asn.Set.union s acc)
    Asn.Set.empty t

let aggregate a b =
  let seq_of t =
    (* flatten for comparison; sets break the common head *)
    match t with
    | Seq ases :: _ -> ases
    | _ -> []
  in
  let rec common xs ys =
    match (xs, ys) with
    | x :: xs', y :: ys' when Asn.equal x y -> x :: common xs' ys'
    | _ -> []
  in
  let head = common (seq_of a) (seq_of b) in
  let rest =
    Asn.Set.diff
      (Asn.Set.union (ases a) (ases b))
      (Asn.Set.of_list head)
  in
  let tail = if Asn.Set.is_empty rest then [] else [ Set rest ] in
  if head = [] then tail else Seq head :: tail

let compare = Stdlib.compare

let equal a b = compare a b = 0

let to_string t =
  let segment_to_string = function
    | Seq ases -> String.concat " " (List.map string_of_int ases)
    | Set s ->
      "{"
      ^ String.concat "," (List.map string_of_int (Asn.Set.elements s))
      ^ "}"
  in
  String.concat " " (List.map segment_to_string t)

let pp fmt t = Format.pp_print_string fmt (to_string t)
