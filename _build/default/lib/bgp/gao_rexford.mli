(** Gao-Rexford routing policies: prefer customer routes over peer routes
    over provider routes, and only export customer-learned (and own) routes
    to peers and providers — the economic policy model of the real
    inter-domain routing system.

    The paper's simulation routes on path length; this module supplies the
    policy-routing alternative used by the ablation that probes how the
    baseline (Normal BGP) damage depends on the routing model. *)

open Net

val local_pref_customer : int
(** LOCAL_PREF assigned to routes learned from customers (highest among
    learned routes; still below the origination default of 100, so a
    speaker always prefers the routes it originates itself). *)

val local_pref_peer : int
(** LOCAL_PREF for routes learned from peers. *)

val local_pref_provider : int
(** LOCAL_PREF for routes learned from providers (lowest). *)

val policy : Topology.Relationships.t -> self:Asn.t -> Policy.t
(** The import/export policy of AS [self] under the given relationship
    assignment:

    - import: stamp LOCAL_PREF according to the sending peer's relationship
      (unknown edges default to the peer preference);
    - export (valley-free): routes learned from customers and locally
      originated routes go to everyone; routes learned from peers or
      providers go to customers only. *)
