(** Import and export policies applied by a BGP speaker around the decision
    process.  Policies are plain functions, so experiments can model
    community-stripping routers (Section 4.3) or arbitrary filters. *)

open Net

type t = {
  import : peer:Asn.t -> Route.t -> Route.t option;
      (** Applied to a route received from [peer]; [None] rejects it. *)
  export : peer:Asn.t -> Route.t -> Route.t option;
      (** Applied before advertising a route to [peer]; [None] filters it. *)
}

val default : t
(** Accept and propagate everything unchanged. *)

val drop_communities_on_export : t -> t
(** A router that strips the optional transitive community attribute from
    every route it re-advertises — the deployment hazard the paper
    discusses in Section 4.3 (it may cause false alarms downstream but must
    never make an invalid MOAS look valid). *)

val reject_import_when : (peer:Asn.t -> Route.t -> bool) -> t -> t
(** Add an import reject predicate in front of an existing policy. *)

val compose_export : (peer:Asn.t -> Route.t -> Route.t option) -> t -> t
(** Chain an extra export transformation after the existing one. *)
