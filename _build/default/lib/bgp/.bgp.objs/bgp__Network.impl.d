lib/bgp/network.ml: As_path Asn Hashtbl List Net Obs Policy Prefix_trie Printf Rib Route Router Sim Topology
