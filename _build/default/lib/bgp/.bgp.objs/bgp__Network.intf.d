lib/bgp/network.mli: As_path Asn Community Ipv4 Net Obs Policy Prefix Route Router Sim Topology
