lib/bgp/gao_rexford.ml: Asn Net Policy Route Topology
