lib/bgp/policy.ml: Asn Net Option Route
