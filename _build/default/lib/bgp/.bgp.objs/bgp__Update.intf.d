lib/bgp/update.mli: Asn Format Net Prefix Route
