lib/bgp/rib.ml: Asn List Net Prefix Prefix_trie Route
