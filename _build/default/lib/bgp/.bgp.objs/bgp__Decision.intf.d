lib/bgp/decision.mli: Asn Net Route
