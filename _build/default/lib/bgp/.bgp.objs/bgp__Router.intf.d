lib/bgp/router.mli: Asn Net Policy Prefix Rib Route Update
