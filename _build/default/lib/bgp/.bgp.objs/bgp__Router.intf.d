lib/bgp/router.mli: Asn Net Obs Policy Prefix Rib Route Update
