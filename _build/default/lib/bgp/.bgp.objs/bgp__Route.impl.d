lib/bgp/route.ml: As_path Asn Community Format List Net Prefix String
