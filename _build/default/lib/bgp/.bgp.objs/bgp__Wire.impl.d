lib/bgp/wire.ml: As_path Asn Buffer Bytes Char Community Ipv4 List Net Prefix Printf Route Update
