lib/bgp/community.ml: Asn Format Int Net Printf Set
