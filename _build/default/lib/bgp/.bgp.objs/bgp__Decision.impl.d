lib/bgp/decision.ml: As_path Asn Int List Net Route
