lib/bgp/rib.mli: Asn Net Prefix Route
