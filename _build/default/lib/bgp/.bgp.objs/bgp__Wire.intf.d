lib/bgp/wire.mli: As_path Asn Community Net Prefix Route Update
