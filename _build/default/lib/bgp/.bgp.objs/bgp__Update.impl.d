lib/bgp/update.ml: Asn Format Net Prefix Route
