lib/bgp/router.ml: As_path Asn Community Decision Float Hashtbl List Net Obs Option Policy Prefix Rib Route Update
