lib/bgp/router.ml: As_path Asn Community Decision Float Hashtbl List Net Option Policy Prefix Rib Route Update
