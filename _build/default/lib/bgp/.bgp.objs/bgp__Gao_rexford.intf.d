lib/bgp/gao_rexford.mli: Asn Net Policy Topology
