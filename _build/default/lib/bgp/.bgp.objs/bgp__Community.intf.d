lib/bgp/community.mli: Asn Format Net Set
