lib/bgp/policy.mli: Asn Net Route
