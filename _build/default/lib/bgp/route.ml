open Net

type origin_attr = Igp | Egp | Incomplete

let origin_rank = function
  | Igp -> 0
  | Egp -> 1
  | Incomplete -> 2

let origin_attr_to_string = function
  | Igp -> "IGP"
  | Egp -> "EGP"
  | Incomplete -> "INCOMPLETE"

type t = {
  prefix : Prefix.t;
  as_path : As_path.t;
  origin : origin_attr;
  learned_from : Asn.t;
  local_pref : int;
  communities : Community.Set.t;
}

let originate ?(origin = Igp) ?(local_pref = 100)
    ?(communities = Community.Set.empty) ?(as_path = As_path.empty) ~self
    prefix =
  { prefix; as_path; origin; learned_from = self; local_pref; communities }

let origin_as ~self t =
  match As_path.origin_as t.as_path with
  | Some asn -> asn
  | None -> self

let received ~from t = { t with learned_from = from }

let advertised_by asn t = { t with as_path = As_path.prepend asn t.as_path }

let with_communities communities t = { t with communities }

let strip_communities t = { t with communities = Community.Set.empty }

let equal a b =
  Prefix.equal a.prefix b.prefix
  && As_path.equal a.as_path b.as_path
  && a.origin = b.origin
  && Asn.equal a.learned_from b.learned_from
  && a.local_pref = b.local_pref
  && Community.Set.equal a.communities b.communities

let pp fmt t =
  Format.fprintf fmt "%a via [%a] from %a lp=%d{%s}" Prefix.pp t.prefix
    As_path.pp t.as_path Asn.pp t.learned_from t.local_pref
    (String.concat ";"
       (List.map Community.to_string (Community.Set.elements t.communities)))

let to_string t = Format.asprintf "%a" pp t
