(** A BGP route: a prefix plus the path attributes it was announced with. *)

open Net

type origin_attr = Igp | Egp | Incomplete
(** The ORIGIN attribute; lower is preferred (IGP < EGP < INCOMPLETE). *)

val origin_rank : origin_attr -> int
(** Numeric rank for the decision process. *)

val origin_attr_to_string : origin_attr -> string
(** ["IGP"], ["EGP"] or ["INCOMPLETE"]. *)

type t = {
  prefix : Prefix.t;
  as_path : As_path.t;
  origin : origin_attr;
  learned_from : Asn.t;
      (** The peer the route was received from; the router's own AS number
          for locally originated routes. *)
  local_pref : int;  (** Higher preferred; default 100. *)
  communities : Community.Set.t;
}

val originate :
  ?origin:origin_attr ->
  ?local_pref:int ->
  ?communities:Community.Set.t ->
  ?as_path:As_path.t ->
  self:Asn.t ->
  Prefix.t ->
  t
(** A locally originated route: empty AS path by default — the origin AS is
    prepended when the route is advertised — and [learned_from = self].
    A non-empty [as_path] models path forgery: the speaker pretends it
    learned the route over the given path (Section 4.3's manipulated-path
    attack). *)

val origin_as : self:Asn.t -> t -> Asn.t
(** The origin AS as receivers see it: the AS-path origin, or [self] for a
    locally originated route (empty path). *)

val received : from:Asn.t -> t -> t
(** Stamp a route as learned from a peer. *)

val advertised_by : Asn.t -> t -> t
(** The route as re-announced by an AS: its number prepended to the path. *)

val with_communities : Community.Set.t -> t -> t
(** Replace the communities. *)

val strip_communities : t -> t
(** Remove all communities, modelling a router that drops the optional
    transitive attribute (the paper's Section 4.3 failure mode). *)

val equal : t -> t -> bool
(** Structural equality on all fields. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering for traces and tests. *)

val to_string : t -> string
(** [Format] of {!pp} as a string. *)
