open Net
module Rel = Topology.Relationships

(* All three tiers sit below the origination default (100): a locally
   originated route always beats anything learned, which is what keeps the
   system safe when several ASes originate the same prefix. *)
let local_pref_customer = 95
let local_pref_peer = 90
let local_pref_provider = 85

let policy rels ~self =
  let relationship_of peer = Rel.view rels ~self ~neighbor:peer in
  let import ~peer route =
    let local_pref =
      match relationship_of peer with
      | Some Rel.Customer -> local_pref_customer
      | Some Rel.Peer | None -> local_pref_peer
      | Some Rel.Provider -> local_pref_provider
    in
    Some { route with Route.local_pref }
  in
  let export ~peer route =
    let learned_from = route.Route.learned_from in
    let originated = Asn.equal learned_from self in
    let from_customer = relationship_of learned_from = Some Rel.Customer in
    let to_customer = relationship_of peer = Some Rel.Customer in
    if originated || from_customer || to_customer then
      (* local_pref is a local notion: reset before it crosses the wire *)
      Some { route with Route.local_pref = 100 }
    else None
  in
  { Policy.import; export }
