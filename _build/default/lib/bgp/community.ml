open Net

type t = { asn : Asn.t; value : int }

let make asn value =
  if value < 0 || value > 0xffff then
    invalid_arg "Community.make: value out of 16-bit range";
  { asn; value }

let compare a b =
  match Asn.compare a.asn b.asn with
  | 0 -> Int.compare a.value b.value
  | c -> c

let equal a b = compare a b = 0

let to_string t = Printf.sprintf "%d:%d" (Asn.to_int t.asn) t.value

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
