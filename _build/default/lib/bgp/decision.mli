(** The BGP decision process, restricted to the attributes the simulation
    uses, with a deterministic final tie-break so that runs are exactly
    reproducible:

    1. highest LOCAL_PREF;
    2. shortest AS path (a locally originated route has length 0 and
       therefore always wins at its origin);
    3. lowest ORIGIN attribute (IGP < EGP < INCOMPLETE);
    4. lowest peer AS number (stands in for the lowest-router-id rule). *)

open Net

val prefer : self:Asn.t -> Route.t -> Route.t -> int
(** [prefer ~self a b] is negative when [a] is preferred over [b], positive
    when [b] wins, 0 only for routes identical under every criterion.
    [self] resolves the tie-break identity of locally originated routes. *)

val best : self:Asn.t -> Route.t list -> Route.t option
(** The most preferred route of a candidate list, [None] for the empty
    list. *)

val rank : self:Asn.t -> Route.t list -> Route.t list
(** Candidates sorted most-preferred first. *)

val prefer_attrs : Route.t -> Route.t -> int
(** Like {!prefer} but comparing only the route attributes (LOCAL_PREF,
    path length, ORIGIN) without the final peer tie-break: 0 means the two
    routes are equally good on paper. *)

val best_with_incumbent :
  self:Asn.t -> incumbent:Route.t option -> Route.t list -> Route.t option
(** Route selection with the oldest-route rule used by deployed BGP
    implementations (and SSFnet): the currently installed best route is
    kept unless a candidate beats it strictly on {!prefer_attrs}.  When the
    incumbent is no longer a candidate, this is plain {!best}.  The rule
    both damps churn and matches the paper's setting, where the valid
    routes converge first and bogus routes must strictly beat them. *)
