(** Small descriptive-statistics toolkit used by the experiment harness and
    the measurement pipeline. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val mean_array : float array -> float
(** Arithmetic mean of an array; 0 for the empty array. *)

val variance : float list -> float
(** Unbiased sample variance (n-1 denominator); 0 for fewer than 2 points. *)

val stddev : float list -> float
(** Square root of {!variance}. *)

val stderr_of_mean : float list -> float
(** Standard error of the mean: stddev / sqrt n. *)

val median : float list -> float
(** Median (average of middle two for even length); 0 for the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100], nearest-rank with linear
    interpolation; 0 for the empty list. *)

val min_max : float list -> float * float
(** Smallest and largest value.  @raise Invalid_argument on empty input. *)

val sum : float list -> float
(** Sum of the list. *)

type histogram = { bucket_edges : float array; counts : int array }
(** A histogram with [n+1] edges delimiting [n] buckets; bucket [i] counts
    values in [[edges.(i), edges.(i+1))], the last bucket being closed. *)

val histogram : edges:float array -> float list -> histogram
(** Build a histogram from explicit bucket edges (strictly increasing).
    Values outside the range are clamped into the first/last bucket. *)

val int_histogram : max_value:int -> int list -> int array
(** [int_histogram ~max_value xs] counts occurrences of each value in
    [0..max_value]; larger values land in the last slot. *)
