type t = {
  mutable state : int64; (* PCG32 state *)
  inc : int64;           (* PCG32 stream selector, always odd *)
}

let multiplier = 6364136223846793005L

(* SplitMix64 finaliser: turns correlated seeds into well-mixed values. *)
let splitmix64 x =
  let open Int64 in
  let z = add x 0x9e3779b97f4a7c15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let make ~state ~inc =
  let t = { state = 0L; inc = Int64.logor (Int64.shift_left inc 1) 1L } in
  t.state <- Int64.add state t.inc;
  (* one warm-up step as in the PCG reference implementation *)
  t.state <- Int64.add (Int64.mul t.state multiplier) t.inc;
  t

let create ~seed =
  let s1 = splitmix64 seed in
  let s2 = splitmix64 s1 in
  make ~state:s1 ~inc:s2

let of_int n = create ~seed:(Int64.of_int n)

let copy t = { state = t.state; inc = t.inc }

let bits32 t =
  let open Int64 in
  let old = t.state in
  t.state <- add (mul old multiplier) t.inc;
  let xorshifted =
    to_int32 (shift_right_logical (logxor (shift_right_logical old 18) old) 27)
  in
  let rot = to_int (shift_right_logical old 59) in
  Int32.logor
    (Int32.shift_right_logical xorshifted rot)
    (Int32.shift_left xorshifted ((-rot) land 31))

let bits64 t =
  let hi = Int64.of_int32 (bits32 t) in
  let lo = Int64.of_int32 (bits32 t) in
  Int64.logor
    (Int64.shift_left hi 32)
    (Int64.logand lo 0xffffffffL)

let split t = create ~seed:(bits64 t)

let split_at t i =
  let mixed = splitmix64 (Int64.logxor t.state (Int64.of_int (0x1234567 + i))) in
  create ~seed:(Int64.add mixed (Int64.of_int i))

let uint32_to_int x = Int32.to_int x land 0xffffffff

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound > 0x40000000 then invalid_arg "Rng.int: bound too large";
  (* rejection sampling over the low bits to avoid modulo bias *)
  let mask =
    let rec grow m = if m >= bound - 1 then m else grow ((m lsl 1) lor 1) in
    grow 1
  in
  let rec draw () =
    let v = uint32_to_int (bits32 t) land mask in
    if v < bound then v else draw ()
  in
  draw ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = uint32_to_int (bits32 t) in
  bound *. (float_of_int v /. 4294967296.0)

let bool t = Int32.logand (bits32 t) 1l = 1l

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t arr k =
  let n = Array.length arr in
  if k < 0 || k > n then invalid_arg "Rng.sample: k out of range";
  let scratch = Array.copy arr in
  (* partial Fisher-Yates: the first k slots are a uniform sample *)
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = scratch.(i) in
    scratch.(i) <- scratch.(j);
    scratch.(j) <- tmp
  done;
  Array.sub scratch 0 k

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p out of (0,1]";
  if p = 1.0 then 0
  else
    let u = max (float t 1.0) 1e-12 in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let poisson t lambda =
  if lambda < 0.0 then invalid_arg "Rng.poisson: negative lambda";
  let limit = exp (-.lambda) in
  let rec loop k prod =
    let prod = prod *. float t 1.0 in
    if prod <= limit then k else loop (k + 1) prod
  in
  if lambda = 0.0 then 0 else loop 0 1.0

let exponential t rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  let u = max (float t 1.0) 1e-12 in
  -.log u /. rate
