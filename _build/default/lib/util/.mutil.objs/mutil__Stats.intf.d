lib/util/stats.mli:
