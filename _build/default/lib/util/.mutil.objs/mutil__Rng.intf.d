lib/util/rng.mli:
