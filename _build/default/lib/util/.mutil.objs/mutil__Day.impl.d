lib/util/day.ml: Printf
