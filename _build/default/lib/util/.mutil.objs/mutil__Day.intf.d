lib/util/day.mli:
