lib/util/csv.mli:
