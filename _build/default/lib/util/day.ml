type t = int

let is_leap_year y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_in_month y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap_year y then 29 else 28
  | _ -> invalid_arg "Day: month out of range"

let days_in_year y = if is_leap_year y then 366 else 365

let of_ymd year month day =
  if year < 1997 then invalid_arg "Day.of_ymd: year before 1997";
  if month < 1 || month > 12 then invalid_arg "Day.of_ymd: month out of range";
  if day < 1 || day > days_in_month year month then
    invalid_arg "Day.of_ymd: day out of range";
  let days_before_year =
    let rec loop y acc = if y >= year then acc else loop (y + 1) (acc + days_in_year y) in
    loop 1997 0
  in
  let days_before_month =
    let rec loop m acc =
      if m >= month then acc else loop (m + 1) (acc + days_in_month year m)
    in
    loop 1 0
  in
  days_before_year + days_before_month + (day - 1)

let to_ymd t =
  if t < 0 then invalid_arg "Day.to_ymd: negative day";
  let rec find_year y rem =
    let dy = days_in_year y in
    if rem < dy then (y, rem) else find_year (y + 1) (rem - dy)
  in
  let year, rem = find_year 1997 t in
  let rec find_month m rem =
    let dm = days_in_month year m in
    if rem < dm then (m, rem) else find_month (m + 1) (rem - dm)
  in
  let month, rem = find_month 1 rem in
  (year, month, rem + 1)

let to_string t =
  let y, m, d = to_ymd t in
  Printf.sprintf "%04d-%02d-%02d" y m d

let to_mm_yy t =
  let y, m, _ = to_ymd t in
  Printf.sprintf "%02d/%02d" m (y mod 100)

let add t n = t + n
let diff a b = a - b

let measurement_start = of_ymd 1997 11 8
let measurement_end = of_ymd 2001 7 18
let measurement_days = measurement_end - measurement_start + 1
