(** Deterministic, splittable pseudo-random number generator.

    Every source of randomness in the reproduction flows through this module
    so that each experiment is reproducible from a single root seed.  The
    generator is a PCG32 stream seeded through a SplitMix64 finaliser; both
    algorithms are small, well-studied, and have excellent statistical
    quality for simulation workloads. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] builds a generator from a 64-bit seed.  Equal seeds give
    equal streams on every platform. *)

val of_int : int -> t
(** [of_int n] is [create ~seed:(Int64.of_int n)]. *)

val copy : t -> t
(** [copy t] is an independent generator that starts at [t]'s current
    state. *)

val split : t -> t
(** [split t] derives a statistically independent child generator and
    advances [t].  Used to give each simulation run its own stream. *)

val split_at : t -> int -> t
(** [split_at t i] derives the [i]-th child of [t] without advancing [t];
    distinct [i] give independent streams.  This keeps run [i]'s randomness
    stable no matter how many other runs are performed. *)

val bits32 : t -> int32
(** Next raw 32 bits of the stream. *)

val bits64 : t -> int64
(** Next raw 64 bits (two 32-bit draws). *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound-1].  [bound] must be positive;
    rejection sampling removes modulo bias. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on [lo, hi] inclusive; requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform on [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [0,1]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> 'a array -> int -> 'a array
(** [sample t arr k] draws [k] distinct elements uniformly without
    replacement.  Requires [0 <= k <= Array.length arr]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success of a
    Bernoulli(p) sequence, for [0 < p <= 1]. *)

val poisson : t -> float -> int
(** [poisson t lambda] draws from a Poisson distribution (Knuth's method;
    intended for small to moderate [lambda]). *)

val exponential : t -> float -> float
(** [exponential t rate] draws from an exponential distribution. *)
