type align = Left | Right | Center

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s
    | Center ->
      let left = (width - n) / 2 in
      String.make left ' ' ^ s ^ String.make (width - n - left) ' '

let render ?align ~header rows =
  let ncols = List.length header in
  List.iteri
    (fun i row ->
      if List.length row <> ncols then
        invalid_arg
          (Printf.sprintf "Text_table.render: row %d has %d cells, expected %d"
             i (List.length row) ncols))
    rows;
  let aligns =
    match align with
    | Some a when List.length a = ncols -> Array.of_list a
    | Some _ -> invalid_arg "Text_table.render: align arity mismatch"
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure header;
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line row =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad aligns.(i) widths.(i) cell);
        Buffer.add_string buf " |")
      row;
    Buffer.add_char buf '\n'
  in
  rule ();
  line header;
  rule ();
  List.iter line rows;
  rule ();
  Buffer.contents buf

let print ?align ~header rows = print_string (render ?align ~header rows)

let float_cell ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v

let percent_cell ?(decimals = 2) v = Printf.sprintf "%.*f%%" decimals (v *. 100.0)
