(** Minimal CSV writer used to persist experiment series for external
    plotting. *)

val escape : string -> string
(** Quote a field if it contains a comma, quote, or newline. *)

val row_to_string : string list -> string
(** One CSV line, without the trailing newline. *)

val to_string : header:string list -> string list list -> string
(** Full CSV document with header. *)

val write_file : path:string -> header:string list -> string list list -> unit
(** Write a CSV document to [path], creating parent-relative files only. *)
