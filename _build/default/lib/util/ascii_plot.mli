(** Terminal line plots, so that every figure of the paper can be eyeballed
    straight from the benchmark harness without external tooling. *)

type series = {
  label : string;
  points : (float * float) list;  (** (x, y) pairs, any order *)
}

val plot :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  title:string ->
  series list ->
  string
(** Render series as an ASCII scatter/line chart.  Each series is drawn with
    its own glyph and listed in a legend.  Default canvas is 72x20. *)

val bar_chart :
  ?width:int ->
  title:string ->
  (string * float) list ->
  string
(** Horizontal bar chart; bar lengths are scaled to the maximum value. *)
