type series = { label : string; points : (float * float) list }

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let bounds all_points =
  match all_points with
  | [] -> (0.0, 1.0, 0.0, 1.0)
  | (x0, y0) :: rest ->
    let xmin, xmax, ymin, ymax =
      List.fold_left
        (fun (xl, xh, yl, yh) (x, y) ->
          (min xl x, max xh x, min yl y, max yh y))
        (x0, x0, y0, y0) rest
    in
    let pad_range lo hi = if hi -. lo < 1e-9 then (lo -. 0.5, hi +. 0.5) else (lo, hi) in
    let xmin, xmax = pad_range xmin xmax in
    let ymin, ymax = pad_range ymin ymax in
    (xmin, xmax, ymin, ymax)

let plot ?(width = 72) ?(height = 20) ?(x_label = "") ?(y_label = "") ~title
    series_list =
  let all = List.concat_map (fun s -> s.points) series_list in
  let xmin, xmax, ymin, ymax = bounds all in
  let canvas = Array.make_matrix height width ' ' in
  let to_col x =
    let f = (x -. xmin) /. (xmax -. xmin) in
    min (width - 1) (max 0 (int_of_float (f *. float_of_int (width - 1))))
  in
  let to_row y =
    let f = (y -. ymin) /. (ymax -. ymin) in
    let r = int_of_float (f *. float_of_int (height - 1)) in
    height - 1 - min (height - 1) (max 0 r)
  in
  List.iteri
    (fun si s ->
      let glyph = glyphs.(si mod Array.length glyphs) in
      (* draw a crude polyline between consecutive points sorted by x *)
      let pts = List.sort (fun (a, _) (b, _) -> compare a b) s.points in
      let draw_segment (x1, y1) (x2, y2) =
        let c1 = to_col x1 and c2 = to_col x2 in
        let steps = max 1 (abs (c2 - c1)) in
        for k = 0 to steps do
          let f = float_of_int k /. float_of_int steps in
          let x = x1 +. (f *. (x2 -. x1)) in
          let y = y1 +. (f *. (y2 -. y1)) in
          canvas.(to_row y).(to_col x) <- glyph
        done
      in
      (match pts with
      | [] -> ()
      | [ (x, y) ] -> canvas.(to_row y).(to_col x) <- glyph
      | first :: rest ->
        ignore
          (List.fold_left
             (fun prev cur ->
               draw_segment prev cur;
               cur)
             first rest)))
    series_list;
  let buf = Buffer.create ((width + 16) * (height + 6)) in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  if y_label <> "" then (
    Buffer.add_string buf ("  y: " ^ y_label);
    Buffer.add_char buf '\n');
  let ylab_top = Printf.sprintf "%10.2f" ymax in
  let ylab_bot = Printf.sprintf "%10.2f" ymin in
  Array.iteri
    (fun r row ->
      let label =
        if r = 0 then ylab_top
        else if r = height - 1 then ylab_bot
        else String.make 10 ' '
      in
      Buffer.add_string buf label;
      Buffer.add_string buf " |";
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    canvas;
  Buffer.add_string buf (String.make 11 ' ');
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%s%.2f%s%.2f" (String.make 12 ' ') xmin
       (String.make (max 1 (width - 16)) ' ')
       xmax);
  Buffer.add_char buf '\n';
  if x_label <> "" then (
    Buffer.add_string buf ("  x: " ^ x_label);
    Buffer.add_char buf '\n');
  List.iteri
    (fun si s ->
      Buffer.add_string buf
        (Printf.sprintf "  %c %s\n" glyphs.(si mod Array.length glyphs) s.label))
    series_list;
  Buffer.contents buf

let bar_chart ?(width = 50) ~title entries =
  let vmax = List.fold_left (fun acc (_, v) -> max acc v) 0.0 entries in
  let lw =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  List.iter
    (fun (label, v) ->
      let n =
        if vmax <= 0.0 then 0
        else int_of_float (v /. vmax *. float_of_int width)
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-*s | %s %.2f\n" lw label (String.make n '#') v))
    entries;
  Buffer.contents buf
