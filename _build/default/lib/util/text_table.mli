(** Plain-text table rendering for experiment and benchmark reports. *)

type align = Left | Right | Center

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] lays out a boxed ASCII table.  Every row must have
    the same arity as [header].  [align] gives per-column alignment and
    defaults to left for the first column and right for the rest. *)

val print : ?align:align list -> header:string list -> string list list -> unit
(** {!render} followed by [print_string]. *)

val float_cell : ?decimals:int -> float -> string
(** Format a float with a fixed number of decimals (default 2). *)

val percent_cell : ?decimals:int -> float -> string
(** Format a fraction in [0,1] as a percentage string such as ["12.34%"]. *)
