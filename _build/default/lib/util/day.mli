(** Calendar-day arithmetic for the measurement pipeline (Figures 4 and 5).

    A day is represented as the number of days since 1997-01-01, which
    predates the paper's measurement window (1997-11-08 .. 2001-07-18). *)

type t = int
(** Days since 1997-01-01 (day 0). *)

val of_ymd : int -> int -> int -> t
(** [of_ymd year month day] converts a Gregorian calendar date.
    @raise Invalid_argument on out-of-range dates or dates before 1997. *)

val to_ymd : t -> int * int * int
(** Inverse of {!of_ymd}. *)

val to_string : t -> string
(** ISO-8601 [YYYY-MM-DD]. *)

val to_mm_yy : t -> string
(** [MM/YY] label as used on the paper's Figure 4 x-axis. *)

val add : t -> int -> t
(** [add d n] is [n] days later. *)

val diff : t -> t -> int
(** [diff a b] is [a - b] in days. *)

val is_leap_year : int -> bool
(** Gregorian leap-year predicate. *)

val measurement_start : t
(** 1997-11-08, first day of the paper's measurement. *)

val measurement_end : t
(** 2001-07-18, last day of the paper's measurement. *)

val measurement_days : int
(** Calendar length of the window inclusive (1349 days).  The paper reports
    a 1279-day measurement over this window: the Oregon collector missed
    roughly 70 daily snapshots, which the synthetic generator reproduces. *)
