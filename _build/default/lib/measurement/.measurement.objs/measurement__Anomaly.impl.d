lib/measurement/anomaly.ml: Array Float List Moas_cases Mutil Printf String
