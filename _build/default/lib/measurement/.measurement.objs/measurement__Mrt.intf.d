lib/measurement/mrt.mli: Asn Bgp Net Prefix
