lib/measurement/synthetic_routeviews.ml: Array Asn Hashtbl Ipv4 List Mutil Net Prefix
