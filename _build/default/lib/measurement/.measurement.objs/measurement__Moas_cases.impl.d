lib/measurement/moas_cases.ml: Asn Hashtbl List Mutil Net Option Prefix
