lib/measurement/report.mli: Moas_cases Mutil Synthetic_routeviews
