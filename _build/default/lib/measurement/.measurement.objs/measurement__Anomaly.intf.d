lib/measurement/anomaly.mli: Moas_cases Mutil
