lib/measurement/moas_cases.mli: Asn Mutil Net Prefix
