lib/measurement/synthetic_routeviews.mli: Asn Mutil Net Prefix
