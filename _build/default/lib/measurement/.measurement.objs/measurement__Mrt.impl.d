lib/measurement/mrt.ml: Asn Bgp Buffer Bytes Char Hashtbl Ipv4 List Net Option Prefix Printf
