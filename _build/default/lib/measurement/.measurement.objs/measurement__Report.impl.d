lib/measurement/report.ml: List Moas_cases Mutil Printf Synthetic_routeviews
