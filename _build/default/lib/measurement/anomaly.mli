(** Automatic fault-event detection on the daily MOAS series.

    The paper identifies its measurement spikes by hand ("the few large
    spikes in Figure 4 match to the well known BGP route faults").  This
    module automates that reading: a day is flagged when its count exceeds
    a robust local baseline (median of a trailing window) by a large
    margin, so the slow multi-homing growth never alarms while the
    1998-04-07 and 2001-04-06 events stand out. *)

type spike = {
  day : Mutil.Day.t;
  count : int;  (** the day's MOAS count *)
  baseline : float;  (** trailing-window median it was compared against *)
  magnitude : float;  (** count / max(baseline, 1) *)
}

val detect :
  ?window:int ->
  ?threshold:float ->
  (Mutil.Day.t * int) list ->
  spike list
(** [detect daily] flags days whose count is at least [threshold] (default
    1.6) times the median of the previous [window] (default 30) observed
    days.  Consecutive flagged days belonging to one event are all
    reported; the first [window] days are never flagged (no baseline
    yet). *)

val spikes_of_summary :
  ?window:int -> ?threshold:float -> Moas_cases.summary -> spike list
(** {!detect} over a summary's daily counts. *)

val render : spike list -> string
(** One line per spike. *)
