open Net
module Day = Mutil.Day

type case_state = {
  moas_days : int;
  max_origins : int;
  first_day : Day.t;
  last_day : Day.t;
  origins_ever : Asn.Set.t;
}

type accum = {
  per_prefix : case_state Prefix.Map.t;
  daily_rev : (Day.t * int) list;
  observed : int;
}

let empty = { per_prefix = Prefix.Map.empty; daily_rev = []; observed = 0 }

let ingest acc ~day table =
  let today_count = ref 0 in
  let per_prefix =
    List.fold_left
      (fun per_prefix (prefix, origins) ->
        if Asn.Set.cardinal origins <= 1 then per_prefix
        else begin
          incr today_count;
          Prefix.Map.update prefix
            (function
              | Some st ->
                Some
                  {
                    moas_days = st.moas_days + 1;
                    max_origins = max st.max_origins (Asn.Set.cardinal origins);
                    first_day = st.first_day;
                    last_day = day;
                    origins_ever = Asn.Set.union st.origins_ever origins;
                  }
              | None ->
                Some
                  {
                    moas_days = 1;
                    max_origins = Asn.Set.cardinal origins;
                    first_day = day;
                    last_day = day;
                    origins_ever = origins;
                  })
            per_prefix
        end)
      acc.per_prefix table
  in
  {
    per_prefix;
    daily_rev = (day, !today_count) :: acc.daily_rev;
    observed = acc.observed + 1;
  }

type case = {
  prefix : Prefix.t;
  moas_days : int;
  max_origins : int;
  first_day : Day.t;
  last_day : Day.t;
  origins_ever : Asn.Set.t;
}

type summary = {
  cases : case list;
  daily_counts : (Day.t * int) list;
  observed_day_count : int;
  total_cases : int;
  one_day_cases : int;
}

let finalize acc =
  let cases =
    Prefix.Map.fold
      (fun prefix (st : case_state) cases ->
        {
          prefix;
          moas_days = st.moas_days;
          max_origins = st.max_origins;
          first_day = st.first_day;
          last_day = st.last_day;
          origins_ever = st.origins_ever;
        }
        :: cases)
      acc.per_prefix []
    |> List.rev
  in
  {
    cases;
    daily_counts = List.rev acc.daily_rev;
    observed_day_count = acc.observed;
    total_cases = List.length cases;
    one_day_cases = List.length (List.filter (fun c -> c.moas_days = 1) cases);
  }

let duration_histogram summary =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun c ->
      Hashtbl.replace tbl c.moas_days
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c.moas_days)))
    summary.cases;
  Hashtbl.fold (fun d n acc -> (d, n) :: acc) tbl [] |> List.sort compare

let duration_buckets summary =
  let buckets =
    [
      ("1 day", fun d -> d = 1);
      ("2 days", fun d -> d = 2);
      ("3-7 days", fun d -> d >= 3 && d <= 7);
      ("8-30 days", fun d -> d >= 8 && d <= 30);
      ("31-90 days", fun d -> d >= 31 && d <= 90);
      ("91-365 days", fun d -> d >= 91 && d <= 365);
      (">365 days", fun d -> d > 365);
    ]
  in
  List.map
    (fun (label, pred) ->
      (label, List.length (List.filter (fun c -> pred c.moas_days) summary.cases)))
    buckets

let origin_multiplicity summary =
  let total = float_of_int (max 1 summary.total_cases) in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun c ->
      Hashtbl.replace tbl c.max_origins
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c.max_origins)))
    summary.cases;
  Hashtbl.fold (fun k n acc -> (k, float_of_int n /. total) :: acc) tbl []
  |> List.sort compare

let median_daily_in_year summary year =
  let in_year =
    List.filter_map
      (fun (day, count) ->
        let y, _, _ = Day.to_ymd day in
        if y = year then Some (float_of_int count) else None)
      summary.daily_counts
  in
  Mutil.Stats.median in_year

let max_daily summary =
  match summary.daily_counts with
  | [] -> invalid_arg "Moas_cases.max_daily: no observed day"
  | first :: rest ->
    List.fold_left
      (fun (bd, bc) (d, c) -> if c > bc then (d, c) else (bd, bc))
      first rest

let cases_on summary day =
  match List.assoc_opt day summary.daily_counts with
  | Some c -> c
  | None -> 0

let one_day_cases_attributed_to summary asn =
  List.length
    (List.filter
       (fun c -> c.moas_days = 1 && Asn.Set.mem asn c.origins_ever)
       summary.cases)
