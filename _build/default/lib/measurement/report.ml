module Day = Mutil.Day
module Plot = Mutil.Ascii_plot
module Table = Mutil.Text_table

let run params =
  Synthetic_routeviews.fold_dumps params ~init:Moas_cases.empty
    ~f:(fun acc dump ->
      Moas_cases.ingest acc ~day:dump.Synthetic_routeviews.day
        dump.Synthetic_routeviews.table)
  |> Moas_cases.finalize

let figure4_series summary =
  {
    Plot.label = "daily MOAS conflicts";
    points =
      List.map
        (fun (day, count) ->
          (float_of_int (Day.diff day Day.measurement_start), float_of_int count))
        summary.Moas_cases.daily_counts;
  }

let figure4_text summary =
  let series = figure4_series summary in
  let max_day, max_count = Moas_cases.max_daily summary in
  Plot.plot ~height:18
    ~title:"Figure 4: number of MOAS conflicts, 11/1997 - 7/2001"
    ~x_label:"days since 1997-11-08" ~y_label:"# of conflicts" [ series ]
  ^ Printf.sprintf "  peak: %d conflicts on %s\n  event days: %s -> %d, %s -> %d\n"
      max_count (Day.to_string max_day)
      (Day.to_string Synthetic_routeviews.event_1998)
      (Moas_cases.cases_on summary Synthetic_routeviews.event_1998)
      (Day.to_string Synthetic_routeviews.event_2001)
      (Moas_cases.cases_on summary Synthetic_routeviews.event_2001)

let figure5_text summary =
  let buckets = Moas_cases.duration_buckets summary in
  Plot.bar_chart ~title:"Figure 5: duration of MOAS cases (days, bucketed)"
    (List.map (fun (label, n) -> (label, float_of_int n)) buckets)

let summary_table summary =
  let total = summary.Moas_cases.total_cases in
  let one_day = summary.Moas_cases.one_day_cases in
  let one_day_frac = float_of_int one_day /. float_of_int (max 1 total) in
  let ev98 =
    Moas_cases.one_day_cases_attributed_to summary
      Synthetic_routeviews.fault_as_1998
  in
  let ev98_frac = float_of_int ev98 /. float_of_int (max 1 one_day) in
  let multiplicity = Moas_cases.origin_multiplicity summary in
  let frac_of n =
    match List.assoc_opt n multiplicity with
    | Some f -> f
    | None -> 0.0
  in
  let rows =
    [
      [ "observed days"; "1279"; string_of_int summary.Moas_cases.observed_day_count ];
      [ "total MOAS cases"; "~3824"; string_of_int total ];
      [ "one-day cases"; "1373 (35.9%)";
        Printf.sprintf "%d (%s)" one_day (Table.percent_cell ~decimals:1 one_day_frac) ];
      [ "one-day cases from 1998-04-07 fault"; "82.7%";
        Table.percent_cell ~decimals:1 ev98_frac ];
      [ "median daily count 1998"; "683";
        Table.float_cell ~decimals:0 (Moas_cases.median_daily_in_year summary 1998) ];
      [ "median daily count 2001"; "1294";
        Table.float_cell ~decimals:0 (Moas_cases.median_daily_in_year summary 2001) ];
      [ "cases involving 2 origin ASes"; "96.14%";
        Table.percent_cell ~decimals:2 (frac_of 2) ];
      [ "cases involving 3 origin ASes"; "2.7%";
        Table.percent_cell ~decimals:2 (frac_of 3) ];
      [ "2001-04-06 fault day count"; "~2260 (incl. base)";
        string_of_int (Moas_cases.cases_on summary Synthetic_routeviews.event_2001) ];
    ]
  in
  Table.render ~header:[ "Section 3 statistic"; "paper"; "measured" ] rows
