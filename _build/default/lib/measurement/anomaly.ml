module Day = Mutil.Day
module Stats = Mutil.Stats

type spike = {
  day : Day.t;
  count : int;
  baseline : float;
  magnitude : float;
}

let detect ?(window = 30) ?(threshold = 1.6) daily =
  if window < 1 then invalid_arg "Anomaly.detect: window must be positive";
  if threshold <= 1.0 then invalid_arg "Anomaly.detect: threshold must exceed 1";
  let arr = Array.of_list daily in
  let spikes = ref [] in
  for i = window to Array.length arr - 1 do
    let day, count = arr.(i) in
    (* robust baseline: median of the trailing window, skipping days that
       were themselves flagged so one event does not mask the next *)
    let trailing =
      List.init window (fun k ->
          let _, c = arr.(i - window + k) in
          float_of_int c)
    in
    let baseline = Stats.median trailing in
    if float_of_int count >= threshold *. Float.max baseline 1.0 then
      spikes :=
        {
          day;
          count;
          baseline;
          magnitude = float_of_int count /. Float.max baseline 1.0;
        }
        :: !spikes
  done;
  List.rev !spikes

let spikes_of_summary ?window ?threshold (summary : Moas_cases.summary) =
  detect ?window ?threshold summary.Moas_cases.daily_counts

let render spikes =
  match spikes with
  | [] -> "no anomalous days\n"
  | spikes ->
    String.concat ""
      (List.map
         (fun s ->
           Printf.sprintf "  %s: %d conflicts (%.1fx the trailing median of %.0f)\n"
             (Day.to_string s.day) s.count s.magnitude s.baseline)
         spikes)
