(** Rendering of the measurement results as the paper's Figures 4 and 5
    plus the Section 3 headline statistics, with paper-reported values next
    to the measured ones. *)

val run : Synthetic_routeviews.params -> Moas_cases.summary
(** Stream the synthetic archive through the analyzer. *)

val figure4_series : Moas_cases.summary -> Mutil.Ascii_plot.series
(** Daily number of MOAS conflicts over the window (Figure 4); x is the
    day offset from the measurement start. *)

val figure4_text : Moas_cases.summary -> string
(** Figure 4 as an ASCII plot with event annotations. *)

val figure5_text : Moas_cases.summary -> string
(** Figure 5: duration histogram (bucketed bar chart plus the head of the
    exact histogram). *)

val summary_table : Moas_cases.summary -> string
(** Paper-vs-measured table for every Section 3 statistic the paper
    reports. *)
