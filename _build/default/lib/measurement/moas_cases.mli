(** MOAS case extraction from daily table dumps — the analysis behind the
    paper's Figures 4 and 5 and the statistics of Section 3.

    A prefix is "in MOAS" on a day when its dump shows more than one origin
    AS.  Following the paper's definition, the duration of a case is the
    {e total number of days} the prefix was in MOAS, regardless of whether
    the days were continuous or involved the same origin set (and, per
    footnote 2, a day means an observed daily dump). *)

open Net

type accum
(** Streaming accumulator over daily dumps. *)

val empty : accum
(** No dumps ingested yet. *)

val ingest : accum -> day:Mutil.Day.t -> (Prefix.t * Asn.Set.t) list -> accum
(** Process one observed daily dump. *)

type case = {
  prefix : Prefix.t;
  moas_days : int;  (** the paper's duration *)
  max_origins : int;  (** largest origin-set size ever observed *)
  first_day : Mutil.Day.t;
  last_day : Mutil.Day.t;
  origins_ever : Asn.Set.t;  (** union of all origin sets over the case *)
}

type summary = {
  cases : case list;  (** one per prefix ever observed in MOAS *)
  daily_counts : (Mutil.Day.t * int) list;  (** Figure 4's series *)
  observed_day_count : int;
  total_cases : int;
  one_day_cases : int;
}

val finalize : accum -> summary
(** Close the stream and compute the summary. *)

val duration_histogram : summary -> (int * int) list
(** (duration in days, number of cases), sorted — Figure 5's data. *)

val duration_buckets : summary -> (string * int) list
(** Coarse buckets (1, 2, 3-7, 8-30, 31-90, 91-365, >365 days) for compact
    reporting. *)

val origin_multiplicity : summary -> (int * float) list
(** (origin-set size, fraction of cases), e.g. [(2, 0.9614)]. *)

val median_daily_in_year : summary -> int -> float
(** Median of the daily MOAS counts over the observed days of a calendar
    year (paper: 683 for 1998, 1294 for 2001). *)

val max_daily : summary -> Mutil.Day.t * int
(** The day with the highest count and its value. *)

val cases_on : summary -> Mutil.Day.t -> int
(** Daily count on a specific day (0 when unobserved). *)

val one_day_cases_attributed_to : summary -> Asn.t -> int
(** Among one-day cases, how many ever involved the given origin AS —
    used for the paper's "82.7% of short-lived cases were the 1998-04-07
    fault" statistic. *)
