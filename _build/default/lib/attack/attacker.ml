open Net

type forgery =
  | Forge_full_list
  | Claim_self_only
  | No_list
  | Impersonate of Asn.t

(* Simulation stand-in for "the route's signatures do not verify": a real
   forged announcement carries invalid attestations that an S-BGP checker
   would reject; the marker transports that fact through the simulation. *)
let impersonation_marker = Bgp.Community.make (Asn.make 65535) 0xfbad

type t = {
  asn : Asn.t;
  forgery : forgery;
  target_override : Prefix.t option;
}

let make ?(forgery = Forge_full_list) ?target_override asn =
  { asn; forgery; target_override }

let communities t ~legit_list =
  match t.forgery with
  | Forge_full_list -> Moas.Moas_list.encode (Asn.Set.add t.asn legit_list)
  | Claim_self_only -> Moas.Moas_list.encode (Asn.Set.singleton t.asn)
  | No_list -> Bgp.Community.Set.empty
  | Impersonate _ ->
    (* the impersonator replays the authentic announcement: identical MOAS
       list, plus the (meta) marker that its signatures are bogus *)
    Bgp.Community.Set.add impersonation_marker
      (Moas.Moas_list.encode legit_list)

let forged_path t =
  match t.forgery with
  | Impersonate victim_origin -> Bgp.As_path.of_list [ victim_origin ]
  | Forge_full_list | Claim_self_only | No_list -> Bgp.As_path.empty

let announced_prefix t ~victim =
  Option.value ~default:victim t.target_override

let forgery_to_string = function
  | Forge_full_list -> "forge valid list + self"
  | Claim_self_only -> "claim self only"
  | No_list -> "no MOAS list"
  | Impersonate asn -> "impersonate " ^ Asn.to_string asn
