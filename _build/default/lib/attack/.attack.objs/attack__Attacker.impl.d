lib/attack/attacker.ml: Asn Bgp Moas Net Option Prefix
