lib/attack/scenario.mli: Asn Attacker Moas Mutil Net Prefix Topology
