lib/attack/scenario.mli: Asn Attacker Moas Mutil Net Obs Prefix Topology
