lib/attack/scenario.ml: Array Asn Attacker Bgp Float Hashtbl List Moas Mutil Net Option Prefix Printf Sim Topology
