lib/attack/scenario.ml: Array Asn Attacker Bgp Counter Float Hashtbl List Moas Mutil Net Obs Option Prefix Printf Sim Topology
