lib/attack/attacker.mli: Asn Bgp Net Prefix
