(** Attacker models (Section 5's fault/attack injection).

    An attacker AS originates a route to a victim prefix it cannot reach.
    Being an otherwise normal BGP speaker, it prefers its own origin route,
    so it also stops re-advertising valid routes — which is how compromised
    ASes "block" correct information in the paper's argument. *)

open Net

type forgery =
  | Forge_full_list
      (** attach the valid MOAS list plus itself — the strongest forgery of
          Section 4.1 (the lists still disagree, which is what detection
          keys on) *)
  | Claim_self_only  (** attach the list [{attacker}] *)
  | No_list  (** announce without any MOAS list *)
  | Impersonate of Asn.t
      (** path forgery (Section 4.3's manipulated AS path): announce with
          the victim's entitled origin at the path tail and a replayed MOAS
          list, which origin checks cannot distinguish from the real
          thing.  Used by the S-BGP comparison baseline. *)

val impersonation_marker : Bgp.Community.t
(** Simulation metadata standing in for "the route's signatures do not
    verify": attached to impersonated announcements so that a
    cryptographic-validation baseline can model rejecting them. *)

type t = {
  asn : Asn.t;  (** the compromised AS *)
  forgery : forgery;
  target_override : Prefix.t option;
      (** [Some q] makes the attacker announce [q] instead of the victim
          prefix — with a longer [q] this is the sub-prefix hijack of
          Section 4.3, which MOAS checking does not catch *)
}

val make : ?forgery:forgery -> ?target_override:Prefix.t -> Asn.t -> t
(** An attacker with the default (strongest) forgery. *)

val communities : t -> legit_list:Asn.Set.t -> Bgp.Community.Set.t
(** The communities the attacker attaches to its bogus announcement. *)

val forged_path : t -> Bgp.As_path.t
(** The AS path the attacker pretends to have (empty except for
    {!Impersonate}). *)

val announced_prefix : t -> victim:Prefix.t -> Prefix.t
(** The prefix the attacker actually announces. *)

val forgery_to_string : forgery -> string
(** Label for reports. *)
