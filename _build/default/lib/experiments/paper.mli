(** Reference values reported by the paper, for side-by-side comparison in
    EXPERIMENTS.md and the benchmark output.  Only numbers stated in the
    text are listed (the figures themselves are not machine-readable). *)

type reference = {
  label : string;  (** what the number describes *)
  paper_value : string;  (** as printed in the paper *)
}

val experiment1 : reference list
(** Section 5.2 (46-AS topology). *)

val experiment2 : reference list
(** Section 5.3 (topology-size comparison). *)

val experiment3 : reference list
(** Section 5.4 (partial deployment). *)

val claims : string list
(** The qualitative claims the reproduction must exhibit. *)
