open Net
module Rng = Mutil.Rng
module Stats = Mutil.Stats
module Topo = Topology.Paper_topologies

type point = {
  feed_count : int;
  detection_rate : float;
  mean_conflicts : float;
}

let victim = Prefix.of_string "192.0.2.0/24"

(* one attacked plain-BGP run; returns the converged network *)
let attacked_network rng (topology : Topo.t) =
  let graph = topology.Topo.graph in
  let stubs = Array.of_list (Asn.Set.elements topology.Topo.stub) in
  let origin = Rng.pick (Rng.split_at rng 0) stubs in
  let pool =
    Asn.Set.elements (Asn.Set.remove origin (Topology.As_graph.nodes graph))
    |> Array.of_list
  in
  let attacker = Rng.pick (Rng.split_at rng 1) pool in
  let network = Bgp.Network.make graph in
  Bgp.Network.originate ~at:0.0
    ~communities:(Moas.Moas_list.encode (Asn.Set.singleton origin))
    network origin victim;
  Bgp.Network.originate ~at:50.0
    ~communities:
      (Moas.Moas_list.encode (Asn.Set.of_list [ Asn.to_int origin; Asn.to_int attacker ]))
    network attacker victim;
  ignore (Bgp.Network.run network);
  network

let table_of network asn =
  List.map snd
    (Bgp.Rib.best_bindings (Bgp.Router.rib (Bgp.Network.router network asn)))

let study ?(seed = 0x56414e54L) ?(runs = 12)
    ?(feed_counts = [ 1; 2; 4; 8; 16 ]) ~topology () =
  let root = Rng.create ~seed in
  let graph = topology.Topo.graph in
  let all_ases = Array.of_list (Asn.Set.elements (Topology.As_graph.nodes graph)) in
  (* the same attacked networks are observed at every feed count *)
  let networks =
    List.init runs (fun i -> attacked_network (Rng.split_at root i) topology)
  in
  List.map
    (fun feed_count ->
      let caught = ref 0 in
      let conflicts = ref [] in
      List.iteri
        (fun run network ->
          let feeds =
            Rng.sample
              (Rng.split_at root (5000 + (run * 100) + feed_count))
              all_ases
              (min feed_count (Array.length all_ases))
          in
          let monitor = Moas.Monitor.create () in
          Array.iter
            (fun feed ->
              Moas.Monitor.observe_table monitor ~time:100.0 ~feed
                (table_of network feed))
            feeds;
          let found = List.length (Moas.Monitor.findings monitor) in
          if found > 0 then begin
            incr caught;
            conflicts := float_of_int found :: !conflicts
          end)
        networks;
      {
        feed_count;
        detection_rate = float_of_int !caught /. float_of_int runs;
        mean_conflicts = Stats.mean !conflicts;
      })
    feed_counts

let render points =
  Mutil.Text_table.render
    ~header:[ "monitor feeds"; "detection rate"; "conflicts per catch" ]
    (List.map
       (fun p ->
         [
           string_of_int p.feed_count;
           Mutil.Text_table.percent_cell ~decimals:0 p.detection_rate;
           Printf.sprintf "%.1f" p.mean_conflicts;
         ])
       points)
