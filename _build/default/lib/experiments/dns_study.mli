(** The circular dependency of DNS-based origin verification, quantified.

    Section 2 criticises the DNS-based proposal of Bates et al. ([3]):
    "given that DNS operations rely on the routing to function correctly,
    requiring BGP to interact with the DNS for correctness checking
    introduces a circular dependency".  Section 4.4 nevertheless proposes
    DNS MOASRR lookups as the origin-identification step.

    This study runs the MOAS detection pipeline with verification performed
    through a real iterative resolver ({!Dnssim.Resolver}) whose queries
    follow the querying AS's own BGP forwarding to reach the authoritative
    servers.  Three conditions:

    - oracle verification (the paper's idealised assumption);
    - DNS verification, attacker hijacks only the victim prefix;
    - DNS verification, attacker ALSO hijacks the authoritative server's
      prefix — the circular-dependency attack: ASes whose resolver traffic
      is captured cannot verify and fail open. *)

type condition = Oracle | Dns | Dns_with_dns_hijack

val condition_to_string : condition -> string
(** Report label. *)

type point = {
  condition : condition;
  mean_adopting : float;  (** fraction of remaining ASes on the bogus route *)
  mean_failed_lookups : float;  (** MOASRR queries that could not complete *)
  mean_dns_queries : float;  (** server contacts across all resolvers *)
}

val study :
  ?seed:int64 ->
  ?runs:int ->
  ?n_attackers:int ->
  topology:Topology.Paper_topologies.t ->
  unit ->
  point list
(** Run all three conditions over shared random scenarios (defaults: 10
    runs, 3 attackers, full deployment). *)

val render : point list -> string
(** Text table with a short interpretation. *)
