type reference = { label : string; paper_value : string }

let experiment1 =
  [
    { label = "46-AS, ~4% attackers, Normal BGP"; paper_value = ">36% adopt" };
    { label = "46-AS, ~4% attackers, Full MOAS"; paper_value = "0.15% adopt" };
    { label = "46-AS, 30% attackers, Normal BGP"; paper_value = "51% adopt" };
    { label = "46-AS, 30% attackers, Full MOAS"; paper_value = "9.8% adopt" };
  ]

let experiment2 =
  [
    {
      label = "63-AS, <20% attackers, Full MOAS";
      paper_value = "only 2.1% adopt";
    };
    {
      label = "63-AS, ~35% attackers, Full MOAS";
      paper_value = "7.8% adopt (vs 31.2% on 25-AS)";
    };
    {
      label = "Normal BGP across sizes";
      paper_value = "similar curves (small gap)";
    };
  ]

let experiment3 =
  [
    {
      label = "63-AS, 30% attackers, 50% deployment";
      paper_value = ">63% reduction vs Normal BGP";
    };
    {
      label = "larger topology, partial deployment";
      paper_value = "better than smaller topology";
    };
  ]

let claims =
  [
    "Full MOAS detection cuts false-route adoption by 1-2 orders of magnitude";
    "Detection robustness improves with topology size";
    "Half deployment still removes most of the damage";
    "DNS/MOASRR lookups happen only on conflicts, not per update";
  ]
