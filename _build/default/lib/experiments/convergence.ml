open Net
module Rng = Mutil.Rng
module Stats = Mutil.Stats
module Topo = Topology.Paper_topologies

type point = {
  n_attackers : int;
  mean_detection_latency : float;
  max_detection_latency : float;
  detection_rate : float;
  mean_settle_time : float;
  mean_updates : float;
  mean_wire_octets : float;
}

(* a representative UPDATE for octet accounting: a 3-hop announcement
   carrying a two-entry MOAS list *)
let representative_update_octets =
  Bgp.Wire.update_size
    (Bgp.Update.announce ~sender:(Asn.make 1)
       {
         Bgp.Route.prefix = Prefix.of_string "192.0.2.0/24";
         as_path = Bgp.As_path.of_list [ 1; 2; 3 ];
         origin = Bgp.Route.Igp;
         learned_from = Asn.make 1;
         local_pref = 100;
         communities = Moas.Moas_list.encode (Asn.Set.of_list [ 3; 4 ]);
       })

let study ?(seed = 0x434f4e56L) ?(runs = 10)
    ?(n_attackers_list = [ 1; 3; 7; 14 ]) ~topology () =
  let root = Rng.create ~seed in
  List.map
    (fun n_attackers ->
      let outcomes =
        List.init runs (fun run ->
            let rng = Rng.split_at root ((n_attackers * 1000) + run) in
            let scenario =
              Attack.Scenario.random rng ~graph:topology.Topo.graph
                ~stub:topology.Topo.stub ~n_origins:1 ~n_attackers
                ~deployment:Moas.Deployment.Full
            in
            (Attack.Scenario.run (Rng.split_at rng 99) scenario, scenario))
      in
      let latencies =
        List.filter_map
          (fun (o, _) -> o.Attack.Scenario.detection_latency)
          outcomes
      in
      let settle_times =
        List.map
          (fun (o, s) ->
            o.Attack.Scenario.converged_at -. s.Attack.Scenario.attack_at)
          outcomes
      in
      let updates =
        List.map
          (fun (o, _) -> float_of_int o.Attack.Scenario.updates_sent)
          outcomes
      in
      {
        n_attackers;
        mean_detection_latency = Stats.mean latencies;
        max_detection_latency =
          (match latencies with
          | [] -> 0.0
          | _ -> snd (Stats.min_max latencies));
        detection_rate =
          float_of_int (List.length latencies) /. float_of_int runs;
        mean_settle_time = Stats.mean settle_times;
        mean_updates = Stats.mean updates;
        mean_wire_octets =
          Stats.mean updates *. float_of_int representative_update_octets;
      })
    n_attackers_list

let render points =
  Mutil.Text_table.render
    ~header:
      [
        "attackers";
        "detection rate";
        "mean latency";
        "max latency";
        "settle time";
        "updates";
        "~wire KB";
      ]
    (List.map
       (fun p ->
         [
           string_of_int p.n_attackers;
           Mutil.Text_table.percent_cell ~decimals:0 p.detection_rate;
           Printf.sprintf "%.2f" p.mean_detection_latency;
           Printf.sprintf "%.2f" p.max_detection_latency;
           Printf.sprintf "%.2f" p.mean_settle_time;
           Printf.sprintf "%.0f" p.mean_updates;
           Printf.sprintf "%.1f" (p.mean_wire_octets /. 1024.0);
         ])
       points)
