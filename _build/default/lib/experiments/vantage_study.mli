(** How many monitor feeds does the off-line deployment need?

    Section 4.2 proposes running the MOAS check from an external monitor
    that periodically downloads routing tables "from multiple peers".
    This study measures the detection rate of such a monitor as a function
    of the number of feeds it polls, for random attacked scenarios on a
    paper topology: with one feed a conflict is visible only if that very
    feed adopted a different origin than the rest of the world; with
    enough feeds the monitor approaches on-router detection. *)

type point = {
  feed_count : int;
  detection_rate : float;  (** fraction of attacked runs the monitor caught *)
  mean_conflicts : float;  (** findings per caught run *)
}

val study :
  ?seed:int64 ->
  ?runs:int ->
  ?feed_counts:int list ->
  topology:Topology.Paper_topologies.t ->
  unit ->
  point list
(** For each feed count, run attacked plain-BGP scenarios (no router
    checks anything), poll the tables of randomly chosen feed ASes, and
    measure how often the monitor observes the MOAS conflict.  Defaults:
    12 runs over feed counts 1, 2, 4, 8, 16. *)

val render : point list -> string
(** Text table. *)
