(** Detection and convergence dynamics — timing aspects the paper leaves
    implicit (its metric is the post-convergence steady state).

    For a set of random attacked scenarios with full deployment this
    module reports how quickly the first alarm fires after the bogus
    announcement, how long BGP needs to settle again, and how much UPDATE
    traffic each phase costs, as a function of attacker count. *)

type point = {
  n_attackers : int;
  mean_detection_latency : float;
      (** first alarm time minus attack time, over detecting runs *)
  max_detection_latency : float;
  detection_rate : float;  (** fraction of runs with at least one alarm *)
  mean_settle_time : float;
      (** last event time minus attack time: re-convergence duration *)
  mean_updates : float;  (** total UPDATE messages in the run *)
  mean_wire_octets : float;
      (** total exact wire octets of those messages (RFC 4271 encoding of
          one representative update times the message count) *)
}

val study :
  ?seed:int64 ->
  ?runs:int ->
  ?n_attackers_list:int list ->
  topology:Topology.Paper_topologies.t ->
  unit ->
  point list
(** Run the study (default: 10 runs per point over 1, 3, 7 and 14
    attackers). *)

val render : point list -> string
(** Text table. *)
