open Net
module Rng = Mutil.Rng
module Stats = Mutil.Stats
module Topo = Topology.Paper_topologies

type condition = Oracle | Dns | Dns_with_dns_hijack

let condition_to_string = function
  | Oracle -> "oracle (paper's assumption)"
  | Dns -> "DNS MOASRR lookups"
  | Dns_with_dns_hijack -> "DNS lookups + DNS prefix hijacked"

type point = {
  condition : condition;
  mean_adopting : float;
  mean_failed_lookups : float;
  mean_dns_queries : float;
}

let victim = Prefix.of_string "192.0.2.0/24"
let root_prefix = Prefix.of_string "198.41.0.0/24"
let arpa_prefix = Prefix.of_string "199.7.0.0/24"
let root_addr = Ipv4.of_string "198.41.0.4"
let arpa_addr = Ipv4.of_string "199.7.0.42"

(* The MOASRR tree: a root zone delegating in-addr.arpa to one
   authoritative server that holds the record for the victim prefix. *)
let build_servers ~origin =
  let arpa_apex = Dnssim.Domain.of_string "in-addr.arpa" in
  let arpa_server_name = Dnssim.Domain.of_string "ns.arpa-registry.net" in
  let root_zone =
    Dnssim.Zone.create ~apex:Dnssim.Domain.root
    |> (fun z ->
         Dnssim.Zone.add z
           {
             Dnssim.Zone.name = arpa_apex;
             ttl = 3600;
             rdata = Dnssim.Zone.Ns arpa_server_name;
           })
    |> fun z ->
    Dnssim.Zone.add z
      {
        Dnssim.Zone.name = arpa_server_name;
        ttl = 3600;
        rdata = Dnssim.Zone.A arpa_addr;
      }
  in
  let arpa_zone =
    Dnssim.Zone.create ~apex:arpa_apex
    |> fun z ->
    Dnssim.Zone.add z
      {
        Dnssim.Zone.name = Dnssim.Domain.reverse_of_prefix victim;
        ttl = 3600;
        rdata = Dnssim.Zone.Moasrr (Asn.Set.singleton origin);
      }
  in
  let root_server =
    {
      Dnssim.Resolver.name = Dnssim.Domain.of_string "a.root-servers.net";
      address = root_addr;
      zone = root_zone;
    }
  in
  let arpa_server =
    { Dnssim.Resolver.name = arpa_server_name; address = arpa_addr; zone = arpa_zone }
  in
  (root_server, arpa_server)

let run_one rng (topology : Topo.t) ~condition ~n_attackers =
  let graph = topology.Topo.graph in
  let stubs = Array.of_list (Asn.Set.elements topology.Topo.stub) in
  let origin = Rng.pick (Rng.split_at rng 0) stubs in
  (* the registry operator hosting both servers: the highest-degree
     transit AS that is neither origin nor attacker *)
  let pool =
    Asn.Set.elements (Asn.Set.remove origin (Topology.As_graph.nodes graph))
    |> Array.of_list
  in
  let attackers =
    Array.to_list (Rng.sample (Rng.split_at rng 1) pool n_attackers)
  in
  let attacker_set = Asn.Set.of_list attackers in
  let dns_host =
    Asn.Set.elements topology.Topo.transit
    |> List.filter (fun a ->
           (not (Asn.Set.mem a attacker_set)) && not (Asn.equal a origin))
    |> List.sort (fun a b ->
           compare (Topology.As_graph.degree graph b) (Topology.As_graph.degree graph a))
    |> function
    | host :: _ -> host
    | [] -> invalid_arg "Dns_study: no transit AS left to host the DNS"
  in
  let root_server, arpa_server = build_servers ~origin in
  let network_ref = ref None in
  let failed_lookups = ref 0 in
  let resolvers = Hashtbl.create 64 in
  let oracle = Moas.Origin_verification.create () in
  Moas.Origin_verification.register oracle victim (Asn.Set.singleton origin);
  let resolver_for asn =
    match Hashtbl.find_opt resolvers asn with
    | Some r -> r
    | None ->
      let reach address =
        (* the query follows this AS's own BGP forwarding: the circular
           dependency in one line *)
        match !network_ref with
        | None -> false
        | Some network ->
          (match Bgp.Network.delivered_to network ~from:asn address with
          | Some landed -> Asn.equal landed dns_host
          | None -> false)
      in
      let r =
        Dnssim.Resolver.create
          (Dnssim.Resolver.config ~reach ~roots:[ root_server ]
             ~servers:[ arpa_server ] ())
      in
      Hashtbl.add resolvers asn r;
      r
  in
  let verify_of asn : Moas.Detector.verify =
   fun ~now prefix ->
    match Dnssim.Resolver.lookup_moasrr (resolver_for asn) ~now prefix with
    | Ok result -> result
    | Error _ ->
      incr failed_lookups;
      None
  in
  let validator_of asn =
    if Asn.Set.mem asn attacker_set then None
    else
      let backend =
        match condition with
        | Oracle -> Moas.Detector.Oracle oracle
        | Dns | Dns_with_dns_hijack -> Moas.Detector.Custom (verify_of asn)
      in
      Some (Moas.Detector.validator (Moas.Detector.create ~backend ~self:asn ()))
  in
  let network =
    Bgp.Network.make
      ~config:Bgp.Network.Config.(default |> with_validator_of validator_of)
      graph
  in
  network_ref := Some network;
  (* infrastructure prefixes first, then the victim, then the attack *)
  Bgp.Network.originate ~at:0.0 network dns_host root_prefix;
  Bgp.Network.originate ~at:0.0 network dns_host arpa_prefix;
  Bgp.Network.originate ~at:0.0 network origin victim;
  List.iter
    (fun attacker ->
      let communities =
        Moas.Moas_list.encode (Asn.Set.of_list [ Asn.to_int origin; Asn.to_int attacker ])
      in
      Bgp.Network.originate ~at:50.0 ~communities network attacker victim;
      if condition = Dns_with_dns_hijack then
        (* the circular-dependency attack: capture the registry's prefix
           as well, cutting verification off exactly when it is needed *)
        Bgp.Network.originate ~at:50.0 network attacker arpa_prefix)
    attackers;
  ignore (Bgp.Network.run network);
  let eligible = Asn.Set.diff (Topology.As_graph.nodes graph) attacker_set in
  let adopting =
    Asn.Set.cardinal
      (Asn.Set.filter
         (fun asn ->
           match Bgp.Network.best_origin network asn victim with
           | Some o -> Asn.Set.mem o attacker_set
           | None -> false)
         eligible)
  in
  let dns_queries =
    Hashtbl.fold (fun _ r acc -> acc + Dnssim.Resolver.queries_sent r) resolvers 0
  in
  ( float_of_int adopting /. float_of_int (Asn.Set.cardinal eligible),
    float_of_int !failed_lookups,
    float_of_int dns_queries )

let study ?(seed = 0x444e5331L) ?(runs = 10) ?(n_attackers = 3) ~topology () =
  let root = Rng.create ~seed in
  List.map
    (fun condition ->
      let results =
        List.init runs (fun i ->
            run_one (Rng.split_at root i) topology ~condition ~n_attackers)
      in
      {
        condition;
        mean_adopting = Stats.mean (List.map (fun (a, _, _) -> a) results);
        mean_failed_lookups = Stats.mean (List.map (fun (_, f, _) -> f) results);
        mean_dns_queries = Stats.mean (List.map (fun (_, _, q) -> q) results);
      })
    [ Oracle; Dns; Dns_with_dns_hijack ]

let render points =
  Mutil.Text_table.render
    ~header:[ "verification backend"; "adoption"; "failed lookups"; "DNS queries" ]
    (List.map
       (fun p ->
         [
           condition_to_string p.condition;
           Mutil.Text_table.percent_cell ~decimals:2 p.mean_adopting;
           Printf.sprintf "%.1f" p.mean_failed_lookups;
           Printf.sprintf "%.1f" p.mean_dns_queries;
         ])
       points)
  ^ "  Section 2's circular dependency, quantified: hijacking the registry's\n\
    \  own prefix disables verification exactly where it is needed, while the\n\
    \  oracle (and intact DNS) keep the Experiment-1 protection level.\n"
