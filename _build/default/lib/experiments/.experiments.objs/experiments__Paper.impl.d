lib/experiments/paper.ml:
