lib/experiments/ablation.mli: Topology
