lib/experiments/vantage_study.mli: Topology
