lib/experiments/convergence.mli: Topology
