lib/experiments/figures.mli: Mutil Obs
