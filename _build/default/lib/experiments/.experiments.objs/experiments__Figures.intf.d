lib/experiments/figures.mli: Mutil
