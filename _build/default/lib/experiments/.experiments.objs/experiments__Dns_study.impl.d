lib/experiments/dns_study.ml: Array Asn Bgp Dnssim Hashtbl Ipv4 List Moas Mutil Net Prefix Printf Topology
