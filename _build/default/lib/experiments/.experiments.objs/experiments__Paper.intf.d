lib/experiments/paper.mli:
