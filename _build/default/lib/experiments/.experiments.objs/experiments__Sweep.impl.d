lib/experiments/sweep.ml: Array Asn Attack Float List Moas Mutil Net Prefix Topology
