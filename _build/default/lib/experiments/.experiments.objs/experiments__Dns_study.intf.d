lib/experiments/dns_study.mli: Topology
