lib/experiments/figures.ml: Float List Moas Mutil Printf String Sweep Topology
