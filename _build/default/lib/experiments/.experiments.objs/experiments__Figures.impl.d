lib/experiments/figures.ml: Float List Moas Mutil Obs Printf String Sweep Topology
