lib/experiments/sweep.mli: Asn Attack Moas Net Topology
