lib/experiments/vantage_study.ml: Array Asn Bgp List Moas Mutil Net Prefix Printf Topology
