lib/experiments/ablation.ml: Array Asn Attack Bgp Buffer Hashtbl List Moas Mutil Net Prefix Prefix_trie Printf Sweep Topology
