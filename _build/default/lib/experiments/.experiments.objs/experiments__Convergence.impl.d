lib/experiments/convergence.ml: Asn Attack Bgp List Moas Mutil Net Prefix Printf Topology
