lib/obs/span.mli: Registry
