lib/obs/registry.ml: Array Buffer Char Float Hashtbl List Mutil Printf String
