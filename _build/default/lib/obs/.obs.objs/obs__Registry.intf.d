lib/obs/registry.mli:
