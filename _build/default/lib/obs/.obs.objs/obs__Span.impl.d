lib/obs/span.ml: Buffer List Mutil Printf Registry String Sys
