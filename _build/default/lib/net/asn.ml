type t = int

let make n =
  if n < 0 || n > 65535 then invalid_arg "Asn.make: out of 16-bit range";
  n

let to_int t = t
let compare = Int.compare
let equal = Int.equal

let to_string t = "AS" ^ string_of_int t
let pp fmt t = Format.pp_print_string fmt (to_string t)

let is_private t = t >= 64512 && t <= 65534

module Set = Set.Make (Int)
module Map = Map.Make (Int)
