type t = int

let max_value = 0xffffffff

let of_int n =
  if n < 0 || n > max_value then invalid_arg "Ipv4.of_int: out of range";
  n

let to_int t = t

let of_int32 x = Int32.to_int x land max_value
let to_int32 t = Int32.of_int t

let of_octets a b c d =
  let check o = if o < 0 || o > 255 then invalid_arg "Ipv4.of_octets: octet out of range" in
  check a; check b; check c; check d;
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let to_octets t =
  ((t lsr 24) land 0xff, (t lsr 16) land 0xff, (t lsr 8) land 0xff, t land 0xff)

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
    let parse x =
      match int_of_string_opt x with
      | Some v when v >= 0 && v <= 255 && x <> "" -> v
      | _ -> invalid_arg ("Ipv4.of_string: bad octet in " ^ s)
    in
    try of_octets (parse a) (parse b) (parse c) (parse d)
    with Invalid_argument _ -> invalid_arg ("Ipv4.of_string: " ^ s))
  | _ -> invalid_arg ("Ipv4.of_string: " ^ s)

let to_string t =
  let a, b, c, d = to_octets t in
  Printf.sprintf "%d.%d.%d.%d" a b c d

let compare = Int.compare
let equal = Int.equal

let pp fmt t = Format.pp_print_string fmt (to_string t)

let bit t i =
  if i < 0 || i > 31 then invalid_arg "Ipv4.bit: index out of range";
  (t lsr (31 - i)) land 1 = 1
