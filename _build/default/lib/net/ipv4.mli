(** IPv4 addresses as 32-bit values carried in a native [int]. *)

type t = private int
(** An address; the private representation guarantees it fits in 32 bits. *)

val of_int32 : int32 -> t
(** Convert from a raw 32-bit pattern. *)

val to_int32 : t -> int32
(** Raw 32-bit pattern. *)

val of_int : int -> t
(** [of_int n] for [0 <= n <= 0xffffffff].
    @raise Invalid_argument outside that range. *)

val to_int : t -> int
(** Unsigned integer value in [0, 2^32). *)

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] builds [a.b.c.d].
    @raise Invalid_argument if an octet is outside [0,255]. *)

val to_octets : t -> int * int * int * int
(** Dotted-quad decomposition. *)

val of_string : string -> t
(** Parse dotted-quad notation. @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Dotted-quad notation. *)

val compare : t -> t -> int
(** Unsigned ordering. *)

val equal : t -> t -> bool
(** Equality. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer (dotted quad). *)

val bit : t -> int -> bool
(** [bit a i] is bit [i] counted from the most significant bit (bit 0). *)
