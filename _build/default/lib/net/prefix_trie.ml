(* A node sits at a given depth on the path determined by the bits consumed
   so far; [value] holds the binding for the prefix ending at this node. *)
type 'a t = Leaf | Node of { value : 'a option; zero : 'a t; one : 'a t }

let empty = Leaf

let is_empty = function
  | Leaf -> true
  | Node _ -> false

let node value zero one =
  match (value, zero, one) with
  | None, Leaf, Leaf -> Leaf
  | _ -> Node { value; zero; one }

let rec add_at depth p v t =
  match t with
  | Leaf ->
    if depth = Prefix.length p then node (Some v) Leaf Leaf
    else if Prefix.bit p depth then node None Leaf (add_at (depth + 1) p v Leaf)
    else node None (add_at (depth + 1) p v Leaf) Leaf
  | Node { value; zero; one } ->
    if depth = Prefix.length p then node (Some v) zero one
    else if Prefix.bit p depth then node value zero (add_at (depth + 1) p v one)
    else node value (add_at (depth + 1) p v zero) one

let add p v t = add_at 0 p v t

let rec remove_at depth p t =
  match t with
  | Leaf -> Leaf
  | Node { value; zero; one } ->
    if depth = Prefix.length p then node None zero one
    else if Prefix.bit p depth then node value zero (remove_at (depth + 1) p one)
    else node value (remove_at (depth + 1) p zero) one

let remove p t = remove_at 0 p t

let find_opt p t =
  let len = Prefix.length p in
  let rec go depth t =
    match t with
    | Leaf -> None
    | Node { value; zero; one } ->
      if depth = len then value
      else if Prefix.bit p depth then go (depth + 1) one
      else go (depth + 1) zero
  in
  go 0 t

let mem p t = Option.is_some (find_opt p t)

let matches addr t =
  let rec go depth t acc =
    match t with
    | Leaf -> acc
    | Node { value; zero; one } ->
      let acc =
        match value with
        | Some v -> (Prefix.make addr depth, v) :: acc
        | None -> acc
      in
      if depth = 32 then acc
      else if Ipv4.bit addr depth then go (depth + 1) one acc
      else go (depth + 1) zero acc
  in
  (* accumulated least-specific first, so the result is already
     most-specific first after the walk reverses naturally *)
  go 0 t []

let longest_match addr t =
  match matches addr t with
  | [] -> None
  | best :: _ -> Some best

let rec subtree_bindings prefix_net depth t acc =
  match t with
  | Leaf -> acc
  | Node { value; zero; one } ->
    let acc =
      if depth >= 32 then acc
      else
        let acc = subtree_bindings prefix_net (depth + 1) zero acc in
        subtree_bindings (prefix_net lor (1 lsl (31 - depth))) (depth + 1) one acc
    in
    (match value with
    | Some v -> (Prefix.make (Ipv4.of_int prefix_net) depth, v) :: acc
    | None -> acc)

let covered p t =
  let len = Prefix.length p in
  let rec descend depth t =
    match t with
    | Leaf -> []
    | Node { zero; one; _ } ->
      if depth = len then
        subtree_bindings (Ipv4.to_int (Prefix.network p)) depth t []
      else if Prefix.bit p depth then descend (depth + 1) one
      else descend (depth + 1) zero
  in
  descend 0 t

let update p f t =
  match f (find_opt p t) with
  | Some v -> add p v t
  | None -> remove p t

let fold f t init =
  let rec go net depth t acc =
    match t with
    | Leaf -> acc
    | Node { value; zero; one } ->
      let acc =
        match value with
        | Some v -> f (Prefix.make (Ipv4.of_int net) depth) v acc
        | None -> acc
      in
      if depth = 32 then acc
      else
        let acc = go net (depth + 1) zero acc in
        go (net lor (1 lsl (31 - depth))) (depth + 1) one acc
  in
  go 0 0 t init

let iter f t = fold (fun p v () -> f p v) t ()

let bindings t = List.rev (fold (fun p v acc -> (p, v) :: acc) t [])

let cardinal t = fold (fun _ _ n -> n + 1) t 0

let of_list l = List.fold_left (fun t (p, v) -> add p v t) empty l
