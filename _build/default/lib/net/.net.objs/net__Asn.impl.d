lib/net/asn.ml: Format Int Map Set
