lib/net/prefix.ml: Format Int Ipv4 Map Printf Set String
