(** Autonomous System numbers.  The paper predates 4-byte AS numbers, so a
    16-bit range is enforced on construction; the carrier type is [int] for
    cheap arithmetic and container keys. *)

type t = int
(** An AS number in [0, 65535]. *)

val make : int -> t
(** Validate the 16-bit range. @raise Invalid_argument outside [0,65535]. *)

val to_int : t -> int
(** Identity, provided for symmetry. *)

val compare : t -> t -> int
(** Numeric order. *)

val equal : t -> t -> bool
(** Equality. *)

val pp : Format.formatter -> t -> unit
(** Prints ["AS<n>"]. *)

val to_string : t -> string
(** ["AS<n>"]. *)

val is_private : t -> bool
(** RFC 1930 private range, 64512-65534, used by the ASE multi-homing
    technique of the paper's Section 3.2. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
