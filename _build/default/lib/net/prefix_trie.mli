(** Binary radix trie keyed by {!Prefix.t}, supporting exact lookup and
    longest-prefix match.  This is the routing-table data structure used by
    the BGP engine's Loc-RIB and by the measurement pipeline's table dumps.

    The trie is immutable: every operation returns a new trie and shares
    structure with the old one, which makes snapshotting daily table dumps
    cheap. *)

type 'a t
(** A trie mapping prefixes to values of type ['a]. *)

val empty : 'a t
(** The empty trie. *)

val is_empty : 'a t -> bool
(** Whether the trie holds no binding. *)

val add : Prefix.t -> 'a -> 'a t -> 'a t
(** [add p v t] binds [p] to [v], replacing any previous binding. *)

val remove : Prefix.t -> 'a t -> 'a t
(** Remove the binding for a prefix, if any; unused interior nodes are
    pruned so the structure stays proportional to the live bindings. *)

val find_opt : Prefix.t -> 'a t -> 'a option
(** Exact-match lookup. *)

val mem : Prefix.t -> 'a t -> bool
(** Exact-match membership. *)

val longest_match : Ipv4.t -> 'a t -> (Prefix.t * 'a) option
(** [longest_match addr t] is the most specific bound prefix containing
    [addr], the forwarding semantics of an IP router. *)

val matches : Ipv4.t -> 'a t -> (Prefix.t * 'a) list
(** All bound prefixes containing [addr], most specific first. *)

val covered : Prefix.t -> 'a t -> (Prefix.t * 'a) list
(** [covered p t] lists bindings whose prefix is [p] or more specific
    (used to detect the sub-prefix hijacks of Section 4.3). *)

val update : Prefix.t -> ('a option -> 'a option) -> 'a t -> 'a t
(** [update p f t] adjusts the binding for [p] through [f], like
    [Map.update]. *)

val fold : (Prefix.t -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
(** Fold over bindings in lexicographic (network, length) trie order. *)

val iter : (Prefix.t -> 'a -> unit) -> 'a t -> unit
(** Iterate over bindings. *)

val bindings : 'a t -> (Prefix.t * 'a) list
(** All bindings as a list. *)

val cardinal : 'a t -> int
(** Number of bindings. *)

val of_list : (Prefix.t * 'a) list -> 'a t
(** Build from an association list (later bindings win). *)
