open Net
module Rng = Mutil.Rng

type params = {
  tier1_count : int;
  tier2_count : int;
  tier2_uplinks : int;
  tier2_peering_prob : float;
  stub_count : int;
  stub_multihome_prob : float;
}

let default_params =
  {
    tier1_count = 8;
    tier2_count = 72;
    tier2_uplinks = 3;
    tier2_peering_prob = 0.18;
    stub_count = 640;
    stub_multihome_prob = 0.45;
  }

type internet = {
  graph : As_graph.t;
  tier1 : Asn.Set.t;
  tier2 : Asn.Set.t;
  stub : Asn.Set.t;
}

let transit_ases t = Asn.Set.union t.tier1 t.tier2

(* AS number ranges: tier-1 from 100, tier-2 from 1000, stubs from 10000.
   Ranges never overlap for any sane parameter choice. *)
let tier1_asn i = Asn.make (100 + i)
let tier2_asn i = Asn.make (1000 + i)
let stub_asn i = Asn.make (10000 + i)

(* Pick a provider among [candidates] with probability proportional to
   (degree + 1): classic preferential attachment, which yields the
   heavy-tailed degree distribution of the real AS graph. *)
let preferential_pick rng graph candidates ~excluding =
  let weighted =
    List.filter_map
      (fun asn ->
        if Asn.Set.mem asn excluding then None
        else Some (asn, As_graph.degree graph asn + 1))
      candidates
  in
  match weighted with
  | [] -> None
  | _ ->
    let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weighted in
    let target = Rng.int rng total in
    let rec walk acc = function
      | [] -> assert false
      | [ (asn, _) ] -> asn
      | (asn, w) :: rest -> if acc + w > target then asn else walk (acc + w) rest
    in
    Some (walk 0 weighted)

let validate p =
  if p.tier1_count < 2 then invalid_arg "Generate: need at least 2 tier-1 ASes";
  if p.tier2_count < 0 || p.stub_count < 0 then
    invalid_arg "Generate: negative counts";
  if p.tier2_uplinks < 1 then invalid_arg "Generate: tier-2 needs an uplink";
  if p.tier2_peering_prob < 0.0 || p.tier2_peering_prob > 1.0 then
    invalid_arg "Generate: tier2_peering_prob out of [0,1]";
  if p.stub_multihome_prob < 0.0 || p.stub_multihome_prob > 1.0 then
    invalid_arg "Generate: stub_multihome_prob out of [0,1]"

let generate rng p =
  validate p;
  let tier1 = List.init p.tier1_count tier1_asn in
  let tier2 = List.init p.tier2_count tier2_asn in
  let stubs = List.init p.stub_count stub_asn in
  (* tier-1 clique *)
  let graph =
    List.fold_left
      (fun g a ->
        List.fold_left (fun g b -> if a < b then As_graph.add_edge g a b else g) g tier1)
      As_graph.empty tier1
  in
  (* tier-2: each buys transit from [tier2_uplinks] distinct providers drawn
     preferentially from tier-1 and already-attached tier-2 ASes, then peers
     laterally with other tier-2 ASes with a small probability *)
  let graph, attached_tier2 =
    List.fold_left
      (fun (g, attached) t2 ->
        let candidates = tier1 @ attached in
        let rec attach g chosen k =
          if k = 0 then g
          else
            match preferential_pick rng g candidates ~excluding:chosen with
            | None -> g
            | Some provider ->
              attach (As_graph.add_edge g t2 provider)
                (Asn.Set.add provider chosen)
                (k - 1)
        in
        let g = attach g (Asn.Set.singleton t2) p.tier2_uplinks in
        let g =
          List.fold_left
            (fun g other ->
              if Rng.chance rng p.tier2_peering_prob then
                As_graph.add_edge g t2 other
              else g)
            g attached
        in
        (g, t2 :: attached))
      (graph, []) tier2
  in
  ignore attached_tier2;
  (* stubs: one provider, a second with some probability, drawn
     preferentially from all transit ASes *)
  let transit = tier1 @ tier2 in
  let graph =
    List.fold_left
      (fun g s ->
        let chosen = Asn.Set.singleton s in
        match preferential_pick rng g transit ~excluding:chosen with
        | None -> g
        | Some p1 ->
          let g = As_graph.add_edge g s p1 in
          if Rng.chance rng p.stub_multihome_prob then
            match
              preferential_pick rng g transit ~excluding:(Asn.Set.add p1 chosen)
            with
            | Some p2 -> As_graph.add_edge g s p2
            | None -> g
          else g)
      graph stubs
  in
  {
    graph;
    tier1 = Asn.Set.of_list tier1;
    tier2 = Asn.Set.of_list tier2;
    stub = Asn.Set.of_list stubs;
  }
