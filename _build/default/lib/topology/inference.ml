open Net

type classified = {
  graph : As_graph.t;
  transit : Asn.Set.t;
  stub : Asn.Set.t;
}

let fold_path (graph, transit) path =
  match path with
  | [] -> (graph, transit)
  | [ only ] -> (As_graph.add_node graph only, transit)
  | first :: _ ->
    let rec walk graph transit = function
      | a :: (b :: _ as rest) ->
        let graph = if Asn.equal a b then graph else As_graph.add_edge graph a b in
        (* [a] has a successor towards the origin: it carries transit *)
        walk graph (Asn.Set.add a transit) rest
      | [ _ ] | [] -> (graph, transit)
    in
    walk (As_graph.add_node graph first) transit path

let classify (graph, transit) =
  let stub = Asn.Set.diff (As_graph.nodes graph) transit in
  { graph; transit; stub }

let infer paths =
  classify (List.fold_left fold_path (As_graph.empty, Asn.Set.empty) paths)

let infer_with_vantage ~vantage paths =
  let graph, transit =
    List.fold_left fold_path (As_graph.empty, Asn.Set.empty) paths
  in
  let graph =
    List.fold_left
      (fun g path ->
        match path with
        | first :: _ when not (Asn.equal first vantage) ->
          As_graph.add_edge g vantage first
        | _ -> g)
      (As_graph.add_node graph vantage)
      paths
  in
  (* the vantage offers its table to us, so it acts as a transit AS *)
  classify (graph, Asn.Set.add vantage transit)
