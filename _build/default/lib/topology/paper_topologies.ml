open Net
module Rng = Mutil.Rng

type t = {
  name : string;
  graph : As_graph.t;
  transit : Asn.Set.t;
  stub : Asn.Set.t;
}

(* The synthetic Internet and its inferred classification are shared by all
   topology sizes built from the same seed. *)
let classified_internet seed =
  let rng = Rng.create ~seed in
  let internet = Generate.generate rng Generate.default_params in
  (* The Oregon collector peers with dozens of routers; every extra vantage
     exposes peerings that are invisible from the others' shortest-path
     trees.  Use every tier-1, a third of the tier-2s and a sprinkling of
     stubs as vantage points. *)
  let vantages =
    Asn.Set.elements internet.Generate.tier1
    @ (Asn.Set.elements internet.Generate.tier2
      |> List.filteri (fun i _ -> i mod 3 = 0))
    @ (Asn.Set.elements internet.Generate.stub
      |> List.filteri (fun i _ -> i mod 20 = 0))
  in
  let paths =
    Route_table.paths_from_vantages internet.Generate.graph ~vantages
  in
  Inference.infer paths

(* The paper observes that its larger topologies are more richly connected
   ("ASes are more richly connected in the larger topology", Section 5.3) —
   the property its Experiment 2 robustness result rests on.  Random stub
   samples vary widely in density, so the search additionally screens the
   average peering degree against a schedule interpolating the paper's
   description: near-tree for 25 ASes, mesh-like for 63. *)
let degree_target_for size =
  if size <= 30 then (2.1, 2.3)
  else if size <= 50 then (3.4, 4.4)
  else (5.4, 5.8)

let build ?degree_range ~seed ~target_size () =
  if target_size < 3 then invalid_arg "Paper_topologies.build: target too small";
  let lo_deg, hi_deg =
    match degree_range with
    | Some range -> range
    | None -> degree_target_for target_size
  in
  let classified = classified_internet seed in
  let rng = Rng.create ~seed:(Int64.add seed 0x5eedL) in
  (* scan stub counts around a heuristic starting point over several
     attempts; each attempt uses an independent child stream so results do
     not depend on scan order *)
  let rec search attempt =
    if attempt > 20000 then
      failwith
        (Printf.sprintf "Paper_topologies.build: no %d-AS topology found"
           target_size)
    else begin
      let stub_count = 2 + (attempt mod (max 2 target_size)) in
      let attempt_rng = Rng.split_at rng attempt in
      match Sampling.sample attempt_rng classified ~stub_count with
      | Some sample
        when As_graph.node_count sample.Sampling.graph = target_size
             &&
             let d = Algorithms.average_degree sample.Sampling.graph in
             d >= lo_deg && d <= hi_deg ->
        {
          name = Printf.sprintf "%d-AS" target_size;
          graph = sample.Sampling.graph;
          transit = sample.Sampling.transit;
          stub = sample.Sampling.stub;
        }
      | Some _ | None -> search (attempt + 1)
    end
  in
  search 0

let default_seed = 0x4d4f4153L (* "MOAS" *)

let memo = Hashtbl.create 4

let build_memo target_size =
  match Hashtbl.find_opt memo target_size with
  | Some t -> t
  | None ->
    let t = build ~seed:default_seed ~target_size () in
    Hashtbl.add memo target_size t;
    t

let topology_25 () = build_memo 25
let topology_46 () = build_memo 46
let topology_63 () = build_memo 63

let all () = [ topology_25 (); topology_46 (); topology_63 () ]

let describe t =
  Printf.sprintf
    "%s: %d nodes, %d edges, %d transit / %d stub, avg degree %.2f, diameter %d"
    t.name
    (As_graph.node_count t.graph)
    (As_graph.edge_count t.graph)
    (Asn.Set.cardinal t.transit)
    (Asn.Set.cardinal t.stub)
    (Algorithms.average_degree t.graph)
    (Algorithms.diameter t.graph)
