(** The three simulation topologies of the paper — 25, 46 and 63 ASes —
    derived with the full Section 5.1 pipeline: generate a synthetic
    Internet, dump a vantage point's routing table, infer peering and the
    transit/stub split from the AS paths, sample stubs, keep their ISPs,
    prune weak transit ASes, and verify connectivity.  A deterministic
    search over the sampled stub count and per-attempt randomness lands on
    the exact target size. *)

open Net

type t = {
  name : string;           (** e.g. ["46-AS"] *)
  graph : As_graph.t;
  transit : Asn.Set.t;
  stub : Asn.Set.t;
}

val build : ?degree_range:float * float -> seed:int64 -> target_size:int -> unit -> t
(** Derive a connected topology with exactly [target_size] ASes whose
    average peering degree falls in [degree_range].  The default range
    follows the paper's Section 5.3 observation that its larger topologies
    are more richly connected: near-tree density for 25 ASes, mesh-like for
    63.  @raise Failure if no attempt satisfies both criteria (does not
    happen for the paper's sizes with the default generator). *)

val topology_25 : unit -> t
(** The 25-AS topology (memoised; fixed seed). *)

val topology_46 : unit -> t
(** The 46-AS topology (memoised; fixed seed). *)

val topology_63 : unit -> t
(** The 63-AS topology (memoised; fixed seed). *)

val all : unit -> t list
(** The three paper topologies, smallest first. *)

val describe : t -> string
(** One-line structural summary (nodes, edges, transit/stub split, average
    degree, diameter). *)
