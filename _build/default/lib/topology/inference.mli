(** Peering and transit/stub inference from BGP table AS paths — the first
    half of the paper's Section 5.1 pipeline.

    From a route with AS path [1239 6453 4621] we infer that AS 6453 has two
    BGP peers (1239 and 4621) and mark every non-origin AS on the path as a
    transit AS; ASes never seen in a transit position are stubs. *)

open Net

type classified = {
  graph : As_graph.t;   (** inferred peering graph *)
  transit : Asn.Set.t;  (** ASes observed carrying traffic for others *)
  stub : Asn.Set.t;     (** the remaining ASes *)
}

val infer : Route_table.path list -> classified
(** Run the inference over a set of table paths.  Empty paths are ignored;
    repeated adjacencies collapse into a single peering. *)

val infer_with_vantage : vantage:Asn.t -> Route_table.path list -> classified
(** Like {!infer} but also records the vantage AS itself and its peerings
    to the first hop of each path (the vantage sees those sessions even
    though it never appears inside its own table paths). *)
