(** Graph algorithms over {!As_graph}: reachability, shortest paths and a
    few structural metrics used to characterise the generated topologies. *)

open Net

val bfs_distances : As_graph.t -> Asn.t -> int Asn.Map.t
(** Hop distance from a source to every reachable AS (source at 0). *)

val shortest_path : As_graph.t -> Asn.t -> Asn.t -> Asn.t list option
(** One shortest path from source to destination (inclusive of both), with
    deterministic tie-breaking towards lower AS numbers; [None] when
    unreachable. *)

val connected_components : As_graph.t -> Asn.Set.t list
(** Components, largest first; ties broken by smallest member. *)

val is_connected : As_graph.t -> bool
(** True when the graph has at most one component. *)

val largest_component : As_graph.t -> Asn.Set.t
(** Node set of the largest component (empty for the empty graph). *)

val eccentricity : As_graph.t -> Asn.t -> int
(** Largest hop distance from the AS to any reachable AS. *)

val diameter : As_graph.t -> int
(** Largest eccentricity over the graph; 0 for graphs with <2 nodes.
    Assumes connectivity (unreached pairs are ignored). *)

val average_degree : As_graph.t -> float
(** Mean peering degree. *)

val degree_histogram : As_graph.t -> (int * int) list
(** (degree, how many ASes have it), sorted by degree. *)
