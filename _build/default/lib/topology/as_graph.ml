open Net

type t = { adj : Asn.Set.t Asn.Map.t }

let empty = { adj = Asn.Map.empty }

let add_node t asn =
  if Asn.Map.mem asn t.adj then t
  else { adj = Asn.Map.add asn Asn.Set.empty t.adj }

let add_edge t a b =
  if Asn.equal a b then invalid_arg "As_graph.add_edge: self-loop";
  let t = add_node (add_node t a) b in
  let link x y adj =
    Asn.Map.update x
      (function
        | Some peers -> Some (Asn.Set.add y peers)
        | None -> Some (Asn.Set.singleton y))
      adj
  in
  { adj = link a b (link b a t.adj) }

let neighbors t asn =
  match Asn.Map.find_opt asn t.adj with
  | Some peers -> peers
  | None -> Asn.Set.empty

let remove_node t asn =
  match Asn.Map.find_opt asn t.adj with
  | None -> t
  | Some peers ->
    let adj = Asn.Map.remove asn t.adj in
    let adj =
      Asn.Set.fold
        (fun peer adj ->
          Asn.Map.update peer
            (function
              | Some s -> Some (Asn.Set.remove asn s)
              | None -> None)
            adj)
        peers adj
    in
    { adj }

let mem_node t asn = Asn.Map.mem asn t.adj

let mem_edge t a b = Asn.Set.mem b (neighbors t a)

let degree t asn = Asn.Set.cardinal (neighbors t asn)

let nodes t =
  Asn.Map.fold (fun asn _ acc -> Asn.Set.add asn acc) t.adj Asn.Set.empty

let node_list t = Asn.Map.fold (fun asn _ acc -> asn :: acc) t.adj [] |> List.rev

let node_count t = Asn.Map.cardinal t.adj

let edges t =
  Asn.Map.fold
    (fun a peers acc ->
      Asn.Set.fold (fun b acc -> if a < b then (a, b) :: acc else acc) peers acc)
    t.adj []
  |> List.sort compare

let edge_count t =
  Asn.Map.fold (fun _ peers acc -> acc + Asn.Set.cardinal peers) t.adj 0 / 2

let induced t keep =
  Asn.Map.fold
    (fun asn peers acc ->
      if Asn.Set.mem asn keep then
        let acc = add_node acc asn in
        Asn.Set.fold
          (fun peer acc ->
            if Asn.Set.mem peer keep && asn < peer then add_edge acc asn peer
            else acc)
          peers acc
      else acc)
    t.adj empty

let fold_nodes f t init = Asn.Map.fold (fun asn _ acc -> f asn acc) t.adj init

let of_edges edge_list =
  List.fold_left (fun t (a, b) -> add_edge t a b) empty edge_list

let pp fmt t =
  Format.fprintf fmt "AS graph: %d nodes, %d edges" (node_count t) (edge_count t)
