(** Undirected AS-level topology: each node is an Autonomous System, each
    edge a BGP peering (the two ASes exchange routing information), exactly
    the model of the paper's Section 5.1. *)

open Net

type t
(** An immutable AS graph. *)

val empty : t
(** The graph with no AS. *)

val add_node : t -> Asn.t -> t
(** Add an isolated AS (idempotent). *)

val add_edge : t -> Asn.t -> Asn.t -> t
(** Add a peering, inserting endpoints as needed.  Self-loops are rejected.
    @raise Invalid_argument on a self-loop. *)

val remove_node : t -> Asn.t -> t
(** Remove an AS and all its peerings (idempotent). *)

val mem_node : t -> Asn.t -> bool
(** Node membership. *)

val mem_edge : t -> Asn.t -> Asn.t -> bool
(** Peering membership (symmetric). *)

val neighbors : t -> Asn.t -> Asn.Set.t
(** Peers of an AS; empty set for an unknown AS. *)

val degree : t -> Asn.t -> int
(** Number of peers. *)

val nodes : t -> Asn.Set.t
(** All ASes. *)

val node_list : t -> Asn.t list
(** All ASes in increasing order. *)

val node_count : t -> int
(** Number of ASes. *)

val edge_count : t -> int
(** Number of peerings. *)

val edges : t -> (Asn.t * Asn.t) list
(** All peerings with the smaller AS first, sorted. *)

val induced : t -> Asn.Set.t -> t
(** Subgraph induced by a node set: the selected ASes with the peering
    relations among them completely preserved. *)

val fold_nodes : (Asn.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over ASes in increasing order. *)

val of_edges : (Asn.t * Asn.t) list -> t
(** Build a graph from an edge list. *)

val pp : Format.formatter -> t -> unit
(** Summary printer: node and edge counts. *)
