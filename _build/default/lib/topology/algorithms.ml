open Net

let bfs_distances g src =
  if not (As_graph.mem_node g src) then Asn.Map.empty
  else begin
    let dist = ref (Asn.Map.singleton src 0) in
    let queue = Queue.create () in
    Queue.push src queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let du = Asn.Map.find u !dist in
      (* iterate peers in increasing order for determinism *)
      Asn.Set.iter
        (fun v ->
          if not (Asn.Map.mem v !dist) then begin
            dist := Asn.Map.add v (du + 1) !dist;
            Queue.push v queue
          end)
        (As_graph.neighbors g u)
    done;
    !dist
  end

let shortest_path g src dst =
  if not (As_graph.mem_node g src && As_graph.mem_node g dst) then None
  else begin
    (* BFS from dst so that walking parent pointers from src yields the
       path in forward order; parents prefer the lowest AS number *)
    let dist = bfs_distances g dst in
    match Asn.Map.find_opt src dist with
    | None -> None
    | Some _ ->
      let rec walk u acc =
        if Asn.equal u dst then List.rev (dst :: acc)
        else
          let du = Asn.Map.find u dist in
          let next =
            Asn.Set.fold
              (fun v best ->
                match (Asn.Map.find_opt v dist, best) with
                | Some dv, None when dv = du - 1 -> Some v
                | Some dv, Some b when dv = du - 1 && v < b -> Some v
                | _ -> best)
              (As_graph.neighbors g u)
              None
          in
          (match next with
          | Some v -> walk v (u :: acc)
          | None -> assert false)
      in
      Some (walk src [])
  end

let connected_components g =
  let remaining = ref (As_graph.nodes g) in
  let components = ref [] in
  while not (Asn.Set.is_empty !remaining) do
    let seed = Asn.Set.min_elt !remaining in
    let comp =
      Asn.Map.fold
        (fun asn _ acc -> Asn.Set.add asn acc)
        (bfs_distances g seed) Asn.Set.empty
    in
    components := comp :: !components;
    remaining := Asn.Set.diff !remaining comp
  done;
  List.sort
    (fun a b ->
      match Int.compare (Asn.Set.cardinal b) (Asn.Set.cardinal a) with
      | 0 -> Asn.compare (Asn.Set.min_elt a) (Asn.Set.min_elt b)
      | c -> c)
    !components

let is_connected g = List.length (connected_components g) <= 1

let largest_component g =
  match connected_components g with
  | [] -> Asn.Set.empty
  | c :: _ -> c

let eccentricity g asn =
  Asn.Map.fold (fun _ d acc -> max d acc) (bfs_distances g asn) 0

let diameter g =
  As_graph.fold_nodes (fun asn acc -> max (eccentricity g asn) acc) g 0

let average_degree g =
  let n = As_graph.node_count g in
  if n = 0 then 0.0 else 2.0 *. float_of_int (As_graph.edge_count g) /. float_of_int n

let degree_histogram g =
  let tbl = Hashtbl.create 16 in
  As_graph.fold_nodes
    (fun asn () ->
      let d = As_graph.degree g asn in
      Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d)))
    g ();
  Hashtbl.fold (fun d n acc -> (d, n) :: acc) tbl [] |> List.sort compare
