open Net

type relationship = Customer | Provider | Peer

let relationship_to_string = function
  | Customer -> "customer"
  | Provider -> "provider"
  | Peer -> "peer"

(* Per-edge record, stored once under the (min, max) endpoint pair. *)
type edge_rel =
  | Low_provides_high  (** the smaller-numbered AS is the provider *)
  | High_provides_low
  | Peering

module Edge_map = Map.Make (struct
  type t = Asn.t * Asn.t

  let compare = compare
end)

type t = edge_rel Edge_map.t

let key a b = if a < b then (a, b) else (b, a)

let view t ~self ~neighbor =
  match Edge_map.find_opt (key self neighbor) t with
  | None -> None
  | Some rel ->
    let self_is_low = self < neighbor in
    (match (rel, self_is_low) with
    | Peering, _ -> Some Peer
    | Low_provides_high, true | High_provides_low, false -> Some Customer
    | Low_provides_high, false | High_provides_low, true -> Some Provider)

let add_rel t a b ~provider =
  let rel =
    if Asn.equal provider a then if a < b then Low_provides_high else High_provides_low
    else if a < b then High_provides_low
    else Low_provides_high
  in
  Edge_map.add (key a b) rel t

let add_peering t a b = Edge_map.add (key a b) Peering t

let of_ground_truth (internet : Generate.internet) =
  let tier_of asn =
    if Asn.Set.mem asn internet.Generate.tier1 then 1
    else if Asn.Set.mem asn internet.Generate.tier2 then 2
    else 3
  in
  List.fold_left
    (fun t (a, b) ->
      let ta = tier_of a and tb = tier_of b in
      if ta = tb then
        (* lateral edge within a tier: settlement-free peering *)
        add_peering t a b
      else if ta < tb then add_rel t a b ~provider:a
      else add_rel t a b ~provider:b)
    Edge_map.empty
    (As_graph.edges internet.Generate.graph)

let infer_by_degree ?(peer_ratio = 1.25) graph =
  List.fold_left
    (fun t (a, b) ->
      let da = float_of_int (As_graph.degree graph a) in
      let db = float_of_int (As_graph.degree graph b) in
      if da > peer_ratio *. db then add_rel t a b ~provider:a
      else if db > peer_ratio *. da then add_rel t a b ~provider:b
      else add_peering t a b)
    Edge_map.empty (As_graph.edges graph)

let select_neighbors t graph asn wanted =
  Asn.Set.filter
    (fun neighbor -> view t ~self:asn ~neighbor = Some wanted)
    (As_graph.neighbors graph asn)

let providers t graph asn = select_neighbors t graph asn Provider
let customers t graph asn = select_neighbors t graph asn Customer
let peers t graph asn = select_neighbors t graph asn Peer

let is_valley_free t path =
  (* walk in propagation order (origin first); each step x -> y is uphill
     when y is x's provider, flat on a peering, downhill when y is x's
     customer; valid shape: uphill* flat? downhill* *)
  let steps =
    let rec pair_up = function
      | x :: (y :: _ as rest) -> (x, y) :: pair_up rest
      | [ _ ] | [] -> []
    in
    pair_up (List.rev path)
  in
  let classify (x, y) =
    match view t ~self:x ~neighbor:y with
    | Some Provider -> `Up
    | Some Peer -> `Flat
    | Some Customer -> `Down
    | None -> `Unknown
  in
  let rec walk state = function
    | [] -> true
    | step :: rest ->
      (match (state, classify step) with
      | _, `Unknown -> false
      | `Climbing, `Up -> walk `Climbing rest
      | `Climbing, `Flat -> walk `Descending rest
      | (`Climbing | `Descending), `Down -> walk `Descending rest
      | `Descending, (`Up | `Flat) -> false)
  in
  walk `Climbing steps
