open Net
module Rng = Mutil.Rng

type t = {
  graph : As_graph.t;
  transit : Asn.Set.t;
  stub : Asn.Set.t;
}

let prune_weak_transit graph ~transit =
  let rec loop graph =
    let victims =
      Asn.Set.filter
        (fun asn -> As_graph.mem_node graph asn && As_graph.degree graph asn <= 1)
        transit
    in
    if Asn.Set.is_empty victims then graph
    else loop (Asn.Set.fold (fun asn g -> As_graph.remove_node g asn) victims graph)
  in
  loop graph

let sample rng (classified : Inference.classified) ~stub_count =
  let stub_pool = Array.of_list (Asn.Set.elements classified.stub) in
  if stub_count <= 0 || stub_count > Array.length stub_pool then None
  else begin
    let chosen_stubs = Rng.sample rng stub_pool stub_count in
    let keep =
      Array.fold_left
        (fun keep s ->
          Asn.Set.union
            (Asn.Set.add s keep)
            (As_graph.neighbors classified.graph s))
        Asn.Set.empty chosen_stubs
    in
    let graph = As_graph.induced classified.graph keep in
    let graph = prune_weak_transit graph ~transit:classified.transit in
    let surviving = As_graph.nodes graph in
    (* sampled stubs may lose their only provider to pruning; drop those *)
    let graph =
      Asn.Set.fold
        (fun asn g ->
          if Asn.Set.mem asn classified.stub && As_graph.degree g asn = 0 then
            As_graph.remove_node g asn
          else g)
        surviving graph
    in
    let surviving = As_graph.nodes graph in
    if Asn.Set.is_empty surviving || not (Algorithms.is_connected graph) then None
    else
      Some
        {
          graph;
          transit = Asn.Set.inter surviving classified.transit;
          stub = Asn.Set.inter surviving classified.stub;
        }
  end

let sample_fraction rng (classified : Inference.classified) ~stub_fraction =
  if stub_fraction <= 0.0 || stub_fraction > 1.0 then
    invalid_arg "Sampling.sample_fraction: fraction out of (0,1]";
  let total = Asn.Set.cardinal classified.stub in
  let count = max 1 (int_of_float (Float.round (stub_fraction *. float_of_int total))) in
  sample rng classified ~stub_count:count
