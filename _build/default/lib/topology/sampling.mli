(** Stub sampling and pruning — the second half of the paper's Section 5.1
    pipeline that turns the inferred Internet graph into a small simulation
    topology:

    1. randomly select a number of stub ASes;
    2. keep those stubs together with their ISP peers, preserving all
       peering relations among the selected ASes;
    3. iteratively prune transit ASes left with at most one peer;
    4. verify the result is a connected graph. *)

open Net

type t = {
  graph : As_graph.t;
  transit : Asn.Set.t;  (** transit ASes surviving the pruning *)
  stub : Asn.Set.t;     (** sampled stub ASes surviving the pruning *)
}
(** A simulation topology with its role classification. *)

val prune_weak_transit : As_graph.t -> transit:Asn.Set.t -> As_graph.t
(** Iteratively remove transit ASes whose degree has fallen to 1 or 0.
    Stub ASes are never removed (the paper prunes transit ASes only). *)

val sample :
  Mutil.Rng.t ->
  Inference.classified ->
  stub_count:int ->
  t option
(** Run steps 1-4 with an explicit number of sampled stubs.  Returns [None]
    when the pruned graph is disconnected or empty (the paper would redo
    the selection; callers retry with fresh randomness). *)

val sample_fraction :
  Mutil.Rng.t ->
  Inference.classified ->
  stub_fraction:float ->
  t option
(** [sample_fraction] with [x%] of the stubs, the paper's parameterisation. *)
