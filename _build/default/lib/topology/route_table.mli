(** Synthetic BGP routing table: the AS paths a vantage point's router
    would carry, one per destination AS.  This is the input format of the
    paper's topology-inference step (Section 5.1), which mined the Oregon
    RouteViews table in exactly this shape. *)

open Net

type path = Asn.t list
(** An AS path as it appears in a table dump: first element is the
    vantage's BGP neighbor, last element is the origin AS. *)

val paths_from : As_graph.t -> vantage:Asn.t -> path list
(** Shortest AS path (deterministic low-AS tie-break) from the vantage to
    every other reachable AS, excluding the vantage itself from each path —
    the view its BGP table would give.  Paths are sorted by origin AS. *)

val paths_from_vantages : As_graph.t -> vantages:Asn.t list -> path list
(** Union of the views of several vantage points (the paper peers with
    multiple routers), duplicates removed. *)
