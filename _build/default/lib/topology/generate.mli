(** Synthetic Internet-like AS topology generator.

    This substitutes for the Oregon RouteViews table the paper mined
    (DESIGN.md substitution 1).  The generator grows a three-tier hierarchy:
    a clique of tier-1 backbones, tier-2 regional transit providers that
    multi-home into the core and peer laterally, and stub ASes (enterprise and
    campus networks) that attach to one or more transit providers chosen by
    preferential attachment.  The result reproduces the structural features
    the paper's argument relies on: a richly connected transit mesh and a
    large stub fringe. *)

open Net

type params = {
  tier1_count : int;        (** backbone ASes, fully meshed *)
  tier2_count : int;        (** regional transit ASes *)
  tier2_uplinks : int;      (** providers each tier-2 AS buys from *)
  tier2_peering_prob : float;  (** probability of a lateral tier-2 peering *)
  stub_count : int;         (** edge ASes *)
  stub_multihome_prob : float;  (** probability a stub has a second provider *)
}

val default_params : params
(** 8 tier-1, 72 tier-2 (2 uplinks, 6% lateral peering), 640 stubs with a
    35% multi-homing probability: a few-hundred-AS Internet in miniature. *)

type internet = {
  graph : As_graph.t;
  tier1 : Asn.Set.t;
  tier2 : Asn.Set.t;
  stub : Asn.Set.t;
}
(** A generated topology with its ground-truth role assignment. *)

val generate : Mutil.Rng.t -> params -> internet
(** Grow a topology.  The result is connected by construction and
    deterministic in the generator state. *)

val transit_ases : internet -> Asn.Set.t
(** Ground-truth transit set: tier-1 union tier-2. *)
