(** AS business relationships (customer-provider and peer-peer).

    The paper's simulation routes on path length alone, but real BGP routes
    through Gao-Rexford policies; this module provides the relationship
    substrate for the policy-routing ablation.  Relationships come either
    from the synthetic generator's ground truth (tier edges) or from the
    classic degree heuristic when only a bare graph is available. *)

open Net

type relationship =
  | Customer  (** the neighbour pays us for transit *)
  | Provider  (** we pay the neighbour for transit *)
  | Peer      (** settlement-free lateral peering *)

val relationship_to_string : relationship -> string
(** Short label. *)

type t
(** Relationship assignment over a set of peerings. *)

val view : t -> self:Asn.t -> neighbor:Asn.t -> relationship option
(** [view t ~self ~neighbor] is the relationship of [neighbor] as seen from
    [self]; [None] when the edge is unknown to the assignment. *)

val of_ground_truth : Generate.internet -> t
(** Relationships implied by the generator's tiers: tier-1/tier-1 edges are
    peerings, every other inter-tier edge is provider-customer (the
    higher-tier AS is the provider), and tier-2 lateral edges are
    peerings. *)

val infer_by_degree : ?peer_ratio:float -> As_graph.t -> t
(** The degree heuristic (Gao 2001): on each edge the AS with markedly
    higher degree is the provider; degrees within [peer_ratio] (default
    1.25) of each other make the edge a peering. *)

val providers : t -> As_graph.t -> Asn.t -> Asn.Set.t
(** Neighbours that [asn] buys transit from. *)

val customers : t -> As_graph.t -> Asn.t -> Asn.Set.t
(** Neighbours that buy transit from [asn]. *)

val peers : t -> As_graph.t -> Asn.t -> Asn.Set.t
(** Settlement-free peers of [asn]. *)

val is_valley_free : t -> Asn.t list -> bool
(** Whether an AS path (first element nearest the observer) satisfies the
    valley-free rule: once the path goes over the top (provider-to-customer
    or peer step), it never climbs again. *)
