open Net

type path = Asn.t list

(* One BFS from the vantage, parents preferring low AS numbers, gives a
   deterministic shortest-path tree; reading parent chains back yields the
   table's AS paths. *)
let paths_from g ~vantage =
  if not (As_graph.mem_node g vantage) then []
  else begin
    let parent = ref Asn.Map.empty in
    let dist = ref (Asn.Map.singleton vantage 0) in
    let queue = Queue.create () in
    Queue.push vantage queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let du = Asn.Map.find u !dist in
      Asn.Set.iter
        (fun v ->
          if not (Asn.Map.mem v !dist) then begin
            dist := Asn.Map.add v (du + 1) !dist;
            parent := Asn.Map.add v u !parent;
            Queue.push v queue
          end)
        (As_graph.neighbors g u)
    done;
    let path_to dest =
      (* accumulating while climbing parent pointers yields the path already
         in neighbor-first order *)
      let rec climb u acc =
        if Asn.equal u vantage then acc
        else climb (Asn.Map.find u !parent) (u :: acc)
      in
      climb dest []
    in
    Asn.Map.fold
      (fun dest _ acc -> if Asn.equal dest vantage then acc else path_to dest :: acc)
      !dist []
    |> List.sort (fun a b ->
           match (List.rev a, List.rev b) with
           | origin_a :: _, origin_b :: _ -> Asn.compare origin_a origin_b
           | _ -> 0)
  end

let paths_from_vantages g ~vantages =
  let module PathSet = Set.Make (struct
    type t = Asn.t list

    let compare = compare
  end) in
  List.fold_left
    (fun acc v ->
      List.fold_left (fun acc p -> PathSet.add p acc) acc (paths_from g ~vantage:v))
    PathSet.empty vantages
  |> PathSet.elements
