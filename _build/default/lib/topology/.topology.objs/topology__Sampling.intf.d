lib/topology/sampling.mli: As_graph Asn Inference Mutil Net
