lib/topology/algorithms.mli: As_graph Asn Net
