lib/topology/inference.ml: As_graph Asn List Net
