lib/topology/generate.mli: As_graph Asn Mutil Net
