lib/topology/as_graph.ml: Asn Format List Net
