lib/topology/paper_topologies.ml: Algorithms As_graph Asn Generate Hashtbl Inference Int64 List Mutil Net Printf Route_table Sampling
