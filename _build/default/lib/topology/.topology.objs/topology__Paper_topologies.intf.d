lib/topology/paper_topologies.mli: As_graph Asn Net
