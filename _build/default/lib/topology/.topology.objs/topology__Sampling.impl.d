lib/topology/sampling.ml: Algorithms Array As_graph Asn Float Inference Mutil Net
