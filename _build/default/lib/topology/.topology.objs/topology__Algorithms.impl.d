lib/topology/algorithms.ml: As_graph Asn Hashtbl Int List Net Option Queue
