lib/topology/generate.ml: As_graph Asn List Mutil Net
