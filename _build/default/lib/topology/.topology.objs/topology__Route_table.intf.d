lib/topology/route_table.mli: As_graph Asn Net
