lib/topology/relationships.ml: As_graph Asn Generate List Map Net
