lib/topology/as_graph.mli: Asn Format Net
