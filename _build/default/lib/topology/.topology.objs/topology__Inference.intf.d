lib/topology/inference.mli: As_graph Asn Net Route_table
