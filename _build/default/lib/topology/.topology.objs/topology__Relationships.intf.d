lib/topology/relationships.mli: As_graph Asn Generate Net
