lib/topology/route_table.ml: As_graph Asn List Net Queue Set
