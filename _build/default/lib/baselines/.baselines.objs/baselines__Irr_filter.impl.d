lib/baselines/irr_filter.ml: Asn Bgp Mutil Net Prefix Set Topology
