lib/baselines/origin_auth.ml: Asn Attack Bgp List Net Prefix
