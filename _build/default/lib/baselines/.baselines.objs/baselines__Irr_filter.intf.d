lib/baselines/irr_filter.mli: Asn Bgp Mutil Net Prefix Topology
