lib/baselines/origin_auth.mli: Asn Bgp Net Prefix
