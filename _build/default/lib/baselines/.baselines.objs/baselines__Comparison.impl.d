lib/baselines/comparison.ml: Array Asn Attack Bgp Irr_filter List Moas Mutil Net Origin_auth Prefix Printf Topology
