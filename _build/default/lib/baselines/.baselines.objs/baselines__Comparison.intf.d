lib/baselines/comparison.mli: Asn Net Topology
