(** Cryptographic origin/path authentication in the style of S-BGP
    (Kent et al., the paper's reference [14]) — the related-work baseline
    the paper positions itself against.

    The model abstracts the cryptography: a PKI registry holds the
    authorised origin set per prefix (address attestations), and a route
    "verifies" unless it carries the {!Attack.Attacker.impersonation_marker}
    — the simulation's stand-in for signatures that do not check out.  An
    attacker who has compromised the key of an authorised AS can, however,
    produce verifying forgeries: that is the single-point-of-failure the
    paper's Section 6 argues MOAS lists avoid. *)

open Net

type t
(** A PKI instance shared by all validating routers. *)

val create : ?compromised_keys:Asn.Set.t -> unit -> t
(** A PKI; [compromised_keys] are ASes whose private keys leaked to the
    adversary. *)

val register : t -> Prefix.t -> Asn.Set.t -> unit
(** Record the address attestation: the origin set authorised for a
    prefix. *)

val compromise : t -> Asn.t -> unit
(** Mark an AS's key as held by the adversary. *)

val verifications : t -> int
(** Number of route verifications performed (every route, on every
    decision — unlike the MOAS scheme's on-conflict-only lookups). *)

val validator : t -> self:Asn.t -> Bgp.Router.validator
(** The per-router validation function: a candidate survives iff

    - its origin is authorised for the prefix (unknown prefixes fail open,
      as partial PKI coverage behaves), and
    - its signatures verify — i.e. it carries no impersonation marker, or
      the impersonated origin's key is compromised (the forgery then
      verifies perfectly and cannot be caught). *)
