open Net
module Rng = Mutil.Rng

module Record_set = Set.Make (struct
  type t = Prefix.t * Asn.t

  let compare (p1, a1) (p2, a2) =
    match Prefix.compare p1 p2 with
    | 0 -> Asn.compare a1 a2
    | c -> c
end)

type t = { mutable records : Record_set.t }

let create () = { records = Record_set.empty }

let register t prefix asn = t.records <- Record_set.add (prefix, asn) t.records

let register_set t prefix origins =
  Asn.Set.iter (fun asn -> register t prefix asn) origins

let drop_records rng t ~staleness =
  if staleness < 0.0 || staleness > 1.0 then
    invalid_arg "Irr_filter.drop_records: staleness out of [0,1]";
  t.records <-
    Record_set.filter (fun _ -> not (Rng.chance rng staleness)) t.records

let holds t prefix asn = Record_set.mem (prefix, asn) t.records

let record_count t = Record_set.cardinal t.records

let policy t ~relationships ~self =
  let import ~peer route =
    let from_customer =
      Topology.Relationships.view relationships ~self ~neighbor:peer
      = Some Topology.Relationships.Customer
    in
    if not from_customer then Some route
    else begin
      let origin = Bgp.Route.origin_as ~self route in
      if holds t route.Bgp.Route.prefix origin then Some route else None
    end
  in
  { Bgp.Policy.default with Bgp.Policy.import }
