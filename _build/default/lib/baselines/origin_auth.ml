open Net

type t = {
  mutable attestations : Asn.Set.t Prefix.Map.t;
  mutable compromised : Asn.Set.t;
  mutable verifications : int;
}

let create ?(compromised_keys = Asn.Set.empty) () =
  {
    attestations = Prefix.Map.empty;
    compromised = compromised_keys;
    verifications = 0;
  }

let register t prefix origins =
  t.attestations <- Prefix.Map.add prefix origins t.attestations

let compromise t asn = t.compromised <- Asn.Set.add asn t.compromised

let verifications t = t.verifications

let route_verifies t ~self route =
  t.verifications <- t.verifications + 1;
  let origin = Bgp.Route.origin_as ~self route in
  let origin_ok =
    match Prefix.Map.find_opt route.Bgp.Route.prefix t.attestations with
    | Some authorised -> Asn.Set.mem origin authorised
    | None -> true (* no attestation on file: fail open *)
  in
  let signature_ok =
    (not
       (Bgp.Community.Set.mem Attack.Attacker.impersonation_marker
          route.Bgp.Route.communities))
    || Asn.Set.mem origin t.compromised
  in
  origin_ok && signature_ok

let validator t ~self : Bgp.Router.validator =
 fun ~now:_ ~prefix:_ routes -> List.filter (route_verifies t ~self) routes
