(** Head-to-head comparison of the paper's MOAS-list scheme against the
    related-work defenses it discusses (Section 2 / Section 6):

    - plain BGP (no defense),
    - MOAS lists with full deployment (this paper),
    - S-BGP-style origin/path authentication, with intact and with
      compromised keys,
    - IRR-based customer filtering, with fresh and with stale registries.

    Two attack modes are run: the paper's false-origin announcement, and
    the path-forging impersonation that defeats origin checks.  The paper's
    argument (Section 6) is visible in the numbers: cryptography wins while
    keys are safe but fails closed on a single compromised key, whereas the
    topology-based check degrades gracefully. *)

open Net

type defense =
  | No_defense
  | Moas_full  (** the paper's mechanism, full deployment with MOASRR *)
  | Sbgp of Asn.Set.t  (** origin/path auth; the set holds compromised keys *)
  | Irr of float  (** customer filtering; the float is registry staleness *)

val defense_to_string : defense -> string
(** Report label. *)

type attack_mode =
  | False_origin  (** the paper's Section 5 attack *)
  | Impersonation  (** Section 4.3's manipulated-path attack *)

val attack_to_string : attack_mode -> string
(** Report label. *)

type result = {
  defense : defense;
  attack : attack_mode;
  mean_adopting : float;  (** over the runs *)
  mean_valid_loss : float;
      (** fraction of non-attacker ASes left with NO route to the victim
          prefix — collateral damage of over-filtering (IRR staleness) *)
  runs : int;
}

val head_to_head :
  ?seed:int64 ->
  ?runs:int ->
  ?n_attackers:int ->
  topology:Topology.Paper_topologies.t ->
  unit ->
  result list
(** Run every (defense, attack) pair over shared random scenarios. *)

val render : result list -> string
(** Text table of the comparison. *)
