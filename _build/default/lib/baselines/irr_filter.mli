(** Route filtering against Internet Routing Registry records — the
    paper's reference [21] baseline.

    Providers filter the announcements of their BGP customers against the
    registry: a customer may only announce (prefix, origin) pairs that have
    a record.  The approach's known weakness, which the paper cites, is
    registry staleness: records are voluntary, so a configurable fraction
    of legitimate pairs is missing — filtering then drops good routes —
    while the attacker is stopped only where its first transit hop actually
    filters. *)

open Net

type t
(** A registry instance. *)

val create : unit -> t
(** An empty registry. *)

val register : t -> Prefix.t -> Asn.t -> unit
(** Record that the AS may originate the prefix. *)

val register_set : t -> Prefix.t -> Asn.Set.t -> unit
(** Record several origins at once. *)

val drop_records : Mutil.Rng.t -> t -> staleness:float -> unit
(** Delete each record independently with probability [staleness],
    modelling outdated registry contents. *)

val holds : t -> Prefix.t -> Asn.t -> bool
(** Whether the (prefix, origin) record exists. *)

val record_count : t -> int
(** Number of live records. *)

val policy :
  t ->
  relationships:Topology.Relationships.t ->
  self:Asn.t ->
  Bgp.Policy.t
(** The filtering import policy of AS [self]: announcements from customers
    whose (prefix, origin) pair has no record are rejected; routes from
    peers and providers pass (the registry governs customer cones only, as
    reference [21] proposes). *)
