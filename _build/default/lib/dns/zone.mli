(** Resource records and authoritative zones. *)

open Net

type rdata =
  | A of Ipv4.t  (** address record *)
  | Ns of Domain.t  (** delegation to a name server *)
  | Moasrr of Asn.Set.t
      (** the paper's proposed record type: the origin ASes entitled to a
          prefix (Section 4.4) *)

val rdata_to_string : rdata -> string
(** Rendering for traces. *)

type rr = { name : Domain.t; ttl : int; rdata : rdata }
(** One resource record. *)

type t
(** An authoritative zone. *)

val create : apex:Domain.t -> t
(** An empty zone rooted at [apex]. *)

val apex : t -> Domain.t
(** The zone apex. *)

val add : t -> rr -> t
(** Add a record.  @raise Invalid_argument if the record's name is not at
    or under the apex. *)

type answer =
  | Answer of rr list  (** authoritative data for the query *)
  | Delegation of Domain.t * rr list
      (** the query belongs to a delegated child zone: NS records (and any
          glue A records the zone holds for those servers) *)
  | Name_error  (** authoritative denial *)

val lookup : t -> Domain.t -> qtype:[ `A | `Ns | `Moasrr ] -> answer
(** Authoritative lookup.  A delegation is returned when an NS record
    exists at a name strictly between the apex and the query name. *)

val records : t -> rr list
(** All records. *)
