open Net

type server = { name : Domain.t; address : Ipv4.t; zone : Zone.t }

type config = {
  roots : server list;
  servers : server list;
  reach : Ipv4.t -> bool;
  max_referrals : int;
}

let config ?(max_referrals = 16) ?(reach = fun _ -> true) ~roots ~servers () =
  if roots = [] then invalid_arg "Resolver.config: no root servers";
  { roots; servers; reach; max_referrals }

type qtype = [ `A | `Ns | `Moasrr ]

type cache_entry = { expires : float; records : Zone.rr list }

type t = {
  cfg : config;
  cache : (Domain.t * qtype, cache_entry) Hashtbl.t;
  mutable queries : int;
  mutable hits : int;
}

let create cfg = { cfg; cache = Hashtbl.create 64; queries = 0; hits = 0 }

type error = Unreachable of Domain.t | Nxdomain | No_data | Referral_limit

let error_to_string = function
  | Unreachable name -> "servers for " ^ Domain.to_string name ^ " unreachable"
  | Nxdomain -> "NXDOMAIN"
  | No_data -> "no data"
  | Referral_limit -> "referral limit exceeded"

let server_by_name t name =
  List.find_opt
    (fun s -> Domain.equal s.name name)
    (t.cfg.roots @ t.cfg.servers)

let min_ttl records =
  List.fold_left (fun acc rr -> min acc rr.Zone.ttl) max_int records

let cache_store t ~now key records =
  if records <> [] then
    Hashtbl.replace t.cache key
      { expires = now +. float_of_int (min_ttl records); records }

let cache_find t ~now key =
  match Hashtbl.find_opt t.cache key with
  | Some entry when entry.expires > now ->
    t.hits <- t.hits + 1;
    Some entry.records
  | Some _ ->
    Hashtbl.remove t.cache key;
    None
  | None -> None

(* contact one server: None when unreachable *)
let ask t server name ~qtype =
  if not (t.cfg.reach server.address) then None
  else begin
    t.queries <- t.queries + 1;
    Some (Zone.lookup server.zone name ~qtype)
  end

(* candidate servers for a delegation: resolve NS targets through glue or
   the global server directory (a simplification standing in for separate
   A-record resolution) *)
let servers_of_delegation t rrs =
  List.filter_map
    (fun rr ->
      match rr.Zone.rdata with
      | Zone.Ns server_name -> server_by_name t server_name
      | Zone.A _ | Zone.Moasrr _ -> None)
    rrs

let resolve t ~now name ~qtype =
  let key = (name, (qtype :> qtype)) in
  match cache_find t ~now key with
  | Some records -> Ok records
  | None ->
    let rec chase candidates budget =
      if budget < 0 then Error Referral_limit
      else begin
        (* try each candidate server in order; unreachable ones are skipped
           the way a real resolver fails over *)
        let rec try_servers = function
          | [] -> Error (Unreachable name)
          | server :: rest ->
            (match ask t server name ~qtype with
            | None -> try_servers rest
            | Some (Zone.Answer []) -> Error No_data
            | Some (Zone.Answer records) ->
              cache_store t ~now key records;
              Ok records
            | Some (Zone.Delegation (_, rrs)) ->
              (match servers_of_delegation t rrs with
              | [] -> Error (Unreachable name)
              | next -> chase next (budget - 1))
            | Some Zone.Name_error -> Error Nxdomain)
        in
        try_servers candidates
      end
    in
    chase t.cfg.roots t.cfg.max_referrals

let lookup_moasrr t ~now prefix =
  let name = Domain.reverse_of_prefix prefix in
  match resolve t ~now name ~qtype:`Moasrr with
  | Ok records ->
    let origins =
      List.fold_left
        (fun acc rr ->
          match rr.Zone.rdata with
          | Zone.Moasrr origins -> Asn.Set.union origins acc
          | Zone.A _ | Zone.Ns _ -> acc)
        Asn.Set.empty records
    in
    if Asn.Set.is_empty origins then Ok None else Ok (Some origins)
  | Error No_data -> Ok None
  | Error e -> Error e

let queries_sent t = t.queries
let cache_hits t = t.hits
let flush_cache t = Hashtbl.reset t.cache
