open Net

type rdata = A of Ipv4.t | Ns of Domain.t | Moasrr of Asn.Set.t

let rdata_to_string = function
  | A addr -> "A " ^ Ipv4.to_string addr
  | Ns name -> "NS " ^ Domain.to_string name
  | Moasrr origins ->
    "MOASRR "
    ^ String.concat "," (List.map Asn.to_string (Asn.Set.elements origins))

type rr = { name : Domain.t; ttl : int; rdata : rdata }

type t = { apex : Domain.t; by_name : rr list Domain.Map.t }

let create ~apex = { apex; by_name = Domain.Map.empty }

let apex t = t.apex

let add t rr =
  if not (Domain.is_suffix ~suffix:t.apex rr.name) then
    invalid_arg
      (Printf.sprintf "Zone.add: %s outside zone %s"
         (Domain.to_string rr.name)
         (Domain.to_string t.apex));
  {
    t with
    by_name =
      Domain.Map.update rr.name
        (fun existing -> Some (Option.value ~default:[] existing @ [ rr ]))
        t.by_name;
  }

let matches_qtype qtype rr =
  match (qtype, rr.rdata) with
  | `A, A _ | `Ns, Ns _ | `Moasrr, Moasrr _ -> true
  | _ -> false

type answer = Answer of rr list | Delegation of Domain.t * rr list | Name_error

(* the chain of names from the apex (exclusive) down to [name] (inclusive) *)
let names_towards t name =
  let apex_depth = List.length (Domain.labels t.apex) in
  let rec collect n acc =
    if List.length (Domain.labels n) <= apex_depth then acc
    else
      match Domain.parent n with
      | Some p -> collect p (n :: acc)
      | None -> acc
  in
  collect name []

let lookup t name ~qtype =
  if not (Domain.is_suffix ~suffix:t.apex name) then Name_error
  else begin
    (* a delegation point strictly above the query name wins *)
    let cut =
      List.find_opt
        (fun n ->
          (not (Domain.equal n name))
          &&
          match Domain.Map.find_opt n t.by_name with
          | Some rrs -> List.exists (matches_qtype `Ns) rrs
          | None -> false)
        (names_towards t name)
    in
    match cut with
    | Some cut_name ->
      let ns_records =
        List.filter (matches_qtype `Ns)
          (Option.value ~default:[] (Domain.Map.find_opt cut_name t.by_name))
      in
      (* glue: A records the zone happens to hold for the named servers *)
      let glue =
        List.concat_map
          (fun rr ->
            match rr.rdata with
            | Ns server -> (
              match Domain.Map.find_opt server t.by_name with
              | Some rrs -> List.filter (matches_qtype `A) rrs
              | None -> [])
            | A _ | Moasrr _ -> [])
          ns_records
      in
      Delegation (cut_name, ns_records @ glue)
    | None ->
      (match Domain.Map.find_opt name t.by_name with
      | Some rrs ->
        (match List.filter (matches_qtype qtype) rrs with
        | [] -> Answer [] (* name exists, no data of that type *)
        | found -> Answer found)
      | None -> Name_error)
  end

let records t =
  Domain.Map.fold (fun _ rrs acc -> acc @ rrs) t.by_name []
