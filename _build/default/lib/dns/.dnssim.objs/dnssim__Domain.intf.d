lib/dns/domain.mli: Format Map Net
