lib/dns/resolver.ml: Asn Domain Hashtbl Ipv4 List Net Zone
