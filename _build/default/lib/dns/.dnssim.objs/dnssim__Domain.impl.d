lib/dns/domain.ml: Format Ipv4 List Map Net Prefix Stdlib String
