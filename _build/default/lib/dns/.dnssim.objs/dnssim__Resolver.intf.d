lib/dns/resolver.mli: Asn Domain Ipv4 Net Prefix Zone
