lib/dns/zone.ml: Asn Domain Ipv4 List Net Option Printf String
