lib/dns/zone.mli: Asn Domain Ipv4 Net
