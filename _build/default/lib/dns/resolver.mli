(** An iterative DNS resolver with a TTL cache and a reachability hook.

    The hook is the point of the module: every query to a name server
    first has to REACH that server, and reachability is supplied by the
    caller — in the MOAS experiments it follows the querying AS's own BGP
    forwarding.  This models the circular dependency the paper raises
    against DNS-based origin verification ("given that DNS operations rely
    on the routing to function correctly...", Section 2): a hijack that
    captures the name server's prefix silently breaks the verification
    channel. *)

open Net

type server = { name : Domain.t; address : Ipv4.t; zone : Zone.t }
(** An authoritative server instance. *)

type config = {
  roots : server list;  (** root hints *)
  servers : server list;  (** every other authoritative server *)
  reach : Ipv4.t -> bool;
      (** can the resolver currently reach this server address? *)
  max_referrals : int;  (** delegation-chase budget (default 16) *)
}

val config :
  ?max_referrals:int ->
  ?reach:(Ipv4.t -> bool) ->
  roots:server list ->
  servers:server list ->
  unit ->
  config
(** Build a configuration; by default everything is reachable. *)

type t
(** Resolver state (cache and counters). *)

val create : config -> t
(** A fresh resolver. *)

type error =
  | Unreachable of Domain.t
      (** every candidate server for this step was unreachable *)
  | Nxdomain
  | No_data
  | Referral_limit

val error_to_string : error -> string
(** Rendering. *)

val resolve :
  t -> now:float -> Domain.t -> qtype:[ `A | `Ns | `Moasrr ] ->
  (Zone.rr list, error) result
(** Iteratively resolve a query, chasing delegations from the roots and
    consulting the cache.  Positive answers are cached until their TTL
    expires ([now] is the clock). *)

val lookup_moasrr :
  t -> now:float -> Prefix.t -> (Asn.Set.t option, error) result
(** The paper's verification query: the MOASRR record set for a prefix's
    in-addr.arpa name.  [Ok None] means the name resolved but carries no
    MOASRR (fail-open case). *)

val queries_sent : t -> int
(** Server contacts attempted (cache hits excluded). *)

val cache_hits : t -> int
(** Answers served from cache. *)

val flush_cache : t -> unit
(** Drop all cached answers. *)
