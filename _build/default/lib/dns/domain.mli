(** DNS domain names for the MOASRR substrate (paper Section 4.4 proposes
    storing origin authorisations in the DNS; Section 2 criticises the
    approach's circular dependency on routing, which {!Resolver} models). *)

type t
(** A fully qualified name; comparison is case-insensitive. *)

val root : t
(** The DNS root ("."). *)

val of_string : string -> t
(** Parse ["www.example.com"] (an optional trailing dot is accepted).
    @raise Invalid_argument on empty labels or labels over 63 octets. *)

val to_string : t -> string
(** Canonical lower-case rendering without the trailing dot (["."] for the
    root). *)

val labels : t -> string list
(** Labels, least significant first (["www"; "example"; "com"]). *)

val of_labels : string list -> t
(** Inverse of {!labels}. *)

val parent : t -> t option
(** The name with its first label removed; [None] for the root. *)

val is_suffix : suffix:t -> t -> bool
(** [is_suffix ~suffix name]: [name] equals or lies under [suffix]
    (every name lies under the root). *)

val prepend : string -> t -> t
(** [prepend label name] is [label.name]. *)

val compare : t -> t -> int
(** Total order (canonical form). *)

val equal : t -> t -> bool
(** Case-insensitive equality. *)

val reverse_of_prefix : Net.Prefix.t -> t
(** The in-addr.arpa name under which a prefix's MOASRR record lives,
    using one label per significant octet: [10.2.0.0/16] maps to
    ["2.10.in-addr.arpa"]. *)

val pp : Format.formatter -> t -> unit
(** Pretty printer. *)

module Map : Map.S with type key = t
