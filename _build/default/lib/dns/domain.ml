(* labels stored least significant first, lower-cased *)
type t = string list

let root = []

let normalize_label label =
  if label = "" then invalid_arg "Domain: empty label";
  if String.length label > 63 then invalid_arg "Domain: label too long";
  String.lowercase_ascii label

let of_labels labels = List.map normalize_label labels

let of_string s =
  let s =
    if String.length s > 0 && s.[String.length s - 1] = '.' then
      String.sub s 0 (String.length s - 1)
    else s
  in
  if s = "" || s = "." then root
  else of_labels (String.split_on_char '.' s)

let to_string = function
  | [] -> "."
  | labels -> String.concat "." labels

let labels t = t

let parent = function
  | [] -> None
  | _ :: rest -> Some rest

let rec is_suffix ~suffix name =
  match (suffix, name) with
  | [], _ -> true
  | _, [] -> false
  | _ ->
    let ls = List.length suffix and ln = List.length name in
    if ls > ln then false
    else if ls = ln then suffix = name
    else
      (match name with
      | _ :: rest -> is_suffix ~suffix rest
      | [] -> false)

let prepend label t = normalize_label label :: t

let compare = Stdlib.compare
let equal a b = compare a b = 0

let reverse_of_prefix prefix =
  let open Net in
  let a, b, c, d = Ipv4.to_octets (Prefix.network prefix) in
  let significant = (Prefix.length prefix + 7) / 8 in
  let kept = List.filteri (fun i _ -> i < significant) [ a; b; c; d ] in
  (* in-addr.arpa reverses the octet order; labels are stored least
     significant first, so the most specific octet leads *)
  of_labels (List.map string_of_int (List.rev kept) @ [ "in-addr"; "arpa" ])

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
