(** Incident management on top of raw alarms.

    The paper stops at "generate an alarm signal; further investigation
    should be conducted" (Section 4.2).  An operational deployment needs
    the layer this module provides: alarms from many routers about the
    same prefix are aggregated into a single {e incident} with a
    lifecycle, duplicate notifications are suppressed, and incidents
    resolve when the conflict stops being observed — the shape later
    systems (e.g. PHAS) standardised. *)

open Net

type severity = Info | Warning | Critical

val severity_to_string : severity -> string
(** Report label. *)

type incident = {
  id : int;  (** monotonically increasing *)
  prefix : Prefix.t;
  opened_at : float;
  mutable last_alarm_at : float;
  mutable alarm_count : int;  (** alarms folded into this incident *)
  mutable observers : Asn.Set.t;  (** ASes that reported it *)
  mutable origins_implicated : Asn.Set.t;
  mutable severity : severity;
  mutable resolved_at : float option;
}

type notification = {
  at : float;
  incident_id : int;
  event : [ `Opened | `Escalated of severity | `Resolved ];
}

type t
(** The service state. *)

val create : ?escalation_observers:int -> unit -> t
(** A fresh service.  An incident escalates from [Warning] to [Critical]
    once at least [escalation_observers] distinct ASes have reported it
    (default 3) — one confused router is noise, many are an event. *)

val ingest : t -> Alarm.t -> unit
(** Fold one alarm in: opens a new incident for a prefix without a live
    one, otherwise updates the existing incident.  Emits notifications on
    open and on escalation only (repeat alarms are silent). *)

val resolve_quiet : t -> now:float -> idle_for:float -> int
(** Resolve every live incident whose last alarm is older than
    [idle_for]; returns how many were resolved (each emits a [`Resolved]
    notification). *)

val live_incidents : t -> incident list
(** Unresolved incidents, oldest first. *)

val all_incidents : t -> incident list
(** Every incident ever opened, oldest first. *)

val notifications : t -> notification list
(** Notification log, oldest first. *)

val incident_for : t -> Prefix.t -> incident option
(** The live incident for a prefix, if any. *)

val summary : t -> string
(** One-paragraph operational summary. *)
