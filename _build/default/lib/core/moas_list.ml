open Net

let ml_val = 0xff02

let member_community asn = Bgp.Community.make asn ml_val

let encode ases =
  Asn.Set.fold
    (fun asn acc -> Bgp.Community.Set.add (member_community asn) acc)
    ases Bgp.Community.Set.empty

let decode communities =
  let members =
    Bgp.Community.Set.fold
      (fun c acc ->
        if c.Bgp.Community.value = ml_val then Asn.Set.add c.Bgp.Community.asn acc
        else acc)
      communities Asn.Set.empty
  in
  if Asn.Set.is_empty members then None else Some members

let strip communities =
  Bgp.Community.Set.filter (fun c -> c.Bgp.Community.value <> ml_val) communities

let attach ases communities =
  Bgp.Community.Set.union (encode ases) (strip communities)

let effective ~self route =
  match decode route.Bgp.Route.communities with
  | Some members -> members
  | None ->
    (* footnote 3: no list means the implicit list {origin}; a route whose
       path ends in an AS_SET (aggregation) implies the whole set *)
    let candidates = Bgp.As_path.origin_candidates route.Bgp.Route.as_path in
    if Asn.Set.is_empty candidates then
      Asn.Set.singleton (Bgp.Route.origin_as ~self route)
    else candidates

let consistent a b = Asn.Set.equal a b

let all_consistent = function
  | [] | [ _ ] -> true
  | first :: rest -> List.for_all (consistent first) rest

let self_consistent ~self route =
  match decode route.Bgp.Route.communities with
  | None -> true
  | Some members -> Asn.Set.mem (Bgp.Route.origin_as ~self route) members

let to_string ases =
  "{" ^ String.concat "," (List.map Asn.to_string (Asn.Set.elements ases)) ^ "}"
