(** The MOAS list (Section 4.1-4.2): the set of ASes entitled to originate
    a prefix, carried in the BGP community attribute.  One of the 2^16
    values of the community's final two octets is reserved to mean "the AS
    in the first two octets may originate this route"; the paper calls it
    [MLVal]. *)

open Net

val ml_val : int
(** The reserved MOAS List Value (an arbitrary but fixed 16-bit constant,
    as the paper leaves the concrete value to IANA). *)

val member_community : Asn.t -> Bgp.Community.t
(** [(X : MLVal)]: AS X may originate the route. *)

val encode : Asn.Set.t -> Bgp.Community.Set.t
(** The communities encoding a MOAS list. *)

val decode : Bgp.Community.Set.t -> Asn.Set.t option
(** Extract the MOAS list from a route's communities; [None] when no
    [MLVal] community is present (the route carries no list). *)

val attach : Asn.Set.t -> Bgp.Community.Set.t -> Bgp.Community.Set.t
(** Add a MOAS list to existing communities, replacing any previous list. *)

val strip : Bgp.Community.Set.t -> Bgp.Community.Set.t
(** Remove every [MLVal] community (a router dropping the optional
    attribute, or an attacker erasing the list). *)

val effective : self:Asn.t -> Bgp.Route.t -> Asn.Set.t
(** The list a checker must use for a route: the decoded MOAS list, or the
    implicit singleton [{origin AS}] when the route carries none (the
    paper's footnote 3).  [self] resolves the origin of locally originated
    routes. *)

val consistent : Asn.Set.t -> Asn.Set.t -> bool
(** Set equality: the paper's consistency criterion — same ASes, order
    irrelevant. *)

val all_consistent : Asn.Set.t list -> bool
(** Whether every list in a collection agrees ([true] for zero or one). *)

val self_consistent : self:Asn.t -> Bgp.Route.t -> bool
(** Whether the route's own origin appears in the list it carries — a
    purely local sanity check that catches an attacker announcing a list
    that omits itself. *)

val to_string : Asn.Set.t -> string
(** E.g. ["{AS1,AS2}"]. *)
