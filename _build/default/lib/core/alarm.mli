(** Alarms raised when a router observes inconsistent MOAS lists for the
    same prefix (Section 4.2: "it should generate an alarm signal"). *)

open Net

type t = {
  observer : Asn.t;        (** the AS whose router noticed the conflict *)
  prefix : Prefix.t;       (** the contested prefix *)
  time : float;            (** simulation time of detection *)
  conflicting_lists : Asn.Set.t list;
      (** the distinct MOAS lists seen, sorted for reproducibility *)
  origins_seen : Asn.Set.t;  (** every origin AS across the candidates *)
}

val make :
  observer:Asn.t ->
  prefix:Prefix.t ->
  time:float ->
  conflicting_lists:Asn.Set.t list ->
  origins_seen:Asn.Set.t ->
  t
(** Build an alarm, normalising the list order. *)

val signature : t -> string
(** A canonical rendering of (prefix, conflicting lists) used to
    de-duplicate repeated alarms for the same conflict. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-liner. *)

val to_string : t -> string
(** {!pp} as a string. *)
