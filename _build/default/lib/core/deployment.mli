(** Deployment plans: which ASes run the MOAS consistency check.  The paper
    evaluates full deployment (Experiments 1-2), a random half of the
    network (Experiment 3), and implicitly no deployment ("Normal BGP"). *)

open Net

type t =
  | Disabled  (** plain BGP everywhere — the paper's baseline *)
  | Full  (** every AS checks MOAS lists *)
  | Fraction of float
      (** a random fraction of ASes checks (0.5 in Experiment 3) *)
  | Exactly of Asn.Set.t  (** an explicit capable set, for tests *)

val to_string : t -> string
(** Short label, e.g. ["Full MOAS Detection"]. *)

val capable_set : Mutil.Rng.t -> Asn.Set.t -> t -> Asn.Set.t
(** [capable_set rng all plan] chooses the ASes that can process MOAS
    lists.  [Fraction f] rounds [f * |all|] to the nearest integer and
    samples uniformly; [Exactly s] is intersected with [all]. *)
