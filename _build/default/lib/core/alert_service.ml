open Net

type severity = Info | Warning | Critical

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Critical -> "critical"

type incident = {
  id : int;
  prefix : Prefix.t;
  opened_at : float;
  mutable last_alarm_at : float;
  mutable alarm_count : int;
  mutable observers : Asn.Set.t;
  mutable origins_implicated : Asn.Set.t;
  mutable severity : severity;
  mutable resolved_at : float option;
}

type notification = {
  at : float;
  incident_id : int;
  event : [ `Opened | `Escalated of severity | `Resolved ];
}

type t = {
  escalation_observers : int;
  mutable next_id : int;
  mutable live : incident Prefix.Map.t;
  mutable closed_rev : incident list;
  mutable notifications_rev : notification list;
}

let create ?(escalation_observers = 3) () =
  if escalation_observers < 1 then
    invalid_arg "Alert_service.create: need at least one observer";
  {
    escalation_observers;
    next_id = 1;
    live = Prefix.Map.empty;
    closed_rev = [];
    notifications_rev = [];
  }

let notify t ~at ~incident_id event =
  t.notifications_rev <- { at; incident_id; event } :: t.notifications_rev

let ingest t (alarm : Alarm.t) =
  let prefix = alarm.Alarm.prefix in
  match Prefix.Map.find_opt prefix t.live with
  | Some incident ->
    incident.last_alarm_at <- max incident.last_alarm_at alarm.Alarm.time;
    incident.alarm_count <- incident.alarm_count + 1;
    incident.observers <- Asn.Set.add alarm.Alarm.observer incident.observers;
    incident.origins_implicated <-
      Asn.Set.union incident.origins_implicated alarm.Alarm.origins_seen;
    if
      incident.severity <> Critical
      && Asn.Set.cardinal incident.observers >= t.escalation_observers
    then begin
      incident.severity <- Critical;
      notify t ~at:alarm.Alarm.time ~incident_id:incident.id
        (`Escalated Critical)
    end
  | None ->
    let incident =
      {
        id = t.next_id;
        prefix;
        opened_at = alarm.Alarm.time;
        last_alarm_at = alarm.Alarm.time;
        alarm_count = 1;
        observers = Asn.Set.singleton alarm.Alarm.observer;
        origins_implicated = alarm.Alarm.origins_seen;
        severity = Warning;
        resolved_at = None;
      }
    in
    t.next_id <- t.next_id + 1;
    t.live <- Prefix.Map.add prefix incident t.live;
    notify t ~at:alarm.Alarm.time ~incident_id:incident.id `Opened

let resolve_quiet t ~now ~idle_for =
  if idle_for < 0.0 then invalid_arg "Alert_service.resolve_quiet: negative idle";
  let resolved = ref 0 in
  t.live <-
    Prefix.Map.filter
      (fun _ incident ->
        if now -. incident.last_alarm_at >= idle_for then begin
          incident.resolved_at <- Some now;
          t.closed_rev <- incident :: t.closed_rev;
          notify t ~at:now ~incident_id:incident.id `Resolved;
          incr resolved;
          false
        end
        else true)
      t.live;
  !resolved

let by_id a b = Int.compare a.id b.id

let live_incidents t =
  Prefix.Map.fold (fun _ i acc -> i :: acc) t.live [] |> List.sort by_id

let all_incidents t =
  (live_incidents t @ t.closed_rev) |> List.sort by_id

let notifications t = List.rev t.notifications_rev

let incident_for t prefix = Prefix.Map.find_opt prefix t.live

let summary t =
  let live = live_incidents t in
  let critical = List.filter (fun i -> i.severity = Critical) live in
  Printf.sprintf
    "%d live incident(s) (%d critical), %d resolved, %d notification(s) sent"
    (List.length live) (List.length critical)
    (List.length t.closed_rev)
    (List.length t.notifications_rev)
