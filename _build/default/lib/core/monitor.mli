(** The off-line deployment path of Section 4.2: a monitoring process that
    periodically downloads BGP routing messages (or full tables via the BGP
    MIB) from multiple peers and checks MOAS list consistency across them,
    with no router modification at all.

    The monitor keeps, per prefix, the latest route seen from each feed and
    reports a finding whenever the effective MOAS lists across feeds
    disagree. *)

open Net

type finding = {
  prefix : Prefix.t;
  first_seen : float;  (** time the conflict was first observable *)
  distinct_lists : Asn.Set.t list;  (** the disagreeing lists, sorted *)
  origins : Asn.Set.t;  (** origin ASes involved *)
  feeds : Asn.Set.t;  (** the peers whose routes exposed the conflict *)
}

type t
(** Mutable monitor state. *)

val create : unit -> t
(** A fresh monitor with no feeds observed. *)

val observe_route : t -> time:float -> feed:Asn.t -> Bgp.Route.t -> unit
(** Ingest one route of a feed's table or message stream. *)

val observe_withdraw : t -> time:float -> feed:Asn.t -> Prefix.t -> unit
(** The feed no longer carries the prefix. *)

val observe_update : t -> time:float -> feed:Asn.t -> Bgp.Update.t -> unit
(** Ingest one UPDATE message from a feed. *)

val observe_table : t -> time:float -> feed:Asn.t -> Bgp.Route.t list -> unit
(** Ingest a full table snapshot from a feed, replacing its previous one. *)

val findings : t -> finding list
(** Current conflicts, ordered by prefix.  Conflicts that have disappeared
    (e.g. the bogus route was withdrawn) are no longer reported. *)

val all_findings_ever : t -> finding list
(** Every conflict observed since creation, including resolved ones,
    ordered by first detection time. *)

val prefixes_tracked : t -> int
(** Number of prefixes with at least one live route across feeds. *)
