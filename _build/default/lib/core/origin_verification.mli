(** The origin-verification step of Section 4.4: once an alarm is raised,
    the router (or operator) determines which origin ASes are entitled to
    the prefix.  The paper proposes a DNS lookup of a [MOASRR] resource
    record; here the DNS is modelled as an authoritative registry with
    query accounting, which preserves the interface while letting the
    benchmarks count how often BGP would actually hit the DNS (the paper's
    point: only on conflicts). *)

open Net

type t
(** A registry instance (one global DNS, shared by every router). *)

val create : unit -> t
(** An empty registry. *)

val register : t -> Prefix.t -> Asn.Set.t -> unit
(** Record the entitled origin set for a prefix (overwrites). *)

val unregister : t -> Prefix.t -> unit
(** Drop a prefix's record. *)

val query : t -> Prefix.t -> Asn.Set.t option
(** Look up the MOASRR record, counting the query; [None] when the prefix
    has no record (verification impossible — the checker must fail open). *)

val peek : t -> Prefix.t -> Asn.Set.t option
(** Like {!query} but without counting (for tests and reports). *)

val entitled : t -> Prefix.t -> Asn.t -> bool
(** [entitled t p asn] — counts one query; [false] when no record exists
    or the AS is absent from it. *)

val query_count : t -> int
(** Number of counted lookups so far. *)

val reset_query_count : t -> unit
(** Zero the counter (between experiment phases). *)
