open Net
module Rng = Mutil.Rng

type t = Disabled | Full | Fraction of float | Exactly of Asn.Set.t

let to_string = function
  | Disabled -> "Normal BGP"
  | Full -> "Full MOAS Detection"
  | Fraction f -> Printf.sprintf "%.0f%% MOAS Detection" (100.0 *. f)
  | Exactly s -> Printf.sprintf "MOAS Detection at %d ASes" (Asn.Set.cardinal s)

let capable_set rng all = function
  | Disabled -> Asn.Set.empty
  | Full -> all
  | Exactly s -> Asn.Set.inter s all
  | Fraction f ->
    if f < 0.0 || f > 1.0 then
      invalid_arg "Deployment.capable_set: fraction out of [0,1]";
    let universe = Array.of_list (Asn.Set.elements all) in
    let count =
      int_of_float (Float.round (f *. float_of_int (Array.length universe)))
    in
    Asn.Set.of_list (Array.to_list (Rng.sample rng universe count))
