open Net

type t = {
  mutable records : Asn.Set.t Prefix.Map.t;
  mutable queries : int;
}

let create () = { records = Prefix.Map.empty; queries = 0 }

let register t prefix origins =
  t.records <- Prefix.Map.add prefix origins t.records

let unregister t prefix = t.records <- Prefix.Map.remove prefix t.records

let peek t prefix = Prefix.Map.find_opt prefix t.records

let query t prefix =
  t.queries <- t.queries + 1;
  peek t prefix

let entitled t prefix asn =
  match query t prefix with
  | Some origins -> Asn.Set.mem asn origins
  | None -> false

let query_count t = t.queries

let reset_query_count t = t.queries <- 0
