(** The per-router MOAS conflict detector — the paper's core mechanism
    (Section 4.2), packaged as a {!Bgp.Router.validator}.

    On every decision the detector compares the MOAS lists of all candidate
    routes for the prefix (a route without a list counts as carrying the
    implicit list [{origin}], footnote 3).  When the lists disagree it
    raises an {!Alarm.t}; if an origin-verification backend is available
    ([verify] takes precedence over [oracle] when both are given)
    it then discards every candidate whose origin is not entitled, which
    stops the false route from being selected or propagated — the behaviour
    assumed in the paper's Experiment 1.  Without a backend the detector
    is detect-only: it alarms but lets BGP proceed (the off-line monitoring
    deployment of Section 4.2). *)

open Net

type t
(** Detector state for one router. *)

type verify = now:float -> Prefix.t -> Asn.Set.t option
(** A pluggable origin-verification backend: the entitled origin set for
    the prefix, or [None] when no verdict can be obtained (the detector
    then fails open).  {!Origin_verification} and a DNS MOASRR lookup are
    the two backends used in the experiments. *)

val create :
  ?oracle:Origin_verification.t ->
  ?verify:verify ->
  ?on_alarm:(Alarm.t -> unit) ->
  ?check_self_consistency:bool ->
  self:Asn.t ->
  unit ->
  t
(** A detector for the router of AS [self].  [on_alarm] is invoked once per
    distinct conflict signature (repeated BGP churn over the same conflict
    does not re-alarm).  [check_self_consistency] (default true) also
    rejects routes whose carried list omits their own origin — a local
    check needing no second opinion. *)

val validator : t -> Bgp.Router.validator
(** The validation function to install on the router. *)

val alarms : t -> Alarm.t list
(** Alarms raised so far, oldest first. *)

val alarm_count : t -> int
(** Number of alarms raised. *)

val reset : t -> unit
(** Forget alarms and de-duplication state. *)
