lib/core/monitor.ml: Asn Bgp Hashtbl List Moas_list Net Option Prefix Printf String
