lib/core/detector.mli: Alarm Asn Bgp Net Obs Origin_verification Prefix
