lib/core/detector.mli: Alarm Asn Bgp Net Origin_verification Prefix
