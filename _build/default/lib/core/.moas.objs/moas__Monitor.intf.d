lib/core/monitor.mli: Asn Bgp Net Prefix
