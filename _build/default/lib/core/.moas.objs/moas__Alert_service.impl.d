lib/core/alert_service.ml: Alarm Asn Int List Net Prefix Printf
