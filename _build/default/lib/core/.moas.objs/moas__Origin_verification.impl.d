lib/core/origin_verification.ml: Asn Net Prefix
