lib/core/detector.ml: Alarm Asn Bgp List Moas_list Net Obs Origin_verification Prefix Set String
