lib/core/moas_list.mli: Asn Bgp Net
