lib/core/alarm.mli: Asn Format Net Prefix
