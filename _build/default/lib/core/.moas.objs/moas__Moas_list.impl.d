lib/core/moas_list.ml: Asn Bgp List Net String
