lib/core/alert_service.mli: Alarm Asn Net Prefix
