lib/core/origin_verification.mli: Asn Net Prefix
