lib/core/deployment.mli: Asn Mutil Net
