lib/core/deployment.ml: Array Asn Float Mutil Net Printf
