lib/core/alarm.ml: Asn Format List Moas_list Net Prefix Printf String
