open Net

type t = {
  observer : Asn.t;
  prefix : Prefix.t;
  time : float;
  conflicting_lists : Asn.Set.t list;
  origins_seen : Asn.Set.t;
}

let make ~observer ~prefix ~time ~conflicting_lists ~origins_seen =
  let sorted = List.sort Asn.Set.compare conflicting_lists in
  { observer; prefix; time; conflicting_lists = sorted; origins_seen }

let signature t =
  Printf.sprintf "%s|%s"
    (Prefix.to_string t.prefix)
    (String.concat ";" (List.map Moas_list.to_string t.conflicting_lists))

let pp fmt t =
  Format.fprintf fmt "ALARM at %a t=%.2f: prefix %a, conflicting MOAS lists %s"
    Asn.pp t.observer t.time Prefix.pp t.prefix
    (String.concat " vs " (List.map Moas_list.to_string t.conflicting_lists))

let to_string t = Format.asprintf "%a" pp t
