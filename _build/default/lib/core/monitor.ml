open Net

type finding = {
  prefix : Prefix.t;
  first_seen : float;
  distinct_lists : Asn.Set.t list;
  origins : Asn.Set.t;
  feeds : Asn.Set.t;
}

type t = {
  (* per prefix, the latest route from each feed *)
  mutable tables : Bgp.Route.t Asn.Map.t Prefix.Map.t;
  mutable history : finding list; (* reverse chronological *)
  mutable known_signatures : (string, unit) Hashtbl.t;
}

let create () =
  { tables = Prefix.Map.empty; history = []; known_signatures = Hashtbl.create 64 }

let conflict_of_entries prefix entries ~time =
  let routes = Asn.Map.bindings entries in
  let lists =
    List.map
      (fun (feed, route) -> Moas_list.effective ~self:feed route)
      routes
    |> List.sort_uniq Asn.Set.compare
  in
  if Moas_list.all_consistent lists then None
  else
    let origins =
      List.fold_left
        (fun acc (feed, route) ->
          Asn.Set.add (Bgp.Route.origin_as ~self:feed route) acc)
        Asn.Set.empty routes
    in
    let feeds =
      List.fold_left (fun acc (feed, _) -> Asn.Set.add feed acc) Asn.Set.empty
        routes
    in
    Some { prefix; first_seen = time; distinct_lists = lists; origins; feeds }

let signature finding =
  Printf.sprintf "%s|%s"
    (Prefix.to_string finding.prefix)
    (String.concat ";" (List.map Moas_list.to_string finding.distinct_lists))

let check t ~time prefix =
  match Prefix.Map.find_opt prefix t.tables with
  | None -> ()
  | Some entries ->
    (match conflict_of_entries prefix entries ~time with
    | None -> ()
    | Some finding ->
      let s = signature finding in
      if not (Hashtbl.mem t.known_signatures s) then begin
        Hashtbl.add t.known_signatures s ();
        t.history <- finding :: t.history
      end)

let observe_route t ~time ~feed route =
  let prefix = route.Bgp.Route.prefix in
  t.tables <-
    Prefix.Map.update prefix
      (fun entries ->
        Some (Asn.Map.add feed route (Option.value ~default:Asn.Map.empty entries)))
      t.tables;
  check t ~time prefix

let observe_withdraw t ~time:_ ~feed prefix =
  t.tables <-
    Prefix.Map.update prefix
      (function
        | Some entries ->
          let entries = Asn.Map.remove feed entries in
          if Asn.Map.is_empty entries then None else Some entries
        | None -> None)
      t.tables

let observe_update t ~time ~feed (update : Bgp.Update.t) =
  match update.Bgp.Update.payload with
  | Bgp.Update.Announce route -> observe_route t ~time ~feed route
  | Bgp.Update.Withdraw prefix -> observe_withdraw t ~time ~feed prefix

let observe_table t ~time ~feed routes =
  (* drop the feed's previous snapshot, then ingest the new one *)
  t.tables <-
    Prefix.Map.filter_map
      (fun _ entries ->
        let entries = Asn.Map.remove feed entries in
        if Asn.Map.is_empty entries then None else Some entries)
      t.tables;
  List.iter (observe_route t ~time ~feed) routes

let findings t =
  Prefix.Map.fold
    (fun prefix entries acc ->
      match conflict_of_entries prefix entries ~time:0.0 with
      | Some f -> f :: acc
      | None -> acc)
    t.tables []
  |> List.rev

let all_findings_ever t = List.rev t.history

let prefixes_tracked t = Prefix.Map.cardinal t.tables
