(* The off-line deployment path of Section 4.2: no router modification at
   all.  A monitoring process periodically downloads the routing tables of
   several peers (here: the Loc-RIBs of a few vantage routers in the
   simulation) and checks MOAS list consistency across them.

   Run with: dune exec examples/offline_monitor.exe *)

open Net
module Rng = Mutil.Rng

let prefix = Prefix.of_string "192.0.2.0/24"

let table_of network asn =
  List.map snd
    (Bgp.Rib.best_bindings (Bgp.Router.rib (Bgp.Network.router network asn)))

let () =
  let topology = Topology.Paper_topologies.topology_46 () in
  let graph = topology.Topology.Paper_topologies.graph in
  let rng = Rng.of_int 11 in
  let stubs =
    Array.of_list (Asn.Set.elements topology.Topology.Paper_topologies.stub)
  in
  let origin1 = Rng.pick rng stubs in
  let origin2 =
    let rec draw () =
      let c = Rng.pick rng stubs in
      if Asn.equal c origin1 then draw () else c
    in
    draw ()
  in
  let attacker =
    Rng.pick rng
      (Array.of_list
         (Asn.Set.elements
            (Asn.Set.diff (Topology.As_graph.nodes graph)
               (Asn.Set.of_list [ origin1; origin2 ]))))
  in
  (* plain BGP network: NO router checks anything *)
  let network = Bgp.Network.make graph in
  let moas_list = Asn.Set.of_list [ origin1; origin2 ] in
  let communities = Moas.Moas_list.encode moas_list in
  Bgp.Network.originate ~at:0.0 ~communities network origin1 prefix;
  Bgp.Network.originate ~at:0.0 ~communities network origin2 prefix;
  ignore (Bgp.Network.run network);

  (* the monitor polls every transit AS, the way the Oregon collector
     peered with a few dozen ISPs: breadth is what exposes conflicts that
     stay invisible from any single vantage *)
  let feeds = Asn.Set.elements topology.Topology.Paper_topologies.transit in
  Printf.printf "monitor feeds: %d transit ASes\n" (List.length feeds);
  let monitor = Moas.Monitor.create () in
  let poll time =
    List.iter
      (fun feed ->
        Moas.Monitor.observe_table monitor ~time ~feed (table_of network feed))
      feeds
  in
  poll 100.0;
  Printf.printf "after benign convergence: %d conflicts (valid MOAS is consistent)\n"
    (List.length (Moas.Monitor.findings monitor));

  (* now the fault: a false origination appears, still nobody on-path checks *)
  Bgp.Network.originate ~at:200.0 network attacker prefix;
  ignore (Bgp.Network.run network);
  poll 300.0;
  let findings = Moas.Monitor.findings monitor in
  Printf.printf "after the bogus origination by %s: %d conflict(s)\n"
    (Asn.to_string attacker) (List.length findings);
  List.iter
    (fun f ->
      Printf.printf "  conflict on %s: lists %s from feeds %s\n"
        (Prefix.to_string f.Moas.Monitor.prefix)
        (String.concat " vs "
           (List.map Moas.Moas_list.to_string f.Moas.Monitor.distinct_lists))
        (String.concat ","
           (List.map Asn.to_string (Asn.Set.elements f.Moas.Monitor.feeds))))
    findings;
  print_endline
    "-> the conflict is visible to a passive monitor with table access only:\n\
    \   the mechanism deploys without any BGP implementation change"
