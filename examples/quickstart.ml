(* Quickstart: the scenarios of the paper's Figures 1 and 3 on a five-AS
   topology.

   AS 4 originates 10.2.0.0/16 and everyone learns a route to it.  Then
   AS 52 falsely originates the same prefix (Figure 3): without MOAS
   checking AS X adopts the bogus shorter route; with MOAS checking it
   detects the conflict and keeps the valid one.

   Run with: dune exec examples/quickstart.exe *)

open Net

let prefix = Prefix.of_string "10.2.0.0/16"

(* Figure 1/3 topology: AS4 -- {AS Y, AS Z} -- AS X, and AS52 next to X. *)
let as4 = Asn.make 4
let as_y = Asn.make 7
let as_z = Asn.make 9
let as_x = Asn.make 11
let as52 = Asn.make 52

let graph =
  Topology.As_graph.of_edges
    [ (as4, as_y); (as4, as_z); (as_y, as_x); (as_z, as_x); (as52, as_x) ]

let show_route net asn =
  match Bgp.Network.best_route net asn prefix with
  | Some route ->
    Printf.printf "  %-5s best route: %s\n" (Asn.to_string asn)
      (Bgp.Route.to_string route)
  | None -> Printf.printf "  %-5s has no route\n" (Asn.to_string asn)

let () =
  print_endline "=== Step 1: AS 4 originates 10.2.0.0/16 (Figure 1) ===";
  let net = Bgp.Network.make graph in
  Bgp.Network.originate net as4 prefix;
  ignore (Bgp.Network.run net);
  List.iter (show_route net) [ as4; as_y; as_z; as_x; as52 ];

  print_endline "";
  print_endline "=== Step 2: AS 52 falsely originates the prefix (Figure 3) ===";
  let net = Bgp.Network.make graph in
  Bgp.Network.originate ~at:0.0 net as4 prefix;
  Bgp.Network.originate ~at:50.0 net as52 prefix;
  ignore (Bgp.Network.run net);
  List.iter (show_route net) [ as_x; as_y; as_z ];
  (match Bgp.Network.best_origin net as_x prefix with
  | Some origin when Asn.equal origin as52 ->
    print_endline "  -> AS X adopted the bogus route: traffic is hijacked!"
  | _ -> print_endline "  -> AS X kept the valid route");

  print_endline "";
  print_endline "=== Step 3: the same attack with MOAS detection at AS X ===";
  let oracle = Moas.Origin_verification.create () in
  Moas.Origin_verification.register oracle prefix (Asn.Set.singleton as4);
  let detector =
    Moas.Detector.create ~backend:(Moas.Detector.Oracle oracle) ~self:as_x ()
  in
  let validator_of asn =
    if Asn.equal asn as_x then Some (Moas.Detector.validator detector) else None
  in
  let net =
    Bgp.Network.make
      ~config:Bgp.Network.Config.(default |> with_validator_of validator_of)
      graph
  in
  Bgp.Network.originate ~at:0.0 net as4 prefix;
  Bgp.Network.originate ~at:50.0 net as52 prefix;
  ignore (Bgp.Network.run net);
  show_route net as_x;
  List.iter
    (fun alarm -> print_endline ("  " ^ Moas.Alarm.to_string alarm))
    (Moas.Detector.alarms detector);
  match Bgp.Network.best_origin net as_x prefix with
  | Some origin when Asn.equal origin as4 ->
    print_endline "  -> conflict detected, bogus route discarded, valid route kept"
  | _ -> print_endline "  -> unexpected: detection failed"
