(** Small descriptive-statistics toolkit used by the experiment harness and
    the measurement pipeline. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val mean_array : float array -> float
(** Arithmetic mean of an array; 0 for the empty array. *)

val variance : float list -> float
(** Unbiased sample variance (n-1 denominator); 0 for fewer than 2 points. *)

val stddev : float list -> float
(** Square root of {!variance}. *)

val stderr_of_mean : float list -> float
(** Standard error of the mean: stddev / sqrt n. *)

val median : float list -> float
(** Median (average of middle two for even length); 0 for the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100], nearest-rank with linear
    interpolation; 0 for the empty list. *)

val min_max : float list -> float * float
(** Smallest and largest value.  @raise Invalid_argument on empty input. *)

val sum : float list -> float
(** Sum of the list. *)

type histogram = { bucket_edges : float array; counts : int array }
(** A histogram with [n+1] edges delimiting [n] buckets; bucket [i] counts
    values in [[edges.(i), edges.(i+1))], the last bucket being closed. *)

val histogram : edges:float array -> float list -> histogram
(** Build a histogram from explicit bucket edges (strictly increasing).
    Values outside the range are clamped into the first/last bucket. *)

val int_histogram : max_value:int -> int list -> int array
(** [int_histogram ~max_value xs] counts occurrences of each value in
    [0..max_value]; larger values land in the last slot. *)

(** {2 Binary-classification metrics}

    Shared by the episode classifier ({!Classify.Eval}), the ablations and
    the robustness sweeps, replacing their ad-hoc hit/miss arithmetic.
    The positive class is the {e flagged} one (an attack, an invalid
    episode); conventions for empty denominators are documented per
    metric and chosen so a detector that never fires on a corpus with no
    positives scores perfectly rather than dividing by zero. *)

type confusion = { tp : int; fp : int; tn : int; fn : int }
(** Counts of (truth, prediction) pairs: [tp] true positives, [fp] false
    positives, [tn] true negatives, [fn] false negatives. *)

val no_confusion : confusion
(** All four counts zero. *)

val confusion_add : confusion -> truth:bool -> flagged:bool -> confusion
(** Credit one prediction. *)

val confusion : (bool * bool) list -> confusion
(** Tally a list of [(truth, flagged)] pairs. *)

val precision : confusion -> float
(** [tp / (tp + fp)]; [1.0] when nothing was flagged (no flag, no false
    alarm). *)

val recall : confusion -> float
(** [tp / (tp + fn)]; [1.0] when there are no positives to find. *)

val f1 : confusion -> float
(** Harmonic mean of {!precision} and {!recall}; [0.0] when both are 0. *)

val accuracy : confusion -> float
(** [(tp + tn) / total]; [1.0] on an empty confusion. *)

val fallout : confusion -> float
(** False-positive rate [fp / (fp + tn)]; [0.0] when there are no
    negatives. *)

val miss_rate : confusion -> float
(** [fn / (tp + fn)] = [1 - recall]; [0.0] when there are no positives. *)

val auc : (float * bool) list -> float
(** Area under the ROC curve of scored predictions [(score, truth)],
    computed by the exact Mann-Whitney rank statistic: tied scores
    contribute half a concordant pair each (average ranks), so the value
    is exact under ties rather than depending on sort stability.
    [0.5] when either class is empty. *)
