let sum = List.fold_left ( +. ) 0.0

let mean = function
  | [] -> 0.0
  | xs -> sum xs /. float_of_int (List.length xs)

let mean_array arr =
  if Array.length arr = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 arr /. float_of_int (Array.length arr)

let variance xs =
  let n = List.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let acc = List.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let stderr_of_mean xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ -> stddev xs /. sqrt (float_of_int (List.length xs))

let sorted xs = List.sort compare xs

let median xs =
  match sorted xs with
  | [] -> 0.0
  | s ->
    let n = List.length s in
    let a = Array.of_list s in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let percentile p xs =
  match sorted xs with
  | [] -> 0.0
  | s ->
    let a = Array.of_list s in
    let n = Array.length a in
    if n = 1 then a.(0)
    else
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: rest ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) rest

type histogram = { bucket_edges : float array; counts : int array }

let histogram ~edges xs =
  let nb = Array.length edges - 1 in
  if nb < 1 then invalid_arg "Stats.histogram: need at least two edges";
  for i = 0 to nb - 1 do
    if edges.(i) >= edges.(i + 1) then
      invalid_arg "Stats.histogram: edges must be strictly increasing"
  done;
  let counts = Array.make nb 0 in
  let place v =
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if v < edges.(mid + 1) then search lo mid else search (mid + 1) hi
    in
    let b = if v < edges.(0) then 0 else search 0 (nb - 1) in
    counts.(b) <- counts.(b) + 1
  in
  List.iter place xs;
  { bucket_edges = edges; counts }

let int_histogram ~max_value xs =
  if max_value < 0 then invalid_arg "Stats.int_histogram: negative max";
  let counts = Array.make (max_value + 1) 0 in
  let place v =
    let slot = if v < 0 then 0 else min v max_value in
    counts.(slot) <- counts.(slot) + 1
  in
  List.iter place xs;
  counts

(* ------------------------------------------------------------------ *)
(* Binary-classification metrics *)

type confusion = { tp : int; fp : int; tn : int; fn : int }

let no_confusion = { tp = 0; fp = 0; tn = 0; fn = 0 }

let confusion_add c ~truth ~flagged =
  match (truth, flagged) with
  | true, true -> { c with tp = c.tp + 1 }
  | false, true -> { c with fp = c.fp + 1 }
  | false, false -> { c with tn = c.tn + 1 }
  | true, false -> { c with fn = c.fn + 1 }

let confusion pairs =
  List.fold_left
    (fun c (truth, flagged) -> confusion_add c ~truth ~flagged)
    no_confusion pairs

let ratio num den ~empty =
  if den = 0 then empty else float_of_int num /. float_of_int den

let precision c = ratio c.tp (c.tp + c.fp) ~empty:1.0
let recall c = ratio c.tp (c.tp + c.fn) ~empty:1.0
let fallout c = ratio c.fp (c.fp + c.tn) ~empty:0.0
let miss_rate c = ratio c.fn (c.tp + c.fn) ~empty:0.0

let accuracy c =
  ratio (c.tp + c.tn) (c.tp + c.fp + c.tn + c.fn) ~empty:1.0

let f1 c =
  let p = precision c and r = recall c in
  if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r)

(* Mann-Whitney with average ranks: AUC = (R+ - n+(n+ + 1)/2) / (n+ n-),
   where R+ is the positive class's rank sum.  Ties get the mean of the
   rank range they span, so equal scores across classes contribute
   exactly half a concordant pair each. *)
let auc scored =
  let a = Array.of_list scored in
  let n = Array.length a in
  let n_pos = Array.fold_left (fun k (_, t) -> if t then k + 1 else k) 0 a in
  let n_neg = n - n_pos in
  if n_pos = 0 || n_neg = 0 then 0.5
  else begin
    Array.sort (fun (x, _) (y, _) -> Float.compare x y) a;
    let rank_sum_pos = ref 0.0 in
    let i = ref 0 in
    while !i < n do
      let j = ref !i in
      while !j < n && fst a.(!j) = fst a.(!i) do
        incr j
      done;
      (* a.(!i .. !j-1) are tied: ranks !i+1 .. !j, averaged *)
      let avg_rank = float_of_int (!i + 1 + !j) /. 2.0 in
      for k = !i to !j - 1 do
        if snd a.(k) then rank_sum_pos := !rank_sum_pos +. avg_rank
      done;
      i := !j
    done;
    let np = float_of_int n_pos in
    (!rank_sum_pos -. (np *. (np +. 1.0) /. 2.0))
    /. (np *. float_of_int n_neg)
  end
