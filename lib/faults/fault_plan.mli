(** Composable, declarative fault schedules.

    A plan is a pure description — nothing touches the network until
    {!Injector.arm} translates it into engine events.  Plans compose by
    {!union}, so a scenario can mix one-shot cuts, periodic flaps,
    Poisson-like churn and message impairments over any set of links and
    routers.  All randomness a plan implies (churn arrival times, loss
    draws) is deferred to the injector's {!Mutil.Rng} stream, keeping every
    schedule reproducible from a seed. *)

open Net

type target =
  | Link of Asn.t * Asn.t  (** a BGP peering (session + message channel) *)
  | Router of Asn.t  (** a whole AS's router *)

val link : Asn.t -> Asn.t -> target
(** Convenience constructor. @raise Invalid_argument on a self loop. *)

val router : Asn.t -> target

val target_to_string : target -> string

(** One scheduling shape.  Construct through the functions below, which
    validate parameters; the representation is exposed so injectors can
    pattern-match. *)
type spec =
  | Fail of { target : target; at : float; duration : float option }
      (** down at [at]; recovered after [duration] ([None] = forever) *)
  | Flap of {
      target : target;
      start : float;
      period : float;
      down_for : float;
      until : float;
    }  (** deterministic periodic flapping: down at [start],
          [start + period], … (each outage lasting [down_for]) while the
          cycle starts at or before [until] *)
  | Churn of {
      targets : target list;
      start : float;
      rate : float;
      mean_downtime : float;
      until : float;
    }  (** memoryless churn: fault arrivals form a Poisson-like process
          with exponential inter-arrival times at [rate] events/second;
          each arrival picks a target uniformly and, if it is currently
          up, takes it down for an exponential downtime with mean
          [mean_downtime] *)
  | Impair of {
      a : Asn.t;
      b : Asn.t;
      at : float;
      duration : float option;
      impairment : Bgp.Network.impairment;
    }  (** probabilistic message loss / duplication / delay jitter on one
          link, installed at [at] and removed after [duration] *)

type t = spec list
(** A plan: an unordered bag of fault specs. *)

val empty : t

val union : t -> t -> t
(** Both plans together. *)

val all : t list -> t
(** N-ary {!union}. *)

val fail : ?duration:float -> at:float -> target -> t
(** One-shot failure (link down or router crash); recovery after
    [duration] when given.  @raise Invalid_argument on negative times. *)

val flap :
  start:float -> period:float -> down_for:float -> until:float -> target -> t
(** Periodic flapping.  @raise Invalid_argument unless
    [0 < down_for < period] and [start <= until]. *)

val churn :
  ?start:float ->
  rate:float ->
  mean_downtime:float ->
  until:float ->
  target list ->
  t
(** Poisson-like churn over a target pool (see {!spec}).
    @raise Invalid_argument on a non-positive rate or mean downtime, or an
    empty pool. *)

val impair :
  ?duration:float ->
  ?loss:float ->
  ?duplicate:float ->
  ?jitter:float ->
  at:float ->
  Asn.t ->
  Asn.t ->
  t
(** Message impairment on the [a]–[b] peering (defaults all zero; see
    {!Bgp.Network.impairment}). *)

val link_targets : Topology.As_graph.t -> target list
(** Every peering of a topology, as churn targets. *)

val router_targets : Topology.As_graph.t -> target list
(** Every AS of a topology, as churn targets. *)

val targets : t -> target list
(** Every target a plan mentions (with repetitions). *)

val size : t -> int
(** Number of specs. *)

val to_string : t -> string
(** One line per spec, for logs. *)
