module Rng = Mutil.Rng

(* {2 Virtual clock} *)

module Clock = struct
  type t = { mutable now : float }

  let create ?(at = 0.) () = { now = at }
  let now c = c.now
  let advance c d = if d > 0. then c.now <- c.now +. d
  let fn c () = c.now
  let sleep c d = advance c d
end

(* {2 Transport fault plans} *)

type plan = {
  drop_request : float;
  drop_reply : float;
  corrupt_request : float;
  corrupt_reply : float;
  truncate_request : float;
  truncate_reply : float;
  delay : float;
  delay_max : float;
  disconnect : float;
}

let calm =
  {
    drop_request = 0.;
    drop_reply = 0.;
    corrupt_request = 0.;
    corrupt_reply = 0.;
    truncate_request = 0.;
    truncate_reply = 0.;
    delay = 0.;
    delay_max = 0.;
    disconnect = 0.;
  }

let lossy =
  {
    calm with
    drop_request = 0.05;
    drop_reply = 0.05;
    delay = 0.2;
    delay_max = 0.05;
  }

let corrupting =
  {
    calm with
    corrupt_request = 0.08;
    corrupt_reply = 0.08;
    truncate_request = 0.04;
    truncate_reply = 0.04;
  }

let hostile =
  {
    drop_request = 0.08;
    drop_reply = 0.08;
    corrupt_request = 0.06;
    corrupt_reply = 0.06;
    truncate_request = 0.03;
    truncate_reply = 0.03;
    delay = 0.25;
    delay_max = 0.4;
    disconnect = 0.01;
  }

let presets =
  [ ("calm", calm); ("lossy", lossy); ("corrupting", corrupting);
    ("hostile", hostile) ]

let check_plan p =
  let prob name v =
    if not (v >= 0. && v <= 1.) then
      invalid_arg (Printf.sprintf "Faults.Chaos: %s must be in [0,1]" name)
  in
  prob "drop_request" p.drop_request;
  prob "drop_reply" p.drop_reply;
  prob "corrupt_request" p.corrupt_request;
  prob "corrupt_reply" p.corrupt_reply;
  prob "truncate_request" p.truncate_request;
  prob "truncate_reply" p.truncate_reply;
  prob "delay" p.delay;
  prob "disconnect" p.disconnect;
  if not (p.delay_max >= 0.) then
    invalid_arg "Faults.Chaos: delay_max must be non-negative"

let plan_to_string p =
  Printf.sprintf
    "drop=%.2f/%.2f corrupt=%.2f/%.2f truncate=%.2f/%.2f delay=%.2f(max %.2fs) \
     disconnect=%.2f"
    p.drop_request p.drop_reply p.corrupt_request p.corrupt_reply
    p.truncate_request p.truncate_reply p.delay p.delay_max p.disconnect

(* {2 Frame mutilation} *)

(* flip at least one bit of one octet: the mutated frame always differs *)
let corrupt_frame rng frame =
  if Bytes.length frame = 0 then frame
  else begin
    let b = Bytes.copy frame in
    let i = Rng.int rng (Bytes.length b) in
    let mask = 1 + Rng.int rng 255 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor mask));
    b
  end

(* cut the frame strictly short (possibly to nothing) *)
let truncate_frame rng frame =
  if Bytes.length frame = 0 then frame
  else Bytes.sub frame 0 (Rng.int rng (Bytes.length frame))

(* {2 The fault-injecting transport} *)

let transport ?clock ~rng ~plan server =
  check_plan plan;
  let inner = Serve.Transport.of_server server in
  let maybe_delay () =
    (* the float is drawn whenever the chance fires, clock or no clock,
       so the RNG stream is identical either way *)
    if Rng.chance rng plan.delay then begin
      let d = Rng.float rng plan.delay_max in
      match clock with Some c -> Clock.advance c d | None -> ()
    end
  in
  let request ~arrival ~session data =
    if Rng.chance rng plan.disconnect then begin
      inner.Serve.Transport.disconnect session;
      raise (Serve.Transport.Unavailable "chaos: peer disconnected")
    end;
    if Rng.chance rng plan.drop_request then
      raise (Serve.Transport.Unavailable "chaos: request dropped");
    let data =
      if Rng.chance rng plan.corrupt_request then corrupt_frame rng data
      else data
    in
    let data =
      if Rng.chance rng plan.truncate_request then truncate_frame rng data
      else data
    in
    maybe_delay ();
    let reply = inner.Serve.Transport.request ~arrival ~session data in
    maybe_delay ();
    if Rng.chance rng plan.drop_reply then
      raise (Serve.Transport.Unavailable "chaos: reply dropped");
    let reply =
      if Rng.chance rng plan.corrupt_reply then corrupt_frame rng reply
      else reply
    in
    let reply =
      if Rng.chance rng plan.truncate_reply then truncate_frame rng reply
      else reply
    in
    reply
  in
  { inner with Serve.Transport.request }

(* {2 Failing sources} *)

exception Source_failure of string

let failing_source ?(message = "chaos: source failure") ~after batches =
  if after < 0 then invalid_arg "Faults.Chaos: after must be non-negative";
  let rec seq n bs () =
    if n = 0 then raise (Source_failure message)
    else
      match bs with
      | [] -> Seq.Nil
      | b :: tl -> Seq.Cons (b, seq (n - 1) tl)
  in
  Stream.Source.of_seq (seq after batches)
