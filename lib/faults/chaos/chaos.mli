(** Chaos testing for the serving path: seeded transport-level fault
    injection between {!Serve.Client} and {!Serve.Server}, a virtual
    clock to drive deadlines and timeouts deterministically, and failing
    stream sources for the live tail.

    Everything here is driven by a caller-supplied {!Mutil.Rng} stream:
    the same seed and the same call sequence produce the same faults, so
    a chaos run that finds a violation is replayable — and CI can diff
    two runs of the whole sweep byte-for-byte.

    The invariant the harness checks (see the [moas_sim chaos]
    subcommand and [test_chaos]): under any fault plan, every request
    either answers correctly, is refused in-band with [Rejected], or
    fails cleanly at the client ({!Serve.Client.Failed}) — never a hang,
    a crash, or a wrong answer. *)

(** {2 Virtual clock}

    A manually-advanced clock shared by the server (deadline budget),
    the client (timeouts, backoff sleeps) and the fault plan (injected
    delays).  Time moves only when a component advances it, so timing
    behaviour is exact and reproducible. *)

module Clock : sig
  type t

  val create : ?at:float -> unit -> t
  (** A clock reading [at] (default 0). *)

  val now : t -> float
  val advance : t -> float -> unit
  (** Move time forward; negative amounts are ignored. *)

  val fn : t -> unit -> float
  (** The clock as a [unit -> float], for [Server.create ~now] and
      [Client.connect ~clock]. *)

  val sleep : t -> float -> unit
  (** Virtual sleep — advances the clock; for [Client.connect ~sleep],
      so backoff waits cost no wall time. *)
end

(** {2 Fault plans}

    Independent per-operation probabilities, each drawn from the
    injector's RNG in a fixed order on every request. *)

type plan = {
  drop_request : float;  (** request frame vanishes: [Unavailable] *)
  drop_reply : float;  (** request executed, reply lost: [Unavailable] *)
  corrupt_request : float;  (** one octet of the request is flipped *)
  corrupt_reply : float;  (** one octet of the reply is flipped *)
  truncate_request : float;  (** request cut strictly short *)
  truncate_reply : float;  (** reply cut strictly short *)
  delay : float;  (** chance of an injected transit delay, each way *)
  delay_max : float;  (** delay is uniform on [0, delay_max) seconds *)
  disconnect : float;
      (** the session is closed under the client and the call fails *)
}

val calm : plan
(** All probabilities zero — the identity transport. *)

val lossy : plan
(** Drops and delays, frames intact. *)

val corrupting : plan
(** Bit flips and truncation, nothing lost. *)

val hostile : plan
(** Everything at once, including disconnects. *)

val presets : (string * plan) list
(** The named plans above, for CLI [--plan] parsing and sweep loops. *)

val plan_to_string : plan -> string
(** One-line rendering for transcripts. *)

(** {2 Frame mutilation}

    The primitives the transport's corruption/truncation faults use,
    exposed for direct fuzzing. *)

val corrupt_frame : Mutil.Rng.t -> bytes -> bytes
(** Flip at least one bit of one octet: same length, always different
    from the input (empty frames pass through). *)

val truncate_frame : Mutil.Rng.t -> bytes -> bytes
(** Cut strictly short — possibly to nothing (empty frames pass
    through). *)

val transport :
  ?clock:Clock.t -> rng:Mutil.Rng.t -> plan:plan -> Serve.Server.t ->
  Serve.Transport.t
(** A {!Serve.Transport.t} over [server] that injects [plan]'s faults on
    every request: possible disconnect, request drop, request
    corruption/truncation, transit delay (advancing [clock] when given),
    then the real {!Serve.Server.handle}, then reply delay, drop,
    corruption/truncation.  [drain] and session management pass through
    unfaulted (a drain is destructive, so faulting it would lose alerts
    silently — drops are injected where retry semantics are defined).
    Raises [Invalid_argument] if a probability is outside [0,1].

    The RNG draw order is fixed, so two transports built from equal
    seeds fault identically. *)

(** {2 Failing sources} *)

exception Source_failure of string
(** What {!failing_source} raises — distinguishable from decoder or
    monitor errors in degraded-mode assertions. *)

val failing_source :
  ?message:string ->
  after:int ->
  Stream.Source.batch list ->
  Stream.Source.t
(** A source that yields the first [after] batches, then raises
    {!Source_failure} on the next pull — even if the list is already
    exhausted, so the failure point is deterministic.  (If the list is
    shorter than [after], the source just ends normally.)  Feeding it to
    {!Serve.Server.tail} drives the server into degraded mode at a known
    batch boundary. *)
