open Net

type target = Link of Asn.t * Asn.t | Router of Asn.t

let link a b =
  if Asn.equal a b then invalid_arg "Fault_plan.link: self loop";
  Link (a, b)

let router asn = Router asn

let target_to_string = function
  | Link (a, b) ->
    Printf.sprintf "link %s-%s" (Asn.to_string a) (Asn.to_string b)
  | Router asn -> Printf.sprintf "router %s" (Asn.to_string asn)

type spec =
  | Fail of { target : target; at : float; duration : float option }
  | Flap of {
      target : target;
      start : float;
      period : float;
      down_for : float;
      until : float;
    }
  | Churn of {
      targets : target list;
      start : float;
      rate : float;
      mean_downtime : float;
      until : float;
    }
  | Impair of {
      a : Asn.t;
      b : Asn.t;
      at : float;
      duration : float option;
      impairment : Bgp.Network.impairment;
    }

type t = spec list

let empty = []
let union = ( @ )
let all = List.concat

let check_time name v =
  if v < 0.0 || Float.is_nan v then
    invalid_arg (Printf.sprintf "Fault_plan.%s: negative time" name)

let check_duration name = function
  | None -> ()
  | Some d ->
    if d <= 0.0 || Float.is_nan d then
      invalid_arg (Printf.sprintf "Fault_plan.%s: duration must be positive" name)

let fail ?duration ~at target =
  check_time "fail" at;
  check_duration "fail" duration;
  [ Fail { target; at; duration } ]

let flap ~start ~period ~down_for ~until target =
  check_time "flap" start;
  if down_for <= 0.0 || Float.is_nan down_for then
    invalid_arg "Fault_plan.flap: down_for must be positive";
  if period <= down_for || Float.is_nan period then
    invalid_arg "Fault_plan.flap: period must exceed down_for";
  if until < start then invalid_arg "Fault_plan.flap: until before start";
  [ Flap { target; start; period; down_for; until } ]

let churn ?(start = 0.0) ~rate ~mean_downtime ~until targets =
  check_time "churn" start;
  if rate <= 0.0 || Float.is_nan rate then
    invalid_arg "Fault_plan.churn: rate must be positive";
  if mean_downtime <= 0.0 || Float.is_nan mean_downtime then
    invalid_arg "Fault_plan.churn: mean_downtime must be positive";
  if until < start then invalid_arg "Fault_plan.churn: until before start";
  if targets = [] then invalid_arg "Fault_plan.churn: no targets";
  [ Churn { targets; start; rate; mean_downtime; until } ]

let impair ?duration ?loss ?duplicate ?jitter ~at a b =
  check_time "impair" at;
  check_duration "impair" duration;
  let impairment = Bgp.Network.impairment ?loss ?duplicate ?jitter () in
  [ Impair { a; b; at; duration; impairment } ]

let link_targets graph =
  List.map (fun (a, b) -> Link (a, b)) (Topology.As_graph.edges graph)

let router_targets graph =
  List.map (fun asn -> Router asn) (Topology.As_graph.node_list graph)

let targets t =
  List.concat_map
    (function
      | Fail { target; _ } | Flap { target; _ } -> [ target ]
      | Churn { targets; _ } -> targets
      | Impair { a; b; _ } -> [ Link (a, b) ])
    t

let size = List.length

let spec_to_string = function
  | Fail { target; at; duration } ->
    Printf.sprintf "fail %s @%g%s" (target_to_string target) at
      (match duration with
      | Some d -> Printf.sprintf " for %g" d
      | None -> "")
  | Flap { target; start; period; down_for; until } ->
    Printf.sprintf "flap %s @%g period %g down %g until %g"
      (target_to_string target) start period down_for until
  | Churn { targets; start; rate; mean_downtime; until } ->
    Printf.sprintf "churn over %d targets @%g rate %g/s downtime %g until %g"
      (List.length targets) start rate mean_downtime until
  | Impair { a; b; at; duration; impairment } ->
    Printf.sprintf
      "impair link %s-%s @%g%s loss %g dup %g jitter %g" (Asn.to_string a)
      (Asn.to_string b) at
      (match duration with
      | Some d -> Printf.sprintf " for %g" d
      | None -> "")
      impairment.Bgp.Network.loss impairment.Bgp.Network.duplicate
      impairment.Bgp.Network.jitter

let to_string t = String.concat "\n" (List.map spec_to_string t)
