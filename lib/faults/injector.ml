module Rng = Mutil.Rng
module Network = Bgp.Network

type t = {
  network : Network.t;
  metrics : Obs.Registry.t;
  mutable handles : Sim.Engine.handle list;
  mutable injected : int;
  mutable stopped : bool;
}

let engine t = Network.engine t.network

let count t kind =
  t.injected <- t.injected + 1;
  Obs.Registry.Counter.incr
    (Obs.Registry.counter t.metrics ~labels:[ ("kind", kind) ]
       "faults_injected")

let count_skipped t =
  Obs.Registry.Counter.incr
    (Obs.Registry.counter t.metrics "fault_churn_skipped")

let schedule_at t ~time f =
  let handle = Sim.Engine.schedule_at_cancellable (engine t) ~time f in
  t.handles <- handle :: t.handles

let target_is_up t = function
  | Fault_plan.Link (a, b) -> Network.link_is_up t.network a b
  | Fault_plan.Router asn -> Network.router_is_up t.network asn

let take_down t = function
  | Fault_plan.Link (a, b) ->
    if Network.link_is_up t.network a b then begin
      Network.fail_link_now t.network a b;
      count t "link_down"
    end
  | Fault_plan.Router asn ->
    if Network.router_is_up t.network asn then begin
      Network.crash_router_now t.network asn;
      count t "router_crash"
    end

let bring_up t = function
  | Fault_plan.Link (a, b) ->
    if not (Network.link_is_up t.network a b) then begin
      Network.restore_link_now t.network a b;
      count t "link_up"
    end
  | Fault_plan.Router asn ->
    if not (Network.router_is_up t.network asn) then begin
      Network.restart_router_now t.network asn;
      count t "router_restart"
    end

let validate_target graph = function
  | Fault_plan.Link (a, b) ->
    if not (Topology.As_graph.mem_edge graph a b) then
      invalid_arg
        (Printf.sprintf "Injector.arm: %s does not exist"
           (Fault_plan.target_to_string (Fault_plan.Link (a, b))))
  | Fault_plan.Router asn ->
    if not (Topology.As_graph.mem_node graph asn) then
      invalid_arg
        (Printf.sprintf "Injector.arm: %s is not in the topology"
           (Fault_plan.target_to_string (Fault_plan.Router asn)))

let arm_spec t rng spec =
  match spec with
  | Fault_plan.Fail { target; at; duration } -> (
    schedule_at t ~time:at (fun _ -> take_down t target);
    match duration with
    | Some d -> schedule_at t ~time:(at +. d) (fun _ -> bring_up t target)
    | None -> ())
  | Fault_plan.Flap { target; start; period; down_for; until } ->
    let rec cycle time =
      if time <= until then begin
        schedule_at t ~time (fun _ -> take_down t target);
        schedule_at t ~time:(time +. down_for) (fun _ -> bring_up t target);
        cycle (time +. period)
      end
    in
    cycle start
  | Fault_plan.Churn { targets; start; rate; mean_downtime; until } ->
    (* the whole arrival sequence is drawn up front, so the schedule is a
       pure function of (plan, seed) regardless of what the simulation
       does in between *)
    let pool = Array.of_list targets in
    let rec arrivals time =
      let time = time +. Rng.exponential rng rate in
      if time > until then ()
      else begin
        let target = Rng.pick rng pool in
        let downtime = Rng.exponential rng (1.0 /. mean_downtime) in
        schedule_at t ~time (fun _ ->
            (* an arrival on a target some other fault already holds down
               is skipped: its recovery belongs to that fault *)
            if target_is_up t target then begin
              take_down t target;
              schedule_at t ~time:(time +. downtime) (fun _ ->
                  bring_up t target)
            end
            else count_skipped t);
        arrivals time
      end
    in
    arrivals start
  | Fault_plan.Impair { a; b; at; duration; impairment } -> (
    schedule_at t ~time:at (fun _ ->
        Network.impair_link t.network ~rng a b impairment;
        count t "impair_on");
    match duration with
    | Some d ->
      schedule_at t
        ~time:(at +. d)
        (fun _ ->
          Network.clear_link_impairment t.network a b;
          count t "impair_off")
    | None -> ())

let arm ?metrics ~rng network plan =
  let metrics =
    match metrics with
    | Some m -> m
    | None -> Sim.Engine.metrics (Network.engine network)
  in
  List.iter (validate_target (Network.graph network)) (Fault_plan.targets plan);
  let t = { network; metrics; handles = []; injected = 0; stopped = false } in
  (* one independent stream per spec, derived in plan order: reordering or
     extending a plan never perturbs the other specs' randomness *)
  List.iteri (fun i spec -> arm_spec t (Rng.split_at rng i) spec) plan;
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    List.iter Sim.Engine.cancel t.handles;
    t.handles <- []
  end

let stopped t = t.stopped
let injected t = t.injected
