(** Translation of a {!Fault_plan.t} into cancellable engine events against
    a live {!Bgp.Network.t}.

    Determinism: every random draw (churn arrivals, target picks,
    downtimes, message-impairment randomness) comes from the [rng] given to
    {!arm}, with one child stream split off per plan spec in plan order —
    the same plan armed with the same seed produces the same fault
    trajectory, and adding a spec never perturbs the randomness of the
    others.  Churn arrival sequences are drawn entirely at arm time.

    Instrumentation (registered lazily, only when a fault actually fires):
    counter [faults_injected] labelled by [kind] (["link_down"],
    ["link_up"], ["router_crash"], ["router_restart"], ["impair_on"],
    ["impair_off"]) and counter [fault_churn_skipped] for churn arrivals
    that found their target already down. *)

type t
(** An armed injector. *)

val arm :
  ?metrics:Obs.Registry.t -> rng:Mutil.Rng.t -> Bgp.Network.t -> Fault_plan.t -> t
(** Schedule every spec of the plan on the network's engine.  [metrics]
    defaults to the registry the network's engine reports into.
    @raise Invalid_argument if the plan mentions a link or router outside
    the network's topology. *)

val stop : t -> unit
(** Cancel every pending fault event — including pending recoveries, so
    targets currently down stay down.  Faults already applied are not
    undone.  Idempotent. *)

val stopped : t -> bool
(** Whether {!stop} was called. *)

val injected : t -> int
(** Fault actions actually applied so far (state-changing downs, ups,
    crashes, restarts and impairment installs/removals; skipped churn
    arrivals do not count). *)
