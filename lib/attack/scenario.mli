(** Assembly and execution of one simulation scenario: a topology, a victim
    prefix with its legitimate origin AS(es), a set of attackers, and a
    MOAS-detection deployment plan.  This is the unit the paper averages
    over 15 runs per data point. *)

open Net

type policy_mode =
  | Shortest_path  (** the paper's SSFnet-like setting: no policy *)
  | Gao_rexford of Topology.Relationships.t
      (** customer/peer/provider economics with an explicit assignment *)
  | Gao_rexford_inferred
      (** Gao-Rexford with relationships inferred by the degree heuristic *)

type t = {
  graph : Topology.As_graph.t;
  victim_prefix : Prefix.t;
  legit_origins : Asn.t list;  (** one or two in the paper *)
  attackers : Attacker.t list;
  deployment : Moas.Deployment.t;
  attach_list_always : bool;
      (** attach a MOAS list even with a single origin (the paper lets
          single-origin routes go bare; default false) *)
  community_dropper_fraction : float;
      (** fraction of ASes that strip communities on export — the
          Section 4.3 deployment hazard (default 0) *)
  valid_at : float;  (** when legitimate origins announce (default 0) *)
  attack_at : float;  (** when attackers announce (default 50) *)
  mrai : float;  (** per-peer MRAI for every router (default 0) *)
  policy_mode : policy_mode;  (** routing-policy model (default shortest path) *)
}

val make :
  ?deployment:Moas.Deployment.t ->
  ?attach_list_always:bool ->
  ?community_dropper_fraction:float ->
  ?valid_at:float ->
  ?attack_at:float ->
  ?mrai:float ->
  ?policy_mode:policy_mode ->
  graph:Topology.As_graph.t ->
  victim_prefix:Prefix.t ->
  legit_origins:Asn.t list ->
  attackers:Attacker.t list ->
  unit ->
  t
(** Build a scenario; validates that origins and attackers are nodes of the
    graph and disjoint.
    @raise Invalid_argument on inconsistent inputs. *)

type outcome = {
  adopters : Asn.Set.t;
      (** non-attacker ASes whose best route for the victim prefix
          originates at an attacker after convergence *)
  eligible : int;  (** number of non-attacker ASes (the paper's "remaining") *)
  fraction_adopting : float;  (** |adopters| / eligible, the paper's y-axis *)
  alarm_count : int;  (** distinct alarms across all capable ASes *)
  alarming_ases : Asn.Set.t;  (** capable ASes that raised at least one *)
  detected : bool;  (** at least one alarm was raised somewhere *)
  first_alarm_at : float option;  (** simulation time of the first alarm *)
  detection_latency : float option;
      (** first alarm time minus [attack_at]: how quickly the first router
          noticed the conflict *)
  converged_at : float;  (** simulation time when the run went quiescent *)
  oracle_queries : int;  (** MOASRR lookups performed *)
  updates_sent : int;  (** total BGP UPDATE messages *)
  converged : bool;  (** the event queue drained *)
  capable : Asn.Set.t;  (** ASes that ran detection in this run *)
  droppers : Asn.Set.t;  (** ASes that stripped communities *)
}

val run :
  ?metrics:Obs.Registry.t ->
  ?prepare:(Bgp.Network.t -> unit) ->
  Mutil.Rng.t ->
  t ->
  outcome
(** Execute the scenario: legitimate announcements at [valid_at], a first
    convergence, bogus announcements at [attack_at], a second convergence,
    then measurement over the final Loc-RIBs.

    [metrics] (default {!Obs.Registry.noop}) is wired through the engine,
    every router and every detector, and additionally receives the
    network-wide aggregate counters [bgp_updates_sent_total],
    [bgp_updates_received_total], [moas_alarms_total] and
    [oracle_queries_total].

    [prepare] runs on the freshly wired network after the announcements
    are scheduled and before the engine starts — the hook the robustness
    experiments use to arm a fault injector. *)

val random :
  Mutil.Rng.t ->
  graph:Topology.As_graph.t ->
  stub:Asn.Set.t ->
  n_origins:int ->
  n_attackers:int ->
  deployment:Moas.Deployment.t ->
  t
(** The paper's random selection: origin ASes drawn from the stubs, the
    requested number of attackers drawn from all remaining ASes.
    @raise Invalid_argument when the graph is too small for the request. *)
