open Net
module Rng = Mutil.Rng

type policy_mode =
  | Shortest_path
  | Gao_rexford of Topology.Relationships.t
  | Gao_rexford_inferred

type t = {
  graph : Topology.As_graph.t;
  victim_prefix : Prefix.t;
  legit_origins : Asn.t list;
  attackers : Attacker.t list;
  deployment : Moas.Deployment.t;
  attach_list_always : bool;
  community_dropper_fraction : float;
  valid_at : float;
  attack_at : float;
  mrai : float;
  policy_mode : policy_mode;
}

let make ?(deployment = Moas.Deployment.Disabled) ?(attach_list_always = false)
    ?(community_dropper_fraction = 0.0) ?(valid_at = 0.0) ?(attack_at = 50.0)
    ?(mrai = 0.0) ?(policy_mode = Shortest_path) ~graph ~victim_prefix
    ~legit_origins ~attackers () =
  if legit_origins = [] then invalid_arg "Scenario.make: no legitimate origin";
  let attacker_set =
    Asn.Set.of_list (List.map (fun a -> a.Attacker.asn) attackers)
  in
  let origin_set = Asn.Set.of_list legit_origins in
  if not (Asn.Set.is_empty (Asn.Set.inter attacker_set origin_set)) then
    invalid_arg "Scenario.make: an attacker is also a legitimate origin";
  List.iter
    (fun asn ->
      if not (Topology.As_graph.mem_node graph asn) then
        invalid_arg
          (Printf.sprintf "Scenario.make: %s is not in the topology"
             (Asn.to_string asn)))
    (legit_origins @ Asn.Set.elements attacker_set);
  if community_dropper_fraction < 0.0 || community_dropper_fraction > 1.0 then
    invalid_arg "Scenario.make: dropper fraction out of [0,1]";
  if attack_at < valid_at then
    invalid_arg "Scenario.make: attack before valid announcement";
  {
    graph;
    victim_prefix;
    legit_origins;
    attackers;
    deployment;
    attach_list_always;
    community_dropper_fraction;
    valid_at;
    attack_at;
    mrai;
    policy_mode;
  }

type outcome = {
  adopters : Asn.Set.t;
  eligible : int;
  fraction_adopting : float;
  alarm_count : int;
  alarming_ases : Asn.Set.t;
  detected : bool;
  first_alarm_at : float option;
  detection_latency : float option;
  converged_at : float;
  oracle_queries : int;
  updates_sent : int;
  converged : bool;
  capable : Asn.Set.t;
  droppers : Asn.Set.t;
}

let run ?(metrics = Obs.Registry.noop) ?prepare rng scenario =
  let nodes = Topology.As_graph.nodes scenario.graph in
  let attacker_set =
    Asn.Set.of_list (List.map (fun a -> a.Attacker.asn) scenario.attackers)
  in
  let legit_set = Asn.Set.of_list scenario.legit_origins in
  (* deployment and community-dropping assignments use independent child
     streams so that changing one knob never perturbs the other *)
  let capable =
    let candidates = Asn.Set.diff nodes attacker_set in
    Moas.Deployment.capable_set (Rng.split_at rng 1) candidates
      scenario.deployment
  in
  let droppers =
    if scenario.community_dropper_fraction <= 0.0 then Asn.Set.empty
    else begin
      let candidates =
        Asn.Set.diff nodes (Asn.Set.union attacker_set legit_set)
      in
      let universe = Array.of_list (Asn.Set.elements candidates) in
      let count =
        int_of_float
          (Float.round
             (scenario.community_dropper_fraction
             *. float_of_int (Array.length universe)))
      in
      Asn.Set.of_list (Array.to_list (Rng.sample (Rng.split_at rng 2) universe count))
    end
  in
  let oracle = Moas.Origin_verification.create () in
  Moas.Origin_verification.register oracle scenario.victim_prefix legit_set;
  let detectors = Hashtbl.create 64 in
  let validator_of asn =
    if Asn.Set.mem asn capable then begin
      let detector =
        Moas.Detector.create ~backend:(Moas.Detector.Oracle oracle) ~metrics
          ~self:asn ()
      in
      Hashtbl.replace detectors asn detector;
      Some (Moas.Detector.validator detector)
    end
    else None
  in
  let base_policy_of =
    match scenario.policy_mode with
    | Shortest_path -> fun _ -> Bgp.Policy.default
    | Gao_rexford rels -> fun asn -> Bgp.Gao_rexford.policy rels ~self:asn
    | Gao_rexford_inferred ->
      let rels = Topology.Relationships.infer_by_degree scenario.graph in
      fun asn -> Bgp.Gao_rexford.policy rels ~self:asn
  in
  let policy_of asn =
    let base = base_policy_of asn in
    if Asn.Set.mem asn droppers then Bgp.Policy.drop_communities_on_export base
    else base
  in
  let network =
    Bgp.Network.make
      ~config:
        Bgp.Network.Config.(
          default |> with_policy_of policy_of
          |> with_validator_of validator_of
          |> with_mrai_of (fun _ -> scenario.mrai)
          |> with_metrics metrics)
      scenario.graph
  in
  (* legitimate origins: identical MOAS list on every announcement when the
     prefix is multi-origin (or always, if configured) *)
  let legit_communities =
    if List.length scenario.legit_origins > 1 || scenario.attach_list_always
    then Moas.Moas_list.encode legit_set
    else Bgp.Community.Set.empty
  in
  List.iter
    (fun origin ->
      Bgp.Network.originate ~at:scenario.valid_at
        ~communities:legit_communities network origin scenario.victim_prefix)
    scenario.legit_origins;
  (* attackers announce after the valid routes have spread *)
  List.iter
    (fun attacker ->
      let prefix =
        Attacker.announced_prefix attacker ~victim:scenario.victim_prefix
      in
      let communities = Attacker.communities attacker ~legit_list:legit_set in
      let as_path = Attacker.forged_path attacker in
      Bgp.Network.originate ~at:scenario.attack_at ~communities ~as_path
        network attacker.Attacker.asn prefix)
    scenario.attackers;
  (* environment hook: fault injection and other pre-run wiring (the
     robustness experiments arm a Faults.Injector here) *)
  (match prepare with Some f -> f network | None -> ());
  let outcome_state = Bgp.Network.run network in
  let converged = outcome_state = Sim.Engine.Quiescent in
  let eligible_set = Asn.Set.diff nodes attacker_set in
  let adopters =
    Asn.Set.filter
      (fun asn ->
        match Bgp.Network.best_route network asn scenario.victim_prefix with
        | Some route ->
          (* a bogus best route either originates at an attacker or is an
             impersonation (recognisable by the signature marker) *)
          Asn.Set.mem (Bgp.Route.origin_as ~self:asn route) attacker_set
          || Bgp.Community.Set.mem Attacker.impersonation_marker
               route.Bgp.Route.communities
        | None -> false)
      eligible_set
  in
  let alarm_count, alarming_ases =
    Hashtbl.fold
      (fun asn detector (count, ases) ->
        let n = Moas.Detector.alarm_count detector in
        (count + n, if n > 0 then Asn.Set.add asn ases else ases))
      detectors (0, Asn.Set.empty)
  in
  let first_alarm_at =
    Hashtbl.fold
      (fun _ detector earliest ->
        List.fold_left
          (fun earliest alarm ->
            let time = alarm.Moas.Alarm.time in
            match earliest with
            | Some e when e <= time -> earliest
            | _ -> Some time)
          earliest
          (Moas.Detector.alarms detector))
      detectors None
  in
  let eligible = Asn.Set.cardinal eligible_set in
  if not (Obs.Registry.is_noop metrics) then begin
    (* network-wide aggregates alongside the per-AS series, so exports
       carry the headline numbers without client-side label summing *)
    let open Obs.Registry in
    Counter.add
      (counter metrics "bgp_updates_sent_total")
      (Bgp.Network.total_updates_sent network);
    Counter.add
      (counter metrics "bgp_updates_received_total")
      (Bgp.Network.total_updates_received network);
    Counter.add (counter metrics "moas_alarms_total") alarm_count;
    Counter.add
      (counter metrics "oracle_queries_total")
      (Moas.Origin_verification.query_count oracle)
  end;
  {
    adopters;
    eligible;
    fraction_adopting =
      (if eligible = 0 then 0.0
       else float_of_int (Asn.Set.cardinal adopters) /. float_of_int eligible);
    alarm_count;
    alarming_ases;
    detected = alarm_count > 0;
    first_alarm_at;
    detection_latency =
      Option.map (fun t -> t -. scenario.attack_at) first_alarm_at;
    converged_at = Sim.Engine.now (Bgp.Network.engine network);
    oracle_queries = Moas.Origin_verification.query_count oracle;
    updates_sent = Bgp.Network.total_updates_sent network;
    converged;
    capable;
    droppers;
  }

let victim_prefix_default = Prefix.of_string "192.0.2.0/24"

let random rng ~graph ~stub ~n_origins ~n_attackers ~deployment =
  let stub_pool = Array.of_list (Asn.Set.elements stub) in
  if n_origins <= 0 || n_origins > Array.length stub_pool then
    invalid_arg "Scenario.random: not enough stub ASes for the origins";
  let origins =
    Array.to_list (Rng.sample (Rng.split_at rng 10) stub_pool n_origins)
  in
  let origin_set = Asn.Set.of_list origins in
  let attacker_pool =
    Asn.Set.elements (Asn.Set.diff (Topology.As_graph.nodes graph) origin_set)
  in
  if n_attackers < 0 || n_attackers > List.length attacker_pool then
    invalid_arg "Scenario.random: not enough ASes for the attackers";
  let attackers =
    Rng.sample (Rng.split_at rng 11) (Array.of_list attacker_pool) n_attackers
    |> Array.to_list
    |> List.map (fun asn -> Attacker.make asn)
  in
  make ~deployment ~graph ~victim_prefix:victim_prefix_default
    ~legit_origins:origins ~attackers ()
