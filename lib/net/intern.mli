(** Dense interning: map values with an injective int key ({!Prefix.to_key},
    {!Asn.to_int}) to consecutive ids [0, 1, 2, ...] in first-seen order.

    Hot loops that would otherwise box structural keys — per-prefix state
    tables, session views, shard partitions — index arrays and int-keyed
    hash tables by the dense id instead: lookups compare unboxed ints and
    the hit path allocates nothing.

    Ids are stable for the lifetime of the table (an interner never
    forgets), so an id taken once stays valid; a table rebuilt from a
    snapshot re-derives ids in snapshot order, which is why ids are an
    in-memory handle and never serialised.  Laws, property-tested:
    [of_id t (id t v)] is [v] (up to key equality), and
    [id t a = id t b] iff [key a = key b]. *)

type 'a t

val create : ?size:int -> key:('a -> int) -> unit -> 'a t
(** A fresh interner.  [key] must be injective up to the caller's notion
    of equality; [size] is the initial hash-table sizing hint. *)

val id : 'a t -> 'a -> int
(** The dense id of a value, interning it first if unseen.  Ids count up
    from 0 in first-intern order.  Allocation-free when already interned. *)

val find : 'a t -> 'a -> int
(** The dense id of a value, or [-1] if it was never interned.  Never
    interns; allocation-free (no option boxing). *)

val of_id : 'a t -> int -> 'a
(** The value interned under an id.
    @raise Invalid_argument outside [0, count). *)

val count : 'a t -> int
(** Number of distinct values interned so far; ids live in [0, count). *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Visit every (id, value) pair in id order. *)

val prefixes : ?size:int -> unit -> Prefix.t t
(** An interner over prefixes, keyed by {!Prefix.to_key}. *)

val asns : ?size:int -> unit -> Asn.t t
(** An interner over AS numbers, keyed by {!Asn.to_int}. *)
