(** Defensive binary codec primitives shared by every length-framed,
    big-endian on-disk and on-wire format in the system
    ({!Stream.Checkpoint} [MOASSTRM], {!Collect.Store} [MOASSTOR],
    {!Collect.Query}, [Serve.Proto] [MOASSERV]).

    Writers append to a [Buffer.t]; readers advance a {!cursor} over
    immutable bytes and report malformed input — truncation, bad tags,
    out-of-range values, trailing octets — through the cursor's [fail]
    callback, so each format surfaces its own [Corrupt] exception while
    sharing one implementation of the framing discipline. *)

(** {2 Writers} *)

val put_u8 : Buffer.t -> int -> unit
val put_u16 : Buffer.t -> int -> unit
val put_u32 : Buffer.t -> int -> unit

val put_i63 : Buffer.t -> int -> unit
(** Eight octets holding a non-negative OCaml [int] (63-bit payload).
    @raise Invalid_argument on a negative value. *)

val put_bool : Buffer.t -> bool -> unit
val put_asn : Buffer.t -> Asn.t -> unit
val put_asn_set : Buffer.t -> Asn.Set.t -> unit
val put_prefix : Buffer.t -> Prefix.t -> unit

val put_option : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a option -> unit
(** Tag octet 0 (absent) or 1 (present, followed by the payload). *)

val put_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
(** u32 element count, then the elements in order. *)

val put_string : Buffer.t -> string -> unit
(** u16 length, then the raw octets. *)

(** {2 In-place writers}

    Direct stores into preallocated bytes, for callers that assemble a
    frame in a single allocation (header fields patched after the payload
    is measured) instead of chaining [Buffer.to_bytes] copies. *)

val set_u8 : bytes -> int -> int -> unit
val set_u16 : bytes -> int -> int -> unit
val set_u32 : bytes -> int -> int -> unit

(** {2 Frame integrity} *)

val crc32 : ?seed:int -> bytes -> pos:int -> len:int -> int
(** CRC-32 (IEEE 802.3) of [len] octets starting at [pos], as an
    unsigned 32-bit value.  Pass a previous result as [seed] to chain
    regions.  Any burst error up to 32 bits — in particular any
    single-octet corruption — is guaranteed to change the result, so a
    checksummed frame can never be silently mutated into a different
    valid frame. *)

(** {2 Readers} *)

type cursor
(** A read position over a [pos, limit) window of a byte string, with a
    per-format failure exception.  Slice cursors ({!cursor_slice},
    {!sub_cursor}) share the underlying bytes — decoding an embedded
    region never copies it out first. *)

val cursor : fail:(string -> exn) -> bytes -> cursor
(** [cursor ~fail data] starts at offset 0 over the whole byte string.
    Every malformed-input condition raises [fail message]. *)

val cursor_slice : fail:(string -> exn) -> bytes -> pos:int -> len:int -> cursor
(** A cursor over the [len] octets starting at [pos], without copying.
    @raise Invalid_argument when the slice exceeds the byte string. *)

val sub_cursor : cursor -> int -> cursor
(** [sub_cursor c len] is a child cursor over the next [len] octets of
    [c] (zero-copy view; the replacement for take-bytes copies); [c]
    itself skips past them.  Fails through [c] on truncation. *)

val advance : cursor -> int -> unit
(** Skip [n] octets; fails on truncation. *)

val pos : cursor -> int
val remaining : cursor -> int
(** Octets left before the cursor's limit. *)

val corrupt : cursor -> ('a, unit, string, 'b) format4 -> 'a
(** Raise the cursor's failure exception with a formatted message. *)

val check_crc : cursor -> seed:int -> expect:int -> unit
(** Fail unless {!crc32} over the cursor's {e remaining} octets (chained
    onto [seed]) equals [expect].  The cursor does not advance. *)

val take_u8 : cursor -> int
val take_u16 : cursor -> int
val take_u32 : cursor -> int
val take_i63 : cursor -> int
val take_bool : cursor -> bool
val take_asn : cursor -> Asn.t
val take_asn_set : cursor -> Asn.Set.t
val take_prefix : cursor -> Prefix.t
val take_option : cursor -> (cursor -> 'a) -> 'a option

val take_list : cursor -> (cursor -> 'a) -> 'a list
(** Element counts are sanity-checked against the remaining input before
    any element is decoded (at least one octet per element), so a corrupt
    count field fails immediately instead of looping for up to 2^32
    iterations; same for {!take_asn_set} (two octets per member).
    Decoder work is thereby bounded by the input length whatever the
    count fields claim. *)

val take_string : cursor -> string

val expect_magic : cursor -> string -> unit
(** Consume and check a magic string; fails octet by octet so truncation
    and mismatch both report precisely. *)

val expect_version : cursor -> int -> unit
(** Consume the version octet; fails unless it equals the expected one. *)

val expect_end : cursor -> unit
(** Fails unless the cursor consumed every octet (trailing-octet check). *)
