type t = { network : Ipv4.t; length : int }

let mask len =
  if len = 0 then 0 else 0xffffffff lsl (32 - len) land 0xffffffff

let make addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make: length out of range";
  { network = Ipv4.of_int (Ipv4.to_int addr land mask len); length = len }

let of_string s =
  match String.index_opt s '/' with
  | None -> invalid_arg ("Prefix.of_string: missing '/' in " ^ s)
  | Some i ->
    let addr = Ipv4.of_string (String.sub s 0 i) in
    let len_str = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt len_str with
    | Some len when len >= 0 && len <= 32 -> make addr len
    | _ -> invalid_arg ("Prefix.of_string: bad length in " ^ s))

let to_string t = Printf.sprintf "%s/%d" (Ipv4.to_string t.network) t.length

let pp fmt t = Format.pp_print_string fmt (to_string t)

let network t = t.network
let length t = t.length

let compare a b =
  match Ipv4.compare a.network b.network with
  | 0 -> Int.compare a.length b.length
  | c -> c

let equal a b = compare a b = 0

let contains_addr t addr =
  Ipv4.to_int addr land mask t.length = Ipv4.to_int t.network

let subsumes p q =
  p.length <= q.length
  && Ipv4.to_int q.network land mask p.length = Ipv4.to_int p.network

let is_strict_subprefix ~sub ~of_ = subsumes of_ sub && not (equal sub of_)

let split t =
  if t.length >= 32 then invalid_arg "Prefix.split: cannot split a /32";
  let len = t.length + 1 in
  let lo = make t.network len in
  let hi = make (Ipv4.of_int (Ipv4.to_int t.network lor (1 lsl (32 - len)))) len in
  (lo, hi)

let supernet t =
  if t.length = 0 then invalid_arg "Prefix.supernet: /0 has no parent";
  make t.network (t.length - 1)

let bit t i =
  if i < 0 || i >= t.length then invalid_arg "Prefix.bit: index out of range";
  Ipv4.bit t.network i

let hash t = (Ipv4.to_int t.network * 31) lxor t.length

(* Injective packing into a native int: 32 network bits shifted over the
   6 bits that hold the mask length (0..32).  38 bits total, so the key
   is collision-free on 63-bit OCaml ints — an exact int identity usable
   as an unboxed hash-table key or interning handle. *)
let to_key t = (Ipv4.to_int t.network lsl 6) lor t.length

let of_key k =
  let length = k land 0x3f in
  if length > 32 then invalid_arg "Prefix.of_key: length out of range";
  { network = Ipv4.of_int (k lsr 6); length }

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
