(** IPv4 address prefixes in CIDR notation, the objects whose origin the
    MOAS mechanism validates. *)

type t = private { network : Ipv4.t; length : int }
(** A prefix; the private representation guarantees the host bits of
    [network] are zero and [0 <= length <= 32]. *)

val make : Ipv4.t -> int -> t
(** [make addr len] masks [addr] to [len] bits.
    @raise Invalid_argument if [len] is outside [0,32]. *)

val of_string : string -> t
(** Parse ["a.b.c.d/len"]. @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** CIDR notation. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer (CIDR). *)

val network : t -> Ipv4.t
(** Network address. *)

val length : t -> int
(** Prefix length. *)

val compare : t -> t -> int
(** Total order: by network address, then by length. *)

val equal : t -> t -> bool
(** Equality. *)

val contains_addr : t -> Ipv4.t -> bool
(** [contains_addr p a] tests membership of an address. *)

val subsumes : t -> t -> bool
(** [subsumes p q] is true when [q] is equal to or more specific than [p]
    (i.e. [p] covers [q]'s address space). *)

val is_strict_subprefix : sub:t -> of_:t -> bool
(** [is_strict_subprefix ~sub ~of_] is [subsumes of_ sub && sub <> of_]:
    exactly the "announce a route to a prefix longer than p" attack of the
    paper's Section 4.3. *)

val split : t -> t * t
(** The two /(n+1) halves. @raise Invalid_argument on a /32. *)

val supernet : t -> t
(** The /(n-1) parent. @raise Invalid_argument on a /0. *)

val bit : t -> int -> bool
(** [bit p i] is bit [i] of the network address, for [0 <= i < length p]. *)

val hash : t -> int
(** Hash compatible with {!equal}. *)

val to_key : t -> int
(** Injective packing into a non-negative native int (38 bits: the
    network address over the mask length).  [to_key a = to_key b] iff
    [equal a b], so the key works as an exact unboxed hash-table key —
    no structural comparison, no allocation — and composes into wider
    packed keys (e.g. [(asn lsl 38) lor to_key p] for session tables). *)

val of_key : int -> t
(** Inverse of {!to_key}. @raise Invalid_argument on a key no prefix
    produces. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
