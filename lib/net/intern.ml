(* Dense interning over values with an injective int key.  See intern.mli
   for the contract.

   The key -> id index is a hand-rolled open-addressing table (linear
   probing, power-of-two capacity, load factor <= 1/2) rather than a
   [Hashtbl]: keys are already unboxed ints, so a multiplicative hash and
   an array probe beat the polymorphic [caml_hash] call and bucket chase
   on every lookup, and the hit path touches two flat arrays. *)

type 'a t = {
  key : 'a -> int;
  mutable keys : int array; (* probe-slot -> packed key *)
  mutable slots : int array; (* probe-slot -> id + 1; 0 = empty *)
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable values : 'a array; (* dense id -> value, [count] entries live *)
  mutable count : int;
}

(* Multiplicative hash with the high product bits folded back into the
   low ones.  Callers mask the result down to the table capacity, so the
   fold matters: packed prefix keys are strided (network lsl 6), and the
   low bits of [k * C] alone are constant across such a stride — masking
   them directly would collapse the whole table into one probe chain. *)
let hash k =
  let h = k * 0x2545F4914F6CDD1D in
  h lxor (h lsr 31)

let rec pow2_at_least n c = if c >= n then c else pow2_at_least n (2 * c)

let create ?(size = 256) ~key () =
  let cap = pow2_at_least (2 * size) 16 in
  {
    key;
    keys = Array.make cap 0;
    slots = Array.make cap 0;
    mask = cap - 1;
    values = [||];
    count = 0;
  }

let count t = t.count

(* First slot that either holds [k] or is empty. *)
let rec probe t k i =
  let s = t.slots.(i) in
  if s = 0 || t.keys.(i) = k then i else probe t k ((i + 1) land t.mask)

let grow_index t =
  let ncap = 2 * Array.length t.slots in
  let keys = Array.make ncap 0 and slots = Array.make ncap 0 in
  let nmask = ncap - 1 in
  for i = 0 to Array.length t.slots - 1 do
    let s = t.slots.(i) in
    if s <> 0 then begin
      let k = t.keys.(i) in
      let j = ref (hash k land nmask) in
      while slots.(!j) <> 0 do
        j := (!j + 1) land nmask
      done;
      keys.(!j) <- k;
      slots.(!j) <- s
    end
  done;
  t.keys <- keys;
  t.slots <- slots;
  t.mask <- nmask

let ensure_room t v =
  if t.count >= Array.length t.values then begin
    let cap = max 8 (2 * Array.length t.values) in
    let grown = Array.make cap v in
    Array.blit t.values 0 grown 0 t.count;
    t.values <- grown
  end

let id t v =
  let k = t.key v in
  let i = probe t k (hash k land t.mask) in
  if t.slots.(i) <> 0 then t.slots.(i) - 1
  else begin
    let n = t.count in
    ensure_room t v;
    t.values.(n) <- v;
    t.count <- n + 1;
    t.keys.(i) <- k;
    t.slots.(i) <- n + 1;
    if 2 * t.count >= Array.length t.slots then grow_index t;
    n
  end

let find t v =
  let k = t.key v in
  (* empty slot holds 0, so this is -1 exactly when [v] was never seen *)
  t.slots.(probe t k (hash k land t.mask)) - 1

let of_id t i =
  if i < 0 || i >= t.count then
    invalid_arg (Printf.sprintf "Intern.of_id: %d outside [0,%d)" i t.count);
  t.values.(i)

let iter t f =
  for i = 0 to t.count - 1 do
    f i t.values.(i)
  done

let prefixes ?size () = create ?size ~key:Prefix.to_key ()
let asns ?size () = create ?size ~key:Asn.to_int ()
