(* Shared writers/readers for the MOASSTRM/MOASSTOR/MOASSERV family of
   binary formats.  See codec.mli for the discipline. *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_u16 buf v =
  put_u8 buf (v lsr 8);
  put_u8 buf v

let put_u32 buf v =
  put_u16 buf (v lsr 16);
  put_u16 buf (v land 0xffff)

let put_i63 buf v =
  if v < 0 then invalid_arg "Net.Codec: negative integer";
  put_u32 buf (v lsr 32);
  put_u32 buf (v land 0xffffffff)

let put_bool buf b = put_u8 buf (if b then 1 else 0)
let put_asn buf a = put_u16 buf (Asn.to_int a)

let put_asn_set buf s =
  put_u32 buf (Asn.Set.cardinal s);
  Asn.Set.iter (put_asn buf) s

let put_prefix buf p =
  put_u32 buf (Ipv4.to_int (Prefix.network p));
  put_u8 buf (Prefix.length p)

let put_option buf put = function
  | None -> put_u8 buf 0
  | Some v ->
    put_u8 buf 1;
    put buf v

let put_list buf put l =
  put_u32 buf (List.length l);
  List.iter (put buf) l

let put_string buf s =
  put_u16 buf (String.length s);
  Buffer.add_string buf s

(* ------------------------------------------------------------------ *)

(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for frame
   integrity: any single-octet corruption — any burst up to 32 bits —
   is guaranteed to change the checksum, so a flipped bit can never
   turn one valid frame into a different valid frame. *)

let crc32_table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let crc32 ?(seed = 0) data ~pos ~len =
  let crc = ref (seed lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    crc :=
      crc32_table.((!crc lxor Char.code (Bytes.get data i)) land 0xff)
      lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF

(* Direct writers into preallocated bytes, for callers that assemble a
   frame in place (single allocation, no Buffer-to-bytes copy). *)

let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))

let set_u16 b off v =
  set_u8 b off (v lsr 8);
  set_u8 b (off + 1) v

let set_u32 b off v =
  set_u16 b off (v lsr 16);
  set_u16 b (off + 2) (v land 0xffff)

type cursor = {
  data : bytes;
  mutable pos : int;
  limit : int; (* exclusive upper bound: a slice view decodes [pos, limit) *)
  fail : string -> exn;
}

let cursor ~fail data = { data; pos = 0; limit = Bytes.length data; fail }

let cursor_slice ~fail data ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length data then
    invalid_arg "Net.Codec.cursor_slice: slice out of bounds";
  { data; pos; limit = pos + len; fail }

let pos c = c.pos
let remaining c = c.limit - c.pos
let corrupt c fmt = Printf.ksprintf (fun s -> raise (c.fail s)) fmt

(* A child cursor over the next [len] octets of the parent, sharing the
   underlying bytes (no [Bytes.sub]); the parent skips past them. *)
let sub_cursor c len =
  if len < 0 || c.pos + len > c.limit then
    corrupt c "truncated slice of %d octets at %d" len c.pos;
  let child = { data = c.data; pos = c.pos; limit = c.pos + len; fail = c.fail } in
  c.pos <- c.pos + len;
  child

let advance c n =
  if n < 0 || c.pos + n > c.limit then
    corrupt c "truncated skip of %d octets at %d" n c.pos;
  c.pos <- c.pos + n

let check_crc c ~seed ~expect =
  let actual = crc32 ~seed c.data ~pos:c.pos ~len:(remaining c) in
  if actual <> expect then
    corrupt c "frame checksum mismatch (header %08x, computed %08x)" expect
      actual

let take_u8 c =
  if c.pos >= c.limit then corrupt c "truncated at octet %d" c.pos;
  let v = Char.code (Bytes.get c.data c.pos) in
  c.pos <- c.pos + 1;
  v

let take_u16 c =
  let hi = take_u8 c in
  (hi lsl 8) lor take_u8 c

let take_u32 c =
  let hi = take_u16 c in
  (hi lsl 16) lor take_u16 c

let take_i63 c =
  let hi = take_u32 c in
  (hi lsl 32) lor take_u32 c

let take_bool c =
  match take_u8 c with
  | 0 -> false
  | 1 -> true
  | t -> corrupt c "boolean tag %d" t

let take_asn c =
  let v = take_u16 c in
  try Asn.make v with Invalid_argument _ -> corrupt c "AS number %d" v

(* A corrupt element count must fail immediately, not after billions of
   iterations: every element occupies at least [elt_size] octets, so a
   count the remaining input cannot possibly hold is a length lie.  This
   bounds decoder work by the input size whatever the count field says. *)
let check_count c ~elt_size n =
  if n < 0 || n > remaining c / elt_size then
    corrupt c "element count %d exceeds %d remaining octets" n (remaining c)

let take_asn_set c =
  let n = take_u32 c in
  check_count c ~elt_size:2 n;
  let rec loop acc k =
    if k = 0 then acc else loop (Asn.Set.add (take_asn c) acc) (k - 1)
  in
  loop Asn.Set.empty n

let take_prefix c =
  let net = take_u32 c in
  let len = take_u8 c in
  if len > 32 then corrupt c "prefix length %d" len;
  Prefix.make (Ipv4.of_int net) len

let take_option c take =
  match take_u8 c with
  | 0 -> None
  | 1 -> Some (take c)
  | t -> corrupt c "option tag %d" t

let take_list c take =
  let n = take_u32 c in
  check_count c ~elt_size:1 n;
  let rec loop acc k =
    if k = 0 then List.rev acc else loop (take c :: acc) (k - 1)
  in
  loop [] n

let take_string c =
  let n = take_u16 c in
  if c.pos + n > c.limit then corrupt c "truncated string at %d" c.pos;
  let s = Bytes.sub_string c.data c.pos n in
  c.pos <- c.pos + n;
  s

let expect_magic c magic =
  String.iter
    (fun ch -> if take_u8 c <> Char.code ch then corrupt c "bad magic")
    magic

let expect_version c version =
  let v = take_u8 c in
  if v <> version then corrupt c "unsupported version %d" v

let expect_end c =
  if remaining c <> 0 then corrupt c "%d trailing octets" (remaining c)
