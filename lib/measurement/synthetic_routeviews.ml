open Net
module Rng = Mutil.Rng
module Day = Mutil.Day

type params = {
  seed : int64;
  universe_size : int;
  initial_long_lived : int;
  final_long_lived : int;
  one_day_churn : int;
  medium_churn : int;
  medium_max_duration : int;
  missing_day_count : int;
  event_1998_size : int;
  event_2001_size : int;
}

(* Calibration: 1290 long-lived + 1135 (1998 event) + 970 (2001 event)
   + 238 one-day churn + 191 medium churn = 3824 distinct MOAS prefixes,
   of which 1135 + 238 = 1373 last one day (35.9%), with 82.7% of the
   one-day cases due to the 1998-04-07 fault — the paper's numbers. *)
let default_params =
  {
    seed = 0x524f555445L (* "ROUTE" *);
    universe_size = 4000;
    initial_long_lived = 650;
    final_long_lived = 1390;
    one_day_churn = 238;
    medium_churn = 91;
    medium_max_duration = 60;
    missing_day_count = 70;
    event_1998_size = 1135;
    event_2001_size = 970;
  }

type day_dump = { day : Day.t; table : (Prefix.t * Asn.Set.t) list }

let fault_as_1998 = Asn.make 8584
let fault_as_2001 = Asn.make 15412

let event_1998 = Day.of_ymd 1998 4 7
let event_2001 = Day.of_ymd 2001 4 6

(* One MOAS episode: the prefix at [index] gains [extra] origins on the
   half-open day range [start_off, start_off + duration). *)
type episode = { index : int; start_off : int; duration : int; extra : Asn.Set.t }

let window = Day.measurement_days

let validate p =
  let moas_total =
    p.initial_long_lived
    + (p.final_long_lived - p.initial_long_lived)
    + p.event_1998_size + p.event_2001_size + p.one_day_churn + p.medium_churn
  in
  if p.final_long_lived < p.initial_long_lived then
    invalid_arg "Synthetic_routeviews: long-lived pool cannot shrink";
  if p.universe_size < moas_total then
    invalid_arg "Synthetic_routeviews: universe too small for the episodes";
  if p.missing_day_count < 0 || p.missing_day_count > window / 2 then
    invalid_arg "Synthetic_routeviews: unreasonable missing-day count"

(* Deterministic prefix universe: distinct /16s and /17s spread over the
   unicast space, which keeps prefixes comparable and collision-free. *)
let universe_prefix i =
  let block = i / 200 and slot = i mod 200 in
  Prefix.make (Ipv4.of_octets (1 + (block mod 200)) slot 0 0) 24
  |> fun p -> Prefix.make (Prefix.network p) (if i mod 3 = 0 then 16 else 24)

let fresh_asn rng used =
  let rec draw () =
    let asn = Asn.make (1 + Rng.int rng 64000) in
    if Hashtbl.mem used asn then draw ()
    else begin
      Hashtbl.add used asn ();
      asn
    end
  in
  draw ()

(* Extra-origin multiplicity per non-fault case.  The fault events always
   involve exactly two origins, so the background mix is tilted so that the
   overall distribution lands on the paper's 96.14% / 2.7% / 1.16% split. *)
let extra_origin_count rng =
  let roll = Rng.float rng 1.0 in
  if roll < 0.914 then 1 else if roll < 0.974 then 2 else 3

let shuffled_indices rng n =
  let a = Array.init n (fun i -> i) in
  Rng.shuffle rng a;
  a

let build_episodes p rng base_origins ~missing =
  let used = Hashtbl.create 4096 in
  Array.iter (fun asn -> Hashtbl.replace used asn ()) base_origins;
  Hashtbl.replace used fault_as_1998 ();
  Hashtbl.replace used fault_as_2001 ();
  let order = shuffled_indices rng p.universe_size in
  let cursor = ref 0 in
  let take n =
    let taken = Array.sub order !cursor n in
    cursor := !cursor + n;
    taken
  in
  let extras_for index =
    let n = extra_origin_count rng in
    let rec build acc k = if k = 0 then acc else build (Asn.Set.add (fresh_asn rng used) acc) (k - 1) in
    ignore index;
    build Asn.Set.empty n
  in
  let episodes = ref [] in
  let add e = episodes := e :: !episodes in
  (* long-lived multi-homing MOAS: active from an activation day to the end
     of the window.  Activations follow a convex schedule (Internet-growth
     shaped: few new multi-homed organisations early, many late), which is
     what reconciles the paper's 1998 median of 683 with the 2001 median of
     1294 *)
  let ramp = p.final_long_lived - p.initial_long_lived in
  let long_idx = take p.final_long_lived in
  Array.iteri
    (fun k index ->
      let start_off =
        if k < p.initial_long_lived then 0
        else
          let j = k - p.initial_long_lived in
          let f = sqrt (float_of_int (j + 1) /. float_of_int (max 1 ramp)) in
          max 1 (int_of_float (f *. float_of_int (window - 1)))
      in
      add { index; start_off; duration = window - start_off; extra = extras_for index })
    long_idx;
  (* the 1998-04-07 fault: AS8584 announces prefixes of other organisations
     for a single day *)
  let ev98_off = Day.diff event_1998 Day.measurement_start in
  Array.iter
    (fun index ->
      add
        {
          index;
          start_off = ev98_off;
          duration = 1;
          extra = Asn.Set.singleton fault_as_1998;
        })
    (take p.event_1998_size);
  (* the 2001-04-06 fault: AS15412 originates thousands of foreign prefixes
     for about two days *)
  let ev01_off = Day.diff event_2001 Day.measurement_start in
  Array.iter
    (fun index ->
      add
        {
          index;
          start_off = ev01_off;
          duration = 2;
          extra = Asn.Set.singleton fault_as_2001;
        })
    (take p.event_2001_size);
  (* background churn; one-day episodes must land on an observed day or
     they would never appear in any dump *)
  let observed_day () =
    let rec draw () =
      let off = Rng.int rng window in
      if missing.(off) then draw () else off
    in
    draw ()
  in
  Array.iter
    (fun index ->
      add { index; start_off = observed_day (); duration = 1; extra = extras_for index })
    (take p.one_day_churn);
  (* medium episodes: geometric durations (mean about a week), matching
     Figure 5's monotone decay beyond the one-day spike *)
  Array.iter
    (fun index ->
      let duration =
        min p.medium_max_duration (2 + Rng.geometric rng 0.18)
      in
      let start_off = Rng.int rng (max 1 (window - duration)) in
      add { index; start_off; duration; extra = extras_for index })
    (take p.medium_churn);
  !episodes

(* Collector outages: two long maintenance gaps plus scattered single
   days, matching the texture of the real archive. *)
let missing_days_of p rng =
  let missing = Array.make window false in
  let mark off = if off >= 0 && off < window then missing.(off) <- true in
  let long_gap_1 = 30 and long_gap_2 = 20 in
  let budget = p.missing_day_count in
  let g1 = min long_gap_1 budget in
  let start1 = 200 in
  for i = start1 to start1 + g1 - 1 do mark i done;
  let g2 = min long_gap_2 (budget - g1) in
  let start2 = 700 in
  for i = start2 to start2 + g2 - 1 do mark i done;
  let scattered = budget - g1 - g2 in
  let placed = ref 0 in
  while !placed < scattered do
    let off = Rng.int rng window in
    (* never lose the two fault events to an outage *)
    let ev98 = Day.diff event_1998 Day.measurement_start in
    let ev01 = Day.diff event_2001 Day.measurement_start in
    if (not missing.(off)) && off <> ev98 && off <> ev01 && off <> ev01 + 1
    then begin
      missing.(off) <- true;
      incr placed
    end
  done;
  missing

let setup p =
  validate p;
  let rng = Rng.create ~seed:p.seed in
  let base_origins =
    let used = Hashtbl.create 4096 in
    Hashtbl.replace used fault_as_1998 ();
    Hashtbl.replace used fault_as_2001 ();
    Array.init p.universe_size (fun _ -> fresh_asn rng used)
  in
  let missing = missing_days_of p (Rng.split_at rng 2) in
  let episodes = build_episodes p (Rng.split_at rng 1) base_origins ~missing in
  (base_origins, episodes, missing)

let observed_days p =
  let _, _, missing = setup p in
  Array.map not missing

(* Pull-based generator: one day_dump at a time, sharing the mutable
   per-prefix extras sweep across forcings — single-pass, like reading
   table files in order. *)
let dump_seq p =
  let base_origins, episodes, missing = setup p in
  let prefixes = Array.init p.universe_size universe_prefix in
  (* per-day start and stop queues *)
  let starts = Array.make window [] in
  let stops = Array.make window [] in
  List.iter
    (fun e ->
      if e.start_off < window then begin
        starts.(e.start_off) <- e :: starts.(e.start_off);
        let stop = e.start_off + e.duration in
        if stop < window then stops.(stop) <- e :: stops.(stop)
      end)
    episodes;
  (* current extra origins per prefix index *)
  let extras : Asn.Set.t array = Array.make p.universe_size Asn.Set.empty in
  let rec step off () =
    if off >= window then Seq.Nil
    else begin
      List.iter
        (fun e -> extras.(e.index) <- Asn.Set.union extras.(e.index) e.extra)
        starts.(off);
      List.iter
        (fun e -> extras.(e.index) <- Asn.Set.diff extras.(e.index) e.extra)
        stops.(off);
      if missing.(off) then step (off + 1) ()
      else begin
        let table = ref [] in
        for i = p.universe_size - 1 downto 0 do
          let origins = Asn.Set.add base_origins.(i) extras.(i) in
          table := (prefixes.(i), origins) :: !table
        done;
        Seq.Cons
          ( { day = Day.add Day.measurement_start off; table = !table },
            step (off + 1) )
      end
    end
  in
  step 0

let fold_dumps p ~init ~f = Seq.fold_left f init (dump_seq p)
