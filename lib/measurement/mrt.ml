open Net

type record = {
  timestamp : int;
  peer_as : Asn.t;
  prefix : Prefix.t;
  as_path : Bgp.As_path.t;
}

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let mrt_type_table_dump = 12
let mrt_subtype_afi_ipv4 = 1

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_u16 buf v =
  put_u8 buf (v lsr 8);
  put_u8 buf v

let put_u32 buf v =
  put_u16 buf (v lsr 16);
  put_u16 buf (v land 0xffff)

(* the per-record attribute section reuses the BGP wire codec: ORIGIN,
   AS_PATH, NEXT_HOP, LOCAL_PREF as a standard attribute blob *)
let attribute_blob as_path =
  let message =
    {
      Bgp.Wire.withdrawn = [];
      attributes =
        Some
          {
            Bgp.Wire.origin = Bgp.Route.Igp;
            as_path;
            local_pref = 100;
            communities = Bgp.Community.Set.empty;
          };
      nlri = [];
    }
  in
  let whole = Bgp.Wire.encode message in
  (* strip header (16+2+1) and the withdrawn-length field (2) and the
     attribute-length field (2): keep just the attribute octets *)
  let offset = Bgp.Wire.marker_length + 3 + 2 + 2 in
  Bytes.sub whole offset (Bytes.length whole - offset)

let encode_record r =
  let attrs = attribute_blob r.as_path in
  let buf = Buffer.create (32 + Bytes.length attrs) in
  put_u32 buf r.timestamp;
  put_u16 buf mrt_type_table_dump;
  put_u16 buf mrt_subtype_afi_ipv4;
  (* record body *)
  put_u16 buf 0 (* view *);
  put_u16 buf 0 (* sequence *);
  put_u32 buf (Ipv4.to_int (Prefix.network r.prefix));
  put_u8 buf (Prefix.length r.prefix);
  put_u8 buf 1 (* status *);
  put_u32 buf r.timestamp (* originated *);
  put_u32 buf 0 (* peer IP: unmodelled *);
  put_u16 buf (Asn.to_int r.peer_as);
  put_u16 buf (Bytes.length attrs);
  Buffer.add_bytes buf attrs;
  Buffer.to_bytes buf

let encode_records records =
  let buf = Buffer.create 4096 in
  List.iter (fun r -> Buffer.add_bytes buf (encode_record r)) records;
  Buffer.to_bytes buf

let record_size r = Bytes.length (encode_record r)

type cursor = { data : bytes; mutable pos : int }

let take_u8 c =
  if c.pos >= Bytes.length c.data then malformed "truncated at %d" c.pos;
  let v = Char.code (Bytes.get c.data c.pos) in
  c.pos <- c.pos + 1;
  v

let take_u16 c =
  let hi = take_u8 c in
  (hi lsl 8) lor take_u8 c

let take_u32 c =
  let hi = take_u16 c in
  (hi lsl 16) lor take_u16 c

let decode_record c =
  let timestamp = take_u32 c in
  let typ = take_u16 c in
  if typ <> mrt_type_table_dump then malformed "MRT type %d" typ;
  let subtype = take_u16 c in
  if subtype <> mrt_subtype_afi_ipv4 then malformed "MRT subtype %d" subtype;
  let _view = take_u16 c in
  let _seq = take_u16 c in
  let network = take_u32 c in
  let mask = take_u8 c in
  if mask > 32 then malformed "mask %d" mask;
  let _status = take_u8 c in
  let _originated = take_u32 c in
  let _peer_ip = take_u32 c in
  let peer_as = Asn.make (take_u16 c) in
  let attr_len = take_u16 c in
  if c.pos + attr_len > Bytes.length c.data then malformed "attributes overrun";
  if attr_len = 0 then malformed "record without attributes";
  (* the attribute blob parses where it lies — a zero-copy slice view,
     no rebuilt UPDATE message, no intermediate buffers *)
  let attrs =
    try Bgp.Wire.decode_attributes c.data ~pos:c.pos ~len:attr_len
    with Bgp.Wire.Malformed m -> malformed "attribute blob: %s" m
  in
  c.pos <- c.pos + attr_len;
  {
    timestamp;
    peer_as;
    prefix = Prefix.make (Ipv4.of_int network) mask;
    as_path = attrs.Bgp.Wire.as_path;
  }

let fold_records data ~init ~f =
  let c = { data; pos = 0 } in
  let rec loop acc =
    if c.pos >= Bytes.length data then acc else loop (f acc (decode_record c))
  in
  loop init

let decode_records data =
  List.rev (fold_records data ~init:[] ~f:(fun acc r -> r :: acc))

let records_of_table ~timestamp table =
  List.concat_map
    (fun (prefix, origins) ->
      List.map
        (fun origin ->
          {
            timestamp;
            peer_as = origin;
            prefix;
            as_path = Bgp.As_path.of_list [ origin ];
          })
        (Asn.Set.elements origins))
    table

let table_of_records records =
  let tbl = Hashtbl.create 1024 in
  List.iter
    (fun r ->
      let origin =
        match Bgp.As_path.origin_as r.as_path with
        | Some o -> o
        | None -> r.peer_as
      in
      let existing =
        Option.value ~default:Asn.Set.empty (Hashtbl.find_opt tbl r.prefix)
      in
      Hashtbl.replace tbl r.prefix (Asn.Set.add origin existing))
    records;
  Hashtbl.fold (fun prefix origins acc -> (prefix, origins) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Prefix.compare a b)
