(** Synthetic Oregon RouteViews archive (DESIGN.md substitution 2).

    The paper's Section 3 measures MOAS cases over daily routing-table
    dumps from 1997-11-08 to 2001-07-18.  This module generates a stream
    of daily dumps with the documented phenomenology, calibrated to the
    paper's aggregates:

    - a growing population of long-lived multi-homing/ASE MOAS prefixes
      (daily median 683 in 1998 rising to 1294 in 2001);
    - short- and medium-lived operational churn;
    - the 1998-04-07 AS8584 fault (1,135 one-day cases — 82.7% of all
      one-day cases) and the 2001-04-06 AS15412/AS3561 fault;
    - roughly 70 days of missed collection, leaving the paper's 1279
      observed days.

    Dumps are streamed day by day so the analysis never holds the full
    archive in memory, exactly like folding over table files. *)

open Net

type params = {
  seed : int64;
  universe_size : int;  (** prefixes in the table; some never become MOAS *)
  initial_long_lived : int;  (** standing MOAS prefixes on day one *)
  final_long_lived : int;  (** standing MOAS prefixes on the last day *)
  one_day_churn : int;  (** spontaneous single-day conflicts (non-event) *)
  medium_churn : int;  (** conflicts lasting a few days to two months *)
  medium_max_duration : int;  (** upper bound for medium episodes, days *)
  missing_day_count : int;  (** collector outage days *)
  event_1998_size : int;  (** prefixes hit by the 1998-04-07 AS8584 fault *)
  event_2001_size : int;  (** prefixes hit by the 2001-04-06 AS15412 fault *)
}

val default_params : params
(** Calibrated to the paper's reported aggregates (see module doc). *)

type day_dump = {
  day : Mutil.Day.t;
  table : (Prefix.t * Asn.Set.t) list;
      (** origin set per prefix, as extracted from one daily table dump *)
}

val observed_days : params -> bool array
(** Index [d] (offset from {!Mutil.Day.measurement_start}) tells whether
    the collector produced a dump that day. *)

val dump_seq : params -> day_dump Seq.t
(** The observed daily dumps in chronological order, generated on
    demand.  The sequence is {e single-pass}: forcings share one mutable
    origin sweep, so consume it front to back exactly once (re-call
    [dump_seq] for another pass). *)

val fold_dumps : params -> init:'a -> f:('a -> day_dump -> 'a) -> 'a
(** Fold over the observed daily dumps in chronological order
    (one-pass consumption of {!dump_seq}). *)

val fault_as_1998 : Asn.t
(** AS 8584, the origin of the 1998-04-07 fault. *)

val fault_as_2001 : Asn.t
(** AS 15412, the origin of the 2001-04-06 fault. *)

val event_1998 : Mutil.Day.t
(** 1998-04-07. *)

val event_2001 : Mutil.Day.t
(** 2001-04-06. *)
