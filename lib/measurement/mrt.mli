(** A simplified MRT TABLE_DUMP codec (RFC 6396's TABLE_DUMP type with
    AFI IPv4), the on-disk format of the Oregon RouteViews archive the
    paper mined.

    One record per (prefix, origin) pair: a prefix with several origins in
    a daily dump produces several records, exactly like a collector that
    peers with several routers.  The measurement pipeline can round-trip
    its synthetic dumps through this codec so that the analysis reads the
    same byte format the paper's scripts read. *)

open Net

type record = {
  timestamp : int;  (** seconds; the day offset is used by the generator *)
  peer_as : Asn.t;  (** the feed that contributed the entry *)
  prefix : Prefix.t;
  as_path : Bgp.As_path.t;  (** the path as seen by the collector *)
}

exception Malformed of string
(** Raised on truncated or inconsistent input. *)

val encode_records : record list -> bytes
(** Serialise records back-to-back. *)

val decode_records : bytes -> record list
(** Parse a concatenation of TABLE_DUMP records.  @raise Malformed. *)

val fold_records : bytes -> init:'a -> f:('a -> record -> 'a) -> 'a
(** Streaming fold over a concatenation of TABLE_DUMP records, in file
    order, decoding one record at a time — constant memory beyond the
    input bytes and the accumulator.  [decode_records] is this fold
    building a list.  @raise Malformed. *)

val records_of_table :
  timestamp:int -> (Prefix.t * Asn.Set.t) list -> record list
(** Expand a daily origin-set table into one record per (prefix, origin),
    with the origin standing as both path tail and peer (the collector's
    view of a directly peering origin). *)

val table_of_records : record list -> (Prefix.t * Asn.Set.t) list
(** Group records back into an origin-set table (prefixes sorted).  The
    origin of a record is its AS-path tail. *)

val record_size : record -> int
(** Octet size of one encoded record. *)
