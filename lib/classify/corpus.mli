(** The labelled scenario corpus — layer 2's consumer.

    A corpus is a deterministic grid of {!Collect.Scenario} captures —
    every {!Collect.Scenario.arm} crossed with a topology/mesh-size
    grid — pushed through the collector mesh and labelled by the
    {!Baselines.Roa_registry} ground-truth oracle: an episode is a
    positive example iff the registry validates its origin set
    [Invalid].  Captures run in parallel on {!Exec.Pool} with
    per-run seeds pre-split by run index, so the example list is
    byte-identical at any job count and independent of scheduling. *)

type example = {
  ex_arm : Collect.Scenario.arm;
  ex_run : int;  (** index of the capture this episode came from *)
  ex_entry : Collect.Correlator.entry;
  ex_features : float array;  (** {!Features.extract} under the run's context *)
  ex_label : bool;  (** true iff the ROA oracle says [Invalid] *)
  ex_validity : Baselines.Roa_registry.validity;
  ex_moas_flagged : bool;  (** the MOAS-list detector's verdict *)
}

type t = {
  c_examples : example list;
      (** canonical order: run index, then prefix, then episode seq *)
  c_runs : int;  (** captures performed *)
}

val registry_of_scenario : Collect.Scenario.t -> Baselines.Roa_registry.t
(** The full-coverage ground-truth registry a scenario implies: the
    legitimate origin for the attacked prefix, both homes for the
    multihomed prefix, the control origin for the quiet prefix — and
    never the attacker. *)

val build :
  ?metrics:Obs.Registry.t ->
  ?jobs:int ->
  smoke:bool ->
  seed:int64 ->
  unit ->
  t
(** Capture and label the grid.  [smoke] restricts to the 25-AS topology
    with 3- and 4-vantage meshes (6 captures); the full grid crosses all
    three paper topologies with both mesh sizes (18 captures).
    Deterministic from [seed] alone. *)

val split : t -> example list * example list
(** (train, eval): captures with even run index train, odd evaluate —
    both halves cover every arm and topology. *)

val positives : example list -> int
(** Labelled-invalid examples. *)
