type scaler = { sc_means : float array; sc_stds : float array }

let check_dim ~dim v =
  if Array.length v <> dim then
    invalid_arg
      (Printf.sprintf "Classify.Model: feature vector has %d coordinates, \
                       expected %d"
         (Array.length v) dim)

let fit_scaler ~dim vectors =
  let n = List.length vectors in
  if n = 0 then invalid_arg "Classify.Model.fit_scaler: empty sample";
  let means = Array.make dim 0. and stds = Array.make dim 0. in
  List.iter
    (fun v ->
      check_dim ~dim v;
      Array.iteri (fun i x -> means.(i) <- means.(i) +. x) v)
    vectors;
  let nf = float_of_int n in
  Array.iteri (fun i s -> means.(i) <- s /. nf) means;
  List.iter
    (fun v ->
      Array.iteri
        (fun i x ->
          let d = x -. means.(i) in
          stds.(i) <- stds.(i) +. (d *. d))
        v)
    vectors;
  Array.iteri
    (fun i s ->
      let sd = sqrt (s /. nf) in
      stds.(i) <- (if sd > 1e-12 then sd else 0.))
    stds;
  { sc_means = means; sc_stds = stds }

let transform sc v =
  check_dim ~dim:(Array.length sc.sc_means) v;
  Array.mapi
    (fun i x ->
      if sc.sc_stds.(i) = 0. then 0. else (x -. sc.sc_means.(i)) /. sc.sc_stds.(i))
    v

let sigmoid z =
  if z >= 0. then 1. /. (1. +. exp (-.z))
  else
    let e = exp z in
    e /. (1. +. e)

(* ------------------------------------------------------------------ *)
(* Logistic regression *)

type logistic = { l_scaler : scaler; l_weights : float array; l_bias : float }

let train_logistic ?(epochs = 400) ?(learning_rate = 0.5) ?(l2 = 1e-3) ~dim
    examples =
  if examples = [] then invalid_arg "Classify.Model.train_logistic: no examples";
  let scaler = fit_scaler ~dim (List.map fst examples) in
  let xs =
    List.map (fun (v, label) -> (transform scaler v, if label then 1. else 0.))
      examples
  in
  let n = float_of_int (List.length xs) in
  let w = Array.make dim 0. in
  let b = ref 0. in
  for _ = 1 to epochs do
    let gw = Array.make dim 0. and gb = ref 0. in
    List.iter
      (fun (x, y) ->
        let z = ref !b in
        Array.iteri (fun i xi -> z := !z +. (w.(i) *. xi)) x;
        let err = sigmoid !z -. y in
        Array.iteri (fun i xi -> gw.(i) <- gw.(i) +. (err *. xi)) x;
        gb := !gb +. err)
      xs;
    Array.iteri
      (fun i g -> w.(i) <- w.(i) -. (learning_rate *. ((g /. n) +. (l2 *. w.(i)))))
      gw;
    b := !b -. (learning_rate *. !gb /. n)
  done;
  { l_scaler = scaler; l_weights = w; l_bias = !b }

let predict m v =
  let x = transform m.l_scaler v in
  let z = ref m.l_bias in
  Array.iteri (fun i xi -> z := !z +. (m.l_weights.(i) *. xi)) x;
  sigmoid !z

let weights m =
  Array.append
    (Array.mapi (fun i w -> (Features.names.(i), w)) m.l_weights)
    [| ("(bias)", m.l_bias) |]

(* ------------------------------------------------------------------ *)
(* Boosted depth-1 stumps *)

type stump = { st_feature : int; st_threshold : float; st_gt : bool }
(* predicts positive when (x > threshold) = gt *)

type stumps = { e_stumps : (stump * float) list (* stump, alpha *) }

let stump_predicts s x = x.(s.st_feature) > s.st_threshold = s.st_gt

(* candidate thresholds: midpoints between consecutive distinct values *)
let thresholds values =
  let sorted = List.sort_uniq compare values in
  let rec mids = function
    | a :: (b :: _ as rest) -> ((a +. b) /. 2.) :: mids rest
    | _ -> []
  in
  mids sorted

let train_stumps ?(rounds = 30) ~dim examples =
  if examples = [] then invalid_arg "Classify.Model.train_stumps: no examples";
  List.iter (fun (v, _) -> check_dim ~dim v) examples;
  let xs = Array.of_list examples in
  let n = Array.length xs in
  let candidates =
    List.concat
      (List.init dim (fun f ->
           thresholds
             (Array.to_list (Array.map (fun (v, _) -> v.(f)) xs))
           |> List.concat_map (fun t ->
                  [
                    { st_feature = f; st_threshold = t; st_gt = true };
                    { st_feature = f; st_threshold = t; st_gt = false };
                  ])))
  in
  if candidates = [] then { e_stumps = [] }
  else begin
    let weights = Array.make n (1. /. float_of_int n) in
    let picked = ref [] in
    (try
       for _ = 1 to rounds do
         (* the first candidate in enumeration order wins error ties, so
            selection is deterministic *)
         let best, best_err =
           List.fold_left
             (fun (bs, be) s ->
               let err = ref 0. in
               Array.iteri
                 (fun i (v, label) ->
                   if stump_predicts s v <> label then err := !err +. weights.(i))
                 xs;
               if !err < be -. 1e-12 then (Some s, !err) else (bs, be))
             (None, infinity) candidates
         in
         match best with
         | None -> raise Exit
         | Some s ->
           if best_err >= 0.5 -. 1e-9 then raise Exit;
           let eps = Float.max best_err 1e-10 in
           let alpha = 0.5 *. log ((1. -. eps) /. eps) in
           picked := (s, alpha) :: !picked;
           let total = ref 0. in
           Array.iteri
             (fun i (v, label) ->
               let sign = if stump_predicts s v = label then -1. else 1. in
               weights.(i) <- weights.(i) *. exp (sign *. alpha);
               total := !total +. weights.(i))
             xs;
           Array.iteri (fun i w -> weights.(i) <- w /. !total) weights
       done
     with Exit -> ());
    { e_stumps = List.rev !picked }
  end

let stumps_predict e v =
  let margin =
    List.fold_left
      (fun acc (s, alpha) ->
        acc +. if stump_predicts s v then alpha else -.alpha)
      0. e.e_stumps
  in
  sigmoid (2. *. margin)

let stumps_size e = List.length e.e_stumps

(* ------------------------------------------------------------------ *)
(* Verdicts *)

type verdict = Benign | Suspicious | Invalid

let verdict_to_string = function
  | Benign -> "benign"
  | Suspicious -> "suspicious"
  | Invalid -> "invalid"

let verdict_of_score p =
  if p < 0.3 then Benign else if p < 0.7 then Suspicious else Invalid

let flag_threshold = 0.5
let flagged p = p >= flag_threshold
