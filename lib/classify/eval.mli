(** Train/eval harness and report — layer 4 of the classifier.

    Splits the {!Corpus} by run parity, trains both {!Model}s on the
    train half, and scores four detectors on the eval half:

    - ["logistic"] — logistic regression at the {!Model.flag_threshold}
      operating point;
    - ["stumps"] — the boosted stump ensemble at the same threshold;
    - ["moas-list"] — the paper's MOAS-list consistency check (flag iff
      the episode was not validated by agreeing lists), the baseline the
      learned models must beat on the false-alarm axis;
    - ["always-flag"] — flag every MOAS episode, the alarm-fatigue
      strawman.

    Every number in the report derives from the corpus alone, so the
    rendered report is byte-identical at any [--jobs] setting — CI
    asserts this. *)

type arm_report = {
  ar_arm : Collect.Scenario.arm;
  ar_examples : int;  (** eval examples from this arm *)
  ar_positives : int;
  ar_detectors : (string * Mutil.Stats.confusion) list;
      (** fixed detector order: logistic, stumps, moas-list, always-flag *)
}

type report = {
  r_runs : int;
  r_train : int;
  r_train_positives : int;
  r_eval : int;
  r_eval_positives : int;
  r_arms : arm_report list;  (** in {!Collect.Scenario.all_arms} order *)
  r_overall : (string * Mutil.Stats.confusion) list;
  r_auc_logistic : float;  (** rank AUC of the logistic scores on eval *)
  r_auc_stumps : float;
  r_verdicts : (Model.verdict * int) list;
      (** logistic verdict-band counts over the eval half *)
  r_stump_rounds : int;
  r_weights : (string * float) array;  (** learned logistic weights *)
}

type evaluation = {
  ev_corpus : Corpus.t;
  ev_logistic : Model.logistic;
  ev_report : report;
}

val of_corpus : Corpus.t -> evaluation
(** Train and evaluate over an already-built corpus — a pure function of
    the corpus, shared by {!evaluate} and the benchmark harness. *)

val evaluate :
  ?metrics:Obs.Registry.t ->
  ?jobs:int ->
  smoke:bool ->
  seed:int64 ->
  unit ->
  evaluation
(** Build the corpus (in parallel), train, evaluate.  Deterministic from
    [seed] and [smoke]. *)

val render : report -> string
(** The full text report (tables via {!Mutil.Text_table}). *)

val features_csv : Corpus.t -> string
(** The labelled feature matrix as CSV: identification columns (arm,
    run, prefix, episode seq, label, validity, MOAS-list verdict)
    followed by the {!Features.names} columns, one row per example in
    canonical corpus order. *)
