(** Pure-OCaml learned detectors — layer 3 of the classifier.

    Two deterministic models over {!Features} vectors, no external
    dependencies:

    - {e logistic regression}, trained by full-batch gradient descent on
      standardised features with L2 regularisation.  Weights start at
      zero and the batch gradient is a fixed fold over the training
      list, so training is a pure function of the (ordered) training
      set — byte-identical at any job count once the corpus order is
      canonical.
    - {e boosted depth-1 decision stumps} (discrete AdaBoost).  Stump
      selection breaks error ties on the lowest (feature, threshold,
      direction), so the ensemble is equally deterministic.

    Scores from both land in [0, 1] through the logistic link; the
    {!verdict} bands turn a calibrated score into the benign /
    suspicious / invalid labels the serving surface reports. *)

type scaler
(** Per-feature affine standardisation fitted on a training set. *)

val fit_scaler : dim:int -> float array list -> scaler
(** Mean/variance per coordinate; a constant feature scales to zero. *)

val transform : scaler -> float array -> float array

type logistic
(** A trained logistic model (scaler + weights + bias). *)

val train_logistic :
  ?epochs:int ->
  ?learning_rate:float ->
  ?l2:float ->
  dim:int ->
  (float array * bool) list ->
  logistic
(** Full-batch gradient descent ([epochs] default 400, [learning_rate]
    default 0.5, [l2] default 1e-3).  @raise Invalid_argument on an
    empty training set or a vector of the wrong dimension. *)

val predict : logistic -> float array -> float
(** Probability that the episode is invalid, in [0, 1]. *)

val weights : logistic -> (string * float) array
(** Learned weights paired with {!Features.names} (standardised space),
    plus a final ["(bias)"] row — for the report's explanation table. *)

type stumps
(** A boosted ensemble of depth-1 stumps. *)

val train_stumps :
  ?rounds:int -> dim:int -> (float array * bool) list -> stumps
(** Discrete AdaBoost for [rounds] (default 30) rounds; stops early when
    a round's best stump is no better than chance.
    @raise Invalid_argument on an empty training set. *)

val stumps_predict : stumps -> float array -> float
(** Ensemble score through the logistic link, in [0, 1]. *)

val stumps_size : stumps -> int
(** Rounds actually kept. *)

(** {2 Verdicts} *)

type verdict = Benign | Suspicious | Invalid

val verdict_to_string : verdict -> string
(** ["benign"], ["suspicious"], ["invalid"]. *)

val verdict_of_score : float -> verdict
(** Score bands: below 0.3 benign, below 0.7 suspicious, else invalid. *)

val flag_threshold : float
(** [0.5] — the operating point used when comparing against the binary
    baseline detectors. *)

val flagged : float -> bool
(** [score >= flag_threshold]. *)
