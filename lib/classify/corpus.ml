open Net
module Scenario = Collect.Scenario
module Corr = Collect.Correlator
module Roa = Baselines.Roa_registry

type example = {
  ex_arm : Scenario.arm;
  ex_run : int;
  ex_entry : Corr.entry;
  ex_features : float array;
  ex_label : bool;
  ex_validity : Roa.validity;
  ex_moas_flagged : bool;
}

type t = { c_examples : example list; c_runs : int }

let registry_of_scenario (s : Scenario.t) =
  Roa.synthesize ~seed:0L
    [
      (s.Scenario.s_attacked, Asn.Set.singleton s.Scenario.s_legit);
      (s.Scenario.s_multihomed, s.Scenario.s_homes);
      (s.Scenario.s_quiet, Asn.Set.singleton s.Scenario.s_quiet_origin);
    ]

(* the mesh's monitor config: same window the collect CLI uses *)
let mesh_config =
  { Stream.Monitor.default_config with Stream.Monitor.window = 10_000 }

type run_spec = {
  rs_index : int;
  rs_arm : Scenario.arm;
  rs_topology : Topology.Paper_topologies.t;
  rs_vantages : int;
  rs_seed : int64;
}

let grid ~smoke ~seed =
  (* topologies are memoised; force them here, before the pool fans out *)
  let topologies =
    if smoke then [ Topology.Paper_topologies.topology_25 () ]
    else Topology.Paper_topologies.all ()
  in
  let root = Mutil.Rng.create ~seed in
  let specs =
    List.concat_map
      (fun arm ->
        List.concat_map
          (fun topo ->
            List.map (fun vantages -> (arm, topo, vantages)) [ 3; 4 ])
          topologies)
      Scenario.all_arms
  in
  List.mapi
    (fun i (arm, topo, vantages) ->
      {
        rs_index = i;
        rs_arm = arm;
        rs_topology = topo;
        rs_vantages = vantages;
        (* pre-split by index: stable no matter the job count *)
        rs_seed = Mutil.Rng.bits64 (Mutil.Rng.split_at root i);
      })
    specs

let run_one spec =
  let s =
    Scenario.capture ~arm:spec.rs_arm ~seed:spec.rs_seed
      ~vantages:spec.rs_vantages spec.rs_topology
  in
  let mesh = Collect.Mesh.run ~jobs:1 mesh_config s.Scenario.s_streams in
  let corr = Corr.of_result mesh in
  let relationships =
    Topology.Relationships.infer_by_degree
      spec.rs_topology.Topology.Paper_topologies.graph
  in
  let cx = Features.of_scenario ~relationships s in
  let registry = registry_of_scenario s in
  List.map
    (fun (e : Corr.entry) ->
      let validity =
        Roa.classify_conflict registry e.Corr.x_prefix e.Corr.x_origins
      in
      {
        ex_arm = spec.rs_arm;
        ex_run = spec.rs_index;
        ex_entry = e;
        ex_features = Features.extract cx e;
        ex_label = validity = Roa.Invalid;
        ex_validity = validity;
        ex_moas_flagged = not e.Corr.x_clean;
      })
    corr.Corr.c_entries

let build ?(metrics = Obs.Registry.noop) ?jobs ~smoke ~seed () =
  let specs = grid ~smoke ~seed in
  let per_run = Exec.Pool.map_list ?jobs run_one specs in
  let examples = List.concat per_run in
  Obs.Registry.Counter.add (Obs.Registry.counter metrics "classify_runs")
    (List.length specs);
  Obs.Registry.Counter.add (Obs.Registry.counter metrics "classify_examples")
    (List.length examples);
  { c_examples = examples; c_runs = List.length specs }

let split t =
  List.partition (fun ex -> ex.ex_run mod 2 = 0) t.c_examples

let positives examples =
  List.length (List.filter (fun ex -> ex.ex_label) examples)
