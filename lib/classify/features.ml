open Net
module Corr = Collect.Correlator

type context = {
  cx_vantages : int;
  cx_span : int;
  cx_churn : int Prefix.Map.t;
  cx_relationships : Topology.Relationships.t option;
}

let null_context =
  {
    cx_vantages = 1;
    cx_span = 1;
    cx_churn = Prefix.Map.empty;
    cx_relationships = None;
  }

let churn_of_streams streams =
  List.fold_left
    (fun acc (_, events) ->
      Array.fold_left
        (fun acc (e : Stream.Monitor.event) ->
          Prefix.Map.update e.Stream.Monitor.prefix
            (fun n -> Some (1 + Option.value n ~default:0))
            acc)
        acc events)
    Prefix.Map.empty streams

let of_scenario ?relationships (s : Collect.Scenario.t) =
  {
    cx_vantages = List.length s.Collect.Scenario.s_specs;
    cx_span = max 1 s.Collect.Scenario.s_end_time;
    cx_churn = churn_of_streams s.Collect.Scenario.s_streams;
    cx_relationships = relationships;
  }

let names =
  [|
    "start_frac";
    "duration_frac";
    "days";
    "bucket";
    "recurrence";
    "visibility_frac";
    "max_origins";
    "origins";
    "churn_rate";
    "relation";
    "list_clean";
    "still_open";
  |]

let dim = Array.length names

let relation_class cx origins =
  match cx.cx_relationships with
  | None -> 0.
  | Some rel ->
    let pairs =
      let os = Asn.Set.elements origins in
      List.concat_map
        (fun a -> List.filter_map (fun b ->
             if Asn.compare a b < 0 then Some (a, b) else None) os)
        os
    in
    let rank (a, b) =
      match Topology.Relationships.view rel ~self:a ~neighbor:b with
      | Some (Topology.Relationships.Customer | Topology.Relationships.Provider)
        -> 2
      | Some Topology.Relationships.Peer -> 1
      | None -> 0
    in
    float_of_int (List.fold_left (fun acc p -> max acc (rank p)) 0 pairs)

let extract cx (e : Corr.entry) =
  let span = float_of_int (max 1 cx.cx_span) in
  let ended = Option.value e.Corr.x_ended ~default:cx.cx_span in
  let duration = float_of_int (max 0 (ended - e.Corr.x_started)) in
  let bucket =
    match
      Stream.Monitor.bucket_of_days Stream.Monitor.default_config e.Corr.x_days
    with
    | Stream.Monitor.Short -> 0.
    | Stream.Monitor.Medium -> 1.
    | Stream.Monitor.Long -> 2.
  in
  let churn =
    match Prefix.Map.find_opt e.Corr.x_prefix cx.cx_churn with
    | Some n -> float_of_int n /. (span /. 1000.)
    | None -> 0.
  in
  [|
    float_of_int e.Corr.x_started /. span;
    duration /. span;
    float_of_int e.Corr.x_days;
    bucket;
    float_of_int e.Corr.x_seq;
    float_of_int (Corr.visibility e) /. float_of_int (max 1 cx.cx_vantages);
    float_of_int e.Corr.x_max_origins;
    float_of_int (Asn.Set.cardinal e.Corr.x_origins);
    churn;
    relation_class cx e.Corr.x_origins;
    (if e.Corr.x_clean then 1. else 0.);
    (match e.Corr.x_ended with None -> 1. | Some _ -> 0.);
  |]
