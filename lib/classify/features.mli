(** Per-episode feature extraction — layer 1 of the classifier.

    Every feature is computed from a {!Collect.Correlator.entry} plus a
    {!context} of capture-level facts the entry itself does not carry
    (mesh size, capture span, announce/withdraw churn, AS business
    relationships).  Extraction is a pure function of (context, entry),
    so for a fixed context the feature vector survives a [MOASSTOR]
    store round-trip byte-for-byte — a property the test suite checks.

    The vector layout is fixed and named by {!names}; models, the CSV
    export and the report all share it. *)

open Net

type context = {
  cx_vantages : int;  (** mesh size [N], for the visibility fraction *)
  cx_span : int;  (** capture end time (ms); scales times to fractions *)
  cx_churn : int Prefix.Map.t;
      (** per-prefix event count over the merged stream *)
  cx_relationships : Topology.Relationships.t option;
      (** business relationships, for the origin-pair feature *)
}

val null_context : context
(** A degenerate context (one vantage, unit span, no churn, no
    relationships) — for feature extraction over a bare store. *)

val churn_of_streams :
  (string * Stream.Monitor.event array) list -> int Prefix.Map.t
(** Per-prefix event counts summed across the vantage streams. *)

val of_scenario :
  ?relationships:Topology.Relationships.t -> Collect.Scenario.t -> context
(** The context a captured scenario implies. *)

val names : string array
(** Feature names, in vector order. *)

val dim : int
(** [Array.length names]. *)

val extract : context -> Collect.Correlator.entry -> float array
(** The feature vector of one episode; length {!dim}. *)

val relation_class : context -> Asn.Set.t -> float
(** The origin-pair relationship feature alone: [2.] if any origin pair
    is customer-provider, [1.] if any is peer-peer, [0.] when no pair is
    adjacent or no relationships are known.  A multihomed customer's two
    providers are typically related; a hijacker and its victim are not —
    the paper's Section 5 heuristic. *)
