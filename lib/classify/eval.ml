module Scenario = Collect.Scenario
module Corr = Collect.Correlator
module Stats = Mutil.Stats

type arm_report = {
  ar_arm : Scenario.arm;
  ar_examples : int;
  ar_positives : int;
  ar_detectors : (string * Stats.confusion) list;
}

type report = {
  r_runs : int;
  r_train : int;
  r_train_positives : int;
  r_eval : int;
  r_eval_positives : int;
  r_arms : arm_report list;
  r_overall : (string * Stats.confusion) list;
  r_auc_logistic : float;
  r_auc_stumps : float;
  r_verdicts : (Model.verdict * int) list;
  r_stump_rounds : int;
  r_weights : (string * float) array;
}

type evaluation = {
  ev_corpus : Corpus.t;
  ev_logistic : Model.logistic;
  ev_report : report;
}

let detectors logistic stumps =
  [
    ("logistic", fun ex -> Model.flagged (Model.predict logistic ex.Corpus.ex_features));
    ("stumps", fun ex -> Model.flagged (Model.stumps_predict stumps ex.Corpus.ex_features));
    ("moas-list", fun ex -> ex.Corpus.ex_moas_flagged);
    ("always-flag", fun _ -> true);
  ]

let confusion_of flag examples =
  List.fold_left
    (fun c ex -> Stats.confusion_add c ~truth:ex.Corpus.ex_label ~flagged:(flag ex))
    Stats.no_confusion examples

let of_corpus corpus =
  let train, eval = Corpus.split corpus in
  let training =
    List.map (fun ex -> (ex.Corpus.ex_features, ex.Corpus.ex_label)) train
  in
  let logistic = Model.train_logistic ~dim:Features.dim training in
  let stumps = Model.train_stumps ~dim:Features.dim training in
  let dets = detectors logistic stumps in
  let arm_reports =
    List.map
      (fun arm ->
        let examples =
          List.filter (fun ex -> ex.Corpus.ex_arm = arm) eval
        in
        {
          ar_arm = arm;
          ar_examples = List.length examples;
          ar_positives = Corpus.positives examples;
          ar_detectors =
            List.map (fun (name, flag) -> (name, confusion_of flag examples)) dets;
        })
      Scenario.all_arms
  in
  let scored predict =
    List.map (fun ex -> (predict ex.Corpus.ex_features, ex.Corpus.ex_label)) eval
  in
  let verdict_counts =
    List.map
      (fun v ->
        ( v,
          List.length
            (List.filter
               (fun ex ->
                 Model.verdict_of_score (Model.predict logistic ex.Corpus.ex_features)
                 = v)
               eval) ))
      [ Model.Benign; Model.Suspicious; Model.Invalid ]
  in
  let report =
    {
      r_runs = corpus.Corpus.c_runs;
      r_train = List.length train;
      r_train_positives = Corpus.positives train;
      r_eval = List.length eval;
      r_eval_positives = Corpus.positives eval;
      r_arms = arm_reports;
      r_overall =
        List.map (fun (name, flag) -> (name, confusion_of flag eval)) dets;
      r_auc_logistic = Stats.auc (scored (Model.predict logistic));
      r_auc_stumps = Stats.auc (scored (Model.stumps_predict stumps));
      r_verdicts = verdict_counts;
      r_stump_rounds = Model.stumps_size stumps;
      r_weights = Model.weights logistic;
    }
  in
  { ev_corpus = corpus; ev_logistic = logistic; ev_report = report }

let evaluate ?(metrics = Obs.Registry.noop) ?jobs ~smoke ~seed () =
  of_corpus (Corpus.build ~metrics ?jobs ~smoke ~seed ())

(* ------------------------------------------------------------------ *)
(* Rendering *)

let f3 x = Printf.sprintf "%.3f" x

let detector_table rows =
  Mutil.Text_table.render
    ~header:[ "detector"; "tp"; "fp"; "tn"; "fn"; "precision"; "recall"; "f1" ]
    (List.map
       (fun (name, c) ->
         [
           name;
           string_of_int c.Stats.tp;
           string_of_int c.Stats.fp;
           string_of_int c.Stats.tn;
           string_of_int c.Stats.fn;
           f3 (Stats.precision c);
           f3 (Stats.recall c);
           f3 (Stats.f1 c);
         ])
       rows)

let render r =
  let buf = Buffer.create 4096 in
  let say fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  say "== episode classifier ==";
  say "corpus: %d captures; %d train examples (%d invalid), %d eval examples \
       (%d invalid)"
    r.r_runs r.r_train r.r_train_positives r.r_eval r.r_eval_positives;
  say "models: logistic regression + %d boosted stumps; flag at p >= %s"
    r.r_stump_rounds (f3 Model.flag_threshold);
  say "";
  say "-- eval (all arms) --";
  Buffer.add_string buf (detector_table r.r_overall);
  say "ranking: AUC %s (logistic), %s (stumps)" (f3 r.r_auc_logistic)
    (f3 r.r_auc_stumps);
  List.iter
    (fun ar ->
      say "";
      say "-- arm %s: %d episodes, %d invalid --"
        (Scenario.arm_to_string ar.ar_arm)
        ar.ar_examples ar.ar_positives;
      Buffer.add_string buf (detector_table ar.ar_detectors))
    r.r_arms;
  say "";
  say "-- verdict bands (logistic, eval half) --";
  Buffer.add_string buf
    (Mutil.Text_table.render ~header:[ "verdict"; "episodes" ]
       (List.map
          (fun (v, n) -> [ Model.verdict_to_string v; string_of_int n ])
          r.r_verdicts));
  say "";
  say "-- learned weights (standardised features) --";
  Buffer.add_string buf
    (Mutil.Text_table.render ~header:[ "feature"; "weight" ]
       (Array.to_list
          (Array.map (fun (name, w) -> [ name; f3 w ]) r.r_weights)));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* CSV export *)

let features_csv (corpus : Corpus.t) =
  let header =
    [ "arm"; "run"; "prefix"; "seq"; "label"; "validity"; "moas_flagged" ]
    @ Array.to_list Features.names
  in
  let rows =
    List.map
      (fun ex ->
        [
          Scenario.arm_to_string ex.Corpus.ex_arm;
          string_of_int ex.Corpus.ex_run;
          Net.Prefix.to_string ex.Corpus.ex_entry.Corr.x_prefix;
          string_of_int ex.Corpus.ex_entry.Corr.x_seq;
          (if ex.Corpus.ex_label then "1" else "0");
          Baselines.Roa_registry.validity_to_string ex.Corpus.ex_validity;
          (if ex.Corpus.ex_moas_flagged then "1" else "0");
        ]
        @ Array.to_list (Array.map (Printf.sprintf "%.6f") ex.Corpus.ex_features))
      corpus.Corpus.c_examples
  in
  Mutil.Csv.to_string ~header rows
