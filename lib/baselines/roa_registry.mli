(** Route Origin Authorization registry — the RPKI-style ground-truth
    oracle the classifier trains against.

    A registry is a set of ROAs, each authorising one origin AS to
    announce a prefix and everything down to a maximum length.  Route
    validation follows the RFC 6811 tri-state:

    - {e Unknown} — no ROA covers the route's prefix;
    - {e Valid} — some covering ROA names the route's origin and admits
      its length ([length <= max_length]);
    - {e Invalid} — covered, but no covering ROA matches.

    The type is immutable (a {!Net.Prefix_trie} of ROA lists), so a
    registry can be shared freely across parallel evaluation workers.
    The module also provides a text codec for hand-written registries and
    a seeded synthesiser that turns a (prefix × authorised-origins)
    ground truth — e.g. a {!Collect.Scenario} workload — into a registry
    with configurable coverage, reproducible from a seed. *)

open Net

type roa = {
  roa_prefix : Prefix.t;
  roa_origin : Asn.t;
  roa_max_length : int;  (** in [length roa_prefix, 32] *)
}

type t
(** An immutable ROA registry. *)

type validity = Valid | Invalid | Unknown

val validity_to_string : validity -> string
(** ["valid"], ["invalid"], ["unknown"]. *)

val empty : t

val add : ?max_length:int -> Prefix.t -> Asn.t -> t -> t
(** Authorise an origin for a prefix.  [max_length] defaults to the
    prefix's own length (no longer-prefix announcements allowed), the
    conservative RPKI practice.  Duplicate ROAs collapse.
    @raise Invalid_argument if [max_length] is outside
    [length prefix, 32]. *)

val cardinal : t -> int
(** Number of distinct ROAs. *)

val roas : t -> roa list
(** Every ROA in canonical (prefix, origin, max_length) order. *)

val covering : t -> Prefix.t -> roa list
(** The ROAs whose prefix covers (subsumes) the given route prefix, in
    canonical order — the candidate set RFC 6811 validation consults. *)

val validate : t -> Prefix.t -> Asn.t -> validity
(** RFC 6811 origin validation of one route. *)

val classify_conflict : t -> Prefix.t -> Asn.Set.t -> validity
(** Verdict for a whole MOAS episode: [Unknown] when the prefix is not
    covered, [Invalid] when any origin in the set validates [Invalid],
    [Valid] otherwise — one unauthorised origin poisons the conflict,
    which is exactly the hijack case. *)

(** {2 Text codec}

    One ROA per line, [prefix origin \[max_length\]], with [#] comments
    and blank lines ignored — the hand-written registry format:

    {[
      # victim prefix
      192.0.2.0/24 65001
      198.51.100.0/24 65010 25
    ]} *)

val to_string : t -> string
(** Canonical rendering, one ROA per line (max_length always explicit).
    [of_string (to_string t)] rebuilds an equal registry. *)

val of_string : string -> (t, string) result
(** Parse the text format; the error names the offending line. *)

(** {2 Synthesis} *)

val synthesize :
  ?coverage:float ->
  ?max_length_slack:int ->
  seed:int64 ->
  (Prefix.t * Asn.Set.t) list ->
  t
(** Seeded synthetic registry from ground truth.  Each (prefix,
    authorised origins) pair is registered with probability [coverage]
    (default [1.0]); each issued ROA's [max_length] is the prefix length
    plus a uniform draw from [0, max_length_slack] (default [0]).
    Deterministic from [seed] and the input order. *)
