open Net

type roa = {
  roa_prefix : Prefix.t;
  roa_origin : Asn.t;
  roa_max_length : int;
}

let compare_roa a b =
  let c = Prefix.compare a.roa_prefix b.roa_prefix in
  if c <> 0 then c
  else
    let c = Asn.compare a.roa_origin b.roa_origin in
    if c <> 0 then c else compare a.roa_max_length b.roa_max_length

(* per-prefix ROA lists kept sorted and deduplicated, so [roas] and
   [to_string] are canonical without a final sort *)
type t = roa list Prefix_trie.t

type validity = Valid | Invalid | Unknown

let validity_to_string = function
  | Valid -> "valid"
  | Invalid -> "invalid"
  | Unknown -> "unknown"

let empty = Prefix_trie.empty

let add ?max_length prefix origin t =
  let len = Prefix.length prefix in
  let max_length = Option.value max_length ~default:len in
  if max_length < len || max_length > 32 then
    invalid_arg
      (Printf.sprintf "Roa_registry.add: max_length %d outside [%d, 32]"
         max_length len);
  let roa = { roa_prefix = prefix; roa_origin = origin; roa_max_length = max_length } in
  Prefix_trie.update prefix
    (fun existing ->
      let rs = Option.value existing ~default:[] in
      Some (List.sort_uniq compare_roa (roa :: rs)))
    t

let roas t =
  List.concat_map snd (Prefix_trie.bindings t)

let cardinal t = List.length (roas t)

let covering t route_prefix =
  Prefix_trie.matches (Prefix.network route_prefix) t
  |> List.filter (fun (p, _) -> Prefix.subsumes p route_prefix)
  |> List.rev (* matches is most specific first; canonical order is not *)
  |> List.concat_map snd

let validate t route_prefix origin =
  match covering t route_prefix with
  | [] -> Unknown
  | candidates ->
    if
      List.exists
        (fun r ->
          Asn.equal r.roa_origin origin
          && Prefix.length route_prefix <= r.roa_max_length)
        candidates
    then Valid
    else Invalid

let classify_conflict t prefix origins =
  let verdicts =
    List.map (validate t prefix) (Asn.Set.elements origins)
  in
  if List.mem Invalid verdicts then Invalid
  else if List.mem Valid verdicts then Valid
  else Unknown

(* ------------------------------------------------------------------ *)
(* Text codec *)

let to_string t =
  roas t
  |> List.map (fun r ->
         Printf.sprintf "%s %d %d"
           (Prefix.to_string r.roa_prefix)
           (Asn.to_int r.roa_origin)
           r.roa_max_length)
  |> List.map (fun line -> line ^ "\n")
  |> String.concat ""

let of_string text =
  let parse_line lineno acc line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    match
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun f -> f <> "")
    with
    | [] -> Ok acc
    | prefix :: origin :: rest -> (
      let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
      match Prefix.of_string prefix with
      | exception Invalid_argument _ ->
        err "line %d: bad prefix %S" lineno prefix
      | p -> (
        match int_of_string_opt origin with
        | None -> err "line %d: bad origin %S" lineno origin
        | Some o -> (
          match Asn.make o with
          | exception Invalid_argument _ ->
            err "line %d: bad origin %S" lineno origin
          | origin -> (
            match rest with
            | [] -> Ok (add p origin acc)
            | [ ml ] -> (
              match int_of_string_opt ml with
              | None -> err "line %d: bad max_length %S" lineno ml
              | Some max_length -> (
                match add ~max_length p origin acc with
                | t -> Ok t
                | exception Invalid_argument m -> err "line %d: %s" lineno m))
            | _ -> err "line %d: trailing fields" lineno))))
    | [ _ ] -> Error (Printf.sprintf "line %d: missing origin" lineno)
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok acc
    | line :: rest -> (
      match parse_line lineno acc line with
      | Ok acc -> go (lineno + 1) acc rest
      | Error _ as e -> e)
  in
  go 1 empty lines

(* ------------------------------------------------------------------ *)
(* Synthesis *)

let synthesize ?(coverage = 1.0) ?(max_length_slack = 0) ~seed ground_truth =
  if max_length_slack < 0 then
    invalid_arg "Roa_registry.synthesize: negative max_length_slack";
  let rng = Mutil.Rng.create ~seed in
  List.fold_left
    (fun t (prefix, origins) ->
      if not (Mutil.Rng.chance rng coverage) then t
      else
        Asn.Set.fold
          (fun origin t ->
            let slack =
              if max_length_slack = 0 then 0
              else Mutil.Rng.int rng (max_length_slack + 1)
            in
            let max_length = min 32 (Prefix.length prefix + slack) in
            add ~max_length prefix origin t)
          origins t)
    empty ground_truth
