open Net
module Rng = Mutil.Rng
module Stats = Mutil.Stats
module Topo = Topology.Paper_topologies

type defense = No_defense | Moas_full | Sbgp of Asn.Set.t | Irr of float

let defense_to_string = function
  | No_defense -> "Normal BGP"
  | Moas_full -> "MOAS list (this paper)"
  | Sbgp keys when Asn.Set.is_empty keys -> "S-BGP, keys intact"
  | Sbgp keys -> Printf.sprintf "S-BGP, %d key(s) compromised" (Asn.Set.cardinal keys)
  | Irr staleness -> Printf.sprintf "IRR filtering, %.0f%% stale" (100.0 *. staleness)

type attack_mode = False_origin | Impersonation

let attack_to_string = function
  | False_origin -> "false origin"
  | Impersonation -> "path forgery"

type result = {
  defense : defense;
  attack : attack_mode;
  mean_adopting : float;
  mean_valid_loss : float;
  runs : int;
}

let victim = Prefix.of_string "192.0.2.0/24"

(* one concrete scenario: origin, attackers and, for the compromised-key
   variant, the key material the adversary holds *)
type setup = { origin : Asn.t; attacker_asns : Asn.t list }

let make_setup rng (topology : Topo.t) ~n_attackers =
  let stubs = Array.of_list (Asn.Set.elements topology.Topo.stub) in
  let origin = Rng.pick (Rng.split_at rng 0) stubs in
  let pool =
    Asn.Set.elements
      (Asn.Set.remove origin (Topology.As_graph.nodes topology.Topo.graph))
    |> Array.of_list
  in
  let attacker_asns =
    Array.to_list (Rng.sample (Rng.split_at rng 1) pool n_attackers)
  in
  { origin; attacker_asns }

let run_one (topology : Topo.t) setup ~defense ~attack run_rng =
  let graph = topology.Topo.graph in
  let origin_set = Asn.Set.singleton setup.origin in
  let attacker_set = Asn.Set.of_list setup.attacker_asns in
  (* defense wiring *)
  let validator_of, policy_of =
    match defense with
    | No_defense -> ((fun _ -> None), fun _ -> Bgp.Policy.default)
    | Moas_full ->
      let oracle = Moas.Origin_verification.create () in
      Moas.Origin_verification.register oracle victim origin_set;
      ( (fun asn ->
          if Asn.Set.mem asn attacker_set then None
          else
            Some
              (Moas.Detector.validator
                 (Moas.Detector.create
                    ~backend:(Moas.Detector.Oracle oracle) ~self:asn ()))),
        fun _ -> Bgp.Policy.default )
    | Sbgp compromised ->
      let pki = Origin_auth.create ~compromised_keys:compromised () in
      Origin_auth.register pki victim origin_set;
      ( (fun asn ->
          if Asn.Set.mem asn attacker_set then None
          else Some (Origin_auth.validator pki ~self:asn)),
        fun _ -> Bgp.Policy.default )
    | Irr staleness ->
      let registry = Irr_filter.create () in
      Irr_filter.register registry victim setup.origin;
      (* a registry covers many prefixes; staleness is modelled on the
         victim record directly *)
      Irr_filter.drop_records (Rng.split_at run_rng 7) registry ~staleness;
      let relationships = Topology.Relationships.infer_by_degree graph in
      ( (fun _ -> None),
        fun asn ->
          if Asn.Set.mem asn attacker_set then Bgp.Policy.default
          else Irr_filter.policy registry ~relationships ~self:asn )
  in
  let network =
    Bgp.Network.make
      ~config:
        Bgp.Network.Config.(
          default |> with_validator_of validator_of |> with_policy_of policy_of)
      graph
  in
  Bgp.Network.originate ~at:0.0 network setup.origin victim;
  List.iter
    (fun asn ->
      let attacker =
        match attack with
        | False_origin -> Attack.Attacker.make asn
        | Impersonation ->
          Attack.Attacker.make
            ~forgery:(Attack.Attacker.Impersonate setup.origin) asn
      in
      Bgp.Network.originate ~at:50.0
        ~communities:(Attack.Attacker.communities attacker ~legit_list:origin_set)
        ~as_path:(Attack.Attacker.forged_path attacker)
        network asn victim)
    setup.attacker_asns;
  ignore (Bgp.Network.run network);
  let eligible = Asn.Set.diff (Topology.As_graph.nodes graph) attacker_set in
  let adopting, routeless =
    Asn.Set.fold
      (fun asn (bad, lost) ->
        match Bgp.Network.best_route network asn victim with
        | Some route ->
          let is_bogus =
            Asn.Set.mem (Bgp.Route.origin_as ~self:asn route) attacker_set
            || Bgp.Community.Set.mem Attack.Attacker.impersonation_marker
                 route.Bgp.Route.communities
          in
          ((if is_bogus then bad + 1 else bad), lost)
        | None -> (bad, lost + 1))
      eligible (0, 0)
  in
  let n = float_of_int (Asn.Set.cardinal eligible) in
  (float_of_int adopting /. n, float_of_int routeless /. n)

let head_to_head ?(seed = 0x434d50L) ?(runs = 10) ?(n_attackers = 5) ~topology
    () =
  let root = Rng.create ~seed in
  let setups =
    List.init runs (fun i -> make_setup (Rng.split_at root i) topology ~n_attackers)
  in
  let defenses setup =
    [
      No_defense;
      Moas_full;
      Sbgp Asn.Set.empty;
      (* the adversary holds the victim origin's key: the S-BGP
         single-point-of-failure case of Section 6 *)
      Sbgp (Asn.Set.singleton setup.origin);
      Irr 0.0;
      Irr 0.5;
    ]
  in
  (* defenses are per-setup because the compromised key names the origin *)
  List.concat_map
    (fun attack ->
      List.mapi
        (fun di _ ->
          let per_run =
            List.mapi
              (fun ri setup ->
                let defense = List.nth (defenses setup) di in
                run_one topology setup ~defense ~attack
                  (Rng.split_at root (1000 + (ri * 10) + di)))
              setups
          in
          let defense =
            match setups with
            | first :: _ -> List.nth (defenses first) di
            | [] -> No_defense
          in
          {
            defense;
            attack;
            mean_adopting = Stats.mean (List.map fst per_run);
            mean_valid_loss = Stats.mean (List.map snd per_run);
            runs;
          })
        (defenses { origin = Asn.make 1; attacker_asns = [] }))
    [ False_origin; Impersonation ]

let render results =
  Mutil.Text_table.render
    ~header:[ "defense"; "attack"; "adoption"; "ASes left routeless" ]
    (List.map
       (fun r ->
         [
           defense_to_string r.defense;
           attack_to_string r.attack;
           Mutil.Text_table.percent_cell ~decimals:2 r.mean_adopting;
           Mutil.Text_table.percent_cell ~decimals:2 r.mean_valid_loss;
         ])
       results)
