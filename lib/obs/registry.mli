(** Process-wide metrics registry: named counters, gauges and fixed-bucket
    histograms, each optionally qualified by labels such as
    [("as", "7")].  The registry is the measurement substrate behind the
    benchmark harness and the perf trajectory ([BENCH_*.json]).

    Instrumentation is zero-cost when disabled: {!noop} is a registry on
    which every instrument is inert (registration returns a no-op handle
    and updating it is a single branch), so the default code paths pay
    nothing and simulations stay deterministic — no metrics state feeds
    back into behaviour either way.

    Export order is deterministic: samples are sorted by metric name and
    then by labels, never by registration or update order. *)

type t
(** A registry: either live (collecting) or the inert {!noop}. *)

type labels = (string * string) list
(** Label key/value pairs qualifying an instrument, e.g. [("as", "7")].
    Order is irrelevant: labels are normalised by sorting on the key. *)

val create : unit -> t
(** A fresh live registry. *)

val noop : t
(** The disabled registry: instruments obtained from it discard every
    update and it exports no samples. *)

val is_noop : t -> bool
(** Whether the registry is the inert one — lets hot paths skip even the
    computation of a value to record. *)

module Counter : sig
  type t
  (** A monotonically increasing integer. *)

  val incr : t -> unit
  (** Add one. *)

  val add : t -> int -> unit
  (** Add [n]. @raise Invalid_argument on a negative increment. *)

  val value : t -> int
  (** Current count (0 on a no-op handle). *)
end

module Gauge : sig
  type t
  (** A float that can move both ways (queue depth, RIB size, seconds). *)

  val set : t -> float -> unit
  (** Overwrite the value. *)

  val add : t -> float -> unit
  (** Accumulate into the value (used for wall-time totals). *)

  val observe_max : t -> float -> unit
  (** Keep the maximum of the current value and the observation — a
      high-water mark. *)

  val value : t -> float
  (** Current value (0 on a no-op handle). *)
end

module Histogram : sig
  type t
  (** A fixed-bucket histogram of float observations. *)

  val observe : t -> float -> unit
  (** Record one observation into its bucket. *)

  val count : t -> int
  (** Number of observations. *)

  val sum : t -> float
  (** Sum of all observations. *)

  val buckets : t -> (float * int) list
  (** Per-bucket counts as [(upper_bound, count)] pairs, ending with the
      [(infinity, n)] overflow bucket.  Counts are per bucket, not
      cumulative. *)
end

val counter : t -> ?labels:labels -> string -> Counter.t
(** The counter registered under the name and labels, created on first
    use.  The same (name, labels) pair always yields the same instrument.
    @raise Invalid_argument if the name is already registered as a
    different instrument kind. *)

val gauge : t -> ?labels:labels -> string -> Gauge.t
(** Like {!counter} for a gauge. *)

val histogram : t -> ?labels:labels -> ?buckets:float list -> string -> Histogram.t
(** Like {!counter} for a histogram.  [buckets] are the upper bounds of
    the buckets, in strictly increasing order (an [infinity] overflow
    bucket is always appended); the default spans 100 µs to 10 s in
    decades, suitable for wall-clock durations in seconds.
    @raise Invalid_argument on an unsorted bucket list. *)

(** {2 Reading and exporting} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_snapshot

and histogram_snapshot = {
  h_count : int;
  h_sum : float;
  h_buckets : (float * int) list;  (** per-bucket [(upper_bound, count)] *)
}

type sample = { name : string; labels : labels; value : value }

val samples : t -> sample list
(** Every registered instrument's current value, sorted by name then
    labels.  Empty on {!noop}. *)

val counter_value : t -> ?labels:labels -> string -> int
(** Convenience: the current value of a counter, 0 when absent. *)

val sum_counters : t -> string -> int
(** Sum of a counter over all label sets — e.g. total
    ["bgp_updates_sent"] across every per-AS series. *)

val to_table : t -> string
(** Human-readable rendering via {!Mutil.Text_table}. *)

val to_csv : t -> string list * string list list
(** [(header, rows)] for {!Mutil.Csv}: one row per sample, histograms
    flattened to count/sum. *)

val to_json_lines : ?extra:labels -> t -> string
(** One JSON object per line per sample:
    [{"metric":NAME,"type":KIND,"labels":{...},...}].  [extra] labels are
    merged into every line (used to stamp the workload a registry
    measured). *)

val clear : t -> unit
(** Drop every registered instrument (a no-op on {!noop}). *)

val merge : into:t -> t -> unit
(** Accumulate every instrument of the second registry into [into],
    creating missing instruments on the way: counters and gauges add
    their values, histograms add bucket counts, totals and sums.  Built
    for combining the per-task registries of a parallel sweep after the
    barrier; instruments are visited in (name, labels) order, so the
    result is deterministic regardless of insertion order.  A no-op when
    either side is {!noop}.
    @raise Invalid_argument if an instrument name collides across kinds
    or a histogram exists in both with different bucket bounds. *)

(**/**)

(* shared with Span's JSON exporter *)
val normalise : labels -> labels
val json_string : string -> string
val json_labels : labels -> string

(**/**)
