(** Span-based tracing for the simulation harness.

    A span measures one named phase of work — a figure regeneration, one
    scenario run, a sweep point — and carries both the wall-clock
    duration and, when the caller supplies the engine clock, the
    simulation-time interval the phase covered.  The library cannot
    depend on [Sim] (the engine itself is instrumented with {!Registry}),
    so simulation time enters through an optional [sim_clock] callback,
    typically [fun () -> Sim.Engine.now engine].

    Like {!Registry}, tracing is zero-cost when disabled ({!noop}) and
    the recorded data never feeds back into behaviour, so traced runs
    stay deterministic. *)

type t
(** A tracer collecting completed spans, or the inert {!noop}. *)

type record = {
  name : string;  (** what the phase was, e.g. ["figure10:63-AS"] *)
  depth : int;  (** nesting depth at completion (0 = top level) *)
  wall_s : float;  (** wall-clock duration, seconds *)
  sim_start : float;  (** simulation clock when the span opened (0 without a [sim_clock]) *)
  sim_end : float;  (** simulation clock when it closed *)
}

val create : ?clock:(unit -> float) -> unit -> t
(** A live tracer.  [clock] supplies wall-clock seconds and defaults to
    [Sys.time] (process CPU time — monotonic and dependency-free); tests
    inject a fake clock for deterministic assertions. *)

val noop : t
(** The disabled tracer: {!with_span} only runs its thunk. *)

val is_noop : t -> bool
(** Whether the tracer is the inert one. *)

val with_span : t -> ?sim_clock:(unit -> float) -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] runs [f], recording a completed span around it.
    The span is recorded (and timed) even when [f] raises.  Spans nest:
    a span opened inside another records a greater [depth]. *)

val records : t -> record list
(** Completed spans in completion order ([] on {!noop}). *)

val to_table : t -> string
(** Human-readable rendering, nesting shown by indentation. *)

val to_json_lines : ?extra:Registry.labels -> t -> string
(** One JSON object per completed span, same line format family as
    {!Registry.to_json_lines}. *)

val clear : t -> unit
(** Forget all completed spans. *)
