type labels = (string * string) list

(* labels are normalised (sorted by key) so that the same logical label
   set always maps to the same instrument and export order is stable *)
let normalise labels =
  List.sort_uniq (fun (a, _) (b, _) -> compare a b) labels

module Counter = struct
  type t = Noop | Live of { mutable v : int }

  let make () = Live { v = 0 }

  let incr = function Noop -> () | Live c -> c.v <- c.v + 1

  let add t n =
    if n < 0 then invalid_arg "Registry.Counter.add: negative increment";
    match t with Noop -> () | Live c -> c.v <- c.v + n

  let value = function Noop -> 0 | Live c -> c.v
end

module Gauge = struct
  type t = Noop | Live of { mutable v : float }

  let make () = Live { v = 0.0 }

  let set t x = match t with Noop -> () | Live g -> g.v <- x
  let add t x = match t with Noop -> () | Live g -> g.v <- g.v +. x

  let observe_max t x =
    match t with Noop -> () | Live g -> if x > g.v then g.v <- x

  let value = function Noop -> 0.0 | Live g -> g.v
end

module Histogram = struct
  type cell = {
    bounds : float array; (* strictly increasing upper bounds *)
    counts : int array; (* one slot per bound plus the overflow bucket *)
    mutable total : int;
    mutable sum : float;
  }

  type t = Noop | Live of cell

  (* 100 us .. 10 s in decades: wall-clock durations in seconds *)
  let default_bounds = [ 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0 ]

  let make bounds =
    let rec sorted = function
      | a :: (b :: _ as rest) -> a < b && sorted rest
      | _ -> true
    in
    if not (sorted bounds) then
      invalid_arg "Registry.histogram: bucket bounds must be increasing";
    let bounds = Array.of_list bounds in
    Live
      {
        bounds;
        counts = Array.make (Array.length bounds + 1) 0;
        total = 0;
        sum = 0.0;
      }

  let observe t x =
    match t with
    | Noop -> ()
    | Live h ->
      let n = Array.length h.bounds in
      let rec slot i = if i >= n || x <= h.bounds.(i) then i else slot (i + 1) in
      let i = slot 0 in
      h.counts.(i) <- h.counts.(i) + 1;
      h.total <- h.total + 1;
      h.sum <- h.sum +. x

  let count = function Noop -> 0 | Live h -> h.total
  let sum = function Noop -> 0.0 | Live h -> h.sum

  let buckets = function
    | Noop -> []
    | Live h ->
      List.init
        (Array.length h.counts)
        (fun i ->
          let bound =
            if i < Array.length h.bounds then h.bounds.(i) else infinity
          in
          (bound, h.counts.(i)))
end

type instrument =
  | I_counter of Counter.t
  | I_gauge of Gauge.t
  | I_histogram of Histogram.t

type t =
  | Disabled
  | Enabled of { table : (string * labels, instrument) Hashtbl.t }

let create () = Enabled { table = Hashtbl.create 64 }
let noop = Disabled
let is_noop = function Disabled -> true | Enabled _ -> false

let kind_name = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_histogram _ -> "histogram"

let register t ~labels name ~make ~extract ~wanted =
  match t with
  | Disabled -> None
  | Enabled { table } ->
    let key = (name, normalise labels) in
    (match Hashtbl.find_opt table key with
    | Some existing ->
      (match extract existing with
      | Some handle -> Some handle
      | None ->
        invalid_arg
          (Printf.sprintf "Registry: %s is already a %s, not a %s" name
             (kind_name existing) wanted))
    | None ->
      let handle, instrument = make () in
      Hashtbl.add table key instrument;
      Some handle)

let counter t ?(labels = []) name =
  match
    register t ~labels name ~wanted:"counter"
      ~make:(fun () ->
        let c = Counter.make () in
        (c, I_counter c))
      ~extract:(function I_counter c -> Some c | _ -> None)
  with
  | Some c -> c
  | None -> Counter.Noop

let gauge t ?(labels = []) name =
  match
    register t ~labels name ~wanted:"gauge"
      ~make:(fun () ->
        let g = Gauge.make () in
        (g, I_gauge g))
      ~extract:(function I_gauge g -> Some g | _ -> None)
  with
  | Some g -> g
  | None -> Gauge.Noop

let histogram t ?(labels = []) ?(buckets = Histogram.default_bounds) name =
  match
    register t ~labels name ~wanted:"histogram"
      ~make:(fun () ->
        let h = Histogram.make buckets in
        (h, I_histogram h))
      ~extract:(function I_histogram h -> Some h | _ -> None)
  with
  | Some h -> h
  | None -> Histogram.Noop

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_snapshot

and histogram_snapshot = {
  h_count : int;
  h_sum : float;
  h_buckets : (float * int) list;
}

type sample = { name : string; labels : labels; value : value }

let samples t =
  match t with
  | Disabled -> []
  | Enabled { table } ->
    Hashtbl.fold
      (fun (name, labels) instrument acc ->
        let value =
          match instrument with
          | I_counter c -> Counter (Counter.value c)
          | I_gauge g -> Gauge (Gauge.value g)
          | I_histogram h ->
            Histogram
              {
                h_count = Histogram.count h;
                h_sum = Histogram.sum h;
                h_buckets = Histogram.buckets h;
              }
        in
        { name; labels; value } :: acc)
      table []
    |> List.sort (fun a b ->
           match compare a.name b.name with
           | 0 -> compare a.labels b.labels
           | c -> c)

let counter_value t ?(labels = []) name =
  match t with
  | Disabled -> 0
  | Enabled { table } ->
    (match Hashtbl.find_opt table (name, normalise labels) with
    | Some (I_counter c) -> Counter.value c
    | _ -> 0)

let sum_counters t name =
  List.fold_left
    (fun acc s ->
      match s.value with
      | Counter v when s.name = name -> acc + v
      | _ -> acc)
    0 (samples t)

let labels_cell labels =
  String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let value_cells = function
  | Counter v -> ("counter", string_of_int v)
  | Gauge v -> ("gauge", Printf.sprintf "%g" v)
  | Histogram h ->
    ( "histogram",
      Printf.sprintf "n=%d sum=%g" h.h_count h.h_sum )

let to_table t =
  let rows =
    List.map
      (fun s ->
        let kind, value = value_cells s.value in
        [ s.name; labels_cell s.labels; kind; value ])
      (samples t)
  in
  Mutil.Text_table.render ~header:[ "metric"; "labels"; "type"; "value" ] rows

let to_csv t =
  let header = [ "metric"; "labels"; "type"; "value" ] in
  let rows =
    List.map
      (fun s ->
        let kind, value = value_cells s.value in
        [ s.name; labels_cell s.labels; kind; value ])
      (samples t)
  in
  (header, rows)

(* minimal JSON string escaping: the metric names and labels we emit are
   plain identifiers, but be correct anyway *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_float x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> json_string k ^ ":" ^ json_string v) labels)
  ^ "}"

let to_json_lines ?(extra = []) t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s ->
      let labels = normalise (extra @ s.labels) in
      let body =
        match s.value with
        | Counter v -> Printf.sprintf "\"type\":\"counter\",\"value\":%d" v
        | Gauge v ->
          Printf.sprintf "\"type\":\"gauge\",\"value\":%s" (json_float v)
        | Histogram h ->
          Printf.sprintf
            "\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"buckets\":[%s]"
            h.h_count (json_float h.h_sum)
            (String.concat ","
               (List.map
                  (fun (bound, n) ->
                    Printf.sprintf "{\"le\":%s,\"count\":%d}"
                      (if bound = infinity then "\"inf\"" else json_float bound)
                      n)
                  h.h_buckets))
      in
      Buffer.add_string buf
        (Printf.sprintf "{\"metric\":%s,\"labels\":%s,%s}\n"
           (json_string s.name) (json_labels labels) body))
    (samples t);
  Buffer.contents buf

let clear = function
  | Disabled -> ()
  | Enabled { table } -> Hashtbl.reset table

let merge ~into src =
  match (src, into) with
  | Disabled, _ | _, Disabled -> ()
  | Enabled { table = src_table }, Enabled _ ->
    (* fold over a (name, labels)-sorted view of the source so the merge
       order — and therefore any instrument creation in [into] — is
       independent of hash-table iteration order *)
    let entries =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) src_table []
      |> List.sort (fun ((n1, l1), _) ((n2, l2), _) ->
             match compare n1 n2 with 0 -> compare l1 l2 | c -> c)
    in
    List.iter
      (fun ((name, labels), instrument) ->
        match instrument with
        | I_counter c ->
          Counter.add (counter into ~labels name) (Counter.value c)
        | I_gauge g -> Gauge.add (gauge into ~labels name) (Gauge.value g)
        | I_histogram Histogram.Noop -> ()
        | I_histogram (Histogram.Live cell) ->
          (match
             histogram into ~labels
               ~buckets:(Array.to_list cell.Histogram.bounds)
               name
           with
          | Histogram.Noop -> ()
          | Histogram.Live d ->
            if d.Histogram.bounds <> cell.Histogram.bounds then
              invalid_arg
                (Printf.sprintf
                   "Registry.merge: %s has different bucket bounds" name);
            Array.iteri
              (fun i n ->
                d.Histogram.counts.(i) <- d.Histogram.counts.(i) + n)
              cell.Histogram.counts;
            d.Histogram.total <- d.Histogram.total + cell.Histogram.total;
            d.Histogram.sum <- d.Histogram.sum +. cell.Histogram.sum))
      entries
