type record = {
  name : string;
  depth : int;
  wall_s : float;
  sim_start : float;
  sim_end : float;
}

type tracer = {
  clock : unit -> float;
  mutable rev_records : record list;
  mutable depth : int;
}

type t = Disabled | Enabled of tracer

let create ?(clock = Sys.time) () =
  Enabled { clock; rev_records = []; depth = 0 }

let noop = Disabled
let is_noop = function Disabled -> true | Enabled _ -> false

let with_span t ?sim_clock name f =
  match t with
  | Disabled -> f ()
  | Enabled tr ->
    let sim_now () = match sim_clock with Some c -> c () | None -> 0.0 in
    let wall_start = tr.clock () in
    let sim_start = sim_now () in
    let depth = tr.depth in
    tr.depth <- depth + 1;
    let finish () =
      tr.depth <- depth;
      tr.rev_records <-
        {
          name;
          depth;
          wall_s = tr.clock () -. wall_start;
          sim_start;
          sim_end = sim_now ();
        }
        :: tr.rev_records
    in
    (match f () with
    | result ->
      finish ();
      result
    | exception e ->
      finish ();
      raise e)

let records = function
  | Disabled -> []
  | Enabled tr -> List.rev tr.rev_records

let to_table t =
  let rows =
    List.map
      (fun (r : record) ->
        [
          String.make (2 * r.depth) ' ' ^ r.name;
          Printf.sprintf "%.3f" r.wall_s;
          Printf.sprintf "%.2f" r.sim_start;
          Printf.sprintf "%.2f" r.sim_end;
        ])
      (records t)
  in
  Mutil.Text_table.render
    ~header:[ "span"; "wall s"; "sim start"; "sim end" ]
    rows

let to_json_lines ?(extra = []) t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (r : record) ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"span\":%s,\"labels\":%s,\"depth\":%d,\"wall_s\":%.9g,\"sim_start\":%.9g,\"sim_end\":%.9g}\n"
           (Registry.json_string r.name)
           (Registry.json_labels (Registry.normalise extra))
           r.depth r.wall_s r.sim_start r.sim_end))
    (records t);
  Buffer.contents buf

let clear = function
  | Disabled -> ()
  | Enabled tr ->
    tr.rev_records <- [];
    tr.depth <- 0
