open Net
module Graph = Topology.As_graph

type usage_class = Location | Path | Blackhole | Scrub

let class_to_string = function
  | Location -> "location"
  | Path -> "path"
  | Blackhole -> "blackhole"
  | Scrub -> "scrub"

let all_classes = [ Location; Path; Blackhole; Scrub ]

(* The model's tag value space.  Everything the policies add or rewrite
   lives in [100, 299]; values outside it — MOAS-list members, well-known
   values, whatever an experiment attaches by hand — are never touched by
   the propagation rewrite, only by a scrubber's export. *)
let tag_base = 100
let tag_limit = 300
let is_tag_value v = v >= tag_base && v < tag_limit

let region_count = 8
let location_tag region = tag_base + region
let blackhole_tag = tag_base + 99
let ingress_base = tag_base + 100

(* peer-relationship code from the degree order, the same heuristic the
   topology library's relationship inference uses: the better-connected
   side is the provider *)
let relationship_code ~self_degree ~peer_degree =
  if peer_degree < self_degree then 1 (* customer *)
  else if peer_degree > self_degree then 3 (* provider *)
  else 2 (* peer *)

type t = {
  graph : Graph.t;
  classes : usage_class Asn.Map.t;
  regions : int Asn.Map.t;
}

let make ?(scrub_fraction = 0.0) ?(blackhole_fraction = 0.25) ~seed ~transit
    graph =
  if scrub_fraction < 0.0 || scrub_fraction > 1.0 then
    invalid_arg "Community_policy.make: scrub_fraction outside [0,1]";
  if blackhole_fraction < 0.0 || blackhole_fraction > 1.0 then
    invalid_arg "Community_policy.make: blackhole_fraction outside [0,1]";
  let root = Mutil.Rng.create ~seed in
  let classify asn =
    (* one child stream per AS, indexed by the AS number: the class is a
       pure function of (seed, asn), independent of iteration order *)
    let rng = Mutil.Rng.split_at root (Asn.to_int asn) in
    let region = Mutil.Rng.int rng region_count in
    let cls =
      if Asn.Set.mem asn transit then
        if Mutil.Rng.chance rng scrub_fraction then Scrub else Path
      else if Mutil.Rng.chance rng blackhole_fraction then Blackhole
      else Location
    in
    (cls, region)
  in
  let classes, regions =
    Graph.fold_nodes
      (fun asn (cs, rs) ->
        let cls, region = classify asn in
        (Asn.Map.add asn cls cs, Asn.Map.add asn region rs))
      graph
      (Asn.Map.empty, Asn.Map.empty)
  in
  { graph; classes; regions }

let force_class t asns cls =
  {
    t with
    classes =
      Asn.Set.fold (fun asn acc -> Asn.Map.add asn cls acc) asns t.classes;
  }

let class_of t asn =
  match Asn.Map.find_opt asn t.classes with
  | Some cls -> cls
  | None -> Location

let region_of t asn =
  match Asn.Map.find_opt asn t.regions with Some r -> r | None -> 0

let scrubbers t =
  Asn.Map.fold
    (fun asn cls acc -> if cls = Scrub then Asn.Set.add asn acc else acc)
    t.classes Asn.Set.empty

let tally t =
  List.map
    (fun cls ->
      ( cls,
        Asn.Map.fold
          (fun _ c n -> if c = cls then n + 1 else n)
          t.classes 0 ))
    all_classes

let origination_tag t asn =
  match class_of t asn with
  | Location -> Some (Community.make asn (location_tag (region_of t asn)))
  | Blackhole -> Some (Community.make asn blackhole_tag)
  | Path | Scrub -> None

let ingress_tag t ~self ~peer =
  let code =
    relationship_code
      ~self_degree:(Graph.degree t.graph self)
      ~peer_degree:(Graph.degree t.graph peer)
  in
  Community.make self (ingress_base + code)

let is_own_tag ~self (c : Community.t) =
  Asn.equal c.Community.asn self && is_tag_value c.Community.value

let policy ?(metrics = Obs.Registry.noop) t self =
  let labels = [ ("as", Asn.to_string self) ] in
  let scrub_events =
    Obs.Registry.counter metrics ~labels "community_scrub_events"
  in
  let scrubbed_values =
    Obs.Registry.counter metrics ~labels "community_scrubbed_values"
  in
  let tagged_values =
    Obs.Registry.counter metrics ~labels "community_tagged_values"
  in
  let cls = class_of t self in
  let locally_originated (route : Route.t) =
    Asn.equal route.Route.learned_from self
  in
  let import ~peer route =
    match cls with
    | Location | Blackhole -> Some route
    | Path | Scrub ->
      (* propagation-with-rewrite: drop any stale tag of ours, then stamp
         where the route entered our network.  Only our own tag space is
         rewritten; foreign values (including MOAS lists) pass through. *)
      let kept =
        Community.Set.filter
          (fun c -> not (is_own_tag ~self c))
          route.Route.communities
      in
      let stamped = Community.Set.add (ingress_tag t ~self ~peer) kept in
      Obs.Registry.Counter.incr tagged_values;
      Some (Route.with_communities stamped route)
  in
  let export ~peer:_ route =
    if locally_originated route then
      (* tagging-on-origination: location/blackhole ASes stamp their own
         announcements; a scrubber's own announcements leave untouched *)
      match origination_tag t self with
      | None -> Some route
      | Some tag ->
        Obs.Registry.Counter.incr tagged_values;
        Some
          (Route.with_communities
             (Community.Set.add tag route.Route.communities)
             route)
    else
      match cls with
      | Location | Path | Blackhole -> Some route
      | Scrub ->
        (* scrubbing-on-transit: every foreign community dies at our edge;
           only values we applied ourselves survive the export *)
        let kept, dropped =
          Community.Set.partition
            (fun c -> Asn.equal c.Community.asn self)
            route.Route.communities
        in
        let n = Community.Set.cardinal dropped in
        if n > 0 then begin
          Obs.Registry.Counter.incr scrub_events;
          Obs.Registry.Counter.add scrubbed_values n
        end;
        Some (Route.with_communities kept route)
  in
  { Policy.import; export }
