open Net
module Rng = Mutil.Rng

type link_delay = Asn.t -> Asn.t -> float

type impairment = { loss : float; duplicate : float; jitter : float }

let impairment ?(loss = 0.0) ?(duplicate = 0.0) ?(jitter = 0.0) () =
  if loss < 0.0 || loss > 1.0 then
    invalid_arg "Network.impairment: loss out of [0,1]";
  if duplicate < 0.0 || duplicate > 1.0 then
    invalid_arg "Network.impairment: duplicate out of [0,1]";
  if jitter < 0.0 || Float.is_nan jitter then
    invalid_arg "Network.impairment: negative jitter";
  { loss; duplicate; jitter }

type update_tap = time:float -> src:Asn.t -> dst:Asn.t -> Update.t -> unit

type t = {
  engine : Sim.Engine.t;
  graph : Topology.As_graph.t;
  routers : Router.t Asn.Map.t;
  (* failed peerings, stored under the (min, max) endpoint pair *)
  down_links : (Asn.t * Asn.t, unit) Hashtbl.t;
  (* crashed routers *)
  down_routers : (Asn.t, unit) Hashtbl.t;
  (* per-link message impairments, each with its own randomness stream *)
  impairments : (Asn.t * Asn.t, impairment * Rng.t) Hashtbl.t;
  (* passive observer of every emitted UPDATE (the collector-mesh hook) *)
  mutable tap : update_tap option;
  metrics : Obs.Registry.t;
}

(* Deterministic per-link jitter in [0, 0.25): breaks the timing symmetry
   of a uniform delay without any hidden randomness. *)
let default_link_delay a b =
  let h = (Asn.to_int a * 2654435761) lxor (Asn.to_int b * 40503) in
  1.0 +. (float_of_int (abs h mod 1000) /. 4000.0)

module Config = struct
  type t = {
    policy_of : Asn.t -> Policy.t;
    validator_of : Asn.t -> Router.validator option;
    mrai_of : Asn.t -> float;
    damping_of : Asn.t -> Router.damping option;
    link_delay : link_delay;
    metrics : Obs.Registry.t;
  }

  let default =
    {
      policy_of = (fun _ -> Policy.default);
      validator_of = (fun _ -> None);
      mrai_of = (fun _ -> 0.0);
      damping_of = (fun _ -> None);
      link_delay = default_link_delay;
      metrics = Obs.Registry.noop;
    }

  let with_policy_of policy_of t = { t with policy_of }
  let with_validator_of validator_of t = { t with validator_of }
  let with_mrai_of mrai_of t = { t with mrai_of }
  let with_damping_of damping_of t = { t with damping_of }
  let with_link_delay link_delay t = { t with link_delay }
  let with_metrics metrics t = { t with metrics }
end

(* Fault metrics are registered lazily, at the first fault: a run that
   injects nothing exports exactly the same sample set as before the fault
   layer existed. *)
let bump ?labels t name =
  Obs.Registry.Counter.incr (Obs.Registry.counter t.metrics ?labels name)

let note_drop t reason =
  bump t ~labels:[ ("reason", reason) ] "net_messages_dropped"

(* explicit Asn.compare: the polymorphic [<] happened to agree on the
   abstract Asn.t but monomorphic comparison is both safer and branch-free
   on ints *)
let link_key a b = if Asn.compare a b <= 0 then (a, b) else (b, a)
let link_is_up t a b = not (Hashtbl.mem t.down_links (link_key a b))
let router_is_up t asn = not (Hashtbl.mem t.down_routers asn)

let make ?(config = Config.default) graph =
  let { Config.policy_of; validator_of; mrai_of; damping_of; link_delay; metrics }
      =
    config
  in
  let engine = Sim.Engine.create ~metrics () in
  let routers =
    Topology.As_graph.fold_nodes
      (fun asn acc ->
        let router =
          Router.create ~policy:(policy_of asn) ?validator:(validator_of asn)
            ~mrai:(mrai_of asn) ?damping:(damping_of asn) ~metrics asn
        in
        Asn.Map.add asn router acc)
      graph Asn.Map.empty
  in
  let t =
    {
      engine;
      graph;
      routers;
      down_links = Hashtbl.create 8;
      down_routers = Hashtbl.create 8;
      impairments = Hashtbl.create 8;
      tap = None;
      metrics;
    }
  in
  Asn.Map.iter
    (fun asn router ->
      Asn.Set.iter (Router.add_peer router) (Topology.As_graph.neighbors graph asn);
      let link = link_key asn in
      let deliver ~peer update delay =
        Sim.Engine.schedule engine ~delay (fun engine ->
            (* a message in flight when the session fails or an endpoint
               crashes is lost with the TCP connection *)
            if Hashtbl.mem t.down_links (link peer) then note_drop t "link_down"
            else if
              Hashtbl.mem t.down_routers peer || Hashtbl.mem t.down_routers asn
            then note_drop t "router_down"
            else
              match Asn.Map.find_opt peer t.routers with
              | Some receiver ->
                Router.handle_update receiver ~now:(Sim.Engine.now engine) update
              | None -> ())
      in
      let send ~peer update =
        let delay = link_delay asn peer in
        if delay <= 0.0 then invalid_arg "Network: link delay must be positive";
        (* the tap sees the Adj-RIB-Out stream as emitted, before any
           impairment decides the message's fate on the wire *)
        (match t.tap with
        | Some tap ->
          tap ~time:(Sim.Engine.now engine) ~src:asn ~dst:peer update
        | None -> ());
        match Hashtbl.find_opt t.impairments (link peer) with
        | None -> deliver ~peer update delay
        | Some (imp, rng) ->
          if imp.loss > 0.0 && Rng.chance rng imp.loss then note_drop t "loss"
          else begin
            let jittered () =
              if imp.jitter > 0.0 then delay +. Rng.float rng imp.jitter
              else delay
            in
            deliver ~peer update (jittered ());
            if imp.duplicate > 0.0 && Rng.chance rng imp.duplicate then begin
              bump t "net_messages_duplicated";
              deliver ~peer update (jittered ())
            end
          end
      in
      let schedule ~delay k =
        Sim.Engine.schedule engine ~delay (fun engine -> k (Sim.Engine.now engine))
      in
      Router.set_transport router ~send ~schedule)
    routers;
  t

let engine t = t.engine
let graph t = t.graph
let set_update_tap t tap = t.tap <- tap

let router t asn =
  match Asn.Map.find_opt asn t.routers with
  | Some r -> r
  | None -> raise Not_found

let routers t = t.routers

let originate ?(at = 0.0) ?origin ?local_pref ?communities ?as_path t asn
    prefix =
  let r = router t asn in
  Sim.Engine.schedule_at t.engine ~time:at (fun engine ->
      let route =
        Route.originate ?origin ?local_pref ?communities ?as_path ~self:asn
          prefix
      in
      Router.originate r ~now:(Sim.Engine.now engine) route)

let withdraw ?(at = 0.0) t asn prefix =
  let r = router t asn in
  Sim.Engine.schedule_at t.engine ~time:at (fun engine ->
      Router.withdraw_origin r ~now:(Sim.Engine.now engine) prefix)

let check_peering t a b =
  if not (Topology.As_graph.mem_edge t.graph a b) then
    invalid_arg
      (Printf.sprintf "Network: %s and %s do not peer" (Asn.to_string a)
         (Asn.to_string b))

let check_member t asn =
  if not (Topology.As_graph.mem_node t.graph asn) then
    invalid_arg
      (Printf.sprintf "Network: %s is not in the topology" (Asn.to_string asn))

(* ---------------- fault primitives (applied at the current time) -------- *)

let fail_link_now t a b =
  check_peering t a b;
  if link_is_up t a b then begin
    Hashtbl.replace t.down_links (link_key a b) ();
    bump t "net_sessions_down";
    let now = Sim.Engine.now t.engine in
    (* peer_down on a crashed endpoint is a no-op: its session set is
       already empty *)
    Router.peer_down (router t a) ~now b;
    Router.peer_down (router t b) ~now a
  end

let restore_link_now t a b =
  check_peering t a b;
  if not (link_is_up t a b) then begin
    Hashtbl.remove t.down_links (link_key a b);
    (* a session needs both endpoints alive; with one crashed the link is
       merely repaired and the session waits for the restart *)
    if router_is_up t a && router_is_up t b then begin
      bump t "net_sessions_up";
      let now = Sim.Engine.now t.engine in
      Router.peer_up (router t a) ~now b;
      Router.peer_up (router t b) ~now a
    end
  end

let crash_router_now t asn =
  check_member t asn;
  if router_is_up t asn then begin
    Hashtbl.replace t.down_routers asn ();
    bump t "net_router_crashes";
    let now = Sim.Engine.now t.engine in
    Router.crash (router t asn);
    Asn.Set.iter
      (fun n ->
        if link_is_up t asn n && router_is_up t n then begin
          bump t "net_sessions_down";
          Router.peer_down (router t n) ~now asn
        end)
      (Topology.As_graph.neighbors t.graph asn)
  end

let restart_router_now t asn =
  check_member t asn;
  if not (router_is_up t asn) then begin
    Hashtbl.remove t.down_routers asn;
    bump t "net_router_restarts";
    let now = Sim.Engine.now t.engine in
    Router.restart (router t asn) ~now;
    Asn.Set.iter
      (fun n ->
        if link_is_up t asn n && router_is_up t n then begin
          bump t "net_sessions_up";
          Router.peer_up (router t asn) ~now n;
          Router.peer_up (router t n) ~now asn
        end)
      (Topology.As_graph.neighbors t.graph asn)
  end

let impair_link t ~rng a b imp =
  check_peering t a b;
  Hashtbl.replace t.impairments (link_key a b) (imp, rng)

let clear_link_impairment t a b =
  check_peering t a b;
  Hashtbl.remove t.impairments (link_key a b)

let link_impairment t a b =
  Option.map fst (Hashtbl.find_opt t.impairments (link_key a b))

(* ---------------- scheduled wrappers ----------------------------------- *)

let fail_link ?(at = 0.0) t a b =
  check_peering t a b;
  Sim.Engine.schedule_at t.engine ~time:at (fun _ -> fail_link_now t a b)

let restore_link ?(at = 0.0) t a b =
  check_peering t a b;
  Sim.Engine.schedule_at t.engine ~time:at (fun _ -> restore_link_now t a b)

let crash_router ?(at = 0.0) t asn =
  check_member t asn;
  Sim.Engine.schedule_at t.engine ~time:at (fun _ -> crash_router_now t asn)

let restart_router ?(at = 0.0) t asn =
  check_member t asn;
  Sim.Engine.schedule_at t.engine ~time:at (fun _ -> restart_router_now t asn)

let run ?(max_events = 10_000_000) t = Sim.Engine.run ~max_events t.engine

let best_route t asn prefix = Router.best (router t asn) prefix

let best_origin t asn prefix = Router.best_origin (router t asn) prefix

let forward_path t ~from addr =
  let max_hops = Asn.Map.cardinal t.routers + 1 in
  let rec walk asn acc hops =
    if hops > max_hops then None (* forwarding loop *)
    else begin
      let rib = Router.rib (router t asn) in
      match Prefix_trie.longest_match addr (Rib.loc_rib_trie rib) with
      | None -> None (* no route: packet dropped *)
      | Some (_, route) ->
        if As_path.length route.Route.as_path = 0 then
          (* the covering prefix is originated here: delivered *)
          Some (List.rev (asn :: acc))
        else begin
          let next = route.Route.learned_from in
          if Asn.equal next asn then Some (List.rev (asn :: acc))
          else walk next (asn :: acc) (hops + 1)
        end
    end
  in
  if Asn.Map.mem from t.routers then walk from [] 0 else None

let delivered_to t ~from addr =
  match forward_path t ~from addr with
  | Some path -> (
    match List.rev path with
    | last :: _ -> Some last
    | [] -> None)
  | None -> None

let total_updates_sent t =
  Asn.Map.fold (fun _ r acc -> acc + Router.updates_sent r) t.routers 0

let total_updates_received t =
  Asn.Map.fold (fun _ r acc -> acc + Router.updates_received r) t.routers 0
