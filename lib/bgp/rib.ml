open Net

type t = {
  mutable adj_in : Route.t Asn.Map.t Prefix.Map.t;
  mutable loc : Route.t Prefix_trie.t;
}

let create () = { adj_in = Prefix.Map.empty; loc = Prefix_trie.empty }

let set_in t ~peer route =
  let prefix = route.Route.prefix in
  t.adj_in <-
    Prefix.Map.update prefix
      (function
        | Some per_peer -> Some (Asn.Map.add peer route per_peer)
        | None -> Some (Asn.Map.singleton peer route))
      t.adj_in

let withdraw_in t ~peer prefix =
  t.adj_in <-
    Prefix.Map.update prefix
      (function
        | Some per_peer ->
          let per_peer = Asn.Map.remove peer per_peer in
          if Asn.Map.is_empty per_peer then None else Some per_peer
        | None -> None)
      t.adj_in

let routes_in t prefix =
  match Prefix.Map.find_opt prefix t.adj_in with
  | Some per_peer -> Asn.Map.fold (fun _ r acc -> r :: acc) per_peer [] |> List.rev
  | None -> []

let peers_with_route t prefix =
  match Prefix.Map.find_opt prefix t.adj_in with
  | Some per_peer -> Asn.Map.fold (fun peer _ acc -> peer :: acc) per_peer [] |> List.rev
  | None -> []

let set_best t route = t.loc <- Prefix_trie.add route.Route.prefix route t.loc

let clear_best t prefix = t.loc <- Prefix_trie.remove prefix t.loc

let best t prefix = Prefix_trie.find_opt prefix t.loc

let best_bindings t = Prefix_trie.bindings t.loc

let loc_rib_trie t = t.loc

let prefixes_in t =
  Prefix.Map.fold (fun p _ acc -> Prefix.Set.add p acc) t.adj_in Prefix.Set.empty

let clear t =
  t.adj_in <- Prefix.Map.empty;
  t.loc <- Prefix_trie.empty

let flush_peer t ~peer =
  let affected =
    Prefix.Map.fold
      (fun prefix per_peer acc ->
        if Asn.Map.mem peer per_peer then prefix :: acc else acc)
      t.adj_in []
  in
  List.iter (fun prefix -> withdraw_in t ~peer prefix) affected;
  List.rev affected
