open Net

type t = {
  mutable adj_in : Route.t Asn.Map.t Prefix.Map.t;
  mutable loc : Route.t Prefix_trie.t;
  (* Loc-RIB cardinality, maintained incrementally: the decision process
     updates a size gauge on every best-route change and must not pay an
     O(n) trie walk for it *)
  mutable loc_count : int;
  (* inverted Adj-RIB-In index: the prefixes each peer currently
     contributes a candidate for, so a session loss flushes only that
     peer's entries instead of scanning every prefix *)
  mutable by_peer : Prefix.Set.t Asn.Map.t;
}

let create () =
  {
    adj_in = Prefix.Map.empty;
    loc = Prefix_trie.empty;
    loc_count = 0;
    by_peer = Asn.Map.empty;
  }

let set_in t ~peer route =
  let prefix = route.Route.prefix in
  t.adj_in <-
    Prefix.Map.update prefix
      (function
        | Some per_peer -> Some (Asn.Map.add peer route per_peer)
        | None -> Some (Asn.Map.singleton peer route))
      t.adj_in;
  t.by_peer <-
    Asn.Map.update peer
      (function
        | Some prefixes -> Some (Prefix.Set.add prefix prefixes)
        | None -> Some (Prefix.Set.singleton prefix))
      t.by_peer

let withdraw_in t ~peer prefix =
  t.adj_in <-
    Prefix.Map.update prefix
      (function
        | Some per_peer ->
          let per_peer = Asn.Map.remove peer per_peer in
          if Asn.Map.is_empty per_peer then None else Some per_peer
        | None -> None)
      t.adj_in;
  t.by_peer <-
    Asn.Map.update peer
      (function
        | Some prefixes ->
          let prefixes = Prefix.Set.remove prefix prefixes in
          if Prefix.Set.is_empty prefixes then None else Some prefixes
        | None -> None)
      t.by_peer

let fold_routes_in t prefix f init =
  match Prefix.Map.find_opt prefix t.adj_in with
  | Some per_peer -> Asn.Map.fold (fun _ r acc -> f acc r) per_peer init
  | None -> init

let routes_in t prefix =
  List.rev (fold_routes_in t prefix (fun acc r -> r :: acc) [])

let peers_with_route t prefix =
  match Prefix.Map.find_opt prefix t.adj_in with
  | Some per_peer -> Asn.Map.fold (fun peer _ acc -> peer :: acc) per_peer [] |> List.rev
  | None -> []

let set_best t route =
  let prefix = route.Route.prefix in
  if not (Prefix_trie.mem prefix t.loc) then t.loc_count <- t.loc_count + 1;
  t.loc <- Prefix_trie.add prefix route t.loc

let clear_best t prefix =
  if Prefix_trie.mem prefix t.loc then begin
    t.loc_count <- t.loc_count - 1;
    t.loc <- Prefix_trie.remove prefix t.loc
  end

let best t prefix = Prefix_trie.find_opt prefix t.loc

let best_bindings t = Prefix_trie.bindings t.loc

let loc_rib_size t = t.loc_count

let loc_rib_trie t = t.loc

let prefixes_in t =
  Prefix.Map.fold (fun p _ acc -> Prefix.Set.add p acc) t.adj_in Prefix.Set.empty

let clear t =
  t.adj_in <- Prefix.Map.empty;
  t.loc <- Prefix_trie.empty;
  t.loc_count <- 0;
  t.by_peer <- Asn.Map.empty

let flush_peer t ~peer =
  let affected =
    match Asn.Map.find_opt peer t.by_peer with
    | Some prefixes -> Prefix.Set.elements prefixes
    | None -> []
  in
  List.iter (fun prefix -> withdraw_in t ~peer prefix) affected;
  affected
