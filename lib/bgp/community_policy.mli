(** Per-AS community usage model (the Krenc et al. AS-level
    classification): every AS gets a {!usage_class} drawn deterministically
    from a seed, and {!policy} turns the class into a {!Policy.t} that
    applies tagging-on-origination, propagation-with-rewrite and
    scrubbing-on-transit.  This is the behavioural substrate the
    [Community_watch] detector observes — and the scrubbing class is the
    paper's Section 4.3 failure mode made concrete: a scrubber erases the
    MOAS list in transit, but its own rewrite tags keep moving, so
    community {e dynamics} survive where the list does not.

    Tag values live in a reserved window [100,299] of the community value
    space: region tags [100+r], the blackhole-capability tag [199], and
    ingress tags [201..203] (customer/peer/provider by degree order).
    The rewrite never touches values outside the window, so MOAS-list
    members and well-known values pass through untouched; only a
    {!Scrub} AS's export drops foreign values wholesale. *)

open Net

type usage_class =
  | Location  (** stamps a region tag on its own originations *)
  | Path  (** rewrites its own tag space with ingress-point tags *)
  | Blackhole  (** stamps a blackhole-capability tag on originations *)
  | Scrub  (** drops every foreign community on transit export *)

val class_to_string : usage_class -> string
(** ["location"], ["path"], ["blackhole"], ["scrub"]. *)

val all_classes : usage_class list
(** The four classes in declaration order. *)

type t
(** A classified network: class and region per AS. *)

val make :
  ?scrub_fraction:float ->
  ?blackhole_fraction:float ->
  seed:int64 ->
  transit:Asn.Set.t ->
  Topology.As_graph.t ->
  t
(** Assign classes: transit ASes become {!Path} (or {!Scrub} with
    probability [scrub_fraction], default 0), every other AS {!Location}
    (or {!Blackhole} with probability [blackhole_fraction], default
    0.25).  The assignment is a pure function of [(seed, asn)] — stable
    under any iteration or evaluation order.
    @raise Invalid_argument on fractions outside [0,1]. *)

val force_class : t -> Asn.Set.t -> usage_class -> t
(** Override the class of a set of ASes (e.g. force the victim's
    providers to {!Scrub} in the scrubbing arm). *)

val class_of : t -> Asn.t -> usage_class
(** The class of an AS ({!Location} for one outside the model's graph). *)

val region_of : t -> Asn.t -> int
(** The AS's region in [0,7] (the location-tag payload). *)

val scrubbers : t -> Asn.Set.t
(** Every AS currently classed {!Scrub}. *)

val tally : t -> (usage_class * int) list
(** AS count per class, in {!all_classes} order. *)

val origination_tag : t -> Asn.t -> Community.t option
(** The tag the AS stamps on its own originations, if its class has one. *)

val ingress_tag : t -> self:Asn.t -> peer:Asn.t -> Community.t
(** The tag a {!Path}/{!Scrub} AS [self] stamps on a route imported from
    [peer]: [(self, 200 + relationship-code)]. *)

val is_tag_value : int -> bool
(** Whether a community value lies in the model's reserved tag window. *)

val policy : ?metrics:Obs.Registry.t -> t -> Asn.t -> Policy.t
(** The routing policy realising the AS's class, suitable for
    {!Network.Config.with_policy_of}.  [metrics] (default noop) receives
    per-AS counters labelled [("as", self)]: [community_scrub_events] and
    [community_scrubbed_values] on the scrub path, and
    [community_tagged_values] for stamped tags. *)
