(** Routing information bases of one BGP speaker.

    The Adj-RIB-In stores the latest route received from each peer for each
    prefix; the Loc-RIB holds the selected best route per prefix.  Both are
    plain data so tests can inspect them directly. *)

open Net

type t
(** Mutable RIB state of one speaker. *)

val create : unit -> t
(** Empty RIBs. *)

val set_in : t -> peer:Asn.t -> Route.t -> unit
(** Record the latest announcement from [peer] for the route's prefix,
    replacing any previous one (implicit withdrawal). *)

val withdraw_in : t -> peer:Asn.t -> Prefix.t -> unit
(** Remove [peer]'s entry for [prefix], if any. *)

val routes_in : t -> Prefix.t -> Route.t list
(** All Adj-RIB-In candidates for a prefix, ordered by peer AS number. *)

val fold_routes_in : t -> Prefix.t -> ('acc -> Route.t -> 'acc) -> 'acc -> 'acc
(** Fold over the Adj-RIB-In candidates for a prefix in peer-AS order —
    the allocation-free form of {!routes_in} used by the decision
    process. *)

val peers_with_route : t -> Prefix.t -> Asn.t list
(** Peers currently contributing a candidate for the prefix. *)

val set_best : t -> Route.t -> unit
(** Install a best route in the Loc-RIB. *)

val clear_best : t -> Prefix.t -> unit
(** Remove the Loc-RIB entry for a prefix. *)

val best : t -> Prefix.t -> Route.t option
(** Selected route for a prefix, if any. *)

val best_bindings : t -> (Prefix.t * Route.t) list
(** Loc-RIB contents. *)

val loc_rib_size : t -> int
(** Number of Loc-RIB entries, maintained incrementally — O(1), equal to
    [List.length (best_bindings t)]. *)

val loc_rib_trie : t -> Route.t Net.Prefix_trie.t
(** The Loc-RIB as a prefix trie (longest-match forwarding view). *)

val prefixes_in : t -> Prefix.Set.t
(** Prefixes that currently have at least one Adj-RIB-In candidate. *)

val clear : t -> unit
(** Drop everything — Adj-RIB-In and Loc-RIB alike (router crash). *)

val flush_peer : t -> peer:Asn.t -> Prefix.t list
(** Drop every Adj-RIB-In entry learned from [peer] (session loss) and
    return the prefixes that were affected. *)
