open Net

type validator = now:float -> prefix:Prefix.t -> Route.t list -> Route.t list

type damping = {
  penalty_withdraw : float;
  penalty_update : float;
  suppress_threshold : float;
  reuse_threshold : float;
  half_life : float;
}

let default_damping =
  {
    penalty_withdraw = 1000.0;
    penalty_update = 500.0;
    suppress_threshold = 2000.0;
    reuse_threshold = 750.0;
    half_life = 900.0;
  }

(* per (peer, prefix) damping state *)
type flap_state = {
  mutable penalty : float;
  mutable stamped_at : float;
  mutable suppressed : bool;
  mutable first_seen : bool; (* the initial announcement is not a flap *)
}

type t = {
  asn : Asn.t;
  policy : Policy.t;
  mutable validator : validator option;
  mrai : float;
  damping : damping option;
  flaps : (Asn.t * Prefix.t, flap_state) Hashtbl.t;
  rib : Rib.t;
  mutable peer_set : Asn.Set.t;
  mutable originated : Route.t Prefix.Map.t;
  mutable aggregates : Prefix.Set.t;
  (* what was last advertised to each peer, to suppress duplicate updates
     and to know when an explicit withdrawal is due *)
  mutable advertised : Route.t Prefix.Map.t Asn.Map.t;
  (* MRAI state: per-peer time of last advertisement batch and the set of
     prefixes whose advertisement is deferred until the interval expires *)
  mutable last_batch : float Asn.Map.t;
  mutable deferred : Prefix.Set.t Asn.Map.t;
  mutable send : (peer:Asn.t -> Update.t -> unit) option;
  mutable schedule : (delay:float -> (float -> unit) -> unit) option;
  mutable received_count : int;
  mutable sent_count : int;
  (* per-AS observability handles; inert when the registry is the noop *)
  metrics_live : bool;
  sent_c : Obs.Registry.Counter.t;
  received_c : Obs.Registry.Counter.t;
  decisions_c : Obs.Registry.Counter.t;
  loc_rib_g : Obs.Registry.Gauge.t;
}

let create ?(policy = Policy.default) ?validator ?(mrai = 0.0) ?damping
    ?(metrics = Obs.Registry.noop) asn =
  if mrai < 0.0 then invalid_arg "Router.create: negative mrai";
  (match damping with
  | Some d when d.reuse_threshold >= d.suppress_threshold ->
    invalid_arg "Router.create: damping reuse must be below suppress"
  | _ -> ());
  let labels = [ ("as", Asn.to_string asn) ] in
  {
    asn;
    policy;
    validator;
    mrai;
    damping;
    flaps = Hashtbl.create 16;
    rib = Rib.create ();
    peer_set = Asn.Set.empty;
    originated = Prefix.Map.empty;
    aggregates = Prefix.Set.empty;
    advertised = Asn.Map.empty;
    last_batch = Asn.Map.empty;
    deferred = Asn.Map.empty;
    send = None;
    schedule = None;
    received_count = 0;
    sent_count = 0;
    metrics_live = not (Obs.Registry.is_noop metrics);
    sent_c = Obs.Registry.counter metrics ~labels "bgp_updates_sent";
    received_c = Obs.Registry.counter metrics ~labels "bgp_updates_received";
    decisions_c = Obs.Registry.counter metrics ~labels "bgp_decisions";
    loc_rib_g = Obs.Registry.gauge metrics ~labels "bgp_loc_rib_size";
  }

let asn t = t.asn

let add_peer t peer =
  if Asn.equal peer t.asn then invalid_arg "Router.add_peer: self peering";
  t.peer_set <- Asn.Set.add peer t.peer_set

let peers t = Asn.Set.elements t.peer_set

let set_transport t ~send ~schedule =
  t.send <- Some send;
  t.schedule <- Some schedule

let set_validator t v = t.validator <- v

let transport_send t ~peer update =
  match t.send with
  | Some send ->
    t.sent_count <- t.sent_count + 1;
    Obs.Registry.Counter.incr t.sent_c;
    send ~peer update
  | None -> failwith "Router: transport not wired (call set_transport)"

let transport_schedule t ~delay k =
  match t.schedule with
  | Some schedule -> schedule ~delay k
  | None -> failwith "Router: transport not wired (call set_transport)"

(* ---------------- route-flap damping (RFC 2439) ---------------- *)

let decayed_penalty damping state ~now =
  let dt = Float.max 0.0 (now -. state.stamped_at) in
  state.penalty *. (0.5 ** (dt /. damping.half_life))

let flap_state t ~peer prefix =
  let key = (peer, prefix) in
  match Hashtbl.find_opt t.flaps key with
  | Some state -> state
  | None ->
    let state =
      { penalty = 0.0; stamped_at = 0.0; suppressed = false; first_seen = false }
    in
    Hashtbl.add t.flaps key state;
    state

let flap_penalty t ~peer prefix ~now =
  match t.damping with
  | None -> 0.0
  | Some damping ->
    (match Hashtbl.find_opt t.flaps (peer, prefix) with
    | None -> 0.0
    | Some state -> decayed_penalty damping state ~now)

let is_suppressed t ~peer prefix ~now =
  match t.damping with
  | None -> false
  | Some damping ->
    (match Hashtbl.find_opt t.flaps (peer, prefix) with
    | None -> false
    | Some state ->
      if not state.suppressed then false
      else begin
        let penalty = decayed_penalty damping state ~now in
        if penalty < damping.reuse_threshold then begin
          state.suppressed <- false;
          state.penalty <- penalty;
          state.stamped_at <- now;
          false
        end
        else true
      end)

(* record one flap; returns true when the route just became suppressed *)
let note_flap t ~now ~peer prefix ~increment =
  match t.damping with
  | None -> false
  | Some damping ->
    let state = flap_state t ~peer prefix in
    if not state.first_seen then begin
      (* the very first announcement is legitimate birth, not a flap *)
      state.first_seen <- true;
      state.stamped_at <- now;
      false
    end
    else begin
      let penalty = decayed_penalty damping state ~now +. increment in
      state.penalty <- penalty;
      state.stamped_at <- now;
      if (not state.suppressed) && penalty >= damping.suppress_threshold then begin
        state.suppressed <- true;
        true
      end
      else false
    end

(* Candidate iteration: locally originated route first, then the
   Adj-RIB-In entries in peer-AS order — the same order [candidates]
   returns, without materializing a list. *)
let fold_candidates t prefix f init =
  let init =
    match Prefix.Map.find_opt prefix t.originated with
    | Some r -> f init r
    | None -> init
  in
  Rib.fold_routes_in t.rib prefix f init

let candidates t prefix =
  List.rev (fold_candidates t prefix (fun acc r -> r :: acc) [])

(* damping admission; mutates the flap state exactly as the former
   List.filter pass did, in the same candidate order *)
let admitted t ~now prefix r =
  t.damping = None
  || Asn.equal r.Route.learned_from t.asn
  || not (is_suppressed t ~peer:r.Route.learned_from prefix ~now)

let best t prefix = Rib.best t.rib prefix

let best_origin t prefix =
  Option.map (fun r -> Route.origin_as ~self:t.asn r) (best t prefix)

let rib t = t.rib

let updates_received t = t.received_count
let updates_sent t = t.sent_count

(* ------------------------------------------------------------------ *)
(* Advertisement: compute what a peer should currently hear for a prefix
   and emit an UPDATE only if it differs from what it last heard.        *)

let desired_advertisement t ~peer prefix =
  match best t prefix with
  | None -> None
  | Some route ->
    (* split horizon: never advertise a route back to the peer that
       supplied it *)
    if (not (As_path.length route.Route.as_path = 0))
       && Asn.equal route.Route.learned_from peer
    then None
    else
      (match t.policy.Policy.export ~peer route with
      | None -> None
      | Some exported -> Some (Route.advertised_by t.asn exported))

let last_advertised t ~peer prefix =
  match Asn.Map.find_opt peer t.advertised with
  | Some per_prefix -> Prefix.Map.find_opt prefix per_prefix
  | None -> None

let record_advertised t ~peer prefix route_opt =
  t.advertised <-
    Asn.Map.update peer
      (fun per_prefix ->
        let per_prefix = Option.value ~default:Prefix.Map.empty per_prefix in
        Some
          (match route_opt with
          | Some route -> Prefix.Map.add prefix route per_prefix
          | None -> Prefix.Map.remove prefix per_prefix))
      t.advertised

let sync_peer_prefix t ~peer prefix =
  let desired = desired_advertisement t ~peer prefix in
  let current = last_advertised t ~peer prefix in
  match (desired, current) with
  | None, None -> ()
  | Some d, Some c when Route.equal d c -> ()
  | Some d, _ ->
    record_advertised t ~peer prefix (Some d);
    transport_send t ~peer (Update.announce ~sender:t.asn d)
  | None, Some _ ->
    record_advertised t ~peer prefix None;
    transport_send t ~peer (Update.withdraw ~sender:t.asn prefix)

(* MRAI gating: a peer whose last batch is too recent gets the prefix
   queued; a timer fires when the interval expires and syncs every queued
   prefix at once. *)
let rec advertise_to_peer t ~now peer prefix =
  if t.mrai <= 0.0 then begin
    sync_peer_prefix t ~peer prefix;
    t.last_batch <- Asn.Map.add peer now t.last_batch
  end
  else
    let last = Option.value ~default:neg_infinity (Asn.Map.find_opt peer t.last_batch) in
    if now -. last >= t.mrai then begin
      sync_peer_prefix t ~peer prefix;
      t.last_batch <- Asn.Map.add peer now t.last_batch
    end
    else begin
      let was_empty =
        match Asn.Map.find_opt peer t.deferred with
        | None -> true
        | Some s -> Prefix.Set.is_empty s
      in
      t.deferred <-
        Asn.Map.update peer
          (fun s ->
            Some (Prefix.Set.add prefix (Option.value ~default:Prefix.Set.empty s)))
          t.deferred;
      if was_empty then
        transport_schedule t
          ~delay:(last +. t.mrai -. now)
          (fun fire_time -> flush_deferred t ~now:fire_time peer)
    end

and flush_deferred t ~now peer =
  let queued =
    Option.value ~default:Prefix.Set.empty (Asn.Map.find_opt peer t.deferred)
  in
  t.deferred <- Asn.Map.add peer Prefix.Set.empty t.deferred;
  if not (Prefix.Set.is_empty queued) then begin
    t.last_batch <- Asn.Map.add peer now t.last_batch;
    Prefix.Set.iter (fun prefix -> sync_peer_prefix t ~peer prefix) queued
  end

let advertise_all t ~now prefix =
  Asn.Set.iter (fun peer -> advertise_to_peer t ~now peer prefix) t.peer_set

(* ------------------------------------------------------------------ *)
(* Decision *)

let rec reselect t ~now prefix =
  Obs.Registry.Counter.incr t.decisions_c;
  let old_best = Rib.best t.rib prefix in
  let new_best =
    match t.validator with
    | Some validate ->
      (* the validator interface consumes the whole candidate list, so
         this path still materializes it (one cons per admitted route) *)
      let all =
        List.rev
          (fold_candidates t prefix
             (fun acc r -> if admitted t ~now prefix r then r :: acc else acc)
             [])
      in
      Decision.best_with_incumbent ~self:t.asn ~incumbent:old_best
        (validate ~now ~prefix all)
    | None ->
      (* allocation-free path: stream the candidates through the decision
         process, tracking the would-be [Decision.best] and whether the
         incumbent is still admitted — equivalent to
         [best_with_incumbent ~incumbent:old_best admitted_candidates] *)
      let challenger, incumbent_admitted =
        fold_candidates t prefix
          (fun ((best, seen) as acc) r ->
            if admitted t ~now prefix r then
              ( (match best with
                | None -> Some r
                | Some b -> if Decision.prefer ~self:t.asn r b < 0 then Some r else best),
                seen
                || match old_best with
                   | Some o -> Route.equal o r
                   | None -> false )
            else acc)
          (None, false)
      in
      (match old_best with
      | Some current when incumbent_admitted ->
        (match challenger with
        | Some c when Decision.prefer_attrs c current < 0 -> Some c
        | Some _ | None -> Some current)
      | Some _ | None -> challenger)
  in
  let changed =
    match (new_best, old_best) with
    | None, None -> false
    | Some n, Some o -> not (Route.equal n o)
    | Some _, None | None, Some _ -> true
  in
  if changed then begin
    (match new_best with
    | Some route -> Rib.set_best t.rib route
    | None -> Rib.clear_best t.rib prefix);
    if t.metrics_live then
      Obs.Registry.Gauge.set t.loc_rib_g
        (float_of_int (Rib.loc_rib_size t.rib));
    advertise_all t ~now prefix;
    (* a change to a child route may alter a configured aggregate; the
       summary is strictly shorter, so this recursion terminates *)
    Prefix.Set.iter
      (fun summary ->
        if Prefix.is_strict_subprefix ~sub:prefix ~of_:summary then
          refresh_aggregate t ~now summary)
      t.aggregates
  end

and refresh_aggregate t ~now summary =
  let children =
    List.filter
      (fun (p, _) -> Prefix.is_strict_subprefix ~sub:p ~of_:summary)
      (Rib.best_bindings t.rib)
  in
  (match children with
  | [] -> t.originated <- Prefix.Map.remove summary t.originated
  | (_, first) :: rest ->
    let as_path =
      List.fold_left
        (fun acc (_, r) -> As_path.aggregate acc r.Route.as_path)
        first.Route.as_path rest
    in
    (* the origin ASes of the components stand behind the aggregate; their
       communities (including any MOAS lists) are merged *)
    let communities =
      List.fold_left
        (fun acc (_, r) -> Community.Set.union acc r.Route.communities)
        first.Route.communities rest
    in
    let aggregate =
      {
        Route.prefix = summary;
        as_path;
        origin = first.Route.origin;
        learned_from = t.asn;
        local_pref = 100;
        communities;
      }
    in
    t.originated <- Prefix.Map.add summary aggregate t.originated);
  reselect t ~now summary

let refresh t ~now prefix = reselect t ~now prefix

let configure_aggregate t ~now summary =
  t.aggregates <- Prefix.Set.add summary t.aggregates;
  refresh_aggregate t ~now summary

let remove_aggregate t ~now summary =
  if Prefix.Set.mem summary t.aggregates then begin
    t.aggregates <- Prefix.Set.remove summary t.aggregates;
    t.originated <- Prefix.Map.remove summary t.originated;
    reselect t ~now summary
  end

let peer_down t ~now peer =
  if Asn.Set.mem peer t.peer_set then begin
    t.peer_set <- Asn.Set.remove peer t.peer_set;
    (* what the peer heard from us is void with the session *)
    t.advertised <- Asn.Map.remove peer t.advertised;
    t.deferred <- Asn.Map.remove peer t.deferred;
    t.last_batch <- Asn.Map.remove peer t.last_batch;
    let affected = Rib.flush_peer t.rib ~peer in
    List.iter (fun prefix -> reselect t ~now prefix) affected
  end

let peer_up t ~now peer =
  if not (Asn.Set.mem peer t.peer_set) then begin
    add_peer t peer;
    (* initial table exchange: everything in the Loc-RIB goes out *)
    List.iter
      (fun (prefix, _) -> advertise_to_peer t ~now peer prefix)
      (Rib.best_bindings t.rib)
  end

let crash t =
  (* everything protocol-level dies with the process; the static
     configuration — originated prefixes, aggregation rules, policy,
     validator — survives in NVRAM for [restart] *)
  Rib.clear t.rib;
  t.peer_set <- Asn.Set.empty;
  t.advertised <- Asn.Map.empty;
  t.deferred <- Asn.Map.empty;
  t.last_batch <- Asn.Map.empty;
  Hashtbl.reset t.flaps

let restart t ~now =
  (* re-install the configured originations; with no sessions yet nothing
     is advertised — the network layer brings peers up afterwards *)
  Prefix.Map.iter (fun prefix _ -> reselect t ~now prefix) t.originated;
  Prefix.Set.iter (fun summary -> refresh_aggregate t ~now summary) t.aggregates

(* ------------------------------------------------------------------ *)
(* Inputs *)

let originate t ~now route =
  let route = { route with Route.learned_from = t.asn } in
  t.originated <- Prefix.Map.add route.Route.prefix route t.originated;
  reselect t ~now route.Route.prefix

let withdraw_origin t ~now prefix =
  t.originated <- Prefix.Map.remove prefix t.originated;
  reselect t ~now prefix

(* when a suppressed route will decay to the reuse threshold *)
let reuse_delay damping state ~now =
  let penalty = decayed_penalty damping state ~now in
  if penalty <= damping.reuse_threshold then 0.0
  else damping.half_life *. (Float.log (penalty /. damping.reuse_threshold) /. Float.log 2.0)

let handle_update t ~now (update : Update.t) =
  t.received_count <- t.received_count + 1;
  Obs.Registry.Counter.incr t.received_c;
  let peer = update.Update.sender in
  (* damping bookkeeping: announcements after the first and withdrawals
     count as flaps; a route crossing the suppress threshold schedules its
     own re-evaluation at the projected reuse time *)
  (match t.damping with
  | None -> ()
  | Some damping ->
    let prefix = Update.prefix update in
    let increment =
      match update.Update.payload with
      | Update.Announce _ -> damping.penalty_update
      | Update.Withdraw _ -> damping.penalty_withdraw
    in
    if note_flap t ~now ~peer prefix ~increment then begin
      (* later flaps may push the penalty further up, so the timer re-arms
         itself until the route actually becomes reusable *)
      let rec recheck fire_time =
        if is_suppressed t ~peer prefix ~now:fire_time then begin
          let state = flap_state t ~peer prefix in
          let delay = Float.max 0.1 (reuse_delay damping state ~now:fire_time) in
          transport_schedule t ~delay recheck
        end
        else reselect t ~now:fire_time prefix
      in
      let state = flap_state t ~peer prefix in
      let delay = Float.max 0.1 (reuse_delay damping state ~now) in
      transport_schedule t ~delay recheck
    end);
  (match update.Update.payload with
  | Update.Announce route ->
    if As_path.contains route.Route.as_path t.asn then
      (* loop detection: a route that already crossed this AS is dropped,
         implicitly withdrawing any previous route from that peer *)
      Rib.withdraw_in t.rib ~peer (Update.prefix update)
    else begin
      let route = Route.received ~from:peer route in
      match t.policy.Policy.import ~peer route with
      | Some accepted -> Rib.set_in t.rib ~peer accepted
      | None -> Rib.withdraw_in t.rib ~peer (Update.prefix update)
    end
  | Update.Withdraw prefix -> Rib.withdraw_in t.rib ~peer prefix);
  reselect t ~now (Update.prefix update)
