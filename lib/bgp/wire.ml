open Net

type message = {
  withdrawn : Prefix.t list;
  attributes : attributes option;
  nlri : Prefix.t list;
}

and attributes = {
  origin : Route.origin_attr;
  as_path : As_path.t;
  local_pref : int;
  communities : Community.Set.t;
}

exception Malformed of string

let marker_length = 16
let max_message_size = 4096

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* ------------------------------------------------------------------ *)
(* Primitive writers over a Buffer *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_u16 buf v =
  put_u8 buf (v lsr 8);
  put_u8 buf v

let put_u32 buf v =
  put_u16 buf (v lsr 16);
  put_u16 buf (v land 0xffff)

(* A prefix is encoded as its bit length followed by just enough octets. *)
let prefix_octets len = (len + 7) / 8

let put_prefix buf p =
  let len = Prefix.length p in
  put_u8 buf len;
  let net = Ipv4.to_int (Prefix.network p) in
  for i = 0 to prefix_octets len - 1 do
    put_u8 buf ((net lsr (24 - (8 * i))) land 0xff)
  done

(* ------------------------------------------------------------------ *)
(* Path attributes *)

let origin_code = function
  | Route.Igp -> 0
  | Route.Egp -> 1
  | Route.Incomplete -> 2

let origin_of_code = function
  | 0 -> Route.Igp
  | 1 -> Route.Egp
  | 2 -> Route.Incomplete
  | c -> malformed "unknown ORIGIN code %d" c

let attr_origin = 1
let attr_as_path = 2
let attr_next_hop = 3
let attr_local_pref = 5
let attr_community = 8

let flag_transitive = 0x40
let flag_optional = 0x80
let flag_extended = 0x10

let put_attribute buf ~flags ~typ body =
  let len = Bytes.length body in
  if len > 0xff then begin
    put_u8 buf (flags lor flag_extended);
    put_u8 buf typ;
    put_u16 buf len
  end
  else begin
    put_u8 buf flags;
    put_u8 buf typ;
    put_u8 buf len
  end;
  Buffer.add_bytes buf body

let encode_as_path path =
  let buf = Buffer.create 32 in
  List.iter
    (function
      | As_path.Seq ases ->
        if List.length ases > 255 then malformed "AS_SEQUENCE too long";
        put_u8 buf 2;
        put_u8 buf (List.length ases);
        List.iter (fun a -> put_u16 buf (Asn.to_int a)) ases
      | As_path.Set s ->
        if Asn.Set.cardinal s > 255 then malformed "AS_SET too long";
        put_u8 buf 1;
        put_u8 buf (Asn.Set.cardinal s);
        Asn.Set.iter (fun a -> put_u16 buf (Asn.to_int a)) s)
    path;
  Buffer.to_bytes buf

let put_attributes buf attrs =
  let body = Buffer.create 64 in
  (* ORIGIN *)
  let b = Buffer.create 1 in
  put_u8 b (origin_code attrs.origin);
  put_attribute body ~flags:flag_transitive ~typ:attr_origin (Buffer.to_bytes b);
  (* AS_PATH *)
  put_attribute body ~flags:flag_transitive ~typ:attr_as_path
    (encode_as_path attrs.as_path);
  (* NEXT_HOP: the simulator does not model next-hop IPs; 0.0.0.0 *)
  let b = Buffer.create 4 in
  put_u32 b 0;
  put_attribute body ~flags:flag_transitive ~typ:attr_next_hop (Buffer.to_bytes b);
  (* LOCAL_PREF *)
  let b = Buffer.create 4 in
  put_u32 b attrs.local_pref;
  put_attribute body ~flags:flag_transitive ~typ:attr_local_pref (Buffer.to_bytes b);
  (* COMMUNITY (optional transitive) *)
  if not (Community.Set.is_empty attrs.communities) then begin
    let b = Buffer.create 16 in
    Community.Set.iter
      (fun c ->
        put_u16 b (Asn.to_int c.Community.asn);
        put_u16 b c.Community.value)
      attrs.communities;
    put_attribute body
      ~flags:(flag_optional lor flag_transitive)
      ~typ:attr_community (Buffer.to_bytes b)
  end;
  let body = Buffer.to_bytes body in
  put_u16 buf (Bytes.length body);
  Buffer.add_bytes buf body

(* ------------------------------------------------------------------ *)
(* Encoding *)

let encode message =
  let payload = Buffer.create 128 in
  (* withdrawn routes *)
  let withdrawn = Buffer.create 32 in
  List.iter (put_prefix withdrawn) message.withdrawn;
  put_u16 payload (Buffer.length withdrawn);
  Buffer.add_buffer payload withdrawn;
  (* path attributes *)
  (match message.attributes with
  | Some attrs -> put_attributes payload attrs
  | None ->
    if message.nlri <> [] then
      invalid_arg "Wire.encode: NLRI without attributes";
    put_u16 payload 0);
  (* NLRI *)
  List.iter (put_prefix payload) message.nlri;
  let total = marker_length + 2 + 1 + Buffer.length payload in
  if total > max_message_size then
    invalid_arg "Wire.encode: message exceeds 4096 octets";
  let buf = Buffer.create total in
  for _ = 1 to marker_length do
    Buffer.add_char buf '\xff'
  done;
  put_u16 buf total;
  put_u8 buf 2 (* UPDATE *);
  Buffer.add_buffer buf payload;
  Buffer.to_bytes buf

(* Pure size computation mirroring the writers above, octet for octet —
   usable on oversize messages that [encode] would reject. *)
let prefix_wire_size p = 1 + prefix_octets (Prefix.length p)

let as_path_wire_size path =
  List.fold_left
    (fun acc segment ->
      acc + 2
      + 2
        *
        match segment with
        | As_path.Seq ases -> List.length ases
        | As_path.Set s -> Asn.Set.cardinal s)
    0 path

let attribute_wire_size body_len =
  (if body_len > 0xff then 4 else 3) + body_len

let attributes_wire_size attrs =
  2 (* attribute-section length field *)
  + attribute_wire_size 1 (* ORIGIN *)
  + attribute_wire_size (as_path_wire_size attrs.as_path)
  + attribute_wire_size 4 (* NEXT_HOP *)
  + attribute_wire_size 4 (* LOCAL_PREF *)
  +
  if Community.Set.is_empty attrs.communities then 0
  else attribute_wire_size (4 * Community.Set.cardinal attrs.communities)

let encoded_size message =
  marker_length + 2 + 1
  + 2
  + List.fold_left (fun acc p -> acc + prefix_wire_size p) 0 message.withdrawn
  + (match message.attributes with
    | Some attrs -> attributes_wire_size attrs
    | None -> 2)
  + List.fold_left (fun acc p -> acc + prefix_wire_size p) 0 message.nlri

(* ------------------------------------------------------------------ *)
(* Decoding *)

type cursor = { data : bytes; mutable pos : int; limit : int }

let take_u8 c =
  if c.pos >= c.limit then malformed "truncated at octet %d" c.pos;
  let v = Char.code (Bytes.get c.data c.pos) in
  c.pos <- c.pos + 1;
  v

let take_u16 c =
  let hi = take_u8 c in
  (hi lsl 8) lor take_u8 c

let take_u32 c =
  let hi = take_u16 c in
  (hi lsl 16) lor take_u16 c

let take_prefix c =
  let len = take_u8 c in
  if len > 32 then malformed "prefix length %d" len;
  let net = ref 0 in
  for i = 0 to prefix_octets len - 1 do
    net := !net lor (take_u8 c lsl (24 - (8 * i)))
  done;
  Prefix.make (Ipv4.of_int !net) len

let take_as_path c ~stop =
  let rec segments acc =
    if c.pos >= stop then List.rev acc
    else begin
      let typ = take_u8 c in
      let count = take_u8 c in
      let ases = List.init count (fun _ -> Asn.make (take_u16 c)) in
      let segment =
        match typ with
        | 1 -> As_path.Set (Asn.Set.of_list ases)
        | 2 -> As_path.Seq ases
        | t -> malformed "unknown AS_PATH segment type %d" t
      in
      segments (segment :: acc)
    end
  in
  segments []

let take_attributes c ~stop =
  let origin = ref Route.Igp in
  let as_path = ref As_path.empty in
  let local_pref = ref 100 in
  let communities = ref Community.Set.empty in
  while c.pos < stop do
    let flags = take_u8 c in
    let typ = take_u8 c in
    let len = if flags land flag_extended <> 0 then take_u16 c else take_u8 c in
    let value_end = c.pos + len in
    if value_end > stop then malformed "attribute %d overruns" typ;
    (match typ with
    | t when t = attr_origin -> origin := origin_of_code (take_u8 c)
    | t when t = attr_as_path -> as_path := take_as_path c ~stop:value_end
    | t when t = attr_next_hop -> ignore (take_u32 c)
    | t when t = attr_local_pref -> local_pref := take_u32 c
    | t when t = attr_community ->
      while c.pos < value_end do
        let asn = Asn.make (take_u16 c) in
        let v = take_u16 c in
        communities := Community.Set.add (Community.make asn v) !communities
      done
    | _ -> c.pos <- value_end (* skip unknown attributes *));
    if c.pos <> value_end then malformed "attribute %d length mismatch" typ
  done;
  {
    origin = !origin;
    as_path = !as_path;
    local_pref = !local_pref;
    communities = !communities;
  }

(* Decode a path-attribute section in place — a slice view over [len]
   octets at [pos], no copy of the blob.  This is the MRT TABLE_DUMP
   record path: the per-record attribute blob parses where it lies
   instead of being wrapped into a rebuilt UPDATE message first. *)
let decode_attributes data ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length data then
    malformed "attribute slice [%d,%d) out of bounds" pos (pos + len);
  take_attributes { data; pos; limit = pos + len } ~stop:(pos + len)

(* Decode a full message from a slice of a larger byte string (a framed
   feed, an MRT file) without [Bytes.sub]-ing it out first. *)
let decode_sub data ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length data then
    malformed "message slice [%d,%d) out of bounds" pos (pos + len);
  let total = len in
  if total < marker_length + 3 then malformed "shorter than a BGP header";
  let c = { data; pos; limit = pos + total } in
  for _ = 1 to marker_length do
    if take_u8 c <> 0xff then malformed "bad marker"
  done;
  let declared = take_u16 c in
  if declared <> total then malformed "length field %d, actual %d" declared total;
  let typ = take_u8 c in
  if typ <> 2 then malformed "not an UPDATE (type %d)" typ;
  let withdrawn_len = take_u16 c in
  let withdrawn_end = c.pos + withdrawn_len in
  let withdrawn = ref [] in
  while c.pos < withdrawn_end do
    withdrawn := take_prefix c :: !withdrawn
  done;
  if c.pos <> withdrawn_end then malformed "withdrawn section overran";
  let attrs_len = take_u16 c in
  let attrs_end = c.pos + attrs_len in
  let attributes =
    if attrs_len = 0 then None else Some (take_attributes c ~stop:attrs_end)
  in
  if c.pos <> attrs_end then malformed "attribute section overran";
  let nlri = ref [] in
  while c.pos < c.limit do
    nlri := take_prefix c :: !nlri
  done;
  if !nlri <> [] && attributes = None then malformed "NLRI without attributes";
  {
    withdrawn = List.rev !withdrawn;
    attributes;
    nlri = List.rev !nlri;
  }

let decode data = decode_sub data ~pos:0 ~len:(Bytes.length data)

(* ------------------------------------------------------------------ *)
(* Bridging to the simulator's Update.t *)

let of_update (update : Update.t) =
  match update.Update.payload with
  | Update.Withdraw prefix -> { withdrawn = [ prefix ]; attributes = None; nlri = [] }
  | Update.Announce route ->
    {
      withdrawn = [];
      attributes =
        Some
          {
            origin = route.Route.origin;
            as_path = route.Route.as_path;
            local_pref = route.Route.local_pref;
            communities = route.Route.communities;
          };
      nlri = [ route.Route.prefix ];
    }

let to_updates ~sender message =
  let withdrawals =
    List.map (fun p -> Update.withdraw ~sender p) message.withdrawn
  in
  let announcements =
    match message.attributes with
    | None -> []
    | Some attrs ->
      List.map
        (fun prefix ->
          Update.announce ~sender
            {
              Route.prefix;
              as_path = attrs.as_path;
              origin = attrs.origin;
              learned_from = sender;
              local_pref = attrs.local_pref;
              communities = attrs.communities;
            })
        message.nlri
  in
  withdrawals @ announcements

let update_size update = encoded_size (of_update update)
