(** BGP community attribute values (RFC 1997): four octets, by convention an
    AS number in the first two and an AS-defined value in the last two.
    The MOAS list of the paper is carried as a set of these. *)

open Net

type t = { asn : Asn.t; value : int }
(** One community value.  [value] is the final two octets. *)

val make : Asn.t -> int -> t
(** [make asn value] validates [value] against the 16-bit range.
    @raise Invalid_argument outside [0,65535]. *)

val compare : t -> t -> int
(** Order by AS, then value. *)

val equal : t -> t -> bool
(** Equality. *)

val pp : Format.formatter -> t -> unit
(** Prints {!to_string}. *)

val to_string : t -> string
(** ["<asn>:<value>"] in the conventional notation, except for the
    assigned well-known values of the RFC 1997 reserved range
    (65535:65281 and friends), which render by name — ["NO_EXPORT"],
    ["NO_ADVERTISE"], ["NO_EXPORT_SUBCONFED"], ["BLACKHOLE"] — so
    experiment reports stay readable. *)

(** {2 Well-known values} *)

val well_known_asn : Asn.t
(** 65535, the RFC 1997 reserved first-two-octets. *)

val no_export : t
(** 65535:65281 (RFC 1997 NO_EXPORT). *)

val no_advertise : t
(** 65535:65282 (RFC 1997 NO_ADVERTISE). *)

val no_export_subconfed : t
(** 65535:65283 (RFC 1997 NO_EXPORT_SUBCONFED). *)

val blackhole : t
(** 65535:666 (RFC 7999 BLACKHOLE). *)

val well_known_name : t -> string option
(** The assigned name of a reserved-range value, if it has one. *)

module Set : Set.S with type elt = t
