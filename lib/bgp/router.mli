(** A simulated BGP speaker: one router standing for one AS, as in the
    paper's SSFnet model.

    The router consumes UPDATE messages, applies import policy and an
    optional route validator (the hook the MOAS detector plugs into), runs
    the decision process, and emits UPDATEs to its peers — respecting
    split-horizon and an optional per-peer MRAI (minimum route
    advertisement interval). *)

open Net

type validator = now:float -> prefix:Prefix.t -> Route.t list -> Route.t list
(** A validator sees every candidate route for a prefix (locally originated
    and Adj-RIB-In) and returns the subset the decision process may use.
    The MOAS detector is implemented as such a function; [None] on the
    router means every candidate is eligible (plain BGP). *)

type t
(** Mutable router state. *)

type damping = {
  penalty_withdraw : float;  (** penalty added per withdrawal flap *)
  penalty_update : float;  (** penalty added per re-announcement flap *)
  suppress_threshold : float;  (** penalty at which the route is suppressed *)
  reuse_threshold : float;  (** decayed penalty at which it is reusable *)
  half_life : float;  (** exponential decay half-life, seconds *)
}
(** Route-flap damping parameters (RFC 2439). *)

val default_damping : damping
(** The classic defaults: 1000/500 penalties, suppress at 2000, reuse at
    750, 900-second half-life. *)

val create :
  ?policy:Policy.t ->
  ?validator:validator ->
  ?mrai:float ->
  ?damping:damping ->
  ?metrics:Obs.Registry.t ->
  Asn.t ->
  t
(** A router for the given AS.  [mrai] is the per-peer minimum interval
    between advertisement batches (default 0: advertise immediately);
    [damping] enables route-flap damping (default off).

    [metrics] (default {!Obs.Registry.noop}) receives per-AS
    instrumentation, each labelled [("as", asn)]: counters
    [bgp_updates_sent], [bgp_updates_received] and [bgp_decisions]
    (decision-process invocations), and gauge [bgp_loc_rib_size]. *)

val flap_penalty : t -> peer:Asn.t -> Prefix.t -> now:float -> float
(** Current (decayed) damping penalty of the peer's route for the prefix;
    0 when damping is off or the route never flapped. *)

val is_suppressed : t -> peer:Asn.t -> Prefix.t -> now:float -> bool
(** Whether damping currently keeps that route out of the decision. *)

val asn : t -> Asn.t
(** The router's AS number. *)

val add_peer : t -> Asn.t -> unit
(** Declare a BGP session with a neighbouring AS (idempotent). *)

val peers : t -> Asn.t list
(** Current peers in increasing AS order. *)

val set_transport :
  t ->
  send:(peer:Asn.t -> Update.t -> unit) ->
  schedule:(delay:float -> (float -> unit) -> unit) ->
  unit
(** Wire the router to the network: [send] delivers an update towards a
    peer; [schedule] runs a callback after a delay (used by MRAI timers).
    Must be called before any traffic is processed. *)

val set_validator : t -> validator option -> unit
(** Install or remove the route validator at runtime. *)

val originate : t -> now:float -> Route.t -> unit
(** Start originating a route (built with {!Route.originate}); announces to
    all peers. *)

val withdraw_origin : t -> now:float -> Prefix.t -> unit
(** Stop originating a prefix. *)

val handle_update : t -> now:float -> Update.t -> unit
(** Process one incoming UPDATE (loop detection, policy, validation,
    decision, propagation). *)

val best : t -> Prefix.t -> Route.t option
(** Loc-RIB entry for the prefix. *)

val best_origin : t -> Prefix.t -> Asn.t option
(** Origin AS of the selected route (the router itself when it originates
    the prefix). *)

val candidates : t -> Prefix.t -> Route.t list
(** All candidate routes currently known for the prefix (originated plus
    Adj-RIB-In), before validation. *)

val rib : t -> Rib.t
(** Direct access to the RIBs for tests and metrics. *)

val updates_received : t -> int
(** Number of UPDATE messages processed. *)

val updates_sent : t -> int
(** Number of UPDATE messages emitted. *)

val refresh : t -> now:float -> Prefix.t -> unit
(** Re-run validation, decision and advertisement for a prefix without new
    input — used when a validator's external knowledge changes. *)

val peer_down : t -> now:float -> Asn.t -> unit
(** The session to a peer dropped: flush every route learned from it,
    forget what was advertised to it, re-select the affected prefixes and
    propagate the fallout.  No-op for an unknown peer. *)

val peer_up : t -> now:float -> Asn.t -> unit
(** (Re-)establish a session: register the peer and advertise the current
    Loc-RIB to it, as a BGP speaker does after session establishment. *)

val crash : t -> unit
(** The router process dies: RIBs, session set, advertisement memory, MRAI
    timers and damping state are all lost.  Static configuration
    (originated prefixes, aggregation rules, policy, validator) survives —
    it lives in the startup config, not the process.  Peers must be told
    separately ({!peer_down} on each neighbour); the network layer does
    this. *)

val restart : t -> now:float -> unit
(** Boot after a {!crash}: re-install the configured originations and
    aggregates into the Loc-RIB.  Sessions are still down; bring each back
    with {!peer_up} (on both ends) to trigger the table exchange. *)

val configure_aggregate : t -> now:float -> Prefix.t -> unit
(** Configure route aggregation for a summary prefix: whenever the Loc-RIB
    holds at least one route strictly inside the summary, the router
    originates the summary with the children's paths combined (common head
    sequence followed by an AS_SET — the paper's footnote 1).  The
    aggregate disappears with its last child. *)

val remove_aggregate : t -> now:float -> Prefix.t -> unit
(** Drop an aggregation rule (and the aggregate, if currently active). *)
