(** RFC 4271 wire format for BGP UPDATE messages, restricted to the
    attributes this reproduction models (ORIGIN, AS_PATH, NEXT_HOP,
    LOCAL_PREF, COMMUNITY).

    The codec serves two purposes: it makes the Section 4.3 overhead
    discussion exact (update sizes in actual octets rather than counted
    communities), and it backs the MRT-style table dumps of the
    measurement pipeline.  Encoding followed by decoding is the identity
    on the modelled fields (property-tested). *)

open Net

type message = {
  withdrawn : Prefix.t list;  (** withdrawn routes *)
  attributes : attributes option;  (** present when NLRI is announced *)
  nlri : Prefix.t list;  (** announced prefixes sharing the attributes *)
}

and attributes = {
  origin : Route.origin_attr;
  as_path : As_path.t;
  local_pref : int;
  communities : Community.Set.t;
}

exception Malformed of string
(** Raised by the decoder on truncated or inconsistent input. *)

val encode : message -> bytes
(** Serialise a full BGP message (16-byte marker, length, type 2 header
    included).  @raise Invalid_argument if the message exceeds the 4096
    octet maximum. *)

val decode : bytes -> message
(** Parse a full BGP UPDATE message. @raise Malformed on bad input. *)

val decode_sub : bytes -> pos:int -> len:int -> message
(** Parse a full BGP UPDATE message lying at [pos, pos+len) of a larger
    byte string — a framed feed or MRT file — without copying the slice
    out first.  [decode data] is [decode_sub data ~pos:0 ~len:(length
    data)].  @raise Malformed on bad input (including a slice outside
    the byte string). *)

val decode_attributes : bytes -> pos:int -> len:int -> attributes
(** Parse a bare path-attribute section (the payload of the UPDATE's
    attribute block, or an MRT TABLE_DUMP record's attribute blob) in
    place, as a zero-copy slice view.  Unknown attribute types are
    skipped; absent attributes take their defaults (empty AS_PATH, IGP
    origin, LOCAL_PREF 100, no communities).  @raise Malformed on bad
    input. *)

val encoded_size : message -> int
(** [Bytes.length (encode m)] computed arithmetically, without building
    the buffer.  Unlike {!encode} it does not enforce the 4096-octet
    maximum, so callers can size a message before deciding to split it
    (property-tested: encoding succeeds exactly when the result is at
    most {!max_message_size}). *)

val of_update : Update.t -> message
(** The wire message carrying one simulator UPDATE. *)

val to_updates : sender:Asn.t -> message -> Update.t list
(** Expand a wire message into simulator UPDATEs (one per withdrawn prefix
    and one per NLRI).  Routes are stamped as learned from [sender]. *)

val update_size : Update.t -> int
(** Exact octet size of the message carrying one simulator UPDATE. *)

val marker_length : int
(** 16, the header marker size. *)

val max_message_size : int
(** 4096 octets (RFC 4271). *)
