open Net

type t = { asn : Asn.t; value : int }

let make asn value =
  if value < 0 || value > 0xffff then
    invalid_arg "Community.make: value out of 16-bit range";
  { asn; value }

let compare a b =
  match Asn.compare a.asn b.asn with
  | 0 -> Int.compare a.value b.value
  | c -> c

let equal a b = compare a b = 0

(* RFC 1997 reserves 0xFFFF0000-0xFFFFFFFF; the handful of assigned
   values below have planet-wide meaning and deserve their names in
   experiment reports instead of bare numbers *)
let well_known_asn = Asn.make 0xffff
let no_export = { asn = well_known_asn; value = 0xff01 }
let no_advertise = { asn = well_known_asn; value = 0xff02 }
let no_export_subconfed = { asn = well_known_asn; value = 0xff03 }
let blackhole = { asn = well_known_asn; value = 666 } (* RFC 7999 *)

let well_known_name t =
  if not (Asn.equal t.asn well_known_asn) then None
  else
    match t.value with
    | 0xff01 -> Some "NO_EXPORT"
    | 0xff02 -> Some "NO_ADVERTISE"
    | 0xff03 -> Some "NO_EXPORT_SUBCONFED"
    | 666 -> Some "BLACKHOLE"
    | _ -> None

let to_string t =
  match well_known_name t with
  | Some name -> name
  | None -> Printf.sprintf "%d:%d" (Asn.to_int t.asn) t.value

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
