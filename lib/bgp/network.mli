(** A BGP network: one {!Router} per AS of an {!Topology.As_graph.t},
    connected through the discrete-event engine with per-link message
    latency.  This corresponds to the paper's SSFnet set-up, where each
    simulation node is one AS and each link a BGP peering.

    The network also owns the fault surface the [faults] library drives:
    sessions can fail and recover, routers can crash and restart, and
    individual links can be impaired with probabilistic message loss,
    duplication and delay jitter.  A network with no faults configured
    behaves exactly as one built before the fault layer existed
    (pay-for-what-you-use), and registers no fault metrics. *)

open Net

type t
(** A wired network. *)

type link_delay = Asn.t -> Asn.t -> float
(** Message latency of the session between two ASes (called with the
    sender first); must be positive. *)

type impairment = {
  loss : float;  (** probability each message is dropped, in [0,1] *)
  duplicate : float;  (** probability each delivered message is doubled *)
  jitter : float;  (** extra delay drawn uniformly from [0, jitter) *)
}
(** Probabilistic per-link message impairment.  Loss is decided first;
    a delivered message is then jittered and possibly duplicated (the
    duplicate gets its own jitter draw, so copies may reorder). *)

val impairment :
  ?loss:float -> ?duplicate:float -> ?jitter:float -> unit -> impairment
(** Build an impairment (all fields default to 0).
    @raise Invalid_argument on probabilities outside [0,1] or negative
    jitter. *)

(** Per-network construction knobs, gathered in one record so that a new
    knob (the obs registry being the first) widens this type rather than
    every construction site.  Build one with {!Config.default} and the
    [with_*] helpers:
    {[
      Network.make
        ~config:Network.Config.(default |> with_mrai_of (fun _ -> 30.0))
        graph
    ]} *)
module Config : sig
  type t = {
    policy_of : Asn.t -> Policy.t;  (** per-AS routing policy *)
    validator_of : Asn.t -> Router.validator option;
        (** per-AS route validator (the MOAS detector hook) *)
    mrai_of : Asn.t -> float;  (** per-AS MRAI, seconds (0 = none) *)
    damping_of : Asn.t -> Router.damping option;
        (** per-AS route-flap damping (None = off) *)
    link_delay : link_delay;  (** per-link message latency *)
    metrics : Obs.Registry.t;
        (** observability registry wired into the engine and every
            router; {!Obs.Registry.noop} collects nothing at zero cost *)
  }

  val default : t
  (** Default policy, no validators, MRAI 0, no damping, the default
      link delay (1.0 plus a small deterministic per-link offset that
      breaks timing symmetry the way heterogeneous links do in reality),
      and the no-op registry. *)

  val with_policy_of : (Asn.t -> Policy.t) -> t -> t
  val with_validator_of : (Asn.t -> Router.validator option) -> t -> t
  val with_mrai_of : (Asn.t -> float) -> t -> t
  val with_damping_of : (Asn.t -> Router.damping option) -> t -> t
  val with_link_delay : link_delay -> t -> t
  val with_metrics : Obs.Registry.t -> t -> t
end

val make : ?config:Config.t -> Topology.As_graph.t -> t
(** Build a router per AS and a session per edge, configured by
    [config] (default {!Config.default}). *)

val engine : t -> Sim.Engine.t
(** The underlying event engine (for custom scheduling). *)

(** {2 Export tap}

    The hook the collector mesh ([lib/collect]) builds on: a passive
    observer of every UPDATE a router emits. *)

type update_tap = time:float -> src:Asn.t -> dst:Asn.t -> Update.t -> unit
(** Called once per emitted UPDATE with the engine time, the sending AS,
    the peer it was sent towards and the message itself.  The tap fires at
    emission (the Adj-RIB-Out stream), before link impairments decide the
    message's fate, and must not mutate the network. *)

val set_update_tap : t -> update_tap option -> unit
(** Install (or clear, with [None]) the network's update tap.  At most one
    tap is installed at a time; installing a new one replaces the old.
    A network without a tap pays a single branch per message. *)

val graph : t -> Topology.As_graph.t
(** The topology the network was built over. *)

val router : t -> Asn.t -> Router.t
(** The router of an AS. @raise Not_found for an unknown AS. *)

val routers : t -> Router.t Asn.Map.t
(** All routers. *)

val originate :
  ?at:float ->
  ?origin:Route.origin_attr ->
  ?local_pref:int ->
  ?communities:Community.Set.t ->
  ?as_path:As_path.t ->
  t ->
  Asn.t ->
  Prefix.t ->
  unit
(** Schedule an origination of [prefix] by the AS at time [at] (default 0).
    [as_path] forges the announced path (see {!Route.originate}).  An
    origination executing while the router is crashed still enters its
    startup configuration (and local table) but propagates nowhere until
    {!restart_router}. *)

val withdraw : ?at:float -> t -> Asn.t -> Prefix.t -> unit
(** Schedule the AS to stop originating the prefix. *)

(** {2 Faults}

    Each fault has a scheduled form ([?at], going through the engine — the
    composable surface {!Fault_plan} builds on) and an immediate [_now]
    form applying at the engine's current time (the primitive an injector
    calls from inside its own scheduled events, so that fault events can
    be cancelled without leaving stale network actions in the queue). *)

val fail_link : ?at:float -> t -> Asn.t -> Asn.t -> unit
(** Schedule a session failure on the peering between two ASes: both ends
    flush the routes learned over it and in-flight messages on the link are
    lost.  @raise Invalid_argument if the ASes do not peer. *)

val restore_link : ?at:float -> t -> Asn.t -> Asn.t -> unit
(** Schedule the re-establishment of a failed session; both ends perform
    the initial table exchange.  If an endpoint router is crashed only the
    link is repaired: the session comes back with its {!restart_router}. *)

val fail_link_now : t -> Asn.t -> Asn.t -> unit
(** Apply a link failure at the engine's current time (idempotent while
    down). *)

val restore_link_now : t -> Asn.t -> Asn.t -> unit
(** Apply a link repair at the engine's current time (idempotent while
    up). *)

val crash_router : ?at:float -> t -> Asn.t -> unit
(** Schedule a router crash: its RIBs, sessions, MRAI timers and damping
    state are lost; every live neighbour tears its session down and
    withdraws the routes it had learned from the AS.  In-flight messages
    from or to the router are lost.  Static configuration (originated
    prefixes, aggregates, policy, validator) survives for the restart.
    @raise Invalid_argument for an AS outside the topology. *)

val restart_router : ?at:float -> t -> Asn.t -> unit
(** Schedule the reboot of a crashed router: it re-installs its configured
    originations and re-establishes a session over every up link to every
    live neighbour (table exchange both ways). *)

val crash_router_now : t -> Asn.t -> unit
(** Apply a crash at the engine's current time (idempotent while down). *)

val restart_router_now : t -> Asn.t -> unit
(** Apply a restart at the engine's current time (idempotent while up). *)

val impair_link : t -> rng:Mutil.Rng.t -> Asn.t -> Asn.t -> impairment -> unit
(** Install (or replace) a message impairment on a peering, effective
    immediately for subsequently sent messages.  All probabilistic draws
    come from [rng] — supply a dedicated split so runs stay reproducible.
    @raise Invalid_argument if the ASes do not peer. *)

val clear_link_impairment : t -> Asn.t -> Asn.t -> unit
(** Remove a link's impairment (messages already in flight keep any jitter
    they were scheduled with). *)

val link_impairment : t -> Asn.t -> Asn.t -> impairment option
(** The impairment currently installed on a peering, if any. *)

val link_is_up : t -> Asn.t -> Asn.t -> bool
(** Current state of a peering (true unless failed). *)

val router_is_up : t -> Asn.t -> bool
(** Current state of a router (true unless crashed). *)

val run : ?max_events:int -> t -> Sim.Engine.outcome
(** Run the engine until quiescence (BGP convergence) or the event budget
    (default 10 million, a safety net against protocol oscillation). *)

val best_route : t -> Asn.t -> Prefix.t -> Route.t option
(** The AS's selected route after a run. *)

val best_origin : t -> Asn.t -> Prefix.t -> Asn.t option
(** Origin AS of the selected route. *)

val forward_path : t -> from:Asn.t -> Ipv4.t -> Asn.t list option
(** AS-level packet forwarding: starting at [from], repeatedly follow the
    longest-prefix-match best route's supplier until an AS that originates
    the covering prefix is reached.  Returns the traversed ASes (including
    both ends), or [None] when some hop has no route or forwarding loops —
    this is how hijacked traffic "arrives at the faulty AS and gets
    dropped" (Section 3.3). *)

val delivered_to : t -> from:Asn.t -> Ipv4.t -> Asn.t option
(** Final AS of {!forward_path}: where a packet for the address actually
    lands when sent from [from]. *)

val total_updates_sent : t -> int
(** Sum of UPDATE messages emitted by all routers (message overhead). *)

val total_updates_received : t -> int
(** Sum of UPDATE messages processed by all routers. *)
