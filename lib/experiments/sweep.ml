open Net
module Rng = Mutil.Rng
module Stats = Mutil.Stats

type point = {
  n_attackers : int;
  attacker_fraction : float;
  mean_adopting : float;
  stderr_adopting : float;
  mean_alarm_count : float;
  mean_oracle_queries : float;
  mean_updates : float;
  detection_rate : float;
  all_converged : bool;
}

type config = {
  seed : int64;
  topology : Topology.Paper_topologies.t;
  n_origins : int;
  deployment : Moas.Deployment.t;
  origin_selections : int;
  attacker_selections : int;
  community_dropper_fraction : float;
  attach_list_always : bool;
  policy_mode : Attack.Scenario.policy_mode;
}

let config ?(origin_selections = 3) ?(attacker_selections = 5)
    ?(community_dropper_fraction = 0.0) ?(attach_list_always = false)
    ?(policy_mode = Attack.Scenario.Shortest_path) ?(seed = 0x45585031L)
    ~topology ~n_origins ~deployment () =
  if origin_selections < 1 || attacker_selections < 1 then
    invalid_arg "Sweep.config: need at least one selection of each kind";
  {
    seed;
    topology;
    n_origins;
    deployment;
    origin_selections;
    attacker_selections;
    community_dropper_fraction;
    attach_list_always;
    policy_mode;
  }

(* Derived, order-independent streams: origins depend only on the origin
   selection index, attackers on both indices, so origin set [oi] is
   identical across every attacker selection and every deployment — the
   Normal-BGP and Full-MOAS curves face the same adversaries. *)
let root cfg = Rng.create ~seed:cfg.seed

let origins_for cfg ~selection =
  let rng = Rng.split_at (root cfg) (1000 + selection) in
  let stubs =
    Array.of_list (Asn.Set.elements cfg.topology.Topology.Paper_topologies.stub)
  in
  if cfg.n_origins > Array.length stubs then
    invalid_arg "Sweep: not enough stub ASes for the requested origins";
  Array.to_list (Rng.sample rng stubs cfg.n_origins)

let attackers_for cfg ~origin_selection ~attacker_selection ~n_attackers
    ~origins =
  let rng =
    Rng.split_at (root cfg)
      (2000 + (origin_selection * 100) + attacker_selection)
  in
  let origin_set = Asn.Set.of_list origins in
  let pool =
    Asn.Set.elements
      (Asn.Set.diff
         (Topology.As_graph.nodes cfg.topology.Topology.Paper_topologies.graph)
         origin_set)
    |> Array.of_list
  in
  if n_attackers > Array.length pool then
    invalid_arg "Sweep: more attackers than available ASes";
  Rng.sample rng pool n_attackers
  |> Array.to_list
  |> List.map (fun asn -> Attack.Attacker.make asn)

let run_point ?jobs cfg ~n_attackers =
  let graph = cfg.topology.Topology.Paper_topologies.graph in
  let total_ases = Topology.As_graph.node_count graph in
  (* one task per (origin selection, attacker selection) pair, flattened
     origin-major.  Every stream a task consumes is derived from the
     pair's indices alone and all simulation state (engine, network,
     registry) is built inside Scenario.run, so the outcome array — and
     therefore every statistic below — is byte-identical at any job
     count. *)
  let outcomes =
    Exec.Pool.map ?jobs
      (fun idx ->
        let oi = idx / cfg.attacker_selections in
        let ai = idx mod cfg.attacker_selections in
        let origins = origins_for cfg ~selection:oi in
        let attackers =
          attackers_for cfg ~origin_selection:oi ~attacker_selection:ai
            ~n_attackers ~origins
        in
        let scenario =
          Attack.Scenario.make ~deployment:cfg.deployment
            ~attach_list_always:cfg.attach_list_always
            ~community_dropper_fraction:cfg.community_dropper_fraction
            ~policy_mode:cfg.policy_mode ~graph
            ~victim_prefix:(Prefix.of_string "192.0.2.0/24")
            ~legit_origins:origins ~attackers ()
        in
        let run_rng = Rng.split_at (root cfg) (3000 + (oi * 100) + ai) in
        Attack.Scenario.run run_rng scenario)
      (Array.init (cfg.origin_selections * cfg.attacker_selections) Fun.id)
  in
  let outcomes = Array.to_list outcomes in
  let adopting =
    List.map (fun o -> o.Attack.Scenario.fraction_adopting) outcomes
  in
  let floats f = List.map (fun o -> float_of_int (f o)) outcomes in
  {
    n_attackers;
    attacker_fraction = float_of_int n_attackers /. float_of_int total_ases;
    mean_adopting = Stats.mean adopting;
    stderr_adopting = Stats.stderr_of_mean adopting;
    mean_alarm_count = Stats.mean (floats (fun o -> o.Attack.Scenario.alarm_count));
    mean_oracle_queries =
      Stats.mean (floats (fun o -> o.Attack.Scenario.oracle_queries));
    mean_updates = Stats.mean (floats (fun o -> o.Attack.Scenario.updates_sent));
    detection_rate =
      Stats.mean
        (List.map
           (fun o -> if o.Attack.Scenario.detected then 1.0 else 0.0)
           outcomes);
    all_converged = List.for_all (fun o -> o.Attack.Scenario.converged) outcomes;
  }

let run ?jobs cfg ~n_attackers_list =
  List.map (fun n -> run_point ?jobs cfg ~n_attackers:n) n_attackers_list

let default_attacker_counts topology =
  let n =
    Topology.As_graph.node_count topology.Topology.Paper_topologies.graph
  in
  let fractions = [ 0.02; 0.05; 0.08; 0.12; 0.16; 0.20; 0.25; 0.30; 0.35; 0.40; 0.45 ] in
  List.map
    (fun f -> max 1 (int_of_float (Float.round (f *. float_of_int n))))
    fractions
  |> List.sort_uniq compare
