(** Regeneration of every results figure of the paper (Figures 9, 10, 11)
    and the headline summary statistics ("Table 1"), built on {!Sweep}. *)

type figure = {
  id : string;  (** e.g. ["Figure 9(a)"] *)
  title : string;
  x_label : string;
  y_label : string;
  series : Mutil.Ascii_plot.series list;
      (** x: percent of attacker ASes; y: percent of remaining ASes that
          adopt a false route *)
  notes : string list;  (** qualitative observations / paper references *)
}

val figure9 : ?seed:int64 -> ?jobs:int -> ?tracer:Obs.Span.t -> unit -> figure list
(** Experiment 1 — spoof-resilience in the 46-AS topology, one figure per
    origin count (1 and 2): Normal BGP vs Full MOAS detection.

    [jobs] (default {!Exec.Pool.default_jobs}, also on the figures
    below) sizes the domain pool the underlying sweeps run on; output is
    byte-identical at any job count.
    [tracer] (default {!Obs.Span.noop}, also on the figures below)
    records one span per figure panel plus one per underlying sweep
    ([sweep:<topology>:<series label>]) — the per-phase timings the
    benchmark harness exports. *)

val figure10 : ?seed:int64 -> ?jobs:int -> ?tracer:Obs.Span.t -> unit -> figure list
(** Experiment 2 — 25-AS vs 46-AS vs 63-AS comparison, one figure per
    origin count: Normal BGP and Full MOAS detection on each topology. *)

val figure11 : ?seed:int64 -> ?jobs:int -> ?tracer:Obs.Span.t -> unit -> figure list
(** Experiment 3 — partial deployment: Normal BGP vs 50% vs full
    deployment, one figure per topology (46-AS and 63-AS). *)

val render : figure -> string
(** ASCII plot followed by the exact data table. *)

val to_csv : figure -> string list * string list list
(** (header, rows) for CSV export. *)

val summary_table : ?seed:int64 -> ?jobs:int -> ?tracer:Obs.Span.t -> unit -> string
(** The paper's headline statistics (Sections 1 and 5.2-5.4) re-measured
    on our topologies, printed against the paper's values. *)
