(** Ablations for the design points the paper discusses but does not plot:

    - Section 4.3: routers that drop the optional community attribute cause
      false alarms but must never make an invalid MOAS look valid;
    - Section 4.3: the MOAS list adds overhead only to multi-origin routes,
      and 99% of lists have at most 3 entries;
    - Section 4.3: a sub-prefix hijack is NOT caught by MOAS checking (a
      documented limitation, reproduced as a negative result);
    - Section 4.4: the DNS/MOASRR registry is consulted only when a
      conflict appears, not per update. *)

type dropper_point = {
  dropper_fraction : float;
  false_alarm_rate : float;
      (** fraction of benign runs (no attacker) in which some capable AS
          alarmed — alarms caused purely by list stripping *)
  missed_detection_rate : float;
      (** fraction of attacked runs in which NO capable AS alarmed *)
  mean_adopting : float;  (** adoption under attack despite full deployment *)
}

val community_droppers :
  ?seed:int64 ->
  ?jobs:int ->
  ?fractions:float list ->
  topology:Topology.Paper_topologies.t ->
  unit ->
  dropper_point list
(** Sweep the fraction of community-stripping ASes with full MOAS
    deployment, measuring false alarms (benign multi-origin prefix) and
    detection robustness (one attacker). *)

type subprefix_result = {
  moas_alarms : int;  (** alarms raised by MOAS checking — expected 0 *)
  hijacked_fraction : float;
      (** ASes whose longest-prefix match for a victim host goes to the
          attacker *)
}

val subprefix_hijack :
  ?seed:int64 -> topology:Topology.Paper_topologies.t -> unit -> subprefix_result
(** The Section 4.3 limitation: an attacker announcing a more-specific
    prefix captures traffic without ever creating a MOAS conflict. *)

type overhead_point = {
  list_size : int;  (** origins in the MOAS list *)
  communities_per_update : int;
  bytes_per_update : int;
      (** exact RFC 4271 octets of the UPDATE carrying the list *)
}

val list_overhead : max_size:int -> overhead_point list
(** Size cost of the MOAS list as a function of the origin count, measured
    on the actual wire encoding. *)

type query_accounting = {
  updates_processed : int;
  oracle_queries : int;
  queries_per_update : float;
}

val oracle_query_accounting :
  ?seed:int64 ->
  topology:Topology.Paper_topologies.t ->
  n_attackers:int ->
  unit ->
  query_accounting
(** How rarely the registry is consulted relative to BGP message volume
    (full deployment, one origin). *)

type policy_point = {
  policy_label : string;
  deployment_label : string;
  n_attackers : int;
  mean_adopting : float;
}

val policy_routing :
  ?seed:int64 ->
  ?jobs:int ->
  ?n_attackers_list:int list ->
  topology:Topology.Paper_topologies.t ->
  unit ->
  policy_point list
(** Repeat the Experiment-1 sweep under Gao-Rexford (customer/peer/provider)
    policies instead of the paper's shortest-path routing: the detection
    benefit must be robust to the routing-policy model. *)

val mrai_sensitivity :
  ?seed:int64 ->
  ?jobs:int ->
  ?mrais:float list ->
  topology:Topology.Paper_topologies.t ->
  unit ->
  (float * float * int) list
(** [(mrai, adoption, updates)] with full deployment and 30% attackers:
    rate-limiting advertisement does not change the outcome, only message
    count. *)

val render_all : ?seed:int64 -> ?jobs:int -> unit -> string
(** Every ablation formatted for the benchmark report. *)
