module Plot = Mutil.Ascii_plot
module Table = Mutil.Text_table
module Topo = Topology.Paper_topologies

type figure = {
  id : string;
  title : string;
  x_label : string;
  y_label : string;
  series : Plot.series list;
  notes : string list;
}

let percent x = 100.0 *. x

let series_of_points ~label points =
  {
    Plot.label;
    points =
      List.map
        (fun (p : Sweep.point) ->
          (percent p.Sweep.attacker_fraction, percent p.Sweep.mean_adopting))
        points;
  }

let sweep_series ?seed ?jobs ?(tracer = Obs.Span.noop) ~topology ~n_origins
    ~deployment ~label () =
  Obs.Span.with_span tracer
    (Printf.sprintf "sweep:%s:%s" topology.Topo.name label)
    (fun () ->
      let cfg = Sweep.config ?seed ~topology ~n_origins ~deployment () in
      let points =
        Sweep.run ?jobs cfg
          ~n_attackers_list:(Sweep.default_attacker_counts topology)
      in
      (series_of_points ~label points, points))

let default_axes =
  ( "Percent of attacker ASes",
    "Percent of remaining ASes adopting a false route" )

let figure9 ?seed ?jobs ?(tracer = Obs.Span.noop) () =
  let topology = Topo.topology_46 () in
  let make ~origins ~id =
    Obs.Span.with_span tracer id @@ fun () ->
    let normal, _ =
      sweep_series ?seed ?jobs ~tracer ~topology ~n_origins:origins
        ~deployment:Moas.Deployment.Disabled ~label:"Normal BGP" ()
    in
    let full, _ =
      sweep_series ?seed ?jobs ~tracer ~topology ~n_origins:origins
        ~deployment:Moas.Deployment.Full ~label:"Full MOAS Detection" ()
    in
    let x_label, y_label = default_axes in
    {
      id;
      title =
        Printf.sprintf
          "Spoof-resilience in the 46-AS topology (%d origin AS%s)" origins
          (if origins > 1 then "es" else "");
      x_label;
      y_label;
      series = [ normal; full ];
      notes =
        [
          "Paper: >36% adoption at ~4% attackers without validation, 0.15% with";
          "Paper: 51% vs 9.8% at 30% attackers";
        ];
    }
  in
  [ make ~origins:1 ~id:"Figure 9(a)"; make ~origins:2 ~id:"Figure 9(b)" ]

let figure10 ?seed ?jobs ?(tracer = Obs.Span.noop) () =
  let topologies = [ Topo.topology_25 (); Topo.topology_46 (); Topo.topology_63 () ] in
  let make ~origins ~id =
    Obs.Span.with_span tracer id @@ fun () ->
    let series =
      List.concat_map
        (fun topology ->
          let name = topology.Topo.name in
          let normal, _ =
            sweep_series ?seed ?jobs ~tracer ~topology ~n_origins:origins
              ~deployment:Moas.Deployment.Disabled
              ~label:(name ^ " Normal BGP") ()
          in
          let full, _ =
            sweep_series ?seed ?jobs ~tracer ~topology ~n_origins:origins
              ~deployment:Moas.Deployment.Full
              ~label:(name ^ " Full MOAS Detection") ()
          in
          [ normal; full ])
        topologies
    in
    let x_label, y_label = default_axes in
    {
      id;
      title =
        Printf.sprintf "Topology-size comparison (%d origin AS%s)" origins
          (if origins > 1 then "es" else "");
      x_label;
      y_label;
      series;
      notes =
        [
          "Paper: Normal BGP curves are similar across sizes";
          "Paper: with MOAS detection the 63-AS topology is markedly more robust";
        ];
    }
  in
  [ make ~origins:1 ~id:"Figure 10(a)"; make ~origins:2 ~id:"Figure 10(b)" ]

let figure11 ?seed ?jobs ?(tracer = Obs.Span.noop) () =
  let make ~topology ~id =
    Obs.Span.with_span tracer id @@ fun () ->
    let deployments =
      [
        (Moas.Deployment.Disabled, "Normal BGP");
        (Moas.Deployment.Fraction 0.5, "Half MOAS Detection");
        (Moas.Deployment.Full, "Full MOAS Detection");
      ]
    in
    let series =
      List.map
        (fun (deployment, label) ->
          fst
            (sweep_series ?seed ?jobs ~tracer ~topology ~n_origins:1
               ~deployment ~label ()))
        deployments
    in
    let x_label, y_label = default_axes in
    {
      id;
      title =
        Printf.sprintf "Partial vs complete deployment (%s topology)"
          topology.Topo.name;
      x_label;
      y_label;
      series;
      notes =
        [
          "Paper: half deployment still blocks most false-route adoption";
          "Paper: 63-AS partial deployment cuts adoption by >63% at 30% attackers";
        ];
    }
  in
  [
    make ~topology:(Topo.topology_46 ()) ~id:"Figure 11(a)";
    make ~topology:(Topo.topology_63 ()) ~id:"Figure 11(b)";
  ]

let render figure =
  let plot =
    Plot.plot ~height:18 ~title:(figure.id ^ ": " ^ figure.title)
      ~x_label:figure.x_label ~y_label:figure.y_label figure.series
  in
  let xs =
    List.sort_uniq compare
      (List.concat_map (fun s -> List.map fst s.Plot.points) figure.series)
  in
  let header = "% attackers" :: List.map (fun s -> s.Plot.label) figure.series in
  let rows =
    List.map
      (fun x ->
        Printf.sprintf "%.1f" x
        :: List.map
             (fun s ->
               match List.assoc_opt x s.Plot.points with
               | Some y -> Printf.sprintf "%.2f" y
               | None -> "-")
             figure.series)
      xs
  in
  let notes =
    String.concat "" (List.map (fun n -> "  note: " ^ n ^ "\n") figure.notes)
  in
  plot ^ Table.render ~header rows ^ notes

let to_csv figure =
  let header =
    "attacker_percent" :: List.map (fun s -> s.Plot.label) figure.series
  in
  let xs =
    List.sort_uniq compare
      (List.concat_map (fun s -> List.map fst s.Plot.points) figure.series)
  in
  let rows =
    List.map
      (fun x ->
        Printf.sprintf "%.4f" x
        :: List.map
             (fun s ->
               match List.assoc_opt x s.Plot.points with
               | Some y -> Printf.sprintf "%.4f" y
               | None -> "")
             figure.series)
      xs
  in
  (header, rows)

(* ------------------------------------------------------------------ *)
(* Headline statistics *)

let point_at ?seed ?jobs ~topology ~n_origins ~deployment ~fraction () =
  let n = Topology.As_graph.node_count topology.Topo.graph in
  let n_attackers =
    max 1 (int_of_float (Float.round (fraction *. float_of_int n)))
  in
  let cfg = Sweep.config ?seed ~topology ~n_origins ~deployment () in
  Sweep.run_point ?jobs cfg ~n_attackers

let summary_table ?seed ?jobs ?(tracer = Obs.Span.noop) () =
  Obs.Span.with_span tracer "summary statistics" @@ fun () ->
  let t25 = Topo.topology_25 ()
  and t46 = Topo.topology_46 ()
  and t63 = Topo.topology_63 () in
  let pct p = Table.percent_cell ~decimals:2 p.Sweep.mean_adopting in
  let normal = Moas.Deployment.Disabled
  and full = Moas.Deployment.Full
  and half = Moas.Deployment.Fraction 0.5 in
  let p46_4_normal = point_at ?seed ?jobs ~topology:t46 ~n_origins:1 ~deployment:normal ~fraction:0.04 () in
  let p46_4_full = point_at ?seed ?jobs ~topology:t46 ~n_origins:1 ~deployment:full ~fraction:0.04 () in
  let p46_30_normal = point_at ?seed ?jobs ~topology:t46 ~n_origins:1 ~deployment:normal ~fraction:0.30 () in
  let p46_30_full = point_at ?seed ?jobs ~topology:t46 ~n_origins:1 ~deployment:full ~fraction:0.30 () in
  let p63_16_full = point_at ?seed ?jobs ~topology:t63 ~n_origins:1 ~deployment:full ~fraction:0.16 () in
  let p63_35_full = point_at ?seed ?jobs ~topology:t63 ~n_origins:1 ~deployment:full ~fraction:0.35 () in
  let p25_35_full = point_at ?seed ?jobs ~topology:t25 ~n_origins:1 ~deployment:full ~fraction:0.35 () in
  let p63_30_normal = point_at ?seed ?jobs ~topology:t63 ~n_origins:1 ~deployment:normal ~fraction:0.30 () in
  let p63_30_half = point_at ?seed ?jobs ~topology:t63 ~n_origins:1 ~deployment:half ~fraction:0.30 () in
  let reduction =
    if p63_30_normal.Sweep.mean_adopting <= 0.0 then 0.0
    else
      1.0
      -. (p63_30_half.Sweep.mean_adopting /. p63_30_normal.Sweep.mean_adopting)
  in
  let rows =
    [
      [ "46-AS, ~4% attackers, Normal BGP"; ">36%"; pct p46_4_normal ];
      [ "46-AS, ~4% attackers, Full MOAS"; "0.15%"; pct p46_4_full ];
      [ "46-AS, 30% attackers, Normal BGP"; "51%"; pct p46_30_normal ];
      [ "46-AS, 30% attackers, Full MOAS"; "9.8%"; pct p46_30_full ];
      [ "63-AS, ~16% attackers, Full MOAS"; "2.1%"; pct p63_16_full ];
      [ "63-AS, ~35% attackers, Full MOAS"; "7.8%"; pct p63_35_full ];
      [ "25-AS, ~35% attackers, Full MOAS"; "31.2%"; pct p25_35_full ];
      [
        "63-AS, 30% attackers: adoption cut by half deployment";
        ">63%";
        Table.percent_cell ~decimals:1 reduction;
      ];
    ]
  in
  Table.render
    ~header:[ "Statistic (mean of 15 runs)"; "paper"; "measured" ]
    rows
