(** Parameter sweeps with the paper's averaging discipline: every data
    point is the mean of 15 runs obtained from 3 independent origin-AS
    selections crossed with 5 attacker selections (Section 5.2,
    footnote 4). *)

open Net

type point = {
  n_attackers : int;
  attacker_fraction : float;  (** of all ASes, the paper's x axis *)
  mean_adopting : float;  (** mean fraction of remaining ASes adopting *)
  stderr_adopting : float;  (** standard error over the runs *)
  mean_alarm_count : float;  (** distinct alarms per run *)
  mean_oracle_queries : float;
  mean_updates : float;
  detection_rate : float;  (** fraction of runs with at least one alarm *)
  all_converged : bool;
}

type config = {
  seed : int64;
  topology : Topology.Paper_topologies.t;
  n_origins : int;
  deployment : Moas.Deployment.t;
  origin_selections : int;  (** default 3 *)
  attacker_selections : int;  (** default 5 *)
  community_dropper_fraction : float;  (** default 0 *)
  attach_list_always : bool;  (** default false *)
  policy_mode : Attack.Scenario.policy_mode;  (** default shortest path *)
}

val config :
  ?origin_selections:int ->
  ?attacker_selections:int ->
  ?community_dropper_fraction:float ->
  ?attach_list_always:bool ->
  ?policy_mode:Attack.Scenario.policy_mode ->
  ?seed:int64 ->
  topology:Topology.Paper_topologies.t ->
  n_origins:int ->
  deployment:Moas.Deployment.t ->
  unit ->
  config
(** Build a sweep configuration with the paper's defaults. *)

val run_point : ?jobs:int -> config -> n_attackers:int -> point
(** Average the configured number of runs for one attacker count.  The
    origin×attacker selections execute as independent tasks on an
    {!Exec.Pool} ([jobs] defaults to {!Exec.Pool.default_jobs}); every
    per-run stream is pre-split from the selection indices, so the result
    is byte-identical at any job count. *)

val run : ?jobs:int -> config -> n_attackers_list:int list -> point list
(** One point per attacker count. *)

val default_attacker_counts : Topology.Paper_topologies.t -> int list
(** Attacker counts spanning roughly 2%..45% of the topology, the x range
    of Figures 9-11. *)

val origins_for : config -> selection:int -> Asn.t list
(** The origin ASes used by a given origin selection (for tests). *)
