(** Detection robustness under injected faults (the {!Faults} layer).

    The paper's core robustness argument (Section 4.1) is that an attacker
    evades MOAS-list detection only by blocking {e every} propagation path
    of the correct announcement.  The failure-free experiments never test
    that boundary; this module does, three ways:

    - {!partition_study} cuts the legitimate origin's peerings one by one
      between the valid announcement and the attack.  Detection must stay
      at 100% while any path survives and fall to 0 exactly when the
      origin is partitioned (no capable AS can then hold both routes).
    - {!churn_study} runs Poisson-like link churn across the whole mesh
      during the attack, with an attack-free control arm driven by the
      identical fault trajectory: alarms in the control arm are false
      alarms attributable to churn alone.
    - {!loss_study} subjects every link to probabilistic message loss
      (the simulator models the channel without TCP retransmission).

    Everything is deterministic from the seed: the same study called twice
    yields identical points, alarm counts and convergence times. *)

type partition_point = {
  links_cut : int;  (** origin peerings severed (clamped to the degree) *)
  runs : int;
  partitioned_runs : int;  (** runs whose origin lost its last path *)
  detected_reachable : int;  (** detecting runs among the non-partitioned *)
  detected_partitioned : int;  (** detecting runs among the partitioned *)
  mean_adopting : float;  (** mean fraction adopting the bogus route *)
}

val partition_study :
  ?seed:int64 ->
  ?runs:int ->
  ?jobs:int ->
  topology:Topology.Paper_topologies.t ->
  unit ->
  partition_point list
(** One point per number of severed origin links, 0 up to the largest
    origin degree drawn (default 10 runs; full deployment, 1 origin, 1
    attacker).  The links are cut after the first convergence and the
    attack lands only once the withdrawal's path exploration has fully
    died out, so each point measures the steady-state boundary rather
    than a race between the bogus announcement and the teardown. *)

val every_path_blocking_holds : partition_point list -> bool
(** The paper's claim, checked: every non-partitioned run detected and no
    partitioned run did. *)

val render_partition : partition_point list -> string

type churn_point = {
  rate : float;  (** expected link faults per second across the mesh *)
  runs : int;
  detection_rate : float;
  mean_alarms : float;
  mean_false_alarms : float;  (** alarms in the attack-free control arm *)
  mean_convergence : float;  (** simulation time at quiescence *)
  mean_updates : float;
  mean_session_downs : float;  (** sessions torn down per run *)
  mean_messages_dropped : float;  (** in-flight losses per run *)
  all_converged : bool;
}

val churn_study :
  ?seed:int64 ->
  ?runs:int ->
  ?jobs:int ->
  ?rates:float list ->
  topology:Topology.Paper_topologies.t ->
  unit ->
  churn_point list
(** One point per churn rate (default 0, 0.02, 0.05, 0.1 events/s over a
    115 s window spanning the attack; rate 0 is the fault-free baseline). *)

val render_churn : churn_point list -> string

type loss_point = {
  loss : float;  (** per-message drop probability on every link *)
  runs : int;
  detection_rate : float;
  mean_adopting : float;
  mean_messages_dropped : float;
  mean_convergence : float;
  all_converged : bool;
}

val loss_study :
  ?seed:int64 ->
  ?runs:int ->
  ?jobs:int ->
  ?losses:float list ->
  topology:Topology.Paper_topologies.t ->
  unit ->
  loss_point list
(** One point per loss probability (default 0, 5%, 10%, 20%). *)

val render_loss : loss_point list -> string

val report : ?seed:int64 -> ?smoke:bool -> ?jobs:int -> unit -> string
(** All three studies rendered for the paper topologies ([smoke] restricts
    to the 25-AS topology with fewer runs and sweep points — the CI
    determinism job runs it twice and diffs the output).  The per-run
    simulations execute on an {!Exec.Pool}; the report is byte-identical
    at any [jobs] count. *)
