open Net
module Rng = Mutil.Rng
module Stats = Mutil.Stats
module Table = Mutil.Text_table
module Topo = Topology.Paper_topologies

type dropper_point = {
  dropper_fraction : float;
  false_alarm_rate : float;
  missed_detection_rate : float;
  mean_adopting : float;
}

let runs_per_point = 15

let victim = Prefix.of_string "192.0.2.0/24"

let scenario_origins rng topology n =
  let stubs = Array.of_list (Asn.Set.elements topology.Topo.stub) in
  Array.to_list (Rng.sample rng stubs n)

let pick_attacker rng topology ~origins =
  let pool =
    Asn.Set.elements
      (Asn.Set.diff (Topology.As_graph.nodes topology.Topo.graph)
         (Asn.Set.of_list origins))
    |> Array.of_list
  in
  Attack.Attacker.make (Rng.pick rng pool)

let community_droppers ?(seed = 0x41424c31L) ?jobs
    ?(fractions = [ 0.0; 0.1; 0.2; 0.3; 0.5 ]) ~topology () =
  let root = Rng.create ~seed in
  List.map
    (fun dropper_fraction ->
      (* every stream below is split from the run index alone, so the
         benign/attacked run pairs are independent pool tasks *)
      let results =
        Exec.Pool.map ?jobs
          (fun run ->
            let pick_rng = Rng.split_at root (run * 7) in
            let origins = scenario_origins pick_rng topology 2 in
            (* benign run: a legitimate two-origin prefix, nobody attacks;
               any alarm is a false one caused purely by list stripping *)
            let benign =
              Attack.Scenario.make ~deployment:Moas.Deployment.Full
                ~community_dropper_fraction:dropper_fraction
                ~graph:topology.Topo.graph ~victim_prefix:victim
                ~legit_origins:origins ~attackers:[] ()
            in
            let benign_outcome =
              Attack.Scenario.run (Rng.split_at root ((run * 7) + 1)) benign
            in
            (* attacked run: same origins plus one random attacker *)
            let attacker =
              pick_attacker (Rng.split_at root ((run * 7) + 2)) topology
                ~origins
            in
            let attacked =
              Attack.Scenario.make ~deployment:Moas.Deployment.Full
                ~community_dropper_fraction:dropper_fraction
                ~graph:topology.Topo.graph ~victim_prefix:victim
                ~legit_origins:origins ~attackers:[ attacker ] ()
            in
            let attacked_outcome =
              Attack.Scenario.run (Rng.split_at root ((run * 7) + 3)) attacked
            in
            ( benign_outcome.Attack.Scenario.detected,
              attacked_outcome.Attack.Scenario.detected,
              attacked_outcome.Attack.Scenario.fraction_adopting ))
          (Array.init runs_per_point Fun.id)
      in
      (* each run contributes one benign (truth=false) and one attacked
         (truth=true) prediction; the dropper's false-alarm and miss rates
         are then the standard confusion-matrix fallout and miss rate *)
      let c =
        Array.fold_left
          (fun c (benign_detected, attacked_detected, _) ->
            Stats.confusion_add
              (Stats.confusion_add c ~truth:false ~flagged:benign_detected)
              ~truth:true ~flagged:attacked_detected)
          Stats.no_confusion results
      in
      (* fold_left/cons rebuilds the reverse-run-order list the former
         loop accumulated, keeping the mean's summation order *)
      let adopting =
        Array.fold_left (fun acc (_, _, f) -> f :: acc) [] results
      in
      {
        dropper_fraction;
        false_alarm_rate = Stats.fallout c;
        missed_detection_rate = Stats.miss_rate c;
        mean_adopting = Stats.mean adopting;
      })
    fractions

type subprefix_result = { moas_alarms : int; hijacked_fraction : float }

let subprefix_hijack ?(seed = 0x41424c32L) ~topology () =
  let rng = Rng.create ~seed in
  let origins = scenario_origins (Rng.split_at rng 0) topology 1 in
  let origin =
    match origins with
    | [ o ] -> o
    | _ -> assert false
  in
  let attacker_asn =
    (pick_attacker (Rng.split_at rng 1) topology ~origins).Attack.Attacker.asn
  in
  let oracle = Moas.Origin_verification.create () in
  Moas.Origin_verification.register oracle victim (Asn.Set.singleton origin);
  let detectors = Hashtbl.create 64 in
  let validator_of asn =
    if Asn.equal asn attacker_asn then None
    else begin
      let d =
        Moas.Detector.create ~backend:(Moas.Detector.Oracle oracle) ~self:asn ()
      in
      Hashtbl.replace detectors asn d;
      Some (Moas.Detector.validator d)
    end
  in
  let network =
    Bgp.Network.make
      ~config:Bgp.Network.Config.(default |> with_validator_of validator_of)
      topology.Topo.graph
  in
  Bgp.Network.originate ~at:0.0 network origin victim;
  (* the attacker announces a more-specific half of the victim prefix: a
     different NLRI, so no MOAS conflict ever arises *)
  let sub, _ = Prefix.split victim in
  Bgp.Network.originate ~at:50.0 network attacker_asn sub;
  ignore (Bgp.Network.run network);
  let host = Prefix.network sub in
  let nodes = Topology.As_graph.nodes topology.Topo.graph in
  let eligible =
    Asn.Set.remove attacker_asn nodes |> Asn.Set.remove origin
  in
  let hijacked =
    Asn.Set.filter
      (fun asn ->
        let rib = Bgp.Router.rib (Bgp.Network.router network asn) in
        match Prefix_trie.longest_match host (Bgp.Rib.loc_rib_trie rib) with
        | Some (_, route) ->
          Asn.equal (Bgp.Route.origin_as ~self:asn route) attacker_asn
        | None -> false)
      eligible
  in
  let alarms =
    Hashtbl.fold (fun _ d acc -> acc + Moas.Detector.alarm_count d) detectors 0
  in
  {
    moas_alarms = alarms;
    hijacked_fraction =
      float_of_int (Asn.Set.cardinal hijacked)
      /. float_of_int (max 1 (Asn.Set.cardinal eligible));
  }

type overhead_point = {
  list_size : int;
  communities_per_update : int;
  bytes_per_update : int;
}

let list_overhead ~max_size =
  List.init max_size (fun i ->
      let n = i + 1 in
      let ases = Asn.Set.of_list (List.init n (fun k -> Asn.make (100 + k))) in
      let communities = Moas.Moas_list.encode ases in
      let count = Bgp.Community.Set.cardinal communities in
      (* exact octets on the wire for the whole UPDATE carrying the list *)
      let update =
        Bgp.Update.announce ~sender:(Asn.make 100)
          {
            Bgp.Route.prefix = victim;
            as_path = Bgp.As_path.of_list [ 100 ];
            origin = Bgp.Route.Igp;
            learned_from = Asn.make 100;
            local_pref = 100;
            communities;
          }
      in
      {
        list_size = n;
        communities_per_update = count;
        bytes_per_update = Bgp.Wire.update_size update;
      })

type query_accounting = {
  updates_processed : int;
  oracle_queries : int;
  queries_per_update : float;
}

let oracle_query_accounting ?(seed = 0x41424c33L) ~topology ~n_attackers () =
  let rng = Rng.create ~seed in
  let origins = scenario_origins (Rng.split_at rng 0) topology 1 in
  let pool =
    Asn.Set.elements
      (Asn.Set.diff (Topology.As_graph.nodes topology.Topo.graph)
         (Asn.Set.of_list origins))
    |> Array.of_list
  in
  let attackers =
    Rng.sample (Rng.split_at rng 1) pool n_attackers
    |> Array.to_list
    |> List.map (fun asn -> Attack.Attacker.make asn)
  in
  let scenario =
    Attack.Scenario.make ~deployment:Moas.Deployment.Full
      ~graph:topology.Topo.graph ~victim_prefix:victim ~legit_origins:origins
      ~attackers ()
  in
  let outcome = Attack.Scenario.run (Rng.split_at rng 2) scenario in
  {
    updates_processed = outcome.Attack.Scenario.updates_sent;
    oracle_queries = outcome.Attack.Scenario.oracle_queries;
    queries_per_update =
      float_of_int outcome.Attack.Scenario.oracle_queries
      /. float_of_int (max 1 outcome.Attack.Scenario.updates_sent);
  }

type policy_point = {
  policy_label : string;
  deployment_label : string;
  n_attackers : int;
  mean_adopting : float;
}

let policy_routing ?seed ?jobs ?(n_attackers_list = [ 2; 8; 14 ]) ~topology () =
  List.concat_map
    (fun (policy_label, policy_mode) ->
      List.concat_map
        (fun deployment ->
          let cfg =
            Sweep.config ?seed ~policy_mode ~topology ~n_origins:1 ~deployment ()
          in
          List.map
            (fun (p : Sweep.point) ->
              {
                policy_label;
                deployment_label = Moas.Deployment.to_string deployment;
                n_attackers = p.Sweep.n_attackers;
                mean_adopting = p.Sweep.mean_adopting;
              })
            (Sweep.run ?jobs cfg ~n_attackers_list))
        [ Moas.Deployment.Disabled; Moas.Deployment.Full ])
    [
      ("shortest path", Attack.Scenario.Shortest_path);
      ("Gao-Rexford", Attack.Scenario.Gao_rexford_inferred);
    ]

let mrai_sensitivity ?(seed = 0x41424c34L) ?jobs
    ?(mrais = [ 0.0; 5.0; 15.0; 30.0 ]) ~topology () =
  let rng = Rng.create ~seed in
  let origins = scenario_origins (Rng.split_at rng 0) topology 1 in
  let n = Topology.As_graph.node_count topology.Topo.graph in
  let n_attackers = max 1 (int_of_float (0.3 *. float_of_int n)) in
  let pool =
    Asn.Set.elements
      (Asn.Set.diff (Topology.As_graph.nodes topology.Topo.graph)
         (Asn.Set.of_list origins))
    |> Array.of_list
  in
  let attackers =
    Rng.sample (Rng.split_at rng 1) pool n_attackers
    |> Array.to_list
    |> List.map (fun asn -> Attack.Attacker.make asn)
  in
  Exec.Pool.map_list ?jobs
    (fun mrai ->
      let scenario =
        Attack.Scenario.make ~deployment:Moas.Deployment.Full ~mrai
          ~attack_at:200.0 ~graph:topology.Topo.graph ~victim_prefix:victim
          ~legit_origins:origins ~attackers ()
      in
      let outcome = Attack.Scenario.run (Rng.split_at rng 2) scenario in
      ( mrai,
        outcome.Attack.Scenario.fraction_adopting,
        outcome.Attack.Scenario.updates_sent ))
    mrais

let render_all ?seed ?jobs () =
  ignore seed;
  let topology = Topo.topology_46 () in
  let buf = Buffer.create 4096 in
  let droppers = community_droppers ?jobs ~topology () in
  Buffer.add_string buf
    (Table.render
       ~header:
         [ "dropper fraction"; "false alarms"; "missed detections"; "adoption" ]
       (List.map
          (fun p ->
            [
              Table.percent_cell ~decimals:0 p.dropper_fraction;
              Table.percent_cell ~decimals:1 p.false_alarm_rate;
              Table.percent_cell ~decimals:1 p.missed_detection_rate;
              Table.percent_cell ~decimals:2 p.mean_adopting;
            ])
          droppers));
  Buffer.add_string buf
    "  Section 4.3: stripping communities may raise false alarms but must not\n\
    \  hide an invalid MOAS; adoption stays near the full-deployment level.\n\n";
  let sub = subprefix_hijack ~topology () in
  Buffer.add_string buf
    (Printf.sprintf
       "Sub-prefix hijack (Section 4.3 limitation): MOAS alarms = %d (expected \
        0), %.1f%% of ASes forward the victim host to the attacker.\n\n"
       sub.moas_alarms
       (100.0 *. sub.hijacked_fraction));
  Buffer.add_string buf
    (Table.render
       ~header:[ "MOAS list size"; "communities"; "UPDATE size (octets)" ]
       (List.map
          (fun p ->
            [
              string_of_int p.list_size;
              string_of_int p.communities_per_update;
              string_of_int p.bytes_per_update;
            ])
          (list_overhead ~max_size:5)));
  Buffer.add_string buf
    "  Section 4.3: each listed origin costs exactly 4 octets on the wire\n\
    \  (RFC 4271 encoding); 99% of MOAS cases involve <=3 origins.\n\n";
  let acct = oracle_query_accounting ~topology ~n_attackers:5 () in
  Buffer.add_string buf
    (Printf.sprintf
       "Oracle accounting (Section 4.4): %d UPDATEs vs %d MOASRR lookups \
        (%.4f per update) - DNS is hit only on conflicts.\n\n"
       acct.updates_processed acct.oracle_queries acct.queries_per_update);
  let policy_points = policy_routing ?jobs ~topology () in
  Buffer.add_string buf
    (Table.render
       ~header:[ "routing policy"; "deployment"; "attackers"; "adoption" ]
       (List.map
          (fun p ->
            [
              p.policy_label;
              p.deployment_label;
              string_of_int p.n_attackers;
              Table.percent_cell ~decimals:2 p.mean_adopting;
            ])
          policy_points));
  Buffer.add_string buf
    "  Robustness check: the MOAS-list benefit survives a switch from the\n\
    \  paper's shortest-path routing to Gao-Rexford policy routing.\n\n";
  Buffer.add_string buf "MRAI sensitivity (full deployment, 30% attackers):\n";
  List.iter
    (fun (mrai, adoption, updates) ->
      Buffer.add_string buf
        (Printf.sprintf "  mrai=%5.1fs -> adoption %s, %d updates\n" mrai
           (Table.percent_cell ~decimals:2 adoption)
           updates))
    (mrai_sensitivity ?jobs ~topology ());
  Buffer.contents buf
