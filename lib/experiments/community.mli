(** Head-to-head evaluation of the community-dynamics detector against the
    paper's MOAS-list check and the deployment-cost baselines, over the
    collector-mesh scenario arms.

    Each run rebuilds a {!Collect.Scenario} workload on a network whose
    every AS follows the {!Bgp.Community_policy} usage model, installs at
    each unscrubbed feed AS a {!Moas.Community_watch}-backed detector, a
    detect-only MOAS-list detector and an evidence recorder, and scores
    five detectors per prefix (attacked / multihomed / quiet) against the
    arm's ground truth:

    - ["community"] — the {!Moas.Detector.Community} backend: alarms on
      community dynamics at any monitor;
    - ["moas-list"] — the paper's check on {e explicit} evidence: flags
      when observed lists disagree or an observed origin falls outside
      the advertised list.  No list seen, no verdict — which is exactly
      how scrubbing blinds it (Section 4.3);
    - ["moas-alarm"] — the footnote-3 detector (implicit singleton lists
      for unlisted routes): maximal recall, but false-alarms on the
      unlisted legitimate multihoming of the fault-churn arm;
    - ["irr"] — a stale route registry missing the second home's record:
      the staleness failure mode of whois-grade databases;
    - ["s-bgp"] — address attestations carrying exactly the truth: the
      deployment-expensive upper bound, immune to scrubbing.

    Deterministic from the seed at any job count: per-run streams are
    pre-split by run index and results merge in run order. *)

type scores = {
  sc_arm : Collect.Scenario.arm option;  (** [None] aggregates every arm *)
  sc_detector : string;
  sc_confusion : Mutil.Stats.confusion;
}

type result = {
  r_runs : int;
  r_smoke : bool;
  r_seed : int64;
  r_scores : scores list;
      (** per (arm, detector) then overall, in {!Collect.Scenario.all_arms}
          × {!detectors} order *)
  r_reasons : (Moas.Community_watch.reason * int) list;
      (** community anomalies per rule, summed over runs and monitors *)
  r_class_tally : (Bgp.Community_policy.usage_class * int) list;
      (** AS count per usage class, summed over runs *)
  r_events : int;  (** watch observations processed, the throughput base *)
  r_scrubbed_values : int;  (** community values dropped by scrubbers *)
}

val detectors : string list
(** The five detector names, in score order. *)

val warmup_until : float
(** The watch warmup horizon used by every run ([t=15]: after the second
    home converges, before partition, attack and the flap window's
    post-warmup cycles). *)

val default_seed : int64
(** Seed used when none is given. *)

val evaluate :
  ?metrics:Obs.Registry.t ->
  ?seed:int64 ->
  ?smoke:bool ->
  ?jobs:int ->
  unit ->
  result
(** Run the grid — every arm × topology (smoke: the 25-AS topology with 2
    replicates; full: all three with 3) — and score.  [metrics] receives
    the merged per-run registries (detector counters, scrub counters,
    [community_events_total], [community_alarms_total{reason}]). *)

val score :
  result -> ?arm:Collect.Scenario.arm -> string -> Mutil.Stats.confusion
(** The confusion of a detector, restricted to one arm or (without [arm])
    overall. *)

val scrubbing_gap_holds : result -> bool
(** The Section 4.3 demonstration, checked: the MOAS-list check has full
    recall on the baseline arm, zero recall on the scrubbed arm, and the
    community backend keeps full recall under scrubbing. *)

val render : result -> string
(** The per-arm precision/recall/F1 table plus alarm-reason and scrub
    totals, byte-identical for equal inputs at any job count. *)

val report :
  ?metrics:Obs.Registry.t ->
  ?seed:int64 ->
  ?smoke:bool ->
  ?jobs:int ->
  unit ->
  string
(** {!render} of {!evaluate}. *)
