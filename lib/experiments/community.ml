open Net
module Rng = Mutil.Rng
module Stats = Mutil.Stats
module Topo = Topology.Paper_topologies
module Scenario = Collect.Scenario
module Watch = Moas.Community_watch
module Cpolicy = Bgp.Community_policy

let default_seed = 0xC0DDEC5L

(* the watch baselines itself on the converged pre-attack network: after
   the second home (t=5) settles, before the partition (t=20), the flap
   cadence (from t=10, but flaps only move known origins) and the attack
   (t=30) *)
let warmup_until = 15.0

let detectors = [ "community"; "moas-list"; "moas-alarm"; "irr"; "s-bgp" ]

type scores = {
  sc_arm : Scenario.arm option;  (** [None] aggregates every arm *)
  sc_detector : string;
  sc_confusion : Stats.confusion;
}

type result = {
  r_runs : int;
  r_smoke : bool;
  r_seed : int64;
  r_scores : scores list;
  r_reasons : (Watch.reason * int) list;
  r_class_tally : (Cpolicy.usage_class * int) list;
  r_events : int;
  r_scrubbed_values : int;
}

(* ------------------------------------------------------------------ *)
(* One run of the grid                                                 *)

type run_spec = {
  rs_index : int;
  rs_arm : Scenario.arm;
  rs_topology : Topo.t;
  rs_seed : int64;
}

let grid ~smoke ~seed =
  (* memoised topologies forced before the pool fans out *)
  let topologies = if smoke then [ Topo.topology_25 () ] else Topo.all () in
  let replicates = if smoke then 2 else 3 in
  let root = Rng.create ~seed in
  let specs =
    List.concat_map
      (fun arm ->
        List.concat_map
          (fun topo -> List.init replicates (fun _ -> (arm, topo)))
          topologies)
      Scenario.all_arms
  in
  List.mapi
    (fun i (arm, topo) ->
      {
        rs_index = i;
        rs_arm = arm;
        rs_topology = topo;
        (* pre-split by index: stable no matter the job count *)
        rs_seed = Rng.bits64 (Rng.split_at root i);
      })
    specs

(* explicit-list evidence pooled across every monitor of a run: origins
   ever observed and every distinct explicit MOAS list — the cross-vantage
   union that is the paper's own multi-collector argument *)
type evidence = {
  mutable e_origins : Asn.Set.t;
  mutable e_lists : Asn.Set.t list;  (* sorted distinct *)
}

type verdicts = (string * bool) list  (* per detector, flagged or not *)

type run_result = {
  rr_cases : (Scenario.arm * bool * verdicts) list;
      (* one per scored prefix: (arm, truth, per-detector verdicts) *)
  rr_reasons : (Watch.reason * int) list;
  rr_class_tally : (Cpolicy.usage_class * int) list;
  rr_events : int;
  rr_metrics : Obs.Registry.t;
}

let feeds_of specs =
  List.fold_left
    (fun acc s -> Asn.Set.union acc s.Collect.Vantage.v_peers)
    Asn.Set.empty specs

let run_one spec =
  let arm = spec.rs_arm in
  let topo = spec.rs_topology in
  let metrics = Obs.Registry.create () in
  let d = Scenario.design topo in
  let scrubbers =
    if arm = Scenario.Scrubbed then d.Scenario.d_scrubbers else Asn.Set.empty
  in
  (* monitors: the collector-grade feed ASes, minus any AS that scrubs —
     an operator who deliberately discards community telemetry is not
     running a community-telemetry detector *)
  let feeds = feeds_of d.Scenario.d_specs in
  let monitors =
    let m = Asn.Set.diff feeds scrubbers in
    if Asn.Set.is_empty m then feeds else m
  in
  (* every arm runs the full usage model so community dynamics exist to
     observe; the scrubbed arm additionally forces the victim's neighbors
     to the scrubbing class *)
  let model =
    let base =
      Cpolicy.make ~seed:spec.rs_seed ~transit:topo.Topo.transit
        topo.Topo.graph
    in
    if arm = Scenario.Scrubbed then
      Cpolicy.force_class base scrubbers Cpolicy.Scrub
    else base
  in
  let evidence : (Prefix.t, evidence) Hashtbl.t = Hashtbl.create 8 in
  let evidence_for prefix =
    match Hashtbl.find_opt evidence prefix with
    | Some e -> e
    | None ->
      let e = { e_origins = Asn.Set.empty; e_lists = [] } in
      Hashtbl.add evidence prefix e;
      e
  in
  let watches = ref [] in
  let community_dets = ref [] in
  let moas_dets = ref [] in
  let validator_of asn =
    if not (Asn.Set.mem asn monitors) then None
    else begin
      let watch = Watch.create ~warmup_until ~metrics ~self:asn () in
      let community_det =
        Moas.Detector.create
          ~backend:(Moas.Detector.Community watch)
          ~check_self_consistency:false ~metrics ~self:asn ()
      in
      let moas_det =
        Moas.Detector.create ~backend:Moas.Detector.Detect_only ~metrics
          ~self:asn ()
      in
      watches := watch :: !watches;
      community_dets := community_det :: !community_dets;
      moas_dets := moas_det :: !moas_dets;
      let community_v = Moas.Detector.validator community_det in
      let moas_v = Moas.Detector.validator moas_det in
      Some
        (fun ~now ~prefix routes ->
          let e = evidence_for prefix in
          List.iter
            (fun r ->
              e.e_origins <-
                Asn.Set.add (Bgp.Route.origin_as ~self:asn r) e.e_origins;
              match Moas.Moas_list.decode r.Bgp.Route.communities with
              | None -> ()
              | Some list ->
                if
                  not (List.exists (Asn.Set.equal list) e.e_lists)
                then
                  e.e_lists <-
                    List.sort Asn.Set.compare (list :: e.e_lists))
            routes;
          let routes = moas_v ~now ~prefix routes in
          community_v ~now ~prefix routes)
    end
  in
  let config =
    Bgp.Network.Config.(
      default
      |> with_metrics metrics
      |> with_policy_of (Cpolicy.policy ~metrics model)
      |> with_validator_of validator_of)
  in
  let network = Bgp.Network.make ~config topo.Topo.graph in
  Scenario.originate_arm arm network d;
  let plan = Scenario.fault_plan arm topo d in
  if plan <> Faults.Fault_plan.empty then
    ignore
      (Faults.Injector.arm ~metrics
         ~rng:(Rng.create ~seed:spec.rs_seed)
         network plan);
  ignore (Bgp.Network.run network);
  (* ---- judge every detector on the three scored prefixes ---- *)
  let alarmed dets prefix =
    List.exists
      (fun det ->
        List.exists
          (fun a -> Prefix.equal a.Moas.Alarm.prefix prefix)
          (Moas.Detector.alarms det))
      dets
  in
  let registered_irr prefix =
    (* a stale registry: the second home's record is missing — recent
       multihoming that never made it into the IRR, the classic staleness
       failure of whois-grade databases *)
    if Prefix.equal prefix Scenario.attacked_prefix then
      Asn.Set.singleton d.Scenario.d_legit
    else if Prefix.equal prefix Scenario.multihomed_prefix then
      Asn.Set.singleton d.Scenario.d_home_a
    else Asn.Set.singleton d.Scenario.d_quiet
  in
  let authorized_sbgp prefix =
    (* address attestations as S-BGP would carry them: exactly the truth *)
    if Prefix.equal prefix Scenario.attacked_prefix then
      Asn.Set.singleton d.Scenario.d_legit
    else if Prefix.equal prefix Scenario.multihomed_prefix then
      Asn.Set.of_list [ d.Scenario.d_home_a; d.Scenario.d_home_b ]
    else Asn.Set.singleton d.Scenario.d_quiet
  in
  let verdicts_for prefix : verdicts =
    let e = evidence_for prefix in
    let moas_list_flags =
      (* evidence-grade list check: flags only on explicit lists — either
         two observed lists disagree, or an observed origin falls outside
         the advertised list.  With every list scrubbed away there is no
         evidence and the check is blind (Section 4.3). *)
      match e.e_lists with
      | [] -> false
      | [ l ] -> not (Asn.Set.subset e.e_origins l)
      | _ :: _ :: _ -> true
    in
    let outside authorized =
      not (Asn.Set.subset e.e_origins (authorized prefix))
    in
    [
      ("community", alarmed !community_dets prefix);
      ("moas-list", moas_list_flags);
      ("moas-alarm", alarmed !moas_dets prefix);
      ("irr", outside registered_irr);
      ("s-bgp", outside authorized_sbgp);
    ]
  in
  let cases =
    [
      (arm, arm <> Scenario.Fault_churn, verdicts_for Scenario.attacked_prefix);
      (arm, false, verdicts_for Scenario.multihomed_prefix);
      (arm, false, verdicts_for Scenario.quiet_prefix);
    ]
  in
  let reasons =
    List.fold_left
      (fun acc w ->
        List.map2
          (fun (r, n) (r', n') ->
            assert (r = r');
            (r, n + n'))
          acc (Watch.reason_counts w))
      (List.map (fun r -> (r, 0)) Watch.all_reasons)
      !watches
  in
  let events =
    List.fold_left (fun n w -> n + Watch.event_count w) 0 !watches
  in
  {
    rr_cases = cases;
    rr_reasons = reasons;
    rr_class_tally = Cpolicy.tally model;
    rr_events = events;
    rr_metrics = metrics;
  }

(* ------------------------------------------------------------------ *)
(* The sweep                                                           *)

let evaluate ?(metrics = Obs.Registry.noop) ?(seed = default_seed)
    ?(smoke = false) ?jobs () =
  let specs = Array.of_list (grid ~smoke ~seed) in
  let results = Exec.Pool.map ?jobs run_one specs in
  (* merge in run order, so reports are identical at any job count *)
  Array.iter
    (fun rr -> Obs.Registry.merge ~into:metrics rr.rr_metrics)
    results;
  let cases =
    Array.fold_left (fun acc rr -> acc @ rr.rr_cases) [] results
  in
  let confusion_of ~arm ~detector =
    List.fold_left
      (fun acc (case_arm, truth, verdicts) ->
        if arm <> None && arm <> Some case_arm then acc
        else
          Stats.confusion_add acc ~truth ~flagged:(List.assoc detector verdicts))
      Stats.no_confusion cases
  in
  let scores =
    List.concat_map
      (fun arm ->
        List.map
          (fun detector ->
            {
              sc_arm = arm;
              sc_detector = detector;
              sc_confusion = confusion_of ~arm ~detector;
            })
          detectors)
      (List.map (fun a -> Some a) Scenario.all_arms @ [ None ])
  in
  let reasons =
    Array.fold_left
      (fun acc rr ->
        List.map2
          (fun (r, n) (r', n') ->
            assert (r = r');
            (r, n + n'))
          acc rr.rr_reasons)
      (List.map (fun r -> (r, 0)) Watch.all_reasons)
      results
  in
  let class_tally =
    Array.fold_left
      (fun acc rr ->
        List.map2
          (fun (c, n) (c', n') ->
            assert (c = c');
            (c, n + n'))
          acc rr.rr_class_tally)
      (List.map (fun c -> (c, 0)) Cpolicy.all_classes)
      results
  in
  {
    r_runs = Array.length specs;
    r_smoke = smoke;
    r_seed = seed;
    r_scores = scores;
    r_reasons = reasons;
    r_class_tally = class_tally;
    r_events = Array.fold_left (fun n rr -> n + rr.rr_events) 0 results;
    r_scrubbed_values =
      (* summed from the per-run registries, which are always live, so the
         total survives a noop caller registry *)
      Array.fold_left
        (fun n rr ->
          n
          + Obs.Registry.sum_counters rr.rr_metrics
              "community_scrubbed_values")
        0 results;
  }

let score result ?arm detector =
  match
    List.find_opt
      (fun sc -> sc.sc_arm = arm && sc.sc_detector = detector)
      result.r_scores
  with
  | Some sc -> sc.sc_confusion
  | None -> Stats.no_confusion

let scrubbing_gap_holds result =
  let moas = score result ~arm:Scenario.Scrubbed "moas-list" in
  let community = score result ~arm:Scenario.Scrubbed "community" in
  let baseline_moas = score result ~arm:Scenario.Baseline "moas-list" in
  (* the §4.3 weakness, quantified: a list check that works on the
     baseline goes blind under scrubbing, the dynamics check does not *)
  Stats.recall baseline_moas = 1.0
  && Stats.recall moas = 0.0
  && Stats.recall community = 1.0

let arm_cell = function
  | Some arm -> Scenario.arm_to_string arm
  | None -> "overall"

let render result =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "== community-telemetry head-to-head (%s) ==\n"
       (if result.r_smoke then "smoke" else "full"));
  Buffer.add_string buf
    (Printf.sprintf
       "seed %Ld, %d runs (%d arms x %s x %d replicates), 3 prefixes scored \
        per run\n"
       result.r_seed result.r_runs
       (List.length Scenario.all_arms)
       (if result.r_smoke then "1 topology" else "3 topologies")
       (if result.r_smoke then 2 else 3));
  Buffer.add_string buf
    (Printf.sprintf
       "usage classes across runs: %s; %d watch observations, %d community \
        values scrubbed in transit\n\n"
       (String.concat ", "
          (List.map
             (fun (c, n) ->
               Printf.sprintf "%s %d" (Cpolicy.class_to_string c) n)
             result.r_class_tally))
       result.r_events result.r_scrubbed_values);
  let rows =
    List.map
      (fun sc ->
        let c = sc.sc_confusion in
        [
          arm_cell sc.sc_arm;
          sc.sc_detector;
          string_of_int c.Stats.tp;
          string_of_int c.Stats.fp;
          string_of_int c.Stats.tn;
          string_of_int c.Stats.fn;
          Mutil.Text_table.float_cell (Stats.precision c);
          Mutil.Text_table.float_cell (Stats.recall c);
          Mutil.Text_table.float_cell (Stats.f1 c);
        ])
      result.r_scores
  in
  Buffer.add_string buf
    (Mutil.Text_table.render
       ~header:
         [ "arm"; "detector"; "tp"; "fp"; "tn"; "fn"; "prec"; "recall"; "f1" ]
       rows);
  Buffer.add_string buf "\ncommunity alarm reasons: ";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (r, n) ->
            Printf.sprintf "%s %d" (Watch.reason_to_string r) n)
          result.r_reasons));
  Buffer.add_char buf '\n';
  let scrubbed_moas = score result ~arm:Scenario.Scrubbed "moas-list" in
  let scrubbed_community = score result ~arm:Scenario.Scrubbed "community" in
  Buffer.add_string buf
    (Printf.sprintf
       "scrubbed arm: moas-list recall %s vs community recall %s\n"
       (Mutil.Text_table.float_cell (Stats.recall scrubbed_moas))
       (Mutil.Text_table.float_cell (Stats.recall scrubbed_community)));
  Buffer.add_string buf
    (Printf.sprintf
       "scrubbing blinds the MOAS list while community dynamics still fire: \
        %s\n"
       (if scrubbing_gap_holds result then "confirmed" else "NOT confirmed"));
  Buffer.contents buf

let report ?metrics ?seed ?smoke ?jobs () =
  render (evaluate ?metrics ?seed ?smoke ?jobs ())
