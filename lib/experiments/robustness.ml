open Net
module Rng = Mutil.Rng
module Topo = Topology.Paper_topologies
module Plan = Faults.Fault_plan
module Injector = Faults.Injector

(* links are cut between the valid announcement (t=0) and the attack,
   after the first convergence — the adversarial ordering of the paper's
   Section 4.1 caveat.  The attack lands only once the withdrawal's path
   exploration has died out (ghost routes persist past t=100 on the 63-AS
   mesh), so the sweep probes the steady-state boundary the paper argues
   about, not a race between the bogus announcement and the teardown. *)
let cut_at = 25.0
let partition_attack_at = 150.0

let default_seed = 0x0FA0175L

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* ------------------------------------------------------------------ *)
(* Partition sweep: progressively sever the legitimate origin's peerings
   and watch detection hold until the last propagation path dies.        *)

type partition_point = {
  links_cut : int;
  runs : int;
  partitioned_runs : int;
  detected_reachable : int;
  detected_partitioned : int;
  mean_adopting : float;
}

let partition_study ?(seed = default_seed) ?(runs = 10) ?jobs ~topology () =
  let graph = topology.Topo.graph in
  let root = Rng.create ~seed in
  let prepared =
    Array.init runs (fun r ->
        let rng = Rng.split_at root r in
        let scenario =
          Attack.Scenario.random rng ~graph ~stub:topology.Topo.stub
            ~n_origins:1 ~n_attackers:1 ~deployment:Moas.Deployment.Full
        in
        let scenario =
          { scenario with Attack.Scenario.attack_at = partition_attack_at }
        in
        let origin = List.hd scenario.Attack.Scenario.legit_origins in
        let links =
          Asn.Set.elements (Topology.As_graph.neighbors graph origin)
        in
        (rng, scenario, origin, links))
  in
  let max_degree =
    Array.fold_left
      (fun acc (_, _, _, links) -> max acc (List.length links))
      0 prepared
  in
  List.init (max_degree + 1) (fun links_cut ->
      (* the prepared scenarios are immutable and each run's streams come
         from its own pre-split rng, so the runs of one sweep point are
         independent pool tasks *)
      let results =
        Exec.Pool.map ?jobs
          (fun (rng, scenario, origin, links) ->
            let degree = List.length links in
            let partitioned = links_cut >= degree in
            let plan =
              Plan.all
                (List.map
                   (fun n -> Plan.fail ~at:cut_at (Plan.link origin n))
                   (take links_cut links))
            in
            let prepare net =
              ignore (Injector.arm ~rng:(Rng.split_at rng 40) net plan)
            in
            let outcome = Attack.Scenario.run ~prepare rng scenario in
            ( partitioned,
              outcome.Attack.Scenario.detected,
              outcome.Attack.Scenario.fraction_adopting ))
          prepared
      in
      let count p =
        Array.fold_left (fun n r -> if p r then n + 1 else n) 0 results
      in
      {
        links_cut;
        runs;
        partitioned_runs = count (fun (p, _, _) -> p);
        detected_reachable = count (fun (p, d, _) -> (not p) && d);
        detected_partitioned = count (fun (p, d, _) -> p && d);
        mean_adopting =
          (* reverse-run-order list, as the former accumulation loop
             built it, so the mean sums in the same order *)
          mean (Array.fold_left (fun acc (_, _, f) -> f :: acc) [] results);
      })

let every_path_blocking_holds points =
  List.for_all
    (fun p ->
      p.detected_reachable = p.runs - p.partitioned_runs
      && p.detected_partitioned = 0)
    points

let render_partition points =
  let rows =
    List.map
      (fun p ->
        let reachable = p.runs - p.partitioned_runs in
        [
          string_of_int p.links_cut;
          string_of_int p.runs;
          string_of_int p.partitioned_runs;
          (if reachable = 0 then "-"
           else
             Mutil.Text_table.percent_cell ~decimals:0
               (float_of_int p.detected_reachable /. float_of_int reachable));
          (if p.partitioned_runs = 0 then "-"
           else
             Mutil.Text_table.percent_cell ~decimals:0
               (float_of_int p.detected_partitioned
               /. float_of_int p.partitioned_runs));
          Mutil.Text_table.percent_cell p.mean_adopting;
        ])
      points
  in
  Mutil.Text_table.render
    ~header:
      [
        "origin links cut";
        "runs";
        "partitioned";
        "detect (reachable)";
        "detect (partitioned)";
        "adopting";
      ]
    rows
  ^ (if every_path_blocking_holds points then
       "  every-path-blocking confirmed: detection held in every run with a \
        surviving path\n  and fired in none without one (Section 4.1).\n"
     else
       "  WARNING: detection did not match reachability - the every-path \
        claim is violated.\n")

(* ------------------------------------------------------------------ *)
(* Churn sweep: Poisson-like link churn across the whole mesh while the
   attack plays out, plus an attack-free control arm for false alarms.    *)

type churn_point = {
  rate : float;
  runs : int;
  detection_rate : float;
  mean_alarms : float;
  mean_false_alarms : float;
  mean_convergence : float;
  mean_updates : float;
  mean_session_downs : float;
  mean_messages_dropped : float;
  all_converged : bool;
}

let churn_window_start = 5.0
let churn_window_end = 120.0
let churn_mean_downtime = 15.0

let churn_study ?(seed = default_seed) ?(runs = 6) ?jobs
    ?(rates = [ 0.0; 0.02; 0.05; 0.1 ]) ~topology () =
  let graph = topology.Topo.graph in
  let edges = Plan.link_targets graph in
  let root = Rng.create ~seed in
  List.mapi
    (fun rate_index rate ->
      let stream = Rng.split_at root rate_index in
      (* each run's streams and metrics registry are task-local, so the
         per-rate runs are independent pool tasks *)
      let results =
        Exec.Pool.map ?jobs
          (fun r ->
            let rng = Rng.split_at stream r in
            let scenario =
              Attack.Scenario.random rng ~graph ~stub:topology.Topo.stub
                ~n_origins:1 ~n_attackers:2 ~deployment:Moas.Deployment.Full
            in
            let plan =
              if rate <= 0.0 then Plan.empty
              else
                Plan.churn ~start:churn_window_start ~rate
                  ~mean_downtime:churn_mean_downtime ~until:churn_window_end
                  edges
            in
            (* the same rng child in both arms => the identical fault
               trajectory, so the control arm isolates the attack's effect *)
            let prepare net =
              ignore (Injector.arm ~rng:(Rng.split_at rng 41) net plan)
            in
            let metrics = Obs.Registry.create () in
            let outcome = Attack.Scenario.run ~metrics ~prepare rng scenario in
            let quiet = { scenario with Attack.Scenario.attackers = [] } in
            let quiet_outcome = Attack.Scenario.run ~prepare rng quiet in
            ( outcome,
              quiet_outcome,
              Obs.Registry.counter_value metrics "net_sessions_down",
              Obs.Registry.sum_counters metrics "net_messages_dropped" ))
          (Array.init runs Fun.id)
      in
      let count p =
        Array.fold_left (fun n r -> if p r then n + 1 else n) 0 results
      in
      (* reverse-run-order lists, as the former accumulation loop built
         them, so every mean sums in the same order *)
      let floats f =
        Array.fold_left (fun acc r -> f r :: acc) [] results
      in
      {
        rate;
        runs;
        detection_rate =
          float_of_int (count (fun (o, _, _, _) -> o.Attack.Scenario.detected))
          /. float_of_int runs;
        mean_alarms =
          mean
            (floats (fun (o, _, _, _) ->
                 float_of_int o.Attack.Scenario.alarm_count));
        mean_false_alarms =
          mean
            (floats (fun (_, q, _, _) ->
                 float_of_int q.Attack.Scenario.alarm_count));
        mean_convergence =
          mean (floats (fun (o, _, _, _) -> o.Attack.Scenario.converged_at));
        mean_updates =
          mean
            (floats (fun (o, _, _, _) ->
                 float_of_int o.Attack.Scenario.updates_sent));
        mean_session_downs =
          mean (floats (fun (_, _, downs, _) -> float_of_int downs));
        mean_messages_dropped =
          mean (floats (fun (_, _, _, dropped) -> float_of_int dropped));
        all_converged =
          Array.for_all (fun (o, _, _, _) -> o.Attack.Scenario.converged)
            results;
      })
    rates

let render_churn points =
  let rows =
    List.map
      (fun p ->
        [
          Printf.sprintf "%.3f" p.rate;
          string_of_int p.runs;
          Mutil.Text_table.percent_cell ~decimals:0 p.detection_rate;
          Mutil.Text_table.float_cell p.mean_alarms;
          Mutil.Text_table.float_cell p.mean_false_alarms;
          Mutil.Text_table.float_cell p.mean_convergence;
          Mutil.Text_table.float_cell ~decimals:0 p.mean_updates;
          Mutil.Text_table.float_cell ~decimals:1 p.mean_session_downs;
          Mutil.Text_table.float_cell ~decimals:1 p.mean_messages_dropped;
          string_of_bool p.all_converged;
        ])
      points
  in
  Mutil.Text_table.render
    ~header:
      [
        "churn rate (/s)";
        "runs";
        "detection";
        "alarms";
        "false alarms";
        "converged at";
        "updates";
        "session downs";
        "msgs dropped";
        "ok";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Loss sweep: uniform probabilistic message loss on every link (no
   retransmission - the simulator models the channel, not TCP).          *)

type loss_point = {
  loss : float;
  runs : int;
  detection_rate : float;
  mean_adopting : float;
  mean_messages_dropped : float;
  mean_convergence : float;
  all_converged : bool;
}

let loss_study ?(seed = default_seed) ?(runs = 6) ?jobs
    ?(losses = [ 0.0; 0.05; 0.1; 0.2 ]) ~topology () =
  let graph = topology.Topo.graph in
  let edges = Topology.As_graph.edges graph in
  let root = Rng.create ~seed in
  List.mapi
    (fun loss_index loss ->
      let stream = Rng.split_at root loss_index in
      let results =
        Exec.Pool.map ?jobs
          (fun r ->
            let rng = Rng.split_at stream r in
            let scenario =
              Attack.Scenario.random rng ~graph ~stub:topology.Topo.stub
                ~n_origins:1 ~n_attackers:2 ~deployment:Moas.Deployment.Full
            in
            let plan =
              if loss <= 0.0 then Plan.empty
              else
                Plan.all
                  (List.map (fun (a, b) -> Plan.impair ~at:0.0 ~loss a b) edges)
            in
            let prepare net =
              ignore (Injector.arm ~rng:(Rng.split_at rng 42) net plan)
            in
            let metrics = Obs.Registry.create () in
            let outcome = Attack.Scenario.run ~metrics ~prepare rng scenario in
            ( outcome,
              Obs.Registry.sum_counters metrics "net_messages_dropped" ))
          (Array.init runs Fun.id)
      in
      let floats f =
        Array.fold_left (fun acc r -> f r :: acc) [] results
      in
      (* every run is an attacked run, so the detection rate is the
         recall of a confusion tallying (truth=true, flagged=detected) *)
      let c =
        Array.fold_left
          (fun c (o, _) ->
            Mutil.Stats.confusion_add c ~truth:true
              ~flagged:o.Attack.Scenario.detected)
          Mutil.Stats.no_confusion results
      in
      {
        loss;
        runs;
        detection_rate = Mutil.Stats.recall c;
        mean_adopting =
          mean (floats (fun (o, _) -> o.Attack.Scenario.fraction_adopting));
        mean_messages_dropped =
          mean (floats (fun (_, dropped) -> float_of_int dropped));
        mean_convergence =
          mean (floats (fun (o, _) -> o.Attack.Scenario.converged_at));
        all_converged =
          Array.for_all (fun (o, _) -> o.Attack.Scenario.converged) results;
      })
    losses

let render_loss points =
  let rows =
    List.map
      (fun p ->
        [
          Mutil.Text_table.percent_cell ~decimals:0 p.loss;
          string_of_int p.runs;
          Mutil.Text_table.percent_cell ~decimals:0 p.detection_rate;
          Mutil.Text_table.percent_cell p.mean_adopting;
          Mutil.Text_table.float_cell ~decimals:1 p.mean_messages_dropped;
          Mutil.Text_table.float_cell p.mean_convergence;
          string_of_bool p.all_converged;
        ])
      points
  in
  Mutil.Text_table.render
    ~header:
      [
        "msg loss";
        "runs";
        "detection";
        "adopting";
        "msgs dropped";
        "converged at";
        "ok";
      ]
    rows

(* ------------------------------------------------------------------ *)

let report ?(seed = default_seed) ?(smoke = false) ?jobs () =
  let buf = Buffer.create 4096 in
  let say fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let topologies = if smoke then [ Topo.topology_25 () ] else Topo.all () in
  let runs = if smoke then 4 else 10 in
  let churn_runs = if smoke then 3 else 6 in
  let rates = if smoke then [ 0.0; 0.05 ] else [ 0.0; 0.02; 0.05; 0.1 ] in
  let losses = if smoke then [ 0.0; 0.1 ] else [ 0.0; 0.05; 0.1; 0.2 ] in
  List.iter
    (fun topology ->
      say "== %s: partition sweep (origin links cut at t=%g, attack at t=%g) =="
        topology.Topo.name cut_at partition_attack_at;
      Buffer.add_string buf
        (render_partition (partition_study ~seed ~runs ?jobs ~topology ()));
      say "";
      say "== %s: link churn sweep (window %g-%g, mean downtime %g) =="
        topology.Topo.name churn_window_start churn_window_end
        churn_mean_downtime;
      Buffer.add_string buf
        (render_churn
           (churn_study ~seed ~runs:churn_runs ?jobs ~rates ~topology ()));
      say "";
      say "== %s: message-loss sweep (all links, no retransmission) =="
        topology.Topo.name;
      Buffer.add_string buf
        (render_loss
           (loss_study ~seed ~runs:churn_runs ?jobs ~losses ~topology ()));
      say "")
    topologies;
  Buffer.contents buf
