(** Deterministic parallel task execution on an OCaml 5 domain pool.

    {!map} distributes independent tasks over a fixed number of domains
    and returns the results {e in input order}, so a computation whose
    per-task randomness is pre-split (every sweep in {!Experiments}
    derives each run's stream from the run's index, never from execution
    order) produces byte-identical output at any job count.  That is the
    determinism contract: [map ~jobs:n f a = Array.map f a] for every
    [n >= 1], provided each [f a.(i)] neither reads mutable state written
    by another task nor mutates state read by one.

    Tasks therefore must build their own per-run state — simulation
    engine, network, metrics registry — inside the task body, and results
    (including per-task registries) are merged after the pool joins, in
    input order. *)

val default_jobs : unit -> int
(** The job count used when {!map} is not given one: the [MOAS_JOBS]
    environment variable if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f a] computes [Array.map f a] using up to [jobs] domains
    (including the calling one).  Tasks are claimed by index from a shared
    counter; each result lands in its input slot.  With [jobs <= 1] (or
    fewer than two tasks) no domain is spawned and the call is exactly
    [Array.map f a].

    If any task raises, the first exception observed is re-raised in the
    caller after every domain has joined; remaining unclaimed tasks are
    abandoned. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** List convenience wrapper around {!map}; same contract. *)
