let default_jobs () =
  match Sys.getenv_opt "MOAS_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* Work stealing by index from a shared atomic counter: assignment order
   varies between runs, but every result is written to its input slot and
   the caller only reads after all domains have joined, so the returned
   array is independent of scheduling.  The [results] array is only ever
   written at distinct indices (each index is claimed exactly once) and
   the domain join provides the happens-before edge for the final reads. *)
let map ?jobs f arr =
  let n = Array.length arr in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let jobs = min jobs n in
  if n = 0 || jobs <= 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failure = None then begin
          (match f arr.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            (* keep the first failure; later ones are abandoned with the
               remaining tasks *)
            ignore (Atomic.compare_and_set failure None (Some (e, bt))));
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.map
        (function
          | Some v -> v
          | None -> assert false (* every index < n was claimed *))
        results
  end

let map_list ?jobs f l = Array.to_list (map ?jobs f (Array.of_list l))
