(** The collector mesh: N per-vantage monitors plus a merged global view,
    processed concurrently on the {!Exec.Pool} domain pool.

    Determinism contract: the result is a pure function of the multiset of
    [(vantage, event stream)] inputs — independent of the order the
    vantages are listed in, of the job count, and of scheduling.  Vantages
    are canonicalised by name, the global view is the canonically-ordered
    deduplicated union of the per-vantage streams ({!merge_streams}), and
    every monitor task builds its own state.  The rendered merged report is
    therefore byte-identical at any [--jobs] setting and for any vantage
    ordering, which CI asserts. *)

type tagged = { tag : string; event : Stream.Monitor.event }
(** A global-view element, tagged with the (name-order) first vantage that
    observed it. *)

val compare_event : Stream.Monitor.event -> Stream.Monitor.event -> int
(** The canonical global-stream order: time, then prefix, withdrawals
    before announcements, then origin, advertised list and peer.  Two
    events equal under this order are duplicates (the same routing event
    observed at several vantages). *)

val merge_streams :
  (string * Stream.Monitor.event array) list -> tagged array * int
(** The deduplicated union of the per-vantage streams in canonical order,
    each event tagged with its first observer, plus the number of
    duplicate observations collapsed. *)

type result = {
  r_vantages : string list;  (** vantage names, sorted *)
  r_per_vantage : (string * Stream.Monitor.snapshot) list;
      (** per-vantage monitor snapshots, sorted by name *)
  r_merged : Stream.Monitor.snapshot;
      (** the monitor over the deduplicated union stream *)
  r_merged_events : int;  (** events in the global view *)
  r_duplicates : int;  (** duplicate observations collapsed at the merge *)
}

val run :
  ?metrics:Obs.Registry.t ->
  ?jobs:int ->
  ?settle:int ->
  Stream.Monitor.config ->
  (string * Stream.Monitor.event array) list ->
  result
(** Run every per-vantage monitor and the merged monitor as one task each
    on the pool ([jobs] defaults to {!Exec.Pool.default_jobs}).  Each
    monitor ingests its stream, settling at every time step (so a
    conflict is MOAS-list-validated while open even when a later event
    closes it) and finally at [settle] (default: the largest event time
    across all vantages), so validation and alert windows line up across
    the mesh.  Per-task registries are merged
    into [metrics] in task order; duplicates collapsed at the merge stage
    are counted there as [stream_merge_duplicates] (registered lazily,
    only when at least one was collapsed).
    @raise Invalid_argument on an empty vantage list or duplicate vantage
    names. *)
