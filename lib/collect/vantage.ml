open Net
module M = Stream.Monitor

type spec = { v_name : string; v_peers : Asn.Set.t }

let spec ~name peers =
  if String.length name = 0 then invalid_arg "Vantage.spec: empty name";
  if peers = [] then invalid_arg "Vantage.spec: empty peer list";
  { v_name = name; v_peers = Asn.Set.of_list peers }

(* Session-view tables are keyed by packed ints rather than tuples:
   {!Prefix.to_key} is 38 bits and ASNs 16, so both composites fit an
   OCaml int and lookups hash an immediate instead of allocating and
   structurally hashing a tuple on every tap callback. *)
let last_key src prefix = (Asn.to_int src lsl 38) lor Prefix.to_key prefix
let po_key prefix origin = (Prefix.to_key prefix lsl 16) lor Asn.to_int origin

type t = {
  name : string;
  peers : Asn.Set.t;
  (* last (origin, advertised list) exported per (feed AS, prefix): the
     collector-session view that dedups the per-destination fan-out *)
  last : (int, Asn.t * Asn.Set.t option) Hashtbl.t;
  (* feeds currently announcing each (prefix, origin): the vantage emits
     origin-level transitions, so one feed re-routing away from an origin
     other feeds still carry retracts nothing — exactly the refcounted
     view a collector has of its peer set *)
  live : (int, int) Hashtbl.t;
  (* MOAS list last emitted per announced (prefix, origin) *)
  adv : (int, Asn.Set.t option) Hashtbl.t;
  mutable evs : M.event array; (* capture order; first [count] are live *)
  mutable count : int;
}

let name t = t.name
let peers t = t.peers
let event_count t = t.count
let events t = Array.sub t.evs 0 t.count
let streams vs = List.map (fun v -> (v.name, events v)) vs

let millis time = int_of_float (Float.round (time *. 1000.0))

(* registered lazily so a run that drops nothing exports no sample *)
let bump ?labels metrics name =
  Obs.Registry.Counter.incr (Obs.Registry.counter metrics ?labels name)

let push v ev =
  if v.count >= Array.length v.evs then begin
    let cap = max 64 (2 * Array.length v.evs) in
    let grown = Array.make cap ev in
    Array.blit v.evs 0 grown 0 v.count;
    v.evs <- grown
  end;
  v.evs.(v.count) <- ev;
  v.count <- v.count + 1

let record metrics v ~time ~src (update : Bgp.Update.t) =
  let time = millis time in
  let note () =
    if not (Obs.Registry.is_noop metrics) then
      bump metrics ~labels:[ ("vantage", v.name) ] "collect_events_total"
  in
  let emit action prefix =
    push v { M.time; peer = src; prefix; action };
    note ()
  in
  (* one feed stops carrying [origin]: retract only when it was the last *)
  let drop prefix origin =
    let key = po_key prefix origin in
    match Hashtbl.find_opt v.live key with
    | Some 1 ->
      Hashtbl.remove v.live key;
      Hashtbl.remove v.adv key;
      emit (M.Withdraw { origin }) prefix
    | Some n -> Hashtbl.replace v.live key (n - 1)
    | None -> ()
  in
  (* one feed starts (or keeps) carrying [origin] with [moas_list] *)
  let raise_origin prefix origin moas_list =
    let key = po_key prefix origin in
    match Hashtbl.find_opt v.live key with
    | None ->
      Hashtbl.replace v.live key 1;
      Hashtbl.replace v.adv key moas_list;
      emit (M.Announce { origin; moas_list }) prefix
    | Some n ->
      Hashtbl.replace v.live key (n + 1);
      if not (Option.equal Asn.Set.equal (Hashtbl.find v.adv key) moas_list)
      then begin
        Hashtbl.replace v.adv key moas_list;
        emit (M.Announce { origin; moas_list }) prefix
      end
  in
  match update.Bgp.Update.payload with
  | Bgp.Update.Announce route ->
    let prefix = route.Bgp.Route.prefix in
    let origin = Bgp.Route.origin_as ~self:src route in
    let moas_list = Moas.Moas_list.decode route.Bgp.Route.communities in
    let key = last_key src prefix in
    (match Hashtbl.find_opt v.last key with
    | Some (prev, prev_list) when Asn.equal prev origin ->
      (* same origin re-exported: a new event only if the list changed *)
      if not (Option.equal Asn.Set.equal prev_list moas_list) then begin
        Hashtbl.replace v.last key (origin, moas_list);
        let lk = po_key prefix origin in
        if not
             (Option.equal (Option.equal Asn.Set.equal)
                (Hashtbl.find_opt v.adv lk) (Some moas_list))
        then begin
          Hashtbl.replace v.adv lk moas_list;
          emit (M.Announce { origin; moas_list }) prefix
        end
      end
    | Some (prev, _) ->
      (* the feed switched its best route to another origin *)
      Hashtbl.replace v.last key (origin, moas_list);
      drop prefix prev;
      raise_origin prefix origin moas_list
    | None ->
      Hashtbl.add v.last key (origin, moas_list);
      raise_origin prefix origin moas_list)
  | Bgp.Update.Withdraw prefix -> (
    let key = last_key src prefix in
    match Hashtbl.find_opt v.last key with
    | Some (prev, _) ->
      Hashtbl.remove v.last key;
      drop prefix prev
    | None -> () (* a withdrawal for a route this session never carried *))

let attach ?(metrics = Obs.Registry.noop) network specs =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if Hashtbl.mem seen s.v_name then
        invalid_arg ("Vantage.attach: duplicate vantage " ^ s.v_name);
      Hashtbl.add seen s.v_name ();
      Asn.Set.iter
        (fun a ->
          if not (Topology.As_graph.mem_node (Bgp.Network.graph network) a) then
            invalid_arg
              (Printf.sprintf "Vantage.attach: %s is not in the topology"
                 (Asn.to_string a)))
        s.v_peers)
    specs;
  let vantages =
    List.map
      (fun s ->
        {
          name = s.v_name;
          peers = s.v_peers;
          last = Hashtbl.create 64;
          live = Hashtbl.create 64;
          adv = Hashtbl.create 64;
          evs = [||];
          count = 0;
        })
      specs
  in
  (* peer AS -> interested vantages, precomputed so the tap is O(listeners) *)
  let by_peer = Hashtbl.create 16 in
  List.iter
    (fun v ->
      Asn.Set.iter
        (fun a ->
          Hashtbl.replace by_peer a
            (match Hashtbl.find_opt by_peer a with
            | Some vs -> vs @ [ v ]
            | None -> [ v ]))
        v.peers)
    vantages;
  Bgp.Network.set_update_tap network
    (Some
       (fun ~time ~src ~dst:_ update ->
         match Hashtbl.find_opt by_peer src with
         | Some vs -> List.iter (fun v -> record metrics v ~time ~src update) vs
         | None ->
           if not (Obs.Registry.is_noop metrics) then
             bump metrics "collect_updates_dropped"));
  vantages

(* ------------------------------------------------------------------ *)
(* Archive replay splitting *)

let replay ?(coverage = 1.0) ~vantages ~seed batches =
  if vantages < 1 then invalid_arg "Vantage.replay: need at least one vantage";
  if coverage < 0.0 || coverage > 1.0 then
    invalid_arg "Vantage.replay: coverage out of [0,1]";
  let rng = Mutil.Rng.create ~seed in
  let accs = Array.make vantages [] in
  Array.iter
    (fun (b : Stream.Source.batch) ->
      Array.iter
        (fun (ev : M.event) ->
          (* the forced vantage guarantees losslessness of the union *)
          let forced =
            (Prefix.hash ev.M.prefix + Asn.to_int ev.M.peer + ev.M.time)
            land max_int mod vantages
          in
          for i = 0 to vantages - 1 do
            (* one draw per (event, vantage), in a fixed order: the split is
               a pure function of the seed *)
            let drawn = coverage >= 1.0 || Mutil.Rng.chance rng coverage in
            if drawn || i = forced then accs.(i) <- ev :: accs.(i)
          done)
        b.Stream.Source.events)
    batches;
  List.init vantages (fun i ->
      (Printf.sprintf "rv%02d" i, Array.of_list (List.rev accs.(i))))
