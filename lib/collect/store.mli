(** Persistent, queryable store of correlated MOAS episodes.

    The store indexes {!Correlator.entry} records in a {!Net.Prefix_trie},
    so prefix queries (exact or covered/more-specific, the sub-prefix
    hijack shape of paper §4.3) are trie walks rather than scans, and
    keeps the vantage roster so visibility renders as [k/N].

    On disk it uses the same defensive binary idiom as
    {!Stream.Checkpoint}: magic ["MOASSTOR"], a version octet, big-endian
    fixed-width fields, and a decoder that rejects truncation, trailing
    octets, bad tags and version mismatches with {!Corrupt}. *)

type t
(** An immutable episode store. *)

exception Corrupt of string
(** Raised by {!decode} on malformed input. *)

val empty : vantages:string list -> t
(** An empty store over a vantage roster (names are sorted and deduped). *)

val add : Correlator.entry -> t -> t
(** Index one correlated episode.  An entry equal to one already stored
    (same prefix, sequence and start) replaces it. *)

val of_correlation : Correlator.t -> t
(** Index every entry of a correlation result. *)

val vantages : t -> string list
val count : t -> int

val entries : t -> Correlator.entry list
(** All entries in canonical order: trie (network, length) order, then
    (start time, sequence) within a prefix. *)

(** {2 Queries} *)

type query = Query.t
(** The unified typed query ({!Collect.Query}) — the same value the CLI
    [--query] flag parses and the [Serve.Proto] wire protocol carries.
    Build one with the {!Query} combinators. *)

val query_all : query
(** {!Query.empty}, kept for callers of the pre-[Query] API. *)

val query : t -> query -> Correlator.entry list
(** Matching entries, in canonical order.  The prefix clause is a trie
    lookup ({!Query.wants_covered} uses {!Prefix_trie.covered}); the
    other clauses filter via {!Query.matches}.  Open episodes extend to
    the end of time for the range test. *)

val parse_query : string -> (query, string) result
(** Thin wrapper over {!Query.parse}, kept for callers of the
    pre-[Query] stringly API. *)

(** {2 Persistence} *)

val encode : t -> bytes
val decode : bytes -> t
(** @raise Corrupt on bad magic, version mismatch, truncation, trailing
    octets or invalid field values. *)

val write_file : string -> t -> unit
val read_file : string -> t

(** {2 Report} *)

val render : t -> string
(** Deterministic text listing: roster, entry count, and one line per
    entry with visibility [k/N]. *)
