open Net
module Report = Stream.Report

type entry = {
  x_prefix : Prefix.t;
  x_seq : int;
  x_started : int;
  x_ended : int option;
  x_days : int;
  x_max_origins : int;
  x_origins : Asn.Set.t;
  x_clean : bool;
  x_seen_by : string list;
  x_first_detect : int option;
  x_last_detect : int option;
}

type t = { c_vantages : string list; c_entries : entry list }

let visibility e = List.length e.x_seen_by

let overlaps ~started ~ended (v : Report.episode_view) =
  (* open intervals extend to the end of time *)
  let hi = Option.value ended ~default:max_int in
  let v_hi = Option.value v.Report.v_ended ~default:max_int in
  v.Report.v_started <= hi && started <= v_hi

let correlate ~vantages ~merged =
  let vantages =
    List.sort (fun (a, _) (b, _) -> String.compare a b) vantages
  in
  let views =
    List.map (fun (name, snap) -> (name, Report.episodes snap)) vantages
  in
  let entries =
    List.map
      (fun (m : Report.episode_view) ->
        let sightings =
          List.filter_map
            (fun (name, eps) ->
              let matching =
                List.filter
                  (fun (v : Report.episode_view) ->
                    Prefix.compare v.Report.v_prefix m.Report.v_prefix = 0
                    && overlaps ~started:m.Report.v_started
                         ~ended:m.Report.v_ended v)
                  eps
              in
              match matching with
              | [] -> None
              | _ ->
                let first =
                  List.fold_left
                    (fun acc (v : Report.episode_view) ->
                      min acc v.Report.v_started)
                    max_int matching
                in
                Some (name, first))
            views
        in
        let detects = List.map snd sightings in
        {
          x_prefix = m.Report.v_prefix;
          x_seq = m.Report.v_seq;
          x_started = m.Report.v_started;
          x_ended = m.Report.v_ended;
          x_days = m.Report.v_days;
          x_max_origins = m.Report.v_max_origins;
          x_origins = m.Report.v_origins;
          x_clean = m.Report.v_clean;
          x_seen_by = List.map fst sightings;
          x_first_detect =
            (match detects with
            | [] -> None
            | _ -> Some (List.fold_left min max_int detects));
          x_last_detect =
            (match detects with
            | [] -> None
            | _ -> Some (List.fold_left max min_int detects));
        })
      (Report.episodes merged)
  in
  { c_vantages = List.map fst vantages; c_entries = entries }

let of_result (r : Mesh.result) =
  correlate ~vantages:r.Mesh.r_per_vantage ~merged:r.Mesh.r_merged

(* ------------------------------------------------------------------ *)
(* Binary codec for one entry, shared by the MOASSTOR store format and
   the MOASSERV wire protocol (Net.Codec discipline). *)

let write_entry buf e =
  Codec.put_prefix buf e.x_prefix;
  Codec.put_i63 buf e.x_seq;
  Codec.put_i63 buf e.x_started;
  Codec.put_option buf Codec.put_i63 e.x_ended;
  Codec.put_i63 buf e.x_days;
  Codec.put_u32 buf e.x_max_origins;
  Codec.put_asn_set buf e.x_origins;
  Codec.put_bool buf e.x_clean;
  Codec.put_list buf Codec.put_string e.x_seen_by;
  Codec.put_option buf Codec.put_i63 e.x_first_detect;
  Codec.put_option buf Codec.put_i63 e.x_last_detect

let read_entry c =
  let x_prefix = Codec.take_prefix c in
  let x_seq = Codec.take_i63 c in
  let x_started = Codec.take_i63 c in
  let x_ended = Codec.take_option c Codec.take_i63 in
  let x_days = Codec.take_i63 c in
  let x_max_origins = Codec.take_u32 c in
  let x_origins = Codec.take_asn_set c in
  let x_clean = Codec.take_bool c in
  let x_seen_by = Codec.take_list c Codec.take_string in
  let x_first_detect = Codec.take_option c Codec.take_i63 in
  let x_last_detect = Codec.take_option c Codec.take_i63 in
  {
    x_prefix;
    x_seq;
    x_started;
    x_ended;
    x_days;
    x_max_origins;
    x_origins;
    x_clean;
    x_seen_by;
    x_first_detect;
    x_last_detect;
  }

let render_entry ~vantage_count e =
  let origins =
    Asn.Set.elements e.x_origins |> List.map Asn.to_string |> String.concat ","
  in
  let ended =
    match e.x_ended with Some v -> string_of_int v | None -> "open"
  in
  Printf.sprintf "%s#%d [%d..%s] origins={%s} %s visibility=%d/%d"
    (Prefix.to_string e.x_prefix)
    e.x_seq e.x_started ended origins
    (if e.x_clean then "clean" else "FLAGGED")
    (visibility e) vantage_count

let render t =
  let buf = Buffer.create 1024 in
  let n = List.length t.c_vantages in
  Buffer.add_string buf "=== Cross-vantage correlation ===\n";
  Buffer.add_string buf
    (Printf.sprintf "vantages: %d (%s)\n" n (String.concat " " t.c_vantages));
  Buffer.add_string buf
    (Printf.sprintf "merged episodes: %d\n" (List.length t.c_entries));
  List.iter
    (fun e ->
      let origins =
        Asn.Set.elements e.x_origins |> List.map Asn.to_string
        |> String.concat ","
      in
      let ended =
        match e.x_ended with Some v -> string_of_int v | None -> "open"
      in
      let spread =
        match (e.x_first_detect, e.x_last_detect) with
        | Some f, Some l -> Printf.sprintf "first=%d last=%d" f l
        | _ -> "cross-vantage only"
      in
      Buffer.add_string buf
        (Printf.sprintf
           "%s#%d [%d..%s] origins={%s} %s visibility=%d/%d seen-by=[%s] %s\n"
           (Prefix.to_string e.x_prefix)
           e.x_seq e.x_started ended origins
           (if e.x_clean then "clean" else "FLAGGED")
           (visibility e) n
           (String.concat " " e.x_seen_by)
           spread))
    t.c_entries;
  let full, partial, cross_only =
    List.fold_left
      (fun (f, p, c) e ->
        let k = visibility e in
        if k = n then (f + 1, p, c)
        else if k = 0 then (f, p, c + 1)
        else (f, p + 1, c))
      (0, 0, 0) t.c_entries
  in
  let flagged =
    List.length (List.filter (fun e -> not e.x_clean) t.c_entries)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "visibility: full=%d partial=%d cross-vantage-only=%d\nflagged: %d\n"
       full partial cross_only flagged);
  Buffer.contents buf
