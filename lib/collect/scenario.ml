open Net
module Topo = Topology.Paper_topologies
module Graph = Topology.As_graph
module Plan = Faults.Fault_plan

let cut_at = 20.0
let attack_at = 30.0
let second_home_at = 5.0

(* degree-ranked transit feeds: the best-connected ASes see the most
   paths, which is how RouteViews collectors pick their peers *)
let ranked_feeds (topo : Topo.t) =
  Asn.Set.elements topo.Topo.transit
  |> List.sort (fun a b ->
         let c =
           compare (Graph.degree topo.Topo.graph b)
             (Graph.degree topo.Topo.graph a)
         in
         if c <> 0 then c else Asn.compare a b)

let design_vantages ?(count = 3) (topo : Topo.t) =
  if count < 1 then invalid_arg "Scenario.design_vantages: count < 1";
  let feeds = Array.of_list (ranked_feeds topo) in
  let m = Array.length feeds in
  if m = 0 then invalid_arg "Scenario.design_vantages: no transit AS";
  List.init count (fun i ->
      let a = feeds.(i mod m) and b = feeds.((i + 1) mod m) in
      let peers = if Asn.equal a b then [ a ] else [ a; b ] in
      Vantage.spec ~name:(Printf.sprintf "vp%02d" i) peers)

let attacked_prefix = Prefix.of_string "192.0.2.0/24"
let multihomed_prefix = Prefix.of_string "198.51.100.0/24"
let quiet_prefix = Prefix.of_string "203.0.113.0/24"

(* actors are picked identically in both arms: stubs outside the feed set
   and (so the partition cannot strand them) outside the neighborhood of
   the first vantage's feeds.  The legitimate origin and the attacker are
   placed next to two different unpartitioned feeds, so those feeds
   disagree on the best-route origin — the conflict is visible at a
   collector by construction, and survives isolating the first vantage. *)
let pick_actors (topo : Topo.t) specs =
  let graph = topo.Topo.graph in
  let feed_set =
    List.fold_left
      (fun acc s -> Asn.Set.union acc s.Vantage.v_peers)
      Asn.Set.empty specs
  in
  let isolated_zone =
    match specs with
    | first :: _ ->
      Asn.Set.fold
        (fun feed acc -> Asn.Set.union acc (Graph.neighbors graph feed))
        first.Vantage.v_peers first.Vantage.v_peers
    | [] -> Asn.Set.empty
  in
  let pool =
    match
      Asn.Set.elements
        (Asn.Set.diff topo.Topo.stub (Asn.Set.union feed_set isolated_zone))
    with
    | _ :: _ :: _ :: _ :: _ :: _ as enough -> enough
    | _ ->
      (* small topology: only keep the feeds themselves excluded *)
      Asn.Set.elements (Asn.Set.diff topo.Topo.stub feed_set)
  in
  let adjacent feed asn = Asn.Set.mem feed (Graph.neighbors graph asn) in
  (* the two lowest-ranked feeds that survive the partition: the attacker
     sits next to one, the legitimate origin next to the other *)
  let attack_feed, legit_feed =
    let iso =
      match specs with
      | first :: _ -> first.Vantage.v_peers
      | [] -> Asn.Set.empty
    in
    let unpartitioned =
      List.filter
        (fun f -> Asn.Set.mem f feed_set && not (Asn.Set.mem f iso))
        (ranked_feeds topo)
    in
    match List.rev unpartitioned with
    | a :: b :: _ -> (a, b)
    | [ a ] -> (a, a)
    | [] -> (
      match List.rev (ranked_feeds topo) with
      | a :: b :: _ -> (a, b)
      | _ -> invalid_arg "Scenario.capture: topology has too few transit ASes")
  in
  let take_first preds pool =
    let rec pick = function
      | p :: rest -> (
        match List.find_opt p pool with Some x -> Some x | None -> pick rest)
      | [] -> None
    in
    match pick preds with
    | Some x -> (x, List.filter (fun y -> not (Asn.equal x y)) pool)
    | None -> (
      match pool with
      | x :: rest -> (x, rest)
      | [] -> invalid_arg "Scenario.capture: topology has too few stub ASes")
  in
  let attacker, pool =
    take_first
      [
        (fun a -> adjacent attack_feed a && not (adjacent legit_feed a));
        adjacent attack_feed;
      ]
      pool
  in
  let legit, pool =
    take_first
      [
        (fun a -> adjacent legit_feed a && not (adjacent attack_feed a));
        adjacent legit_feed;
      ]
      pool
  in
  (* the legitimate multihomed prefix is originated by the two target
     feeds themselves — the paper's "multi-homing without BGP" case where
     both providers announce the customer prefix — so each home is its own
     best route and the collectors see disagreeing origins by construction *)
  match pool with
  | quiet :: _ -> (legit, attacker, legit_feed, attack_feed, quiet)
  | _ -> invalid_arg "Scenario.capture: topology has too few stub ASes"

type arm = Baseline | Partitioned | Fault_churn | Scrubbed

let arm_to_string = function
  | Baseline -> "baseline"
  | Partitioned -> "partitioned"
  | Fault_churn -> "fault-churn"
  | Scrubbed -> "scrubbed"

let arm_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "baseline" -> Ok Baseline
  | "partitioned" -> Ok Partitioned
  | "fault-churn" | "fault_churn" -> Ok Fault_churn
  | "scrubbed" -> Ok Scrubbed
  | other -> Error (Printf.sprintf "unknown scenario arm %S" other)

(* [Scrubbed] is appended last so the run indices (and therefore the
   pre-split per-run random streams) of the three original arms never
   move — existing corpus captures stay byte-identical *)
let all_arms = [ Baseline; Partitioned; Fault_churn; Scrubbed ]

(* fault-churn flap cadence: outages while the attack-free capture is
   still interesting, several full cycles before quiescence *)
let flap_start = 10.0
let flap_period = 8.0
let flap_down_for = 3.0
let flap_until = 40.0

type design = {
  d_specs : Vantage.spec list;
  d_legit : Asn.t;
  d_attacker : Asn.t;
  d_home_a : Asn.t;
  d_home_b : Asn.t;
  d_quiet : Asn.t;
  d_scrubbers : Asn.Set.t;
}

let design ?(vantages = 3) (topo : Topo.t) =
  let specs = design_vantages ~count:vantages topo in
  let legit, attacker, home_a, home_b, quiet = pick_actors topo specs in
  {
    d_specs = specs;
    d_legit = legit;
    d_attacker = attacker;
    d_home_a = home_a;
    d_home_b = home_b;
    d_quiet = quiet;
    (* the Scrubbed arm's scrub set: every neighbor of the victim.  This
       is the minimal cut that erases the victim's MOAS list everywhere —
       each of its paths starts with one of these hops — while the
       attacker's side of the topology keeps its community hygiene, the
       asymmetry of Section 4.3: the defender depends on its providers'
       behaviour, the attacker chooses its own *)
    d_scrubbers = Graph.neighbors topo.Topo.graph legit;
  }

(* the invalid-origin conflict: the victim advertises its singleton MOAS
   list, the attacker none — the §4.2 detectable case.  The fault-churn
   arm has no attacker: its MOAS conflicts are all operational.  The
   legitimate multihomed MOAS advertises the agreed list in every arm
   except fault-churn, where the homes multihome {e without} lists — the
   paper's unregistered-but-legitimate case, the one the MOAS-list check
   false-alarms on. *)
let originate_arm arm network d =
  Bgp.Network.originate ~at:0.0
    ~communities:(Moas.Moas_list.encode (Asn.Set.singleton d.d_legit))
    network d.d_legit attacked_prefix;
  if arm <> Fault_churn then
    Bgp.Network.originate ~at:attack_at network d.d_attacker attacked_prefix;
  let homes = Asn.Set.of_list [ d.d_home_a; d.d_home_b ] in
  let home_communities =
    if arm = Fault_churn then None else Some (Moas.Moas_list.encode homes)
  in
  Bgp.Network.originate ~at:0.0 ?communities:home_communities network
    d.d_home_a multihomed_prefix;
  Bgp.Network.originate ~at:second_home_at ?communities:home_communities
    network d.d_home_b multihomed_prefix;
  (* the control prefix: one origin, no conflict, no list *)
  Bgp.Network.originate ~at:0.0 network d.d_quiet quiet_prefix

let fault_plan arm (topo : Topo.t) d =
  match arm with
  | Baseline | Scrubbed -> Plan.empty
  | Partitioned -> (
    match d.d_specs with
    | [] -> Plan.empty
    | first :: _ ->
      (* sever every peering of the first vantage's feeds after the
         valid routes converge, before the attack lands *)
      Asn.Set.fold
        (fun feed acc ->
          Asn.Set.fold
            (fun peer acc ->
              Plan.union acc (Plan.fail ~at:cut_at (Plan.link feed peer)))
            (Graph.neighbors topo.Topo.graph feed)
            acc)
        first.Vantage.v_peers Plan.empty)
  | Fault_churn ->
    (* periodically flap every peering of the second home: during each
       outage the rest of the mesh loses its origin, so the multihomed
       episode closes and reopens — recurrence and churn with no
       attacker anywhere *)
    Asn.Set.fold
      (fun peer acc ->
        Plan.union acc
          (Plan.flap ~start:flap_start ~period:flap_period
             ~down_for:flap_down_for ~until:flap_until
             (Plan.link d.d_home_b peer)))
      (Graph.neighbors topo.Topo.graph d.d_home_b)
      Plan.empty

(* the Scrubbed arm runs the full per-AS community usage model with the
   victim's neighbors forced to the scrubbing class; every other arm keeps
   the default (community-transparent) policies *)
let arm_policy_of ?(metrics = Obs.Registry.noop) arm ~seed (topo : Topo.t) d =
  match arm with
  | Baseline | Partitioned | Fault_churn -> None
  | Scrubbed ->
    let model =
      Bgp.Community_policy.force_class
        (Bgp.Community_policy.make ~seed ~transit:topo.Topo.transit
           topo.Topo.graph)
        d.d_scrubbers Bgp.Community_policy.Scrub
    in
    Some (Bgp.Community_policy.policy ~metrics model)

type t = {
  s_topology : string;
  s_arm : arm;
  s_specs : Vantage.spec list;
  s_streams : (string * Stream.Monitor.event array) list;
  s_end_time : int;
  s_attacked : Prefix.t;
  s_multihomed : Prefix.t;
  s_quiet : Prefix.t;
  s_legit : Asn.t;
  s_attacker : Asn.t;
  s_homes : Asn.Set.t;
  s_quiet_origin : Asn.t;
  s_isolated : string option;
  s_scrubbers : Asn.Set.t;
  s_faults_injected : int;
}

let capture ?(metrics = Obs.Registry.noop) ?(arm = Baseline) ~seed ~vantages
    (topo : Topo.t) =
  let d = design ~vantages topo in
  let config =
    let base = Bgp.Network.Config.(default |> with_metrics metrics) in
    match arm_policy_of ~metrics arm ~seed topo d with
    | None -> base
    | Some policy_of -> Bgp.Network.Config.with_policy_of policy_of base
  in
  let network = Bgp.Network.make ~config topo.Topo.graph in
  let recorders = Vantage.attach ~metrics network d.d_specs in
  originate_arm arm network d;
  let plan = fault_plan arm topo d in
  let isolated =
    match (arm, d.d_specs) with
    | Partitioned, first :: _ -> Some first.Vantage.v_name
    | _ -> None
  in
  let injector =
    if plan = Plan.empty then None
    else
      let rng = Mutil.Rng.create ~seed in
      Some (Faults.Injector.arm ~metrics ~rng network plan)
  in
  ignore (Bgp.Network.run network);
  {
    s_topology = topo.Topo.name;
    s_arm = arm;
    s_specs = d.d_specs;
    s_streams = Vantage.streams recorders;
    s_end_time = Vantage.millis (Sim.Engine.now (Bgp.Network.engine network));
    s_attacked = attacked_prefix;
    s_multihomed = multihomed_prefix;
    s_quiet = quiet_prefix;
    s_legit = d.d_legit;
    s_attacker = d.d_attacker;
    s_homes = Asn.Set.of_list [ d.d_home_a; d.d_home_b ];
    s_quiet_origin = d.d_quiet;
    s_isolated = isolated;
    s_scrubbers = (if arm = Scrubbed then d.d_scrubbers else Asn.Set.empty);
    s_faults_injected =
      (match injector with Some i -> Faults.Injector.injected i | None -> 0);
  }

let describe t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "topology %s (%s arm), %d vantages:\n" t.s_topology
       (arm_to_string t.s_arm)
       (List.length t.s_specs));
  List.iter2
    (fun s (_, events) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s peers={%s} events=%d%s\n" s.Vantage.v_name
           (Asn.Set.elements s.Vantage.v_peers
           |> List.map Asn.to_string |> String.concat ",")
           (Array.length events)
           (if t.s_isolated = Some s.Vantage.v_name then
              " [partitioned at t=20]"
            else "")))
    t.s_specs t.s_streams;
  Buffer.add_string buf
    (Printf.sprintf
       "workload: attack on %s (legit %s vs attacker %s), multihomed %s, \
        quiet %s\n"
       (Prefix.to_string t.s_attacked)
       (Asn.to_string t.s_legit)
       (Asn.to_string t.s_attacker)
       (Prefix.to_string t.s_multihomed)
       (Prefix.to_string t.s_quiet));
  if not (Asn.Set.is_empty t.s_scrubbers) then
    Buffer.add_string buf
      (Printf.sprintf "community scrubbers: {%s}\n"
         (Asn.Set.elements t.s_scrubbers
         |> List.map Asn.to_string |> String.concat ","));
  if t.s_faults_injected > 0 then
    Buffer.add_string buf
      (Printf.sprintf "faults injected: %d\n" t.s_faults_injected);
  Buffer.contents buf
