(** Canonical collector-mesh scenario over a paper topology.

    One reproducible workload exercises every correlation verdict the
    paper's multi-vantage argument distinguishes: an invalid-origin attack
    on [192.0.2.0/24] (the attacker advertises no MOAS list, so the
    conflict is flagged), a legitimate multihomed MOAS on
    [198.51.100.0/24] (both origins advertise the agreed list: clean), and
    a quiet single-origin prefix as control.  Vantages peer with the
    best-connected transit ASes, adjacent vantages sharing one feed so the
    merge stage has real duplicates to collapse.

    The partition arm ([isolate = true]) cuts, at [t=20] — after the valid
    routes converge but before the [t=30] attack — every peering of the
    first vantage's feed ASes via a {!Faults.Fault_plan}, blinding that
    vantage to the attack while the rest of the mesh still observes it:
    the "every-path blocking is implausible" experiment of paper §4 in
    miniature.  Both arms pick identical actors, so their captures differ
    only through the partition. *)

open Net

val design_vantages :
  ?count:int -> Topology.Paper_topologies.t -> Vantage.spec list
(** [count] (default 3) vantage specs named ["vp00"], ["vp01"], ….
    Vantage [i] peers with transit feeds [i] and [i+1] of the
    degree-ranked transit list (wrapping), so adjacent vantages overlap on
    one feed.  @raise Invalid_argument on [count < 1] or a topology with
    no transit AS. *)

type t = {
  s_topology : string;  (** topology name *)
  s_specs : Vantage.spec list;
  s_streams : (string * Stream.Monitor.event array) list;
      (** captured per-vantage streams, the {!Mesh.run} input *)
  s_end_time : int;  (** capture end, integer milliseconds *)
  s_attacked : Prefix.t;  (** the invalid-origin conflict prefix *)
  s_multihomed : Prefix.t;  (** the clean MOAS prefix *)
  s_quiet : Prefix.t;  (** the single-origin control prefix *)
  s_legit : Asn.t;  (** legitimate origin of [s_attacked] *)
  s_attacker : Asn.t;
  s_isolated : string option;  (** partitioned vantage, if any *)
  s_faults_injected : int;
}

val capture :
  ?metrics:Obs.Registry.t ->
  ?isolate:bool ->
  seed:int64 ->
  vantages:int ->
  Topology.Paper_topologies.t ->
  t
(** Build the network, attach the mesh, originate the workload, arm the
    partition when [isolate] (default false), and run to quiescence.
    Deterministic from [seed] and the topology. *)

val describe : t -> string
(** One-paragraph run summary (topology, roster, actors, event counts). *)
