(** Canonical collector-mesh scenario over a paper topology.

    One reproducible workload exercises every correlation verdict the
    paper's multi-vantage argument distinguishes: an invalid-origin attack
    on [192.0.2.0/24] (the attacker advertises no MOAS list, so the
    conflict is flagged), a legitimate multihomed MOAS on
    [198.51.100.0/24] (both origins advertise the agreed list: clean), and
    a quiet single-origin prefix as control.  Vantages peer with the
    best-connected transit ASes, adjacent vantages sharing one feed so the
    merge stage has real duplicates to collapse.

    The scenario now comes in three {!arm}s.  [Baseline] is the workload
    above.  [Partitioned] additionally cuts, at [t=20] — after the valid
    routes converge but before the [t=30] attack — every peering of the
    first vantage's feed ASes via a {!Faults.Fault_plan}, blinding that
    vantage to the attack while the rest of the mesh still observes it:
    the "every-path blocking is implausible" experiment of paper §4 in
    miniature.  [Fault_churn] has {e no attacker at all}: the homes
    multihome the legitimate prefix {e without} MOAS lists (the paper's
    unregistered-but-legitimate case, which the MOAS-list consistency
    check false-alarms on) and the second home's peerings flap
    periodically, so the operational episode recurs and churns.  All arms
    pick identical actors, so their captures differ only through the
    originations and the fault plan. *)

open Net

(** {2 Arms} *)

type arm =
  | Baseline  (** attack + listed multihoming, no faults *)
  | Partitioned  (** attack + listed multihoming, first vantage cut off *)
  | Fault_churn
      (** no attacker; unlisted multihoming with periodic link flaps *)

val arm_to_string : arm -> string
(** ["baseline"], ["partitioned"], ["fault-churn"]. *)

val arm_of_string : string -> (arm, string) result
(** Inverse of {!arm_to_string} (case-insensitive; accepts
    ["fault_churn"] too). *)

val all_arms : arm list
(** The three arms, in declaration order — the scenario-corpus axes. *)

val design_vantages :
  ?count:int -> Topology.Paper_topologies.t -> Vantage.spec list
(** [count] (default 3) vantage specs named ["vp00"], ["vp01"], ….
    Vantage [i] peers with transit feeds [i] and [i+1] of the
    degree-ranked transit list (wrapping), so adjacent vantages overlap on
    one feed.  @raise Invalid_argument on [count < 1] or a topology with
    no transit AS. *)

type t = {
  s_topology : string;  (** topology name *)
  s_arm : arm;
  s_specs : Vantage.spec list;
  s_streams : (string * Stream.Monitor.event array) list;
      (** captured per-vantage streams, the {!Mesh.run} input *)
  s_end_time : int;  (** capture end, integer milliseconds *)
  s_attacked : Prefix.t;  (** the invalid-origin conflict prefix *)
  s_multihomed : Prefix.t;  (** the legitimate MOAS prefix *)
  s_quiet : Prefix.t;  (** the single-origin control prefix *)
  s_legit : Asn.t;  (** legitimate origin of [s_attacked] *)
  s_attacker : Asn.t;
      (** would-be hijacker (originates nothing in [Fault_churn]) *)
  s_homes : Asn.Set.t;  (** the two origins of [s_multihomed] *)
  s_quiet_origin : Asn.t;  (** origin of [s_quiet] *)
  s_isolated : string option;  (** partitioned vantage, if any *)
  s_faults_injected : int;
}

val capture :
  ?metrics:Obs.Registry.t ->
  ?arm:arm ->
  seed:int64 ->
  vantages:int ->
  Topology.Paper_topologies.t ->
  t
(** Build the network, attach the mesh, originate the [arm]'s workload
    (default [Baseline]), arm its fault plan, and run to quiescence.
    Deterministic from [seed], the arm and the topology. *)

val describe : t -> string
(** One-paragraph run summary (topology, roster, actors, event counts). *)
