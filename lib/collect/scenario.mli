(** Canonical collector-mesh scenario over a paper topology.

    One reproducible workload exercises every correlation verdict the
    paper's multi-vantage argument distinguishes: an invalid-origin attack
    on [192.0.2.0/24] (the attacker advertises no MOAS list, so the
    conflict is flagged), a legitimate multihomed MOAS on
    [198.51.100.0/24] (both origins advertise the agreed list: clean), and
    a quiet single-origin prefix as control.  Vantages peer with the
    best-connected transit ASes, adjacent vantages sharing one feed so the
    merge stage has real duplicates to collapse.

    The scenario now comes in four {!arm}s.  [Baseline] is the workload
    above.  [Partitioned] additionally cuts, at [t=20] — after the valid
    routes converge but before the [t=30] attack — every peering of the
    first vantage's feed ASes via a {!Faults.Fault_plan}, blinding that
    vantage to the attack while the rest of the mesh still observes it:
    the "every-path blocking is implausible" experiment of paper §4 in
    miniature.  [Fault_churn] has {e no attacker at all}: the homes
    multihome the legitimate prefix {e without} MOAS lists (the paper's
    unregistered-but-legitimate case, which the MOAS-list consistency
    check false-alarms on) and the second home's peerings flap
    periodically, so the operational episode recurs and churns.
    [Scrubbed] is the Baseline attack under the paper's Section 4.3
    failure mode: every neighbor of the victim runs the
    {!Bgp.Community_policy} scrubbing class, so the victim's MOAS list is
    erased one hop out and never reaches a collector, while the
    attacker's side keeps its community behaviour.  All arms pick
    identical actors, so their captures differ only through the
    originations, the routing policies and the fault plan. *)

open Net

(** {2 Arms} *)

type arm =
  | Baseline  (** attack + listed multihoming, no faults *)
  | Partitioned  (** attack + listed multihoming, first vantage cut off *)
  | Fault_churn
      (** no attacker; unlisted multihoming with periodic link flaps *)
  | Scrubbed
      (** attack + listed multihoming; the victim's neighbors scrub
          communities, blinding the MOAS-list check (Section 4.3) *)

val arm_to_string : arm -> string
(** ["baseline"], ["partitioned"], ["fault-churn"], ["scrubbed"]. *)

val arm_of_string : string -> (arm, string) result
(** Inverse of {!arm_to_string} (case-insensitive; accepts
    ["fault_churn"] too). *)

val all_arms : arm list
(** The four arms — the scenario-corpus axes.  [Scrubbed] is appended
    last so the run indices (and pre-split random streams) of the three
    original arms never move. *)

val design_vantages :
  ?count:int -> Topology.Paper_topologies.t -> Vantage.spec list
(** [count] (default 3) vantage specs named ["vp00"], ["vp01"], ….
    Vantage [i] peers with transit feeds [i] and [i+1] of the
    degree-ranked transit list (wrapping), so adjacent vantages overlap on
    one feed.  @raise Invalid_argument on [count < 1] or a topology with
    no transit AS. *)

(** {2 Workload design}

    The deterministic casting shared by every arm, exposed so other
    harnesses (the community head-to-head in [Experiments]) can rebuild
    the exact scenario workload on networks of their own configuration. *)

type design = {
  d_specs : Vantage.spec list;  (** the vantage roster *)
  d_legit : Asn.t;  (** legitimate origin of the attacked prefix *)
  d_attacker : Asn.t;  (** the hijacker (idle in [Fault_churn]) *)
  d_home_a : Asn.t;  (** first home of the multihomed prefix *)
  d_home_b : Asn.t;  (** second home, announced at [t=5] *)
  d_quiet : Asn.t;  (** origin of the quiet control prefix *)
  d_scrubbers : Asn.Set.t;
      (** the [Scrubbed] arm's scrub set: every neighbor of the victim —
          the minimal cut that erases its MOAS list everywhere *)
}

val design : ?vantages:int -> Topology.Paper_topologies.t -> design
(** Cast actors and vantages for a topology ([vantages] defaults to 3);
    a pure function of the topology. *)

val attacked_prefix : Prefix.t
(** [192.0.2.0/24], the invalid-origin conflict prefix. *)

val multihomed_prefix : Prefix.t
(** [198.51.100.0/24], the legitimate MOAS prefix. *)

val quiet_prefix : Prefix.t
(** [203.0.113.0/24], the single-origin control prefix. *)

val originate_arm : arm -> Bgp.Network.t -> design -> unit
(** Schedule the arm's originations (victim at [t=0] with its singleton
    list, attack at [t=30] unless [Fault_churn], the multihomed pair,
    the quiet control) on an already-built network. *)

val fault_plan :
  arm -> Topology.Paper_topologies.t -> design -> Faults.Fault_plan.t
(** The arm's fault plan (empty for [Baseline] and [Scrubbed]). *)

val arm_policy_of :
  ?metrics:Obs.Registry.t ->
  arm ->
  seed:int64 ->
  Topology.Paper_topologies.t ->
  design ->
  (Asn.t -> Bgp.Policy.t) option
(** The arm's per-AS routing policy, if it overrides the default: the
    [Scrubbed] arm runs the {!Bgp.Community_policy} usage model with
    [d_scrubbers] forced to the scrubbing class. *)

val attack_at : float
(** Attack origination time ([t=30]). *)

val cut_at : float
(** Partition time of the [Partitioned] arm ([t=20]). *)

val second_home_at : float
(** Second home's origination time ([t=5]). *)

val flap_until : float
(** End of the [Fault_churn] flap window ([t=40]). *)

type t = {
  s_topology : string;  (** topology name *)
  s_arm : arm;
  s_specs : Vantage.spec list;
  s_streams : (string * Stream.Monitor.event array) list;
      (** captured per-vantage streams, the {!Mesh.run} input *)
  s_end_time : int;  (** capture end, integer milliseconds *)
  s_attacked : Prefix.t;  (** the invalid-origin conflict prefix *)
  s_multihomed : Prefix.t;  (** the legitimate MOAS prefix *)
  s_quiet : Prefix.t;  (** the single-origin control prefix *)
  s_legit : Asn.t;  (** legitimate origin of [s_attacked] *)
  s_attacker : Asn.t;
      (** would-be hijacker (originates nothing in [Fault_churn]) *)
  s_homes : Asn.Set.t;  (** the two origins of [s_multihomed] *)
  s_quiet_origin : Asn.t;  (** origin of [s_quiet] *)
  s_isolated : string option;  (** partitioned vantage, if any *)
  s_scrubbers : Asn.Set.t;
      (** the ASes scrubbing communities (empty outside [Scrubbed]) *)
  s_faults_injected : int;
}

val capture :
  ?metrics:Obs.Registry.t ->
  ?arm:arm ->
  seed:int64 ->
  vantages:int ->
  Topology.Paper_topologies.t ->
  t
(** Build the network, attach the mesh, originate the [arm]'s workload
    (default [Baseline]), arm its fault plan, and run to quiescence.
    Deterministic from [seed], the arm and the topology. *)

val describe : t -> string
(** One-paragraph run summary (topology, roster, actors, event counts). *)
