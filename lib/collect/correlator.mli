(** Cross-vantage MOAS-episode correlation.

    The paper's Section 4 argument is that a bogus origin cannot suppress
    the correct announcement on every propagation path, so a conflict is
    always visible {e somewhere}.  The correlator quantifies "somewhere":
    for every episode of the mesh's merged view it computes which vantages
    saw a conflict on the same prefix over an overlapping interval, the
    resulting visibility [k] of [N], and the earliest/latest per-vantage
    detection times.  [k = N] is full visibility; [k < N] is the simulated
    analogue of paths being blocked (link failures, policy, partitions);
    [k = 0] marks conflicts only the cross-vantage union reveals — each
    vantage alone saw a single origin, and only correlating feeds exposes
    the clash. *)

open Net

type entry = {
  x_prefix : Prefix.t;
  x_seq : int;  (** recurrence index in the merged view *)
  x_started : int;
  x_ended : int option;  (** [None] while still open *)
  x_days : int;
  x_max_origins : int;
  x_origins : Asn.Set.t;
  x_clean : bool;  (** false = the MOAS-list check flagged it *)
  x_seen_by : string list;  (** vantages with an overlapping conflict, sorted *)
  x_first_detect : int option;  (** earliest per-vantage episode start *)
  x_last_detect : int option;  (** latest per-vantage episode start *)
}

type t = {
  c_vantages : string list;  (** all vantage names, sorted *)
  c_entries : entry list;  (** merged episodes, sorted (prefix, start, seq) *)
}

val visibility : entry -> int
(** [k]: how many vantages saw the conflict. *)

val correlate :
  vantages:(string * Stream.Monitor.snapshot) list ->
  merged:Stream.Monitor.snapshot ->
  t
(** Correlate per-vantage snapshots against the merged view.  A vantage
    "saw" a merged episode when one of its own episodes on the same prefix
    overlaps the merged episode's [start, end] interval. *)

val of_result : Mesh.result -> t
(** {!correlate} over a mesh run. *)

val write_entry : Buffer.t -> entry -> unit
(** Append one entry in the shared binary layout ({!Net.Codec}
    discipline) — the representation used inside both the [MOASSTOR]
    store format and the [MOASSERV] wire protocol. *)

val read_entry : Net.Codec.cursor -> entry
(** Decode one entry; malformed input raises through the cursor's
    failure exception. *)

val render_entry : vantage_count:int -> entry -> string
(** One deterministic text line for an entry (no trailing newline), with
    visibility rendered as [k/N] against [vantage_count]. *)

val render : t -> string
(** Deterministic text report: the per-episode table (with visibility
    [k/N] and detection spread) and the visibility/validation summary. *)
