open Net

type t = {
  q_prefix : Prefix.t option;
  q_covered : bool;
  q_origin : Asn.t option;
  q_since : int option;
  q_until : int option;
  q_min_visibility : int option;
  q_bucket : Stream.Monitor.bucket option;
}

exception Corrupt of string

let empty =
  {
    q_prefix = None;
    q_covered = false;
    q_origin = None;
    q_since = None;
    q_until = None;
    q_min_visibility = None;
    q_bucket = None;
  }

let nonneg what v =
  if v < 0 then
    invalid_arg (Printf.sprintf "Collect.Query: negative %s %d" what v);
  v

let prefix p q = { q with q_prefix = Some p }
let covered q = { q with q_covered = true }
let origin a q = { q with q_origin = Some a }
let since v q = { q with q_since = Some (nonneg "since" v) }
let until v q = { q with q_until = Some (nonneg "until" v) }

let min_visibility v q =
  { q with q_min_visibility = Some (nonneg "min_visibility" v) }

let bucket b q = { q with q_bucket = Some b }

(* one bucket definition: the Stream.Monitor Section 3 boundaries on the
   default config (short <= 1 observed day < medium <= 60 < long) *)
let entry_bucket (e : Correlator.entry) =
  Stream.Monitor.bucket_of_days Stream.Monitor.default_config
    e.Correlator.x_days

let target q = q.q_prefix
let wants_covered q = q.q_covered
let origin_filter q = q.q_origin
let since_bound q = q.q_since
let until_bound q = q.q_until
let visibility_floor q = q.q_min_visibility
let bucket_filter q = q.q_bucket
let compare = Stdlib.compare
let equal a b = compare a b = 0

let matches q (e : Correlator.entry) =
  let hi = Option.value e.Correlator.x_ended ~default:max_int in
  (match q.q_prefix with
  | None -> true
  | Some p when q.q_covered -> Prefix.subsumes p e.Correlator.x_prefix
  | Some p -> Prefix.compare p e.Correlator.x_prefix = 0)
  && (match q.q_origin with
     | Some a -> Asn.Set.mem a e.Correlator.x_origins
     | None -> true)
  && (match q.q_since with Some s -> hi >= s | None -> true)
  && (match q.q_until with Some u -> e.Correlator.x_started <= u | None -> true)
  && (match q.q_min_visibility with
     | Some k -> Correlator.visibility e >= k
     | None -> true)
  && (match q.q_bucket with
     | Some b -> Stream.Monitor.compare_bucket (entry_bucket e) b = 0
     | None -> true)

(* ------------------------------------------------------------------ *)
(* One parser *)

let parse s =
  let parse_clause q clause =
    match String.index_opt clause '=' with
    | None -> Error (Printf.sprintf "clause %S is not key=value" clause)
    | Some i -> (
      let key = String.sub clause 0 i in
      let value = String.sub clause (i + 1) (String.length clause - i - 1) in
      let nonneg_int name =
        match int_of_string_opt value with
        | Some v when v >= 0 -> Ok v
        | Some _ ->
          Error (Printf.sprintf "%s=%S must be non-negative" name value)
        | None -> Error (Printf.sprintf "%s=%S is not an integer" name value)
      in
      match key with
      | "prefix" -> (
        match Prefix.of_string value with
        | p -> Ok (prefix p q)
        | exception _ -> Error (Printf.sprintf "bad prefix %S" value))
      | "covered" -> (
        match bool_of_string_opt value with
        | Some b -> Ok { q with q_covered = b }
        | None -> Error (Printf.sprintf "covered=%S is not a boolean" value))
      | "origin" -> (
        match int_of_string_opt value with
        | Some v -> (
          try Ok (origin (Asn.make v) q)
          with Invalid_argument _ -> Error (Printf.sprintf "bad AS %S" value))
        | None -> Error (Printf.sprintf "origin=%S is not an AS number" value))
      | "since" -> Result.map (fun v -> since v q) (nonneg_int "since")
      | "until" -> Result.map (fun v -> until v q) (nonneg_int "until")
      | "min_visibility" ->
        Result.map (fun v -> min_visibility v q) (nonneg_int "min_visibility")
      | "bucket" ->
        Result.map
          (fun b -> bucket b q)
          (Stream.Monitor.bucket_of_string value)
      | _ -> Error (Printf.sprintf "unknown query key %S" key))
  in
  let clauses =
    List.filter (fun c -> c <> "") (String.split_on_char ',' (String.trim s))
  in
  List.fold_left
    (fun acc clause -> Result.bind acc (fun q -> parse_clause q clause))
    (Ok empty) clauses

(* ------------------------------------------------------------------ *)
(* One printer *)

let to_string q =
  let clause key value rest = Printf.sprintf "%s=%s" key value :: rest in
  let opt key show o rest =
    match o with None -> rest | Some v -> clause key (show v) rest
  in
  String.concat ","
    (opt "prefix" Prefix.to_string q.q_prefix
       ((if q.q_covered then clause "covered" "true" else Fun.id)
          (opt "origin"
             (fun a -> string_of_int (Asn.to_int a))
             q.q_origin
             (opt "since" string_of_int q.q_since
                (opt "until" string_of_int q.q_until
                   (opt "min_visibility" string_of_int q.q_min_visibility
                      (opt "bucket" Stream.Monitor.bucket_to_string q.q_bucket
                         [])))))))

let pp fmt q = Format.pp_print_string fmt (to_string q)

(* ------------------------------------------------------------------ *)
(* One binary codec *)

let bucket_tag = function
  | Stream.Monitor.Short -> 0
  | Stream.Monitor.Medium -> 1
  | Stream.Monitor.Long -> 2

let bucket_of_tag c = function
  | 0 -> Stream.Monitor.Short
  | 1 -> Stream.Monitor.Medium
  | 2 -> Stream.Monitor.Long
  | n -> Codec.corrupt c "bad bucket tag %d" n

let write buf q =
  Codec.put_option buf Codec.put_prefix q.q_prefix;
  Codec.put_bool buf q.q_covered;
  Codec.put_option buf Codec.put_asn q.q_origin;
  Codec.put_option buf Codec.put_i63 q.q_since;
  Codec.put_option buf Codec.put_i63 q.q_until;
  Codec.put_option buf Codec.put_u32 q.q_min_visibility;
  Codec.put_option buf
    (fun buf b -> Codec.put_u8 buf (bucket_tag b))
    q.q_bucket

let read c =
  let q_prefix = Codec.take_option c Codec.take_prefix in
  let q_covered = Codec.take_bool c in
  let q_origin = Codec.take_option c Codec.take_asn in
  let q_since = Codec.take_option c Codec.take_i63 in
  let q_until = Codec.take_option c Codec.take_i63 in
  let q_min_visibility = Codec.take_option c Codec.take_u32 in
  let q_bucket =
    Codec.take_option c (fun c -> bucket_of_tag c (Codec.take_u8 c))
  in
  {
    q_prefix;
    q_covered;
    q_origin;
    q_since;
    q_until;
    q_min_visibility;
    q_bucket;
  }

let encode q =
  let buf = Buffer.create 32 in
  write buf q;
  Buffer.to_bytes buf

let decode data =
  let c = Codec.cursor ~fail:(fun m -> Corrupt m) data in
  let q = read c in
  Codec.expect_end c;
  q
