(** The unified typed episode query — the {e single} query representation
    consumed by {!Store.query}, the CLI [--query] flag and the
    [Serve.Proto] wire protocol.

    A query is a conjunction of optional clauses over
    {!Correlator.entry} records.  It is built with the combinator
    pipeline

    {[ Query.(empty |> prefix p |> covered |> min_visibility 2) ]}

    printed with {!to_string}, parsed back with {!parse} (the same
    comma-separated [key=value] syntax the CLI has always used), and
    carried on the wire with {!write}/{!read} — one builder, one parser,
    one printer, one binary codec.  The type is abstract: the old
    record-literal construction sites are gone, so every producer goes
    through the same validated surface. *)

open Net

type t
(** A query.  {!empty} matches every entry; each combinator tightens it. *)

exception Corrupt of string
(** Raised by {!decode} on malformed binary input. *)

val empty : t
(** The match-everything query. *)

(** {2 Builder} *)

val prefix : Prefix.t -> t -> t
(** Restrict to entries on this prefix (exact, unless {!covered}). *)

val covered : t -> t
(** Make the {!prefix} restriction include more-specifics — the
    sub-prefix hijack shape of paper §4.3.  Without a prefix clause it
    is recorded but vacuous. *)

val origin : Asn.t -> t -> t
(** Entries whose origin set contains this AS. *)

val since : int -> t -> t
(** Episode interval must end at or after this time (open episodes
    extend to the end of time).  @raise Invalid_argument on a negative
    time. *)

val until : int -> t -> t
(** Episode must start at or before this time.
    @raise Invalid_argument on a negative time. *)

val min_visibility : int -> t -> t
(** At least [k] vantages saw the episode.
    @raise Invalid_argument on a negative floor. *)

val bucket : Stream.Monitor.bucket -> t -> t
(** Restrict to episodes whose observed day count falls in the given
    Section 3 duration bucket, per {!Stream.Monitor.bucket_of_days} on
    the default config (short <= 1 observed day < medium <= 60 < long) —
    the same boundaries the stream report prints. *)

(** {2 Accessors} *)

val target : t -> Prefix.t option
val wants_covered : t -> bool
val origin_filter : t -> Asn.t option
val since_bound : t -> int option
val until_bound : t -> int option
val visibility_floor : t -> int option
val bucket_filter : t -> Stream.Monitor.bucket option

val equal : t -> t -> bool
val compare : t -> t -> int

val matches : t -> Correlator.entry -> bool
(** Whether an entry satisfies every clause (including the prefix
    clause, tested with {!Net.Prefix.subsumes} when {!covered}). *)

(** {2 One parser, one printer} *)

val parse : string -> (t, string) result
(** Parse a comma-separated [key=value] list: [prefix=198.51.100.0/24],
    [covered=true], [origin=65001], [since=0], [until=90000],
    [min_visibility=2], [bucket=short|medium|long].  An empty string is
    {!empty}.  Times and the visibility floor must be non-negative. *)

val to_string : t -> string
(** Canonical rendering in the {!parse} syntax (clauses in fixed key
    order; [""] for {!empty}).  [parse (to_string q)] = [Ok q]. *)

val pp : Format.formatter -> t -> unit

(** {2 One binary codec} *)

val write : Buffer.t -> t -> unit
(** Append the query in the shared {!Net.Codec} layout (no framing —
    the container supplies magic/version/length). *)

val read : Net.Codec.cursor -> t
(** Decode one query; malformed input raises through the cursor. *)

val encode : t -> bytes
(** Standalone frame: just the {!write} payload. *)

val decode : bytes -> t
(** @raise Corrupt on truncation, bad tags or trailing octets. *)
