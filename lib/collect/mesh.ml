open Net
module M = Stream.Monitor
module Registry = Obs.Registry

type tagged = { tag : string; event : M.event }

let compare_action (a : M.action) (b : M.action) =
  match (a, b) with
  | M.Withdraw { origin = oa }, M.Withdraw { origin = ob } -> Asn.compare oa ob
  | M.Withdraw _, M.Announce _ -> -1
  | M.Announce _, M.Withdraw _ -> 1
  | M.Announce { origin = oa; moas_list = la }, M.Announce { origin = ob; moas_list = lb }
    ->
    let c = Asn.compare oa ob in
    if c <> 0 then c else Option.compare Asn.Set.compare la lb

let compare_event (a : M.event) (b : M.event) =
  (* physical equality first: cross-vantage duplicates share the one
     record the replay split fanned out, and walking the full comparator
     (including a set compare) on every such tie dominates the merge *)
  if a == b then 0
  else
    (* Int.compare, not polymorphic compare: this runs once per heap step *)
    let c = Int.compare a.M.time b.M.time in
  if c <> 0 then c
  else
    let c = Prefix.compare a.M.prefix b.M.prefix in
    if c <> 0 then c
    else
      let c = compare_action a.M.action b.M.action in
      if c <> 0 then c else Asn.compare a.M.peer b.M.peer

(* Timestamps discriminate almost every pair, so the merge machinery
   below runs on flat per-stream int arrays of times and only touches
   the scattered event records on a time tie: one contiguous int compare
   instead of a pointer chase per step. *)
let times_of events = Array.map (fun (e : M.event) -> e.M.time) events

let is_sorted times events =
  let ok = ref true in
  for i = 1 to Array.length events - 1 do
    if
      times.(i - 1) > times.(i)
      || (times.(i - 1) = times.(i)
         && compare_event events.(i - 1) events.(i) > 0)
    then ok := false
  done;
  !ok

(* K-way binary-heap merge over per-vantage arrays, each sorted by
   {!compare_event} (already-sorted inputs are used in place; unsorted
   ones are copied and sorted once).  Heap ties break toward the smaller
   vantage index — vantages are in name order — so runs of equal events
   pop first-observer-first, and collapsing consecutive equals
   reproduces the old global sort-by-(event, tag) + fold dedup exactly:
   same output order, same duplicate count.  Returns the merged events,
   the source-vantage index of each survivor, the duplicate count, and
   the name-ordered vantage names. *)
let merge_core streams =
  let streams =
    List.sort (fun (a, _) (b, _) -> String.compare a b) streams
  in
  let names = Array.of_list (List.map fst streams) in
  let arrs =
    Array.of_list
      (List.map
         (fun (_, events) ->
           let times = times_of events in
           if is_sorted times events then (times, events)
           else begin
             (* equal-under-comparator events are structurally equal on
                every modelled field, so an unstable sort is safe *)
             let copy = Array.copy events in
             Array.sort compare_event copy;
             (times_of copy, copy)
           end)
         streams)
  in
  let times = Array.map fst arrs in
  let arrs = Array.map snd arrs in
  let k = Array.length arrs in
  let total = Array.fold_left (fun a arr -> a + Array.length arr) 0 arrs in
  if total = 0 then ([||], [||], 0, names)
  else begin
    let pos = Array.make k 0 in
    (* current head timestamp per stream, mirrored out of [times] so the
       hot comparison is two flat loads instead of a double subscript *)
    let head_t =
      Array.init k (fun v ->
          if Array.length arrs.(v) > 0 then times.(v).(0) else max_int)
    in
    let heap = Array.make k 0 in
    let hn = ref 0 in
    let less i j =
      let ta = head_t.(i) and tb = head_t.(j) in
      if ta <> tb then ta < tb
      else
        let c = compare_event arrs.(i).(pos.(i)) arrs.(j).(pos.(j)) in
        if c <> 0 then c < 0 else i < j
    in
    let swap a b =
      let tmp = heap.(a) in
      heap.(a) <- heap.(b);
      heap.(b) <- tmp
    in
    let rec up i =
      if i > 0 then begin
        let p = (i - 1) / 2 in
        if less heap.(i) heap.(p) then begin
          swap i p;
          up p
        end
      end
    in
    let rec down i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let m = ref i in
      if l < !hn && less heap.(l) heap.(!m) then m := l;
      if r < !hn && less heap.(r) heap.(!m) then m := r;
      if !m <> i then begin
        swap i !m;
        down !m
      end
    in
    for v = k - 1 downto 0 do
      if Array.length arrs.(v) > 0 then begin
        heap.(!hn) <- v;
        incr hn;
        up (!hn - 1)
      end
    done;
    let dummy =
      let rec first v = if Array.length arrs.(v) > 0 then arrs.(v).(0) else first (v + 1) in
      first 0
    in
    let out_ev = Array.make total dummy in
    let out_src = Array.make total 0 in
    let n = ref 0 in
    let dups = ref 0 in
    let last_t = ref min_int in
    while !hn > 0 do
      let v = heap.(0) in
      let p0 = pos.(v) in
      let ev = arrs.(v).(p0) in
      let tv = head_t.(v) in
      pos.(v) <- p0 + 1;
      if p0 + 1 < Array.length arrs.(v) then begin
        head_t.(v) <- times.(v).(p0 + 1);
        down 0
      end
      else begin
        decr hn;
        heap.(0) <- heap.(!hn);
        if !hn > 0 then down 0
      end;
      if !n > 0 && tv = !last_t && compare_event out_ev.(!n - 1) ev = 0 then
        incr dups
      else begin
        out_ev.(!n) <- ev;
        out_src.(!n) <- v;
        incr n;
        last_t := tv
      end
    done;
    (Array.sub out_ev 0 !n, Array.sub out_src 0 !n, !dups, names)
  end

let merge_streams streams =
  let ev, src, dups, names = merge_core streams in
  ( Array.init (Array.length ev) (fun i ->
        { tag = names.(src.(i)); event = ev.(i) }),
    dups )

type result = {
  r_vantages : string list;
  r_per_vantage : (string * M.snapshot) list;
  r_merged : M.snapshot;
  r_merged_events : int;
  r_duplicates : int;
}

let run ?(metrics = Registry.noop) ?jobs ?settle config streams =
  if streams = [] then invalid_arg "Mesh.run: no vantages";
  let streams =
    List.sort (fun (a, _) (b, _) -> String.compare a b) streams
  in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if String.equal a b then invalid_arg ("Mesh.run: duplicate vantage " ^ a);
      check rest
    | _ -> ()
  in
  check streams;
  let settle =
    match settle with
    | Some t -> t
    | None ->
      List.fold_left
        (fun acc (_, events) ->
          Array.fold_left (fun acc (ev : M.event) -> max acc ev.M.time) acc events)
        0 streams
  in
  let merged_events, _, duplicates, _ = merge_core streams in
  let live = not (Registry.is_noop metrics) in
  if live && duplicates > 0 then
    Registry.Counter.add
      (Registry.counter metrics "stream_merge_duplicates")
      duplicates;
  (* task 0 is the merged global view, tasks 1..n the vantages; every task
     builds its own monitor and registry so the pool contract holds *)
  let tasks =
    Array.of_list
      (merged_events :: List.map (fun (_, events) -> events) streams)
  in
  let outcomes =
    Exec.Pool.map ?jobs
      (fun events ->
        let reg = if live then Registry.create () else Registry.noop in
        let monitor = M.create ~metrics:reg config in
        (* settle at every time step so an episode is validated while it
           is open even if a later event closes it *)
        let last = ref min_int in
        Array.iter
          (fun (ev : M.event) ->
            if !last <> min_int && ev.M.time > !last then
              M.settle monitor ~time:!last;
            last := ev.M.time;
            M.ingest monitor ev)
          events;
        M.settle monitor ~time:settle;
        (M.snapshot monitor, reg))
      tasks
  in
  if live then
    Array.iter (fun (_, reg) -> Registry.merge ~into:metrics reg) outcomes;
  let merged = fst outcomes.(0) in
  let per_vantage =
    List.mapi (fun i (name, _) -> (name, fst outcomes.(i + 1))) streams
  in
  {
    r_vantages = List.map fst streams;
    r_per_vantage = per_vantage;
    r_merged = merged;
    r_merged_events = Array.length merged_events;
    r_duplicates = duplicates;
  }
