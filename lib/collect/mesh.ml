open Net
module M = Stream.Monitor
module Registry = Obs.Registry

type tagged = { tag : string; event : M.event }

let compare_action (a : M.action) (b : M.action) =
  match (a, b) with
  | M.Withdraw { origin = oa }, M.Withdraw { origin = ob } -> Asn.compare oa ob
  | M.Withdraw _, M.Announce _ -> -1
  | M.Announce _, M.Withdraw _ -> 1
  | M.Announce { origin = oa; moas_list = la }, M.Announce { origin = ob; moas_list = lb }
    ->
    let c = Asn.compare oa ob in
    if c <> 0 then c else Option.compare Asn.Set.compare la lb

let compare_event (a : M.event) (b : M.event) =
  let c = compare a.M.time b.M.time in
  if c <> 0 then c
  else
    let c = Prefix.compare a.M.prefix b.M.prefix in
    if c <> 0 then c
    else
      let c = compare_action a.M.action b.M.action in
      if c <> 0 then c else Asn.compare a.M.peer b.M.peer

let merge_streams streams =
  let all =
    List.concat_map
      (fun (name, events) ->
        Array.to_list (Array.map (fun event -> { tag = name; event }) events))
      streams
  in
  let sorted =
    List.sort
      (fun a b ->
        let c = compare_event a.event b.event in
        if c <> 0 then c else String.compare a.tag b.tag)
      all
  in
  (* collapse runs of equal events, keeping the name-order first observer *)
  let merged, dups =
    List.fold_left
      (fun (acc, dups) t ->
        match acc with
        | prev :: _ when compare_event prev.event t.event = 0 -> (acc, dups + 1)
        | _ -> (t :: acc, dups))
      ([], 0) sorted
  in
  (Array.of_list (List.rev merged), dups)

type result = {
  r_vantages : string list;
  r_per_vantage : (string * M.snapshot) list;
  r_merged : M.snapshot;
  r_merged_events : int;
  r_duplicates : int;
}

let run ?(metrics = Registry.noop) ?jobs ?settle config streams =
  if streams = [] then invalid_arg "Mesh.run: no vantages";
  let streams =
    List.sort (fun (a, _) (b, _) -> String.compare a b) streams
  in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if String.equal a b then invalid_arg ("Mesh.run: duplicate vantage " ^ a);
      check rest
    | _ -> ()
  in
  check streams;
  let settle =
    match settle with
    | Some t -> t
    | None ->
      List.fold_left
        (fun acc (_, events) ->
          Array.fold_left (fun acc (ev : M.event) -> max acc ev.M.time) acc events)
        0 streams
  in
  let merged_stream, duplicates = merge_streams streams in
  let live = not (Registry.is_noop metrics) in
  if live && duplicates > 0 then
    Registry.Counter.add
      (Registry.counter metrics "stream_merge_duplicates")
      duplicates;
  (* task 0 is the merged global view, tasks 1..n the vantages; every task
     builds its own monitor and registry so the pool contract holds *)
  let tasks =
    Array.of_list
      (Array.map (fun t -> t.event) merged_stream
      :: List.map (fun (_, events) -> events) streams)
  in
  let outcomes =
    Exec.Pool.map ?jobs
      (fun events ->
        let reg = if live then Registry.create () else Registry.noop in
        let monitor = M.create ~metrics:reg config in
        (* settle at every time step so an episode is validated while it
           is open even if a later event closes it *)
        let last = ref min_int in
        Array.iter
          (fun (ev : M.event) ->
            if !last <> min_int && ev.M.time > !last then
              M.settle monitor ~time:!last;
            last := ev.M.time;
            M.ingest monitor ev)
          events;
        M.settle monitor ~time:settle;
        (M.snapshot monitor, reg))
      tasks
  in
  if live then
    Array.iter (fun (_, reg) -> Registry.merge ~into:metrics reg) outcomes;
  let merged = fst outcomes.(0) in
  let per_vantage =
    List.mapi (fun i (name, _) -> (name, fst outcomes.(i + 1))) streams
  in
  {
    r_vantages = List.map fst streams;
    r_per_vantage = per_vantage;
    r_merged = merged;
    r_merged_events = Array.length merged_stream;
    r_duplicates = duplicates;
  }
