open Net

type t = {
  roster : string list; (* sorted, deduped *)
  trie : Correlator.entry list Prefix_trie.t; (* per-prefix, (started, seq) order *)
  count : int;
}

exception Corrupt of string

let magic = "MOASSTOR"
let version = 1

let empty ~vantages =
  { roster = List.sort_uniq String.compare vantages; trie = Prefix_trie.empty; count = 0 }

let compare_entry (a : Correlator.entry) (b : Correlator.entry) =
  let c = compare a.Correlator.x_started b.Correlator.x_started in
  if c <> 0 then c else compare a.Correlator.x_seq b.Correlator.x_seq

let same_key (a : Correlator.entry) (b : Correlator.entry) =
  a.Correlator.x_started = b.Correlator.x_started
  && a.Correlator.x_seq = b.Correlator.x_seq

let add (e : Correlator.entry) t =
  let replaced = ref false in
  let trie =
    Prefix_trie.update e.Correlator.x_prefix
      (fun prev ->
        let prev = Option.value prev ~default:[] in
        let kept =
          List.filter
            (fun old ->
              if same_key old e then (
                replaced := true;
                false)
              else true)
            prev
        in
        Some (List.sort compare_entry (e :: kept)))
      t.trie
  in
  { t with trie; count = (if !replaced then t.count else t.count + 1) }

let of_correlation (c : Correlator.t) =
  List.fold_left
    (fun t e -> add e t)
    (empty ~vantages:c.Correlator.c_vantages)
    c.Correlator.c_entries

let vantages t = t.roster
let count t = t.count

let entries t =
  List.rev
    (Prefix_trie.fold (fun _ es acc -> List.rev_append es acc) t.trie [])

(* ------------------------------------------------------------------ *)
(* Queries — one typed representation, Collect.Query, shared with the
   CLI --query flag and the Serve.Proto wire message.  The prefix clause
   is answered from the trie; the remaining clauses filter. *)

type query = Query.t

let query_all = Query.empty

let query t q =
  let candidates =
    match Query.target q with
    | None -> entries t
    | Some p when Query.wants_covered q ->
      List.concat_map (fun (_, es) -> es) (Prefix_trie.covered p t.trie)
    | Some p -> Option.value (Prefix_trie.find_opt p t.trie) ~default:[]
  in
  List.filter (Query.matches q) candidates

let parse_query = Query.parse

(* ------------------------------------------------------------------ *)
(* Binary encoding — Net.Codec discipline, magic MOASSTOR *)

let put_string = Codec.put_string
let put_entry = Correlator.write_entry

let encode t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Codec.put_u8 buf version;
  Codec.put_list buf put_string t.roster;
  Codec.put_list buf put_entry (entries t);
  Buffer.to_bytes buf

let decode data =
  let c = Codec.cursor ~fail:(fun m -> Corrupt m) data in
  if Bytes.length data < String.length magic then
    raise (Corrupt "not an episode store");
  Codec.expect_magic c magic;
  (match Codec.take_u8 c with
  | v when v = version -> ()
  | v -> raise (Corrupt (Printf.sprintf "unsupported store version %d" v)));
  let roster = Codec.take_list c Codec.take_string in
  let es = Codec.take_list c Correlator.read_entry in
  Codec.expect_end c;
  List.fold_left (fun t e -> add e t) (empty ~vantages:roster) es

let write_file path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (encode t))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let data = Bytes.create n in
      really_input ic data 0 n;
      decode data)

(* ------------------------------------------------------------------ *)

let render t =
  let buf = Buffer.create 1024 in
  let n = List.length t.roster in
  Buffer.add_string buf "=== Episode store ===\n";
  Buffer.add_string buf
    (Printf.sprintf "vantages: %d (%s)\n" n (String.concat " " t.roster));
  Buffer.add_string buf (Printf.sprintf "entries: %d\n" t.count);
  List.iter
    (fun (e : Correlator.entry) ->
      Buffer.add_string buf (Correlator.render_entry ~vantage_count:n e);
      Buffer.add_char buf '\n')
    (entries t);
  Buffer.contents buf
