open Net

type t = {
  roster : string list; (* sorted, deduped *)
  trie : Correlator.entry list Prefix_trie.t; (* per-prefix, (started, seq) order *)
  count : int;
}

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let magic = "MOASSTOR"
let version = 1

let empty ~vantages =
  { roster = List.sort_uniq String.compare vantages; trie = Prefix_trie.empty; count = 0 }

let compare_entry (a : Correlator.entry) (b : Correlator.entry) =
  let c = compare a.Correlator.x_started b.Correlator.x_started in
  if c <> 0 then c else compare a.Correlator.x_seq b.Correlator.x_seq

let same_key (a : Correlator.entry) (b : Correlator.entry) =
  a.Correlator.x_started = b.Correlator.x_started
  && a.Correlator.x_seq = b.Correlator.x_seq

let add (e : Correlator.entry) t =
  let replaced = ref false in
  let trie =
    Prefix_trie.update e.Correlator.x_prefix
      (fun prev ->
        let prev = Option.value prev ~default:[] in
        let kept =
          List.filter
            (fun old ->
              if same_key old e then (
                replaced := true;
                false)
              else true)
            prev
        in
        Some (List.sort compare_entry (e :: kept)))
      t.trie
  in
  { t with trie; count = (if !replaced then t.count else t.count + 1) }

let of_correlation (c : Correlator.t) =
  List.fold_left
    (fun t e -> add e t)
    (empty ~vantages:c.Correlator.c_vantages)
    c.Correlator.c_entries

let vantages t = t.roster
let count t = t.count

let entries t =
  List.rev
    (Prefix_trie.fold (fun _ es acc -> List.rev_append es acc) t.trie [])

(* ------------------------------------------------------------------ *)
(* Queries *)

type query = {
  q_prefix : Prefix.t option;
  q_covered : bool;
  q_origin : Asn.t option;
  q_since : int option;
  q_until : int option;
  q_min_visibility : int option;
}

let query_all =
  {
    q_prefix = None;
    q_covered = false;
    q_origin = None;
    q_since = None;
    q_until = None;
    q_min_visibility = None;
  }

let matches q (e : Correlator.entry) =
  let hi = Option.value e.Correlator.x_ended ~default:max_int in
  (match q.q_origin with
  | Some a -> Asn.Set.mem a e.Correlator.x_origins
  | None -> true)
  && (match q.q_since with Some s -> hi >= s | None -> true)
  && (match q.q_until with Some u -> e.Correlator.x_started <= u | None -> true)
  && (match q.q_min_visibility with
     | Some k -> Correlator.visibility e >= k
     | None -> true)

let query t q =
  let candidates =
    match q.q_prefix with
    | None -> entries t
    | Some p when q.q_covered ->
      List.concat_map (fun (_, es) -> es) (Prefix_trie.covered p t.trie)
    | Some p -> Option.value (Prefix_trie.find_opt p t.trie) ~default:[]
  in
  List.filter (matches q) candidates

let parse_query s =
  let parse_clause q clause =
    match String.index_opt clause '=' with
    | None -> Error (Printf.sprintf "clause %S is not key=value" clause)
    | Some i -> (
      let key = String.sub clause 0 i in
      let value = String.sub clause (i + 1) (String.length clause - i - 1) in
      let int_of name =
        match int_of_string_opt value with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "%s=%S is not an integer" name value)
      in
      match key with
      | "prefix" -> (
        match Prefix.of_string value with
        | p -> Ok { q with q_prefix = Some p }
        | exception _ -> Error (Printf.sprintf "bad prefix %S" value))
      | "covered" -> (
        match bool_of_string_opt value with
        | Some b -> Ok { q with q_covered = b }
        | None -> Error (Printf.sprintf "covered=%S is not a boolean" value))
      | "origin" -> (
        match int_of_string_opt value with
        | Some v -> (
          try Ok { q with q_origin = Some (Asn.make v) }
          with Invalid_argument _ -> Error (Printf.sprintf "bad AS %S" value))
        | None -> Error (Printf.sprintf "origin=%S is not an AS number" value))
      | "since" -> Result.map (fun v -> { q with q_since = Some v }) (int_of "since")
      | "until" -> Result.map (fun v -> { q with q_until = Some v }) (int_of "until")
      | "min_visibility" ->
        Result.map
          (fun v -> { q with q_min_visibility = Some v })
          (int_of "min_visibility")
      | _ -> Error (Printf.sprintf "unknown query key %S" key))
  in
  let clauses =
    List.filter (fun c -> c <> "") (String.split_on_char ',' (String.trim s))
  in
  List.fold_left
    (fun acc clause -> Result.bind acc (fun q -> parse_clause q clause))
    (Ok query_all) clauses

(* ------------------------------------------------------------------ *)
(* Binary encoding — the Stream.Checkpoint idiom, magic MOASSTOR *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_u16 buf v =
  put_u8 buf (v lsr 8);
  put_u8 buf v

let put_u32 buf v =
  put_u16 buf (v lsr 16);
  put_u16 buf (v land 0xffff)

let put_i63 buf v =
  if v < 0 then invalid_arg "Collect.Store: negative integer";
  put_u32 buf (v lsr 32);
  put_u32 buf (v land 0xffffffff)

let put_asn buf a = put_u16 buf (Asn.to_int a)

let put_asn_set buf s =
  put_u32 buf (Asn.Set.cardinal s);
  Asn.Set.iter (put_asn buf) s

let put_prefix buf p =
  put_u32 buf (Ipv4.to_int (Prefix.network p));
  put_u8 buf (Prefix.length p)

let put_option buf put = function
  | None -> put_u8 buf 0
  | Some v ->
    put_u8 buf 1;
    put buf v

let put_list buf put l =
  put_u32 buf (List.length l);
  List.iter (put buf) l

let put_string buf s =
  put_u16 buf (String.length s);
  Buffer.add_string buf s

let put_entry buf (e : Correlator.entry) =
  put_prefix buf e.Correlator.x_prefix;
  put_i63 buf e.Correlator.x_seq;
  put_i63 buf e.Correlator.x_started;
  put_option buf put_i63 e.Correlator.x_ended;
  put_i63 buf e.Correlator.x_days;
  put_u32 buf e.Correlator.x_max_origins;
  put_asn_set buf e.Correlator.x_origins;
  put_u8 buf (if e.Correlator.x_clean then 1 else 0);
  put_list buf put_string e.Correlator.x_seen_by;
  put_option buf put_i63 e.Correlator.x_first_detect;
  put_option buf put_i63 e.Correlator.x_last_detect

let encode t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  put_u8 buf version;
  put_list buf put_string t.roster;
  put_list buf put_entry (entries t);
  Buffer.to_bytes buf

type cursor = { data : bytes; mutable pos : int }

let take_u8 c =
  if c.pos >= Bytes.length c.data then corrupt "truncated at octet %d" c.pos;
  let v = Char.code (Bytes.get c.data c.pos) in
  c.pos <- c.pos + 1;
  v

let take_u16 c =
  let hi = take_u8 c in
  (hi lsl 8) lor take_u8 c

let take_u32 c =
  let hi = take_u16 c in
  (hi lsl 16) lor take_u16 c

let take_i63 c =
  let hi = take_u32 c in
  (hi lsl 32) lor take_u32 c

let take_asn c =
  let v = take_u16 c in
  try Asn.make v with Invalid_argument _ -> corrupt "AS number %d" v

let take_asn_set c =
  let n = take_u32 c in
  let rec loop acc k =
    if k = 0 then acc else loop (Asn.Set.add (take_asn c) acc) (k - 1)
  in
  loop Asn.Set.empty n

let take_prefix c =
  let net = take_u32 c in
  let len = take_u8 c in
  if len > 32 then corrupt "prefix length %d" len;
  Prefix.make (Ipv4.of_int net) len

let take_option c take =
  match take_u8 c with
  | 0 -> None
  | 1 -> Some (take c)
  | t -> corrupt "option tag %d" t

let take_list c take =
  let n = take_u32 c in
  let rec loop acc k =
    if k = 0 then List.rev acc else loop (take c :: acc) (k - 1)
  in
  loop [] n

let take_string c =
  let n = take_u16 c in
  if c.pos + n > Bytes.length c.data then corrupt "truncated string at %d" c.pos;
  let s = Bytes.sub_string c.data c.pos n in
  c.pos <- c.pos + n;
  s

let take_entry c : Correlator.entry =
  let x_prefix = take_prefix c in
  let x_seq = take_i63 c in
  let x_started = take_i63 c in
  let x_ended = take_option c take_i63 in
  let x_days = take_i63 c in
  let x_max_origins = take_u32 c in
  let x_origins = take_asn_set c in
  let x_clean = take_u8 c = 1 in
  let x_seen_by = take_list c take_string in
  let x_first_detect = take_option c take_i63 in
  let x_last_detect = take_option c take_i63 in
  {
    Correlator.x_prefix;
    x_seq;
    x_started;
    x_ended;
    x_days;
    x_max_origins;
    x_origins;
    x_clean;
    x_seen_by;
    x_first_detect;
    x_last_detect;
  }

let decode data =
  let c = { data; pos = 0 } in
  if Bytes.length data < String.length magic then corrupt "not an episode store";
  String.iter
    (fun ch -> if take_u8 c <> Char.code ch then corrupt "bad magic")
    magic;
  let v = take_u8 c in
  if v <> version then corrupt "unsupported store version %d" v;
  let roster = take_list c take_string in
  let es = take_list c take_entry in
  if c.pos <> Bytes.length data then
    corrupt "%d trailing octets" (Bytes.length data - c.pos);
  List.fold_left (fun t e -> add e t) (empty ~vantages:roster) es

let write_file path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (encode t))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let data = Bytes.create n in
      really_input ic data 0 n;
      decode data)

(* ------------------------------------------------------------------ *)

let render t =
  let buf = Buffer.create 1024 in
  let n = List.length t.roster in
  Buffer.add_string buf "=== Episode store ===\n";
  Buffer.add_string buf
    (Printf.sprintf "vantages: %d (%s)\n" n (String.concat " " t.roster));
  Buffer.add_string buf (Printf.sprintf "entries: %d\n" t.count);
  List.iter
    (fun (e : Correlator.entry) ->
      let origins =
        Asn.Set.elements e.Correlator.x_origins
        |> List.map Asn.to_string |> String.concat ","
      in
      let ended =
        match e.Correlator.x_ended with
        | Some v -> string_of_int v
        | None -> "open"
      in
      Buffer.add_string buf
        (Printf.sprintf "%s#%d [%d..%s] origins={%s} %s visibility=%d/%d\n"
           (Prefix.to_string e.Correlator.x_prefix)
           e.Correlator.x_seq e.Correlator.x_started ended origins
           (if e.Correlator.x_clean then "clean" else "FLAGGED")
           (Correlator.visibility e) n))
    (entries t);
  Buffer.contents buf
