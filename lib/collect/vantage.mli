(** A collection vantage point: one RouteViews-style collector peered to a
    chosen set of ASes of a {!Bgp.Network}, recording their export streams
    as timestamped {!Stream.Monitor} events.

    The vantage taps the network's {!Bgp.Network.set_update_tap} hook and
    keeps, per (feed AS, prefix), the origin last exported — collapsing
    the per-destination fan-out of one advertisement — plus a refcount of
    feeds currently carrying each (prefix, origin).  Emitted events are
    origin-level transitions of that refcounted view: an origin appears
    when its first feed reports it and is withdrawn only when its last
    feed drops it, so two feeds disagreeing on the best route make the
    vantage see both origins at once — the collector's-eye MOAS the
    paper's multi-vantage argument relies on.  Event times are the engine
    clock in integer milliseconds ({!millis}).

    The second half of the module replays the synthetic RouteViews archive
    as a mesh workload: {!replay} deterministically splits the archive's
    update stream over N simulated collectors, every event reaching at
    least one of them. *)

open Net

type spec = { v_name : string; v_peers : Asn.Set.t }
(** A vantage declaration: a unique name and the ASes it peers with. *)

val spec : name:string -> Asn.t list -> spec
(** @raise Invalid_argument on an empty name or peer list. *)

type t
(** A live recorder, produced by {!attach}. *)

val attach : ?metrics:Obs.Registry.t -> Bgp.Network.t -> spec list -> t list
(** Install the network's update tap and return one recorder per spec, in
    spec order.  Updates emitted by an AS no vantage peers with are counted
    on [metrics] as [collect_updates_dropped] (registered lazily, only when
    one is actually dropped); recorded events bump [collect_events_total]
    labelled by vantage.  Replaces any previously installed tap.
    @raise Invalid_argument on duplicate vantage names or a peer outside
    the network's topology. *)

val name : t -> string
val peers : t -> Asn.Set.t

val events : t -> Stream.Monitor.event array
(** Everything recorded so far, in capture order (non-decreasing time). *)

val event_count : t -> int

val streams : t list -> (string * Stream.Monitor.event array) list
(** [(name, events)] per vantage — the input shape {!Mesh.run} consumes. *)

val millis : float -> int
(** Engine seconds to the integer milliseconds used as event time. *)

val replay :
  ?coverage:float ->
  vantages:int ->
  seed:int64 ->
  Stream.Source.batch array ->
  (string * Stream.Monitor.event array) list
(** Split an archive's event stream over [vantages] simulated collectors
    ["rv00"], ["rv01"], ….  Each event independently reaches each vantage
    with probability [coverage] (default 1.0: every collector sees the full
    feed) and is always forced to at least one deterministically chosen
    vantage, so the deduplicated union of the per-vantage streams is
    exactly the input stream.  Deterministic from [seed].
    @raise Invalid_argument on [vantages < 1] or [coverage] outside
    [0,1]. *)
