(** The per-router MOAS conflict detector — the paper's core mechanism
    (Section 4.2), packaged as a {!Bgp.Router.validator}.

    On every decision the detector compares the MOAS lists of all candidate
    routes for the prefix (a route without a list counts as carrying the
    implicit list [{origin}], footnote 3).  When the lists disagree it
    raises an {!Alarm.t}; with a verification {!backend} it then discards
    every candidate whose origin is not entitled, which stops the false
    route from being selected or propagated — the behaviour assumed in the
    paper's Experiment 1.  With {!Detect_only} (the default) the detector
    alarms but lets BGP proceed (the off-line monitoring deployment of
    Section 4.2). *)

open Net

type t
(** Detector state for one router. *)

type verify = now:float -> Prefix.t -> Asn.Set.t option
(** A pluggable origin-verification backend: the entitled origin set for
    the prefix, or [None] when no verdict can be obtained (the detector
    then fails open).  {!Origin_verification} and a DNS MOASRR lookup are
    the two backends used in the experiments. *)

type backend =
  | Oracle of Origin_verification.t
      (** consult the origin registry on every conflict *)
  | Custom of verify  (** a caller-supplied backend, e.g. a DNS lookup *)
  | Detect_only  (** alarm but never filter (off-line monitoring) *)
  | Community of Community_watch.t
      (** judge community {e dynamics} instead of MOAS lists: every
          candidate is fed to the watch, each anomaly raises an alarm
          whose conflicting lists are the established-vs-observed tagger
          sets, and routing is never filtered.  This backend keeps
          detecting when transit ASes scrub the community attribute and
          the list check of Section 4.2 goes blind (Section 4.3); pair it
          with [~check_self_consistency:false], as list checks do not
          apply. *)
(** What the detector does after alarming.  One explicit variant instead
    of the former [?oracle]/[?verify] optional-argument pair, whose
    silent precedence rule ([verify] won when both were given) was a
    footgun. *)

val create :
  ?backend:backend ->
  ?on_alarm:(Alarm.t -> unit) ->
  ?check_self_consistency:bool ->
  ?metrics:Obs.Registry.t ->
  self:Asn.t ->
  unit ->
  t
(** A detector for the router of AS [self].  [backend] (default
    {!Detect_only}) is consulted on conflicts.  [on_alarm] is invoked once
    per distinct conflict signature (repeated BGP churn over the same
    conflict does not re-alarm).  [check_self_consistency] (default true)
    also rejects routes whose carried list omits their own origin — a
    local check needing no second opinion.

    [metrics] (default {!Obs.Registry.noop}) receives per-AS counters
    labelled [("as", self)]: [moas_alarms], [moas_verify_calls] and
    [moas_routes_discarded]. *)

val validator : t -> Bgp.Router.validator
(** The validation function to install on the router. *)

val alarms : t -> Alarm.t list
(** Alarms raised so far, oldest first. *)

val alarm_count : t -> int
(** Number of alarms raised. *)

val reset : t -> unit
(** Forget alarms and de-duplication state. *)
