open Net

module StringSet = Set.Make (String)

type verify = now:float -> Prefix.t -> Asn.Set.t option

type backend =
  | Oracle of Origin_verification.t
  | Custom of verify
  | Detect_only
  | Community of Community_watch.t

type t = {
  self : Asn.t;
  verifier : verify option;
  watch : Community_watch.t option;
  on_alarm : Alarm.t -> unit;
  check_self_consistency : bool;
  mutable seen_signatures : StringSet.t;
  mutable alarms_rev : Alarm.t list;
  mutable alarm_count : int;
  (* entitled origin sets learned from the oracle; the MOASRR record does
     not evaporate once read, so the verdict is remembered and applied to
     every later candidate — this also keeps the filter monotone, which
     guarantees BGP convergence under partial deployment *)
  mutable verified : Asn.Set.t Prefix.Map.t;
  (* observability handles, inert when the registry is the noop *)
  alarms_c : Obs.Registry.Counter.t;
  verify_calls_c : Obs.Registry.Counter.t;
  discarded_c : Obs.Registry.Counter.t;
}

let create ?(backend = Detect_only) ?(on_alarm = fun _ -> ())
    ?(check_self_consistency = true) ?(metrics = Obs.Registry.noop) ~self () =
  let verifier =
    match backend with
    | Custom v -> Some v
    | Oracle oracle ->
      Some (fun ~now:_ prefix -> Origin_verification.query oracle prefix)
    | Detect_only | Community _ -> None
  in
  let watch = match backend with Community w -> Some w | _ -> None in
  let labels = [ ("as", Asn.to_string self) ] in
  {
    self;
    verifier;
    watch;
    on_alarm;
    check_self_consistency;
    seen_signatures = StringSet.empty;
    alarms_rev = [];
    alarm_count = 0;
    verified = Prefix.Map.empty;
    alarms_c = Obs.Registry.counter metrics ~labels "moas_alarms";
    verify_calls_c = Obs.Registry.counter metrics ~labels "moas_verify_calls";
    discarded_c =
      Obs.Registry.counter metrics ~labels "moas_routes_discarded";
  }

let distinct_lists lists =
  List.sort_uniq Asn.Set.compare lists

let raise_alarm t ~now ~prefix ~lists ~origins =
  let alarm =
    Alarm.make ~observer:t.self ~prefix ~time:now ~conflicting_lists:lists
      ~origins_seen:origins
  in
  let signature = Alarm.signature alarm in
  if not (StringSet.mem signature t.seen_signatures) then begin
    t.seen_signatures <- StringSet.add signature t.seen_signatures;
    t.alarms_rev <- alarm :: t.alarms_rev;
    t.alarm_count <- t.alarm_count + 1;
    Obs.Registry.Counter.incr t.alarms_c;
    t.on_alarm alarm
  end

let filter_entitled t entitled routes =
  let kept =
    List.filter
      (fun r -> Asn.Set.mem (Bgp.Route.origin_as ~self:t.self r) entitled)
      routes
  in
  Obs.Registry.Counter.add t.discarded_c
    (List.length routes - List.length kept);
  kept

(* the Community backend replaces the list-consistency machinery wholesale:
   the watch judges community dynamics, each anomaly becomes an alarm (the
   established vs observed tagger sets standing in for conflicting lists),
   and routing is never filtered — community telemetry alone cannot say
   which origin is entitled, only that something moved *)
let community_validator t watch : Bgp.Router.validator =
 fun ~now ~prefix routes ->
  let anomalies = Community_watch.observe watch ~now ~prefix routes in
  List.iter
    (fun a ->
      let lists =
        distinct_lists
          [
            a.Community_watch.a_taggers_before; a.Community_watch.a_taggers_now;
          ]
      in
      raise_alarm t ~now ~prefix ~lists ~origins:a.Community_watch.a_origins)
    anomalies;
  routes

let validator t : Bgp.Router.validator =
 fun ~now ~prefix routes ->
  match t.watch with
  | Some watch -> community_validator t watch ~now ~prefix routes
  | None ->
  let routes =
    if t.check_self_consistency then
      List.filter (Moas_list.self_consistent ~self:t.self) routes
    else routes
  in
  (* a verdict already obtained from the registry applies permanently *)
  let routes =
    match Prefix.Map.find_opt prefix t.verified with
    | Some entitled -> filter_entitled t entitled routes
    | None -> routes
  in
  let lists =
    distinct_lists (List.map (Moas_list.effective ~self:t.self) routes)
  in
  if Moas_list.all_consistent lists then routes
  else begin
    let origins =
      List.fold_left
        (fun acc r -> Asn.Set.add (Bgp.Route.origin_as ~self:t.self r) acc)
        Asn.Set.empty routes
    in
    raise_alarm t ~now ~prefix ~lists ~origins;
    match t.verifier with
    | None -> routes (* detect-only deployment: alarm but do not filter *)
    | Some verify ->
      Obs.Registry.Counter.incr t.verify_calls_c;
      (match verify ~now prefix with
      | None -> routes (* no verdict obtainable: fail open *)
      | Some entitled ->
        t.verified <- Prefix.Map.add prefix entitled t.verified;
        filter_entitled t entitled routes)
  end

let alarms t = List.rev t.alarms_rev

let alarm_count t = t.alarm_count

let reset t =
  t.seen_signatures <- StringSet.empty;
  t.alarms_rev <- [];
  t.alarm_count <- 0
