open Net

module StringSet = Set.Make (String)

type reason = Tagger_churn | Origin_retag | Scrub_event | Path_inconsistency

let reason_to_string = function
  | Tagger_churn -> "tagger-churn"
  | Origin_retag -> "origin-retag"
  | Scrub_event -> "scrub-event"
  | Path_inconsistency -> "path-inconsistency"

let all_reasons =
  [ Tagger_churn; Origin_retag; Scrub_event; Path_inconsistency ]

type anomaly = {
  a_prefix : Prefix.t;
  a_time : float;
  a_reason : reason;
  a_origin : Asn.t;  (** the origin of the route that tripped the rule *)
  a_taggers_before : Asn.Set.t;  (** tagger set established for the prefix *)
  a_taggers_now : Asn.Set.t;  (** tagger set including the new evidence *)
  a_origins : Asn.Set.t;  (** every origin observed, current one included *)
}

(* per-prefix community-dynamics state *)
type prefix_state = {
  mutable values_seen : Bgp.Community.Set.t;
  mutable taggers_seen : Asn.Set.t;
  mutable origins_seen : Asn.Set.t;
  mutable had_communities : bool;
  (* the self-applied tags last observed per origin, nonempty only *)
  mutable self_tags : Bgp.Community.Set.t Asn.Map.t;
}

type t = {
  self : Asn.t;
  warmup_until : float;
  mutable prefixes : prefix_state Prefix.Map.t;
  mutable fired : StringSet.t;
  mutable anomalies_rev : anomaly list;
  mutable anomaly_count : int;
  mutable event_count : int;
  mutable reason_tally : (reason * int) list;
  events_c : Obs.Registry.Counter.t;
  alarm_counter : reason -> Obs.Registry.Counter.t;
}

let create ?(warmup_until = 0.0) ?(metrics = Obs.Registry.noop) ~self () =
  let labels = [ ("as", Asn.to_string self) ] in
  let alarm_counters =
    List.map
      (fun r ->
        ( r,
          Obs.Registry.counter metrics
            ~labels:(("reason", reason_to_string r) :: labels)
            "community_alarms_total" ))
      all_reasons
  in
  {
    self;
    warmup_until;
    prefixes = Prefix.Map.empty;
    fired = StringSet.empty;
    anomalies_rev = [];
    anomaly_count = 0;
    event_count = 0;
    reason_tally = List.map (fun r -> (r, 0)) all_reasons;
    events_c = Obs.Registry.counter metrics ~labels "community_events_total";
    alarm_counter = (fun r -> List.assoc r alarm_counters);
  }

let self t = t.self
let warmup_until t = t.warmup_until

let state_for t prefix =
  match Prefix.Map.find_opt prefix t.prefixes with
  | Some st -> st
  | None ->
    let st =
      {
        values_seen = Bgp.Community.Set.empty;
        taggers_seen = Asn.Set.empty;
        origins_seen = Asn.Set.empty;
        had_communities = false;
        self_tags = Asn.Map.empty;
      }
    in
    t.prefixes <- Prefix.Map.add prefix st t.prefixes;
    st

(* The dynamics deliberately ignore two kinds of community value: MOAS-list
   members (that is the other detector's signal — this one must work when
   the list is scrubbed away) and the RFC 1997 reserved range. *)
let relevant_values communities =
  Bgp.Community.Set.filter
    (fun c ->
      c.Bgp.Community.value <> Moas_list.ml_val
      && not (Asn.equal c.Bgp.Community.asn Bgp.Community.well_known_asn))
    communities

let taggers_of values =
  Bgp.Community.Set.fold
    (fun c acc -> Asn.Set.add c.Bgp.Community.asn acc)
    values Asn.Set.empty

let fire t ~prefix ~now ~reason ~origin ~before ~evidence ~origins =
  let signature =
    Printf.sprintf "%s|%s|%s" (Prefix.to_string prefix)
      (reason_to_string reason) (Asn.to_string origin)
  in
  if StringSet.mem signature t.fired then None
  else begin
    t.fired <- StringSet.add signature t.fired;
    let anomaly =
      {
        a_prefix = prefix;
        a_time = now;
        a_reason = reason;
        a_origin = origin;
        a_taggers_before = before;
        a_taggers_now = Asn.Set.union before evidence;
        a_origins = origins;
      }
    in
    t.anomalies_rev <- anomaly :: t.anomalies_rev;
    t.anomaly_count <- t.anomaly_count + 1;
    t.reason_tally <-
      List.map
        (fun (r, n) -> if r = reason then (r, n + 1) else (r, n))
        t.reason_tally;
    Obs.Registry.Counter.incr (t.alarm_counter reason);
    Some anomaly
  end

let observe_route t ~now ~prefix ~origin ?path communities =
  t.event_count <- t.event_count + 1;
  Obs.Registry.Counter.incr t.events_c;
  let st = state_for t prefix in
  let values = relevant_values communities in
  let taggers = taggers_of values in
  let new_values = Bgp.Community.Set.diff values st.values_seen in
  let new_taggers = Asn.Set.diff taggers st.taggers_seen in
  let known_origin = Asn.Set.mem origin st.origins_seen in
  let own_tags =
    Bgp.Community.Set.filter
      (fun c -> Asn.equal c.Bgp.Community.asn origin)
      values
  in
  let origins = Asn.Set.add origin st.origins_seen in
  let warm = now >= t.warmup_until in
  let found = ref [] in
  let fire ~reason ~evidence =
    match
      fire t ~prefix ~now ~reason ~origin ~before:st.taggers_seen ~evidence
        ~origins
    with
    | Some a -> found := a :: !found
    | None -> ()
  in
  if warm then begin
    if not known_origin then begin
      (* a brand-new origin judged purely on community evidence: it brings
         values or taggers never associated with the prefix — or arrives
         conspicuously bare while the prefix has an established tag
         profile (the hijacker who strips what it cannot forge) *)
      if
        (not (Bgp.Community.Set.is_empty new_values))
        || (not (Asn.Set.is_empty new_taggers))
        || (Bgp.Community.Set.is_empty values && st.had_communities)
      then fire ~reason:Tagger_churn ~evidence:taggers
    end
    else begin
      (* a known origin whose own stamp changed: retagging is rare enough
         in practice that a flip is a signal, while a missing stamp is
         not (scrubbers legitimately erase it) *)
      (match Asn.Map.find_opt origin st.self_tags with
      | Some profile
        when (not (Bgp.Community.Set.is_empty own_tags))
             && not (Bgp.Community.Set.equal own_tags profile) ->
        fire ~reason:Origin_retag ~evidence:(taggers_of own_tags)
      | _ -> ());
      (* an established community carrier suddenly arriving bare *)
      if Bgp.Community.Set.is_empty values && st.had_communities then
        fire ~reason:Scrub_event ~evidence:Asn.Set.empty
    end;
    (* a tag claimed by an AS that never forwarded the route *)
    (match path with
    | None -> ()
    | Some on_path ->
      let off_path =
        Bgp.Community.Set.filter
          (fun c ->
            let a = c.Bgp.Community.asn in
            (not (Asn.Set.mem a on_path))
            && (not (Asn.equal a origin))
            && not (Asn.equal a t.self))
          values
      in
      if not (Bgp.Community.Set.is_empty off_path) then
        fire ~reason:Path_inconsistency ~evidence:(taggers_of off_path))
  end;
  (* absorb the observation — during warmup this is the whole job *)
  st.values_seen <- Bgp.Community.Set.union st.values_seen values;
  st.taggers_seen <- Asn.Set.union st.taggers_seen taggers;
  st.origins_seen <- origins;
  st.had_communities <- st.had_communities || not (Bgp.Community.Set.is_empty values);
  if not (Bgp.Community.Set.is_empty own_tags) then
    st.self_tags <- Asn.Map.add origin own_tags st.self_tags;
  List.rev !found

let observe t ~now ~prefix routes =
  List.concat_map
    (fun route ->
      (* only routes learned from the network are telemetry: a router's
         own originations are untagged by construction and would read as
         spurious scrub events next to their tagged echoes *)
      if Asn.equal route.Bgp.Route.learned_from t.self then []
      else
        observe_route t ~now ~prefix
          ~origin:(Bgp.Route.origin_as ~self:t.self route)
          ~path:(Bgp.As_path.ases route.Bgp.Route.as_path)
          route.Bgp.Route.communities)
    routes

let anomalies t = List.rev t.anomalies_rev
let anomaly_count t = t.anomaly_count
let event_count t = t.event_count
let reason_counts t = t.reason_tally

let reset t =
  t.prefixes <- Prefix.Map.empty;
  t.fired <- StringSet.empty;
  t.anomalies_rev <- [];
  t.anomaly_count <- 0;
  t.event_count <- 0;
  t.reason_tally <- List.map (fun r -> (r, 0)) all_reasons
