(** Community-dynamics hijack detection (the CommunityWatch idea): flag a
    prefix whose BGP community telemetry changes in ways benign routing
    does not produce, {e without} relying on the MOAS list.  This is the
    counterpart to the paper's Section 4.3 weakness — a transit AS that
    scrubs the community attribute erases the MOAS list, but the tags the
    surviving ASes keep applying (and the sudden bareness itself) still
    move, so dynamics-based rules keep working where the list check goes
    blind.

    The watch keeps per-prefix state — every community value, tagger AS
    and origin seen, plus each origin's own stamp — and judges
    observations against four rules after a configurable warmup:

    - {e tagger-churn}: a never-seen origin arrives carrying values or
      tagger ASes new to the prefix, or arrives conspicuously bare while
      the prefix has an established community profile;
    - {e origin-retag}: a known origin's self-applied stamp flips to a
      different nonempty set (a missing stamp is {e not} a flip —
      scrubbers legitimately erase it);
    - {e scrub-event}: a prefix that always carried communities suddenly
      arrives bare from a known origin;
    - {e path-inconsistency}: a community claims an AS that is neither on
      the AS path, the origin, nor the observer.

    New values from known origins are absorbed silently: routine
    rerouting and fault churn constantly retag routes through new ingress
    points, and alarming on that would drown the signal.  MOAS-list
    member values and the RFC 1997 reserved range are ignored entirely —
    the former is the other detector's evidence, the latter carries
    routing directives, not telemetry.

    Each rule fires at most once per (prefix, origin); observations made
    before [warmup_until] only build state.  All state is deterministic
    in the observation sequence, so parallel sweeps replaying identical
    streams report identically. *)

open Net

type reason = Tagger_churn | Origin_retag | Scrub_event | Path_inconsistency

val reason_to_string : reason -> string
(** ["tagger-churn"], ["origin-retag"], ["scrub-event"],
    ["path-inconsistency"]. *)

val all_reasons : reason list
(** The four rules, in declaration order. *)

type anomaly = {
  a_prefix : Prefix.t;
  a_time : float;
  a_reason : reason;
  a_origin : Asn.t;  (** the origin of the route that tripped the rule *)
  a_taggers_before : Asn.Set.t;  (** tagger set established for the prefix *)
  a_taggers_now : Asn.Set.t;  (** tagger set including the new evidence *)
  a_origins : Asn.Set.t;  (** every origin observed, current one included *)
}

type t
(** Watch state for one observation point. *)

val create :
  ?warmup_until:float -> ?metrics:Obs.Registry.t -> self:Asn.t -> unit -> t
(** A watch observing at AS [self].  Observations before [warmup_until]
    (default 0: no warmup) build the baseline silently.  [metrics]
    (default noop) receives counters labelled [("as", self)]:
    [community_events_total] per observation and
    [community_alarms_total] with an extra [reason] label per anomaly. *)

val self : t -> Asn.t
(** The observing AS. *)

val warmup_until : t -> float
(** The configured warmup horizon. *)

val observe_route :
  t ->
  now:float ->
  prefix:Prefix.t ->
  origin:Asn.t ->
  ?path:Asn.Set.t ->
  Bgp.Community.Set.t ->
  anomaly list
(** Feed one observed route's community set; returns the anomalies this
    observation newly triggered (deduplication already applied).  [path]
    is the set of on-path ASes; omitting it skips the path-inconsistency
    rule (archive replays without full paths). *)

val observe :
  t -> now:float -> prefix:Prefix.t -> Bgp.Route.t list -> anomaly list
(** {!observe_route} over a candidate set, the {!Detector} hook: origin
    and path are taken from each route.  Locally-originated candidates
    are skipped — only routes learned from the network are telemetry. *)

val anomalies : t -> anomaly list
(** Anomalies so far, oldest first. *)

val anomaly_count : t -> int
(** Number of anomalies raised. *)

val event_count : t -> int
(** Number of observations processed (the throughput denominator —
    available even when metrics are the noop registry). *)

val reason_counts : t -> (reason * int) list
(** Per-rule anomaly counts, in {!all_reasons} order. *)

val reset : t -> unit
(** Forget all per-prefix state, deduplication and anomalies. *)
