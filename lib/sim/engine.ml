type t = {
  mutable clock : float;
  mutable executed : int;
  queue : handler Event_queue.t;
  mutable queue_hwm : int;
  (* observability: the registry is Obs.Registry.noop by default, in which
     case every handle below is inert and [live] lets the run loop skip
     even the wall-clock reads *)
  metrics : Obs.Registry.t;
  live : bool;
  wall_clock : unit -> float;
  events_c : Obs.Registry.Counter.t;
  queue_hwm_g : Obs.Registry.Gauge.t;
  run_wall_g : Obs.Registry.Gauge.t;
  wall_per_10k_h : Obs.Registry.Histogram.t;
}

and handler = t -> unit

(* one histogram observation per this many executed events *)
let wall_block = 10_000

let create ?(metrics = Obs.Registry.noop) ?(wall_clock = Sys.time) () =
  {
    clock = 0.0;
    executed = 0;
    queue = Event_queue.create ();
    queue_hwm = 0;
    metrics;
    live = not (Obs.Registry.is_noop metrics);
    wall_clock;
    events_c = Obs.Registry.counter metrics "sim_events_executed";
    queue_hwm_g = Obs.Registry.gauge metrics "sim_queue_depth_hwm";
    run_wall_g = Obs.Registry.gauge metrics "sim_run_wall_s";
    wall_per_10k_h = Obs.Registry.histogram metrics "sim_wall_s_per_10k_events";
  }

let now t = t.clock
let metrics t = t.metrics

let note_depth t =
  let depth = Event_queue.length t.queue in
  if depth > t.queue_hwm then t.queue_hwm <- depth

let schedule t ~delay h =
  if delay < 0.0 || Float.is_nan delay then
    invalid_arg "Engine.schedule: negative delay";
  Event_queue.push t.queue ~time:(t.clock +. delay) h;
  note_depth t

let schedule_at t ~time h =
  if time < t.clock || Float.is_nan time then
    invalid_arg "Engine.schedule_at: time in the past";
  Event_queue.push t.queue ~time h;
  note_depth t

(* Cancellation is a wrapper, not a queue operation: the entry stays in the
   heap (removal from a binary heap is O(n)) and its handler checks the
   handle when popped.  A cancelled event therefore still counts as one
   executed event when its (empty) slot is reached. *)
type handle = { mutable armed : bool }

let cancel handle = handle.armed <- false
let is_cancelled handle = not handle.armed

let guard handle h engine = if handle.armed then h engine

let schedule_cancellable t ~delay h =
  let handle = { armed = true } in
  schedule t ~delay (guard handle h);
  handle

let schedule_at_cancellable t ~time h =
  let handle = { armed = true } in
  schedule_at t ~time (guard handle h);
  handle

let pending t = Event_queue.length t.queue
let events_executed t = t.executed
let queue_high_water t = t.queue_hwm

type outcome = Quiescent | Event_limit_reached | Time_limit_reached

let run ?(max_events = max_int) ?(until = infinity) t =
  let wall_start = if t.live then t.wall_clock () else 0.0 in
  let block_start = ref wall_start in
  let start_executed = t.executed in
  let rec loop budget =
    if budget <= 0 then Event_limit_reached
    else
      match Event_queue.peek_time t.queue with
      | None -> Quiescent
      | Some time when time > until -> Time_limit_reached
      | Some _ ->
        (match Event_queue.pop t.queue with
        | None -> Quiescent
        | Some (time, h) ->
          t.clock <- time;
          t.executed <- t.executed + 1;
          h t;
          if t.live && (t.executed - start_executed) mod wall_block = 0 then begin
            let now = t.wall_clock () in
            Obs.Registry.Histogram.observe t.wall_per_10k_h (now -. !block_start);
            block_start := now
          end;
          loop (budget - 1))
  in
  let outcome = loop max_events in
  if t.live then begin
    Obs.Registry.Counter.add t.events_c (t.executed - start_executed);
    Obs.Registry.Gauge.observe_max t.queue_hwm_g (float_of_int t.queue_hwm);
    Obs.Registry.Gauge.add t.run_wall_g (t.wall_clock () -. wall_start)
  end;
  outcome

let reset t =
  Event_queue.clear t.queue;
  t.clock <- 0.0;
  t.executed <- 0;
  t.queue_hwm <- 0
