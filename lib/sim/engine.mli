(** Discrete-event simulation engine in the style of SSFnet's scheduler:
    handlers schedule further events; the engine runs events in timestamp
    order until the queue drains (quiescence) or a limit is hit. *)

type t
(** An engine instance with its own clock and event queue. *)

type handler = t -> unit
(** An event is an arbitrary callback; it may schedule more events. *)

val create : ?metrics:Obs.Registry.t -> ?wall_clock:(unit -> float) -> unit -> t
(** A fresh engine with the clock at 0.  [metrics] (default
    {!Obs.Registry.noop}) receives the engine's instrumentation:

    - counter [sim_events_executed] — events executed across runs;
    - gauge [sim_queue_depth_hwm] — pending-queue high-water mark;
    - gauge [sim_run_wall_s] — accumulated wall time spent inside {!run};
    - histogram [sim_wall_s_per_10k_events] — wall time per block of
      10 000 executed events.

    With the no-op registry the run loop pays nothing (and never reads
    [wall_clock], which defaults to [Sys.time]). *)

val now : t -> float
(** Current simulation time. *)

val metrics : t -> Obs.Registry.t
(** The registry the engine reports into ({!Obs.Registry.noop} unless one
    was passed to {!create}). *)

val schedule : t -> delay:float -> handler -> unit
(** [schedule t ~delay h] runs [h] at [now t +. delay].
    @raise Invalid_argument on a negative delay. *)

val schedule_at : t -> time:float -> handler -> unit
(** Schedule at an absolute time, which must not be in the past. *)

type handle
(** A cancellation handle for an event scheduled with
    {!schedule_cancellable} or {!schedule_at_cancellable}. *)

val schedule_cancellable : t -> delay:float -> handler -> handle
(** Like {!schedule}, returning a handle that can retract the event before
    it fires.  The fault injector uses this so that e.g. a link repair can
    cancel a pending flap cycle. *)

val schedule_at_cancellable : t -> time:float -> handler -> handle
(** Like {!schedule_at} with a cancellation handle. *)

val cancel : handle -> unit
(** Retract the event: when its queue slot is reached the handler is
    skipped.  Idempotent; safe after the event already fired and safe
    across {!reset} (the queue entry is gone, the handle is inert).  A
    cancelled-but-reached slot still counts towards {!events_executed}. *)

val is_cancelled : handle -> bool
(** Whether {!cancel} was called on the handle. *)

val pending : t -> int
(** Number of scheduled events not yet executed. *)

val events_executed : t -> int
(** Total number of events executed so far. *)

val queue_high_water : t -> int
(** Largest pending-queue depth observed since creation (or {!reset}). *)

type outcome =
  | Quiescent  (** The queue drained: the system converged. *)
  | Event_limit_reached  (** Stopped after executing the event budget. *)
  | Time_limit_reached  (** Stopped upon passing the time horizon. *)

val run : ?max_events:int -> ?until:float -> t -> outcome
(** Execute events in order.  [max_events] bounds the number of events
    (default unlimited); [until] is a time horizon: events strictly later
    than it remain queued.  Returns why the run stopped. *)

val reset : t -> unit
(** Clear the queue, rewind the clock to 0, and zero the executed-event
    counter and queue high-water mark: the engine is indistinguishable
    from a fresh {!create} (registered metrics keep their accumulated
    values — the registry outlives engine resets). *)
