open Net
module Registry = Obs.Registry
module Query = Collect.Query
module Store = Collect.Store

type subscription = { sub_id : int; sub_query : Query.t }

type session = {
  sid : int;
  mutable subs : subscription list;  (* ascending sub_id *)
  mutable outbox : bytes list;  (* encoded Alert frames, newest first *)
  mutable next_sub : int;
}

type t = {
  store : Store.t;
  lock : Mutex.t;
  sessions : (int, session) Hashtbl.t;
  mutable next_sid : int;
  live : Stream.Sharded.t;
  mutable live_prev : Stream.Monitor.snapshot;
  mutable live_batches : int;
  metrics : Registry.t;
  m_requests : (string * Registry.Counter.t) list;
  m_malformed : Registry.Counter.t;
  m_alerts : Registry.Counter.t;
  g_inflight : Registry.Gauge.t;
  g_sessions : Registry.Gauge.t;
  h_request : Registry.Histogram.t;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let request_kinds = [ "ping"; "query"; "count"; "subscribe"; "unsubscribe"; "stats" ]

let create ?(metrics = Registry.noop) ?live_config ?(live_jobs = 1) ~store () =
  let live_config =
    match live_config with
    | Some c -> c
    | None -> Stream.Monitor.default_config
  in
  let live = Stream.Sharded.create ~jobs:live_jobs live_config in
  {
    store;
    lock = Mutex.create ();
    sessions = Hashtbl.create 16;
    next_sid = 1;
    live;
    live_prev = Stream.Monitor.empty_snapshot live_config;
    live_batches = 0;
    metrics;
    (* instruments are pre-registered so the request path never mutates
       the registry's tables (handle runs on several domains at once) *)
    m_requests =
      List.map
        (fun kind ->
          (kind, Registry.counter metrics ~labels:[ ("kind", kind) ]
                   "serve_requests_total"))
        request_kinds;
    m_malformed =
      Registry.counter metrics ~labels:[ ("kind", "malformed") ]
        "serve_requests_total";
    m_alerts = Registry.counter metrics "serve_alerts_total";
    g_inflight = Registry.gauge metrics "serve_inflight";
    g_sessions = Registry.gauge metrics "serve_sessions";
    h_request = Registry.histogram metrics "serve_request_seconds";
  }

let store t = t.store

(* {2 Sessions} *)

let open_session t =
  locked t (fun () ->
      let sid = t.next_sid in
      t.next_sid <- sid + 1;
      Hashtbl.replace t.sessions sid
        { sid; subs = []; outbox = []; next_sub = 1 };
      Registry.Gauge.set t.g_sessions
        (float_of_int (Hashtbl.length t.sessions));
      sid)

let close_session t sid =
  locked t (fun () ->
      Hashtbl.remove t.sessions sid;
      Registry.Gauge.set t.g_sessions
        (float_of_int (Hashtbl.length t.sessions)))

let session_count t = locked t (fun () -> Hashtbl.length t.sessions)

let subscription_count t =
  locked t (fun () ->
      Hashtbl.fold (fun _ s acc -> acc + List.length s.subs) t.sessions 0)

let pending t ~session =
  locked t (fun () ->
      match Hashtbl.find_opt t.sessions session with
      | None -> []
      | Some s ->
        let frames = List.rev s.outbox in
        s.outbox <- [];
        frames)

(* {2 Stats} *)

let live_batches t = locked t (fun () -> t.live_batches)

let live_stats t =
  locked t (fun () ->
      {
        Proto.st_entries = Store.count t.store;
        st_vantages = List.length (Store.vantages t.store);
        st_sessions = Hashtbl.length t.sessions;
        st_subscriptions =
          Hashtbl.fold (fun _ s acc -> acc + List.length s.subs) t.sessions 0;
        st_live_batches = t.live_batches;
        st_live_updates = Stream.Sharded.update_count t.live;
        st_live_open = Stream.Sharded.open_count t.live;
        st_live_days = Stream.Sharded.day_count t.live;
      })

(* {2 The request path} *)

let vantage_count t = List.length (Store.vantages t.store)

let execute t session req =
  match (req : Proto.request) with
  | Ping -> Proto.Pong
  | Query q ->
    Proto.Entries
      { vantage_count = vantage_count t; entries = Store.query t.store q }
  | Count q -> Proto.Count_is (List.length (Store.query t.store q))
  | Subscribe q ->
    locked t (fun () ->
        match Hashtbl.find_opt t.sessions session with
        | None -> Proto.Rejected (Printf.sprintf "unknown session %d" session)
        | Some s ->
          let sub_id = s.next_sub in
          s.next_sub <- sub_id + 1;
          s.subs <- s.subs @ [ { sub_id; sub_query = q } ];
          Proto.Subscribed sub_id)
  | Unsubscribe id ->
    locked t (fun () ->
        match Hashtbl.find_opt t.sessions session with
        | None -> Proto.Rejected (Printf.sprintf "unknown session %d" session)
        | Some s ->
          if List.exists (fun sub -> sub.sub_id = id) s.subs then begin
            s.subs <- List.filter (fun sub -> sub.sub_id <> id) s.subs;
            Proto.Unsubscribed id
          end
          else Proto.Rejected (Printf.sprintf "unknown subscription %d" id))
  | Stats -> Proto.Stats_are (live_stats t)

let handle t ~session data =
  let t0 = Unix.gettimeofday () in
  locked t (fun () -> Registry.Gauge.add t.g_inflight 1.);
  let resp =
    match Proto.decode_request data with
    | exception Proto.Corrupt msg ->
      locked t (fun () -> Registry.Counter.incr t.m_malformed);
      Proto.Rejected ("malformed request: " ^ msg)
    | req ->
      let kind = Proto.request_kind req in
      locked t (fun () ->
          match List.assoc_opt kind t.m_requests with
          | Some c -> Registry.Counter.incr c
          | None -> ());
      execute t session req
  in
  let reply = Proto.encode_response resp in
  locked t (fun () ->
      Registry.Gauge.add t.g_inflight (-1.);
      Registry.Histogram.observe t.h_request (Unix.gettimeofday () -. t0));
  reply

(* {2 The live tail} *)

(* Whether a live alert passes a subscription's query filter.  The tail
   is one merged feed, so an alert's visibility is 1: a floor above that
   can never match (cross-vantage visibility exists only in the store). *)
let alert_matches q (a : Proto.alert) =
  (match Query.target q with
  | None -> true
  | Some p ->
    if Query.wants_covered q then Prefix.subsumes p a.al_prefix
    else Prefix.compare p a.al_prefix = 0)
  && (match Query.origin_filter q with
     | None -> true
     | Some asn -> Asn.Set.mem asn a.al_origins)
  && (match Query.since_bound q with None -> true | Some s -> a.al_time >= s)
  && (match Query.until_bound q with None -> true | Some u -> a.al_time <= u)
  && match Query.visibility_floor q with None -> true | Some k -> k <= 1

module Ep_key = struct
  type t = Prefix.t * int  (* (prefix, recurrence seq) names an episode *)

  let compare (p1, s1) (p2, s2) =
    let c = Prefix.compare p1 p2 in
    if c <> 0 then c else Int.compare s1 s2
end

module Ep_map = Map.Make (Ep_key)

(* Diff consecutive monitor snapshots into alerts.  An episode key
   (prefix, seq) is stable for the episode's whole life, so:

   - open in [next], absent from [prev]'s opens  -> Opened (at start)
   - clean in [prev] (or new), flagged in [next] -> Flagged (at settle)
   - closed in [next], not closed in [prev]      -> Closed (at end),
     plus the Opened/Flagged alerts it never got to raise when the whole
     episode fell inside one batch. *)
let diff_alerts ~(prev : Stream.Monitor.snapshot)
    ~(next : Stream.Monitor.snapshot) =
  let open Stream.Monitor in
  let settle_time = next.s_last_time in
  let prev_open =
    List.fold_left
      (fun acc p ->
        match p.p_open with
        | Some o -> Ep_map.add (p.p_prefix, o.o_seq) o acc
        | None -> acc)
      Ep_map.empty prev.s_prefixes
  in
  let prev_closed =
    List.fold_left
      (fun acc e -> Ep_map.add (e.e_prefix, e.e_seq) () acc)
      Ep_map.empty prev.s_closed
  in
  let alerts = ref [] in
  let emit al_time al_prefix al_origins al_kind =
    alerts := { Proto.al_time; al_prefix; al_origins; al_kind } :: !alerts
  in
  List.iter
    (fun p ->
      match p.p_open with
      | None -> ()
      | Some o -> (
        match Ep_map.find_opt (p.p_prefix, o.o_seq) prev_open with
        | None ->
          emit o.o_started p.p_prefix o.o_origins_ever Proto.Opened;
          if not o.o_clean then
            emit settle_time p.p_prefix o.o_origins_ever Proto.Flagged
        | Some po ->
          if po.o_clean && not o.o_clean then
            emit settle_time p.p_prefix o.o_origins_ever Proto.Flagged))
    next.s_prefixes;
  List.iter
    (fun e ->
      if not (Ep_map.mem (e.e_prefix, e.e_seq) prev_closed) then begin
        let was_open = Ep_map.find_opt (e.e_prefix, e.e_seq) prev_open in
        (match was_open with
        | None -> emit e.e_started e.e_prefix e.e_origins_ever Proto.Opened
        | Some _ -> ());
        (if not e.e_clean then
           match was_open with
           | Some po when not po.o_clean -> ()  (* flagged in an earlier batch *)
           | _ -> emit settle_time e.e_prefix e.e_origins_ever Proto.Flagged);
        emit e.e_ended e.e_prefix e.e_origins_ever Proto.Closed
      end)
    next.s_closed;
  List.sort Proto.compare_alert !alerts

let deliver t alerts =
  locked t (fun () ->
      let sids =
        List.sort Int.compare
          (Hashtbl.fold (fun sid _ acc -> sid :: acc) t.sessions [])
      in
      List.iter
        (fun alert ->
          List.iter
            (fun sid ->
              let s = Hashtbl.find t.sessions sid in
              List.iter
                (fun sub ->
                  if alert_matches sub.sub_query alert then begin
                    let frame =
                      Proto.encode_response
                        (Proto.Alert { sub = sub.sub_id; alert })
                    in
                    s.outbox <- frame :: s.outbox;
                    Registry.Counter.incr t.m_alerts
                  end)
                s.subs)
            sids)
        alerts)

let tail ?max_batches t source =
  Stream.Sharded.ingest_source ?max_batches t.live source
    ~on_batch:(fun live _batch ->
      let next = Stream.Sharded.snapshot live in
      let alerts = diff_alerts ~prev:t.live_prev ~next in
      t.live_prev <- next;
      locked t (fun () -> t.live_batches <- t.live_batches + 1);
      if alerts <> [] then deliver t alerts)
