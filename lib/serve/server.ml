open Net
module Registry = Obs.Registry
module Query = Collect.Query
module Store = Collect.Store

(* {2 Resource limits} *)

type limits = {
  deadline : float;
  max_inflight : int;
  queue_high_water : int;
  evict_after : int;
}

let default_limits =
  {
    deadline = infinity;
    max_inflight = max_int;
    queue_high_water = 65_536;
    evict_after = max_int;
  }

let check_limits l =
  if not (l.deadline > 0.0) then
    invalid_arg "Serve.Server: deadline must be positive";
  if l.max_inflight < 0 then
    invalid_arg "Serve.Server: max_inflight must be non-negative";
  if l.queue_high_water < 1 then
    invalid_arg "Serve.Server: queue_high_water must be positive";
  if l.evict_after < 1 then
    invalid_arg "Serve.Server: evict_after must be positive"

type health = Serving | Degraded of string

type subscription = { sub_id : int; sub_query : Query.t }

type session = {
  sid : int;
  (* descending sub_id: subscribe is O(1), delivery reverses once per
     batch (it walks every subscription anyway) *)
  mutable subs : subscription list;
  mutable n_subs : int;
  outbox : bytes Queue.t;  (* encoded Alert frames, oldest first *)
  mutable shed : int;  (* frames shed from this outbox, ever *)
  mutable next_sub : int;
}

type t = {
  store : Store.t;
  limits : limits;
  now : unit -> float;
  lock : Mutex.t;
  sessions : (int, session) Hashtbl.t;
  mutable next_sid : int;
  mutable total_subs : int;  (* tracked so Stats never walks sessions *)
  mutable inflight : int;
  mutable health : health;
  (* operational counters, tracked on the server itself so Stats reports
     them over the wire even when metrics are disabled *)
  mutable n_shed : int;
  mutable n_timeouts : int;
  mutable n_evicted : int;
  live : Stream.Sharded.t;
  mutable live_prev : Stream.Monitor.snapshot;
  mutable live_batches : int;
  since : int;  (* resume floor: tail skips batches at or before this *)
  metrics : Registry.t;
  m_requests : (string * Registry.Counter.t) list;
  m_malformed : Registry.Counter.t;
  m_alerts : Registry.Counter.t;
  m_shed_queue : Registry.Counter.t;
  m_shed_overload : Registry.Counter.t;
  m_timeouts : Registry.Counter.t;
  m_evicted : Registry.Counter.t;
  g_inflight : Registry.Gauge.t;
  g_sessions : Registry.Gauge.t;
  g_degraded : Registry.Gauge.t;
  h_request : Registry.Histogram.t;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let request_kinds = [ "ping"; "query"; "count"; "subscribe"; "unsubscribe"; "stats" ]

let create ?(metrics = Registry.noop) ?(limits = default_limits)
    ?(now = Unix.gettimeofday) ?live_config ?(live_jobs = 1) ?live_snapshot
    ~store () =
  check_limits limits;
  let live, live_prev, since =
    match live_snapshot with
    | Some snap ->
      (* the snapshot carries its own monitor config; live_config is
         ignored on resume *)
      ( Stream.Sharded.of_snapshot ~jobs:live_jobs snap,
        snap,
        snap.Stream.Monitor.s_last_time )
    | None ->
      let live_config =
        match live_config with
        | Some c -> c
        | None -> Stream.Monitor.default_config
      in
      ( Stream.Sharded.create ~jobs:live_jobs live_config,
        Stream.Monitor.empty_snapshot live_config,
        min_int )
  in
  {
    store;
    limits;
    now;
    lock = Mutex.create ();
    sessions = Hashtbl.create 16;
    next_sid = 1;
    total_subs = 0;
    inflight = 0;
    health = Serving;
    n_shed = 0;
    n_timeouts = 0;
    n_evicted = 0;
    live;
    live_prev;
    live_batches = 0;
    since;
    metrics;
    (* instruments are pre-registered so the request path never mutates
       the registry's tables (handle runs on several domains at once) *)
    m_requests =
      List.map
        (fun kind ->
          (kind, Registry.counter metrics ~labels:[ ("kind", kind) ]
                   "serve_requests_total"))
        request_kinds;
    m_malformed =
      Registry.counter metrics ~labels:[ ("kind", "malformed") ]
        "serve_requests_total";
    m_alerts = Registry.counter metrics "serve_alerts_total";
    m_shed_queue =
      Registry.counter metrics ~labels:[ ("reason", "queue") ]
        "serve_shed_total";
    m_shed_overload =
      Registry.counter metrics ~labels:[ ("reason", "overload") ]
        "serve_shed_total";
    m_timeouts = Registry.counter metrics "serve_timeouts_total";
    m_evicted = Registry.counter metrics "serve_evicted_sessions";
    g_inflight = Registry.gauge metrics "serve_inflight";
    g_sessions = Registry.gauge metrics "serve_sessions";
    g_degraded = Registry.gauge metrics "serve_degraded";
    h_request = Registry.histogram metrics "serve_request_seconds";
  }

let store t = t.store
let limits t = t.limits
let health t = locked t (fun () -> t.health)

let live_snapshot t = Stream.Sharded.snapshot t.live

(* {2 Sessions} *)

let open_session t =
  locked t (fun () ->
      let sid = t.next_sid in
      t.next_sid <- sid + 1;
      Hashtbl.replace t.sessions sid
        {
          sid;
          subs = [];
          n_subs = 0;
          outbox = Queue.create ();
          shed = 0;
          next_sub = 1;
        };
      Registry.Gauge.set t.g_sessions
        (float_of_int (Hashtbl.length t.sessions));
      sid)

let close_session t sid =
  locked t (fun () ->
      (match Hashtbl.find_opt t.sessions sid with
      | None -> ()
      | Some s -> t.total_subs <- t.total_subs - s.n_subs);
      Hashtbl.remove t.sessions sid;
      Registry.Gauge.set t.g_sessions
        (float_of_int (Hashtbl.length t.sessions)))

let session_count t = locked t (fun () -> Hashtbl.length t.sessions)
let subscription_count t = locked t (fun () -> t.total_subs)
let shed_total t = locked t (fun () -> t.n_shed)
let timeout_total t = locked t (fun () -> t.n_timeouts)
let evicted_total t = locked t (fun () -> t.n_evicted)

let pending t ~session =
  locked t (fun () ->
      match Hashtbl.find_opt t.sessions session with
      | None -> []
      | Some s ->
        let frames =
          List.rev (Queue.fold (fun acc f -> f :: acc) [] s.outbox)
        in
        Queue.clear s.outbox;
        frames)

(* {2 Stats} *)

let live_batches t = locked t (fun () -> t.live_batches)

let live_stats t =
  locked t (fun () ->
      {
        Proto.st_entries = Store.count t.store;
        st_vantages = List.length (Store.vantages t.store);
        st_sessions = Hashtbl.length t.sessions;
        st_subscriptions = t.total_subs;
        st_live_batches = t.live_batches;
        st_live_updates = Stream.Sharded.update_count t.live;
        st_live_open = Stream.Sharded.open_count t.live;
        st_live_days = Stream.Sharded.day_count t.live;
        st_degraded = (match t.health with Degraded _ -> true | Serving -> false);
        st_shed = t.n_shed;
        st_timeouts = t.n_timeouts;
        st_evicted = t.n_evicted;
      })

(* {2 The request path} *)

let vantage_count t = List.length (Store.vantages t.store)

let execute t session req =
  match (req : Proto.request) with
  | Ping -> Proto.Pong
  | Query q ->
    Proto.Entries
      { vantage_count = vantage_count t; entries = Store.query t.store q }
  | Count q -> Proto.Count_is (List.length (Store.query t.store q))
  | Subscribe q ->
    locked t (fun () ->
        match Hashtbl.find_opt t.sessions session with
        | None -> Proto.Rejected (Printf.sprintf "unknown session %d" session)
        | Some s ->
          let sub_id = s.next_sub in
          s.next_sub <- sub_id + 1;
          s.subs <- { sub_id; sub_query = q } :: s.subs;
          s.n_subs <- s.n_subs + 1;
          t.total_subs <- t.total_subs + 1;
          Proto.Subscribed sub_id)
  | Unsubscribe id ->
    locked t (fun () ->
        match Hashtbl.find_opt t.sessions session with
        | None -> Proto.Rejected (Printf.sprintf "unknown session %d" session)
        | Some s ->
          if List.exists (fun sub -> sub.sub_id = id) s.subs then begin
            s.subs <- List.filter (fun sub -> sub.sub_id <> id) s.subs;
            s.n_subs <- s.n_subs - 1;
            t.total_subs <- t.total_subs - 1;
            Proto.Unsubscribed id
          end
          else Proto.Rejected (Printf.sprintf "unknown subscription %d" id))
  | Stats -> Proto.Stats_are (live_stats t)

(* fixed rejection strings: scripted transcripts must be byte-identical
   across runs, so no elapsed times or limits leak into the reply *)
let overloaded_reply = Proto.Rejected "overloaded: too many requests in flight"
let deadline_reply = Proto.Rejected "deadline exceeded"

let over_deadline t ~t0 =
  t.limits.deadline < infinity && t.now () -. t0 > t.limits.deadline

let handle ?arrival t ~session data =
  let t0 = match arrival with Some a -> a | None -> t.now () in
  let shed =
    locked t (fun () ->
        t.inflight <- t.inflight + 1;
        Registry.Gauge.add t.g_inflight 1.;
        t.inflight > t.limits.max_inflight)
  in
  let finish resp =
    let reply = Proto.encode_response resp in
    locked t (fun () ->
        t.inflight <- t.inflight - 1;
        Registry.Gauge.add t.g_inflight (-1.);
        Registry.Histogram.observe t.h_request (t.now () -. t0));
    reply
  in
  if shed then begin
    locked t (fun () ->
        t.n_shed <- t.n_shed + 1;
        Registry.Counter.incr t.m_shed_overload);
    finish overloaded_reply
  end
  else if over_deadline t ~t0 then begin
    (* the deadline budget starts at [arrival] — a request that spent its
       budget queued or in transit is turned away before any work *)
    locked t (fun () ->
        t.n_timeouts <- t.n_timeouts + 1;
        Registry.Counter.incr t.m_timeouts);
    finish deadline_reply
  end
  else begin
    let resp =
      match Proto.decode_request data with
      | exception Proto.Corrupt msg ->
        locked t (fun () -> Registry.Counter.incr t.m_malformed);
        Proto.Rejected ("malformed request: " ^ msg)
      | req ->
        let kind = Proto.request_kind req in
        locked t (fun () ->
            match List.assoc_opt kind t.m_requests with
            | Some c -> Registry.Counter.incr c
            | None -> ());
        execute t session req
    in
    (* a result computed after the budget ran out is as good as no
       result: the client has already given up on it.  Non-idempotent
       side effects (a Subscribe) may still have been applied — which is
       exactly why the client never blind-retries those. *)
    if over_deadline t ~t0 then begin
      locked t (fun () ->
          t.n_timeouts <- t.n_timeouts + 1;
          Registry.Counter.incr t.m_timeouts);
      finish deadline_reply
    end
    else finish resp
  end

(* {2 The live tail} *)

(* Whether a live alert passes a subscription's query filter.  The tail
   is one merged feed, so an alert's visibility is 1: a floor above that
   can never match (cross-vantage visibility exists only in the store). *)
let alert_matches q (a : Proto.alert) =
  (match Query.target q with
  | None -> true
  | Some p ->
    if Query.wants_covered q then Prefix.subsumes p a.al_prefix
    else Prefix.compare p a.al_prefix = 0)
  && (match Query.origin_filter q with
     | None -> true
     | Some asn -> Asn.Set.mem asn a.al_origins)
  && (match Query.since_bound q with None -> true | Some s -> a.al_time >= s)
  && (match Query.until_bound q with None -> true | Some u -> a.al_time <= u)
  && match Query.visibility_floor q with None -> true | Some k -> k <= 1

module Ep_key = struct
  type t = Prefix.t * int  (* (prefix, recurrence seq) names an episode *)

  let compare (p1, s1) (p2, s2) =
    let c = Prefix.compare p1 p2 in
    if c <> 0 then c else Int.compare s1 s2
end

module Ep_map = Map.Make (Ep_key)

(* Diff consecutive monitor snapshots into alerts.  An episode key
   (prefix, seq) is stable for the episode's whole life, so:

   - open in [next], absent from [prev]'s opens  -> Opened (at start)
   - clean in [prev] (or new), flagged in [next] -> Flagged (at settle)
   - closed in [next], not closed in [prev]      -> Closed (at end),
     plus the Opened/Flagged alerts it never got to raise when the whole
     episode fell inside one batch. *)
let diff_alerts ~(prev : Stream.Monitor.snapshot)
    ~(next : Stream.Monitor.snapshot) =
  let open Stream.Monitor in
  let settle_time = next.s_last_time in
  let prev_open =
    List.fold_left
      (fun acc p ->
        match p.p_open with
        | Some o -> Ep_map.add (p.p_prefix, o.o_seq) o acc
        | None -> acc)
      Ep_map.empty prev.s_prefixes
  in
  let prev_closed =
    List.fold_left
      (fun acc e -> Ep_map.add (e.e_prefix, e.e_seq) () acc)
      Ep_map.empty prev.s_closed
  in
  let alerts = ref [] in
  let emit al_time al_prefix al_origins al_kind =
    alerts := { Proto.al_time; al_prefix; al_origins; al_kind } :: !alerts
  in
  List.iter
    (fun p ->
      match p.p_open with
      | None -> ()
      | Some o -> (
        match Ep_map.find_opt (p.p_prefix, o.o_seq) prev_open with
        | None ->
          emit o.o_started p.p_prefix o.o_origins_ever Proto.Opened;
          if not o.o_clean then
            emit settle_time p.p_prefix o.o_origins_ever Proto.Flagged
        | Some po ->
          if po.o_clean && not o.o_clean then
            emit settle_time p.p_prefix o.o_origins_ever Proto.Flagged))
    next.s_prefixes;
  List.iter
    (fun e ->
      if not (Ep_map.mem (e.e_prefix, e.e_seq) prev_closed) then begin
        let was_open = Ep_map.find_opt (e.e_prefix, e.e_seq) prev_open in
        (match was_open with
        | None -> emit e.e_started e.e_prefix e.e_origins_ever Proto.Opened
        | Some _ -> ());
        (if not e.e_clean then
           match was_open with
           | Some po when not po.o_clean -> ()  (* flagged in an earlier batch *)
           | _ -> emit settle_time e.e_prefix e.e_origins_ever Proto.Flagged);
        emit e.e_ended e.e_prefix e.e_origins_ever Proto.Closed
      end)
    next.s_closed;
  List.sort Proto.compare_alert !alerts

(* Queue one frame on a session, shedding the oldest frame past the
   high-water mark: a consumer that stops polling loses its backlog's
   head, never the server's memory. *)
let push_bounded t s frame =
  Queue.push frame s.outbox;
  Registry.Counter.incr t.m_alerts;
  if Queue.length s.outbox > t.limits.queue_high_water then begin
    ignore (Queue.pop s.outbox);
    s.shed <- s.shed + 1;
    t.n_shed <- t.n_shed + 1;
    Registry.Counter.incr t.m_shed_queue
  end

let deliver t alerts =
  locked t (fun () ->
      let sids =
        List.sort Int.compare
          (Hashtbl.fold (fun sid _ acc -> sid :: acc) t.sessions [])
      in
      List.iter
        (fun sid ->
          match Hashtbl.find_opt t.sessions sid with
          | None -> ()
          | Some s ->
            let subs_asc = List.rev s.subs in
            List.iter
              (fun alert ->
                List.iter
                  (fun sub ->
                    if alert_matches sub.sub_query alert then
                      push_bounded t s
                        (Proto.encode_response
                           (Proto.Alert { sub = sub.sub_id; alert })))
                  subs_asc)
              alerts;
            (* a session that keeps overflowing is a slow consumer: once
               its lifetime shed count crosses the eviction threshold it
               is dropped wholesale, subscriptions and backlog included *)
            if s.shed >= t.limits.evict_after then begin
              Hashtbl.remove t.sessions sid;
              t.total_subs <- t.total_subs - s.n_subs;
              t.n_evicted <- t.n_evicted + 1;
              Registry.Counter.incr t.m_evicted;
              Registry.Gauge.set t.g_sessions
                (float_of_int (Hashtbl.length t.sessions))
            end)
        sids)

let tail ?max_batches ?on_batch t source =
  let already_degraded =
    locked t (fun () ->
        match t.health with Degraded _ -> true | Serving -> false)
  in
  if already_degraded then 0
  else begin
    let ingested = ref 0 in
    match
      Stream.Sharded.ingest_source ?max_batches ~since:t.since t.live source
        ~on_batch:(fun live _batch ->
          let next = Stream.Sharded.snapshot live in
          let alerts = diff_alerts ~prev:t.live_prev ~next in
          t.live_prev <- next;
          locked t (fun () -> t.live_batches <- t.live_batches + 1);
          incr ingested;
          if alerts <> [] then deliver t alerts;
          match on_batch with Some f -> f t | None -> ())
    with
    | n -> n
    | exception exn ->
      (* the tail source died: freeze the live monitor where the last
         completed batch left it and keep serving queries read-only.
         ingest_source already closed the source. *)
      locked t (fun () ->
          t.health <- Degraded (Printexc.to_string exn);
          Registry.Gauge.set t.g_degraded 1.);
      !ingested
  end
