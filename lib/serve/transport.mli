(** The seam between {!Client} and {!Server}: a record of the four
    operations a client needs, so the same client code runs over the
    direct in-process path, a socket loop, or the chaos harness's
    fault-injecting wrapper ([Faults.Chaos.transport]) — which is how
    transport failures are tested without a network.

    A transport signals {e transport-level} failure (dropped frame,
    broken connection, unreachable peer) by raising {!Unavailable} from
    [request] or [drain].  Protocol-level refusals stay in-band as
    [Rejected] response frames. *)

exception Unavailable of string

type t = {
  connect : unit -> int;  (** open a session, return its id *)
  disconnect : int -> unit;  (** close a session (idempotent) *)
  request : arrival:float -> session:int -> bytes -> bytes;
      (** one request frame in, one response frame out.  [arrival] is
          when the request entered the system on the client's clock —
          forwarded to {!Server.handle} so the deadline budget covers
          time spent in the transport itself. *)
  drain : session:int -> bytes list;
      (** the session's queued alert frames, oldest first *)
}

val of_server : Server.t -> t
(** The direct in-process transport: every operation is the
    corresponding {!Server} entry point, and [request] never raises
    {!Unavailable}. *)
