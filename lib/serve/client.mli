(** In-process client for the serving daemon, with deterministic retry.

    A client owns one server session and speaks full {!Proto} wire frames
    in both directions — every request is encoded to bytes and every
    response decoded from bytes, exactly as a socket transport would, so
    the codec is exercised end-to-end on every call (and so the bench
    load generator measures real serialisation cost).

    {b Retry.}  {!call} survives transient failure: transport errors
    ({!Transport.Unavailable}), corrupt replies, replies slower than the
    per-call [timeout], and the server's own overload / deadline /
    corrupted-frame refusals are retried with exponential backoff and
    jitter, up to [attempts] tries.  All jitter randomness comes from the
    client's own {!Mutil.Rng} stream, so a seeded run retries at
    reproducible delays.  Retry is {e idempotence-aware}: [Ping], [Query],
    [Count] and [Stats] are always retryable, while [Subscribe] and
    [Unsubscribe] are re-sent only when the server provably refused the
    request before executing it (shed on arrival, or the frame was
    corrupted in flight) — a blind replay could double-subscribe. *)

type retry = {
  attempts : int;  (** total tries including the first; >= 1 *)
  base_delay : float;  (** seconds before the first re-send *)
  max_delay : float;  (** cap on the exponential growth *)
  jitter : float;
      (** delay [d] is drawn uniformly from [d*(1-j), d*(1+j)); in [0,1] *)
}

val default_retry : retry
(** 3 attempts, 10 ms base, 500 ms cap, 0.5 jitter. *)

type error =
  | Timed_out of float  (** the reply arrived after [timeout] seconds *)
  | Unreachable of string  (** transport failure or corrupt reply *)

exception Failed of error
(** Raised by {!call} once retries are exhausted (or immediately, for a
    non-idempotent request that cannot be safely re-sent), and by
    {!poll} on a transport failure. *)

type t

val connect :
  ?retry:retry ->
  ?timeout:float ->
  ?rng:Mutil.Rng.t ->
  ?clock:(unit -> float) ->
  ?sleep:(float -> unit) ->
  Server.t ->
  t
(** Open a session on the server over the direct in-process transport.
    [timeout] (default [infinity]) is the per-attempt reply budget on
    [clock] (default [Unix.gettimeofday]); [sleep] (default
    [Unix.sleepf]) waits out backoff delays — tests and the chaos
    harness inject a virtual clock and a no-op sleep to run
    deterministically at full speed.  [rng] feeds the backoff jitter
    (defaults to a fixed seed: retries are deterministic unless the
    caller splits in their own stream). *)

val connect_via :
  ?retry:retry ->
  ?timeout:float ->
  ?rng:Mutil.Rng.t ->
  ?clock:(unit -> float) ->
  ?sleep:(float -> unit) ->
  Transport.t ->
  t
(** Same, over an arbitrary transport (the chaos harness's
    fault-injecting one, for instance). *)

val session : t -> int

val call : t -> Proto.request -> Proto.response
(** One request/response round-trip through the wire codec, with retry
    as described above.  A terminal transient refusal is {e returned}
    (the server's [Rejected] is a valid in-band answer); a terminal
    transport failure raises {!Failed}.
    @raise Invalid_argument on a closed client. *)

val poll : t -> Proto.response list
(** Drain this session's pushed alert frames, oldest first (decoded
    [Alert] responses).  Empty on a closed client.  Not retried — a
    drain is destructive, so a lost reply would silently drop alerts;
    transport failure raises {!Failed} instead. *)

val retries : t -> int
(** Re-sends performed over this client's lifetime. *)

val failures : t -> int
(** Calls that ended in {!Failed}. *)

val close : t -> unit
(** Close the session (idempotent); queued alerts are dropped. *)
