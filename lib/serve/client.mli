(** In-process client for the serving daemon.

    A client owns one server session and speaks full {!Proto} wire frames
    in both directions — every request is encoded to bytes and every
    response decoded from bytes, exactly as a socket transport would, so
    the codec is exercised end-to-end on every call (and so the bench
    load generator measures real serialisation cost). *)

type t

val connect : Server.t -> t
(** Open a session on the server. *)

val session : t -> int

val call : t -> Proto.request -> Proto.response
(** One request/response round-trip through the wire codec.
    @raise Invalid_argument on a closed client. *)

val poll : t -> Proto.response list
(** Drain this session's pushed alert frames, oldest first (decoded
    [Alert] responses).  Empty on a closed client. *)

val close : t -> unit
(** Close the session (idempotent); queued alerts are dropped. *)
