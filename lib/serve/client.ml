type retry = {
  attempts : int;
  base_delay : float;
  max_delay : float;
  jitter : float;
}

let default_retry =
  { attempts = 3; base_delay = 0.01; max_delay = 0.5; jitter = 0.5 }

let check_retry r =
  if r.attempts < 1 then invalid_arg "Serve.Client: attempts must be >= 1";
  if not (r.base_delay >= 0.) then
    invalid_arg "Serve.Client: base_delay must be non-negative";
  if not (r.max_delay >= r.base_delay) then
    invalid_arg "Serve.Client: max_delay must be >= base_delay";
  if not (r.jitter >= 0. && r.jitter <= 1.) then
    invalid_arg "Serve.Client: jitter must be in [0,1]"

type error = Timed_out of float | Unreachable of string

exception Failed of error

type t = {
  transport : Transport.t;
  retry : retry;
  timeout : float;
  clock : unit -> float;
  sleep : float -> unit;
  rng : Mutil.Rng.t;
  session : int;
  mutable closed : bool;
  mutable retries : int;
  mutable failures : int;
}

let connect_via ?(retry = default_retry) ?(timeout = infinity)
    ?(rng = Mutil.Rng.create ~seed:0x52E7A11L) ?(clock = Unix.gettimeofday)
    ?(sleep = Unix.sleepf) transport =
  check_retry retry;
  if not (timeout > 0.) then invalid_arg "Serve.Client: timeout must be positive";
  {
    transport;
    retry;
    timeout;
    clock;
    sleep;
    rng;
    session = transport.Transport.connect ();
    closed = false;
    retries = 0;
    failures = 0;
  }

let connect ?retry ?timeout ?rng ?clock ?sleep server =
  connect_via ?retry ?timeout ?rng ?clock ?sleep (Transport.of_server server)

let session t = t.session
let retries t = t.retries
let failures t = t.failures

(* Requests safe to re-send after an attempt whose fate is unknown: the
   read-only ones.  A replayed Subscribe would double-subscribe, a
   replayed Unsubscribe would turn success into "unknown subscription". *)
let idempotent (req : Proto.request) =
  match req with
  | Ping | Query _ | Count _ | Stats -> true
  | Subscribe _ | Unsubscribe _ -> false

(* Exponential backoff with jitter, all randomness from the client's own
   RNG stream: delay n is [base * 2^(n-1)] capped at [max_delay], then
   jittered uniformly over [d*(1-j), d*(1+j)). *)
let backoff t n =
  let d =
    Float.min t.retry.max_delay
      (t.retry.base_delay *. (2. ** float_of_int (n - 1)))
  in
  if t.retry.jitter = 0. || d = 0. then d
  else
    let j = t.retry.jitter in
    (d *. (1. -. j)) +. Mutil.Rng.float t.rng (d *. 2. *. j)

(* How one attempt ended.  [safe] says whether re-sending cannot repeat
   a side effect even for non-idempotent requests: true only when the
   server provably refused the request {e before} executing it. *)
type outcome =
  | Done of Proto.response
  | Transient of { resp : Proto.response; safe : bool }
  | Broken of error

let malformed_prefix = "malformed request"

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let attempt t frame =
  let start = t.clock () in
  match
    t.transport.Transport.request ~arrival:start ~session:t.session frame
  with
  | exception Transport.Unavailable msg -> Broken (Unreachable msg)
  | reply -> (
    let elapsed = t.clock () -. start in
    if elapsed > t.timeout then Broken (Timed_out elapsed)
    else
      match Proto.decode_response reply with
      | exception Proto.Corrupt msg ->
        Broken (Unreachable ("corrupt reply: " ^ msg))
      | Proto.Rejected reason when starts_with ~prefix:malformed_prefix reason
        ->
        (* we only send frames we encoded, so a "malformed request"
           reply means the transport corrupted the frame in flight; the
           server refused it at the decoder, before any side effect *)
        Transient { resp = Proto.Rejected reason; safe = true }
      | Proto.Rejected "overloaded: too many requests in flight" as resp ->
        (* shed on arrival, before any work *)
        Transient { resp; safe = true }
      | Proto.Rejected "deadline exceeded" as resp ->
        (* the budget may have run out after execution *)
        Transient { resp; safe = false }
      | resp -> Done resp)

let call t req =
  if t.closed then invalid_arg "Serve.Client: closed";
  let frame = Proto.encode_request req in
  let retryable = idempotent req in
  let rec go n =
    let out = attempt t frame in
    let again safe = n < t.retry.attempts && (retryable || safe) in
    match out with
    | Done resp -> resp
    | Transient { resp; safe } ->
      if again safe then begin
        t.retries <- t.retries + 1;
        t.sleep (backoff t n);
        go (n + 1)
      end
      else resp (* the server's refusal is a valid in-band answer *)
    | Broken err ->
      if again false then begin
        t.retries <- t.retries + 1;
        t.sleep (backoff t n);
        go (n + 1)
      end
      else begin
        t.failures <- t.failures + 1;
        raise (Failed err)
      end
  in
  go 1

let poll t =
  if t.closed then []
  else
    match t.transport.Transport.drain ~session:t.session with
    | exception Transport.Unavailable msg ->
      t.failures <- t.failures + 1;
      raise (Failed (Unreachable msg))
    | frames -> (
      match List.map Proto.decode_response frames with
      | resps -> resps
      | exception Proto.Corrupt msg ->
        t.failures <- t.failures + 1;
        raise (Failed (Unreachable ("corrupt alert: " ^ msg))))

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.transport.Transport.disconnect t.session
  end
