type t = { server : Server.t; session : int; mutable closed : bool }

let connect server = { server; session = Server.open_session server; closed = false }
let session t = t.session

let call t req =
  if t.closed then invalid_arg "Serve.Client: closed";
  Proto.decode_response
    (Server.handle t.server ~session:t.session (Proto.encode_request req))

let poll t =
  if t.closed then []
  else List.map Proto.decode_response (Server.pending t.server ~session:t.session)

let close t =
  if not t.closed then begin
    t.closed <- true;
    Server.close_session t.server t.session
  end
