exception Unavailable of string

type t = {
  connect : unit -> int;
  disconnect : int -> unit;
  request : arrival:float -> session:int -> bytes -> bytes;
  drain : session:int -> bytes list;
}

let of_server server =
  {
    connect = (fun () -> Server.open_session server);
    disconnect = (fun sid -> Server.close_session server sid);
    request =
      (fun ~arrival ~session data -> Server.handle ~arrival server ~session data);
    drain = (fun ~session -> Server.pending server ~session);
  }
