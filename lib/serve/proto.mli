(** The MOASSERV wire protocol: versioned, length-framed request and
    response messages for the MOAS query/alert serving daemon.

    Every frame is [magic "MOASSERV"] · [version octet] · [kind octet] ·
    [u32 payload length] · [payload], all fields big-endian in the
    {!Net.Codec} discipline.  The decoder rejects bad magic, version
    mismatches, unknown kinds, truncation, payload-length lies and
    trailing octets with {!Corrupt} — same defensive posture as the
    [MOASSTOR] store and [MOASSTRM] checkpoint formats.

    The query message carries {!Collect.Query.t} {e unchanged}: the wire
    protocol, the CLI [--query] flag and {!Collect.Store.query} all
    consume the one typed query — no third ad-hoc query format. *)

open Net

(** {2 Requests} *)

type request =
  | Ping
  | Query of Collect.Query.t  (** matching store entries *)
  | Count of Collect.Query.t  (** just how many match *)
  | Subscribe of Collect.Query.t
      (** push live alerts matching the query filter to this session *)
  | Unsubscribe of int  (** cancel a subscription by id *)
  | Stats  (** server-side totals *)

(** {2 Responses} *)

type alert_kind = Opened | Flagged | Closed

type alert = {
  al_time : int;  (** episode start / settle / end time *)
  al_prefix : Prefix.t;
  al_origins : Asn.Set.t;
  al_kind : alert_kind;
}

type stats = {
  st_entries : int;  (** episodes in the served store *)
  st_vantages : int;  (** store roster size *)
  st_sessions : int;
  st_subscriptions : int;
  st_live_batches : int;  (** batches ingested by the live tail *)
  st_live_updates : int;  (** events ingested by the live tail *)
  st_live_open : int;  (** episodes currently open in the live tail *)
  st_live_days : int;
}

type response =
  | Pong
  | Entries of { vantage_count : int; entries : Collect.Correlator.entry list }
  | Count_is of int
  | Subscribed of int  (** the new subscription's id *)
  | Unsubscribed of int
  | Alert of { sub : int; alert : alert }  (** pushed, never a reply *)
  | Stats_are of stats
  | Rejected of string  (** the server refused the request *)

exception Corrupt of string

val version : int
val magic : string

val encode_request : request -> bytes
val decode_request : bytes -> request
(** @raise Corrupt on malformed input. *)

val encode_response : response -> bytes
val decode_response : bytes -> response
(** @raise Corrupt on malformed input. *)

val request_kind : request -> string
(** Stable lowercase label ([ping], [query], …) — the [kind] label of
    the [serve_requests_total] metric. *)

val render_response : response -> string
(** Deterministic multi-line text rendering (the unit of the serve
    transcript determinism contract).  No trailing newline. *)

val compare_alert : alert -> alert -> int
(** Delivery order: (time, prefix, kind, origins). *)
