(** The MOASSERV wire protocol: versioned, length-framed request and
    response messages for the MOAS query/alert serving daemon.

    Every frame is [magic "MOASSERV"] · [version octet] · [kind octet] ·
    [u32 payload length] · [u32 CRC-32 of kind+payload] · [payload], all
    fields big-endian in the {!Net.Codec} discipline.  The decoder
    rejects bad magic, version mismatches, unknown kinds, truncation,
    payload-length lies, checksum mismatches and trailing octets with
    {!Corrupt} — same defensive posture as the [MOASSTOR] store and
    [MOASSTRM] checkpoint formats.  The checksum means no single
    corrupted octet can turn a valid frame into a {e different} valid
    frame: in-flight corruption is always surfaced as [Corrupt], which
    the retrying {!Client} treats as a transient transport failure.

    The query message carries {!Collect.Query.t} {e unchanged}: the wire
    protocol, the CLI [--query] flag and {!Collect.Store.query} all
    consume the one typed query — no third ad-hoc query format. *)

open Net

(** {2 Requests} *)

type request =
  | Ping
  | Query of Collect.Query.t  (** matching store entries *)
  | Count of Collect.Query.t  (** just how many match *)
  | Subscribe of Collect.Query.t
      (** push live alerts matching the query filter to this session *)
  | Unsubscribe of int  (** cancel a subscription by id *)
  | Stats  (** server-side totals *)

(** {2 Responses} *)

type alert_kind = Opened | Flagged | Closed

type alert = {
  al_time : int;  (** episode start / settle / end time *)
  al_prefix : Prefix.t;
  al_origins : Asn.Set.t;
  al_kind : alert_kind;
}

type stats = {
  st_entries : int;  (** episodes in the served store *)
  st_vantages : int;  (** store roster size *)
  st_sessions : int;
  st_subscriptions : int;
  st_live_batches : int;  (** batches ingested by the live tail *)
  st_live_updates : int;  (** events ingested by the live tail *)
  st_live_open : int;  (** episodes currently open in the live tail *)
  st_live_days : int;
  st_degraded : bool;
      (** the live tail died and the server is read-only (see
          [Server.health]) *)
  st_shed : int;  (** frames/requests shed by overload protection *)
  st_timeouts : int;  (** requests that blew their deadline budget *)
  st_evicted : int;  (** sessions evicted as slow consumers *)
}

type response =
  | Pong
  | Entries of { vantage_count : int; entries : Collect.Correlator.entry list }
  | Count_is of int
  | Subscribed of int  (** the new subscription's id *)
  | Unsubscribed of int
  | Alert of { sub : int; alert : alert }  (** pushed, never a reply *)
  | Stats_are of stats
  | Rejected of string  (** the server refused the request *)

exception Corrupt of string

val version : int
(** Current protocol version (3).  Version 2 extended the [Stats_are]
    payload with the health/shed/timeout/eviction fields and added the
    frame checksum; version 3 grew the query payload by a trailing
    duration-bucket clause.  Peers speaking older versions are rejected
    with [Corrupt] at the frame header. *)

val magic : string

val encode_request : request -> bytes
val decode_request : bytes -> request
(** @raise Corrupt on malformed input. *)

val encode_response : response -> bytes
val decode_response : bytes -> response
(** @raise Corrupt on malformed input. *)

val request_kind : request -> string
(** Stable lowercase label ([ping], [query], …) — the [kind] label of
    the [serve_requests_total] metric. *)

val render_response : response -> string
(** Deterministic multi-line text rendering (the unit of the serve
    transcript determinism contract).  No trailing newline. *)

val compare_alert : alert -> alert -> int
(** Delivery order: (time, prefix, kind, origins). *)
