open Net
open Codec

type request =
  | Ping
  | Query of Collect.Query.t
  | Count of Collect.Query.t
  | Subscribe of Collect.Query.t
  | Unsubscribe of int
  | Stats

type alert_kind = Opened | Flagged | Closed

type alert = {
  al_time : int;
  al_prefix : Prefix.t;
  al_origins : Asn.Set.t;
  al_kind : alert_kind;
}

type stats = {
  st_entries : int;
  st_vantages : int;
  st_sessions : int;
  st_subscriptions : int;
  st_live_batches : int;
  st_live_updates : int;
  st_live_open : int;
  st_live_days : int;
  st_degraded : bool;
  st_shed : int;
  st_timeouts : int;
  st_evicted : int;
}

type response =
  | Pong
  | Entries of { vantage_count : int; entries : Collect.Correlator.entry list }
  | Count_is of int
  | Subscribed of int
  | Unsubscribed of int
  | Alert of { sub : int; alert : alert }
  | Stats_are of stats
  | Rejected of string

exception Corrupt of string

(* v3: the query payload grew a trailing bucket clause *)
let version = 3
let magic = "MOASSERV"

(* {2 Framing}

   Every frame is magic · version · kind octet · u32 payload length ·
   u32 CRC-32 of (kind octet ‖ payload) · payload.  The length is
   redundant with the byte-string extent for the in-process transport,
   but it is what lets a socket transport delimit frames — and the
   decoder cross-checks it against the actual payload so a length lie is
   caught as corruption, not silently tolerated.  The checksum covers
   the kind octet too, so no single corrupted octet — kind flip or
   payload mutation — can turn one valid frame into a different valid
   one: it is caught as [Corrupt] instead (chaos-harness invariant). *)

(* CRC of each possible kind octet, computed once instead of hashing a
   freshly allocated one-octet byte string per frame *)
let kind_crcs =
  lazy
    (let b = Bytes.create 1 in
     Array.init 256 (fun k ->
         Bytes.set b 0 (Char.chr k);
         Codec.crc32 b ~pos:0 ~len:1))

let kind_crc kind = (Lazy.force kind_crcs).(kind)

let header_len = 18 (* magic 8 · version 1 · kind 1 · u32 length · u32 CRC *)

let frame kind put_payload =
  let payload = Buffer.create 64 in
  put_payload payload;
  let plen = Buffer.length payload in
  (* single-copy assembly: the frame bytes are allocated once, the
     payload blitted straight out of the buffer, and length and CRC
     patched into the header — no [Buffer.to_bytes] intermediate *)
  let out = Bytes.create (header_len + plen) in
  Bytes.blit_string magic 0 out 0 8;
  set_u8 out 8 version;
  set_u8 out 9 kind;
  set_u32 out 10 plen;
  Buffer.blit payload 0 out header_len plen;
  let crc = Codec.crc32 ~seed:(kind_crc kind) out ~pos:header_len ~len:plen in
  set_u32 out 14 crc;
  out

let open_frame data =
  let c = cursor ~fail:(fun m -> Corrupt m) data in
  expect_magic c magic;
  expect_version c version;
  let kind = take_u8 c in
  let len = take_u32 c in
  let crc = take_u32 c in
  if len <> remaining c then
    corrupt c "payload length %d does not match %d remaining octets" len
      (remaining c);
  check_crc c ~seed:(kind_crc kind) ~expect:crc;
  (c, kind)

(* {2 Requests} *)

let tag_ping = 1
let tag_query = 2
let tag_count = 3
let tag_subscribe = 4
let tag_unsubscribe = 5
let tag_stats = 6

let encode_request = function
  | Ping -> frame tag_ping (fun _ -> ())
  | Query q -> frame tag_query (fun b -> Collect.Query.write b q)
  | Count q -> frame tag_count (fun b -> Collect.Query.write b q)
  | Subscribe q -> frame tag_subscribe (fun b -> Collect.Query.write b q)
  | Unsubscribe id -> frame tag_unsubscribe (fun b -> put_u32 b id)
  | Stats -> frame tag_stats (fun _ -> ())

let decode_request data =
  let c, kind = open_frame data in
  let req =
    if kind = tag_ping then Ping
    else if kind = tag_query then Query (Collect.Query.read c)
    else if kind = tag_count then Count (Collect.Query.read c)
    else if kind = tag_subscribe then Subscribe (Collect.Query.read c)
    else if kind = tag_unsubscribe then Unsubscribe (take_u32 c)
    else if kind = tag_stats then Stats
    else corrupt c "unknown request kind %d" kind
  in
  expect_end c;
  req

let request_kind = function
  | Ping -> "ping"
  | Query _ -> "query"
  | Count _ -> "count"
  | Subscribe _ -> "subscribe"
  | Unsubscribe _ -> "unsubscribe"
  | Stats -> "stats"

(* {2 Responses} *)

let tag_pong = 1
let tag_entries = 2
let tag_count_is = 3
let tag_subscribed = 4
let tag_unsubscribed = 5
let tag_alert = 6
let tag_stats_are = 7
let tag_rejected = 8

let kind_rank = function Opened -> 0 | Flagged -> 1 | Closed -> 2

let put_alert b a =
  put_i63 b a.al_time;
  put_prefix b a.al_prefix;
  put_asn_set b a.al_origins;
  put_u8 b (kind_rank a.al_kind)

let take_alert c =
  let al_time = take_i63 c in
  let al_prefix = take_prefix c in
  let al_origins = take_asn_set c in
  let al_kind =
    match take_u8 c with
    | 0 -> Opened
    | 1 -> Flagged
    | 2 -> Closed
    | k -> corrupt c "unknown alert kind %d" k
  in
  { al_time; al_prefix; al_origins; al_kind }

let put_stats b s =
  put_i63 b s.st_entries;
  put_u32 b s.st_vantages;
  put_u32 b s.st_sessions;
  put_u32 b s.st_subscriptions;
  put_i63 b s.st_live_batches;
  put_i63 b s.st_live_updates;
  put_i63 b s.st_live_open;
  put_i63 b s.st_live_days;
  put_bool b s.st_degraded;
  put_i63 b s.st_shed;
  put_i63 b s.st_timeouts;
  put_i63 b s.st_evicted

let take_stats c =
  let st_entries = take_i63 c in
  let st_vantages = take_u32 c in
  let st_sessions = take_u32 c in
  let st_subscriptions = take_u32 c in
  let st_live_batches = take_i63 c in
  let st_live_updates = take_i63 c in
  let st_live_open = take_i63 c in
  let st_live_days = take_i63 c in
  let st_degraded = take_bool c in
  let st_shed = take_i63 c in
  let st_timeouts = take_i63 c in
  let st_evicted = take_i63 c in
  {
    st_entries;
    st_vantages;
    st_sessions;
    st_subscriptions;
    st_live_batches;
    st_live_updates;
    st_live_open;
    st_live_days;
    st_degraded;
    st_shed;
    st_timeouts;
    st_evicted;
  }

let encode_response = function
  | Pong -> frame tag_pong (fun _ -> ())
  | Entries { vantage_count; entries } ->
    frame tag_entries (fun b ->
        put_u32 b vantage_count;
        put_list b Collect.Correlator.write_entry entries)
  | Count_is n -> frame tag_count_is (fun b -> put_i63 b n)
  | Subscribed id -> frame tag_subscribed (fun b -> put_u32 b id)
  | Unsubscribed id -> frame tag_unsubscribed (fun b -> put_u32 b id)
  | Alert { sub; alert } ->
    frame tag_alert (fun b ->
        put_u32 b sub;
        put_alert b alert)
  | Stats_are s -> frame tag_stats_are (fun b -> put_stats b s)
  | Rejected reason -> frame tag_rejected (fun b -> put_string b reason)

let decode_response data =
  let c, kind = open_frame data in
  let resp =
    if kind = tag_pong then Pong
    else if kind = tag_entries then begin
      let vantage_count = take_u32 c in
      let entries = take_list c Collect.Correlator.read_entry in
      Entries { vantage_count; entries }
    end
    else if kind = tag_count_is then Count_is (take_i63 c)
    else if kind = tag_subscribed then Subscribed (take_u32 c)
    else if kind = tag_unsubscribed then Unsubscribed (take_u32 c)
    else if kind = tag_alert then begin
      let sub = take_u32 c in
      let alert = take_alert c in
      Alert { sub; alert }
    end
    else if kind = tag_stats_are then Stats_are (take_stats c)
    else if kind = tag_rejected then Rejected (take_string c)
    else corrupt c "unknown response kind %d" kind
  in
  expect_end c;
  resp

(* {2 Ordering and rendering} *)

let compare_alert a b =
  let c = compare a.al_time b.al_time in
  if c <> 0 then c
  else
    let c = Prefix.compare a.al_prefix b.al_prefix in
    if c <> 0 then c
    else
      let c = compare (kind_rank a.al_kind) (kind_rank b.al_kind) in
      if c <> 0 then c else Asn.Set.compare a.al_origins b.al_origins

let kind_label = function
  | Opened -> "opened"
  | Flagged -> "flagged"
  | Closed -> "closed"

let render_alert a =
  Printf.sprintf "%s %s origins={%s} at %d" (kind_label a.al_kind)
    (Prefix.to_string a.al_prefix)
    (Asn.Set.elements a.al_origins
    |> List.map Asn.to_string
    |> String.concat ",")
    a.al_time

let render_response = function
  | Pong -> "pong"
  | Entries { vantage_count; entries } ->
    let header = Printf.sprintf "entries: %d" (List.length entries) in
    String.concat "\n"
      (header
      :: List.map
           (fun e -> "  " ^ Collect.Correlator.render_entry ~vantage_count e)
           entries)
  | Count_is n -> Printf.sprintf "count: %d" n
  | Subscribed id -> Printf.sprintf "subscribed #%d" id
  | Unsubscribed id -> Printf.sprintf "unsubscribed #%d" id
  | Alert { sub; alert } -> Printf.sprintf "alert #%d %s" sub (render_alert alert)
  | Stats_are s ->
    Printf.sprintf
      "stats: entries=%d vantages=%d sessions=%d subscriptions=%d\n\
       live: batches=%d updates=%d open=%d days=%d\n\
       health: %s shed=%d timeouts=%d evicted=%d"
      s.st_entries s.st_vantages s.st_sessions s.st_subscriptions
      s.st_live_batches s.st_live_updates s.st_live_open s.st_live_days
      (if s.st_degraded then "degraded" else "ok")
      s.st_shed s.st_timeouts s.st_evicted
  | Rejected reason -> Printf.sprintf "rejected: %s" reason
