(** The MOAS serving daemon: an episode store behind the {!Proto} wire
    protocol, with per-session alert subscriptions fed by a live update
    tail.

    The server is transport-agnostic: {!handle} maps one encoded request
    frame to one encoded response frame, and {!pending} drains the
    session's queued alert frames — an in-process {!Client}, a socket
    loop or a test harness all drive the same entry points, and every
    byte crosses the {!Proto} codec in both directions.

    Queries are answered from the immutable store loaded at start-up.
    Alerts come from the live tail: {!tail} drains a {!Stream.Source.t}
    through {!Stream.Sharded.ingest_source} (the same ingestion entry
    point as the batch [monitor] subcommand) and diffs consecutive
    monitor snapshots into [Opened]/[Flagged]/[Closed] alerts, delivered
    to every matching subscription in a deterministic order: alerts
    sorted by (time, prefix, kind), and within one alert, subscriptions
    in ascending id.

    {!handle}, {!pending} and session management are safe to call from
    several domains concurrently (the bench load generator does);
    {!tail} must not run concurrently with itself. *)

type t

val create :
  ?metrics:Obs.Registry.t ->
  ?live_config:Stream.Monitor.config ->
  ?live_jobs:int ->
  store:Collect.Store.t ->
  unit ->
  t
(** A server over [store].  [live_config] (default
    {!Stream.Monitor.default_config}) and [live_jobs] (default 1)
    configure the live-tail monitor behind {!tail}.  [metrics] (default
    {!Obs.Registry.noop}) receives [serve_requests_total{kind}], the
    [serve_inflight] gauge, the [serve_request_seconds] latency
    histogram, [serve_alerts_total] and the [serve_sessions] gauge. *)

val store : t -> Collect.Store.t

(** {2 Sessions} *)

val open_session : t -> int
(** Register a session and return its id (ids count up from 1). *)

val close_session : t -> int -> unit
(** Drop a session, its subscriptions and any undelivered alerts.
    Unknown ids are ignored (closing twice is fine). *)

val session_count : t -> int
val subscription_count : t -> int

(** {2 The request path} *)

val handle : t -> session:int -> bytes -> bytes
(** Decode one request frame, execute it, encode the response frame.
    Malformed frames and unknown session ids produce a [Rejected]
    response (never an exception): the server stays up whatever the
    client sends. *)

val pending : t -> session:int -> bytes list
(** Drain the session's queued alert frames, oldest first.  Empty for an
    unknown session. *)

(** {2 The live tail} *)

val tail : ?max_batches:int -> t -> Stream.Source.t -> int
(** Ingest batches from the source into the live monitor (at most
    [max_batches]; all by default), diffing the monitor snapshot after
    each batch into alerts and queueing them on matching subscriptions.
    Returns the number of batches ingested.  Episode [Opened] alerts
    carry the episode start time, [Closed] its end time, and [Flagged]
    the monitor's stream clock at the settle point where the MOAS-list
    check failed (the latest event time ingested).

    A subscription's query filters alerts by prefix (exact or covered),
    origin membership and time; a [min_visibility] floor above 1 matches
    no live alerts, because the tail is a single merged feed (visibility
    comes from cross-vantage correlation, which happens upstream of the
    store, not in the tail). *)

val live_batches : t -> int
(** Batches ingested by {!tail} so far. *)

val live_stats : t -> Proto.stats
(** The totals behind the [Stats] request (store size, roster size,
    sessions, subscriptions, live-tail counters). *)
