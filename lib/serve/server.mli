(** The MOAS serving daemon: an episode store behind the {!Proto} wire
    protocol, with per-session alert subscriptions fed by a live update
    tail.

    The server is transport-agnostic: {!handle} maps one encoded request
    frame to one encoded response frame, and {!pending} drains the
    session's queued alert frames — an in-process {!Client}, a socket
    loop or a test harness all drive the same entry points, and every
    byte crosses the {!Proto} codec in both directions.

    Queries are answered from the immutable store loaded at start-up.
    Alerts come from the live tail: {!tail} drains a {!Stream.Source.t}
    through {!Stream.Sharded.ingest_source} (the same ingestion entry
    point as the batch [monitor] subcommand) and diffs consecutive
    monitor snapshots into [Opened]/[Flagged]/[Closed] alerts, delivered
    to every matching subscription in a deterministic order: alerts
    sorted by (time, prefix, kind), and within one alert, subscriptions
    in ascending id.

    {b Resilience.}  The server defends itself with {!limits}: a
    per-request deadline budget (requests whose budget is spent — in
    transit, queued, or during execution — are answered [Rejected
    "deadline exceeded"]), an in-flight cap (arrivals beyond it are
    answered [Rejected "overloaded: …"] without doing any work), a
    per-session outbox high-water mark (the {e oldest} queued alert is
    shed first, deterministically), and a slow-consumer eviction
    threshold (a session that keeps overflowing is dropped wholesale).
    If the live tail's source fails, the server degrades to read-only:
    queries and the stored state keep working, {!health} and the [Stats]
    reply report the degradation, and later {!tail} calls are no-ops.
    All of it is metered: [serve_shed_total{reason="overload"|"queue"}],
    [serve_timeouts_total], [serve_evicted_sessions] and the
    [serve_degraded] gauge — and mirrored in plain counters on the
    server so the [Stats] wire reply reports them even when metrics are
    disabled.

    {!handle}, {!pending} and session management are safe to call from
    several domains concurrently (the bench load generator does);
    {!tail} must not run concurrently with itself. *)

type t

(** {2 Resource limits} *)

type limits = {
  deadline : float;
      (** per-request budget in seconds, measured from the request's
          arrival time; [infinity] disables the check *)
  max_inflight : int;
      (** arrivals while this many requests are already in flight are
          shed with [Rejected] *)
  queue_high_water : int;
      (** per-session outbox bound, in frames; pushing past it sheds the
          oldest queued frame *)
  evict_after : int;
      (** a session whose lifetime shed count reaches this is evicted *)
}

val default_limits : limits
(** Generous defaults — [deadline = infinity], [max_inflight = max_int],
    [queue_high_water = 65536], [evict_after = max_int] — so a server
    created without explicit limits behaves like an unlimited one. *)

type health = Serving | Degraded of string

val create :
  ?metrics:Obs.Registry.t ->
  ?limits:limits ->
  ?now:(unit -> float) ->
  ?live_config:Stream.Monitor.config ->
  ?live_jobs:int ->
  ?live_snapshot:Stream.Monitor.snapshot ->
  store:Collect.Store.t ->
  unit ->
  t
(** A server over [store].  [live_config] (default
    {!Stream.Monitor.default_config}) and [live_jobs] (default 1)
    configure the live-tail monitor behind {!tail}.

    [limits] (default {!default_limits}) are the overload-protection
    knobs; invalid limits raise [Invalid_argument].  [now] (default
    [Unix.gettimeofday]) is the clock deadlines are measured on —
    injectable so tests and the chaos harness drive deadlines on a
    virtual clock, deterministically.

    [live_snapshot] resumes the live monitor from a {!Stream.Checkpoint}
    snapshot instead of starting empty: the monitor state is restored,
    the alert diff base is set to the snapshot (no alert that predates
    the checkpoint is re-raised), and {!tail} skips batches at or before
    the snapshot's stream clock — so a killed server restarted from its
    last checkpoint converges with the uninterrupted run.  When
    [live_snapshot] is given, [live_config] is ignored (the snapshot
    carries its own).

    [metrics] (default {!Obs.Registry.noop}) receives
    [serve_requests_total{kind}], the [serve_inflight] gauge, the
    [serve_request_seconds] latency histogram, [serve_alerts_total], the
    [serve_sessions] gauge, and the resilience instruments listed
    above. *)

val store : t -> Collect.Store.t
val limits : t -> limits

val health : t -> health
(** [Serving] until the live tail's source fails, [Degraded reason]
    after.  A degraded server still answers every request from state
    already ingested; it just stops tailing. *)

(** {2 Sessions} *)

val open_session : t -> int
(** Register a session and return its id (ids count up from 1). *)

val close_session : t -> int -> unit
(** Drop a session, its subscriptions and any undelivered alerts.
    Unknown ids are ignored (closing twice is fine). *)

val session_count : t -> int
val subscription_count : t -> int

val shed_total : t -> int
(** Frames and requests shed so far (queue overflow + overload),
    tracked on the server itself — available with metrics disabled. *)

val timeout_total : t -> int
(** Requests that blew their deadline budget. *)

val evicted_total : t -> int
(** Sessions evicted as slow consumers. *)

(** {2 The request path} *)

val handle : ?arrival:float -> t -> session:int -> bytes -> bytes
(** Decode one request frame, execute it, encode the response frame.
    Malformed frames and unknown session ids produce a [Rejected]
    response (never an exception): the server stays up whatever the
    client sends.

    [arrival] (default [now ()]) is when the request entered the system
    — a transport that queued or delayed the frame passes the original
    arrival so the deadline budget covers transit time.  The budget is
    checked before any work {e and} after execution: a reply computed
    after the deadline is replaced with [Rejected "deadline exceeded"]
    (its side effects, if any, stand — which is why the retrying client
    never blind-retries non-idempotent requests). *)

val pending : t -> session:int -> bytes list
(** Drain the session's queued alert frames, oldest first.  Empty for an
    unknown session.  When the outbox overflowed, the shed frames are
    simply absent: what remains is the {e newest} suffix in the original
    order. *)

(** {2 The live tail} *)

val tail :
  ?max_batches:int -> ?on_batch:(t -> unit) -> t -> Stream.Source.t -> int
(** Ingest batches from the source into the live monitor (at most
    [max_batches]; all by default), diffing the monitor snapshot after
    each batch into alerts and queueing them on matching subscriptions.
    [on_batch] runs after each batch's alerts are delivered (the serve
    CLI checkpoints from it).  Returns the number of batches ingested.
    Episode [Opened] alerts carry the episode start time, [Closed] its
    end time, and [Flagged] the monitor's stream clock at the settle
    point where the MOAS-list check failed (the latest event time
    ingested).

    If the source fails (its pull raises), the server transitions to
    [Degraded]: the exception is {e not} re-raised — the batches
    ingested so far are kept, the count so far is returned, the source
    is already closed (see {!Stream.Sharded.ingest_source}), and
    subsequent [tail] calls return 0 immediately.  On a server resumed
    from [live_snapshot], batches at or before the snapshot's stream
    clock are skipped.

    A subscription's query filters alerts by prefix (exact or covered),
    origin membership and time; a [min_visibility] floor above 1 matches
    no live alerts, because the tail is a single merged feed (visibility
    comes from cross-vantage correlation, which happens upstream of the
    store, not in the tail). *)

val live_snapshot : t -> Stream.Monitor.snapshot
(** The live monitor's merged snapshot — what the serve CLI writes as a
    {!Stream.Checkpoint}.  Call it between {!tail} runs (or from
    [on_batch]), not concurrently with one. *)

val live_batches : t -> int
(** Batches ingested by {!tail} {e in this process} (a resumed server
    does not count the batches its checkpoint already covered). *)

val live_stats : t -> Proto.stats
(** The totals behind the [Stats] request (store size, roster size,
    sessions, subscriptions, live-tail counters, health and shed /
    timeout / eviction counts). *)
