open Net
open Monitor

exception Corrupt of string

let magic = "MOASSTRM"
let version = 1

(* ------------------------------------------------------------------ *)
(* Writers — Net.Codec primitives, MOASSTRM layout *)

open Codec

let put_config buf c =
  put_i63 buf c.window;
  put_u16 buf c.short_max_days;
  put_u16 buf c.medium_max_days;
  put_i63 buf c.day_seconds

let put_counters buf c =
  put_i63 buf c.c_updates;
  put_i63 buf c.c_announces;
  put_i63 buf c.c_withdraws;
  put_i63 buf c.c_opened;
  put_i63 buf c.c_closed;
  put_i63 buf c.c_alerts;
  put_i63 buf c.c_days

let put_open_episode buf o =
  put_i63 buf o.o_seq;
  put_i63 buf o.o_started;
  put_i63 buf o.o_days;
  put_u32 buf o.o_max_origins;
  put_asn_set buf o.o_origins_ever;
  put_bool buf o.o_clean

let put_episode buf e =
  put_prefix buf e.e_prefix;
  put_i63 buf e.e_seq;
  put_i63 buf e.e_started;
  put_i63 buf e.e_ended;
  put_i63 buf e.e_days;
  put_u32 buf e.e_max_origins;
  put_asn_set buf e.e_origins_ever;
  put_bool buf e.e_clean

let put_prefix_state buf p =
  put_prefix buf p.p_prefix;
  put_list buf
    (fun buf o ->
      put_asn buf o.origin;
      put_option buf put_asn_set o.adv_list)
    p.p_origins;
  put_option buf put_open_episode p.p_open;
  put_i63 buf p.p_closed_count

let put_window buf (idx, w) =
  put_i63 buf idx;
  put_i63 buf w.w_updates;
  put_i63 buf w.w_opened;
  put_i63 buf w.w_closed;
  put_i63 buf w.w_alerts

let encode snap =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  put_u8 buf version;
  put_config buf snap.s_config;
  put_counters buf snap.s_counters;
  put_i63 buf snap.s_last_time;
  put_list buf put_prefix_state snap.s_prefixes;
  put_list buf put_episode snap.s_closed;
  put_list buf put_window snap.s_windows;
  Buffer.to_bytes buf

(* ------------------------------------------------------------------ *)
(* Readers *)

let take_config c =
  let window = take_i63 c in
  let short_max_days = take_u16 c in
  let medium_max_days = take_u16 c in
  let day_seconds = take_i63 c in
  { window; short_max_days; medium_max_days; day_seconds }

let take_counters c =
  let c_updates = take_i63 c in
  let c_announces = take_i63 c in
  let c_withdraws = take_i63 c in
  let c_opened = take_i63 c in
  let c_closed = take_i63 c in
  let c_alerts = take_i63 c in
  let c_days = take_i63 c in
  { c_updates; c_announces; c_withdraws; c_opened; c_closed; c_alerts; c_days }

let take_open_episode c =
  let o_seq = take_i63 c in
  let o_started = take_i63 c in
  let o_days = take_i63 c in
  let o_max_origins = take_u32 c in
  let o_origins_ever = take_asn_set c in
  let o_clean = take_bool c in
  { o_seq; o_started; o_days; o_max_origins; o_origins_ever; o_clean }

let take_episode c =
  let e_prefix = take_prefix c in
  let e_seq = take_i63 c in
  let e_started = take_i63 c in
  let e_ended = take_i63 c in
  let e_days = take_i63 c in
  let e_max_origins = take_u32 c in
  let e_origins_ever = take_asn_set c in
  let e_clean = take_bool c in
  { e_prefix; e_seq; e_started; e_ended; e_days; e_max_origins; e_origins_ever; e_clean }

let take_prefix_state c =
  let p_prefix = take_prefix c in
  let p_origins =
    take_list c (fun c ->
        let origin = take_asn c in
        let adv_list = take_option c take_asn_set in
        { origin; adv_list })
  in
  let p_open = take_option c take_open_episode in
  let p_closed_count = take_i63 c in
  { p_prefix; p_origins; p_open; p_closed_count }

let take_window c =
  let idx = take_i63 c in
  let w_updates = take_i63 c in
  let w_opened = take_i63 c in
  let w_closed = take_i63 c in
  let w_alerts = take_i63 c in
  (idx, { w_updates; w_opened; w_closed; w_alerts })

let decode data =
  let c = Codec.cursor ~fail:(fun m -> Corrupt m) data in
  if Bytes.length data < String.length magic then raise (Corrupt "not a checkpoint");
  expect_magic c magic;
  (match Codec.take_u8 c with
  | v when v = version -> ()
  | v -> raise (Corrupt (Printf.sprintf "unsupported checkpoint version %d" v)));
  let s_config = take_config c in
  (try ignore (Monitor.create s_config)
   with Invalid_argument m -> raise (Corrupt ("config: " ^ m)));
  let s_counters = take_counters c in
  let s_last_time = take_i63 c in
  let s_prefixes = take_list c take_prefix_state in
  let s_closed = take_list c take_episode in
  let s_windows = take_list c take_window in
  expect_end c;
  { s_config; s_counters; s_last_time; s_prefixes; s_closed; s_windows }

(* ------------------------------------------------------------------ *)
(* Files *)

let write_file path snap =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (encode snap))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let data = Bytes.create n in
      really_input ic data 0 n;
      decode data)
