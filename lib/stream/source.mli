(** Stream sources for the online monitor: adapters that turn the
    synthetic RouteViews archive, MRT table-dump bytes or decoded BGP
    wire messages into timestamped event batches.

    The archive adapter replays the daily dumps as a {e diff stream}:
    consecutive tables are compared and only membership changes become
    announce/withdraw events, with withdrawals ordered before the
    re-announcements that carry a prefix's refreshed MOAS list.  Each
    observed day is one batch (fed to {!Sharded.ingest_batch} with
    [~day_end:true]), so per-episode day counts line up exactly with the
    snapshot-based {!Measurement.Moas_cases} analysis. *)

open Net

type batch = {
  time : int;  (** batch timestamp, seconds (day boundary for the archive) *)
  day : Mutil.Day.t option;  (** the observed day, for archive batches *)
  events : Monitor.event array;
}

val day_seconds : int
(** 86400: archive timestamps are [day * day_seconds], with days counted
    from 1997-01-01 like {!Mutil.Day}. *)

type annotator = Prefix.t -> Asn.Set.t -> Asn.t -> Asn.Set.t option
(** [annotate prefix origins origin] is the MOAS list that [origin]
    attaches when announcing [prefix] while the full origin set is
    [origins] — the archive records no community attributes, so list
    placement is a replay policy. *)

val no_annotation : annotator
(** No announcement carries a list: every conflict raises an alert. *)

(** {2 The uniform pull interface}

    Every source — the synthetic archive, MRT table dumps, decoded wire
    messages, pre-materialised batches — opens as a {!t} and is drained
    with {!next}/{!close}.  The serving daemon's live tail and the batch
    [monitor] subcommand both ingest through
    {!Sharded.ingest_source}, so there is exactly one ingestion entry
    point regardless of where the updates come from. *)

type t
(** An open, single-pass stream of batches. *)

val next : t -> batch option
(** Pull the next batch; [None] once exhausted or after {!close}. *)

val close : t -> unit
(** Release the source; subsequent {!next} calls return [None].
    Idempotent. *)

val fold : t -> init:'a -> f:('a -> batch -> 'a) -> 'a
(** Drain the source (closing it when done, also on exceptions). *)

val of_archive :
  ?annotate:annotator -> Measurement.Synthetic_routeviews.params -> t
(** The synthetic RouteViews archive as a pull source: one batch per
    observed day, generated on demand (one day's table in memory). *)

val of_batches : batch array -> t
(** A pre-materialised batch sequence. *)

val of_seq : batch Seq.t -> t
(** Any single-pass batch producer. *)

val of_wire_feed : (int * Asn.t * Bgp.Wire.message) list -> t
(** One batch per decoded BGP UPDATE, as [(time, peer, message)]
    (events via {!of_wire}). *)

val of_mrt_blobs : bytes list -> t
(** One batch per MRT TABLE_DUMP blob (events via {!of_mrt}). *)

val trusted_annotator : ?distrusted:Asn.Set.t -> unit -> annotator
(** Cooperating origins advertise the full (consistent) origin set —
    legitimate multi-homing conflicts validate cleanly — except when the
    set involves a [distrusted] AS, in which case nobody vouches for the
    announcement and the conflict is flagged.  Replaying the archive with
    the two fault ASes distrusted makes the alert stream spike exactly at
    1998-04-07 and 2001-04-06. *)

val fold_archive :
  ?annotate:annotator ->
  Measurement.Synthetic_routeviews.params ->
  init:'a ->
  f:('a -> batch -> 'a) ->
  'a
(** Fold over the archive's observed days as event batches, in
    chronological order, holding only one day's table in memory. *)

val archive_batches :
  ?annotate:annotator ->
  Measurement.Synthetic_routeviews.params ->
  batch array
(** The whole archive materialised (for benchmarks that want to time the
    monitor without the generator). *)

val of_wire : time:int -> peer:Asn.t -> Bgp.Wire.message -> Monitor.event array
(** Events carried by one decoded BGP UPDATE: withdrawals (attributed to
    [peer]) then announcements (origin = AS-path tail, falling back to
    [peer]; MOAS list decoded from the community attribute). *)

val of_mrt : bytes -> batch
(** One batch per TABLE_DUMP blob, via the constant-memory
    {!Measurement.Mrt.fold_records}; every record is an announcement and
    the batch time is the latest record timestamp. *)
