(** Deterministic text report over a monitor snapshot.

    Everything here is computed from the canonical {!Monitor.snapshot}
    alone — no wall-clock readings, no job counts — so the rendered bytes
    are identical at any [--jobs] setting and across checkpoint/restore
    boundaries.  That identity is asserted by the test suite and CI. *)

type episode_view = {
  v_prefix : Net.Prefix.t;
  v_seq : int;
  v_started : int;
  v_ended : int option;  (** [None] while still open *)
  v_days : int;
  v_max_origins : int;
  v_origins : Net.Asn.Set.t;
  v_clean : bool;
}

val episodes : Monitor.snapshot -> episode_view list
(** Closed and still-open episodes in one list, sorted by
    (prefix, start time, recurrence index). *)

type duration_class = Monitor.bucket = Short | Medium | Long
(** Deprecated spelling of {!Monitor.bucket}, kept for existing callers;
    the one definition now lives on the monitor so queries and the
    classifier share it. *)

val classify : Monitor.config -> int -> duration_class
(** {!Monitor.bucket_of_days}: bucket a day count per the config (a
    not-yet-marked episode counts as one day). *)

val paper_buckets : episode_view list -> (string * int) list
(** Episode counts in the Figure 5 duration buckets
    (1, 2, 3-7, 8-30, 31-90, 91-365, >365 days). *)

val render : ?top_windows:int -> Monitor.snapshot -> string
(** The monitor report: stream totals, open/closed episode counts,
    MOAS-list validation verdicts, recurrence, duration histograms, and
    the busiest alert windows ([top_windows], default 5). *)
