(** Parallel ingest for the online monitor: prefixes are hash-partitioned
    over [jobs] {!Monitor} shards and each batch is processed on the
    {!Exec.Pool} domain pool.

    Because per-prefix state is independent and the partition preserves
    per-prefix event order, the merged {!snapshot} — and therefore the
    rendered report and the checkpoint bytes — is byte-identical at every
    job count.  Per-shard metric registries are merged additively with
    {!Obs.Registry.merge}, so counter totals are job-count-invariant too
    (wall-clock instruments, of course, are not). *)

type t

val create : ?metrics:Obs.Registry.t -> ?jobs:int -> Monitor.config -> t
(** [jobs] defaults to {!Exec.Pool.default_jobs} and is clamped to at
    least 1.  When [metrics] is live, each shard gets its own registry
    (merged on demand by {!metrics}) and [metrics] itself receives the
    driver-side instruments: [stream_batches_total], [stream_days_total],
    the [stream_batch_seconds] ingest-latency histogram, and the
    [stream_open_episodes] gauge. *)

val jobs : t -> int
val config : t -> Monitor.config

val ingest_batch : ?day_end:bool -> t -> time:int -> Monitor.event array -> unit
(** Partition one batch across the shards and process it in parallel.
    Each shard ends the batch with {!Monitor.settle} at [time] — or, when
    [day_end] is set, {!Monitor.mark_day} (the batch closed an observed
    collection day).  Batches smaller than {!parallel_threshold} are
    ingested inline (shards in index order) because a domain spawn costs
    more than they do; either dispatch yields identical shard state. *)

val parallel_threshold : int
(** Minimum batch size (in events) at which ingest is dispatched on the
    {!Exec.Pool} rather than inline. *)

val open_count : t -> int
(** Currently open episodes, summed over shards. *)

val update_count : t -> int
(** Events ingested, summed over shards. *)

val day_count : t -> int
(** Observed days marked so far. *)

val snapshot : t -> Monitor.snapshot
(** The merged canonical snapshot of all shards (see
    {!Monitor.merge_snapshots}); identical at any job count. *)

val of_snapshot :
  ?metrics:Obs.Registry.t -> ?jobs:int -> Monitor.snapshot -> t
(** Rebuild a sharded monitor from a (merged) snapshot, re-partitioning
    the per-prefix state over the requested job count — a checkpoint
    taken at one [--jobs] setting restores at any other. *)

val metrics : t -> Obs.Registry.t
(** A fresh registry holding the merge of the driver registry and every
    shard registry (empty when metrics were disabled). *)
