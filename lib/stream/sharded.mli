(** Parallel ingest for the online monitor: prefixes are hash-partitioned
    over [jobs] {!Monitor} shards and each batch is processed on the
    {!Exec.Pool} domain pool.

    Because per-prefix state is independent and the partition preserves
    per-prefix event order, the merged {!snapshot} — and therefore the
    rendered report and the checkpoint bytes — is byte-identical at every
    job count.  Per-shard metric registries are merged additively with
    {!Obs.Registry.merge}, so counter totals are job-count-invariant too
    (wall-clock instruments, of course, are not). *)

type t

val create : ?metrics:Obs.Registry.t -> ?jobs:int -> Monitor.config -> t
(** [jobs] defaults to {!Exec.Pool.default_jobs} and is clamped to at
    least 1.  When [metrics] is live, each shard gets its own registry
    (merged on demand by {!metrics}) and [metrics] itself receives the
    driver-side instruments: [stream_batches_total], [stream_days_total],
    the [stream_batch_seconds] ingest-latency histogram, and the
    [stream_open_episodes] gauge. *)

val jobs : t -> int
val config : t -> Monitor.config

val ingest_batch : ?day_end:bool -> t -> time:int -> Monitor.event array -> unit
(** Partition one batch across the shards and process it in parallel.
    Each shard ends the batch with {!Monitor.settle} at [time] — or, when
    [day_end] is set, {!Monitor.mark_day} (the batch closed an observed
    collection day).  Batches smaller than {!parallel_threshold} are
    ingested inline (shards in index order) because a domain spawn costs
    more than they do; either dispatch yields identical shard state. *)

val parallel_threshold : int
(** Minimum batch size (in events) at which ingest is dispatched on the
    {!Exec.Pool} rather than inline. *)

val ingest_source :
  ?since:int ->
  ?max_batches:int ->
  ?on_batch:(t -> Source.batch -> unit) ->
  t ->
  Source.t ->
  int
(** Drain a {!Source.t} into the monitor — the {e single} ingestion
    entry point shared by the batch [monitor] subcommand and the serving
    daemon's live tail.  Batches at or before [since] are skipped
    (checkpoint resume); a batch carrying a [day] is ingested with
    [~day_end:true]; [on_batch] runs after each ingested batch (its
    exceptions propagate, which is how callers stop early); at most
    [max_batches] batches are ingested, the rest stay in the source for
    a later call.  Returns the number of batches ingested.

    Failure is contained: if the source's pull, the ingest, or [on_batch]
    raises, the source is {!Source.close}d before the exception escapes
    (no half-drained source leaks), and the monitor's state at the
    failure point is defined — every batch for which [on_batch] ran (or
    would have run) is fully ingested and settled.  A pull or [on_batch]
    failure therefore leaves the monitor exactly at the last completed
    batch; only a failure {e inside} {!ingest_batch} itself (e.g. a
    malformed event) can leave the current batch partially applied, which
    is why crash-recovery restarts from the last checkpoint rather than
    trusting in-memory state. *)

val open_count : t -> int
(** Currently open episodes, summed over shards. *)

val update_count : t -> int
(** Events ingested, summed over shards. *)

val day_count : t -> int
(** Observed days marked so far. *)

val snapshot : t -> Monitor.snapshot
(** The merged canonical snapshot of all shards (see
    {!Monitor.merge_snapshots}); identical at any job count. *)

val of_snapshot :
  ?metrics:Obs.Registry.t -> ?jobs:int -> Monitor.snapshot -> t
(** Rebuild a sharded monitor from a (merged) snapshot, re-partitioning
    the per-prefix state over the requested job count — a checkpoint
    taken at one [--jobs] setting restores at any other. *)

val metrics : t -> Obs.Registry.t
(** A fresh registry holding the merge of the driver registry and every
    shard registry (empty when metrics were disabled). *)
