open Net
module Registry = Obs.Registry

(* ------------------------------------------------------------------ *)
(* Events *)

type action =
  | Announce of { origin : Asn.t; moas_list : Asn.Set.t option }
  | Withdraw of { origin : Asn.t }

type event = { time : int; peer : Asn.t; prefix : Prefix.t; action : action }

(* ------------------------------------------------------------------ *)
(* Configuration *)

type config = {
  window : int;
  short_max_days : int;
  medium_max_days : int;
  day_seconds : int;
}

let default_config =
  { window = 86_400; short_max_days = 1; medium_max_days = 60; day_seconds = 86_400 }

let validate_config c =
  if c.window <= 0 then invalid_arg "Stream.Monitor: window must be positive";
  if c.day_seconds <= 0 then invalid_arg "Stream.Monitor: day_seconds must be positive";
  if c.short_max_days < 1 || c.medium_max_days <= c.short_max_days then
    invalid_arg "Stream.Monitor: need 1 <= short_max_days < medium_max_days"

(* ------------------------------------------------------------------ *)
(* Canonical (snapshot) representation *)

type origin_entry = { origin : Asn.t; adv_list : Asn.Set.t option }

type open_episode = {
  o_seq : int;
  o_started : int;
  o_days : int;
  o_max_origins : int;
  o_origins_ever : Asn.Set.t;
  o_clean : bool;
}

type episode = {
  e_prefix : Prefix.t;
  e_seq : int;
  e_started : int;
  e_ended : int;
  e_days : int;
  e_max_origins : int;
  e_origins_ever : Asn.Set.t;
  e_clean : bool;
}

type prefix_state = {
  p_prefix : Prefix.t;
  p_origins : origin_entry list;
  p_open : open_episode option;
  p_closed_count : int;
}

type window_counts = {
  w_updates : int;
  w_opened : int;
  w_closed : int;
  w_alerts : int;
}

type counters = {
  c_updates : int;
  c_announces : int;
  c_withdraws : int;
  c_opened : int;
  c_closed : int;
  c_alerts : int;
  c_days : int;
}

let zero_counters =
  {
    c_updates = 0;
    c_announces = 0;
    c_withdraws = 0;
    c_opened = 0;
    c_closed = 0;
    c_alerts = 0;
    c_days = 0;
  }

type snapshot = {
  s_config : config;
  s_counters : counters;
  s_last_time : int;
  s_prefixes : prefix_state list;
  s_closed : episode list;
  s_windows : (int * window_counts) list;
}

let empty_snapshot config =
  validate_config config;
  {
    s_config = config;
    s_counters = zero_counters;
    s_last_time = 0;
    s_prefixes = [];
    s_closed = [];
    s_windows = [];
  }

let compare_episode a b =
  let c = Prefix.compare a.e_prefix b.e_prefix in
  if c <> 0 then c
  else
    let c = compare a.e_started b.e_started in
    if c <> 0 then c else compare a.e_seq b.e_seq

(* Counters of disjoint shards add; [c_days] is the exception because a
   day mark is delivered to every shard, so each shard already holds the
   full count and the merge takes the maximum. *)
let merge_counters a b =
  {
    c_updates = a.c_updates + b.c_updates;
    c_announces = a.c_announces + b.c_announces;
    c_withdraws = a.c_withdraws + b.c_withdraws;
    c_opened = a.c_opened + b.c_opened;
    c_closed = a.c_closed + b.c_closed;
    c_alerts = a.c_alerts + b.c_alerts;
    c_days = max a.c_days b.c_days;
  }

let merge_window_counts a b =
  {
    w_updates = a.w_updates + b.w_updates;
    w_opened = a.w_opened + b.w_opened;
    w_closed = a.w_closed + b.w_closed;
    w_alerts = a.w_alerts + b.w_alerts;
  }

module Int_map = Map.Make (Int)

let merge_snapshots = function
  | [] -> invalid_arg "Stream.Monitor.merge_snapshots: empty list"
  | first :: _ as snaps ->
    let counters =
      List.fold_left (fun acc s -> merge_counters acc s.s_counters)
        zero_counters snaps
    in
    let last_time =
      List.fold_left (fun acc s -> max acc s.s_last_time) 0 snaps
    in
    let prefixes =
      List.concat_map (fun s -> s.s_prefixes) snaps
      |> List.sort (fun a b -> Prefix.compare a.p_prefix b.p_prefix)
    in
    let closed =
      List.concat_map (fun s -> s.s_closed) snaps |> List.sort compare_episode
    in
    let windows =
      List.fold_left
        (fun m s ->
          List.fold_left
            (fun m (idx, w) ->
              Int_map.update idx
                (function
                  | None -> Some w
                  | Some prev -> Some (merge_window_counts prev w))
                m)
            m s.s_windows)
        Int_map.empty snaps
    in
    {
      s_config = first.s_config;
      s_counters = counters;
      s_last_time = last_time;
      s_prefixes = prefixes;
      s_closed = closed;
      s_windows = Int_map.bindings windows;
    }

(* ------------------------------------------------------------------ *)
(* Live monitor state *)

type open_state = {
  os_seq : int;
  os_started : int;
  mutable os_days : int;
  mutable os_max_origins : int;
  mutable os_origins_ever : Asn.Set.t;
  mutable os_clean : bool;
}

type pstate = {
  mutable origins : Asn.Set.t option Asn.Map.t;
  mutable open_ep : open_state option;
  mutable closed_count : int;
}

type wstate = {
  mutable wu : int;
  mutable wo : int;
  mutable wc : int;
  mutable wa : int;
}

type t = {
  cfg : config;
  tbl : (Prefix.t, pstate) Hashtbl.t;
  open_tbl : (Prefix.t, pstate) Hashtbl.t;
  dirty : (Prefix.t, unit) Hashtbl.t;
  mutable closed : episode list;  (* reverse completion order *)
  windows : (int, wstate) Hashtbl.t;
  mutable updates : int;
  mutable announces : int;
  mutable withdraws : int;
  mutable opened : int;
  mutable closed_n : int;
  mutable alerts : int;
  mutable days : int;
  mutable last_time : int;
  m_updates : Registry.Counter.t;
  m_announces : Registry.Counter.t;
  m_withdraws : Registry.Counter.t;
  m_opened : Registry.Counter.t;
  m_closed : Registry.Counter.t;
  m_alerts : Registry.Counter.t;
}

let create ?(metrics = Registry.noop) cfg =
  validate_config cfg;
  {
    cfg;
    tbl = Hashtbl.create 1024;
    open_tbl = Hashtbl.create 256;
    dirty = Hashtbl.create 256;
    closed = [];
    windows = Hashtbl.create 64;
    updates = 0;
    announces = 0;
    withdraws = 0;
    opened = 0;
    closed_n = 0;
    alerts = 0;
    days = 0;
    last_time = 0;
    m_updates = Registry.counter metrics "stream_updates_total";
    m_announces = Registry.counter metrics "stream_announces_total";
    m_withdraws = Registry.counter metrics "stream_withdraws_total";
    m_opened = Registry.counter metrics "stream_episodes_opened_total";
    m_closed = Registry.counter metrics "stream_episodes_closed_total";
    m_alerts = Registry.counter metrics "stream_alerts_total";
  }

let config t = t.cfg
let open_count t = Hashtbl.length t.open_tbl
let update_count t = t.updates
let day_count t = t.days

let wslot t time =
  let idx = time / t.cfg.window in
  match Hashtbl.find_opt t.windows idx with
  | Some w -> w
  | None ->
    let w = { wu = 0; wo = 0; wc = 0; wa = 0 } in
    Hashtbl.add t.windows idx w;
    w

let pstate_of t prefix =
  match Hashtbl.find_opt t.tbl prefix with
  | Some ps -> ps
  | None ->
    let ps = { origins = Asn.Map.empty; open_ep = None; closed_count = 0 } in
    Hashtbl.add t.tbl prefix ps;
    ps

let close_episode t prefix ps os ~time =
  ps.open_ep <- None;
  ps.closed_count <- ps.closed_count + 1;
  Hashtbl.remove t.open_tbl prefix;
  t.closed <-
    {
      e_prefix = prefix;
      e_seq = os.os_seq;
      e_started = os.os_started;
      e_ended = time;
      e_days = os.os_days;
      e_max_origins = os.os_max_origins;
      e_origins_ever = os.os_origins_ever;
      e_clean = os.os_clean;
    }
    :: t.closed;
  t.closed_n <- t.closed_n + 1;
  Registry.Counter.incr t.m_closed;
  let w = wslot t time in
  w.wc <- w.wc + 1

let ingest t ev =
  t.updates <- t.updates + 1;
  Registry.Counter.incr t.m_updates;
  if ev.time > t.last_time then t.last_time <- ev.time;
  let w = wslot t ev.time in
  w.wu <- w.wu + 1;
  match ev.action with
  | Announce { origin; moas_list } ->
    t.announces <- t.announces + 1;
    Registry.Counter.incr t.m_announces;
    let ps = pstate_of t ev.prefix in
    ps.origins <- Asn.Map.add origin moas_list ps.origins;
    let card = Asn.Map.cardinal ps.origins in
    (match ps.open_ep with
    | Some os ->
      if card > os.os_max_origins then os.os_max_origins <- card;
      os.os_origins_ever <- Asn.Set.add origin os.os_origins_ever;
      Hashtbl.replace t.dirty ev.prefix ()
    | None ->
      if card > 1 then begin
        let os =
          {
            os_seq = ps.closed_count + 1;
            os_started = ev.time;
            os_days = 0;
            os_max_origins = card;
            os_origins_ever =
              Asn.Map.fold (fun o _ s -> Asn.Set.add o s) ps.origins
                Asn.Set.empty;
            os_clean = true;
          }
        in
        ps.open_ep <- Some os;
        Hashtbl.replace t.open_tbl ev.prefix ps;
        Hashtbl.replace t.dirty ev.prefix ();
        t.opened <- t.opened + 1;
        Registry.Counter.incr t.m_opened;
        w.wo <- w.wo + 1
      end)
  | Withdraw { origin } -> (
    t.withdraws <- t.withdraws + 1;
    Registry.Counter.incr t.m_withdraws;
    match Hashtbl.find_opt t.tbl ev.prefix with
    | None -> ()
    | Some ps ->
      if Asn.Map.mem origin ps.origins then begin
        ps.origins <- Asn.Map.remove origin ps.origins;
        (match ps.open_ep with
        | Some os when Asn.Map.cardinal ps.origins <= 1 ->
          close_episode t ev.prefix ps os ~time:ev.time
        | _ -> ());
        if
          Asn.Map.is_empty ps.origins && ps.open_ep = None
          && ps.closed_count = 0
        then Hashtbl.remove t.tbl ev.prefix
      end)

(* The paper's consistency criterion, evaluated over the settled state of
   a conflicted prefix: every current origin must advertise a MOAS list,
   all lists must agree, and the agreed list must contain every current
   origin.  A conflict that fails the check is an alarm. *)
let origins_validated origins =
  let lists = Asn.Map.fold (fun _ l acc -> l :: acc) origins [] in
  match lists with
  | [] | [ _ ] -> true
  | first :: rest -> (
    match first with
    | None -> false
    | Some list ->
      List.for_all
        (function None -> false | Some l -> Moas.Moas_list.consistent l list)
        rest
      && Asn.Map.for_all (fun o _ -> Asn.Set.mem o list) origins)

let settle t ~time =
  if Hashtbl.length t.dirty > 0 then begin
    Hashtbl.iter
      (fun prefix () ->
        match Hashtbl.find_opt t.tbl prefix with
        | Some ({ open_ep = Some os; _ } as ps) when os.os_clean ->
          if not (origins_validated ps.origins) then begin
            os.os_clean <- false;
            t.alerts <- t.alerts + 1;
            Registry.Counter.incr t.m_alerts;
            let w = wslot t time in
            w.wa <- w.wa + 1
          end
        | _ -> ())
      t.dirty;
    Hashtbl.reset t.dirty
  end

let mark_day t ~time =
  settle t ~time;
  t.days <- t.days + 1;
  if time > t.last_time then t.last_time <- time;
  Hashtbl.iter
    (fun _ ps ->
      match ps.open_ep with
      | Some os -> os.os_days <- os.os_days + 1
      | None -> ())
    t.open_tbl

(* ------------------------------------------------------------------ *)
(* Snapshot / restore *)

let counters t =
  {
    c_updates = t.updates;
    c_announces = t.announces;
    c_withdraws = t.withdraws;
    c_opened = t.opened;
    c_closed = t.closed_n;
    c_alerts = t.alerts;
    c_days = t.days;
  }

let snapshot t =
  let prefixes =
    Hashtbl.fold
      (fun prefix ps acc ->
        let p_origins =
          List.map
            (fun (origin, adv_list) -> { origin; adv_list })
            (Asn.Map.bindings ps.origins)
        in
        let p_open =
          Option.map
            (fun os ->
              {
                o_seq = os.os_seq;
                o_started = os.os_started;
                o_days = os.os_days;
                o_max_origins = os.os_max_origins;
                o_origins_ever = os.os_origins_ever;
                o_clean = os.os_clean;
              })
            ps.open_ep
        in
        { p_prefix = prefix; p_origins; p_open; p_closed_count = ps.closed_count }
        :: acc)
      t.tbl []
    |> List.sort (fun a b -> Prefix.compare a.p_prefix b.p_prefix)
  in
  let windows =
    Hashtbl.fold
      (fun idx w acc ->
        (idx, { w_updates = w.wu; w_opened = w.wo; w_closed = w.wc; w_alerts = w.wa })
        :: acc)
      t.windows []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    s_config = t.cfg;
    s_counters = counters t;
    s_last_time = t.last_time;
    s_prefixes = prefixes;
    s_closed = List.sort compare_episode t.closed;
    s_windows = windows;
  }

let restore ?metrics snap =
  let t = create ?metrics snap.s_config in
  List.iter
    (fun p ->
      let origins =
        List.fold_left
          (fun m e -> Asn.Map.add e.origin e.adv_list m)
          Asn.Map.empty p.p_origins
      in
      let open_ep =
        Option.map
          (fun o ->
            {
              os_seq = o.o_seq;
              os_started = o.o_started;
              os_days = o.o_days;
              os_max_origins = o.o_max_origins;
              os_origins_ever = o.o_origins_ever;
              os_clean = o.o_clean;
            })
          p.p_open
      in
      let ps = { origins; open_ep; closed_count = p.p_closed_count } in
      Hashtbl.replace t.tbl p.p_prefix ps;
      if open_ep <> None then Hashtbl.replace t.open_tbl p.p_prefix ps)
    snap.s_prefixes;
  t.closed <- List.rev snap.s_closed;
  List.iter
    (fun (idx, w) ->
      Hashtbl.replace t.windows idx
        { wu = w.w_updates; wo = w.w_opened; wc = w.w_closed; wa = w.w_alerts })
    snap.s_windows;
  let c = snap.s_counters in
  t.updates <- c.c_updates;
  t.announces <- c.c_announces;
  t.withdraws <- c.c_withdraws;
  t.opened <- c.c_opened;
  t.closed_n <- c.c_closed;
  t.alerts <- c.c_alerts;
  t.days <- c.c_days;
  t.last_time <- snap.s_last_time;
  (* surface the restored history on the registry, so metrics after a
     restart line up with an uninterrupted run *)
  Registry.Counter.add t.m_updates c.c_updates;
  Registry.Counter.add t.m_announces c.c_announces;
  Registry.Counter.add t.m_withdraws c.c_withdraws;
  Registry.Counter.add t.m_opened c.c_opened;
  Registry.Counter.add t.m_closed c.c_closed;
  Registry.Counter.add t.m_alerts c.c_alerts;
  t
