open Net
module Registry = Obs.Registry

(* ------------------------------------------------------------------ *)
(* Events *)

type action =
  | Announce of { origin : Asn.t; moas_list : Asn.Set.t option }
  | Withdraw of { origin : Asn.t }

type event = { time : int; peer : Asn.t; prefix : Prefix.t; action : action }

(* ------------------------------------------------------------------ *)
(* Configuration *)

type config = {
  window : int;
  short_max_days : int;
  medium_max_days : int;
  day_seconds : int;
}

let default_config =
  { window = 86_400; short_max_days = 1; medium_max_days = 60; day_seconds = 86_400 }

let validate_config c =
  if c.window <= 0 then invalid_arg "Stream.Monitor: window must be positive";
  if c.day_seconds <= 0 then invalid_arg "Stream.Monitor: day_seconds must be positive";
  if c.short_max_days < 1 || c.medium_max_days <= c.short_max_days then
    invalid_arg "Stream.Monitor: need 1 <= short_max_days < medium_max_days"

(* ------------------------------------------------------------------ *)
(* Duration buckets (paper Section 3) *)

type bucket = Short | Medium | Long

let bucket_of_days cfg days =
  let days = max 1 days in
  if days <= cfg.short_max_days then Short
  else if days <= cfg.medium_max_days then Medium
  else Long

let bucket_to_string = function
  | Short -> "short"
  | Medium -> "medium"
  | Long -> "long"

let bucket_of_string s =
  match String.lowercase_ascii s with
  | "short" -> Ok Short
  | "medium" -> Ok Medium
  | "long" -> Ok Long
  | other ->
    Error
      (Printf.sprintf "unknown bucket %S (expected short, medium or long)"
         other)

let bucket_label = function
  | Short -> "short-lived"
  | Medium -> "medium-lived"
  | Long -> "long-lived"

let bucket_rank = function Short -> 0 | Medium -> 1 | Long -> 2
let compare_bucket a b = Int.compare (bucket_rank a) (bucket_rank b)

(* ------------------------------------------------------------------ *)
(* Canonical (snapshot) representation *)

type origin_entry = { origin : Asn.t; adv_list : Asn.Set.t option }

type open_episode = {
  o_seq : int;
  o_started : int;
  o_days : int;
  o_max_origins : int;
  o_origins_ever : Asn.Set.t;
  o_clean : bool;
}

type episode = {
  e_prefix : Prefix.t;
  e_seq : int;
  e_started : int;
  e_ended : int;
  e_days : int;
  e_max_origins : int;
  e_origins_ever : Asn.Set.t;
  e_clean : bool;
}

type prefix_state = {
  p_prefix : Prefix.t;
  p_origins : origin_entry list;
  p_open : open_episode option;
  p_closed_count : int;
}

type window_counts = {
  w_updates : int;
  w_opened : int;
  w_closed : int;
  w_alerts : int;
}

type counters = {
  c_updates : int;
  c_announces : int;
  c_withdraws : int;
  c_opened : int;
  c_closed : int;
  c_alerts : int;
  c_days : int;
}

let zero_counters =
  {
    c_updates = 0;
    c_announces = 0;
    c_withdraws = 0;
    c_opened = 0;
    c_closed = 0;
    c_alerts = 0;
    c_days = 0;
  }

type snapshot = {
  s_config : config;
  s_counters : counters;
  s_last_time : int;
  s_prefixes : prefix_state list;
  s_closed : episode list;
  s_windows : (int * window_counts) list;
}

let empty_snapshot config =
  validate_config config;
  {
    s_config = config;
    s_counters = zero_counters;
    s_last_time = 0;
    s_prefixes = [];
    s_closed = [];
    s_windows = [];
  }

let compare_episode a b =
  let c = Prefix.compare a.e_prefix b.e_prefix in
  if c <> 0 then c
  else
    let c = Int.compare a.e_started b.e_started in
    if c <> 0 then c else Int.compare a.e_seq b.e_seq

(* Counters of disjoint shards add; [c_days] is the exception because a
   day mark is delivered to every shard, so each shard already holds the
   full count and the merge takes the maximum. *)
let merge_counters a b =
  {
    c_updates = a.c_updates + b.c_updates;
    c_announces = a.c_announces + b.c_announces;
    c_withdraws = a.c_withdraws + b.c_withdraws;
    c_opened = a.c_opened + b.c_opened;
    c_closed = a.c_closed + b.c_closed;
    c_alerts = a.c_alerts + b.c_alerts;
    c_days = max a.c_days b.c_days;
  }

let merge_window_counts a b =
  {
    w_updates = a.w_updates + b.w_updates;
    w_opened = a.w_opened + b.w_opened;
    w_closed = a.w_closed + b.w_closed;
    w_alerts = a.w_alerts + b.w_alerts;
  }

module Int_map = Map.Make (Int)

let merge_snapshots = function
  | [] -> invalid_arg "Stream.Monitor.merge_snapshots: empty list"
  | first :: _ as snaps ->
    let counters =
      List.fold_left (fun acc s -> merge_counters acc s.s_counters)
        zero_counters snaps
    in
    let last_time =
      List.fold_left (fun acc s -> max acc s.s_last_time) 0 snaps
    in
    let prefixes =
      List.concat_map (fun s -> s.s_prefixes) snaps
      |> List.sort (fun a b -> Prefix.compare a.p_prefix b.p_prefix)
    in
    let closed =
      List.concat_map (fun s -> s.s_closed) snaps |> List.sort compare_episode
    in
    let windows =
      List.fold_left
        (fun m s ->
          List.fold_left
            (fun m (idx, w) ->
              Int_map.update idx
                (function
                  | None -> Some w
                  | Some prev -> Some (merge_window_counts prev w))
                m)
            m s.s_windows)
        Int_map.empty snaps
    in
    {
      s_config = first.s_config;
      s_counters = counters;
      s_last_time = last_time;
      s_prefixes = prefixes;
      s_closed = closed;
      s_windows = Int_map.bindings windows;
    }

(* ------------------------------------------------------------------ *)
(* Live monitor state *)

type open_state = {
  os_seq : int;
  os_started : int;
  mutable os_days : int;
  mutable os_max_origins : int;
  mutable os_origins_ever : Asn.Set.t;
  mutable os_clean : bool;
}

(* Tiny per-prefix origin table: parallel arrays kept sorted by Asn so
   the snapshot's binding order matches the old [Asn.Map] exactly.  MOAS
   origin sets are a handful of ASes, so a linear scan beats a balanced
   tree and — the point of the exercise — a repeat announcement mutates
   the slot in place instead of allocating a fresh tree path. *)
type otab = {
  mutable o_asn : Asn.t array; (* sorted ascending; [o_n] live entries *)
  mutable o_adv : Asn.Set.t option array;
  mutable o_n : int;
}

let otab_create () = { o_asn = [||]; o_adv = [||]; o_n = 0 }

(* index of [origin] when present, otherwise [-(insertion point + 1)] *)
let otab_search ot origin =
  let n = ot.o_n in
  let rec go i =
    if i >= n then -(i + 1)
    else
      let c = Asn.compare ot.o_asn.(i) origin in
      if c < 0 then go (i + 1) else if c = 0 then i else -(i + 1)
  in
  go 0

let otab_insert ot pos origin adv =
  let n = ot.o_n in
  if n = Array.length ot.o_asn then begin
    let cap = max 4 (2 * n) in
    let asn = Array.make cap origin and advs = Array.make cap None in
    Array.blit ot.o_asn 0 asn 0 n;
    Array.blit ot.o_adv 0 advs 0 n;
    ot.o_asn <- asn;
    ot.o_adv <- advs
  end;
  for i = n downto pos + 1 do
    ot.o_asn.(i) <- ot.o_asn.(i - 1);
    ot.o_adv.(i) <- ot.o_adv.(i - 1)
  done;
  ot.o_asn.(pos) <- origin;
  ot.o_adv.(pos) <- adv;
  ot.o_n <- n + 1

let otab_remove ot pos =
  let n = ot.o_n in
  for i = pos to n - 2 do
    ot.o_asn.(i) <- ot.o_asn.(i + 1);
    ot.o_adv.(i) <- ot.o_adv.(i + 1)
  done;
  ot.o_adv.(n - 1) <- None;
  (* don't pin the dropped Set *)
  ot.o_n <- n - 1

type pstate = {
  ot : otab;
  mutable open_ep : open_state option;
  mutable closed_count : int;
}

type wstate = {
  mutable wu : int;
  mutable wo : int;
  mutable wc : int;
  mutable wa : int;
}

(* Prefixes are interned to dense int ids ({!Net.Intern}) the first time
   they announce; all per-prefix live state lives in an array indexed by
   that id and the open/dirty sets are int-keyed.  The hot ingest loop
   therefore touches only unboxed int keys — no structural hashing of
   prefix records, no option boxing on the hit path.  Ids are an
   in-memory handle: a monitor rebuilt from a snapshot re-interns in
   snapshot order and behaves identically (the snapshot itself is keyed
   by prefix, never by id). *)
type t = {
  cfg : config;
  interner : Prefix.t Intern.t;
  mutable states : pstate option array; (* dense prefix id -> live state *)
  (* open and dirty sets as flag-bytes + id stacks: ids are dense, so
     membership is a byte load and insertion a byte store + push — no
     hashing, no allocation on the steady path.  The open stack may hold
     stale ids of since-closed episodes; [mark_day] sweeps them out and
     [open_live] tracks the exact live count. *)
  mutable open_flag : Bytes.t;
  mutable open_ids : int array;
  mutable open_n : int;
  mutable open_live : int;
  mutable dirty_flag : Bytes.t;
  mutable dirty_ids : int array;
  mutable dirty_n : int;
  mutable closed : episode list;  (* reverse completion order *)
  windows : (int, wstate) Hashtbl.t;
  mutable cur_widx : int; (* cached window slot: feeds are time-monotone *)
  mutable cur_w : wstate;
  mutable updates : int;
  mutable announces : int;
  mutable withdraws : int;
  mutable opened : int;
  mutable closed_n : int;
  mutable alerts : int;
  mutable days : int;
  mutable last_time : int;
  m_updates : Registry.Counter.t;
  m_announces : Registry.Counter.t;
  m_withdraws : Registry.Counter.t;
  m_opened : Registry.Counter.t;
  m_closed : Registry.Counter.t;
  m_alerts : Registry.Counter.t;
}

let create ?(metrics = Registry.noop) cfg =
  validate_config cfg;
  {
    cfg;
    interner = Intern.prefixes ~size:1024 ();
    states = [||];
    open_flag = Bytes.empty;
    open_ids = [||];
    open_n = 0;
    open_live = 0;
    dirty_flag = Bytes.empty;
    dirty_ids = [||];
    dirty_n = 0;
    closed = [];
    windows = Hashtbl.create 64;
    cur_widx = min_int;
    cur_w = { wu = 0; wo = 0; wc = 0; wa = 0 };
    updates = 0;
    announces = 0;
    withdraws = 0;
    opened = 0;
    closed_n = 0;
    alerts = 0;
    days = 0;
    last_time = 0;
    m_updates = Registry.counter metrics "stream_updates_total";
    m_announces = Registry.counter metrics "stream_announces_total";
    m_withdraws = Registry.counter metrics "stream_withdraws_total";
    m_opened = Registry.counter metrics "stream_episodes_opened_total";
    m_closed = Registry.counter metrics "stream_episodes_closed_total";
    m_alerts = Registry.counter metrics "stream_alerts_total";
  }

let config t = t.cfg
let open_count t = t.open_live
let update_count t = t.updates
let day_count t = t.days

let wslot t time =
  let idx = time / t.cfg.window in
  if idx = t.cur_widx then t.cur_w
  else begin
    let w =
      match Hashtbl.find t.windows idx with
      | w -> w
      | exception Not_found ->
        let w = { wu = 0; wo = 0; wc = 0; wa = 0 } in
        Hashtbl.add t.windows idx w;
        w
    in
    t.cur_widx <- idx;
    t.cur_w <- w;
    w
  end

let grow_flags b id =
  if Bytes.length b > id then b
  else begin
    let cap = max 1024 (2 * Bytes.length b) in
    let nb = Bytes.make (max cap (id + 1)) '\000' in
    Bytes.blit b 0 nb 0 (Bytes.length b);
    nb
  end

let grow_ids a n =
  if n < Array.length a then a
  else begin
    let cap = max 1024 (2 * n) in
    let na = Array.make cap 0 in
    Array.blit a 0 na 0 n;
    na
  end

let mark_dirty t id =
  t.dirty_flag <- grow_flags t.dirty_flag id;
  if Bytes.get t.dirty_flag id = '\000' then begin
    Bytes.set t.dirty_flag id '\001';
    t.dirty_ids <- grow_ids t.dirty_ids t.dirty_n;
    t.dirty_ids.(t.dirty_n) <- id;
    t.dirty_n <- t.dirty_n + 1
  end

let mark_open t id =
  t.open_live <- t.open_live + 1;
  t.open_flag <- grow_flags t.open_flag id;
  if Bytes.get t.open_flag id = '\000' then begin
    Bytes.set t.open_flag id '\001';
    t.open_ids <- grow_ids t.open_ids t.open_n;
    t.open_ids.(t.open_n) <- id;
    t.open_n <- t.open_n + 1
  end

let pstate_of t id =
  if id >= Array.length t.states then begin
    let cap = max 1024 (2 * Array.length t.states) in
    let grown = Array.make (max cap (id + 1)) None in
    Array.blit t.states 0 grown 0 (Array.length t.states);
    t.states <- grown
  end;
  match t.states.(id) with
  | Some ps -> ps
  | None ->
    let ps = { ot = otab_create (); open_ep = None; closed_count = 0 } in
    t.states.(id) <- Some ps;
    ps

let close_episode t prefix ps os ~time =
  ps.open_ep <- None;
  ps.closed_count <- ps.closed_count + 1;
  t.open_live <- t.open_live - 1;
  t.closed <-
    {
      e_prefix = prefix;
      e_seq = os.os_seq;
      e_started = os.os_started;
      e_ended = time;
      e_days = os.os_days;
      e_max_origins = os.os_max_origins;
      e_origins_ever = os.os_origins_ever;
      e_clean = os.os_clean;
    }
    :: t.closed;
  t.closed_n <- t.closed_n + 1;
  Registry.Counter.incr t.m_closed;
  let w = wslot t time in
  w.wc <- w.wc + 1

let ingest t ev =
  t.updates <- t.updates + 1;
  Registry.Counter.incr t.m_updates;
  if ev.time > t.last_time then t.last_time <- ev.time;
  let w = wslot t ev.time in
  w.wu <- w.wu + 1;
  match ev.action with
  | Announce { origin; moas_list } ->
    t.announces <- t.announces + 1;
    Registry.Counter.incr t.m_announces;
    let id = Intern.id t.interner ev.prefix in
    let ps = pstate_of t id in
    let ot = ps.ot in
    (match otab_search ot origin with
    | i when i >= 0 -> ot.o_adv.(i) <- moas_list
    | neg -> otab_insert ot (-neg - 1) origin moas_list);
    let card = ot.o_n in
    (match ps.open_ep with
    | Some os ->
      if card > os.os_max_origins then os.os_max_origins <- card;
      os.os_origins_ever <- Asn.Set.add origin os.os_origins_ever;
      mark_dirty t id
    | None ->
      if card > 1 then begin
        let origins_ever = ref Asn.Set.empty in
        for i = 0 to ot.o_n - 1 do
          origins_ever := Asn.Set.add ot.o_asn.(i) !origins_ever
        done;
        let os =
          {
            os_seq = ps.closed_count + 1;
            os_started = ev.time;
            os_days = 0;
            os_max_origins = card;
            os_origins_ever = !origins_ever;
            os_clean = true;
          }
        in
        ps.open_ep <- Some os;
        mark_open t id;
        mark_dirty t id;
        t.opened <- t.opened + 1;
        Registry.Counter.incr t.m_opened;
        w.wo <- w.wo + 1
      end)
  | Withdraw { origin } -> (
    t.withdraws <- t.withdraws + 1;
    Registry.Counter.incr t.m_withdraws;
    (* [find] never interns: a withdraw for a prefix that never
       announced stays a no-op without growing the table *)
    let id = Intern.find t.interner ev.prefix in
    if id >= 0 then
      match t.states.(id) with
      | None -> ()
      | Some ps ->
        let ot = ps.ot in
        let i = otab_search ot origin in
        if i >= 0 then begin
          otab_remove ot i;
          (match ps.open_ep with
          | Some os when ot.o_n <= 1 ->
            close_episode t ev.prefix ps os ~time:ev.time
          | _ -> ());
          if ot.o_n = 0 && ps.open_ep = None && ps.closed_count = 0 then
            t.states.(id) <- None
        end)

(* The paper's consistency criterion, evaluated over the settled state of
   a conflicted prefix: every current origin must advertise a MOAS list,
   all lists must agree, and the agreed list must contain every current
   origin.  A conflict that fails the check is an alarm. *)
let origins_validated origins =
  let lists = Asn.Map.fold (fun _ l acc -> l :: acc) origins [] in
  match lists with
  | [] | [ _ ] -> true
  | first :: rest -> (
    match first with
    | None -> false
    | Some list ->
      List.for_all
        (function None -> false | Some l -> Moas.Moas_list.consistent l list)
        rest
      && Asn.Map.for_all (fun o _ -> Asn.Set.mem o list) origins)

(* Same predicate evaluated directly on the live origin table, so
   [settle] never materialises a map.  Mirrors [origins_validated]: the
   reference list is the binding of the largest origin (the head of the
   old fold's accumulator). *)
let otab_validated ot =
  let n = ot.o_n in
  if n <= 1 then true
  else
    match ot.o_adv.(n - 1) with
    | None -> false
    | Some list ->
      let ok = ref true in
      for i = 0 to n - 2 do
        match ot.o_adv.(i) with
        | None -> ok := false
        | Some l -> if not (Moas.Moas_list.consistent l list) then ok := false
      done;
      for i = 0 to n - 1 do
        if not (Asn.Set.mem ot.o_asn.(i) list) then ok := false
      done;
      !ok

let settle t ~time =
  if t.dirty_n > 0 then begin
    for k = 0 to t.dirty_n - 1 do
      let id = t.dirty_ids.(k) in
      Bytes.set t.dirty_flag id '\000';
      match t.states.(id) with
      | Some ({ open_ep = Some os; _ } as ps) when os.os_clean ->
        if not (otab_validated ps.ot) then begin
          os.os_clean <- false;
          t.alerts <- t.alerts + 1;
          Registry.Counter.incr t.m_alerts;
          let w = wslot t time in
          w.wa <- w.wa + 1
        end
      | _ -> ()
    done;
    t.dirty_n <- 0
  end

let mark_day t ~time =
  settle t ~time;
  t.days <- t.days + 1;
  if time > t.last_time then t.last_time <- time;
  (* sweep the open stack: bump live episodes, compact out entries whose
     episode closed and never reopened *)
  let kept = ref 0 in
  for k = 0 to t.open_n - 1 do
    let id = t.open_ids.(k) in
    match t.states.(id) with
    | Some { open_ep = Some os; _ } ->
      os.os_days <- os.os_days + 1;
      t.open_ids.(!kept) <- id;
      incr kept
    | _ -> Bytes.set t.open_flag id '\000'
  done;
  t.open_n <- !kept

(* ------------------------------------------------------------------ *)
(* Snapshot / restore *)

let counters t =
  {
    c_updates = t.updates;
    c_announces = t.announces;
    c_withdraws = t.withdraws;
    c_opened = t.opened;
    c_closed = t.closed_n;
    c_alerts = t.alerts;
    c_days = t.days;
  }

(* Permutation that sorts [keys] ascending, via LSD radix sort: four
   10-bit counting passes cover the 38-bit packed prefix key space.
   Keys are injective and order-compatible with [Prefix.compare] (see
   [Prefix.to_key]), and each live prefix appears once, so applying the
   permutation reproduces the comparator sort exactly — without the
   ~n log n closure calls the list sort pays on every snapshot. *)
let radix_perm keys =
  let n = Array.length keys in
  let perm = Array.init n Fun.id in
  let tmp = Array.make (max n 1) 0 in
  let counts = Array.make 1024 0 in
  let src = ref perm and dst = ref tmp in
  for pass = 0 to 3 do
    let shift = 10 * pass in
    Array.fill counts 0 1024 0;
    let s = !src in
    for i = 0 to n - 1 do
      let d = (keys.(s.(i)) lsr shift) land 1023 in
      counts.(d) <- counts.(d) + 1
    done;
    let off = ref 0 in
    for d = 0 to 1023 do
      let c = counts.(d) in
      counts.(d) <- !off;
      off := !off + c
    done;
    let t = !dst in
    for i = 0 to n - 1 do
      let idx = s.(i) in
      let d = (keys.(idx) lsr shift) land 1023 in
      t.(counts.(d)) <- idx;
      counts.(d) <- counts.(d) + 1
    done;
    src := t;
    dst := s
  done;
  (* four passes: the final result landed back in [perm] *)
  !src

let snapshot t =
  let prefixes = ref [] in
  for id = min (Intern.count t.interner) (Array.length t.states) - 1 downto 0 do
    match t.states.(id) with
    | None -> ()
    | Some ps ->
      let p_origins =
        (* ascending Asn order: identical to the old [Asn.Map.bindings] *)
        let ot = ps.ot in
        let rec build i acc =
          if i < 0 then acc
          else
            build (i - 1)
              ({ origin = ot.o_asn.(i); adv_list = ot.o_adv.(i) } :: acc)
        in
        build (ot.o_n - 1) []
      in
      let p_open =
        Option.map
          (fun os ->
            {
              o_seq = os.os_seq;
              o_started = os.os_started;
              o_days = os.os_days;
              o_max_origins = os.os_max_origins;
              o_origins_ever = os.os_origins_ever;
              o_clean = os.os_clean;
            })
          ps.open_ep
      in
      prefixes :=
        {
          p_prefix = Intern.of_id t.interner id;
          p_origins;
          p_open;
          p_closed_count = ps.closed_count;
        }
        :: !prefixes
  done;
  (* ids reflect first-announce order; the snapshot stays canonical by
     sorting on the prefix key, exactly as the old comparator sort did *)
  let prefixes =
    let recs = Array.of_list !prefixes in
    let keys = Array.map (fun p -> Prefix.to_key p.p_prefix) recs in
    let perm = radix_perm keys in
    let rec build i acc =
      if i < 0 then acc else build (i - 1) (recs.(perm.(i)) :: acc)
    in
    build (Array.length recs - 1) []
  in
  let windows =
    Hashtbl.fold
      (fun idx w acc ->
        (idx, { w_updates = w.wu; w_opened = w.wo; w_closed = w.wc; w_alerts = w.wa })
        :: acc)
      t.windows []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    s_config = t.cfg;
    s_counters = counters t;
    s_last_time = t.last_time;
    s_prefixes = prefixes;
    s_closed = List.sort compare_episode t.closed;
    s_windows = windows;
  }

let restore ?metrics snap =
  let t = create ?metrics snap.s_config in
  List.iter
    (fun p ->
      let open_ep =
        Option.map
          (fun o ->
            {
              os_seq = o.o_seq;
              os_started = o.o_started;
              os_days = o.o_days;
              os_max_origins = o.o_max_origins;
              os_origins_ever = o.o_origins_ever;
              os_clean = o.o_clean;
            })
          p.p_open
      in
      let id = Intern.id t.interner p.p_prefix in
      let ps0 = pstate_of t id in
      (* last binding wins on duplicate origins, as [Asn.Map.add] did *)
      List.iter
        (fun e ->
          match otab_search ps0.ot e.origin with
          | i when i >= 0 -> ps0.ot.o_adv.(i) <- e.adv_list
          | neg -> otab_insert ps0.ot (-neg - 1) e.origin e.adv_list)
        p.p_origins;
      ps0.open_ep <- open_ep;
      ps0.closed_count <- p.p_closed_count;
      if open_ep <> None then mark_open t id)
    snap.s_prefixes;
  t.closed <- List.rev snap.s_closed;
  List.iter
    (fun (idx, w) ->
      Hashtbl.replace t.windows idx
        { wu = w.w_updates; wo = w.w_opened; wc = w.w_closed; wa = w.w_alerts })
    snap.s_windows;
  let c = snap.s_counters in
  t.updates <- c.c_updates;
  t.announces <- c.c_announces;
  t.withdraws <- c.c_withdraws;
  t.opened <- c.c_opened;
  t.closed_n <- c.c_closed;
  t.alerts <- c.c_alerts;
  t.days <- c.c_days;
  t.last_time <- snap.s_last_time;
  (* surface the restored history on the registry, so metrics after a
     restart line up with an uninterrupted run *)
  Registry.Counter.add t.m_updates c.c_updates;
  Registry.Counter.add t.m_announces c.c_announces;
  Registry.Counter.add t.m_withdraws c.c_withdraws;
  Registry.Counter.add t.m_opened c.c_opened;
  Registry.Counter.add t.m_closed c.c_closed;
  Registry.Counter.add t.m_alerts c.c_alerts;
  t
