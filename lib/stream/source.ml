open Net
module Srv = Measurement.Synthetic_routeviews

type batch = { time : int; day : Mutil.Day.t option; events : Monitor.event array }

let day_seconds = 86_400

type annotator = Prefix.t -> Asn.Set.t -> Asn.t -> Asn.Set.t option

let no_annotation : annotator = fun _ _ _ -> None

let trusted_annotator ?(distrusted = Asn.Set.empty) () : annotator =
 fun _prefix origins _origin ->
  if Asn.Set.exists (fun a -> Asn.Set.mem a distrusted) origins then None
  else Some origins

(* Diff consecutive daily tables into announce/withdraw events.  When a
   prefix's origin set changes, the withdrawals come first and then every
   current origin re-announces with a freshly computed MOAS list — the
   wire behaviour of origins updating the list as membership changes, and
   the order that keeps a legitimately shrinking conflict from being
   flagged over a stale list. *)
let day_events ~annotate ~prev dump =
  let events = ref [] in
  let emit ev = events := ev :: !events in
  let time = dump.Srv.day * day_seconds in
  let today =
    List.fold_left
      (fun m (p, o) -> Prefix.Map.add p o m)
      Prefix.Map.empty dump.Srv.table
  in
  List.iter
    (fun (prefix, origins) ->
      let prev_origins =
        Option.value ~default:Asn.Set.empty (Prefix.Map.find_opt prefix prev)
      in
      if not (Asn.Set.equal origins prev_origins) then begin
        Asn.Set.iter
          (fun origin ->
            emit
              {
                Monitor.time;
                peer = origin;
                prefix;
                action = Monitor.Withdraw { origin };
              })
          (Asn.Set.diff prev_origins origins);
        Asn.Set.iter
          (fun origin ->
            emit
              {
                Monitor.time;
                peer = origin;
                prefix;
                action =
                  Monitor.Announce
                    { origin; moas_list = annotate prefix origins origin };
              })
          origins
      end)
    dump.Srv.table;
  Prefix.Map.iter
    (fun prefix prev_origins ->
      if not (Prefix.Map.mem prefix today) then
        Asn.Set.iter
          (fun origin ->
            emit
              {
                Monitor.time;
                peer = origin;
                prefix;
                action = Monitor.Withdraw { origin };
              })
          prev_origins)
    prev;
  (Array.of_list (List.rev !events), today)

let fold_archive ?(annotate = no_annotation) params ~init ~f =
  let acc, _ =
    Srv.fold_dumps params
      ~init:(init, Prefix.Map.empty)
      ~f:(fun (acc, prev) dump ->
        let events, today = day_events ~annotate ~prev dump in
        let batch =
          { time = dump.Srv.day * day_seconds; day = Some dump.Srv.day; events }
        in
        (f acc batch, today))
  in
  acc

let archive_batches ?annotate params =
  Array.of_list
    (List.rev
       (fold_archive ?annotate params ~init:[] ~f:(fun acc b -> b :: acc)))

(* ------------------------------------------------------------------ *)
(* Wire and MRT adapters *)

let of_wire ~time ~peer (message : Bgp.Wire.message) =
  let withdraws =
    List.map
      (fun prefix ->
        { Monitor.time; peer; prefix; action = Monitor.Withdraw { origin = peer } })
      message.Bgp.Wire.withdrawn
  in
  let announces =
    match message.Bgp.Wire.attributes with
    | None -> []
    | Some attrs ->
      let origin =
        Option.value ~default:peer
          (Bgp.As_path.origin_as attrs.Bgp.Wire.as_path)
      in
      let moas_list = Moas.Moas_list.decode attrs.Bgp.Wire.communities in
      List.map
        (fun prefix ->
          {
            Monitor.time;
            peer;
            prefix;
            action = Monitor.Announce { origin; moas_list };
          })
        message.Bgp.Wire.nlri
  in
  Array.of_list (withdraws @ announces)

let of_mrt data =
  let events, last =
    Measurement.Mrt.fold_records data ~init:([], 0) ~f:(fun (acc, last) r ->
        let origin =
          Option.value ~default:r.Measurement.Mrt.peer_as
            (Bgp.As_path.origin_as r.Measurement.Mrt.as_path)
        in
        let ev =
          {
            Monitor.time = r.Measurement.Mrt.timestamp;
            peer = r.Measurement.Mrt.peer_as;
            prefix = r.Measurement.Mrt.prefix;
            action = Monitor.Announce { origin; moas_list = None };
          }
        in
        (ev :: acc, max last r.Measurement.Mrt.timestamp))
  in
  { time = last; day = None; events = Array.of_list (List.rev events) }
