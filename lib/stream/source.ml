open Net
module Srv = Measurement.Synthetic_routeviews

type batch = { time : int; day : Mutil.Day.t option; events : Monitor.event array }

let day_seconds = 86_400

type annotator = Prefix.t -> Asn.Set.t -> Asn.t -> Asn.Set.t option

let no_annotation : annotator = fun _ _ _ -> None

let trusted_annotator ?(distrusted = Asn.Set.empty) () : annotator =
 fun _prefix origins _origin ->
  if Asn.Set.exists (fun a -> Asn.Set.mem a distrusted) origins then None
  else Some origins

(* Diff consecutive daily tables into announce/withdraw events.  When a
   prefix's origin set changes, the withdrawals come first and then every
   current origin re-announces with a freshly computed MOAS list — the
   wire behaviour of origins updating the list as membership changes, and
   the order that keeps a legitimately shrinking conflict from being
   flagged over a stale list. *)
let day_events ~annotate ~prev dump =
  let events = ref [] in
  let emit ev = events := ev :: !events in
  let time = dump.Srv.day * day_seconds in
  let today =
    List.fold_left
      (fun m (p, o) -> Prefix.Map.add p o m)
      Prefix.Map.empty dump.Srv.table
  in
  List.iter
    (fun (prefix, origins) ->
      let prev_origins =
        Option.value ~default:Asn.Set.empty (Prefix.Map.find_opt prefix prev)
      in
      if not (Asn.Set.equal origins prev_origins) then begin
        Asn.Set.iter
          (fun origin ->
            emit
              {
                Monitor.time;
                peer = origin;
                prefix;
                action = Monitor.Withdraw { origin };
              })
          (Asn.Set.diff prev_origins origins);
        Asn.Set.iter
          (fun origin ->
            emit
              {
                Monitor.time;
                peer = origin;
                prefix;
                action =
                  Monitor.Announce
                    { origin; moas_list = annotate prefix origins origin };
              })
          origins
      end)
    dump.Srv.table;
  Prefix.Map.iter
    (fun prefix prev_origins ->
      if not (Prefix.Map.mem prefix today) then
        Asn.Set.iter
          (fun origin ->
            emit
              {
                Monitor.time;
                peer = origin;
                prefix;
                action = Monitor.Withdraw { origin };
              })
          prev_origins)
    prev;
  (Array.of_list (List.rev !events), today)

(* ------------------------------------------------------------------ *)
(* The uniform pull interface: every source — synthetic archive, MRT
   blobs, decoded wire messages, pre-materialised batches — is opened as
   a [t] and drained with [next]/[close], so the serving daemon's live
   tail and the batch monitor share one ingestion entry point
   ({!Sharded.ingest_source}) instead of per-source plumbing. *)

type t = {
  mutable pull : unit -> batch option;
  mutable closed : bool;
}

let make pull = { pull; closed = false }

let next s = if s.closed then None else s.pull ()

let close s =
  s.closed <- true;
  s.pull <- (fun () -> None)

let fold s ~init ~f =
  Fun.protect
    ~finally:(fun () -> close s)
    (fun () ->
      let rec loop acc =
        match next s with None -> acc | Some b -> loop (f acc b)
      in
      loop init)

let of_seq seq =
  let state = ref seq in
  make (fun () ->
      match !state () with
      | Seq.Nil -> None
      | Seq.Cons (b, rest) ->
        state := rest;
        Some b)

let of_batches batches = of_seq (Array.to_seq batches)

let of_archive ?(annotate = no_annotation) params =
  let prev = ref Prefix.Map.empty in
  let dumps = ref (Srv.dump_seq params) in
  make (fun () ->
      match !dumps () with
      | Seq.Nil -> None
      | Seq.Cons (dump, rest) ->
        dumps := rest;
        let events, today = day_events ~annotate ~prev:!prev dump in
        prev := today;
        Some
          { time = dump.Srv.day * day_seconds; day = Some dump.Srv.day; events })

let fold_archive ?annotate params ~init ~f =
  fold (of_archive ?annotate params) ~init ~f

let archive_batches ?annotate params =
  Array.of_list
    (List.rev
       (fold_archive ?annotate params ~init:[] ~f:(fun acc b -> b :: acc)))

(* ------------------------------------------------------------------ *)
(* Wire and MRT adapters *)

let of_wire ~time ~peer (message : Bgp.Wire.message) =
  let withdraws =
    List.map
      (fun prefix ->
        { Monitor.time; peer; prefix; action = Monitor.Withdraw { origin = peer } })
      message.Bgp.Wire.withdrawn
  in
  let announces =
    match message.Bgp.Wire.attributes with
    | None -> []
    | Some attrs ->
      let origin =
        Option.value ~default:peer
          (Bgp.As_path.origin_as attrs.Bgp.Wire.as_path)
      in
      let moas_list = Moas.Moas_list.decode attrs.Bgp.Wire.communities in
      List.map
        (fun prefix ->
          {
            Monitor.time;
            peer;
            prefix;
            action = Monitor.Announce { origin; moas_list };
          })
        message.Bgp.Wire.nlri
  in
  Array.of_list (withdraws @ announces)

let of_wire_feed feed =
  of_seq
    (Seq.map
       (fun (time, peer, message) ->
         { time; day = None; events = of_wire ~time ~peer message })
       (List.to_seq feed))

let of_mrt data =
  let events, last =
    Measurement.Mrt.fold_records data ~init:([], 0) ~f:(fun (acc, last) r ->
        let origin =
          Option.value ~default:r.Measurement.Mrt.peer_as
            (Bgp.As_path.origin_as r.Measurement.Mrt.as_path)
        in
        let ev =
          {
            Monitor.time = r.Measurement.Mrt.timestamp;
            peer = r.Measurement.Mrt.peer_as;
            prefix = r.Measurement.Mrt.prefix;
            action = Monitor.Announce { origin; moas_list = None };
          }
        in
        (ev :: acc, max last r.Measurement.Mrt.timestamp))
  in
  { time = last; day = None; events = Array.of_list (List.rev events) }

let of_mrt_blobs blobs = of_seq (Seq.map of_mrt (List.to_seq blobs))
