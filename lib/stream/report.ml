open Monitor

type episode_view = {
  v_prefix : Net.Prefix.t;
  v_seq : int;
  v_started : int;
  v_ended : int option;
  v_days : int;
  v_max_origins : int;
  v_origins : Net.Asn.Set.t;
  v_clean : bool;
}

let episodes snap =
  let closed =
    List.map
      (fun e ->
        {
          v_prefix = e.e_prefix;
          v_seq = e.e_seq;
          v_started = e.e_started;
          v_ended = Some e.e_ended;
          v_days = e.e_days;
          v_max_origins = e.e_max_origins;
          v_origins = e.e_origins_ever;
          v_clean = e.e_clean;
        })
      snap.s_closed
  in
  let opened =
    List.filter_map
      (fun p ->
        Option.map
          (fun o ->
            {
              v_prefix = p.p_prefix;
              v_seq = o.o_seq;
              v_started = o.o_started;
              v_ended = None;
              v_days = o.o_days;
              v_max_origins = o.o_max_origins;
              v_origins = o.o_origins_ever;
              v_clean = o.o_clean;
            })
          p.p_open)
      snap.s_prefixes
  in
  List.sort
    (fun a b ->
      let c = Net.Prefix.compare a.v_prefix b.v_prefix in
      if c <> 0 then c
      else
        let c = compare a.v_started b.v_started in
        if c <> 0 then c else compare a.v_seq b.v_seq)
    (closed @ opened)

(* the short/medium/long classes live on Monitor.bucket so the query
   layer and the classifier share the exact same boundaries *)
type duration_class = Monitor.bucket = Short | Medium | Long

let classify = Monitor.bucket_of_days
let class_label = Monitor.bucket_label

(* the Figure 5 buckets of Measurement.Moas_cases, on episode day counts *)
let paper_buckets eps =
  let buckets =
    [
      ("1 day", fun d -> d = 1);
      ("2 days", fun d -> d = 2);
      ("3-7 days", fun d -> d >= 3 && d <= 7);
      ("8-30 days", fun d -> d >= 8 && d <= 30);
      ("31-90 days", fun d -> d >= 31 && d <= 90);
      ("91-365 days", fun d -> d >= 91 && d <= 365);
      (">365 days", fun d -> d > 365);
    ]
  in
  List.map
    (fun (label, pred) ->
      (label, List.length (List.filter (fun e -> pred (max 1 e.v_days)) eps)))
    buckets

let day_label cfg time =
  if time mod cfg.day_seconds = 0 && cfg.day_seconds = 86_400 then
    Mutil.Day.to_string (time / cfg.day_seconds)
  else string_of_int time

let window_label cfg idx =
  day_label cfg (idx * cfg.window)

let render ?(top_windows = 5) snap =
  let buf = Buffer.create 4096 in
  let say fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let cfg = snap.s_config in
  let c = snap.s_counters in
  let eps = episodes snap in
  let open_eps = List.filter (fun e -> e.v_ended = None) eps in
  let flagged = List.filter (fun e -> not e.v_clean) eps in
  say "== online MOAS monitor ==";
  say "config: %d s windows; buckets short <= %d d < medium <= %d d < long"
    cfg.window cfg.short_max_days cfg.medium_max_days;
  say "stream: %d updates (%d announces, %d withdraws) over %d observed days"
    c.c_updates c.c_announces c.c_withdraws c.c_days;
  say "        last event at %s" (day_label cfg snap.s_last_time);
  let tracked =
    List.length (List.filter (fun p -> p.p_origins <> []) snap.s_prefixes)
  in
  say "state:  %d prefixes announced, %d in open MOAS conflict" tracked
    (List.length open_eps);
  say
    "episodes: %d total (%d closed, %d open); %d validated by MOAS lists, %d \
     flagged; %d alerts raised"
    (List.length eps) c.c_closed (List.length open_eps)
    (List.length eps - List.length flagged)
    (List.length flagged) c.c_alerts;
  (* recurrence *)
  let recurrent =
    List.filter
      (fun p -> p.p_closed_count + (if p.p_open = None then 0 else 1) > 1)
      snap.s_prefixes
  in
  let max_prefix, max_eps =
    List.fold_left
      (fun (bp, bn) p ->
        let n = p.p_closed_count + if p.p_open = None then 0 else 1 in
        if n > bn then (Some p.p_prefix, n) else (bp, bn))
      (None, 0) snap.s_prefixes
  in
  (match max_prefix with
  | Some prefix when max_eps > 0 ->
    say "recurrence: %d prefixes conflicted more than once; max %d episodes (%s)"
      (List.length recurrent) max_eps
      (Net.Prefix.to_string prefix)
  | _ -> say "recurrence: no prefix has conflicted yet");
  (* duration classes *)
  say "";
  say "-- episode durations (observed days in conflict) --";
  let count cls =
    List.length (List.filter (fun e -> classify cfg e.v_days = cls) eps)
  in
  Buffer.add_string buf
    (Mutil.Text_table.render ~header:[ "class"; "episodes" ]
       (List.map
          (fun cls -> [ class_label cls; string_of_int (count cls) ])
          [ Monitor.Short; Monitor.Medium; Monitor.Long ]));
  say "";
  say "-- paper duration buckets (Figure 5) --";
  Buffer.add_string buf
    (Mutil.Text_table.render ~header:[ "duration"; "episodes" ]
       (List.map
          (fun (label, n) -> [ label; string_of_int n ])
          (paper_buckets eps)));
  (* alert windows *)
  say "";
  say "-- busiest alert windows (top %d by alerts) --" top_windows;
  let ranked =
    List.filter (fun (_, w) -> w.w_alerts > 0) snap.s_windows
    |> List.stable_sort (fun (ia, a) (ib, b) ->
           let c = compare b.w_alerts a.w_alerts in
           if c <> 0 then c else compare ia ib)
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  (match ranked with
  | [] -> say "(no alerts)"
  | ranked ->
    Buffer.add_string buf
      (Mutil.Text_table.render
         ~header:[ "window start"; "updates"; "opened"; "closed"; "alerts" ]
         (List.map
            (fun (idx, w) ->
              [
                window_label cfg idx;
                string_of_int w.w_updates;
                string_of_int w.w_opened;
                string_of_int w.w_closed;
                string_of_int w.w_alerts;
              ])
            (take top_windows ranked))));
  Buffer.contents buf
