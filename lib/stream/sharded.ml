module Registry = Obs.Registry

type t = {
  jobs : int;
  shards : Monitor.t array;
  shard_metrics : Registry.t array;
  driver : Registry.t;
  (* persistent counting-sort scratch for {!ingest_batch}: the batch path
     allocates nothing per event once these have grown to the steady
     batch size *)
  p_counts : int array;
  p_offsets : int array;
  p_cursors : int array;
  mutable p_shard_idx : int array;
  mutable p_scratch : Monitor.event array;
  m_batches : Registry.Counter.t;
  m_days : Registry.Counter.t;
  h_batch : Registry.Histogram.t;
  g_open : Registry.Gauge.t;
}

let shard_of t prefix = Net.Prefix.hash prefix mod t.jobs

(* Stable counting-sort partition: one pass to count per-shard sizes, a
   prefix sum for offsets, one pass to scatter.  Stability matters — it
   preserves per-prefix event order inside each shard, which is what the
   jobs-invariance contract rests on. *)
let partition_into ~jobs ~shard ~shard_idx ~counts ~offsets ~cursors ~out items =
  let n = Array.length items in
  Array.fill counts 0 jobs 0;
  for i = 0 to n - 1 do
    let s = shard items.(i) in
    shard_idx.(i) <- s;
    counts.(s) <- counts.(s) + 1
  done;
  let off = ref 0 in
  for s = 0 to jobs - 1 do
    offsets.(s) <- !off;
    cursors.(s) <- !off;
    off := !off + counts.(s)
  done;
  for i = 0 to n - 1 do
    let s = shard_idx.(i) in
    out.(cursors.(s)) <- items.(i);
    cursors.(s) <- cursors.(s) + 1
  done

(* Fresh-buffer wrapper for cold paths (snapshot repartitioning);
   returns per-shard [counts], [offsets] and the scattered array. *)
let partition ~jobs ~shard items =
  let n = Array.length items in
  let counts = Array.make jobs 0 and offsets = Array.make jobs 0 in
  if n = 0 then (counts, offsets, [||])
  else begin
    let out = Array.make n items.(0) in
    let shard_idx = Array.make n 0 in
    let cursors = Array.make jobs 0 in
    partition_into ~jobs ~shard ~shard_idx ~counts ~offsets ~cursors ~out items;
    (counts, offsets, out)
  end

let slice_list arr off len = List.init len (fun i -> arr.(off + i))

let make ?(metrics = Registry.noop) ?jobs ~init_shard () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Exec.Pool.default_jobs ()
  in
  let live = not (Registry.is_noop metrics) in
  let shard_metrics =
    Array.init jobs (fun _ -> if live then Registry.create () else Registry.noop)
  in
  let shards = Array.init jobs (fun s -> init_shard ~metrics:shard_metrics.(s) s) in
  {
    jobs;
    shards;
    shard_metrics;
    driver = metrics;
    p_counts = Array.make jobs 0;
    p_offsets = Array.make jobs 0;
    p_cursors = Array.make jobs 0;
    p_shard_idx = [||];
    p_scratch = [||];
    m_batches = Registry.counter metrics "stream_batches_total";
    m_days = Registry.counter metrics "stream_days_total";
    h_batch = Registry.histogram metrics "stream_batch_seconds";
    g_open = Registry.gauge metrics "stream_open_episodes";
  }

let create ?metrics ?jobs config =
  make ?metrics ?jobs ()
    ~init_shard:(fun ~metrics _ -> Monitor.create ~metrics config)

let jobs t = t.jobs
let config t = Monitor.config t.shards.(0)

let open_count t =
  Array.fold_left (fun acc m -> acc + Monitor.open_count m) 0 t.shards

let update_count t =
  Array.fold_left (fun acc m -> acc + Monitor.update_count m) 0 t.shards

(* every shard receives every day mark, so any shard holds the full count *)
let day_count t = Monitor.day_count t.shards.(0)

let parallel_threshold = 2048

let ingest_batch ?(day_end = false) t ~time events =
  let t0 = Unix.gettimeofday () in
  (* stable partition by prefix hash into the persistent scratch buffers:
     per-prefix event order is preserved inside each shard, and distinct
     prefixes never share state, so any shard count yields the same
     per-prefix trajectories *)
  let n = Array.length events in
  if t.jobs = 1 then begin
    (* single shard: the partition is the identity, so feed the monitor
       straight from the caller's array — no scatter, no scratch *)
    let m = t.shards.(0) in
    for i = 0 to n - 1 do
      Monitor.ingest m events.(i)
    done;
    if day_end then Monitor.mark_day m ~time else Monitor.settle m ~time
  end
  else begin
    if n > Array.length t.p_shard_idx then begin
      let cap = max n (2 * Array.length t.p_shard_idx) in
      t.p_shard_idx <- Array.make cap 0;
      t.p_scratch <- Array.make cap events.(0)
    end;
    partition_into ~jobs:t.jobs
      ~shard:(fun (ev : Monitor.event) -> shard_of t ev.Monitor.prefix)
      ~shard_idx:t.p_shard_idx ~counts:t.p_counts ~offsets:t.p_offsets
      ~cursors:t.p_cursors ~out:t.p_scratch events;
    let run_shard s =
      let m = t.shards.(s) in
      let stop = t.p_offsets.(s) + t.p_counts.(s) in
      for i = t.p_offsets.(s) to stop - 1 do
        Monitor.ingest m t.p_scratch.(i)
      done;
      if day_end then Monitor.mark_day m ~time else Monitor.settle m ~time
    in
    (* shards share no state, so dispatching them serially or on the pool
       yields identical per-shard trajectories; small batches stay inline
       because a domain spawn costs more than they do *)
    if Array.length events < parallel_threshold then
      for s = 0 to t.jobs - 1 do
        run_shard s
      done
    else ignore (Exec.Pool.map ~jobs:t.jobs run_shard (Array.init t.jobs Fun.id))
  end;
  Registry.Counter.incr t.m_batches;
  if day_end then Registry.Counter.incr t.m_days;
  if not (Registry.is_noop t.driver) then begin
    Registry.Histogram.observe t.h_batch (Unix.gettimeofday () -. t0);
    Registry.Gauge.set t.g_open (float_of_int (open_count t))
  end

(* The single ingestion entry point over the uniform Source.t pull
   interface: archive replay, MRT blobs, wire feeds and the serving
   daemon's live tail all drain through here. *)
let ingest_source ?(since = min_int) ?max_batches ?on_batch t source =
  let ingested = ref 0 in
  let budget_left () =
    match max_batches with Some n -> !ingested < n | None -> true
  in
  let rec loop () =
    if budget_left () then
      match Source.next source with
      | None -> ()
      | Some b ->
        if b.Source.time > since then begin
          ingest_batch
            ~day_end:(b.Source.day <> None)
            t ~time:b.Source.time b.Source.events;
          incr ingested;
          (match on_batch with Some f -> f t b | None -> ())
        end;
        loop ()
  in
  (* on any failure — the source's pull, the ingest itself, or the
     caller's on_batch — the source is closed before the exception
     escapes, so an abandoned tail never leaks a half-drained source.
     Normal returns (exhaustion or the max_batches budget) leave it open:
     remaining batches stay pulled-able by a later call. *)
  (try loop ()
   with exn ->
     let bt = Printexc.get_raw_backtrace () in
     Source.close source;
     Printexc.raise_with_backtrace exn bt);
  !ingested

let snapshot t =
  Monitor.merge_snapshots
    (Array.to_list (Array.map Monitor.snapshot t.shards))

let of_snapshot ?metrics ?jobs (snap : Monitor.snapshot) =
  let t =
    make ?metrics ?jobs ()
      ~init_shard:(fun ~metrics:_ _ ->
        (* placeholder; each shard is rebuilt from its sub-snapshot below *)
        Monitor.create snap.Monitor.s_config)
  in
  let open Monitor in
  (* the same stable counting-sort partition as the batch path, with
     fresh buffers (cold path): each shard's slice keeps snapshot order *)
  let pc, po, prefixes =
    partition ~jobs:t.jobs
      ~shard:(fun p -> shard_of t p.p_prefix)
      (Array.of_list snap.s_prefixes)
  in
  let cc, co, closed =
    partition ~jobs:t.jobs
      ~shard:(fun e -> shard_of t e.e_prefix)
      (Array.of_list snap.s_closed)
  in
  Array.iteri
    (fun s _ ->
      (* windows and event counters live once, in shard 0; day counts and
         the stream clock are replicated because every shard sees every
         day mark (the merge takes their maximum) *)
      let counters =
        if s = 0 then snap.s_counters
        else { zero_counters with c_days = snap.s_counters.c_days }
      in
      let shard_snap =
        {
          s_config = snap.s_config;
          s_counters = counters;
          s_last_time = snap.s_last_time;
          s_prefixes = slice_list prefixes po.(s) pc.(s);
          s_closed = slice_list closed co.(s) cc.(s);
          s_windows = (if s = 0 then snap.s_windows else []);
        }
      in
      t.shards.(s) <- Monitor.restore ~metrics:t.shard_metrics.(s) shard_snap)
    t.shards;
  t

let metrics t =
  let merged = Registry.create () in
  if not (Registry.is_noop t.driver) then begin
    Registry.merge ~into:merged t.driver;
    Array.iter (fun r -> Registry.merge ~into:merged r) t.shard_metrics
  end;
  merged
