(** One shard of the online MOAS monitor: an incremental state machine
    over a timestamped stream of per-origin BGP announce/withdraw events.

    The monitor maintains, per prefix, the set of origin ASes currently
    announcing it (each with the MOAS list it advertised, when any) and
    tracks MOAS {e conflict episodes}: an episode opens when a prefix's
    origin set grows beyond one AS and closes when it shrinks back to at
    most one.  Episodes carry their start/end times, the number of
    observed days spent in conflict (fed by {!mark_day}), the largest
    origin set seen, every origin ever involved, their per-prefix
    recurrence index, and a validation verdict from the paper's MOAS-list
    consistency check (evaluated at {!settle} points over the settled
    origin state, so mid-batch re-announcement races never raise false
    alarms).  Alerts and episode open/close counts are also aggregated
    into fixed-width time windows.

    A monitor instance is single-threaded; {!Sharded} hash-partitions a
    stream over several instances.  All reportable state can be extracted
    as a canonical, fully sorted {!snapshot} — the unit of shard merging,
    of the byte-identical report contract, and of checkpoint/restore. *)

open Net

(** {2 Events} *)

type action =
  | Announce of { origin : Asn.t; moas_list : Asn.Set.t option }
      (** [origin] now announces the prefix, advertising [moas_list]
          (decoded from the BGP community attribute) when present. *)
  | Withdraw of { origin : Asn.t }
      (** [origin] no longer announces the prefix. *)

type event = { time : int; peer : Asn.t; prefix : Prefix.t; action : action }
(** One stream element.  [time] is in seconds on the feed's clock and
    must be non-decreasing per prefix; [peer] records the contributing
    feed (informational). *)

(** {2 Configuration} *)

type config = {
  window : int;  (** alert-aggregation window width, seconds *)
  short_max_days : int;  (** episodes up to this many days are short *)
  medium_max_days : int;  (** up to this many days, medium; beyond, long *)
  day_seconds : int;  (** seconds per observed day ({!mark_day} cadence) *)
}

val default_config : config
(** One-day windows; short = 1 day, medium = 2..60 days, long beyond —
    the Section 3 buckets of the paper (one-day operational faults,
    multi-day churn, standing multi-homing). *)

(** {2 Duration buckets}

    The paper's Section 3 short/medium/long episode classes, shared by
    the stream report, the [Collect.Query] [bucket=] clause and the
    classifier's bucket feature — one definition, one parser. *)

type bucket = Short | Medium | Long

val bucket_of_days : config -> int -> bucket
(** Classify an episode's observed day count against the config's
    boundaries.  Day counts below 1 are clamped to 1 (an episode observed
    at all was observed for at least a day, as in the paper's duration
    definition). *)

val bucket_to_string : bucket -> string
(** Machine name: ["short"], ["medium"], ["long"] — the [bucket=] query
    syntax. *)

val bucket_of_string : string -> (bucket, string) result
(** Inverse of {!bucket_to_string} (case-insensitive). *)

val bucket_label : bucket -> string
(** Human label for reports: ["short-lived"], ["medium-lived"],
    ["long-lived"]. *)

val compare_bucket : bucket -> bucket -> int
(** Short < Medium < Long. *)

(** {2 Live monitor} *)

type t

val create : ?metrics:Obs.Registry.t -> config -> t
(** A fresh monitor.  [metrics] (default {!Obs.Registry.noop}) receives
    [stream_*] counters as the stream is ingested.
    @raise Invalid_argument on a non-positive window or inverted buckets. *)

val config : t -> config

val ingest : t -> event -> unit
(** Feed one event.  Episode open/close transitions happen immediately;
    MOAS-list validation is deferred to the next {!settle}/{!mark_day}. *)

val settle : t -> time:int -> unit
(** Run the MOAS-list consistency check over every prefix touched since
    the last settle point whose conflict is still open and unflagged;
    failures flag the episode and raise one alert (counted in [time]'s
    window).  Call at batch boundaries, once the batch's announcements
    have all landed. *)

val mark_day : t -> time:int -> unit
(** End an observed collection day at [time]: {!settle}, then credit one
    conflicted day to every open episode.  The per-episode day counts
    follow exactly the paper's duration definition (total observed days
    in MOAS), so they are comparable with
    {!Measurement.Moas_cases.case.moas_days}. *)

val open_count : t -> int
(** Episodes currently open (O(1)). *)

val update_count : t -> int
(** Events ingested so far. *)

val day_count : t -> int
(** {!mark_day} calls so far. *)

(** {2 Canonical snapshot} *)

type origin_entry = { origin : Asn.t; adv_list : Asn.Set.t option }

type open_episode = {
  o_seq : int;  (** 1-based recurrence index for the prefix *)
  o_started : int;
  o_days : int;
  o_max_origins : int;
  o_origins_ever : Asn.Set.t;
  o_clean : bool;  (** false once the MOAS-list check has failed *)
}

type episode = {
  e_prefix : Prefix.t;
  e_seq : int;
  e_started : int;
  e_ended : int;
  e_days : int;
  e_max_origins : int;
  e_origins_ever : Asn.Set.t;
  e_clean : bool;
}

type prefix_state = {
  p_prefix : Prefix.t;
  p_origins : origin_entry list;  (** sorted by origin *)
  p_open : open_episode option;
  p_closed_count : int;  (** completed episodes (recurrence) *)
}

type window_counts = {
  w_updates : int;
  w_opened : int;
  w_closed : int;
  w_alerts : int;
}

type counters = {
  c_updates : int;
  c_announces : int;
  c_withdraws : int;
  c_opened : int;
  c_closed : int;
  c_alerts : int;
  c_days : int;
}

val zero_counters : counters

type snapshot = {
  s_config : config;
  s_counters : counters;
  s_last_time : int;
  s_prefixes : prefix_state list;  (** sorted by prefix *)
  s_closed : episode list;  (** sorted by (prefix, started, seq) *)
  s_windows : (int * window_counts) list;  (** sorted by window index *)
}

val empty_snapshot : config -> snapshot

val snapshot : t -> snapshot
(** The monitor's full state in canonical order: independent of hash-table
    iteration order, ingestion interleaving and shard count. *)

val merge_snapshots : snapshot list -> snapshot
(** Combine the snapshots of prefix-disjoint shards: prefix states and
    episodes are concatenated and re-sorted, window counts and counters
    are summed — except [c_days], which every shard counts in full and the
    merge therefore takes as a maximum.  The config is taken from the
    first snapshot.  @raise Invalid_argument on an empty list. *)

val restore : ?metrics:Obs.Registry.t -> snapshot -> t
(** Rebuild a live monitor from a snapshot; the inverse of {!snapshot}.
    Restored totals are re-credited to [metrics] so a restarted monitor's
    counters line up with an uninterrupted run. *)

val compare_episode : episode -> episode -> int
(** The (prefix, started, seq) order of [s_closed]. *)

val origins_validated : Asn.Set.t option Asn.Map.t -> bool
(** The consistency predicate behind {!settle}, exposed for tests: with
    two or more origins, true iff every origin advertises a list, all
    lists agree, and the agreed list covers every current origin. *)
