(** Binary checkpoint/restore of the full monitor state.

    A checkpoint serialises the canonical {!Monitor.snapshot}, so its
    bytes are independent of shard count and hash-table iteration order:
    the same stream position always produces the same checkpoint file,
    and a monitor restored from it ({!Sharded.of_snapshot}) converges to
    the exact report an uninterrupted run would have produced.

    Format: the magic ["MOASSTRM"], a version octet, then the snapshot
    fields in order (config, counters, stream clock, per-prefix states,
    closed episodes, windows) using fixed-width big-endian integers. *)

exception Corrupt of string
(** Raised by {!decode}/{!read_file} on truncated or inconsistent input. *)

val encode : Monitor.snapshot -> bytes
val decode : bytes -> Monitor.snapshot
(** Inverses of each other. @raise Corrupt on bad input. *)

val write_file : string -> Monitor.snapshot -> unit
val read_file : string -> Monitor.snapshot
(** File wrappers around {!encode}/{!decode}. *)
